# Convenience targets; `make ci` mirrors .github/workflows/ci.yml.

DUNE ?= dune
KERNEL = kernels/inverse_helmholtz.cfd

.PHONY: all build test bench exec cache history lint profile memprof timeline ci clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest --force

bench:
	$(DUNE) exec bench/main.exe

# Execution-engine benchmark + regression gate: run the exec benchmark
# at a small polynomial order (its functional-simulation leg sweeps the
# jobs x elements matrix) followed by the cost experiment (static cycle
# prediction vs Sim.Perf, prefiltered vs unfiltered sweep), and fail if
# the element-sharded simulator regresses -- jobs:1 overhead beyond 5%
# of the sequential baseline anywhere, a parallel headline below 1.0x on
# a multi-core host, a non-zero cycle prediction error, any cost drift,
# or a pre-filter that prunes nothing / changes the Pareto frontier
# (scripts/check_bench_exec.py documents the exact floors).
exec: build
	python3 scripts/check_bench_exec_test.py
	@mkdir -p bench-out
	$(DUNE) exec --no-build bench/main.exe -- exec cost timeline --exec-p=4 \
	  --jobs=4 --no-trace --out=bench-out
	python3 scripts/check_bench_exec.py bench-out/BENCH_exec.json

# Run history + regression sentinel (docs/OBSERVABILITY.md): record two
# exec+cost runs under distinct run ids into bench-out/history/ (each
# record carries the run-provenance manifest) and gate the newest
# against the min-of-N floor of the earlier comparable runs -- a timing
# regression past the 30% noise band, a silent execution-mode
# downgrade, or a moved static cycle prediction fails the build
# (scripts/check_bench_history.py documents the exact rules).
history: build
	python3 scripts/check_bench_history_test.py
	@mkdir -p bench-out
	$(DUNE) exec --no-build bench/main.exe -- exec cost timeline --exec-p=4 \
	  --jobs=4 --no-trace --out=bench-out --run-id=ci-a
	$(DUNE) exec --no-build bench/main.exe -- exec cost timeline --exec-p=4 \
	  --jobs=4 --no-trace --out=bench-out --run-id=ci-b
	python3 scripts/check_bench_history.py bench-out/history

# Artifact-cache benchmark + regression gate (docs/CACHING.md): run the
# cache experiment (cold vs warm compile+check, cold vs warm design
# sweep over one store) and fail if the warm compile is under 5x, the
# hit is not bit-identical to the miss, or the warm sweep re-runs any
# compile/verifier pass or changes an outcome. Then exercise the CLI
# path end to end: two cached `cfdc check` runs through CFDC_CACHE_DIR
# must agree byte for byte, and `cfdc cache stat` reports the store.
cache: build
	python3 scripts/check_bench_exec_test.py
	@mkdir -p bench-out
	$(DUNE) exec --no-build bench/main.exe -- cache --jobs=4 \
	  --no-trace --out=bench-out
	python3 scripts/check_bench_exec.py bench-out/BENCH_exec.json
	@rm -rf bench-out/cache-demo
	CFDC_CACHE_DIR=bench-out/cache-demo \
	  $(DUNE) exec --no-build bin/cfdc.exe -- check $(KERNEL) \
	  > bench-out/cache-demo-cold.txt
	CFDC_CACHE_DIR=bench-out/cache-demo \
	  $(DUNE) exec --no-build bin/cfdc.exe -- check $(KERNEL) \
	  > bench-out/cache-demo-warm.txt
	cmp bench-out/cache-demo-cold.txt bench-out/cache-demo-warm.txt
	$(DUNE) exec --no-build bin/cfdc.exe -- cache stat \
	  --cache-dir=bench-out/cache-demo
	@echo "cache: warm CLI check byte-identical to cold"

# Static verification of every kernel in the tree (docs/ANALYSIS.md):
# dependence preservation, bounds, PLM sharing soundness. Warnings fail
# the lint too, so an unused input or a port-pressure regression is
# caught before it reaches a board. Then the cost differential: the
# static analyzer's predictions must match one recorded functional
# simulation on every kernel in both sharing modes (any cost-drift-*
# diagnostic exits non-zero); the JSON cost reports land in cost-out/
# and CI keeps them as artifacts.
lint: build
	@for k in kernels/*.cfd examples/*.cfd; do \
	  [ -e "$$k" ] || continue; \
	  echo "lint $$k"; \
	  $(DUNE) exec --no-build bin/cfdc.exe -- check "$$k" --fail-on-warning || exit 1; \
	done
	@mkdir -p cost-out
	@for k in kernels/*.cfd; do \
	  name=$$(basename "$$k" .cfd); \
	  for sharing in true false; do \
	    echo "cost --diff $$k --sharing $$sharing"; \
	    $(DUNE) exec --no-build bin/cfdc.exe -- cost "$$k" --diff \
	      --sharing $$sharing --sim-elements 3 \
	      --json "cost-out/$$name-sharing-$$sharing.json" > /dev/null || exit 1; \
	  done; \
	done
	@echo "lint: zero cost drift across kernels x sharing"

# Profile one end-to-end run of the flow (docs/OBSERVABILITY.md):
# compile + static check + system build + perf model + functional sim,
# writing a Perfetto-loadable Chrome trace and a metrics JSON, then
# validate both files parse as JSON.
profile: build
	$(DUNE) exec --no-build bin/cfdc.exe -- profile kernels/helmholtz.cfd \
	  --trace profile_trace.json --metrics profile_metrics.json --summary
	python3 -m json.tool profile_trace.json > /dev/null
	python3 -m json.tool profile_metrics.json > /dev/null
	@echo "profile_trace.json and profile_metrics.json are valid JSON"

# Dynamic memory audit of every kernel (docs/OBSERVABILITY.md): run each
# one through the instrumented engine in both memgen modes and check the
# observed live intervals against the static model. cfdc memprof exits
# non-zero on any memprof-* diagnostic, so a kernel whose dynamic
# behaviour escapes its licensed architecture fails the build. The JSON
# profiles and counter traces are kept as artifacts.
memprof: build
	@mkdir -p memprof-out
	@for k in kernels/*.cfd; do \
	  name=$$(basename "$$k" .cfd); \
	  echo "memprof $$k"; \
	  $(DUNE) exec --no-build bin/cfdc.exe -- memprof "$$k" --name "$$name" \
	    --sim-elements 2 \
	    --json "memprof-out/$$name.json" \
	    --trace "memprof-out/$$name.trace.json" || exit 1; \
	done
	@echo "memprof: all kernels audited clean"

# Device-cycle timeline of every kernel (docs/OBSERVABILITY.md): trace
# both the plain and double-buffered legs on the modeled cycle clock,
# reconcile phase durations against Sim.Perf and the static cost model
# (cfdc timeline exits non-zero on any timeline-drift error), and keep
# the Chrome traces + derived-metric JSON as artifacts. Both outputs
# must parse as JSON.
timeline: build
	@mkdir -p timeline-out
	@for k in kernels/*.cfd; do \
	  name=$$(basename "$$k" .cfd); \
	  echo "timeline $$k"; \
	  $(DUNE) exec --no-build bin/cfdc.exe -- timeline "$$k" --name "$$name" \
	    --elements 512 --json \
	    --trace "timeline-out/$$name.trace.json" \
	    > "timeline-out/$$name.json" || exit 1; \
	  python3 -m json.tool "timeline-out/$$name.json" > /dev/null || exit 1; \
	  python3 -m json.tool "timeline-out/$$name.trace.json" > /dev/null || exit 1; \
	done
	@echo "timeline: all kernels reconciled (phase sums == hw model == cost model)"

# Build everything, run the full suite, then smoke-test the exploration
# engine at jobs=1 and jobs=4 (the sweep itself asserts the two agree in
# test/test_differential.ml; this exercises the CLI path end to end) and
# the compiled execution engine at a small polynomial order.
ci: build test lint profile memprof timeline exec cache history
	$(DUNE) exec bin/cfdc.exe -- explore $(KERNEL) --jobs 1 --stats
	$(DUNE) exec bin/cfdc.exe -- explore $(KERNEL) --jobs 4 --stats

clean:
	$(DUNE) clean
	rm -rf bench-out cost-out memprof-out timeline-out crash-reports .cfdc-cache
