# Convenience targets; `make ci` mirrors .github/workflows/ci.yml.

DUNE ?= dune
KERNEL = kernels/inverse_helmholtz.cfd

.PHONY: all build test bench ci clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest --force

bench:
	$(DUNE) exec bench/main.exe

# Build everything, run the full suite, then smoke-test the exploration
# engine at jobs=1 and jobs=4 (the sweep itself asserts the two agree in
# test/test_differential.ml; this exercises the CLI path end to end).
ci: build test
	$(DUNE) exec bin/cfdc.exe -- explore $(KERNEL) --jobs 1 --stats
	$(DUNE) exec bin/cfdc.exe -- explore $(KERNEL) --jobs 4 --stats

clean:
	$(DUNE) clean
