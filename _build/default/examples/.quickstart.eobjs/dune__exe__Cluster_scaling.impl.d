examples/cluster_scaling.ml: Cfd_core Cfdlang Format Fpga_platform List Sim
