examples/custom_kernel.ml: Cfd_core Cfdlang Dense Format Hls List Ops Shape Sysgen Tensor
