examples/design_space.ml: Cfd_core Cfdlang Format Fpga_platform List Sysgen
