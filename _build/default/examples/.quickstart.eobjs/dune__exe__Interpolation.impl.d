examples/interpolation.ml: Cfd_core Format Fpga_platform Hls Mnemosyne Printf Sim Sysgen Tensor
