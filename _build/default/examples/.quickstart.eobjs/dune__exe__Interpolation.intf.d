examples/interpolation.mli:
