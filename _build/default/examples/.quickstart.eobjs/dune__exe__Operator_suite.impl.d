examples/operator_suite.ml: Cfd_core Cfdlang Format Fpga_platform Hls List Mnemosyne Sysgen
