examples/operator_suite.mli:
