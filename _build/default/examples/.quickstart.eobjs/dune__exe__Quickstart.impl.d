examples/quickstart.ml: Cfd_core Format Hls Mnemosyne Sim Sysgen Tensor
