examples/quickstart.mli:
