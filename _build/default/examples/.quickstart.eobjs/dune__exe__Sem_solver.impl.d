examples/sem_solver.ml: Array Cfd_core Cfdlang Float Format Fpga_platform Hls List Mnemosyne Sem Sim Sysgen
