examples/sem_solver.mli:
