(* Cluster scaling: the paper's closing future-work item — "scaling-up to
   clusters of larger FPGA boards" (Section VIII).

   Partitions a large CFD simulation across several ZCU106 nodes fed by a
   head node over a shared network, and reports strong scaling with and
   without the second future-work item, double-buffered transfers.

   Run with: dune exec examples/cluster_scaling.exe *)

let total_elements = 200_000
let board = Fpga_platform.Board.zcu106

let () =
  let r = Cfd_core.Compile.compile (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  Format.printf
    "Inverse Helmholtz, %d elements, k = m = 16 kernels per ZCU106 node@.@."
    total_elements;
  Format.printf "strong scaling (100 Gb/s head-node link):@.";
  Format.printf "  nodes | cluster s | speedup | efficiency@.";
  List.iter
    (fun n ->
      let nodes =
        List.map
          (fun share ->
            (board, Cfd_core.Compile.build_system ~n_elements:share r))
          (Sim.Cluster.partition_elements ~n:total_elements ~parts:n)
      in
      let res = Sim.Cluster.run ~nodes ~network_gbps:100.0 in
      Format.printf "  %5d | %9.2f | %7.2f | %9.2f@." n
        res.Sim.Cluster.cluster_seconds res.Sim.Cluster.speedup_vs_first_node
        res.Sim.Cluster.efficiency)
    [ 1; 2; 4; 8; 16 ];

  (* What a slow interconnect does to the same cluster. *)
  Format.printf "@.interconnect sensitivity (8 nodes):@.";
  Format.printf "  link Gb/s | cluster s | efficiency@.";
  List.iter
    (fun gbps ->
      let nodes =
        List.map
          (fun share ->
            (board, Cfd_core.Compile.build_system ~n_elements:share r))
          (Sim.Cluster.partition_elements ~n:total_elements ~parts:8)
      in
      let res = Sim.Cluster.run ~nodes ~network_gbps:gbps in
      Format.printf "  %9.0f | %9.2f | %9.2f@." gbps
        res.Sim.Cluster.cluster_seconds res.Sim.Cluster.efficiency)
    [ 1.; 10.; 40.; 100.; 400. ];

  (* Per-node: does double-buffering (k < m with overlapped transfers)
     beat the paper's evaluated k = m configuration? *)
  Format.printf "@.single node, overlapped transfers (future work):@.";
  let sys_km = Cfd_core.Compile.build_system ~force_k:16 ~n_elements:50000 r in
  let sys_batch =
    Cfd_core.Compile.build_system ~force_k:8 ~force_m:16 ~n_elements:50000 r
  in
  let t_km = (Sim.Perf.run_hw ~system:sys_km ~board).Sim.Perf.total_seconds in
  let t_batch = (Sim.Perf.run_hw ~system:sys_batch ~board).Sim.Perf.total_seconds in
  let t_overlap =
    (Sim.Perf.run_hw_overlapped ~system:sys_batch ~board).Sim.Perf.total_seconds
  in
  Format.printf "  k=16 m=16, no overlap (paper's best): %.2f s@." t_km;
  Format.printf "  k=8  m=16, no overlap (paper's k<m) : %.2f s@." t_batch;
  Format.printf "  k=8  m=16, double-buffered          : %.2f s@." t_overlap;
  Format.printf
    "@.With transfers hidden, half the accelerators deliver %.0f%% of the@.\
     full configuration's throughput — the data point the paper's k<m@.\
     experiments were after.@."
    (100. *. t_km /. t_overlap)
