(* Custom kernel: writing your own CFDlang operator.

   A user-authored kernel exercising the rest of the DSL surface — scalar
   broadcasts, additions, a 2-D operator applied to a matrix unknown, and
   a chained contraction — compiled end to end with functional
   verification and C emission. The point of the DSL (Section VI: "9 lines
   of DSL and no particular hardware knowledge"): change the math below,
   re-run, and the whole accelerator regenerates.

   Run with: dune exec examples/custom_kernel.exe *)

(* A damped 2-D "diffusion step": w = u + dt * (A u + u A^T) o M,
   written in CFDlang as contractions of A against each index of u,
   an entry-wise mask, a scalar step size, and an addition. *)
let source =
  {|
var input  A : [16 16]
var input  M : [16 16]
var input  u : [16 16]
var output w : [16 16]
var lap : [16 16]
var masked : [16 16]
lap = A # u . [[1 2]] + u # A . [[1 3]]
masked = lap * M
w = u + masked * 0.01
|}

open Tensor

(* Independent reference implementation with the tensor library. *)
let reference a m u =
  (* lap = A u + u A^T: the first term contracts A's column index with
     u's row index; the second contracts both second indices. *)
  let au = Ops.contract_product [ a; u ] [ (1, 2) ] in
  let uat = Ops.contract_product [ u; a ] [ (1, 3) ] in
  let lap = Ops.add au uat in
  let masked = Ops.hadamard lap m in
  Ops.add u (Ops.scale 0.01 masked)

let () =
  let result =
    match Cfd_core.Compile.compile_source source with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  (* Verify against the DSL's own evaluator... *)
  assert (Cfd_core.Compile.verify result);
  (* ...and against the hand-written reference above, to make sure the
     CFDlang spelling means what we think it means. *)
  let a = Dense.random ~seed:1 (Shape.create [ 16; 16 ]) in
  let m = Dense.random ~seed:2 (Shape.create [ 16; 16 ]) in
  let u = Dense.random ~seed:3 (Shape.create [ 16; 16 ]) in
  let outputs =
    Cfdlang.Eval.run result.Cfd_core.Compile.checked
      [ ("A", a); ("M", m); ("u", u) ]
  in
  let w = List.assoc "w" outputs in
  let expected = reference a m u in
  assert (Dense.equal ~tol:1e-9 w expected);
  Format.printf "custom kernel verified against two independent references@.@.";

  Format.printf "== generated C (what Vivado HLS would consume) ==@.%s@."
    result.Cfd_core.Compile.c_source;
  Format.printf "== HLS report ==@.%a@." Hls.Model.pp_report
    result.Cfd_core.Compile.hls;
  Format.printf "== Mnemosyne metadata ==@.%s@."
    result.Cfd_core.Compile.mnemosyne_metadata;
  let sys = Cfd_core.Compile.build_system ~n_elements:10000 result in
  Sysgen.System.validate sys;
  Format.printf "replicas on a ZCU106: k = m = %d@."
    sys.Sysgen.System.solution.Sysgen.Replicate.k
