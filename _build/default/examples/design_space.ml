(* Design-space exploration: the question Section III says the flow is
   built to answer — how do sharing, replication and the board budget
   trade off against each other?

   Uses the library's Explore API to sweep the paper's four configuration
   corners on two boards and print the outcomes plus the Pareto front.

   Run with: dune exec examples/design_space.exe *)

let n_elements = 50000

let explore board_name board =
  let config = { Sysgen.Replicate.default_config with Sysgen.Replicate.board } in
  Format.printf "@.=== %s ===@." board_name;
  let outcomes =
    Cfd_core.Explore.sweep ~config ~n_elements
      (Cfdlang.Ast.inverse_helmholtz ~p:11 ())
  in
  List.iter (fun o -> Format.printf "  %a@." Cfd_core.Explore.pp_outcome o) outcomes;
  Format.printf "Pareto front:@.";
  List.iter
    (fun o -> Format.printf "  * %a@." Cfd_core.Explore.pp_outcome o)
    (Cfd_core.Explore.pareto outcomes)

let () =
  explore "ZCU106 (the paper's board)" Fpga_platform.Board.zcu106;
  explore "ZCU102 (larger BRAM budget)" Fpga_platform.Board.zcu102;
  Format.printf
    "@.Reading: memory sharing nearly halves BRAM per kernel, doubling the@.\
     replicas the BRAM-bound ZCU106 can host. On a board with plenty of BRAM@.\
     the design becomes LUT/DSP-bound instead, and sharing buys headroom@.\
     rather than replicas. The direct (unfactorized) kernel is never on the@.\
     Pareto front: it burns ~40x the cycles for the same answer.@."
