(* Interpolation: the simpler spectral-element operator the paper notes is
   subsumed by Inverse Helmholtz (Section II-A).

   v = (S x S x S) u interpolates an element's nodal values through the
   operator matrix S along each spatial dimension — the workhorse of
   mesh-to-mesh transfers in SEM solvers. This example shows that the flow
   is not Helmholtz-specific: the same pipeline compiles, verifies, maps
   and replicates any CFDlang tensor kernel, and the factorization
   transform is what makes it affordable.

   Run with: dune exec examples/interpolation.exe *)

let source p =
  Printf.sprintf
    {|
var input  S : [%d %d]
var input  u : [%d %d %d]
var output v : [%d %d %d]
v = S # S # S # u . [[1 6] [3 7] [5 8]]
|}
    p p p p p p p p

let compile ?(factorize = true) p =
  let options = { Cfd_core.Compile.default_options with Cfd_core.Compile.factorize } in
  match Cfd_core.Compile.compile_source ~options (source p) with
  | Ok r -> r
  | Error msg -> failwith msg

let () =
  let p = 11 in
  let fact = compile p in
  let direct = compile ~factorize:false p in
  assert (Cfd_core.Compile.verify fact);
  assert (Cfd_core.Compile.verify direct);
  Format.printf "interpolation kernel, p = %d (both variants verified)@.@." p;
  let show label (r : Cfd_core.Compile.result) =
    let hls = r.Cfd_core.Compile.hls in
    Format.printf
      "%-11s: %8d cycles/element  %a  PLM %d BRAM18@." label
      hls.Hls.Model.latency_cycles Fpga_platform.Resource.pp
      hls.Hls.Model.resources
      r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams
  in
  show "factorized" fact;
  show "direct" direct;
  Format.printf "@.The O(p^6) -> O(p^4) factorization speeds one element up %.1fx.@.@."
    (float_of_int direct.Cfd_core.Compile.hls.Hls.Model.latency_cycles
    /. float_of_int fact.Cfd_core.Compile.hls.Hls.Model.latency_cycles);

  (* How large a parallel system does the interpolation kernel allow? *)
  let sys = Cfd_core.Compile.build_system ~n_elements:50000 fact in
  Sysgen.System.validate sys;
  Format.printf "largest ZCU106 system: k = m = %d interpolation kernels@."
    sys.Sysgen.System.solution.Sysgen.Replicate.k;
  let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board in
  let hw = Sim.Perf.run_hw ~system:sys ~board in
  let sw =
    (* three factorized stages, no Hadamard: half the Helmholtz flops *)
    Sim.Perf.run_sw ~variant:`Reference
      ~flops_per_element:((Tensor.Helmholtz.flops_factorized p - (p * p * p)) / 2)
      ~n_elements:50000 ~board
  in
  Format.printf "50,000 elements: HW %.3f s vs ARM %.3f s (%.2fx)@."
    hw.Sim.Perf.total_seconds sw.Sim.Perf.seconds
    (Sim.Perf.speedup_vs_sw ~sw hw)
