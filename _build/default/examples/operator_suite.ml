(* Operator suite: every spectral-element kernel in the library, through
   the whole flow.

   For each operator: compile with the paper's configuration, verify the
   generated accelerator functionally, and print the kernel report, PLM
   cost and largest ZCU106 system — the per-kernel table a solver team
   would consult when deciding what to offload.

   Run with: dune exec examples/operator_suite.exe *)

let () =
  let p = 11 in
  Format.printf
    "SEM operator suite at p = %d (paper configuration: factorized,@.\
     decoupled PLMs, Mnemosyne sharing, II=1):@.@."
    p;
  Format.printf "  %-18s %9s %7s %5s %7s %6s %6s@." "operator" "cycles/elt"
    "LUT" "DSP" "PLM B18" "max k" "verify";
  List.iter
    (fun (name, program) ->
      let r = Cfd_core.Compile.compile program in
      let ok = Cfd_core.Compile.verify ~seed:1 r in
      let hls = r.Cfd_core.Compile.hls in
      let max_k =
        match Cfd_core.Compile.build_system ~n_elements:1024 r with
        | sys -> sys.Sysgen.System.solution.Sysgen.Replicate.k
        | exception Sysgen.Replicate.Infeasible _ -> 0
      in
      Format.printf "  %-18s %9d %7d %5d %7d %6d %6s@." name
        hls.Hls.Model.latency_cycles
        hls.Hls.Model.resources.Fpga_platform.Resource.lut
        hls.Hls.Model.resources.Fpga_platform.Resource.dsp
        r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams max_k
        (if ok then "OK" else "FAIL"))
    (Cfdlang.Operators.all ~p ());
  Format.printf
    "@.The Inverse Helmholtz kernel subsumes the others (Section II): its@.\
     contraction structure contains interpolation twice, and its resource@.\
     profile upper-bounds the suite — which is why the paper evaluates it.@."
