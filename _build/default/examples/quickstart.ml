(* Quickstart: the paper's headline experiment in ~40 lines.

   Compile the Figure-1 Inverse Helmholtz kernel, check the generated
   accelerator against the DSL's reference semantics, build the largest
   system that fits a ZCU106, and estimate the speedup of a 50,000-element
   CFD simulation.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
// Inverse Helmholtz operator for polynomial degree p (extent 11)
var input  S : [11 11]
var input  D : [11 11 11]
var input  u : [11 11 11]
var output v : [11 11 11]
var t : [11 11 11]
var r : [11 11 11]
t = S # S # S # u . [[1 6] [3 7] [5 8]]
r = D * t
v = S # S # S # r . [[0 6] [2 7] [4 8]]
|}

let () =
  (* 1. Compile with the paper's configuration (factorized, decoupled
        memories, Mnemosyne sharing, II=1 pipelining). *)
  let result =
    match Cfd_core.Compile.compile_source source with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  Format.printf "== kernel report ==@.%a@.@." Hls.Model.pp_report
    result.Cfd_core.Compile.hls;
  Format.printf "== PLM architecture ==@.%a@.@."
    Mnemosyne.Memgen.pp_architecture result.Cfd_core.Compile.memory;

  (* 2. Functional verification: run the generated loop program (with its
        aliased PLM buffers) against the CFDlang reference evaluator. *)
  let ok = Cfd_core.Compile.verify result in
  Format.printf "functional verification: %s@.@." (if ok then "OK" else "FAILED");
  assert ok;

  (* 3. System generation: Equation (3) on the ZCU106. *)
  let system = Cfd_core.Compile.build_system ~n_elements:50000 result in
  Sysgen.System.validate system;
  Format.printf "== system ==@.%a@.@." Sysgen.System.pp system;

  (* 4. Performance: hardware vs the ARM A53 software baseline. *)
  let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board in
  let hw16 = Sim.Perf.run_hw ~system ~board in
  let hw1 =
    Sim.Perf.run_hw
      ~system:(Cfd_core.Compile.build_system ~force_k:1 ~n_elements:50000 result)
      ~board
  in
  let sw =
    Sim.Perf.run_sw ~variant:`Reference
      ~flops_per_element:(Tensor.Helmholtz.flops_factorized 11)
      ~n_elements:50000 ~board
  in
  Format.printf "SW (ARM A53 at 1.2 GHz): %.2f s@." sw.Sim.Perf.seconds;
  Format.printf "HW k=1  : %.2f s (%.2fx vs SW)@." hw1.Sim.Perf.total_seconds
    (Sim.Perf.speedup_vs_sw ~sw hw1);
  Format.printf "HW k=16 : %.2f s (%.2fx vs SW, %.2fx vs k=1)@."
    hw16.Sim.Perf.total_seconds
    (Sim.Perf.speedup_vs_sw ~sw hw16)
    (Sim.Perf.total_speedup ~baseline:hw1 hw16)
