(* A complete spectral-element solve with the accelerator in the loop.

   This is the application the paper's introduction motivates: a CFD-style
   simulation whose per-element kernel is dispatched through the compiled
   flow via a "predefined function handle" (Section III-B). We solve

       lambda u - Laplacian u = f   on (0,1)^3,  u = 0 on the boundary

   with conjugate gradients over a multi-element GLL mesh. The per-element
   operator runs through the full compiler (factorization, scheduling,
   Mnemosyne-shared PLMs, scalarized loop nest) and must agree with the
   CPU reference to machine precision, while the manufactured solution
   u* = sin(pi x) sin(pi y) sin(pi z) exhibits spectral p-convergence.

   Run with: dune exec examples/sem_solver.exe *)

let pi = Float.pi
let exact x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z)
let lambda = 1.0
let forcing x y z = (lambda +. (3.0 *. pi *. pi)) *. exact x y z

let () =
  Format.printf
    "Spectral-element Helmholtz solve, accelerator in the loop@.@.";
  (* The element kernel, as the compiler sees it: *)
  let mesh0 = Sem.Mesh.create ~ne:2 ~n:7 in
  let op0 = Sem.Operator.create ~lambda ~mesh:mesh0 () in
  Format.printf "element kernel (CFDlang):@.%s@."
    (Cfdlang.Ast.to_string (Sem.Operator.program op0));
  let compiled = Sem.Operator.compiled op0 in
  Format.printf "compiled: %a; PLM %d BRAM18@.@." Fpga_platform.Resource.pp
    compiled.Cfd_core.Compile.hls.Hls.Model.resources
    compiled.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams;

  Format.printf "p-convergence (2x2x2 elements, accelerator backend):@.";
  Format.printf "   n | CG iters | max error@.";
  List.iter
    (fun n ->
      let mesh = Sem.Mesh.create ~ne:2 ~n in
      let operator = Sem.Operator.create ~lambda ~mesh () in
      let u, stats =
        Sem.Solver.solve ~backend:Sem.Solver.Accelerator ~mesh ~operator
          ~f:forcing ()
      in
      Format.printf "  %2d | %8d | %.3e@." n stats.Sem.Solver.iterations
        (Sem.Solver.max_error mesh u ~exact))
    [ 3; 4; 5; 6 ];

  (* Cross-check the two backends on the largest case. *)
  let mesh = Sem.Mesh.create ~ne:2 ~n:6 in
  let operator = Sem.Operator.create ~lambda ~mesh () in
  let u_ref, _ =
    Sem.Solver.solve ~backend:Sem.Solver.Reference ~mesh ~operator ~f:forcing ()
  in
  let u_acc, _ =
    Sem.Solver.solve ~backend:Sem.Solver.Accelerator ~mesh ~operator ~f:forcing ()
  in
  let diff =
    Array.fold_left Float.max 0.0
      (Array.map2 (fun a b -> Float.abs (a -. b)) u_ref u_acc)
  in
  Format.printf "@.max |reference - accelerated| over all nodes: %.3e@." diff;
  Format.printf
    "@.The same kernel, scaled to a production simulation: a ZCU106 running@.\
     the paper's 16-kernel configuration applies this operator to 50,000@.\
     elements per CG iteration in ~%.2f s of simulated time.@."
    (let sys =
       Cfd_core.Compile.build_system ~n_elements:50000
         (Sem.Operator.compiled op0)
     in
     (Sim.Perf.run_hw ~system:sys
        ~board:Sysgen.Replicate.default_config.Sysgen.Replicate.board)
       .Sim.Perf.total_seconds)
