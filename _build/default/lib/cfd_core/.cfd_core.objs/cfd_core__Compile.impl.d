lib/cfd_core/compile.ml: Array Cfdlang Format Hashtbl Hls List Liveness Loopir Lower Mnemosyne Option Printf Result Sim Sysgen Tensor Tir
