lib/cfd_core/compile.mli: Cfdlang Hls Liveness Loopir Lower Mnemosyne Result Sim Sysgen Tir
