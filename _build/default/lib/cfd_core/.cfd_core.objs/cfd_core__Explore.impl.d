lib/cfd_core/explore.ml: Compile Float Format Fpga_platform List Mnemosyne Sim Sysgen
