lib/cfd_core/explore.mli: Cfdlang Compile Format Fpga_platform Sysgen
