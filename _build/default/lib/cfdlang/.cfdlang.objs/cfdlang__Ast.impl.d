lib/cfdlang/ast.ml: Float Format List Printf String
