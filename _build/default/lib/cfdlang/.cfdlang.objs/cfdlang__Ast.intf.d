lib/cfdlang/ast.mli: Format
