lib/cfdlang/check.ml: Array Ast Format Hashtbl Lexer List Option Parser Printf String
