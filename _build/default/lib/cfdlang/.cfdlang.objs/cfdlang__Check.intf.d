lib/cfdlang/check.mli: Ast Format
