lib/cfdlang/eval.ml: Ast Check Dense Format Hashtbl List Ops Shape Tensor
