lib/cfdlang/eval.mli: Ast Check Tensor
