lib/cfdlang/lexer.ml: Format List Printf String
