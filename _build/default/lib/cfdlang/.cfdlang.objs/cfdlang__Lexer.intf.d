lib/cfdlang/lexer.mli: Format
