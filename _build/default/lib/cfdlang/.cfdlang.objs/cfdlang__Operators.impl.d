lib/cfdlang/operators.ml: Ast
