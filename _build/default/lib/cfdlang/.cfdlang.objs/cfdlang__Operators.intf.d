lib/cfdlang/operators.mli: Ast
