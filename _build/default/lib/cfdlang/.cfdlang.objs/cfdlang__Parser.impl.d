lib/cfdlang/parser.ml: Ast Format Lexer List
