lib/cfdlang/parser.mli: Ast Lexer
