type io = Input | Output | Local

type decl = { name : string; io : io; dims : int list }

type expr =
  | Var of string
  | Num of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Prod of expr * expr
  | Contract of expr * (int * int) list

type stmt = { lhs : string; rhs : expr }
type program = { decls : decl list; stmts : stmt list }

let pp_io ppf = function
  | Input -> Format.pp_print_string ppf "input"
  | Output -> Format.pp_print_string ppf "output"
  | Local -> ()

(* Precedence levels, loosest to tightest: add(0) mul(1) contract(2) prod(3).
   A subexpression is parenthesized when its level is looser than the
   context's. *)
let level = function
  | Add _ | Sub _ -> 0
  | Mul _ | Div _ -> 1
  | Contract _ -> 2
  | Prod _ -> 3
  | Var _ | Num _ -> 4

let rec pp_at ctx ppf e =
  let lvl = level e in
  let atomized = lvl < ctx in
  if atomized then Format.pp_print_char ppf '(';
  (match e with
  | Var v -> Format.pp_print_string ppf v
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%.1f" f
      else Format.fprintf ppf "%g" f
  | Add (a, b) -> Format.fprintf ppf "%a + %a" (pp_at 0) a (pp_at 1) b
  | Sub (a, b) -> Format.fprintf ppf "%a - %a" (pp_at 0) a (pp_at 1) b
  | Mul (a, b) -> Format.fprintf ppf "%a * %a" (pp_at 1) a (pp_at 2) b
  | Div (a, b) -> Format.fprintf ppf "%a / %a" (pp_at 1) a (pp_at 2) b
  | Contract (a, pairs) ->
      Format.fprintf ppf "%a . [%s]" (pp_at 3) a
        (String.concat " "
           (List.map (fun (x, y) -> Printf.sprintf "[%d %d]" x y) pairs))
  | Prod (a, b) -> Format.fprintf ppf "%a # %a" (pp_at 3) a (pp_at 4) b);
  if atomized then Format.pp_print_char ppf ')'

let pp_expr ppf e = pp_at 0 ppf e

let pp_decl ppf d =
  Format.fprintf ppf "var %s%s : [%s]"
    (match d.io with Input -> "input " | Output -> "output " | Local -> "")
    d.name
    (String.concat " " (List.map string_of_int d.dims))

let pp_stmt ppf s = Format.fprintf ppf "%s = %a" s.lhs pp_expr s.rhs

let pp_program ppf p =
  List.iter (fun d -> Format.fprintf ppf "%a@\n" pp_decl d) p.decls;
  List.iter (fun s -> Format.fprintf ppf "%a@\n" pp_stmt s) p.stmts

let to_string p = Format.asprintf "%a" pp_program p

let inverse_helmholtz ?(p = 11) () =
  let c3 = [ p; p; p ] in
  {
    decls =
      [
        { name = "S"; io = Input; dims = [ p; p ] };
        { name = "D"; io = Input; dims = c3 };
        { name = "u"; io = Input; dims = c3 };
        { name = "v"; io = Output; dims = c3 };
        { name = "t"; io = Local; dims = c3 };
        { name = "r"; io = Local; dims = c3 };
      ];
    stmts =
      [
        {
          lhs = "t";
          rhs =
            Contract
              ( Prod (Prod (Prod (Var "S", Var "S"), Var "S"), Var "u"),
                [ (1, 6); (3, 7); (5, 8) ] );
        };
        { lhs = "r"; rhs = Mul (Var "D", Var "t") };
        {
          lhs = "v";
          rhs =
            Contract
              ( Prod (Prod (Prod (Var "S", Var "S"), Var "S"), Var "r"),
                [ (0, 6); (2, 7); (4, 8) ] );
        };
      ];
  }

let interpolation ?(p = 11) () =
  let c3 = [ p; p; p ] in
  {
    decls =
      [
        { name = "S"; io = Input; dims = [ p; p ] };
        { name = "u"; io = Input; dims = c3 };
        { name = "v"; io = Output; dims = c3 };
      ];
    stmts =
      [
        {
          lhs = "v";
          rhs =
            Contract
              ( Prod (Prod (Prod (Var "S", Var "S"), Var "S"), Var "u"),
                [ (1, 6); (3, 7); (5, 8) ] );
        };
      ];
  }
