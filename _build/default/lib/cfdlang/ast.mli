(** Abstract syntax of the CFDlang DSL (Section II-B).

    A program is a list of tensor declarations followed by assignments.
    Expressions combine element-wise arithmetic, the outer ("tensor")
    product [#], and contraction [expr . \[\[a b\] ...\]], whose index pairs
    refer to the dimensions of the operand numbered from 0 (Figure 1). *)

type io = Input | Output | Local

type decl = {
  name : string;
  io : io;
  dims : int list;  (** extent per dimension; [\[\]] declares a scalar *)
}

type expr =
  | Var of string
  | Num of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr  (** element-wise (Hadamard) product *)
  | Div of expr * expr
  | Prod of expr * expr  (** outer product [#] *)
  | Contract of expr * (int * int) list

type stmt = { lhs : string; rhs : expr }
type program = { decls : decl list; stmts : stmt list }

val pp_io : Format.formatter -> io -> unit
val pp_expr : Format.formatter -> expr -> unit
(** Prints in concrete CFDlang syntax with minimal parentheses; parsing the
    result yields the same AST (round-trip tested). *)

val pp_decl : Format.formatter -> decl -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit
val to_string : program -> string

val inverse_helmholtz : ?p:int -> unit -> program
(** The Figure-1 program: the Inverse Helmholtz operator for extent
    [p] (default 11, i.e. polynomial degree 10). *)

val interpolation : ?p:int -> unit -> program
(** The simpler tensor-product interpolation operator v = (S⊗S⊗S)u. *)
