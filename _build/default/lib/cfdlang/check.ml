type error = { message : string }

exception Type_error of string

let pp_error ppf e = Format.pp_print_string ppf e.message
let errf fmt = Format.kasprintf (fun message -> Error { message }) fmt

let shape_str dims =
  "[" ^ String.concat " " (List.map string_of_int dims) ^ "]"

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let rec infer ~env expr =
  let elementwise op a b =
    let* sa = infer ~env a in
    let* sb = infer ~env b in
    match (sa, sb) with
    | [], s | s, [] -> Ok s (* scalar broadcast *)
    | _ when sa = sb -> Ok sa
    | _ ->
        errf "element-wise %s of mismatched shapes %s and %s" op
          (shape_str sa) (shape_str sb)
  in
  match expr with
  | Ast.Num _ -> Ok []
  | Ast.Var v -> (
      match env v with
      | Some s -> Ok s
      | None -> errf "use of undeclared or not-yet-defined tensor %s" v)
  | Ast.Add (a, b) -> elementwise "+" a b
  | Ast.Sub (a, b) -> elementwise "-" a b
  | Ast.Mul (a, b) -> elementwise "*" a b
  | Ast.Div (a, b) -> elementwise "/" a b
  | Ast.Prod (a, b) ->
      let* sa = infer ~env a in
      let* sb = infer ~env b in
      Ok (sa @ sb)
  | Ast.Contract (a, pairs) -> (
      let* sa = infer ~env a in
      let n = List.length sa in
      let extents = Array.of_list sa in
      let used = Array.make (max n 1) false in
      let rec validate = function
        | [] -> Ok ()
        | (x, y) :: rest ->
            if x < 0 || x >= n || y < 0 || y >= n then
              errf "contraction pair [%d %d] out of range for rank %d" x y n
            else if x = y then errf "contraction pair [%d %d] is degenerate" x y
            else if used.(x) || used.(y) then
              errf "dimension reused in contraction pair [%d %d]" x y
            else if extents.(x) <> extents.(y) then
              errf "contraction pair [%d %d] joins extents %d and %d" x y
                extents.(x) extents.(y)
            else begin
              used.(x) <- true;
              used.(y) <- true;
              validate rest
            end
      in
      match validate pairs with
      | Error _ as e -> e
      | Ok () ->
          Ok
            (List.filteri (fun i _ -> not used.(i)) sa))

type checked = {
  program : Ast.program;
  shape_of : string -> int list;
  stmt_shapes : (string * int list) list;
}

let check (program : Ast.program) =
  (* Declarations: unique names, positive extents. *)
  let decl_tbl = Hashtbl.create 16 in
  let rec check_decls = function
    | [] -> Ok ()
    | (d : Ast.decl) :: rest ->
        if Hashtbl.mem decl_tbl d.name then
          errf "tensor %s declared twice" d.name
        else if List.exists (fun e -> e < 1) d.dims then
          errf "tensor %s has a non-positive extent" d.name
        else begin
          Hashtbl.add decl_tbl d.name d;
          check_decls rest
        end
  in
  let* () = check_decls program.decls in
  (* Statements: single assignment, def-before-use, no writes to inputs. *)
  let defined = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.decl) ->
      if d.io = Ast.Input then Hashtbl.add defined d.name ())
    program.decls;
  let env name =
    if Hashtbl.mem defined name then
      Option.map
        (fun (d : Ast.decl) -> d.dims)
        (Hashtbl.find_opt decl_tbl name)
    else None
  in
  let rec check_stmts acc = function
    | [] -> Ok (List.rev acc)
    | (s : Ast.stmt) :: rest -> (
        match Hashtbl.find_opt decl_tbl s.lhs with
        | None -> errf "assignment to undeclared tensor %s" s.lhs
        | Some d when d.io = Ast.Input -> errf "assignment to input tensor %s" s.lhs
        | Some d ->
            if Hashtbl.mem defined s.lhs && d.io <> Ast.Input then
              errf "tensor %s assigned more than once" s.lhs
            else
              let* shape = infer ~env s.rhs in
              if shape <> d.dims then
                errf "assignment to %s : %s from expression of shape %s" s.lhs
                  (shape_str d.dims) (shape_str shape)
              else begin
                Hashtbl.add defined s.lhs ();
                check_stmts ((s.lhs, shape) :: acc) rest
              end)
  in
  let* stmt_shapes = check_stmts [] program.stmts in
  (* Every output must have been assigned. *)
  let rec check_outputs = function
    | [] -> Ok ()
    | (d : Ast.decl) :: rest ->
        if d.io = Ast.Output && not (Hashtbl.mem defined d.name) then
          errf "output tensor %s is never assigned" d.name
        else check_outputs rest
  in
  let* () = check_outputs program.decls in
  Ok
    {
      program;
      shape_of =
        (fun name ->
          match Hashtbl.find_opt decl_tbl name with
          | Some d -> d.dims
          | None -> raise Not_found);
      stmt_shapes;
    }

let rec expr_uses acc = function
  | Ast.Var v -> v :: acc
  | Ast.Num _ -> acc
  | Ast.Add (a, b) | Ast.Sub (a, b) | Ast.Mul (a, b) | Ast.Div (a, b)
  | Ast.Prod (a, b) ->
      expr_uses (expr_uses acc a) b
  | Ast.Contract (a, _) -> expr_uses acc a

let warnings (checked : checked) =
  let program = checked.program in
  let used =
    List.concat_map (fun (s : Ast.stmt) -> expr_uses [] s.rhs) program.stmts
  in
  List.filter_map
    (fun (d : Ast.decl) ->
      let is_used = List.mem d.name used in
      match d.io with
      | Ast.Input when not is_used ->
          Some (Printf.sprintf "input tensor %s is never read" d.name)
      | Ast.Local when not is_used ->
          Some
            (Printf.sprintf "local tensor %s is assigned but never consumed"
               d.name)
      | Ast.Input | Ast.Output | Ast.Local -> None)
    program.decls

let check_exn program =
  match check program with
  | Ok c -> c
  | Error e -> raise (Type_error e.message)

let parse_and_check src =
  match Parser.parse src with
  | program -> check program
  | exception Parser.Error (pos, msg) ->
      errf "parse error at %d:%d: %s" pos.Lexer.line pos.Lexer.col msg
  | exception Lexer.Error (pos, msg) ->
      errf "lexical error at %d:%d: %s" pos.Lexer.line pos.Lexer.col msg
