(** CFDlang type checker: shape inference and program validation.

    Enforces the static discipline the paper's value-based abstraction
    relies on (Section IV-B): statically shaped, non-aliasing tensor
    values, each named tensor assigned at most once, inputs never
    assigned, outputs assigned exactly once, every use preceded by a
    definition. *)

type error = { message : string }

exception Type_error of string

val pp_error : Format.formatter -> error -> unit

val infer :
  env:(string -> int list option) -> Ast.expr -> (int list, error) result
(** Shape of an expression given declared variable shapes. Scalars
    broadcast over element-wise operators; tensors of equal shape combine
    element-wise; [#] concatenates shapes; contraction removes paired
    dimensions (validated for range, disjointness and equal extents). *)

type checked = {
  program : Ast.program;
  shape_of : string -> int list;  (** raises [Not_found] for unknown names *)
  stmt_shapes : (string * int list) list;  (** lhs name, shape per stmt *)
}

val check : Ast.program -> (checked, error) result

val warnings : checked -> string list
(** Non-fatal diagnostics: inputs that are never read, and local tensors
    that are assigned but never consumed (dead code the optimizer will
    remove, usually a sign of a typo in the kernel). *)

val check_exn : Ast.program -> checked
(** @raise Type_error with the error message. *)

val parse_and_check : string -> (checked, error) result
(** Convenience: parse source text and check it; lexer/parser failures are
    reported as errors too. *)
