exception Eval_error of string

type bindings = (string * Tensor.Dense.t) list

let errf fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

open Tensor

(* Element-wise application with scalar broadcast. *)
let broadcast2 op a b =
  let ra = Shape.rank (Dense.shape a) and rb = Shape.rank (Dense.shape b) in
  if ra = 0 && rb > 0 then Dense.map (op (Dense.get a [])) b
  else if rb = 0 && ra > 0 then Dense.map (fun x -> op x (Dense.get b [])) a
  else Dense.map2 op a b

(* Collect the factors of a product chain left to right so that a
   contraction over the chain can be computed without materializing the
   outer product. *)
let rec product_factors ~env expr acc =
  match expr with
  | Ast.Prod (a, b) -> product_factors ~env a (eval ~env b :: acc)
  | e -> eval ~env e :: acc

and eval ~env expr =
  match expr with
  | Ast.Num f -> Dense.scalar f
  | Ast.Var v -> (
      match env v with
      | Some t -> t
      | None -> errf "unbound tensor %s" v)
  | Ast.Add (a, b) -> broadcast2 ( +. ) (eval ~env a) (eval ~env b)
  | Ast.Sub (a, b) -> broadcast2 ( -. ) (eval ~env a) (eval ~env b)
  | Ast.Mul (a, b) -> broadcast2 ( *. ) (eval ~env a) (eval ~env b)
  | Ast.Div (a, b) -> broadcast2 ( /. ) (eval ~env a) (eval ~env b)
  | Ast.Prod (a, b) -> Ops.outer (eval ~env a) (eval ~env b)
  | Ast.Contract (operand, pairs) -> (
      let factors = product_factors ~env operand [] in
      match Ops.contract_product factors pairs with
      | t -> t
      | exception Ops.Error msg -> errf "contraction failed: %s" msg)

let eval_expr ~env expr = eval ~env expr

let run (checked : Check.checked) inputs =
  let program = checked.Check.program in
  let values = Hashtbl.create 16 in
  (* Validate and bind inputs. *)
  List.iter
    (fun (d : Ast.decl) ->
      match d.io with
      | Ast.Input -> (
          match List.assoc_opt d.name inputs with
          | None -> errf "missing input binding for %s" d.name
          | Some t ->
              if Shape.dims (Dense.shape t) <> d.dims then
                errf "input %s has shape %s, declared %s" d.name
                  (Shape.to_string (Dense.shape t))
                  (Shape.to_string (Shape.create d.dims));
              Hashtbl.replace values d.name t)
      | Ast.Output | Ast.Local -> ())
    program.decls;
  List.iter
    (fun (name, _) ->
      if
        not
          (List.exists
             (fun (d : Ast.decl) -> d.name = name && d.io = Ast.Input)
             program.decls)
      then errf "binding for %s does not correspond to an input" name)
    inputs;
  let env name = Hashtbl.find_opt values name in
  List.iter
    (fun (s : Ast.stmt) -> Hashtbl.replace values s.lhs (eval ~env s.rhs))
    program.stmts;
  List.filter_map
    (fun (d : Ast.decl) ->
      if d.io = Ast.Output then Some (d.name, Hashtbl.find values d.name)
      else None)
    program.decls

let random_inputs ?(seed = 0) (checked : Check.checked) =
  List.filter_map
    (fun (d : Ast.decl) ->
      if d.io = Ast.Input then
        Some
          ( d.name,
            Dense.random
              ~seed:(seed + Hashtbl.hash d.name)
              (Shape.create d.dims) )
      else None)
    checked.Check.program.decls
