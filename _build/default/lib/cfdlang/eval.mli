(** Reference interpreter for checked CFDlang programs.

    Gives the DSL its denotational semantics in terms of {!Tensor} values;
    every later compiler stage (IR transforms, schedules, layouts, memory
    sharing) is validated against this evaluator. *)

exception Eval_error of string

type bindings = (string * Tensor.Dense.t) list

val eval_expr : env:(string -> Tensor.Dense.t option) -> Ast.expr -> Tensor.Dense.t
(** @raise Eval_error on unbound variables (checked programs cannot
    trigger this). *)

val run : Check.checked -> bindings -> bindings
(** [run checked inputs] executes all statements and returns the bindings
    of the output tensors. Input bindings must cover exactly the declared
    inputs with matching shapes. @raise Eval_error otherwise. *)

val random_inputs : ?seed:int -> Check.checked -> bindings
(** Deterministic random values for all declared inputs. *)
