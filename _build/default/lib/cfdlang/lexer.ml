type token =
  | VAR
  | INPUT
  | OUTPUT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | COLON
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | HASH
  | DOT
  | EOF

type pos = { line : int; col : int }

exception Error of pos * string

let pp_token ppf t =
  Format.pp_print_string ppf
    (match t with
    | VAR -> "var"
    | INPUT -> "input"
    | OUTPUT -> "output"
    | IDENT s -> s
    | INT n -> string_of_int n
    | FLOAT f -> string_of_float f
    | COLON -> ":"
    | LBRACK -> "["
    | RBRACK -> "]"
    | LPAREN -> "("
    | RPAREN -> ")"
    | EQUALS -> "="
    | PLUS -> "+"
    | MINUS -> "-"
    | STAR -> "*"
    | SLASH -> "/"
    | HASH -> "#"
    | DOT -> "."
    | EOF -> "<eof>")

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let tokens = ref [] in
  let emit pos tok = tokens := (tok, pos) :: !tokens in
  let i = ref 0 in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let pos = { line = !line; col = !col } in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      emit pos
        (match word with
        | "var" -> VAR
        | "input" -> INPUT
        | "output" -> OUTPUT
        | _ -> IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let is_float =
        !i + 1 < n && src.[!i] = '.' && is_digit src.[!i + 1]
      in
      if is_float then begin
        advance ();
        while !i < n && is_digit src.[!i] do
          advance ()
        done;
        let text = String.sub src start (!i - start) in
        match float_of_string_opt text with
        | Some f -> emit pos (FLOAT f)
        | None -> raise (Error (pos, "malformed number " ^ text))
      end
      else
        let text = String.sub src start (!i - start) in
        match int_of_string_opt text with
        | Some v -> emit pos (INT v)
        | None -> raise (Error (pos, "malformed integer " ^ text))
    end
    else begin
      let simple tok =
        advance ();
        emit pos tok
      in
      match c with
      | ':' -> simple COLON
      | '[' -> simple LBRACK
      | ']' -> simple RBRACK
      | '(' -> simple LPAREN
      | ')' -> simple RPAREN
      | '=' -> simple EQUALS
      | '+' -> simple PLUS
      | '-' -> simple MINUS
      | '*' -> simple STAR
      | '/' -> simple SLASH
      | '#' -> simple HASH
      | '.' -> simple DOT
      | _ -> raise (Error (pos, Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit { line = !line; col = !col } EOF;
  List.rev !tokens
