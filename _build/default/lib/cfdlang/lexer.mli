(** Hand-written lexer for CFDlang source text. *)

type token =
  | VAR
  | INPUT
  | OUTPUT
  | IDENT of string
  | INT of int
  | FLOAT of float
  | COLON
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | EQUALS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | HASH
  | DOT
  | EOF

type pos = { line : int; col : int }

exception Error of pos * string

val tokenize : string -> (token * pos) list
(** Whole-input tokenization; supports [//] line comments.
    @raise Error on unexpected characters or malformed numbers. *)

val pp_token : Format.formatter -> token -> unit
