let interpolation = Ast.interpolation
let inverse_helmholtz = Ast.inverse_helmholtz

let c3 p = [ p; p; p ]

let gradient ?(p = 11) () =
  {
    Ast.decls =
      [
        { Ast.name = "Dm"; io = Ast.Input; dims = [ p; p ] };
        { Ast.name = "u"; io = Ast.Input; dims = c3 p };
        { Ast.name = "gx"; io = Ast.Output; dims = c3 p };
        { Ast.name = "gy"; io = Ast.Output; dims = c3 p };
        { Ast.name = "gz"; io = Ast.Output; dims = c3 p };
      ];
    stmts =
      [
        (* gx[i,j,k] = sum_l Dm[i,l] u[l,j,k] *)
        {
          Ast.lhs = "gx";
          rhs = Ast.Contract (Ast.Prod (Ast.Var "Dm", Ast.Var "u"), [ (1, 2) ]);
        };
        (* gy[j,i,k] = sum_m Dm[j,m] u[i,m,k]: contract Dm's 2nd dim with
           u's middle dim; output order (Dm-free, i, k) *)
        {
          Ast.lhs = "gy";
          rhs = Ast.Contract (Ast.Prod (Ast.Var "Dm", Ast.Var "u"), [ (1, 3) ]);
        };
        (* gz[k,i,j] = sum_n Dm[k,n] u[i,j,n] *)
        {
          Ast.lhs = "gz";
          rhs = Ast.Contract (Ast.Prod (Ast.Var "Dm", Ast.Var "u"), [ (1, 4) ]);
        };
      ];
  }

let laplacian ?(p = 11) () =
  {
    Ast.decls =
      [
        { Ast.name = "A"; io = Ast.Input; dims = [ p; p ] };
        { Ast.name = "Id"; io = Ast.Input; dims = [ p; p ] };
        { Ast.name = "u"; io = Ast.Input; dims = c3 p };
        { Ast.name = "lap"; io = Ast.Output; dims = c3 p };
        { Ast.name = "t1"; io = Ast.Local; dims = c3 p };
        { Ast.name = "t2"; io = Ast.Local; dims = c3 p };
        { Ast.name = "t3"; io = Ast.Local; dims = c3 p };
      ];
    stmts =
      [
        (* t1[i,j,k] = sum_l A[i,l] u[l,j,k] *)
        {
          Ast.lhs = "t1";
          rhs = Ast.Contract (Ast.Prod (Ast.Var "A", Ast.Var "u"), [ (1, 2) ]);
        };
        (* t2[i,j,k] = sum_{l,m} Id[i,l] A[j,m] u[l,m,k] *)
        {
          Ast.lhs = "t2";
          rhs =
            Ast.Contract
              ( Ast.Prod (Ast.Prod (Ast.Var "Id", Ast.Var "A"), Ast.Var "u"),
                [ (1, 4); (3, 5) ] );
        };
        (* t3[i,j,k] = sum_{l,m,n} Id[i,l] Id[j,m] A[k,n] u[l,m,n] *)
        {
          Ast.lhs = "t3";
          rhs =
            Ast.Contract
              ( Ast.Prod
                  (Ast.Prod (Ast.Prod (Ast.Var "Id", Ast.Var "Id"), Ast.Var "A"),
                   Ast.Var "u"),
                [ (1, 6); (3, 7); (5, 8) ] );
        };
        { Ast.lhs = "lap"; rhs = Ast.Add (Ast.Add (Ast.Var "t1", Ast.Var "t2"), Ast.Var "t3") };
      ];
  }

let mass ?(p = 11) () =
  {
    Ast.decls =
      [
        { Ast.name = "W"; io = Ast.Input; dims = c3 p };
        { Ast.name = "u"; io = Ast.Input; dims = c3 p };
        { Ast.name = "w"; io = Ast.Output; dims = c3 p };
      ];
    stmts = [ { Ast.lhs = "w"; rhs = Ast.Mul (Ast.Var "W", Ast.Var "u") } ];
  }

let all ?(p = 11) () =
  [
    ("interpolation", interpolation ~p ());
    ("inverse_helmholtz", inverse_helmholtz ~p ());
    ("gradient", gradient ~p ());
    ("laplacian", laplacian ~p ());
    ("mass", mass ~p ());
  ]
