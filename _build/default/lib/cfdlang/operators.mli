(** A library of spectral-element operators expressed in CFDlang.

    Section II notes the Inverse Helmholtz operator "is complex enough to
    subsume simpler operators (e.g., interpolation) which are similarly
    relevant in CFD simulations". This module collects those operators as
    CFDlang programs so the whole flow can be exercised on the kernels an
    SEM solver actually dispatches per element. Each program is verified
    against an independent dense-tensor reference in the test suite. *)

val interpolation : ?p:int -> unit -> Ast.program
(** v = (S ⊗ S ⊗ S) u — alias of {!Ast.interpolation}. *)

val inverse_helmholtz : ?p:int -> unit -> Ast.program
(** The Figure-1 kernel — alias of {!Ast.inverse_helmholtz}. *)

val gradient : ?p:int -> unit -> Ast.program
(** Per-element derivatives along the three reference directions from the
    1-D differentiation matrix Dm:

    gx\[i,j,k\] = Σ_l Dm\[i,l\] u\[l,j,k\]

    and analogously gy, gz. Note the component layouts: the derivative
    index comes first, so gy is produced as gy\[j,i,k\] and gz as
    gz\[k,i,j\] — the usual SEM convention of keeping the sweep direction
    leading; consumers permute on read. *)

val laplacian : ?p:int -> unit -> Ast.program
(** Collocation Laplacian lap = (A⊗I⊗I + I⊗A⊗I + I⊗I⊗A) u from the 1-D
    stiffness matrix A. The identity factors are explicit inputs ([Id]),
    making every term a tensor-times-matrices contraction the factorizer
    reduces to O(p^4). All three terms come out in \[i,j,k\] order. *)

val mass : ?p:int -> unit -> Ast.program
(** Mass-matrix application on the collocation grid: w = W ∘ u with the
    per-point quadrature weights W. *)

val all : ?p:int -> unit -> (string * Ast.program) list
(** Every operator above with its name, for sweeps and examples. *)
