exception Error of Lexer.pos * string

type state = { mutable toks : (Lexer.token * Lexer.pos) list }

let peek st =
  match st.toks with
  | [] -> (Lexer.EOF, { Lexer.line = 0; col = 0 })
  | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let errorf pos fmt = Format.kasprintf (fun s -> raise (Error (pos, s))) fmt

let expect st want =
  let tok, pos = peek st in
  if tok = want then advance st
  else
    errorf pos "expected %s but found %s"
      (Format.asprintf "%a" Lexer.pp_token want)
      (Format.asprintf "%a" Lexer.pp_token tok)

let expect_ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      name
  | tok, pos ->
      errorf pos "expected identifier but found %a" Lexer.pp_token tok

let expect_int st =
  match peek st with
  | Lexer.INT v, _ ->
      advance st;
      v
  | tok, pos -> errorf pos "expected integer but found %a" Lexer.pp_token tok

let parse_shape st =
  expect st Lexer.LBRACK;
  let dims = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.INT v, _ ->
        advance st;
        dims := v :: !dims;
        loop ()
    | Lexer.RBRACK, _ -> advance st
    | tok, pos ->
        errorf pos "expected dimension extent or ']' but found %a"
          Lexer.pp_token tok
  in
  loop ();
  List.rev !dims

let parse_pairs st =
  (* "." has been consumed; parse [ [a b] [c d] ... ] *)
  expect st Lexer.LBRACK;
  let pairs = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.LBRACK, _ ->
        advance st;
        let a = expect_int st in
        let b = expect_int st in
        expect st Lexer.RBRACK;
        pairs := (a, b) :: !pairs;
        loop ()
    | Lexer.RBRACK, _ -> advance st
    | tok, pos ->
        errorf pos "expected index pair or ']' but found %a" Lexer.pp_token tok
  in
  loop ();
  List.rev !pairs

let rec parse_add st =
  let lhs = ref (parse_mul st) in
  let rec loop () =
    match peek st with
    | Lexer.PLUS, _ ->
        advance st;
        lhs := Ast.Add (!lhs, parse_mul st);
        loop ()
    | Lexer.MINUS, _ ->
        advance st;
        lhs := Ast.Sub (!lhs, parse_mul st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_contract st) in
  let rec loop () =
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        lhs := Ast.Mul (!lhs, parse_contract st);
        loop ()
    | Lexer.SLASH, _ ->
        advance st;
        lhs := Ast.Div (!lhs, parse_contract st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_contract st =
  let lhs = ref (parse_prod st) in
  let rec loop () =
    match peek st with
    | Lexer.DOT, _ ->
        advance st;
        lhs := Ast.Contract (!lhs, parse_pairs st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_prod st =
  let lhs = ref (parse_atom st) in
  let rec loop () =
    match peek st with
    | Lexer.HASH, _ ->
        advance st;
        lhs := Ast.Prod (!lhs, parse_atom st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_atom st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      Ast.Var name
  | Lexer.INT v, _ ->
      advance st;
      Ast.Num (float_of_int v)
  | Lexer.FLOAT f, _ ->
      advance st;
      Ast.Num f
  | Lexer.MINUS, _ ->
      (* unary minus: -e parses as 0 - e *)
      advance st;
      Ast.Sub (Ast.Num 0.0, parse_atom st)
  | Lexer.LPAREN, _ ->
      advance st;
      let e = parse_add st in
      expect st Lexer.RPAREN;
      e
  | tok, pos -> errorf pos "expected expression but found %a" Lexer.pp_token tok

let parse_decl st =
  expect st Lexer.VAR;
  let io =
    match peek st with
    | Lexer.INPUT, _ ->
        advance st;
        Ast.Input
    | Lexer.OUTPUT, _ ->
        advance st;
        Ast.Output
    | _ -> Ast.Local
  in
  let name = expect_ident st in
  expect st Lexer.COLON;
  let dims = parse_shape st in
  { Ast.name; io; dims }

let parse_stmt st =
  let lhs = expect_ident st in
  expect st Lexer.EQUALS;
  let rhs = parse_add st in
  { Ast.lhs; rhs }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let decls = ref [] in
  let rec decl_loop () =
    match peek st with
    | Lexer.VAR, _ ->
        decls := parse_decl st :: !decls;
        decl_loop ()
    | _ -> ()
  in
  decl_loop ();
  let stmts = ref [] in
  let rec stmt_loop () =
    match peek st with
    | Lexer.IDENT _, _ ->
        stmts := parse_stmt st :: !stmts;
        stmt_loop ()
    | Lexer.EOF, _ -> ()
    | tok, pos ->
        errorf pos "expected statement or end of file but found %a"
          Lexer.pp_token tok
  in
  stmt_loop ();
  { Ast.decls = List.rev !decls; stmts = List.rev !stmts }

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_add st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | tok, pos -> errorf pos "trailing input: %a" Lexer.pp_token tok);
  e
