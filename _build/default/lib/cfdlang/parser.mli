(** Recursive-descent parser for CFDlang.

    Grammar (precedence loosest to tightest; all binary operators are
    left-associative):

    {v
    program  := decl* stmt* EOF
    decl     := "var" ("input" | "output")? IDENT ":" "[" INT* "]"
    stmt     := IDENT "=" add
    add      := mul (("+" | "-") mul)*
    mul      := con (("*" | "/") con)*
    con      := prod ("." "[" pair+ "]")*
    prod     := atom ("#" atom)*
    pair     := "[" INT INT "]"
    atom     := IDENT | INT | FLOAT | "-" atom | "(" add ")"
    v}

    Unary minus desugars to [0 - e].

    The contraction operator binding looser than [#] makes
    [S # S # S # u . \[\[1 6\] \[3 7\] \[5 8\]\]] contract the whole outer
    product, as in Figure 1 of the paper. *)

exception Error of Lexer.pos * string

val parse : string -> Ast.program
(** @raise Error on syntax errors, @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests and the REPL example). *)
