lib/fpga_platform/board.ml: Format Resource
