lib/fpga_platform/board.mli: Format Resource
