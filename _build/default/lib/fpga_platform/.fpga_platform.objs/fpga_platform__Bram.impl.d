lib/fpga_platform/bram.ml:
