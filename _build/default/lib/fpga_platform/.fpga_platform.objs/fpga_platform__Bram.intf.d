lib/fpga_platform/bram.mli:
