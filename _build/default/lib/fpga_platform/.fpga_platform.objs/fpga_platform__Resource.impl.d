lib/fpga_platform/resource.ml: Buffer Format List String
