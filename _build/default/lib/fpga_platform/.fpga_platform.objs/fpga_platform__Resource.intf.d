lib/fpga_platform/resource.mli: Format
