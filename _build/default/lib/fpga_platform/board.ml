type t = {
  board_name : string;
  part : string;
  capacity : Resource.t;
  fmax_mhz : int;
  host_clock_mhz : int;
  axi_bytes_per_cycle : int;
}

let zcu106 =
  {
    board_name = "ZCU106";
    part = "xczu7ev-ffvc1156-2";
    capacity = Resource.make ~lut:230400 ~ff:460800 ~dsp:1728 ~bram18:624;
    fmax_mhz = 200;
    host_clock_mhz = 1200;
    axi_bytes_per_cycle = 16;
  }

let zcu102 =
  {
    board_name = "ZCU102";
    part = "xczu9eg-ffvb1156-2";
    capacity = Resource.make ~lut:274080 ~ff:548160 ~dsp:2520 ~bram18:1824;
    fmax_mhz = 200;
    host_clock_mhz = 1200;
    axi_bytes_per_cycle = 16;
  }

let small_test_board =
  {
    board_name = "test-board";
    part = "test";
    capacity = Resource.make ~lut:20000 ~ff:40000 ~dsp:64 ~bram18:100;
    fmax_mhz = 100;
    host_clock_mhz = 600;
    axi_bytes_per_cycle = 8;
  }

let pp ppf b =
  Format.fprintf ppf "%s (%s): %a @ %d MHz" b.board_name b.part Resource.pp
    b.capacity b.fmax_mhz
