(** FPGA board models: the resource budgets and clocks the system
    generator solves Equation (3) against. *)

type t = {
  board_name : string;
  part : string;
  capacity : Resource.t;
  fmax_mhz : int;  (** accelerator clock (the paper synthesizes at 200) *)
  host_clock_mhz : int;  (** host CPU clock (ARM A53 at 1200) *)
  axi_bytes_per_cycle : int;  (** host-FPGA data path width *)
}

val zcu106 : t
(** Xilinx Zynq UltraScale+ MPSoC ZCU106 (xczu7ev-ffvc1156-2): 230,400
    LUTs, 460,800 FFs, 1,728 DSPs, 312 BRAM36 = 624 BRAM18; quad-core ARM
    Cortex-A53 at 1.2 GHz (Section VI). *)

val zcu102 : t
(** A larger Zynq UltraScale+ board (xczu9eg): used by the scaling
    examples to show the flow retargets by swapping the board model. *)

val small_test_board : t
(** A deliberately tiny budget for unit tests of the replica solver. *)

val pp : Format.formatter -> t -> unit
