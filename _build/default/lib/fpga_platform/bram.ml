let bits = 18432
let word_width = 36
let depth = 512
let ports = 2

let ceil_div a b = (a + b - 1) / b

let count ~word_bits ~words =
  if word_bits <= 0 || words <= 0 then 0
  else if word_bits * words <= bits then 1
  else ceil_div word_bits word_width * ceil_div words depth

let count_array ~words = count ~word_bits:64 ~words
