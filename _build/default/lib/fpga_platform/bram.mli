(** BRAM-18K allocation rules.

    A RAMB18 primitive stores 18 Kib (512 x 36 in its widest natural
    configuration) and offers two ports. A PLM bank for [w]-bit words and
    [n] words costs [ceil(w/36) * ceil(n/512)] primitives — except that an
    array whose whole payload fits a single primitive is stored in packed
    half-word mode (two 36-bit rows per 64-bit word, fixed 2-cycle access
    that Mnemosyne's wrapper hides behind its fixed-latency interface),
    costing exactly 1. This rule reproduces the paper's per-kernel counts:
    an 11x11x11 double tensor costs 6 primitives and the 11x11 operator
    matrix S costs 1, giving 31 per kernel without sharing. *)

val bits : int
(** Capacity of one primitive: 18432 bits. *)

val word_width : int
(** Natural port width: 36 bits. *)

val depth : int
(** Rows at natural width: 512. *)

val ports : int
(** True dual port. *)

val count : word_bits:int -> words:int -> int
(** Primitives for one bank of [words] entries of [word_bits] bits. *)

val count_array : words:int -> int
(** {!count} for 64-bit (double) words. *)
