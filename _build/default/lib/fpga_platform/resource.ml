type t = { lut : int; ff : int; dsp : int; bram18 : int }

let zero = { lut = 0; ff = 0; dsp = 0; bram18 = 0 }
let make ~lut ~ff ~dsp ~bram18 = { lut; ff; dsp; bram18 }

let add a b =
  {
    lut = a.lut + b.lut;
    ff = a.ff + b.ff;
    dsp = a.dsp + b.dsp;
    bram18 = a.bram18 + b.bram18;
  }

let sub a b =
  {
    lut = a.lut - b.lut;
    ff = a.ff - b.ff;
    dsp = a.dsp - b.dsp;
    bram18 = a.bram18 - b.bram18;
  }

let scale k a =
  { lut = k * a.lut; ff = k * a.ff; dsp = k * a.dsp; bram18 = k * a.bram18 }

let sum = List.fold_left add zero

let fits a ~within =
  a.lut <= within.lut && a.ff <= within.ff && a.dsp <= within.dsp
  && a.bram18 <= within.bram18

let pct used cap = if cap = 0 then 0.0 else 100.0 *. float_of_int used /. float_of_int cap

let utilization a ~capacity =
  [
    ("LUT", pct a.lut capacity.lut);
    ("FF", pct a.ff capacity.ff);
    ("DSP", pct a.dsp capacity.dsp);
    ("BRAM18", pct a.bram18 capacity.bram18);
  ]

let with_commas n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp ppf a =
  Format.fprintf ppf "LUT %s  FF %s  DSP %s  BRAM18 %s" (with_commas a.lut)
    (with_commas a.ff) (with_commas a.dsp) (with_commas a.bram18)

let pp_with_capacity ~capacity ppf a =
  Format.fprintf ppf "LUT %s (%.1f%%)  FF %s (%.1f%%)  DSP %s (%.1f%%)  BRAM18 %s (%.1f%%)"
    (with_commas a.lut) (pct a.lut capacity.lut)
    (with_commas a.ff) (pct a.ff capacity.ff)
    (with_commas a.dsp) (pct a.dsp capacity.dsp)
    (with_commas a.bram18) (pct a.bram18 capacity.bram18)
