(** FPGA resource vectors: LUTs, flip-flops, DSP slices and BRAM-18K
    blocks — the quantities of Equation (3) and Table I. *)

type t = { lut : int; ff : int; dsp : int; bram18 : int }

val zero : t
val make : lut:int -> ff:int -> dsp:int -> bram18:int -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val sum : t list -> t

val fits : t -> within:t -> bool
(** Component-wise [<=]. *)

val utilization : t -> capacity:t -> (string * float) list
(** Percentage per component, in Table I order (LUT, FF, DSP, BRAM18). *)

val pp : Format.formatter -> t -> unit
val pp_with_capacity : capacity:t -> Format.formatter -> t -> unit
(** Table-I style: [11,318 (4.9%)]. *)
