lib/hls/model.ml: Format Fpga_platform List Loopir Op_library
