lib/hls/model.mli: Format Fpga_platform Loopir Op_library
