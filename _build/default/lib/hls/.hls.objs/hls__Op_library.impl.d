lib/hls/op_library.ml:
