lib/hls/op_library.mli:
