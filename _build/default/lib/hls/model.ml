type port = { port_array : string; port_dir : Loopir.Prog.direction; words : int }

type report = {
  kernel_name : string;
  resources : Fpga_platform.Resource.t;
  latency_cycles : int;
  interval_cycles : int;
  ports : port list;
  ops_shared : (Op_library.op_kind * int) list;
  loops : int;
  access_sites : int;
}

type op_counts = { mutable mul : int; mutable add : int; mutable sub : int; mutable div : int }

let rec count_expr_ops c (e : Loopir.Prog.fexpr) =
  match e with
  | Loopir.Prog.Const _ | Loopir.Prog.Load _ | Loopir.Prog.Scalar _ -> ()
  | Loopir.Prog.Add (a, b) ->
      c.add <- c.add + 1;
      count_expr_ops c a;
      count_expr_ops c b
  | Loopir.Prog.Sub (a, b) ->
      c.sub <- c.sub + 1;
      count_expr_ops c a;
      count_expr_ops c b
  | Loopir.Prog.Mul (a, b) ->
      c.mul <- c.mul + 1;
      count_expr_ops c a;
      count_expr_ops c b
  | Loopir.Prog.Div (a, b) ->
      c.div <- c.div + 1;
      count_expr_ops c a;
      count_expr_ops c b

let unroll_factor pragmas =
  List.fold_left
    (fun acc p ->
      match p with Loopir.Prog.Unroll u -> max acc u | Loopir.Prog.Pipeline _ -> acc)
    1 pragmas

(* Operator demand: ops inside an unrolled loop are replicated [factor]
   times (that is what the pragma asks HLS to instantiate). *)
let rec count_stmt_ops ?(mult = 1) c (s : Loopir.Prog.stmt) =
  match s with
  | Loopir.Prog.For l ->
      let mult = mult * unroll_factor l.pragmas in
      List.iter (count_stmt_ops ~mult c) l.body
  | Loopir.Prog.Store { value; _ } | Loopir.Prog.Set_scalar { value; _ } ->
      let inner = { mul = 0; add = 0; sub = 0; div = 0 } in
      count_expr_ops inner value;
      c.mul <- c.mul + (mult * inner.mul);
      c.add <- c.add + (mult * inner.add);
      c.sub <- c.sub + (mult * inner.sub);
      c.div <- c.div + (mult * inner.div)
  | Loopir.Prog.Accum { value; _ } | Loopir.Prog.Acc_scalar { value; _ } ->
      let inner = { mul = 0; add = 1; sub = 0; div = 0 } in
      count_expr_ops inner value;
      c.mul <- c.mul + (mult * inner.mul);
      c.add <- c.add + (mult * inner.add);
      c.sub <- c.sub + (mult * inner.sub);
      c.div <- c.div + (mult * inner.div)

(* Critical-path latency of an expression: operator latencies chained,
   plus a fixed-latency BRAM read at the leaves. *)
let rec expr_depth (e : Loopir.Prog.fexpr) =
  match e with
  | Loopir.Prog.Const _ | Loopir.Prog.Scalar _ -> 0
  | Loopir.Prog.Load _ -> 2
  | Loopir.Prog.Add (a, b) | Loopir.Prog.Sub (a, b) ->
      (Op_library.cost Op_library.Dadd).Op_library.latency
      + max (expr_depth a) (expr_depth b)
  | Loopir.Prog.Mul (a, b) ->
      (Op_library.cost Op_library.Dmul).Op_library.latency
      + max (expr_depth a) (expr_depth b)
  | Loopir.Prog.Div (a, b) ->
      (Op_library.cost Op_library.Ddiv).Op_library.latency
      + max (expr_depth a) (expr_depth b)

let pipeline_ii pragmas =
  List.find_map
    (function Loopir.Prog.Pipeline ii -> Some ii | Loopir.Prog.Unroll _ -> None)
    pragmas

let rec stmt_cycles (s : Loopir.Prog.stmt) =
  match s with
  | Loopir.Prog.For l ->
      let u = unroll_factor l.pragmas in
      let trips = (l.hi - l.lo + u - 1) / u in
      (match pipeline_ii l.pragmas with
      | Some ii ->
          (* pipelined loop: fill the pipe once, then [u] results per II *)
          let depth =
            List.fold_left (fun acc st -> max acc (leaf_depth st)) 1 l.body
          in
          depth + ((trips - 1) * ii)
      | None ->
          let body = List.fold_left (fun acc st -> acc + stmt_cycles st) 0 l.body in
          (l.hi - l.lo) * (body + 2) / u)
  | Loopir.Prog.Store { value; _ } -> 1 + expr_depth value
  | Loopir.Prog.Accum { value; _ } ->
      (* read-modify-write *)
      2 + expr_depth value
      + (Op_library.cost Op_library.Dadd).Op_library.latency
  | Loopir.Prog.Set_scalar { value; _ } -> 1 + expr_depth value
  | Loopir.Prog.Acc_scalar { value; _ } -> 1 + expr_depth value

and leaf_depth (s : Loopir.Prog.stmt) =
  match s with
  | Loopir.Prog.For _ -> stmt_cycles s
  | _ -> stmt_cycles s

let rec count_loops (s : Loopir.Prog.stmt) =
  match s with
  | Loopir.Prog.For l -> 1 + List.fold_left (fun a st -> a + count_loops st) 0 l.body
  | _ -> 0

let rec count_access_sites (s : Loopir.Prog.stmt) =
  let rec expr_sites (e : Loopir.Prog.fexpr) =
    match e with
    | Loopir.Prog.Const _ | Loopir.Prog.Scalar _ -> 0
    | Loopir.Prog.Load _ -> 1
    | Loopir.Prog.Add (a, b)
    | Loopir.Prog.Sub (a, b)
    | Loopir.Prog.Mul (a, b)
    | Loopir.Prog.Div (a, b) -> expr_sites a + expr_sites b
  in
  match s with
  | Loopir.Prog.For l -> List.fold_left (fun a st -> a + count_access_sites st) 0 l.body
  | Loopir.Prog.Store { value; _ } | Loopir.Prog.Accum { value; _ } ->
      1 + expr_sites value
  | Loopir.Prog.Set_scalar { value; _ } | Loopir.Prog.Acc_scalar { value; _ } ->
      expr_sites value

let analyze (proc : Loopir.Prog.proc) =
  Loopir.Prog.validate proc;
  (* Operator sharing: per top-level nest counts; allocation = max. *)
  let shared = { mul = 0; add = 0; sub = 0; div = 0 } in
  List.iter
    (fun s ->
      let c = { mul = 0; add = 0; sub = 0; div = 0 } in
      count_stmt_ops c s;
      shared.mul <- max shared.mul c.mul;
      shared.add <- max shared.add c.add;
      shared.sub <- max shared.sub c.sub;
      shared.div <- max shared.div c.div)
    proc.Loopir.Prog.body;
  let ops_shared =
    List.filter
      (fun (_, n) -> n > 0)
      [
        (Op_library.Dmul, shared.mul);
        (Op_library.Dadd, shared.add);
        (Op_library.Dsub, shared.sub);
        (Op_library.Ddiv, shared.div);
      ]
  in
  let op_res =
    List.fold_left
      (fun acc (kind, n) ->
        let c = Op_library.cost kind in
        Fpga_platform.Resource.add acc
          (Fpga_platform.Resource.make ~lut:(n * c.Op_library.lut)
             ~ff:(n * c.Op_library.ff) ~dsp:(n * c.Op_library.dsp) ~bram18:0))
      Fpga_platform.Resource.zero ops_shared
  in
  let loops =
    List.fold_left (fun a s -> a + count_loops s) 0 proc.Loopir.Prog.body
  in
  let access_sites =
    List.fold_left (fun a s -> a + count_access_sites s) 0 proc.Loopir.Prog.body
  in
  (* Arrays left inside the accelerator get Vivado's default dual-port RAM
     binding, which duplicates banks for read throughput — 2x the BRAMs an
     optimized PLM would use (the decoupling argument of Section VI). *)
  let internal_bram =
    2
    * List.fold_left
        (fun acc (_, size) -> acc + Fpga_platform.Bram.count_array ~words:size)
        0 proc.Loopir.Prog.locals
  in
  let resources =
    Fpga_platform.Resource.add op_res
      (Fpga_platform.Resource.make
         ~lut:
           (Op_library.base_lut + (loops * Op_library.loop_lut)
           + (access_sites * Op_library.access_lut))
         ~ff:
           (Op_library.base_ff + (loops * Op_library.loop_ff)
           + (access_sites * Op_library.access_ff))
         ~dsp:(if ops_shared = [] then 0 else Op_library.addressing_dsp)
         ~bram18:internal_bram)
  in
  let latency_cycles =
    2 (* handshake *)
    + List.fold_left (fun a s -> a + stmt_cycles s) 0 proc.Loopir.Prog.body
  in
  let ports =
    List.map
      (fun (p : Loopir.Prog.param) ->
        { port_array = p.Loopir.Prog.name; port_dir = p.Loopir.Prog.dir; words = p.Loopir.Prog.size })
      proc.Loopir.Prog.params
  in
  {
    kernel_name = proc.Loopir.Prog.name;
    resources;
    latency_cycles;
    interval_cycles = latency_cycles;
    ports;
    ops_shared;
    loops;
    access_sites;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>kernel %s@ resources: %a@ latency: %d cycles@ loops: %d, access sites: %d@ ports:@ "
    r.kernel_name Fpga_platform.Resource.pp r.resources r.latency_cycles r.loops
    r.access_sites;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %s : %d words (%s)@ " p.port_array p.words
        (match p.port_dir with
        | Loopir.Prog.In -> "in"
        | Loopir.Prog.Out -> "out"
        | Loopir.Prog.Temp -> "temp"))
    r.ports;
  Format.fprintf ppf "@]"
