(** The analytical HLS model (substituting Vivado HLS, Section V-A1).

    Consumes the loop-nest program the compiler emits and produces the
    reports the rest of the flow needs:

    - a {e resource report} (LUT/FF/DSP of the kernel datapath; BRAM only
      for arrays left inside the accelerator);
    - a {e latency report} (cycles per kernel activation, using the
      pipelined-loop model [depth + (trip-1) * II] for innermost loops);
    - a {e memory interface report} (one standard memory port set per
      exported array, with fixed-latency accesses, as in Figure 6).

    Operator sharing follows HLS practice: loop nests execute
    sequentially, so each operator kind is allocated at its maximum
    per-nest concurrency, not the program-wide sum. Reductions pipelined
    at II=1 model the standard partial-sum interleaving transformation. *)

type port = { port_array : string; port_dir : Loopir.Prog.direction; words : int }

type report = {
  kernel_name : string;
  resources : Fpga_platform.Resource.t;
      (** datapath + control; BRAM18 counts only internal (local) arrays *)
  latency_cycles : int;  (** one activation, from ap_start to ap_done *)
  interval_cycles : int;  (** minimum restart interval (= latency here) *)
  ports : port list;  (** exported memory interface, Figure 6 *)
  ops_shared : (Op_library.op_kind * int) list;
      (** operator allocation after cross-nest sharing *)
  loops : int;
  access_sites : int;
}

val analyze : Loopir.Prog.proc -> report
(** The proc must validate. *)

val pp_report : Format.formatter -> report -> unit
