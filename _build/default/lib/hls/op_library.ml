type op_kind = Dmul | Dadd | Dsub | Ddiv

type cost = { lut : int; ff : int; dsp : int; latency : int }

let cost = function
  | Dmul -> { lut = 750; ff = 1100; dsp = 11; latency = 6 }
  | Dadd | Dsub -> { lut = 650; ff = 750; dsp = 3; latency = 7 }
  | Ddiv -> { lut = 3100; ff = 3900; dsp = 0; latency = 30 }

let addressing_dsp = 1
let access_lut = 11
let access_ff = 9
let loop_lut = 25
let loop_ff = 35
let base_lut = 8
let base_ff = 15
