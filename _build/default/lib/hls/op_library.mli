(** The floating-point operator library of the HLS model.

    Cost and latency figures model Vivado HLS 2019.2 double-precision
    operator implementations on Zynq UltraScale+ at 200 MHz, calibrated so
    the Inverse Helmholtz kernel reproduces the paper's Section-VI report
    (2,314 LUT / 2,999 FF / 15 DSP): a full-DSP multiplier (11 DSP), a
    DSP-assisted adder (3 DSP), plus one DSP48 absorbed by addressing
    arithmetic. Measured-vs-paper numbers are recorded in EXPERIMENTS.md. *)

type op_kind = Dmul | Dadd | Dsub | Ddiv

type cost = {
  lut : int;
  ff : int;
  dsp : int;
  latency : int;  (** pipeline stages of the operator *)
}

val cost : op_kind -> cost

val addressing_dsp : int
(** DSP48s absorbed by address arithmetic per kernel. *)

val access_lut : int
val access_ff : int
(** Address generation / port mux cost per static array access site. *)

val loop_lut : int
val loop_ff : int
(** Control (FSM, counter, bound compare) per loop. *)

val base_lut : int
val base_ff : int
(** Fixed per-kernel overhead (start/done handshake, misc glue). *)
