lib/liveness/analysis.ml: Array Format Hashtbl List Lower Option Poly String
