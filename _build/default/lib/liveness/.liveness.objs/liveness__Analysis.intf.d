lib/liveness/analysis.mli: Format Lower Poly
