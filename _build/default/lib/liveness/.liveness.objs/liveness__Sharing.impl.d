lib/liveness/sharing.ml: Analysis Format Hashtbl List Lower Option
