lib/liveness/sharing.mli: Lower
