exception Illegal of string

let errf fmt = Format.kasprintf (fun s -> raise (Illegal s)) fmt

(* Union-find over array names. *)
let find parent x =
  let rec go x = match Hashtbl.find_opt parent x with
    | Some p when p <> x -> go p
    | _ -> x
  in
  go x

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then Hashtbl.replace parent ra rb

let merge_storage ?(force = false) (program : Lower.Flow.program) schedule pairs =
  let live = Analysis.analyze program schedule in
  List.iter
    (fun (a, b) ->
      (* raises Analysis.Error for unknown arrays *)
      (match Analysis.find live a with
      | _ -> ()
      | exception Analysis.Error msg -> errf "%s" msg);
      match Analysis.find live b with
      | _ -> ()
      | exception Analysis.Error msg -> errf "%s" msg)
    pairs;
  let parent = Hashtbl.create 8 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace parent (find parent a) (find parent a);
      union parent a b)
    pairs;
  (* group members *)
  let groups = Hashtbl.create 8 in
  let involved =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs)
  in
  List.iter
    (fun a ->
      let root = find parent a in
      Hashtbl.replace groups root
        (a :: Option.value ~default:[] (Hashtbl.find_opt groups root)))
    involved;
  let storage = ref [] in
  Hashtbl.iter
    (fun root members ->
      let members = List.sort_uniq compare members in
      (* pairwise legality *)
      if not force then begin
        let rec check = function
          | [] -> ()
          | a :: rest ->
              List.iter
                (fun b ->
                  if not (Analysis.address_space_compatible live a b) then
                    errf
                      "merging %s and %s is illegal: live intervals overlap" a b)
                rest;
              check rest
        in
        check members
      end;
      let buffer = "shared_" ^ root in
      List.iter (fun a -> storage := (a, (buffer, 0)) :: !storage) members)
    groups;
  !storage
