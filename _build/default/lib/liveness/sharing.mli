(** Explicit address-space sharing (the merge half of Section IV-D's
    partitioning maps).

    Users can declare that two arrays should alias one address range;
    this module checks the declaration against the liveness analysis —
    "if the transformation is legal (cf. Section V-A2)" — and produces
    the storage assignment the code generator consumes. *)

exception Illegal of string

val merge_storage :
  ?force:bool ->
  Lower.Flow.program ->
  Lower.Schedule.t ->
  (string * string) list ->
  Lower.Codegen.storage
(** [merge_storage program schedule pairs] aliases each pair into one
    shared buffer at offset 0. Transitive pairs ([a,b] and [b,c]) end in
    one buffer; legality then requires {e pairwise} address-space
    compatibility of the whole group under the given schedule.
    @raise Illegal on incompatible pairs (unless [force]) and on unknown
    arrays. *)
