lib/loopir/emit.ml: Buffer Format Fun List Printf Prog String
