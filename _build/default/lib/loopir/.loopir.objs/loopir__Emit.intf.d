lib/loopir/emit.mli: Prog
