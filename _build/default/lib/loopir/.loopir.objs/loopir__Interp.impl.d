lib/loopir/interp.ml: Array Format Hashtbl Ix List Prog
