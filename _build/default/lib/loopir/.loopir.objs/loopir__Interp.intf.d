lib/loopir/interp.mli: Hashtbl Prog
