lib/loopir/ix.ml: Format Hashtbl List Option
