lib/loopir/ix.mli: Format
