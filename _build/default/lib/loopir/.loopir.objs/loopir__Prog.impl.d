lib/loopir/prog.ml: Float Format Hashtbl Ix List
