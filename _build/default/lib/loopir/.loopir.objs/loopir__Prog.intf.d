lib/loopir/prog.mli: Format Ix
