lib/loopir/scalarize.ml: Hashtbl Ix List Option Printf Prog
