lib/loopir/scalarize.mli: Prog
