let c_prototype (proc : Prog.proc) =
  let param (p : Prog.param) =
    match p.dir with
    | Prog.In -> Printf.sprintf "const double %s[%d]" p.name p.size
    | Prog.Out | Prog.Temp -> Printf.sprintf "double %s[%d]" p.name p.size
  in
  Printf.sprintf "void %s(%s);" proc.name
    (String.concat ", " (List.map param proc.params))

let c_source ?header (proc : Prog.proc) =
  let buf = Buffer.create 4096 in
  (match header with
  | Some h ->
      Buffer.add_string buf "/*\n";
      String.split_on_char '\n' h
      |> List.iter (fun line ->
             Buffer.add_string buf (" * " ^ line ^ "\n"));
      Buffer.add_string buf " */\n"
  | None -> ());
  Buffer.add_string buf (Format.asprintf "%a@." Prog.pp_proc proc);
  Buffer.contents buf

let write_file ~path proc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (c_source proc))
