(** C99 emission (the rigid C99 implementation the flow bottoms out in,
    Section IV-A), in the style Vivado HLS consumes: one top-level
    function whose array parameters become the accelerator's memory
    interface (Figure 6). *)

val c_source : ?header:string -> Prog.proc -> string
(** A complete, self-contained C99 translation unit. *)

val c_prototype : Prog.proc -> string
(** Just the function prototype, e.g. for interface reports. *)

val write_file : path:string -> Prog.proc -> unit
