type memory = (string, float array) Hashtbl.t

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let make_memory bindings =
  let m = Hashtbl.create 16 in
  List.iter (fun (n, a) -> Hashtbl.replace m n a) bindings;
  m

let run (proc : Prog.proc) memory =
  List.iter
    (fun (p : Prog.param) ->
      match Hashtbl.find_opt memory p.name with
      | None -> errf "missing memory binding for %s" p.name
      | Some a ->
          if Array.length a < p.size then
            errf "buffer %s has %d elements, needs %d" p.name (Array.length a)
              p.size)
    proc.params;
  let mem = Hashtbl.copy memory in
  List.iter
    (fun (n, size) -> Hashtbl.replace mem n (Array.make size 0.0))
    proc.locals;
  let array a =
    match Hashtbl.find_opt mem a with
    | Some arr -> arr
    | None -> errf "unbound array %s" a
  in
  let ivars = Hashtbl.create 8 in
  let scalars = Hashtbl.create 8 in
  let ienv v =
    match Hashtbl.find_opt ivars v with
    | Some x -> x
    | None -> errf "unbound loop variable %s" v
  in
  let rec fexpr (e : Prog.fexpr) =
    match e with
    | Prog.Const f -> f
    | Prog.Scalar s -> (
        match Hashtbl.find_opt scalars s with
        | Some v -> v
        | None -> errf "unbound scalar %s" s)
    | Prog.Load (a, ix) ->
        let arr = array a in
        let i = Ix.eval ix ienv in
        if i < 0 || i >= Array.length arr then
          errf "load %s[%d] out of bounds (size %d)" a i (Array.length arr);
        arr.(i)
    | Prog.Add (x, y) -> fexpr x +. fexpr y
    | Prog.Sub (x, y) -> fexpr x -. fexpr y
    | Prog.Mul (x, y) -> fexpr x *. fexpr y
    | Prog.Div (x, y) -> fexpr x /. fexpr y
  in
  let store a ix v accumulate =
    let arr = array a in
    let i = Ix.eval ix ienv in
    if i < 0 || i >= Array.length arr then
      errf "store %s[%d] out of bounds (size %d)" a i (Array.length arr);
    arr.(i) <- (if accumulate then arr.(i) +. v else v)
  in
  let rec stmt (s : Prog.stmt) =
    match s with
    | Prog.For l ->
        for v = l.lo to l.hi - 1 do
          Hashtbl.replace ivars l.var v;
          List.iter stmt l.body
        done;
        Hashtbl.remove ivars l.var
    | Prog.Store { array = a; index; value } -> store a index (fexpr value) false
    | Prog.Accum { array = a; index; value } -> store a index (fexpr value) true
    | Prog.Set_scalar { name; value } -> Hashtbl.replace scalars name (fexpr value)
    | Prog.Acc_scalar { name; value } -> (
        match Hashtbl.find_opt scalars name with
        | None -> errf "accumulating unbound scalar %s" name
        | Some cur -> Hashtbl.replace scalars name (cur +. fexpr value))
  in
  List.iter stmt proc.body

let run_fresh (proc : Prog.proc) ~inputs =
  let memory = Hashtbl.create 16 in
  List.iter
    (fun (p : Prog.param) ->
      let buf =
        match List.assoc_opt p.name inputs with
        | Some src ->
            if Array.length src <> p.size then
              errf "input %s has %d elements, expected %d" p.name
                (Array.length src) p.size;
            Array.copy src
        | None -> Array.make p.size 0.0
      in
      Hashtbl.replace memory p.name buf)
    proc.params;
  run proc memory;
  List.map (fun (p : Prog.param) -> (p.name, Hashtbl.find memory p.name)) proc.params
