(** Big-step interpreter for loop-nest programs.

    This is the oracle that validates the entire backend: a compiled
    kernel (any schedule, layout, partitioning or PLM sharing decision) is
    executed on concrete memory and compared element-for-element against
    the tensor reference. Arrays may {e alias} (memory sharing maps two
    logical arrays to one buffer), which is exactly what the sharing
    legality tests exploit. *)

type memory = (string, float array) Hashtbl.t

exception Error of string

val run : Prog.proc -> memory -> unit
(** Executes the procedure body against [memory], which must bind every
    parameter name to an array of at least the declared size (locals are
    allocated internally). Bindings may share array values to model PLM
    address-space sharing. @raise Error on missing/short bindings. *)

val make_memory : (string * float array) list -> memory

val run_fresh : Prog.proc -> inputs:(string * float array) list -> (string * float array) list
(** Convenience: allocates zeroed buffers for non-input parameters, copies
    the given input contents, runs, and returns all parameter buffers. *)
