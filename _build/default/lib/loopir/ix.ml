type t = { terms : (int * string) list; const : int }

let normalize terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, v) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (cur + c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0 then acc else (c, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let of_terms terms const = { terms = normalize terms; const }
let const c = { terms = []; const = c }
let var v = { terms = [ (1, v) ]; const = 0 }
let scaled c v = of_terms [ (c, v) ] 0
let add a b = of_terms (a.terms @ b.terms) (a.const + b.const)
let add_const a c = { a with const = a.const + c }

let scale k a =
  if k = 0 then const 0
  else { terms = List.map (fun (c, v) -> (k * c, v)) a.terms; const = k * a.const }

let eval t env =
  List.fold_left (fun acc (c, v) -> acc + (c * env v)) t.const t.terms

let vars t = List.map snd t.terms
let is_const t = t.terms = []
let equal a b = a = b

let pp ppf t =
  if t.terms = [] then Format.pp_print_int ppf t.const
  else begin
    List.iteri
      (fun i (c, v) ->
        if i > 0 then Format.pp_print_string ppf (if c >= 0 then " + " else " - ")
        else if c < 0 then Format.pp_print_string ppf "-";
        let a = abs c in
        if a = 1 then Format.pp_print_string ppf v
        else Format.fprintf ppf "%d * %s" a v)
      t.terms;
    if t.const > 0 then Format.fprintf ppf " + %d" t.const
    else if t.const < 0 then Format.fprintf ppf " - %d" (-t.const)
  end
