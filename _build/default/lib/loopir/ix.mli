(** Integer index expressions: affine combinations of loop variables.

    Array subscripts in the generated C99 are always affine in the
    surrounding loop variables — the property that lets HLS schedule
    memory accesses with fixed latency and lets Mnemosyne bank them. *)

type t = { terms : (int * string) list; const : int }
(** [sum coeff * var + const]; terms are kept sorted by variable name with
    non-zero coefficients, at most one term per variable. *)

val const : int -> t
val var : string -> t
val scaled : int -> string -> t
val add : t -> t -> t
val add_const : t -> int -> t
val scale : int -> t -> t
val of_terms : (int * string) list -> int -> t

val eval : t -> (string -> int) -> int
(** @raise Not_found for unbound variables. *)

val vars : t -> string list
val is_const : t -> bool
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** C syntax, e.g. [121 * i + 11 * j + k + 5]. *)
