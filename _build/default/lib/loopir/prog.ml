type direction = In | Out | Temp

type param = { name : string; size : int; dir : direction }
type pragma = Pipeline of int | Unroll of int

type fexpr =
  | Const of float
  | Load of string * Ix.t
  | Scalar of string
  | Add of fexpr * fexpr
  | Sub of fexpr * fexpr
  | Mul of fexpr * fexpr
  | Div of fexpr * fexpr

type stmt =
  | For of loop
  | Store of { array : string; index : Ix.t; value : fexpr }
  | Accum of { array : string; index : Ix.t; value : fexpr }
  | Set_scalar of { name : string; value : fexpr }
  | Acc_scalar of { name : string; value : fexpr }

and loop = {
  var : string;
  lo : int;
  hi : int;
  pragmas : pragma list;
  body : stmt list;
}

type proc = {
  name : string;
  params : param list;
  locals : (string * int) list;
  body : stmt list;
}

exception Ill_formed of string

let illf fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let rec expr_reads expr acc =
  match expr with
  | Const _ | Scalar _ -> acc
  | Load (a, _) -> a :: acc
  | Add (x, y) | Sub (x, y) | Mul (x, y) | Div (x, y) ->
      expr_reads x (expr_reads y acc)

let rec stmt_fold f acc stmt =
  let acc = f acc stmt in
  match stmt with
  | For { body; _ } -> List.fold_left (stmt_fold f) acc body
  | Store _ | Accum _ | Set_scalar _ | Acc_scalar _ -> acc

let proc_fold f acc proc = List.fold_left (stmt_fold f) acc proc.body

let arrays_read proc =
  proc_fold
    (fun acc stmt ->
      match stmt with
      | Store { value; _ }
      | Accum { value; _ }
      | Set_scalar { value; _ }
      | Acc_scalar { value; _ } -> expr_reads value acc
      | For _ -> acc)
    [] proc
  |> List.sort_uniq compare

let arrays_written proc =
  proc_fold
    (fun acc stmt ->
      match stmt with
      | Store { array; _ } | Accum { array; _ } -> array :: acc
      | Set_scalar _ | Acc_scalar _ | For _ -> acc)
    [] proc
  |> List.sort_uniq compare

let count_stores proc =
  proc_fold
    (fun acc stmt ->
      match stmt with Store _ | Accum _ -> acc + 1 | _ -> acc)
    0 proc

let loop_nest_depth proc =
  let rec depth stmt =
    match stmt with
    | For { body; _ } -> 1 + List.fold_left (fun m s -> max m (depth s)) 0 body
    | _ -> 0
  in
  List.fold_left (fun m s -> max m (depth s)) 0 proc.body

let validate proc =
  let names = Hashtbl.create 16 in
  List.iter
    (fun (p : param) ->
      if Hashtbl.mem names p.name then illf "duplicate parameter %s" p.name;
      if p.size < 1 then illf "parameter %s has size %d" p.name p.size;
      Hashtbl.add names p.name p.dir)
    proc.params;
  List.iter
    (fun (n, size) ->
      if Hashtbl.mem names n then illf "local %s shadows a parameter" n;
      if size < 1 then illf "local %s has size %d" n size;
      Hashtbl.add names n Temp)
    proc.locals;
  let dir_of a =
    match Hashtbl.find_opt names a with
    | Some d -> d
    | None -> illf "reference to undeclared array %s" a
  in
  let check_index loop_vars ix =
    List.iter
      (fun v ->
        if not (List.mem v loop_vars) then
          illf "index uses unbound loop variable %s" v)
      (Ix.vars ix)
  in
  let rec check_expr loop_vars scalars expr =
    match expr with
    | Const _ -> ()
    | Scalar s ->
        if not (List.mem s scalars) then illf "scalar %s read before set" s
    | Load (a, ix) ->
        ignore (dir_of a);
        check_index loop_vars ix
    | Add (x, y) | Sub (x, y) | Mul (x, y) | Div (x, y) ->
        check_expr loop_vars scalars x;
        check_expr loop_vars scalars y
  in
  let rec check_stmt loop_vars scalars stmt =
    match stmt with
    | For l ->
        if List.mem l.var loop_vars then
          illf "loop variable %s shadows an enclosing loop" l.var;
        if l.hi <= l.lo then illf "loop on %s is empty (%d..%d)" l.var l.lo l.hi;
        List.fold_left (check_stmt (l.var :: loop_vars)) scalars l.body
    | Store { array; index; value } | Accum { array; index; value } ->
        if dir_of array = In then illf "write to input array %s" array;
        check_index loop_vars index;
        check_expr loop_vars scalars value;
        scalars
    | Set_scalar { name; value } ->
        check_expr loop_vars scalars value;
        if List.mem name scalars then scalars else name :: scalars
    | Acc_scalar { name; value } ->
        if not (List.mem name scalars) then
          illf "scalar %s accumulated before set" name;
        check_expr loop_vars scalars value;
        scalars
  in
  ignore (List.fold_left (check_stmt []) [] proc.body);
  let written = arrays_written proc in
  List.iter
    (fun (p : param) ->
      if p.dir = Out && not (List.mem p.name written) then
        illf "output %s is never written" p.name)
    proc.params

let prec = function
  | Const _ | Load _ | Scalar _ -> 3
  | Mul _ | Div _ -> 2
  | Add _ | Sub _ -> 1

let rec pp_fexpr ctx ppf e =
  let p = prec e in
  let bracket = p < ctx in
  if bracket then Format.pp_print_char ppf '(';
  (match e with
  | Const f ->
      if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.1f" f
      else Format.fprintf ppf "%.17g" f
  | Load (a, ix) -> Format.fprintf ppf "%s[%a]" a Ix.pp ix
  | Scalar s -> Format.pp_print_string ppf s
  | Add (x, y) -> Format.fprintf ppf "%a + %a" (pp_fexpr 1) x (pp_fexpr 2) y
  | Sub (x, y) -> Format.fprintf ppf "%a - %a" (pp_fexpr 1) x (pp_fexpr 2) y
  | Mul (x, y) -> Format.fprintf ppf "%a * %a" (pp_fexpr 2) x (pp_fexpr 3) y
  | Div (x, y) -> Format.fprintf ppf "%a / %a" (pp_fexpr 2) x (pp_fexpr 3) y);
  if bracket then Format.pp_print_char ppf ')'

let pp_pragma ppf = function
  | Pipeline ii -> Format.fprintf ppf "#pragma HLS pipeline II=%d" ii
  | Unroll f -> Format.fprintf ppf "#pragma HLS unroll factor=%d" f

let rec pp_stmt ppf = function
  | For l ->
      Format.fprintf ppf "@[<v 2>for (int %s = %d; %s < %d; ++%s) {" l.var l.lo
        l.var l.hi l.var;
      List.iter (fun p -> Format.fprintf ppf "@,%a" pp_pragma p) l.pragmas;
      List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) l.body;
      Format.fprintf ppf "@]@,}"
  | Store { array; index; value } ->
      Format.fprintf ppf "%s[%a] = %a;" array Ix.pp index (pp_fexpr 0) value
  | Accum { array; index; value } ->
      Format.fprintf ppf "%s[%a] += %a;" array Ix.pp index (pp_fexpr 0) value
  | Set_scalar { name; value } ->
      Format.fprintf ppf "double %s = %a;" name (pp_fexpr 0) value
  | Acc_scalar { name; value } ->
      Format.fprintf ppf "%s += %a;" name (pp_fexpr 0) value

let pp_proc ppf proc =
  let param ppf p =
    match p.dir with
    | In -> Format.fprintf ppf "const double %s[%d]" p.name p.size
    | Out | Temp -> Format.fprintf ppf "double %s[%d]" p.name p.size
  in
  Format.fprintf ppf "@[<v>@[<v 2>void %s(%a) {" proc.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       param)
    proc.params;
  List.iter
    (fun (n, size) -> Format.fprintf ppf "@,double %s[%d];" n size)
    proc.locals;
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) proc.body;
  Format.fprintf ppf "@]@,}@]"
