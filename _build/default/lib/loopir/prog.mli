(** The loop-nest program produced by polyhedral code generation
    (step (v) of Figure 4) and consumed by both the C99 emitter and the
    HLS model.

    Arrays are flat 1-D double arrays — layout materialization has already
    linearized every tensor (Section IV-D), matching the "flattened 1-D
    arrays" interface of Figure 6. *)

type direction =
  | In  (** read-only kernel input (const in C) *)
  | Out  (** kernel output *)
  | Temp  (** exported temporary: stored in a PLM but not transferred *)

type param = { name : string; size : int; dir : direction }

type pragma =
  | Pipeline of int  (** initiation interval *)
  | Unroll of int  (** unroll factor *)

type fexpr =
  | Const of float
  | Load of string * Ix.t
  | Scalar of string
  | Add of fexpr * fexpr
  | Sub of fexpr * fexpr
  | Mul of fexpr * fexpr
  | Div of fexpr * fexpr

type stmt =
  | For of loop
  | Store of { array : string; index : Ix.t; value : fexpr }
  | Accum of { array : string; index : Ix.t; value : fexpr }
      (** [array\[index\] += value] *)
  | Set_scalar of { name : string; value : fexpr }
  | Acc_scalar of { name : string; value : fexpr }

and loop = {
  var : string;
  lo : int;
  hi : int;  (** exclusive upper bound: [lo <= var < hi] *)
  pragmas : pragma list;
  body : stmt list;
}

type proc = {
  name : string;
  params : param list;
  locals : (string * int) list;
      (** local arrays (the "temporaries left inside HLS" variant) *)
  body : stmt list;
}

exception Ill_formed of string

val validate : proc -> unit
(** Checks: unique parameter/local names, every array reference resolves,
    loop variables are unique along each nesting path, every scalar is set
    before being read, [In] parameters are never written, and every [Out]
    parameter is written at least once syntactically.
    @raise Ill_formed otherwise. *)

val loop_nest_depth : proc -> int
val count_stores : proc -> int

val arrays_read : proc -> string list
val arrays_written : proc -> string list

val pp_stmt : Format.formatter -> stmt -> unit
val pp_proc : Format.formatter -> proc -> unit
