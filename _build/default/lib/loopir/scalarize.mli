(** Accumulator scalarization.

    Rewrites the canonical polyhedral reduction pattern

    {v a[ix] = c;  for (...) ... a[ix] += e; v}

    (where [ix] is invariant in the reduction loops) into a register
    accumulator

    {v double acc = c;  for (...) ... acc += e;  a[ix] = acc; v}

    This halves the memory-port pressure of reductions — the output array
    is written once per element instead of once per reduction step — and
    is what lets the HLS model pipeline the inner loop at II=1 with
    single-port PLMs (Section V-A1). *)

val optimize : Prog.proc -> Prog.proc
(** Semantics-preserving; the result still validates. *)

val count_accumulators : Prog.proc -> int
(** Number of scalar accumulators introduced (for tests/reports). *)
