lib/lower/autoschedule.ml: Dataflow List Reschedule
