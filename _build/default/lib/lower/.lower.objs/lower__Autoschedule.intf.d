lib/lower/autoschedule.mli: Flow Reschedule Schedule
