lib/lower/codegen.ml: Array Flow Format Hashtbl List Loopir Poly Printf Schedule Tir
