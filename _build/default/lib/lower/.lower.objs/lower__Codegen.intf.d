lib/lower/codegen.mli: Flow Loopir Schedule
