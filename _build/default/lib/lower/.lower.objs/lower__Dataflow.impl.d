lib/lower/dataflow.ml: Array Flow Format Hashtbl List Option Poly Printf Schedule
