lib/lower/dataflow.mli: Flow Format Poly Schedule
