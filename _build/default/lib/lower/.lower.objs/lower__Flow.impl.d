lib/lower/flow.ml: Array Format Fun Hashtbl List Poly Printf Tir
