lib/lower/flow.mli: Format Poly Tir
