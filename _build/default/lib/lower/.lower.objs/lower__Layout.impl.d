lib/lower/layout.ml: Array Flow Format Fun List Poly Printf
