lib/lower/layout.mli: Flow Poly
