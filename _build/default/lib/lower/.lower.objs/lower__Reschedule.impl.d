lib/lower/reschedule.ml: Array Flow Fun List Poly Schedule
