lib/lower/reschedule.mli: Flow Schedule
