lib/lower/schedule.ml: Array Flow Format Fun Hashtbl List Poly String
