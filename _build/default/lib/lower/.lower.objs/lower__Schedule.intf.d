lib/lower/schedule.mli: Flow Format Poly
