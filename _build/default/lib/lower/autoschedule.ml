let candidates =
  [
    { Reschedule.default with Reschedule.fuse_init = false; fuse_pointwise = false };
    { Reschedule.default with Reschedule.fuse_init = true; fuse_pointwise = false };
    { Reschedule.default with Reschedule.fuse_init = false; fuse_pointwise = true };
    { Reschedule.default with Reschedule.fuse_init = true; fuse_pointwise = true };
  ]

let schedule program =
  let scored =
    List.map
      (fun options ->
        let sched = Reschedule.compute ~options program in
        let cost = Dataflow.live_span_cost program sched in
        let coincidence = Dataflow.rar_coincidence program sched in
        ((cost, -coincidence), (options, sched)))
      candidates
  in
  let best =
    List.fold_left
      (fun acc item ->
        match acc with
        | None -> Some item
        | Some (best_key, _) when fst item < best_key -> Some item
        | Some _ -> acc)
      None scored
  in
  match best with Some (_, result) -> result | None -> assert false
