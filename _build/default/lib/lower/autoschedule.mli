(** Cost-guided schedule selection (the optimization loop of
    Section IV-E): enumerate the rescheduler's legal candidate schedules
    and pick the one minimizing the RAW live-span cost, breaking ties by
    maximal RAR coincidence. *)

val candidates : Reschedule.options list
(** The option sets explored (fusion on/off combinations). *)

val schedule : Flow.program -> Reschedule.options * Schedule.t
(** Best candidate under ({!Dataflow.live_span_cost},
    -{!Dataflow.rar_coincidence}); all candidates are legal by
    construction of {!Reschedule.compute}. *)
