type kind = Raw | War | Waw | Rar

type dep = { kind : kind; src_stmt : string; dst_stmt : string; array : string }

let reads_of stmt =
  List.sort_uniq compare
    (List.map (fun (r : Flow.access) -> r.Flow.array) (Flow.reads stmt))

let statement_deps (program : Flow.program) =
  let deps = ref [] in
  let emit kind src dst array =
    deps :=
      { kind; src_stmt = src.Flow.stmt_name; dst_stmt = dst.Flow.stmt_name; array }
      :: !deps
  in
  let rec walk = function
    | [] -> ()
    | (src : Flow.statement) :: rest ->
        let swrite = src.Flow.write.Flow.array in
        let sreads = reads_of src in
        List.iter
          (fun (dst : Flow.statement) ->
            let dwrite = dst.Flow.write.Flow.array in
            let dreads = reads_of dst in
            if List.mem swrite dreads then emit Raw src dst swrite;
            if swrite = dwrite then emit Waw src dst swrite;
            if List.mem dwrite sreads then emit War src dst dwrite;
            List.iter
              (fun a -> if List.mem a dreads then emit Rar src dst a)
              sreads)
          rest;
        walk rest
  in
  walk program.Flow.stmts;
  List.rev !deps

let find_stmt (program : Flow.program) name =
  match
    List.find_opt (fun (s : Flow.statement) -> s.Flow.stmt_name = name)
      program.Flow.stmts
  with
  | Some s -> s
  | None -> raise (Flow.Error ("unknown statement " ^ name))

let element_raw (program : Flow.program) src_name dst_name =
  let src = find_stmt program src_name in
  let dst = find_stmt program dst_name in
  let array = src.Flow.write.Flow.array in
  let read =
    List.find_opt (fun (r : Flow.access) -> r.Flow.array = array) (Flow.reads dst)
  in
  match read with
  | None ->
      raise
        (Flow.Error
           (Printf.sprintf "%s does not read the array %s writes" dst_name
              src_name))
  | Some read ->
      (* { src[i] -> dst[j] : W(i) = R(j) } = R^-1 ∘ W restricted to the
         domains, with W the write access and R the read access. *)
      let w = Poly.Rel.of_aff_map_on src.Flow.write.Flow.map src.Flow.domain in
      let r = Poly.Rel.of_aff_map_on read.Flow.map dst.Flow.domain in
      Poly.Rel.compose (Poly.Rel.inverse r) w

(* beta-group of the lexicographic extremum of a statement's schedule
   image: leading component of the timestamp. *)
let group_of schedule (stmt : Flow.statement) pick_last =
  let sched = Schedule.find schedule stmt.Flow.stmt_name in
  let lo, hi = Schedule.image_extrema schedule sched stmt.Flow.domain in
  if pick_last then hi.(0) else lo.(0)

let live_span_cost (program : Flow.program) schedule =
  let interface a =
    (Flow.array_info program a).Flow.kind <> Flow.Temp
  in
  let first_write = Hashtbl.create 16 and last_read = Hashtbl.create 16 in
  List.iter
    (fun (stmt : Flow.statement) ->
      let w = stmt.Flow.write.Flow.array in
      if not (interface w) then begin
        let g = group_of schedule stmt false in
        match Hashtbl.find_opt first_write w with
        | Some cur when cur <= g -> ()
        | _ -> Hashtbl.replace first_write w g
      end;
      List.iter
        (fun a ->
          if not (interface a) then begin
            let g = group_of schedule stmt true in
            match Hashtbl.find_opt last_read a with
            | Some cur when cur >= g -> ()
            | _ -> Hashtbl.replace last_read a g
          end)
        (reads_of stmt))
    program.Flow.stmts;
  Hashtbl.fold
    (fun a last acc ->
      match Hashtbl.find_opt first_write a with
      | Some first -> acc + max 0 (last - first)
      | None -> acc)
    last_read 0

let rar_coincidence (program : Flow.program) schedule =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (stmt : Flow.statement) ->
      let g = group_of schedule stmt false in
      List.iter
        (fun a ->
          Hashtbl.replace groups (a, stmt.Flow.stmt_name) g)
        (reads_of stmt))
    program.Flow.stmts;
  (* count pairs reading the same array from the same beta group *)
  let by_array = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, _) g ->
      Hashtbl.replace by_array a
        (g :: Option.value ~default:[] (Hashtbl.find_opt by_array a)))
    groups;
  Hashtbl.fold
    (fun _ gs acc ->
      let rec pairs = function
        | [] -> 0
        | g :: rest -> List.length (List.filter (( = ) g) rest) + pairs rest
      in
      acc + pairs gs)
    by_array 0

let pp_dep ppf d =
  Format.fprintf ppf "%s: %s -> %s on %s"
    (match d.kind with Raw -> "RAW" | War -> "WAR" | Waw -> "WAW" | Rar -> "RAR")
    d.src_stmt d.dst_stmt d.array
