(** Layout-aware dataflow analysis (Section IV-E).

    Statement-granularity dependences drive the rescheduler's cost
    functions: read-after-write distances measure live-interval length
    (to be minimized), and read-after-read coincidence measures sharing
    of fetches (to be maximized). The exact element-level relation is
    available through {!Poly.Rel} for bounded domains. *)

type kind = Raw | War | Waw | Rar

type dep = {
  kind : kind;
  src_stmt : string;
  dst_stmt : string;
  array : string;
}

val statement_deps : Flow.program -> dep list
(** All dependence pairs at statement granularity, in program order
    (src before dst; WAW includes the init-before-accumulate pairs). *)

val element_raw : Flow.program -> string -> string -> Poly.Rel.t
(** Exact element-level RAW relation between a producer and a consumer
    statement: pairs of instances touching the same array element
    ([write\[...\] -> read\[...\]] of Section IV-F). Built from the access
    relations; exact for bounded domains. @raise Flow.Error on unknown
    statements or when they do not share an array. *)

val live_span_cost : Flow.program -> Schedule.t -> int
(** The rescheduler's RAW cost: for every non-interface array, the number
    of leading schedule dimensions (beta groups) its value stays live
    across, summed. Fusing producers with consumers shrinks it. *)

val rar_coincidence : Flow.program -> Schedule.t -> int
(** The RAR cost's complement: number of statement pairs reading the same
    array from coincident schedule points (same leading beta). Higher is
    better. *)

val pp_dep : Format.formatter -> dep -> unit
