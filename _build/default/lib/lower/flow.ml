type array_kind = Input | Output | Temp

type array_info = {
  array_name : string;
  kind : array_kind;
  tensor_shape : int list;
  layout : Poly.Aff_map.t;
  size : int;
}

type access = { array : string; map : Poly.Aff_map.t }

type compute =
  | Init of float
  | Mac of access list
  | Assign_pointwise of Tir.Ir.pointwise * access * access
  | Assign_copy of access

type statement = {
  stmt_name : string;
  domain : Poly.Basic_set.t;
  write : access;
  compute : compute;
}

type program = {
  prog_name : string;
  arrays : array_info list;
  stmts : statement list;
}

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let array_info program name =
  match List.find_opt (fun a -> a.array_name = name) program.arrays with
  | Some a -> a
  | None -> errf "unknown array %s" name

let reads stmt =
  match stmt.compute with
  | Init _ -> []
  | Mac accesses -> accesses
  | Assign_pointwise (_, a, b) -> [ a; b ]
  | Assign_copy a -> [ a ]

let array_access program access =
  let info = array_info program access.array in
  Poly.Aff_map.compose info.layout access.map

let tensor_space name shape =
  Poly.Space.make name (List.mapi (fun i _ -> Printf.sprintf "d%d" i) shape)

let default_layout name shape =
  let space = tensor_space name shape in
  let n = List.length shape in
  let array_space = Poly.Space.make name [ "a" ] in
  (* Row-major strides. *)
  let strides = Array.make n 1 in
  let extents = Array.of_list shape in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * extents.(i + 1)
  done;
  let expr = ref (Poly.Aff.const n 0) in
  for i = 0 to n - 1 do
    expr := Poly.Aff.add !expr (Poly.Aff.scale strides.(i) (Poly.Aff.var n i))
  done;
  Poly.Aff_map.make space array_space [| !expr |]

let box_of_shape space shape =
  Poly.Basic_set.of_box space (List.map (fun e -> (0, e - 1)) shape)

(* ---- promotion of TIR definitions ---- *)

type build_ctx = { shapes : (string, int list) Hashtbl.t }

let shape_of ctx id =
  match Hashtbl.find_opt ctx.shapes id with
  | Some s -> s
  | None -> errf "operand %s has no shape" id

(* Access to a whole operand from a domain of arity [n]: identity on the
   leading dims for same-shape operands, constant for scalars. *)
let operand_access ctx ~n id =
  let shape = shape_of ctx id in
  let rank = List.length shape in
  let cod = tensor_space id shape in
  if rank = 0 then { array = id; map = Poly.Aff_map.make (Poly.Space.anonymous n) cod [||] }
  else begin
    if rank > n then errf "operand %s rank exceeds statement arity" id;
    let exprs = Array.init rank (fun i -> Poly.Aff.var n i) in
    { array = id; map = Poly.Aff_map.make (Poly.Space.anonymous n) cod exprs }
  end

let contract_statements ctx (def : Tir.Ir.def) factors pairs =
  let shapes = List.map (shape_of ctx) factors in
  let ranks = List.map List.length shapes in
  let offsets =
    List.rev
      (snd
         (List.fold_left (fun (off, acc) r -> (off + r, off :: acc)) (0, []) ranks))
  in
  let total = List.fold_left ( + ) 0 ranks in
  let all_extents = Array.of_list (List.concat shapes) in
  let paired = Array.make (max total 1) (-1) in
  List.iteri
    (fun j (a, b) ->
      paired.(a) <- j;
      paired.(b) <- j)
    pairs;
  let out_globals =
    List.filter (fun g -> paired.(g) < 0) (List.init total Fun.id)
  in
  let nout = List.length out_globals in
  let npairs = List.length pairs in
  let n = nout + npairs in
  let out_shape = List.map (fun g -> all_extents.(g)) out_globals in
  let red_extents = List.map (fun (a, _) -> all_extents.(a)) pairs in
  let out_space_dims = List.init nout (Printf.sprintf "o%d") in
  let red_space_dims = List.init npairs (Printf.sprintf "r%d") in
  let mac_space =
    Poly.Space.make (def.Tir.Ir.id ^ "_mac") (out_space_dims @ red_space_dims)
  in
  let init_space = Poly.Space.make (def.Tir.Ir.id ^ "_init") out_space_dims in
  let out_cod = tensor_space def.Tir.Ir.id out_shape in
  let write_mac =
    {
      array = def.Tir.Ir.id;
      map =
        Poly.Aff_map.make mac_space out_cod
          (Array.init nout (fun i -> Poly.Aff.var n i));
    }
  in
  let factor_access f =
    let id = List.nth factors f in
    let off = List.nth offsets f in
    let rank = List.nth ranks f in
    let shape = List.nth shapes f in
    let cod = tensor_space id shape in
    let exprs =
      Array.init rank (fun l ->
          let g = off + l in
          if paired.(g) >= 0 then Poly.Aff.var n (nout + paired.(g))
          else
            match List.find_index (( = ) g) out_globals with
            | Some p -> Poly.Aff.var n p
            | None -> assert false)
    in
    { array = id; map = Poly.Aff_map.make mac_space cod exprs }
  in
  let mac =
    {
      stmt_name = def.Tir.Ir.id ^ "_mac";
      domain = box_of_shape mac_space (out_shape @ red_extents);
      write = write_mac;
      compute = Mac (List.init (List.length factors) factor_access);
    }
  in
  let init =
    {
      stmt_name = def.Tir.Ir.id ^ "_init";
      domain = box_of_shape init_space out_shape;
      write =
        {
          array = def.Tir.Ir.id;
          map =
            Poly.Aff_map.make init_space out_cod
              (Array.init nout (fun i -> Poly.Aff.var nout i));
        };
      compute = Init 0.0;
    }
  in
  [ init; mac ]

let def_statements ctx (def : Tir.Ir.def) =
  let out_shape = def.Tir.Ir.shape in
  let n = List.length out_shape in
  let space = Poly.Space.make (def.Tir.Ir.id ^ "_stmt") (List.init n (Printf.sprintf "o%d")) in
  let out_cod = tensor_space def.Tir.Ir.id out_shape in
  let write =
    {
      array = def.Tir.Ir.id;
      map =
        Poly.Aff_map.make space out_cod (Array.init n (fun i -> Poly.Aff.var n i));
    }
  in
  let domain = box_of_shape space out_shape in
  match def.Tir.Ir.op with
  | Tir.Ir.Const f -> [ { stmt_name = def.Tir.Ir.id ^ "_stmt"; domain; write; compute = Init f } ]
  | Tir.Ir.Pointwise { f; lhs; rhs } ->
      let la = operand_access ctx ~n lhs in
      let ra = operand_access ctx ~n rhs in
      (* Rebase operand domains onto this statement's space. *)
      let rebase a = { a with map = Poly.Aff_map.make space (Poly.Aff_map.cod a.map) (Poly.Aff_map.exprs a.map) } in
      [
        {
          stmt_name = def.Tir.Ir.id ^ "_stmt";
          domain;
          write;
          compute = Assign_pointwise (f, rebase la, rebase ra);
        };
      ]
  | Tir.Ir.Transpose { src; perm } ->
      let src_shape = shape_of ctx src in
      let cod = tensor_space src src_shape in
      let rank = List.length src_shape in
      let exprs =
        Array.init rank (fun d ->
            match List.find_index (( = ) d) perm with
            | Some i -> Poly.Aff.var n i
            | None -> assert false)
      in
      let acc = { array = src; map = Poly.Aff_map.make space cod exprs } in
      [ { stmt_name = def.Tir.Ir.id ^ "_stmt"; domain; write; compute = Assign_copy acc } ]
  | Tir.Ir.Contract { factors = [ src ]; pairs = [] } ->
      let acc = operand_access ctx ~n src in
      let acc = { acc with map = Poly.Aff_map.make space (Poly.Aff_map.cod acc.map) (Poly.Aff_map.exprs acc.map) } in
      [ { stmt_name = def.Tir.Ir.id ^ "_stmt"; domain; write; compute = Assign_copy acc } ]
  | Tir.Ir.Contract { factors; pairs } -> contract_statements ctx def factors pairs

let of_kernel ?(name = "kernel") (kernel : Tir.Ir.kernel) =
  Tir.Ir.validate kernel;
  let ctx = { shapes = Hashtbl.create 16 } in
  List.iter (fun (id, s) -> Hashtbl.replace ctx.shapes id s) kernel.Tir.Ir.inputs;
  let arrays = ref [] in
  List.iter
    (fun (id, shape) ->
      arrays :=
        {
          array_name = id;
          kind = Input;
          tensor_shape = shape;
          layout = default_layout id shape;
          size = List.fold_left ( * ) 1 shape;
        }
        :: !arrays)
    kernel.Tir.Ir.inputs;
  let stmts =
    List.concat_map
      (fun (def : Tir.Ir.def) ->
        let stmts = def_statements ctx def in
        Hashtbl.replace ctx.shapes def.Tir.Ir.id def.Tir.Ir.shape;
        let kind =
          if List.mem_assoc def.Tir.Ir.id kernel.Tir.Ir.outputs then Output
          else Temp
        in
        arrays :=
          {
            array_name = def.Tir.Ir.id;
            kind;
            tensor_shape = def.Tir.Ir.shape;
            layout = default_layout def.Tir.Ir.id def.Tir.Ir.shape;
            size = List.fold_left ( * ) 1 def.Tir.Ir.shape;
          }
          :: !arrays;
        stmts)
      kernel.Tir.Ir.defs
  in
  { prog_name = name; arrays = List.rev !arrays; stmts }

let operand_map program stmt =
  let domain = stmt.domain in
  let w = Poly.Rel.of_aff_map_on stmt.write.map domain in
  List.map
    (fun r ->
      let rr = Poly.Rel.of_aff_map_on r.map domain in
      Poly.Rel.compose rr (Poly.Rel.inverse w))
    (reads stmt)
  |> fun maps ->
  ignore program;
  maps

(* Bounds of an affine expression over a box. *)
let expr_range box (e : Poly.Aff.t) =
  let lo = ref (Poly.Aff.constant e) and hi = ref (Poly.Aff.constant e) in
  Array.iteri
    (fun i (blo, bhi) ->
      let c = Poly.Aff.coeff e i in
      if c > 0 then begin
        lo := !lo + (c * blo);
        hi := !hi + (c * bhi)
      end
      else if c < 0 then begin
        lo := !lo + (c * bhi);
        hi := !hi + (c * blo)
      end)
    box;
  (!lo, !hi)

let validate program =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.array_name then
        errf "array %s declared twice" a.array_name;
      Hashtbl.add seen a.array_name ();
      (* The layout must place every tensor element inside the array
         (padding may make the array larger than the dense element count). *)
      let lay_box =
        Array.of_list (List.map (fun e -> (0, e - 1)) a.tensor_shape)
      in
      let exprs = Poly.Aff_map.exprs a.layout in
      if Array.length exprs <> 1 then
        errf "layout of %s must target a 1-D array" a.array_name;
      let lay_lo, lay_hi = expr_range lay_box exprs.(0) in
      if lay_lo < 0 || lay_hi >= a.size then
        errf "layout of %s reaches offsets [%d, %d] outside size %d"
          a.array_name lay_lo lay_hi a.size;
      let box = box_of_shape (tensor_space a.array_name a.tensor_shape) a.tensor_shape in
      if a.size <= 4096 && not (Poly.Aff_map.is_injective_on a.layout box) then
        errf "layout of %s is not injective" a.array_name)
    program.arrays;
  let written = Hashtbl.create 16 in
  List.iter
    (fun stmt ->
      (match Poly.Basic_set.bounding_box stmt.domain with
      | None -> errf "statement %s has unbounded domain" stmt.stmt_name
      | Some box ->
          let check_access what acc =
            let info = array_info program acc.array in
            let shape = Array.of_list info.tensor_shape in
            if Array.length (Poly.Aff_map.exprs acc.map) <> Array.length shape
            then errf "%s access to %s has wrong rank in %s" what acc.array stmt.stmt_name;
            Array.iteri
              (fun d e ->
                let lo, hi = expr_range box e in
                if lo < 0 || hi >= shape.(d) then
                  errf "%s access to %s dim %d out of bounds in %s" what
                    acc.array d stmt.stmt_name)
              (Poly.Aff_map.exprs acc.map)
          in
          check_access "write" stmt.write;
          List.iter (check_access "read") (reads stmt));
      List.iter
        (fun r ->
          let info = array_info program r.array in
          if info.kind <> Input && not (Hashtbl.mem written r.array) then
            errf "array %s read before written in %s" r.array stmt.stmt_name)
        (reads stmt);
      let winfo = array_info program stmt.write.array in
      if winfo.kind = Input then
        errf "statement %s writes input %s" stmt.stmt_name stmt.write.array;
      Hashtbl.replace written stmt.write.array ())
    program.stmts;
  List.iter
    (fun a ->
      if a.kind = Output && not (Hashtbl.mem written a.array_name) then
        errf "output %s never written" a.array_name)
    program.arrays

let pp_access ppf a = Format.fprintf ppf "%s%a" a.array Poly.Aff_map.pp a.map

let pp_statement ppf stmt =
  Format.fprintf ppf "@[<v 2>%s:@ domain %a@ write %a@ "
    stmt.stmt_name Poly.Basic_set.pp stmt.domain pp_access stmt.write;
  (match stmt.compute with
  | Init f -> Format.fprintf ppf ":= %g" f
  | Mac reads ->
      Format.fprintf ppf "+= %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " * ")
           pp_access)
        reads
  | Assign_pointwise (f, a, b) ->
      let op =
        match f with
        | Tir.Ir.Add -> "+"
        | Tir.Ir.Sub -> "-"
        | Tir.Ir.Mul -> "*"
        | Tir.Ir.Div -> "/"
      in
      Format.fprintf ppf ":= %a %s %a" pp_access a op pp_access b
  | Assign_copy a -> Format.fprintf ppf ":= %a" pp_access a);
  Format.fprintf ppf "@]"

let pp_program ppf program =
  Format.fprintf ppf "@[<v>program %s@ " program.prog_name;
  List.iter
    (fun a ->
      Format.fprintf ppf "array %s%s : %d elements@ " a.array_name
        (match a.kind with Input -> " (input)" | Output -> " (output)" | Temp -> " (temp)")
        a.size)
    program.arrays;
  List.iter (fun s -> Format.fprintf ppf "%a@ " pp_statement s) program.stmts;
  Format.fprintf ppf "@]"
