(** The polyhedral program representation (steps (ii)-(iv) of Figure 4).

    A TIR kernel is promoted into {e statements} over integer instance
    domains with affine accesses (Section IV-C). Contractions contribute
    two statements: an initialization over the output domain and a
    multiply-accumulate over the inner domain (output dims followed by one
    reduction dim per index pair, Section IV-B). Accesses are kept in
    tensor index spaces; layouts (Section IV-D) map them to flat arrays. *)

type array_kind = Input | Output | Temp

type array_info = {
  array_name : string;
  kind : array_kind;
  tensor_shape : int list;
  layout : Poly.Aff_map.t;  (** tensor space -> 1-D array space *)
  size : int;  (** number of array elements after layout *)
}

type access = { array : string; map : Poly.Aff_map.t }
(** [map] goes from the statement's instance space to the {e tensor}
    index space of [array]. *)

type compute =
  | Init of float  (** write := constant *)
  | Mac of access list  (** write += product of reads *)
  | Assign_pointwise of Tir.Ir.pointwise * access * access
      (** write := lhs op rhs *)
  | Assign_copy of access  (** write := read *)

type statement = {
  stmt_name : string;
  domain : Poly.Basic_set.t;
  write : access;
  compute : compute;
}

type program = {
  prog_name : string;
  arrays : array_info list;
  stmts : statement list;  (** in reference execution order *)
}

exception Error of string

val array_info : program -> string -> array_info
(** @raise Error for unknown arrays. *)

val reads : statement -> access list
(** All read accesses of a statement, in operand order. *)

val array_access : program -> access -> Poly.Aff_map.t
(** Layout-composed access: instance space -> flat array space. *)

val default_layout : string -> int list -> Poly.Aff_map.t
(** Row-major (C99 innermost-dimension) layout for a tensor shape. *)

val of_kernel : ?name:string -> Tir.Ir.kernel -> program
(** Promote every TIR definition to statements with the default row-major
    layouts. The TIR must validate. *)

val operand_map : program -> statement -> Poly.Rel.t list
(** The operand maps of Section IV-B: for each read access, the relation
    from written tensor elements to the operand elements they depend on
    (reduction dims projected out). *)

val validate : program -> unit
(** Consistency: accesses stay in bounds, arrays are declared, statements
    write only their own write array, temporaries are written before read,
    layouts are injective. @raise Error otherwise. *)

val pp_statement : Format.formatter -> statement -> unit
val pp_program : Format.formatter -> program -> unit
