exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let tensor_space name shape =
  Poly.Space.make name (List.mapi (fun i _ -> Printf.sprintf "d%d" i) shape)

let strided_layout name shape strides =
  let n = List.length shape in
  let expr = ref (Poly.Aff.const n 0) in
  List.iteri
    (fun d s -> expr := Poly.Aff.add !expr (Poly.Aff.scale s (Poly.Aff.var n d)))
    strides;
  Poly.Aff_map.make (tensor_space name shape)
    (Poly.Space.make name [ "a" ])
    [| !expr |]

let permuted shape order =
  let n = List.length shape in
  if List.length order <> n || List.sort compare order <> List.init n Fun.id
  then errf "permuted: not a permutation of 0..%d" (n - 1);
  (* innermost = last of [order]; assign strides walking inward-out *)
  let strides = Array.make n 1 in
  let stride = ref 1 in
  List.iter
    (fun d ->
      strides.(d) <- !stride;
      stride := !stride * List.nth shape d)
    (List.rev order);
  strided_layout "t" shape (Array.to_list strides)

let padded_row_major shape ~align =
  if align < 1 then errf "padded_row_major: align must be positive";
  let n = List.length shape in
  if n = 0 then strided_layout "t" shape []
  else begin
    let extents = Array.of_list shape in
    let strides = Array.make n 1 in
    let round_up v = (v + align - 1) / align * align in
    if n >= 2 then begin
      strides.(n - 2) <- round_up extents.(n - 1);
      for d = n - 3 downto 0 do
        strides.(d) <- strides.(d + 1) * extents.(d + 1)
      done
    end;
    strided_layout "t" shape (Array.to_list strides)
  end

(* Range of an affine expression over a box. *)
let expr_range box (e : Poly.Aff.t) =
  let lo = ref (Poly.Aff.constant e) and hi = ref (Poly.Aff.constant e) in
  Array.iteri
    (fun i (blo, bhi) ->
      let c = Poly.Aff.coeff e i in
      if c > 0 then begin
        lo := !lo + (c * blo);
        hi := !hi + (c * bhi)
      end
      else if c < 0 then begin
        lo := !lo + (c * bhi);
        hi := !hi + (c * blo)
      end)
    box;
  (!lo, !hi)

let set_layout (program : Flow.program) name layout =
  let found = ref false in
  let arrays =
    List.map
      (fun (a : Flow.array_info) ->
        if a.Flow.array_name <> name then a
        else begin
          found := true;
          let box =
            Array.of_list (List.map (fun e -> (0, e - 1)) a.Flow.tensor_shape)
          in
          let exprs = Poly.Aff_map.exprs layout in
          if Array.length exprs <> 1 then
            errf "set_layout: layout of %s must target a 1-D array" name;
          if Poly.Aff.arity exprs.(0) <> List.length a.Flow.tensor_shape then
            errf "set_layout: layout arity mismatch for %s" name;
          let lo, hi = expr_range box exprs.(0) in
          if lo < 0 then errf "set_layout: layout of %s reaches offset %d" name lo;
          (* Rebuild the map against this array's canonical spaces. *)
          let layout =
            Poly.Aff_map.make
              (tensor_space name a.Flow.tensor_shape)
              (Poly.Space.make name [ "a" ])
              exprs
          in
          { a with Flow.layout; size = hi + 1 }
        end)
      program.Flow.arrays
  in
  if not !found then errf "set_layout: unknown array %s" name;
  let program = { program with Flow.arrays } in
  Flow.validate program;
  program

(* ---- block partitioning ---- *)

(* The domain variable used by an access for tensor dimension [dim];
   requires a bare variable subscript. *)
let subscript_var stmt_name (acc : Flow.access) dim =
  let e = (Poly.Aff_map.exprs acc.Flow.map).(dim) in
  if Poly.Aff.constant e <> 0 then
    errf "block_partition: %s subscripts dim %d with an offset" stmt_name dim;
  let vars = ref [] in
  for j = 0 to Poly.Aff.arity e - 1 do
    if Poly.Aff.coeff e j <> 0 then vars := (j, Poly.Aff.coeff e j) :: !vars
  done;
  match !vars with
  | [ (j, 1) ] -> j
  | _ ->
      errf "block_partition: %s does not subscript dim %d with a bare variable"
        stmt_name dim

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      List.concat_map
        (fun choice -> List.map (fun tail -> choice :: tail) (cartesian rest))
        choices

let block_partition (program : Flow.program) name ~dim ~banks =
  let info = Flow.array_info program name in
  let shape = Array.of_list info.Flow.tensor_shape in
  if dim < 0 || dim >= Array.length shape then
    errf "block_partition: %s has no dimension %d" name dim;
  let extent = shape.(dim) in
  if banks < 1 || banks > extent then
    errf "block_partition: cannot split extent %d into %d banks" extent banks;
  (* near-even distribution so every bank is non-empty for any
     banks <= extent *)
  let base = extent / banks and extra = extent mod banks in
  let bank_bounds =
    List.init banks (fun i ->
        let lo = (i * base) + min i extra in
        let size = base + if i < extra then 1 else 0 in
        (lo, lo + size - 1))
  in
  let bank_name i = Printf.sprintf "%s__%d" name i in
  let bank_shape i =
    let lo, hi = List.nth bank_bounds i in
    List.mapi
      (fun d e -> if d = dim then hi - lo + 1 else e)
      info.Flow.tensor_shape
  in
  let arrays =
    List.concat_map
      (fun (a : Flow.array_info) ->
        if a.Flow.array_name <> name then [ a ]
        else
          List.init banks (fun i ->
              let shape = bank_shape i in
              {
                Flow.array_name = bank_name i;
                kind = a.Flow.kind;
                tensor_shape = shape;
                layout = Flow.default_layout (bank_name i) shape;
                size = List.fold_left ( * ) 1 shape;
              }))
      program.Flow.arrays
  in
  let split_statement (stmt : Flow.statement) =
    let touched (acc : Flow.access) = acc.Flow.array = name in
    let accesses = stmt.Flow.write :: Flow.reads stmt in
    if not (List.exists touched accesses) then [ stmt ]
    else begin
      (* one split variable per distinct domain var subscripting [dim] *)
      let vars =
        List.sort_uniq compare
          (List.filter_map
             (fun acc ->
               if touched acc then
                 Some (subscript_var stmt.Flow.stmt_name acc dim)
               else None)
             accesses)
      in
      let combos = cartesian (List.map (fun v -> List.map (fun b -> (v, b)) bank_bounds) vars) in
      List.mapi
        (fun ci combo ->
          let n = Poly.Basic_set.arity stmt.Flow.domain in
          let domain =
            List.fold_left
              (fun d (v, (lo, hi)) ->
                let d =
                  Poly.Basic_set.add_constraint d
                    (Poly.Basic_set.Ge (Poly.Aff.add_const (Poly.Aff.var n v) (-lo)))
                in
                Poly.Basic_set.add_constraint d
                  (Poly.Basic_set.Ge
                     (Poly.Aff.sub (Poly.Aff.const n hi) (Poly.Aff.var n v))))
              stmt.Flow.domain combo
          in
          let rebase (acc : Flow.access) =
            if not (touched acc) then acc
            else begin
              let v = subscript_var stmt.Flow.stmt_name acc dim in
              let lo, _ = List.assoc v combo in
              let bank =
                match
                  List.find_index (fun (l, _) -> l = lo) bank_bounds
                with
                | Some i -> i
                | None -> assert false
              in
              let exprs = Poly.Aff_map.exprs acc.Flow.map in
              exprs.(dim) <- Poly.Aff.add_const exprs.(dim) (-lo);
              {
                Flow.array = bank_name bank;
                map =
                  Poly.Aff_map.make
                    (Poly.Aff_map.dom acc.Flow.map)
                    (tensor_space (bank_name bank) (bank_shape bank))
                    exprs;
              }
            end
          in
          let compute =
            match stmt.Flow.compute with
            | Flow.Init f -> Flow.Init f
            | Flow.Mac reads -> Flow.Mac (List.map rebase reads)
            | Flow.Assign_pointwise (f, a, b) ->
                Flow.Assign_pointwise (f, rebase a, rebase b)
            | Flow.Assign_copy a -> Flow.Assign_copy (rebase a)
          in
          {
            Flow.stmt_name = Printf.sprintf "%s__b%d" stmt.Flow.stmt_name ci;
            domain;
            write = rebase stmt.Flow.write;
            compute;
          })
        combos
    end
  in
  let program =
    {
      program with
      Flow.arrays;
      stmts = List.concat_map split_statement program.Flow.stmts;
    }
  in
  Flow.validate program;
  program
