(** Layout materialization options (Section IV-D).

    The compiler concretizes every tensor's memory layout before
    rescheduling. Beyond the default row-major layout this module
    implements the paper's command-line-configurable layout expressions
    and partitioning maps:

    - {e layout expressions} map tensors to 1-D arrays: dimension
      permutations (column-major and friends) and padded layouts that
      align rows to a given stride, e.g. for host-interface reshaping;
    - {e partitioning maps} split an array into banks. A block partition
      along a tensor dimension splits every statement that accesses the
      array into per-bank statements over restricted (still box-shaped)
      domains — the statement splitting described at the end of
      Section IV-D — enabling multi-bank PLMs and parallel port access.

    Explicit merge maps (the other half of Section IV-D's partitioning
    relations) live in {!Liveness.Sharing}, next to the legality analysis
    they depend on. All transformations preserve the program's semantics;
    the test suite verifies each against the interpreter oracle. *)

exception Error of string

val permuted : int list -> int list -> Poly.Aff_map.t
(** [permuted shape order] lays dimension [List.nth order 0] outermost
    (slowest varying) and the last element of [order] innermost.
    [permuted shape (List.init rank Fun.id)] is row-major.
    @raise Error if [order] is not a permutation of the dimensions. *)

val padded_row_major : int list -> align:int -> Poly.Aff_map.t
(** Row-major with the innermost row padded to a multiple of [align]
    words (common for power-of-two host strides). *)

val set_layout : Flow.program -> string -> Poly.Aff_map.t -> Flow.program
(** Replace one array's layout; re-derives the array size from the
    layout's maximal offset (padding grows the array) and re-validates
    the program (in particular, injectivity of the new layout).
    @raise Error on unknown arrays; validation errors propagate. *)

val block_partition :
  Flow.program -> string -> dim:int -> banks:int -> Flow.program
(** Split array [a] into [banks] arrays [a__0 .. a__{banks-1}] along
    tensor dimension [dim] (the last bank may be smaller). Every
    statement whose accesses touch [a] is split into per-bank statements
    with the corresponding index range restricted; accesses are rebased
    into the bank's local index space. Requires every access's subscript
    for [dim] to be a single domain variable (true for all programs built
    by {!Flow.of_kernel}); @raise Error otherwise, on non-positive
    or excessive bank counts, and on unknown arrays. *)
