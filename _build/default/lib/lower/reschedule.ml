type options = {
  fuse_init : bool;
  fuse_pointwise : bool;
  reduction_inner : bool;
  permute : (string * int array) list;
}

let default =
  { fuse_init = true; fuse_pointwise = false; reduction_inner = true; permute = [] }

(* Number of output dimensions of a mac statement: the write access arity. *)
let out_rank (stmt : Flow.statement) =
  Array.length (Poly.Aff_map.exprs stmt.Flow.write.Flow.map)

let is_mac (stmt : Flow.statement) =
  match stmt.Flow.compute with Flow.Mac _ -> true | _ -> false

let is_init (stmt : Flow.statement) =
  match stmt.Flow.compute with Flow.Init _ -> true | _ -> false

let is_pointwise_like (stmt : Flow.statement) =
  match stmt.Flow.compute with
  | Flow.Assign_pointwise _ | Flow.Assign_copy _ -> true
  | Flow.Init _ | Flow.Mac _ -> false

let identity_access (acc : Flow.access) =
  let exprs = Poly.Aff_map.exprs acc.Flow.map in
  let ok = ref true in
  Array.iteri
    (fun i e ->
      let n = Poly.Aff.arity e in
      if not (Poly.Aff.equal e (Poly.Aff.var n i)) then ok := false)
    exprs;
  !ok

let domain_extents (stmt : Flow.statement) =
  match Poly.Basic_set.bounding_box stmt.Flow.domain with
  | Some box -> Array.map (fun (lo, hi) -> hi - lo + 1) box
  | None -> [||]

let compute ?(options = default) (program : Flow.program) =
  (* Pass 1: assign group ids. A mac absorbs the immediately preceding
     init of the same array; a pointwise statement may join the previous
     group under fuse_pointwise. *)
  let stmts = Array.of_list program.Flow.stmts in
  let n = Array.length stmts in
  let group = Array.make n 0 in
  let seq_in_group = Array.make n 0 in
  let next_group = ref (-1) in
  let last_group_out_extents = ref [||] in
  let last_group_written = ref [] in
  let last_seq = ref 0 in
  for i = 0 to n - 1 do
    let stmt = stmts.(i) in
    let joins_as_mac =
      options.fuse_init && options.reduction_inner && is_mac stmt && i > 0
      && is_init stmts.(i - 1)
      && stmts.(i - 1).Flow.write.Flow.array = stmt.Flow.write.Flow.array
      && group.(i - 1) = !next_group
      && not (List.mem_assoc stmt.Flow.stmt_name options.permute)
      && not (List.mem_assoc stmts.(i - 1).Flow.stmt_name options.permute)
    in
    let joins_as_pointwise =
      options.fuse_pointwise && is_pointwise_like stmt && !next_group >= 0
      && (not (List.mem_assoc stmt.Flow.stmt_name options.permute))
      &&
      let ext = domain_extents stmt in
      ext = !last_group_out_extents
      && List.for_all
           (fun (r : Flow.access) ->
             (not (List.mem r.Flow.array !last_group_written))
             || identity_access r)
           (Flow.reads stmt)
    in
    if joins_as_mac || joins_as_pointwise then begin
      group.(i) <- !next_group;
      incr last_seq;
      seq_in_group.(i) <- !last_seq;
      last_group_written := stmt.Flow.write.Flow.array :: !last_group_written
    end
    else begin
      incr next_group;
      group.(i) <- !next_group;
      last_seq := 0;
      seq_in_group.(i) <- 0;
      last_group_written := [ stmt.Flow.write.Flow.array ];
      (* The group's fused loops range over this statement's output dims
         (for macs) or all dims (pointwise). *)
      let d = out_rank stmt in
      let ext = domain_extents stmt in
      last_group_out_extents :=
        (if is_mac stmt || is_init stmt then Array.sub ext 0 (min d (Array.length ext))
         else ext)
    end;
    (* An init followed by its mac: the group out extents should reflect
       the init's full domain (the output box). *)
    if is_init stmt && seq_in_group.(i) = 0 then
      last_group_out_extents := domain_extents stmt
  done;
  (* Pass 2: build sched1 records. *)
  List.mapi
    (fun i (stmt : Flow.statement) ->
      let d = Poly.Basic_set.arity stmt.Flow.domain in
      let dims =
        match List.assoc_opt stmt.Flow.stmt_name options.permute with
        | Some p -> Array.copy p
        | None ->
            if is_mac stmt && not options.reduction_inner then begin
              (* reductions outermost (after the statement beta) *)
              let nout = out_rank stmt in
              Array.init d (fun j ->
                  if j < d - nout then nout + j else j - (d - nout))
            end
            else Array.init d Fun.id
      in
      let betas = Array.make (d + 1) 0 in
      betas.(0) <- group.(i);
      (* Sequencing beta sits after the fused (output) loops. *)
      if seq_in_group.(i) > 0 then begin
        let nout = out_rank stmt in
        let pos = min nout d in
        betas.(pos) <- seq_in_group.(i)
      end;
      (stmt.Flow.stmt_name, { Schedule.betas; dims }))
    program.Flow.stmts
