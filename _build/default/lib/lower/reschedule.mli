(** The rescheduler (step (iii) of Figure 4): computes improved schedules
    from the reference schedule using dependence-driven heuristics, in the
    spirit of the isl/Pluto rescheduling the paper performs.

    Two cost-reducing moves are implemented, both validated against exact
    element dependences:

    - {e accumulator fusion} ([fuse_init]): the initialization of a
      contraction output is fused into the surrounding output loops of its
      multiply-accumulate statement, shrinking every element's
      write-to-last-write interval (the RAW-distance cost of
      Section IV-E);
    - {e consumer fusion} ([fuse_pointwise]): an element-wise statement
      whose reads of the previous group's product are identity maps is
      placed at coincident schedule points (the RAR/coincidence cost),
      reducing temporary live ranges. *)

type options = {
  fuse_init : bool;
  fuse_pointwise : bool;
  reduction_inner : bool;
      (** keep reduction loops innermost (true matches both HLS pipelining
          and the layout-aware consecutivity preference) *)
  permute : (string * int array) list;
      (** explicit per-statement loop orders, overriding defaults *)
}

val default : options
(** [fuse_init = true], [fuse_pointwise = false],
    [reduction_inner = true], no explicit permutations. *)

val compute : ?options:options -> Flow.program -> Schedule.t
(** Always returns a schedule accepted by {!Schedule.validate}. Legality
    with respect to element dependences is guaranteed by construction for
    programs built by {!Flow.of_kernel} and double-checked in the test
    suite via {!Schedule.legal}. *)
