type sched1 = { betas : int array; dims : int array }
type t = (string * sched1) list

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let reference (program : Flow.program) =
  List.mapi
    (fun k (stmt : Flow.statement) ->
      let d = Poly.Basic_set.arity stmt.Flow.domain in
      let betas = Array.make (d + 1) 0 in
      betas.(0) <- k;
      (stmt.Flow.stmt_name, { betas; dims = Array.init d Fun.id }))
    program.Flow.stmts

let find t name =
  match List.assoc_opt name t with
  | Some s -> s
  | None -> errf "statement %s has no schedule" name

let depth t =
  List.fold_left (fun acc (_, s) -> max acc (Array.length s.dims)) 0 t

let tuple_arity t = (2 * depth t) + 1

let timestamp t sched x =
  let arity = tuple_arity t in
  let d = Array.length sched.dims in
  let ts = Array.make arity 0 in
  for i = 0 to d - 1 do
    ts.(2 * i) <- sched.betas.(i);
    ts.((2 * i) + 1) <- x.(sched.dims.(i))
  done;
  ts.(2 * d) <- sched.betas.(d);
  ts

let to_aff_map t (stmt : Flow.statement) sched =
  let arity = tuple_arity t in
  let n = Poly.Basic_set.arity stmt.Flow.domain in
  let d = Array.length sched.dims in
  let exprs =
    Array.init arity (fun pos ->
        if pos mod 2 = 0 then
          let i = pos / 2 in
          if i <= d then Poly.Aff.const n sched.betas.(i) else Poly.Aff.const n 0
        else
          let i = pos / 2 in
          if i < d then Poly.Aff.var n sched.dims.(i) else Poly.Aff.const n 0)
  in
  Poly.Aff_map.make
    (Poly.Basic_set.space stmt.Flow.domain)
    (Poly.Space.anonymous arity)
    exprs

let image_extrema t sched domain =
  match Poly.Basic_set.bounding_box domain with
  | None -> errf "image_extrema: domain is not a bounded box"
  | Some box ->
      let d = Array.length sched.dims in
      let corner pick =
        let x = Array.make (Array.length box) 0 in
        Array.iteri
          (fun j (lo, hi) -> x.(j) <- (if pick then lo else hi))
          box;
        x
      in
      ignore d;
      ( timestamp t sched (corner true),
        timestamp t sched (corner false) )

let validate (program : Flow.program) t =
  List.iter
    (fun (stmt : Flow.statement) ->
      let s = find t stmt.Flow.stmt_name in
      let d = Poly.Basic_set.arity stmt.Flow.domain in
      if Array.length s.dims <> d then
        errf "%s: schedule has %d loop dims, domain rank %d"
          stmt.Flow.stmt_name (Array.length s.dims) d;
      if Array.length s.betas <> d + 1 then
        errf "%s: schedule needs %d betas" stmt.Flow.stmt_name (d + 1);
      if List.sort compare (Array.to_list s.dims) <> List.init d Fun.id then
        errf "%s: dims is not a permutation" stmt.Flow.stmt_name)
    program.Flow.stmts;
  (* Distinct statements must never produce identical timestamps: their
     beta vectors must differ at or before the depth where their variable
     parts stop coinciding. A cheap sufficient check: full beta lists
     differ pairwise. *)
  let betas_of name = (find t name).betas in
  let rec pairwise = function
    | [] -> ()
    | (a : Flow.statement) :: rest ->
        List.iter
          (fun (b : Flow.statement) ->
            if betas_of a.Flow.stmt_name = betas_of b.Flow.stmt_name then
              errf "%s and %s have identical beta vectors" a.Flow.stmt_name
                b.Flow.stmt_name)
          rest;
        pairwise rest
  in
  pairwise program.Flow.stmts

(* ---- exact legality by enumeration ---- *)

type events = {
  mutable init_ts : Poly.Lex.timestamp option;
  mutable last_write : Poly.Lex.timestamp option;
  mutable first_accum : Poly.Lex.timestamp option;
  mutable first_read : Poly.Lex.timestamp option;
}

let legal (program : Flow.program) t =
  (match validate program t with () -> () | exception Error _ -> ());
  let table : (string * int, events) Hashtbl.t = Hashtbl.create 1024 in
  let get array off =
    match Hashtbl.find_opt table (array, off) with
    | Some e -> e
    | None ->
        let e =
          { init_ts = None; last_write = None; first_accum = None; first_read = None }
        in
        Hashtbl.add table (array, off) e;
        e
  in
  let lex_min a b = match a with None -> Some b | Some x -> Some (Poly.Lex.min x b) in
  let lex_max a b = match a with None -> Some b | Some x -> Some (Poly.Lex.max x b) in
  List.iter
    (fun (stmt : Flow.statement) ->
      let sched = find t stmt.Flow.stmt_name in
      let wmap = Flow.array_access program stmt.Flow.write in
      let rmaps =
        List.map
          (fun r -> (r.Flow.array, Flow.array_access program r))
          (Flow.reads stmt)
      in
      List.iter
        (fun x ->
          let ts = timestamp t sched x in
          let woff = (Poly.Aff_map.apply wmap x).(0) in
          let ev = get stmt.Flow.write.Flow.array woff in
          ev.last_write <- lex_max ev.last_write ts;
          (match stmt.Flow.compute with
          | Flow.Init _ ->
              ev.init_ts <- lex_min ev.init_ts ts
          | Flow.Mac _ -> ev.first_accum <- lex_min ev.first_accum ts
          | Flow.Assign_pointwise _ | Flow.Assign_copy _ -> ());
          List.iter
            (fun (array, rmap) ->
              let roff = (Poly.Aff_map.apply rmap x).(0) in
              let rev = get array roff in
              rev.first_read <- lex_min rev.first_read ts)
            rmaps)
        (Poly.Basic_set.enumerate stmt.Flow.domain))
    program.Flow.stmts;
  let ok = ref true in
  Hashtbl.iter
    (fun (_array, _off) ev ->
      (match (ev.last_write, ev.first_read) with
      | Some w, Some r when not (Poly.Lex.lt w r) -> ok := false
      | _ -> ());
      match (ev.init_ts, ev.first_accum) with
      | Some i, Some a when not (Poly.Lex.lt i a) -> ok := false
      | _ -> ())
    table;
  !ok

let pp ppf t =
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "%s: betas [%s] dims [%s]@\n" name
        (String.concat " " (Array.to_list (Array.map string_of_int s.betas)))
        (String.concat " " (Array.to_list (Array.map string_of_int s.dims))))
    t
