(** Schedules in Kelly's 2d+1 representation (Section IV-C/E).

    A per-statement schedule interleaves scalar (beta) dimensions with
    domain dimensions: instance [x] of a rank-d statement maps to the
    schedule-space tuple

    [beta.(0), x.(dims.(0)), beta.(1), x.(dims.(1)), ..., beta.(d)]

    padded with zeros to the program's uniform schedule arity. Tuples are
    compared lexicographically ({!Poly.Lex}); equal beta prefixes encode
    loop fusion, and [dims] encodes loop permutation. This restricted,
    always-codegen-able class is what our rescheduler searches; legality
    is checked against exact element dependences. *)

type sched1 = { betas : int array; dims : int array }
(** [Array.length betas = Array.length dims + 1]; [dims] is a permutation
    of the statement's domain dimensions, outermost first. *)

type t = (string * sched1) list
(** Keyed by [Flow.statement.stmt_name]. *)

exception Error of string

val reference : Flow.program -> t
(** The implicit reference schedule: statements in program order, loops in
    domain order (Section IV-C). *)

val find : t -> string -> sched1
(** @raise Error for unscheduled statements. *)

val depth : t -> int
(** Maximum domain rank among scheduled statements. *)

val tuple_arity : t -> int
(** Uniform schedule-space arity, [2 * depth + 1]. *)

val timestamp : t -> sched1 -> int array -> Poly.Lex.timestamp
(** Schedule tuple of one instance, padded to [tuple_arity]. *)

val to_aff_map : t -> Flow.statement -> sched1 -> Poly.Aff_map.t
(** The schedule as an affine map from the statement's instance space to
    the anonymous schedule space. *)

val image_extrema :
  t -> sched1 -> Poly.Basic_set.t -> Poly.Lex.timestamp * Poly.Lex.timestamp
(** Lexicographic minimum and maximum of the schedule image of a box
    domain. Exact for this schedule class (each tuple component is a
    single domain variable or a constant, hence monotone).
    @raise Error if the domain is not a box. *)

val validate : Flow.program -> t -> unit
(** Structural checks: every statement scheduled, [dims] are
    permutations, and no two statements share a full beta-vector at equal
    loop structure ambiguously (distinct statements in one fused body must
    have distinct trailing betas). @raise Error otherwise. *)

val legal : Flow.program -> t -> bool
(** Exact legality by enumeration: for every read of an array element, the
    producing write is scheduled strictly earlier; initializations precede
    their accumulations; accumulation order changes are permitted
    (reductions are reassociable). Intended for tests and small domains —
    cost is proportional to the number of statement instances. *)

val pp : Format.formatter -> t -> unit
