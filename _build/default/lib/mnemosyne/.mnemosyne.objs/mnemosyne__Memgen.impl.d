lib/mnemosyne/memgen.ml: Buffer Format Fpga_platform List Liveness Lower Printf String
