lib/mnemosyne/memgen.mli: Format Lower
