lib/mnemosyne/plm_emit.ml: Buffer Fpga_platform List Memgen Printf String
