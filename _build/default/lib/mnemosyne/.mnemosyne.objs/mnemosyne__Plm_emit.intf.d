lib/mnemosyne/plm_emit.mli: Memgen
