let ceil_div a b = (a + b - 1) / b

let addr_bits words =
  let rec go b = if 1 lsl b >= words then b else go (b + 1) in
  max 1 (go 0)

let unit_verilog (u : Memgen.plm_unit) =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let words = u.Memgen.unit_words in
  let packed = words * 64 <= Fpga_platform.Bram.bits in
  let slices = ceil_div 64 Fpga_platform.Bram.word_width in
  let rows = ceil_div words Fpga_platform.Bram.depth in
  let ab = addr_bits words in
  p "// PLM unit %s: %d x 64b words on %d BRAM18\n" u.Memgen.unit_name words
    u.Memgen.brams;
  if packed then
    p "//   packed half-word mode: 1 primitive, 2 x 36b rows per word,\n\
       //   2-cycle access hidden behind the fixed-latency wrapper\n"
  else
    p "//   banking: %d width slices x %d depth rows x %d copies\n" slices rows
      u.Memgen.copies;
  List.iter
    (fun (s : Memgen.slot) ->
      p "//   slot +%-6d (%d words): %s\n" s.Memgen.slot_offset
        s.Memgen.slot_words
        (String.concat " | " s.Memgen.residents))
    u.Memgen.slots;
  p "module plm_%s (\n" u.Memgen.unit_name;
  p "  input  wire        clk,\n";
  p "  // accelerator-side port(s): %d read lane(s) + write\n" u.Memgen.copies;
  for lane = 0 to u.Memgen.copies - 1 do
    p "  input  wire [%d:0] a%d_addr,\n" (ab - 1) lane;
    p "  output reg  [63:0] a%d_rdata,\n" lane
  done;
  p "  input  wire        a_we,\n";
  p "  input  wire [%d:0] a_waddr,\n" (ab - 1);
  p "  input  wire [63:0] a_wdata,\n";
  p "  // DMA-side port\n";
  p "  input  wire        b_en,\n";
  p "  input  wire        b_we,\n";
  p "  input  wire [%d:0] b_addr,\n" (ab - 1);
  p "  input  wire [63:0] b_wdata,\n";
  p "  output reg  [63:0] b_rdata\n";
  p ");\n\n";
  for copy = 0 to u.Memgen.copies - 1 do
    p "  (* ram_style = \"block\" *) reg [63:0] mem%d [0:%d];\n" copy (words - 1)
  done;
  p "\n  always @(posedge clk) begin\n";
  p "    // writes broadcast to every copy (reads stay coherent)\n";
  p "    if (a_we) begin\n";
  for copy = 0 to u.Memgen.copies - 1 do
    p "      mem%d[a_waddr] <= a_wdata;\n" copy
  done;
  p "    end\n";
  p "    if (b_en && b_we) begin\n";
  for copy = 0 to u.Memgen.copies - 1 do
    p "      mem%d[b_addr] <= b_wdata;\n" copy
  done;
  p "    end\n";
  for lane = 0 to u.Memgen.copies - 1 do
    p "    a%d_rdata <= mem%d[a%d_addr];\n" lane lane lane
  done;
  p "    if (b_en && !b_we) b_rdata <= mem0[b_addr];\n";
  p "  end\n\nendmodule\n";
  Buffer.contents buf

let verilog (arch : Memgen.architecture) =
  let buf = Buffer.create 8192 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "// Mnemosyne PLM subsystem (%s): %d BRAM18 total\n"
    (match arch.Memgen.arch_mode with
    | Memgen.No_sharing -> "no sharing"
    | Memgen.Sharing -> "sharing")
    arch.Memgen.total_brams;
  List.iter
    (fun u -> p "//   %s: %d BRAM18\n" u.Memgen.unit_name u.Memgen.brams)
    arch.Memgen.units;
  p "\n";
  List.iter
    (fun u ->
      Buffer.add_string buf (unit_verilog u);
      p "\n")
    arch.Memgen.units;
  Buffer.contents buf
