(** PLM RTL emission: the memory wrappers Mnemosyne contributes to the
    system (Section V-A2).

    One Verilog module per PLM unit, with a fixed-latency dual-port
    interface (accelerator side + DMA side). The behavioural arrays carry
    [ram_style = "block"] attributes and comments stating the exact
    BRAM18 banking (width slices x depth rows x copies) the allocator
    paid for, so synthesis maps them onto the counted primitives. Units
    with more than one copy broadcast writes to every copy and serve each
    read lane from its own copy (the multi-port architecture). Packed
    half-word units (one primitive) note their 2-cycle access wrapper. *)

val unit_verilog : Memgen.plm_unit -> string

val verilog : Memgen.architecture -> string
(** All units of one PLM set, plus a bank-level summary header. *)
