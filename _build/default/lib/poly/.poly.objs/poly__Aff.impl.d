lib/poly/aff.ml: Array Format Printf
