lib/poly/aff_map.ml: Aff Array Basic_set Format Fun Hashtbl List Space String
