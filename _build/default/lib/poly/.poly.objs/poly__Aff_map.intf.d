lib/poly/aff_map.mli: Aff Basic_set Format Space
