lib/poly/basic_set.ml: Aff Array Format Fun List Printf Space
