lib/poly/basic_set.mli: Aff Format Space
