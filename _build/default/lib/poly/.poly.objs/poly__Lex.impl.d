lib/poly/lex.ml: Array Format Stdlib String
