lib/poly/lex.mli: Format
