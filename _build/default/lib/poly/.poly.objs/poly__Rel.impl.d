lib/poly/rel.ml: Aff Aff_map Array Basic_set Format Fun Hashtbl List Printf Set Space
