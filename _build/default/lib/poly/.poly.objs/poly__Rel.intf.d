lib/poly/rel.mli: Aff_map Basic_set Format Set Space
