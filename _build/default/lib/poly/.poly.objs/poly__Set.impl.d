lib/poly/set.ml: Basic_set Format Hashtbl List Space
