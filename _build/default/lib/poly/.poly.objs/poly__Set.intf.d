lib/poly/set.mli: Basic_set Format Space
