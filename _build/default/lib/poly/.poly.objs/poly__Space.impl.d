lib/poly/space.ml: Array Format List Printf String
