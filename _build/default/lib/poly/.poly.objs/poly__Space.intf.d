lib/poly/space.mli: Format
