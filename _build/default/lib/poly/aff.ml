type t = { coeffs : int array; const : int }

exception Arity_mismatch of int * int

let make coeffs const = { coeffs = Array.copy coeffs; const }
let const arity c = { coeffs = Array.make arity 0; const = c }

let var arity i =
  if i < 0 || i >= arity then
    invalid_arg (Printf.sprintf "Aff.var: index %d out of arity %d" i arity);
  let coeffs = Array.make arity 0 in
  coeffs.(i) <- 1;
  { coeffs; const = 0 }

let arity t = Array.length t.coeffs
let coeff t i = t.coeffs.(i)
let constant t = t.const

let check_arity a b =
  if arity a <> arity b then raise (Arity_mismatch (arity a, arity b))

let add a b =
  check_arity a b;
  { coeffs = Array.map2 ( + ) a.coeffs b.coeffs; const = a.const + b.const }

let neg a = { coeffs = Array.map (fun c -> -c) a.coeffs; const = -a.const }
let sub a b = add a (neg b)
let scale k a = { coeffs = Array.map (fun c -> k * c) a.coeffs; const = k * a.const }
let add_const a c = { a with const = a.const + c }

let eval t point =
  if Array.length point <> arity t then
    raise (Arity_mismatch (arity t, Array.length point));
  let acc = ref t.const in
  Array.iteri (fun i c -> acc := !acc + (c * point.(i))) t.coeffs;
  !acc

let is_constant t = Array.for_all (( = ) 0) t.coeffs
let equal a b = a.coeffs = b.coeffs && a.const = b.const

let extend t n =
  { t with coeffs = Array.append t.coeffs (Array.make n 0) }

let shift t by n =
  if by + arity t > n then
    invalid_arg
      (Printf.sprintf "Aff.shift: arity %d shifted by %d exceeds %d" (arity t)
         by n);
  let coeffs = Array.make n 0 in
  Array.blit t.coeffs 0 coeffs by (arity t);
  { coeffs; const = t.const }

let substitute t i repl =
  check_arity t repl;
  if repl.coeffs.(i) <> 0 then
    invalid_arg "Aff.substitute: replacement mentions substituted variable";
  let c = t.coeffs.(i) in
  if c = 0 then t
  else
    let without = { t with coeffs = Array.copy t.coeffs } in
    without.coeffs.(i) <- 0;
    add without (scale c repl)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let gcd_reduce t =
  let g = Array.fold_left (fun acc c -> gcd acc c) 0 t.coeffs in
  if g <= 1 then (t, max g 1)
  else
    ( {
        coeffs = Array.map (fun c -> c / g) t.coeffs;
        (* Integer tightening for >= constraints: floor division of the
           constant is sound because the variable part is a multiple of g. *)
        const =
          (if t.const >= 0 then t.const / g
           else -(((-t.const) + g - 1) / g));
      },
      g )

let pp ~names ppf t =
  let printed = ref false in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        let name =
          if i < Array.length names then names.(i)
          else Printf.sprintf "x%d" i
        in
        if !printed then
          Format.fprintf ppf " %s " (if c > 0 then "+" else "-")
        else if c < 0 then Format.pp_print_string ppf "-";
        let a = abs c in
        if a = 1 then Format.pp_print_string ppf name
        else Format.fprintf ppf "%d%s" a name;
        printed := true
      end)
    t.coeffs;
  if t.const <> 0 || not !printed then
    if !printed then
      Format.fprintf ppf " %s %d"
        (if t.const >= 0 then "+" else "-")
        (abs t.const)
    else Format.pp_print_int ppf t.const

let pp_anon ppf t =
  let names = Array.init (arity t) (Printf.sprintf "x%d") in
  pp ~names ppf t
