(** Integer affine expressions over a fixed-arity variable vector.

    An expression is [sum_i coeffs.(i) * x_i + const]. All polyhedral
    objects in this library (constraints, access maps, layouts, schedules)
    are built from these. Arities must match when combining expressions. *)

type t = private { coeffs : int array; const : int }

exception Arity_mismatch of int * int

val make : int array -> int -> t
(** [make coeffs const]; the coefficient array is copied. *)

val const : int -> int -> t
(** [const arity c] is the constant expression [c] over [arity] variables. *)

val var : int -> int -> t
(** [var arity i] is the variable [x_i]. @raise Invalid_argument. *)

val arity : t -> int
val coeff : t -> int -> int
val constant : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : t -> int -> t

val eval : t -> int array -> int
(** @raise Arity_mismatch. *)

val is_constant : t -> bool
val equal : t -> t -> bool

val extend : t -> int -> t
(** [extend e n] reinterprets [e] over [arity e + n] variables; the new
    trailing variables have coefficient 0. *)

val shift : t -> int -> int -> t
(** [shift e by n] moves [e]'s variables up by [by] positions inside a new
    arity [n] (used to embed codomain expressions in relation space). *)

val substitute : t -> int -> t -> t
(** [substitute e i repl] replaces variable [i] by expression [repl]
    (same arity as [e]); the coefficient of [i] in [repl] must be 0. *)

val gcd_reduce : t -> t * int
(** Divide by the gcd of the coefficients (not the constant); returns the
    reduced expression and the gcd (1 if all coefficients are 0). *)

val pp : names:string array -> Format.formatter -> t -> unit
val pp_anon : Format.formatter -> t -> unit
