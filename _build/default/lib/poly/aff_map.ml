type t = { dom : Space.t; cod : Space.t; exprs : Aff.t array }

let make dom cod exprs =
  if Array.length exprs <> Space.arity cod then
    invalid_arg "Aff_map.make: one expression per codomain dimension required";
  Array.iter
    (fun e ->
      if Aff.arity e <> Space.arity dom then
        invalid_arg "Aff_map.make: expression arity differs from domain")
    exprs;
  { dom; cod; exprs = Array.copy exprs }

let identity space =
  let n = Space.arity space in
  { dom = space; cod = space; exprs = Array.init n (Aff.var n) }

let constant dom cod point =
  if Array.length point <> Space.arity cod then
    invalid_arg "Aff_map.constant: point arity mismatch";
  let n = Space.arity dom in
  { dom; cod; exprs = Array.map (Aff.const n) point }

let dom t = t.dom
let cod t = t.cod
let exprs t = Array.copy t.exprs

let apply t point = Array.map (fun e -> Aff.eval e point) t.exprs

let compose g f =
  if Space.arity f.cod <> Space.arity g.dom then
    invalid_arg "Aff_map.compose: domain/codomain arity mismatch";
  let n = Space.arity f.dom in
  let subst e =
    let acc = ref (Aff.const n (Aff.constant e)) in
    Array.iteri
      (fun j fj ->
        let c = Aff.coeff e j in
        if c <> 0 then acc := Aff.add !acc (Aff.scale c fj))
      f.exprs;
    !acc
  in
  { dom = f.dom; cod = g.cod; exprs = Array.map subst g.exprs }

let concat_outputs ?cod f g =
  if Space.arity f.dom <> Space.arity g.dom then
    invalid_arg "Aff_map.concat_outputs: domain arity mismatch";
  let cod = match cod with Some c -> c | None -> Space.concat f.cod g.cod in
  { dom = f.dom; cod; exprs = Array.append f.exprs g.exprs }

let select_outputs t keep cod =
  if List.length keep <> Space.arity cod then
    invalid_arg "Aff_map.select_outputs: codomain arity mismatch";
  let exprs = Array.of_list (List.map (fun k -> t.exprs.(k)) keep) in
  { dom = t.dom; cod; exprs }

let graph_constraints t =
  let nin = Space.arity t.dom and nout = Space.arity t.cod in
  let n = nin + nout in
  List.init nout (fun k ->
      let lhs = Aff.var n (nin + k) in
      let rhs = Aff.shift t.exprs.(k) 0 n in
      Basic_set.Eq (Aff.sub lhs rhs))

let image t bset =
  if Space.arity (Basic_set.space bset) <> Space.arity t.dom then
    invalid_arg "Aff_map.image: set space mismatch";
  let nin = Space.arity t.dom and nout = Space.arity t.cod in
  let concat_space = Space.concat t.dom t.cod in
  let dom_constrs =
    List.map
      (function
        | Basic_set.Eq e -> Basic_set.Eq (Aff.extend e nout)
        | Basic_set.Ge e -> Basic_set.Ge (Aff.extend e nout))
      (Basic_set.constraints bset)
  in
  let graph = graph_constraints t in
  let combined = Basic_set.of_constraints concat_space (dom_constrs @ graph) in
  Basic_set.project_out combined (List.init nin Fun.id) t.cod

let image_points t bset =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let q = apply t p in
      if not (Hashtbl.mem tbl q) then Hashtbl.add tbl q ())
    (Basic_set.enumerate bset);
  Hashtbl.fold (fun p () acc -> p :: acc) tbl []

let is_injective_on t bset =
  let seen = Hashtbl.create 64 in
  let points = Basic_set.enumerate bset in
  List.for_all
    (fun p ->
      let q = apply t p in
      if Hashtbl.mem seen q then false
      else begin
        Hashtbl.add seen q ();
        true
      end)
    points

let equal a b =
  Space.equal a.dom b.dom && Space.equal a.cod b.cod
  && Array.length a.exprs = Array.length b.exprs
  && Array.for_all2 Aff.equal a.exprs b.exprs

let pp ppf t =
  let names = Space.dim_names t.dom in
  Format.fprintf ppf "{ %a -> %s[%s] }" Space.pp t.dom (Space.name t.cod)
    (String.concat ", "
       (Array.to_list
          (Array.map (fun e -> Format.asprintf "%a" (Aff.pp ~names) e) t.exprs)))
