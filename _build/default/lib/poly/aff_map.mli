(** Affine functions between spaces.

    Tensor access functions, memory layouts (Section IV-D) and schedules
    (Section IV-C) are all affine functions; this module gives them exact,
    composable semantics. The forward direction never needs division, so
    evaluation and composition are exact even for non-unimodular layouts
    such as [t\[i,j,k\] -> t\[121 i + 11 j + k\]]. *)

type t

val make : Space.t -> Space.t -> Aff.t array -> t
(** [make dom cod exprs] with one expression per codomain dimension, each of
    arity [Space.arity dom]. @raise Invalid_argument on arity mismatch. *)

val identity : Space.t -> t

val constant : Space.t -> Space.t -> int array -> t
(** Maps every domain point to the given codomain point. *)

val dom : t -> Space.t
val cod : t -> Space.t
val exprs : t -> Aff.t array

val apply : t -> int array -> int array
val compose : t -> t -> t
(** [compose g f] is [g ∘ f]. @raise Invalid_argument if arities disagree. *)

val concat_outputs : ?cod:Space.t -> t -> t -> t
(** Pairing: same domain, stacked codomains ([⟨f, g⟩]). *)

val select_outputs : t -> int list -> Space.t -> t
(** Keep only the listed codomain dimensions, in the given order. *)

val graph_constraints : t -> Basic_set.constr list
(** Equalities [cod_k - expr_k = 0] over the concatenated [dom; cod] space. *)

val image : t -> Basic_set.t -> Basic_set.t
(** FM image of a basic set (may over-approximate integer points for
    non-unit coefficient maps; exact for unimodular maps). *)

val image_points : t -> Basic_set.t -> int array list
(** Exact image by enumeration (bounded domains only), deduplicated. *)

val is_injective_on : t -> Basic_set.t -> bool
(** Exact injectivity over a bounded domain (used to validate layout and
    partition maps, Section IV-D). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** isl-like: [{ S\[i, j\] -> A\[11 i + j\] }]. *)
