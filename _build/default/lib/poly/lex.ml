type timestamp = int array

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let rec go i =
    if i >= n then 0
    else
      let x = if i < la then a.(i) else 0 and y = if i < lb then b.(i) else 0 in
      if x < y then -1 else if x > y then 1 else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0
let le a b = compare a b <= 0
let lt a b = compare a b < 0
let min a b = if le a b then a else b
let max a b = if le a b then b else a

type interval = { first : timestamp; last : timestamp }

let interval first last =
  if lt last first then invalid_arg "Lex.interval: empty interval";
  { first; last }

let singleton t = { first = t; last = t }

let hull a b = { first = min a.first b.first; last = max a.last b.last }
let overlap a b = le a.first b.last && le b.first a.last
let contains i t = le i.first t && le t i.last

let pp_timestamp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ", " (Array.to_list (Array.map string_of_int t)))

let pp_interval ppf i =
  Format.fprintf ppf "[%a .. %a]" pp_timestamp i.first pp_timestamp i.last
