(** Lexicographic order on schedule-space tuples (Section IV-C).

    Schedule tuples impose a total order via lexicographic comparison;
    liveness intervals (Section IV-F) are ranges in this order. Tuples of
    different lengths are compared by padding the shorter one with
    trailing zeros, matching the usual schedule-space convention. *)

type timestamp = int array

val compare : timestamp -> timestamp -> int
val equal : timestamp -> timestamp -> bool
val min : timestamp -> timestamp -> timestamp
val max : timestamp -> timestamp -> timestamp
val le : timestamp -> timestamp -> bool
val lt : timestamp -> timestamp -> bool

type interval = { first : timestamp; last : timestamp }
(** A non-empty closed interval [first, last] in schedule space: the
    [ge_le] image of Section IV-F. *)

val interval : timestamp -> timestamp -> interval
(** @raise Invalid_argument if [first > last]. *)

val singleton : timestamp -> interval
val hull : interval -> interval -> interval
val overlap : interval -> interval -> bool
val contains : interval -> timestamp -> bool
val pp_timestamp : Format.formatter -> timestamp -> unit
val pp_interval : Format.formatter -> interval -> unit
