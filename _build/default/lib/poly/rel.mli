(** General integer relations: finite unions of affinely constrained pairs.

    Used for operand maps (unions of access functions, Section IV-B),
    dataflow dependencies (Section IV-E/F) and liveness intervals. A basic
    relation is a basic set over the concatenated [dom; cod] space. *)

type t

val make : Space.t -> Space.t -> Basic_set.t list -> t
(** Each basic set must live over a space of arity
    [arity dom + arity cod]. *)

val empty : Space.t -> Space.t -> t
val universe : Space.t -> Space.t -> t

val of_aff_map : Aff_map.t -> t
(** The graph of an affine function, restricted to nothing (whole space). *)

val of_aff_map_on : Aff_map.t -> Basic_set.t -> t
(** Graph restricted to a domain set. *)

val of_pairs : Space.t -> Space.t -> (int array * int array) list -> t
(** Finite explicit relation (one single-point basic relation per pair). *)

val dom_space : t -> Space.t
val cod_space : t -> Space.t
val basics : t -> Basic_set.t list

val union : t -> t -> t
val intersect : t -> t -> t
val inverse : t -> t

val domain : t -> Set.t
val range : t -> Set.t
(** FM projections (may over-approximate for non-unit coefficients). *)

val intersect_domain : t -> Basic_set.t -> t
val intersect_range : t -> Basic_set.t -> t

val compose : t -> t -> t
(** [compose r2 r1] relates x to z when exists y: x r1 y and y r2 z. *)

val apply_point : t -> int array -> int array list
(** Exact images of one point (requires the range to be bounded once the
    domain is fixed). *)

val mem : t -> int array -> int array -> bool
val is_empty : t -> bool

val enumerate : t -> (int array * int array) list
(** All pairs, deduplicated (bounded relations only). *)

val pp : Format.formatter -> t -> unit
