type t = { space : Space.t; basics : Basic_set.t list }

let of_basic b = { space = Basic_set.space b; basics = [ b ] }

let of_list space basics =
  List.iter
    (fun b ->
      if Space.arity (Basic_set.space b) <> Space.arity space then
        invalid_arg "Set.of_list: arity mismatch")
    basics;
  { space; basics = List.filter (fun b -> not (Basic_set.is_obviously_empty b)) basics }

let empty space = { space; basics = [] }
let universe space = { space; basics = [ Basic_set.universe space ] }
let space t = t.space
let basics t = t.basics

let union a b =
  if Space.arity a.space <> Space.arity b.space then
    invalid_arg "Set.union: arity mismatch";
  { a with basics = a.basics @ b.basics }

let intersect a b =
  if Space.arity a.space <> Space.arity b.space then
    invalid_arg "Set.intersect: arity mismatch";
  {
    a with
    basics =
      List.concat_map
        (fun x ->
          List.filter_map
            (fun y ->
              let i = Basic_set.intersect x y in
              if Basic_set.is_obviously_empty i then None else Some i)
            b.basics)
        a.basics;
  }

let add_basic t b = union t (of_basic b)
let mem t point = List.exists (fun b -> Basic_set.mem b point) t.basics
let is_empty t = List.for_all Basic_set.is_empty t.basics

let enumerate t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun p -> if not (Hashtbl.mem tbl p) then Hashtbl.add tbl p ())
        (Basic_set.enumerate b))
    t.basics;
  Hashtbl.fold (fun p () acc -> p :: acc) tbl []

let subset a b = List.for_all (mem b) (enumerate a)
let equal_points a b = subset a b && subset b a

let disjoint a b =
  List.for_all
    (fun x ->
      List.for_all
        (fun y -> Basic_set.is_empty_exact (Basic_set.intersect x y))
        b.basics)
    a.basics

let pp ppf t =
  match t.basics with
  | [] -> Format.fprintf ppf "{ %a : false }" Space.pp t.space
  | bs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " union ")
        Basic_set.pp ppf bs
