(** Finite unions of basic sets over a common space. *)

type t

val of_basic : Basic_set.t -> t
val of_list : Space.t -> Basic_set.t list -> t
val empty : Space.t -> t
val universe : Space.t -> t

val space : t -> Space.t
val basics : t -> Basic_set.t list

val union : t -> t -> t
(** @raise Invalid_argument on arity mismatch. *)

val intersect : t -> t -> t
(** Pairwise intersection of disjuncts. *)

val add_basic : t -> Basic_set.t -> t
val mem : t -> int array -> bool
val is_empty : t -> bool
val enumerate : t -> int array list
(** Deduplicated integer points of all disjuncts (requires boundedness). *)

val subset : t -> t -> bool
(** Exact, by enumeration of the left side; requires boundedness. *)

val equal_points : t -> t -> bool
(** Same integer points (bounded sets only). *)

val disjoint : t -> t -> bool
(** No common integer point. Uses FM on each disjunct pair, falling back to
    enumeration for exactness on bounded pairs. *)

val pp : Format.formatter -> t -> unit
