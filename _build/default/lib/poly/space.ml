type t = { name : string; dim_names : string array }

let make name dim_names = { name; dim_names = Array.of_list dim_names }

let anonymous arity =
  { name = ""; dim_names = Array.init arity (Printf.sprintf "t%d") }

let name t = t.name
let dim_names t = Array.copy t.dim_names
let arity t = Array.length t.dim_names
let equal a b = a.name = b.name && arity a = arity b
let equal_arity a b = arity a = arity b

let concat ?name:(n = "") a b =
  let taken = Array.to_list a.dim_names in
  let rename d = if List.mem d taken then d ^ "'" else d in
  {
    name = (if n = "" then a.name else n);
    dim_names = Array.append a.dim_names (Array.map rename b.dim_names);
  }

let pp ppf t =
  Format.fprintf ppf "%s[%s]" t.name
    (String.concat ", " (Array.to_list t.dim_names))
