(** Named integer tuple spaces.

    Every tensor, array and statement in the flow spans its own space
    (Section IV-B): a tuple name plus named dimensions. Scalars are
    0-dimensional spaces with exactly one valid (empty) tuple. *)

type t

val make : string -> string list -> t
(** [make name dim_names]. *)

val anonymous : int -> t
(** Anonymous schedule space of the given arity (isl's [...] tuples). *)

val name : t -> string
val dim_names : t -> string array
val arity : t -> int
val equal : t -> t -> bool
(** Same name and arity (dimension names are documentation only). *)

val equal_arity : t -> t -> bool

val concat : ?name:string -> t -> t -> t
(** Concatenated dimensions, e.g. to host relation constraints. Dimension
    names are made unique by suffixing the second operand's on clash. *)

val pp : Format.formatter -> t -> unit
(** isl-like: [name\[i, j, k\]]. *)
