lib/sem/gll.ml: Array Float Tensor
