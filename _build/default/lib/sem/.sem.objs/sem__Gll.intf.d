lib/sem/gll.mli: Tensor
