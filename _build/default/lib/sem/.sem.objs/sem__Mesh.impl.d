lib/sem/mesh.ml: Array Gll Tensor
