lib/sem/mesh.mli: Tensor
