lib/sem/operator.ml: Array Cfd_core Cfdlang Dense Gll Hashtbl Lazy List Loopir Mesh Mnemosyne Ops Shape Tensor
