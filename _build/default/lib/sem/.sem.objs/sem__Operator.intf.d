lib/sem/operator.mli: Cfd_core Cfdlang Mesh Tensor
