lib/sem/solver.ml: Array Float Gll Mesh Operator Tensor
