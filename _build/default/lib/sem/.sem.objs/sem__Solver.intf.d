lib/sem/solver.mli: Mesh Operator Tensor
