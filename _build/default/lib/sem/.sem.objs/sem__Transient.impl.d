lib/sem/transient.ml: Array Float Gll Mesh Operator Solver Tensor
