lib/sem/transient.mli: Mesh Solver
