(* Legendre polynomial by the three-term recurrence. *)
let legendre k x =
  if k = 0 then 1.0
  else begin
    let pm1 = ref 1.0 and p = ref x in
    for j = 2 to k do
      let next =
        (((2.0 *. float_of_int j) -. 1.0) *. x *. !p
        -. (float_of_int j -. 1.0) *. !pm1)
        /. float_of_int j
      in
      pm1 := !p;
      p := next
    done;
    !p
  end

(* P_k and its first two derivatives (for the Newton iteration on P'_{n-1}). *)
let legendre_derivs k x =
  let p = legendre k x in
  if k = 0 then (p, 0.0, 0.0)
  else begin
    (* (1-x^2) P' = k (P_{k-1} - x P_k) *)
    let pkm1 = legendre (k - 1) x in
    let one_m_x2 = 1.0 -. (x *. x) in
    if Float.abs one_m_x2 < 1e-14 then (p, 0.0, 0.0)
    else begin
      let p' = float_of_int k *. (pkm1 -. (x *. p)) /. one_m_x2 in
      (* Legendre ODE: (1-x^2) P'' - 2x P' + k(k+1) P = 0 *)
      let p'' =
        ((2.0 *. x *. p') -. (float_of_int (k * (k + 1)) *. p)) /. one_m_x2
      in
      (p, p', p'')
    end
  end

let nodes n =
  if n < 2 then invalid_arg "Gll.nodes: need at least two points";
  let x = Array.make n 0.0 in
  x.(0) <- -1.0;
  x.(n - 1) <- 1.0;
  let k = n - 1 in
  (* interior nodes: roots of P'_k via Newton with Chebyshev-like seeds *)
  for i = 1 to n - 2 do
    let seed =
      -.cos (Float.pi *. float_of_int i /. float_of_int k)
    in
    let xi = ref seed in
    for _ = 1 to 60 do
      let _, p', p'' = legendre_derivs k !xi in
      if Float.abs p'' > 1e-30 then xi := !xi -. (p' /. p'')
    done;
    x.(i) <- !xi
  done;
  x

let weights n =
  let x = nodes n in
  let k = n - 1 in
  Array.map
    (fun xi ->
      let p = legendre k xi in
      2.0 /. (float_of_int (n * k) *. p *. p))
    x

let diff_matrix n =
  let x = nodes n in
  let k = n - 1 in
  let l = Array.map (legendre k) x in
  let d = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then d.(i).(j) <- l.(i) /. (l.(j) *. (x.(i) -. x.(j)))
      else if i = 0 then d.(i).(j) <- -.float_of_int (k * (k + 1)) /. 4.0
      else if i = n - 1 then d.(i).(j) <- float_of_int (k * (k + 1)) /. 4.0
      else d.(i).(j) <- 0.0
    done
  done;
  d

let diff_matrix_tensor n =
  let d = diff_matrix n in
  Tensor.Dense.init (Tensor.Shape.create [ n; n ]) (function
    | [ i; j ] -> d.(i).(j)
    | _ -> assert false)

let stiffness_matrix n =
  let d = diff_matrix n in
  let w = weights n in
  Tensor.Dense.init (Tensor.Shape.create [ n; n ]) (function
    | [ i; j ] ->
        let acc = ref 0.0 in
        for q = 0 to n - 1 do
          acc := !acc +. (w.(q) *. d.(q).(i) *. d.(q).(j))
        done;
        !acc
    | _ -> assert false)
