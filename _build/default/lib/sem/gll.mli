(** Gauss-Lobatto-Legendre quadrature and spectral differentiation on the
    reference interval [-1, 1] — the numerical foundation of the
    spectral element method (Section II-A).

    [n] is the number of points (polynomial degree n-1). GLL nodes are
    the endpoints plus the roots of P'_{n-1}; the associated quadrature
    integrates polynomials of degree up to 2n-3 exactly, and the
    differentiation matrix is exact on polynomials of degree up to
    n-1 — both properties are checked in the test suite. *)

val legendre : int -> float -> float
(** [legendre k x] evaluates the Legendre polynomial P_k at x. *)

val nodes : int -> float array
(** The [n] GLL nodes in increasing order, including -1 and 1.
    @raise Invalid_argument for [n < 2]. *)

val weights : int -> float array
(** Quadrature weights: [w_i = 2 / (n (n-1) P_{n-1}(x_i)^2)];
    they sum to 2. *)

val diff_matrix : int -> float array array
(** [d.(i).(j)] is the derivative of the j-th Lagrange cardinal function
    at node i: applying [d] to nodal values differentiates the
    interpolant. *)

val diff_matrix_tensor : int -> Tensor.Dense.t
(** {!diff_matrix} as an [n x n] tensor (row i = evaluation point). *)

val stiffness_matrix : int -> Tensor.Dense.t
(** The reference 1-D stiffness matrix
    [K_ij = sum_q w_q d.(q).(i) d.(q).(j)] (symmetric positive
    semidefinite; exact for the GLL basis). *)
