type t = {
  ne_ : int;
  n_ : int;
  nodes_per_axis : int;
  ref_nodes : float array;
}

let create ~ne ~n =
  if ne < 1 then invalid_arg "Mesh.create: ne < 1";
  if n < 2 then invalid_arg "Mesh.create: n < 2";
  { ne_ = ne; n_ = n; nodes_per_axis = (ne * (n - 1)) + 1; ref_nodes = Gll.nodes n }

let ne t = t.ne_
let n t = t.n_
let num_elements t = t.ne_ * t.ne_ * t.ne_
let num_global t = t.nodes_per_axis * t.nodes_per_axis * t.nodes_per_axis
let element_size t = 1.0 /. float_of_int t.ne_

let element_coords t e =
  let ex = e / (t.ne_ * t.ne_) in
  let rem = e mod (t.ne_ * t.ne_) in
  (ex, rem / t.ne_, rem mod t.ne_)

let global_of_axis t ecoord local = (ecoord * (t.n_ - 1)) + local

let flat_global t gx gy gz =
  (gx * t.nodes_per_axis * t.nodes_per_axis) + (gy * t.nodes_per_axis) + gz

let global_index t ~element local =
  match local with
  | [ i; j; k ] ->
      let ex, ey, ez = element_coords t element in
      flat_global t (global_of_axis t ex i) (global_of_axis t ey j)
        (global_of_axis t ez k)
  | _ -> invalid_arg "Mesh.global_index: expected a rank-3 local index"

let node_coords t g =
  let npa = t.nodes_per_axis in
  let gx = g / (npa * npa) and rem = g mod (npa * npa) in
  let gy = rem / npa and gz = rem mod npa in
  let axis gc =
    (* which element and local node produce this axis coordinate *)
    let e = min (gc / (t.n_ - 1)) (t.ne_ - 1) in
    let local = gc - (e * (t.n_ - 1)) in
    let h = element_size t in
    (float_of_int e *. h) +. (h *. (t.ref_nodes.(local) +. 1.0) /. 2.0)
  in
  (axis gx, axis gy, axis gz)

let shape t = Tensor.Shape.cube 3 t.n_

let scatter t global =
  Array.init (num_elements t) (fun e ->
      Tensor.Dense.init (shape t) (fun local ->
          global.(global_index t ~element:e local)))

let gather_add t locals =
  let out = Array.make (num_global t) 0.0 in
  Array.iteri
    (fun e local ->
      Tensor.Shape.iter (shape t) (fun idx ->
          let g = global_index t ~element:e idx in
          out.(g) <- out.(g) +. Tensor.Dense.get local idx))
    locals;
  out

let boundary_mask t =
  let npa = t.nodes_per_axis in
  Array.init (num_global t) (fun g ->
      let gx = g / (npa * npa) and rem = g mod (npa * npa) in
      let gy = rem / npa and gz = rem mod npa in
      gx = 0 || gy = 0 || gz = 0 || gx = npa - 1 || gy = npa - 1 || gz = npa - 1)

let apply_mask t v =
  let mask = boundary_mask t in
  Array.iteri (fun i b -> if b then v.(i) <- 0.0) mask
