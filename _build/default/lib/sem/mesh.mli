(** Structured spectral-element mesh on the unit cube.

    [ne] elements per axis, [n] GLL nodes per axis per element; adjacent
    elements share their face nodes (continuous Galerkin), giving
    [ne*(n-1)+1] global nodes per axis. Provides the local/global maps
    and the gather/scatter (direct stiffness summation) primitives a CG
    solve needs, plus the homogeneous-Dirichlet boundary mask. *)

type t

val create : ne:int -> n:int -> t
(** @raise Invalid_argument for [ne < 1] or [n < 2]. *)

val ne : t -> int
val n : t -> int
val num_elements : t -> int
val num_global : t -> int
(** Total global nodes, [(ne*(n-1)+1)^3]. *)

val element_size : t -> float
(** Physical edge length of one element, [1 / ne]. *)

val node_coords : t -> int -> float * float * float
(** Physical coordinates of a global node (by flat index). *)

val global_index : t -> element:int -> int list -> int
(** Flat global index of a local node [\[i; j; k\]] of an element. *)

val scatter : t -> float array -> Tensor.Dense.t array
(** Global vector to per-element local tensors (copy shared nodes). *)

val gather_add : t -> Tensor.Dense.t array -> float array
(** Per-element local tensors summed into a global vector (direct
    stiffness summation: shared nodes accumulate every contribution). *)

val boundary_mask : t -> bool array
(** [true] for nodes on the boundary of the cube. *)

val apply_mask : t -> float array -> unit
(** Zero the boundary entries in place (homogeneous Dirichlet). *)
