open Tensor

type t = {
  lambda_ : float;
  n : int;
  k_matrix : Dense.t;
  w0 : Dense.t;
  w1 : Dense.t;
  w2 : Dense.t;
  wm : Dense.t;
  program_ : Cfdlang.Ast.program;
  compiled_ : Cfd_core.Compile.result Lazy.t;
}

let build_program n =
  let c3 = [ n; n; n ] in
  let open Cfdlang.Ast in
  {
    decls =
      [
        { name = "K"; io = Input; dims = [ n; n ] };
        { name = "Id"; io = Input; dims = [ n; n ] };
        { name = "W0"; io = Input; dims = c3 };
        { name = "W1"; io = Input; dims = c3 };
        { name = "W2"; io = Input; dims = c3 };
        { name = "WM"; io = Input; dims = c3 };
        { name = "lambda"; io = Input; dims = [] };
        { name = "u"; io = Input; dims = c3 };
        { name = "v"; io = Output; dims = c3 };
        { name = "t0"; io = Local; dims = c3 };
        { name = "t1"; io = Local; dims = c3 };
        { name = "t2"; io = Local; dims = c3 };
      ];
    stmts =
      [
        { lhs = "t0"; rhs = Contract (Prod (Var "K", Var "u"), [ (1, 2) ]) };
        {
          lhs = "t1";
          rhs =
            Contract
              (Prod (Prod (Var "Id", Var "K"), Var "u"), [ (1, 4); (3, 5) ]);
        };
        {
          lhs = "t2";
          rhs =
            Contract
              ( Prod (Prod (Prod (Var "Id", Var "Id"), Var "K"), Var "u"),
                [ (1, 6); (3, 7); (5, 8) ] );
        };
        {
          lhs = "v";
          rhs =
            Add
              ( Add
                  ( Add
                      ( Mul (Var "lambda", Mul (Var "WM", Var "u")),
                        Mul (Var "W0", Var "t0") ),
                    Mul (Var "W1", Var "t1") ),
                Mul (Var "W2", Var "t2") );
        };
      ];
  }

let create ?(lambda = 1.0) ~mesh () =
  let n = Mesh.n mesh in
  let h2 = Mesh.element_size mesh /. 2.0 in
  let w = Gll.weights n in
  let shape3 = Shape.cube 3 n in
  let field f = Dense.init shape3 (function [ i; j; k ] -> f i j k | _ -> assert false) in
  let program_ = build_program n in
  {
    lambda_ = lambda;
    n;
    k_matrix = Gll.stiffness_matrix n;
    (* stiffness term scale: (2/h) * (h/2)^2 = h/2, carried by the
       transverse quadrature weights *)
    w0 = field (fun _ j k -> h2 *. w.(j) *. w.(k));
    w1 = field (fun i _ k -> h2 *. w.(i) *. w.(k));
    w2 = field (fun i j _ -> h2 *. w.(i) *. w.(j));
    (* mass scale: (h/2)^3 *)
    wm = field (fun i j k -> h2 *. h2 *. h2 *. w.(i) *. w.(j) *. w.(k));
    program_;
    compiled_ =
      lazy
        (Cfd_core.Compile.compile
           ~options:
             {
               Cfd_core.Compile.default_options with
               Cfd_core.Compile.kernel_name = "sem_apply";
             }
           program_);
  }

let lambda t = t.lambda_
let program t = t.program_
let compiled t = Lazy.force t.compiled_

let reference_apply t u =
  let contract_dim0 m w = Ops.contract_product [ m; w ] [ (1, 2) ] in
  let t0 = contract_dim0 t.k_matrix u in
  let id = Dense.identity t.n in
  let t1 =
    Ops.contract_product [ id; t.k_matrix; u ] [ (1, 4); (3, 5) ]
  in
  let t2 =
    Ops.contract_product [ id; id; t.k_matrix; u ] [ (1, 6); (3, 7); (5, 8) ]
  in
  Ops.add
    (Ops.add
       (Ops.add
          (Ops.scale t.lambda_ (Ops.hadamard t.wm u))
          (Ops.hadamard t.w0 t0))
       (Ops.hadamard t.w1 t1))
    (Ops.hadamard t.w2 t2)

let accelerated_apply t u =
  let result = Lazy.force t.compiled_ in
  let proc = result.Cfd_core.Compile.proc in
  let storage = result.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage in
  let buffer_of name =
    match List.assoc_opt name storage with
    | Some (b, off) -> (b, off)
    | None -> (name, 0)
  in
  let memory = Hashtbl.create 16 in
  List.iter
    (fun (p : Loopir.Prog.param) ->
      Hashtbl.replace memory p.Loopir.Prog.name
        (Array.make p.Loopir.Prog.size 0.0))
    proc.Loopir.Prog.params;
  let stage name tensor =
    let buf, off = buffer_of name in
    let data = Dense.to_array tensor in
    Array.blit data 0 (Hashtbl.find memory buf) off (Array.length data)
  in
  stage "K" t.k_matrix;
  stage "Id" (Dense.identity t.n);
  stage "W0" t.w0;
  stage "W1" t.w1;
  stage "W2" t.w2;
  stage "WM" t.wm;
  stage "lambda" (Dense.scalar t.lambda_);
  stage "u" u;
  Loopir.Interp.run proc memory;
  let vbuf, voff = buffer_of "v" in
  let out = Hashtbl.find memory vbuf in
  Dense.of_array (Shape.cube 3 t.n) (Array.sub out voff (t.n * t.n * t.n))
