(** A conjugate-gradient spectral-element solver for the Helmholtz problem

    lambda u - Laplacian u = f   on the unit cube,  u = 0 on the boundary

    — a miniature of the CFD simulations the paper targets. The global
    operator is applied element by element through {!Operator} (the
    function-handle integration of Section III-B) with direct stiffness
    summation across shared faces; the backend selects the CPU reference
    semantics or the compiled accelerator kernel, which must agree to
    floating-point tolerance (test-verified, as is the solver's spectral
    convergence against a manufactured solution). *)

type backend = Reference | Accelerator

type stats = { iterations : int; residual : float }

val apply_global :
  Mesh.t -> apply_element:(Tensor.Dense.t -> Tensor.Dense.t) -> float array ->
  float array
(** Scatter, per-element apply, gather-add, Dirichlet mask. *)

val assemble_rhs :
  Mesh.t -> f:(float -> float -> float -> float) -> float array
(** Weak-form right-hand side: per-element mass-weighted samples of [f],
    gathered and masked. *)

val cg :
  apply:(float array -> float array) ->
  b:float array ->
  tol:float ->
  max_iter:int ->
  float array * stats
(** Plain conjugate gradients from the zero start vector. *)

val solve :
  ?backend:backend ->
  ?tol:float ->
  ?max_iter:int ->
  mesh:Mesh.t ->
  operator:Operator.t ->
  f:(float -> float -> float -> float) ->
  unit ->
  float array * stats
(** End-to-end solve; returns the global nodal solution. *)

val max_error :
  Mesh.t -> float array -> exact:(float -> float -> float -> float) -> float
(** Maximum nodal error against a known solution. *)
