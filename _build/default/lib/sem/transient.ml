type result = { final : float array; steps : int; total_cg_iterations : int }

(* One implicit Euler step: (1/dt) u' - Lap u' = (1/dt) u. In weak form
   the right-hand side is the mass matrix applied to (1/dt) u, which we
   get by running the element operator with lambda' = 1/dt on u and
   subtracting the stiffness part — equivalently, by assembling
   M((1/dt) u) directly with the per-element mass weights. *)
let mass_rhs mesh ~scale u =
  let n = Mesh.n mesh in
  let h2 = Mesh.element_size mesh /. 2.0 in
  let w = Gll.weights n in
  let locals = Mesh.scatter mesh u in
  let weighted =
    Array.map
      (fun local ->
        Tensor.Dense.init (Tensor.Shape.cube 3 n) (fun idx ->
            match idx with
            | [ i; j; k ] ->
                scale *. h2 *. h2 *. h2 *. w.(i) *. w.(j) *. w.(k)
                *. Tensor.Dense.get local idx
            | _ -> assert false))
      locals
  in
  let b = Mesh.gather_add mesh weighted in
  Mesh.apply_mask mesh b;
  b

let step ?(backend = Solver.Reference) ~mesh ~dt ~u () =
  let lambda = 1.0 /. dt in
  let operator = Operator.create ~lambda ~mesh () in
  let apply_element =
    match backend with
    | Solver.Reference -> Operator.reference_apply operator
    | Solver.Accelerator -> Operator.accelerated_apply operator
  in
  let apply = Solver.apply_global mesh ~apply_element in
  let b = mass_rhs mesh ~scale:lambda u in
  Solver.cg ~apply ~b ~tol:1e-10 ~max_iter:500

let run ?(backend = Solver.Reference) ~mesh ~dt ~steps ~u0 () =
  let u =
    ref
      (Array.init (Mesh.num_global mesh) (fun g ->
           let x, y, z = Mesh.node_coords mesh g in
           u0 x y z))
  in
  Mesh.apply_mask mesh !u;
  let total = ref 0 in
  for _ = 1 to steps do
    let next, stats = step ~backend ~mesh ~dt ~u:!u () in
    total := !total + stats.Solver.iterations;
    u := next
  done;
  { final = !u; steps; total_cg_iterations = !total }

let decay_rate mesh before after ~dt =
  (* probe the node closest to the cube center *)
  let best = ref 0 and best_d = ref Float.infinity in
  Array.iteri
    (fun g _ ->
      let x, y, z = Mesh.node_coords mesh g in
      let d =
        ((x -. 0.5) ** 2.0) +. ((y -. 0.5) ** 2.0) +. ((z -. 0.5) ** 2.0)
      in
      if d < !best_d then begin
        best_d := d;
        best := g
      end)
    before;
  let a = before.(!best) and b = after.(!best) in
  if Float.abs a < 1e-30 || Float.abs b < 1e-30 then 0.0
  else -.log (b /. a) /. dt
