(** Implicit-Euler time stepping for the heat equation

    du/dt = Laplacian u,   u = 0 on the boundary of the unit cube

    — the transient simulation shape (many elements x many timesteps) the
    paper's host main loop exists to serve. Each step solves one
    Helmholtz problem ((1/dt) u' - Laplacian u' = (1/dt) u) with the
    element operator, so an N-step run applies the compiled kernel
    N x CG-iterations x elements times. *)

type result = {
  final : float array;  (** nodal solution after the last step *)
  steps : int;
  total_cg_iterations : int;
}

val step :
  ?backend:Solver.backend ->
  mesh:Mesh.t ->
  dt:float ->
  u:float array ->
  unit ->
  float array * Solver.stats
(** One implicit Euler step. *)

val run :
  ?backend:Solver.backend ->
  mesh:Mesh.t ->
  dt:float ->
  steps:int ->
  u0:(float -> float -> float -> float) ->
  unit ->
  result
(** March [steps] steps from the nodal interpolant of [u0]. *)

val decay_rate : Mesh.t -> float array -> float array -> dt:float -> float
(** Observed exponential decay rate between two consecutive states,
    measured on the dominant interior node (for validating against the
    analytic 3*pi^2 rate of the first Laplacian eigenmode). *)
