lib/sim/bottleneck.ml: Format Fpga_platform Hls Mnemosyne Perf Sysgen
