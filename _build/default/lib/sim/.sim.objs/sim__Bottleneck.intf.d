lib/sim/bottleneck.mli: Format Fpga_platform Sysgen
