lib/sim/cluster.ml: Float Fpga_platform List Perf Sysgen
