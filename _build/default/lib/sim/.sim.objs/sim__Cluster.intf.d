lib/sim/cluster.mli: Fpga_platform Perf Sysgen
