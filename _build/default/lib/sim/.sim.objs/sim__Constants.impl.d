lib/sim/constants.ml:
