lib/sim/constants.mli:
