lib/sim/functional.ml: Array Format Hashtbl List Loopir Sysgen
