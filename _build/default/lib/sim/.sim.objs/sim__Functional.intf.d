lib/sim/functional.mli: Loopir Sysgen
