lib/sim/perf.ml: Array Constants Float Format Fpga_platform Hls Sysgen
