lib/sim/perf.mli: Format Fpga_platform Sysgen
