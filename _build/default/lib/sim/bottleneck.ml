type time_verdict = Compute_bound | Transfer_bound

type resource_limit = Lut | Ff | Dsp | Bram | None_fits_more

type report = {
  time : time_verdict;
  compute_fraction : float;
  transfer_fraction : float;
  overlap_gain : float option;
  doubling_blocked_by : resource_limit;
}

let analyze ?(config = Sysgen.Replicate.default_config)
    ~(system : Sysgen.System.t) ~board () =
  let hw = Perf.run_hw ~system ~board in
  let total = float_of_int hw.Perf.total_cycles in
  let compute_fraction = float_of_int hw.Perf.exec_cycles /. total in
  let transfer_fraction = float_of_int hw.Perf.transfer_cycles /. total in
  let time =
    if compute_fraction >= transfer_fraction then Compute_bound
    else Transfer_bound
  in
  let sol = system.Sysgen.System.solution in
  let overlap_gain =
    if sol.Sysgen.Replicate.m < 2 * sol.Sysgen.Replicate.k then None
    else if compute_fraction > 0.99 then None
    else begin
      let overlapped = Perf.run_hw_overlapped ~system ~board in
      Some (hw.Perf.total_seconds /. overlapped.Perf.total_seconds)
    end
  in
  (* Which resource fails first when doubling the replica count? Grow the
     budget one resource class at a time: the class whose relaxation
     (alone) unblocks the doubled shape is the binding one. *)
  let kernel = system.Sysgen.System.kernel.Hls.Model.resources in
  let plm_brams = system.Sysgen.System.memory.Mnemosyne.Memgen.total_brams in
  let doubled = 2 * sol.Sysgen.Replicate.m in
  let fits_with capacity =
    let config =
      { config with Sysgen.Replicate.board = { board with Fpga_platform.Board.capacity } }
    in
    match
      Sysgen.Replicate.solve ~config ~kernel ~plm_brams ~force_k:doubled ()
    with
    | _ -> true
    | exception Sysgen.Replicate.Infeasible _ -> false
  in
  let cap = board.Fpga_platform.Board.capacity in
  let doubling_blocked_by =
    if fits_with cap then None_fits_more (* nothing blocks: m was not maxed *)
    else begin
      let big = 100 * 1000 * 1000 in
      if fits_with { cap with Fpga_platform.Resource.bram18 = big } then Bram
      else if fits_with { cap with Fpga_platform.Resource.lut = big } then Lut
      else if fits_with { cap with Fpga_platform.Resource.ff = big } then Ff
      else if fits_with { cap with Fpga_platform.Resource.dsp = big } then Dsp
      else None_fits_more
    end
  in
  { time; compute_fraction; transfer_fraction; overlap_gain; doubling_blocked_by }

let pp ppf r =
  Format.fprintf ppf
    "%s (compute %.0f%%, transfers %.0f%%)%s; doubling the replicas is %s"
    (match r.time with
    | Compute_bound -> "compute-bound"
    | Transfer_bound -> "transfer-bound")
    (100. *. r.compute_fraction)
    (100. *. r.transfer_fraction)
    (match r.overlap_gain with
    | Some g -> Format.asprintf "; double buffering would gain %.2fx" g
    | None -> "")
    (match r.doubling_blocked_by with
    | Bram -> "blocked by BRAM"
    | Lut -> "blocked by LUTs"
    | Ff -> "blocked by FFs"
    | Dsp -> "blocked by DSPs"
    | None_fits_more -> "not blocked (replication headroom remains)")
