(** Bottleneck analysis: why a generated system is as fast as it is, and
    what would have to give to make it faster — the question behind the
    paper's memory-sharing contribution (BRAMs, not logic, capped the
    replica count on the ZCU106).

    Two orthogonal verdicts:

    - {e time}: is the end-to-end run dominated by kernel execution or by
      host transfers (and would the future-work overlap help)?
    - {e resources}: which resource class blocks doubling the replica
      count — the paper's Equation-(3) constraint made concrete. *)

type time_verdict = Compute_bound | Transfer_bound

type resource_limit = Lut | Ff | Dsp | Bram | None_fits_more

type report = {
  time : time_verdict;
  compute_fraction : float;  (** of total cycles *)
  transfer_fraction : float;
  overlap_gain : float option;
      (** speedup available from double buffering ([None] when m < 2k or
          the system is already compute-bound beyond 99%) *)
  doubling_blocked_by : resource_limit;
      (** first resource that fails when solving Eq. (3) for 2m = 2k *)
}

val analyze :
  ?config:Sysgen.Replicate.config ->
  system:Sysgen.System.t ->
  board:Fpga_platform.Board.t ->
  unit ->
  report

val pp : Format.formatter -> report -> unit
