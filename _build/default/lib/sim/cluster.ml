type node_result = {
  node_board : string;
  node_elements : int;
  node_hw : Perf.hw_result;
}

type result = {
  nodes : node_result list;
  network_seconds : float;
  cluster_seconds : float;
  speedup_vs_first_node : float;
  efficiency : float;
}

let partition_elements ~n ~parts =
  if parts < 1 then invalid_arg "Cluster.partition_elements: parts < 1";
  if n < parts then invalid_arg "Cluster.partition_elements: n < parts";
  let base = n / parts and extra = n mod parts in
  List.init parts (fun i -> base + if i < extra then 1 else 0)

let run ~nodes ~network_gbps =
  if nodes = [] then invalid_arg "Cluster.run: no nodes";
  if network_gbps <= 0.0 then invalid_arg "Cluster.run: bandwidth must be positive";
  let node_results =
    List.map
      (fun (board, system) ->
        {
          node_board = board.Fpga_platform.Board.board_name;
          node_elements = system.Sysgen.System.host.Sysgen.System.n_elements;
          node_hw = Perf.run_hw ~system ~board;
        })
      nodes
  in
  let total_elements =
    List.fold_left (fun acc r -> acc + r.node_elements) 0 node_results
  in
  let bytes_per_element =
    match nodes with
    | (_, system) :: _ ->
        system.Sysgen.System.host.Sysgen.System.bytes_in_per_element
        + system.Sysgen.System.host.Sysgen.System.bytes_out_per_element
    | [] -> 0
  in
  let network_seconds =
    if network_gbps = Float.infinity then 0.0
    else
      float_of_int (total_elements * bytes_per_element) /. (network_gbps *. 1e9)
  in
  let slowest =
    List.fold_left
      (fun acc r -> Float.max acc r.node_hw.Perf.total_seconds)
      0.0 node_results
  in
  let cluster_seconds = network_seconds +. slowest in
  (* Baseline: the first node alone, time scaled linearly to the total
     element count (its system throughput is elements/second). *)
  let first = List.hd node_results in
  let single_seconds =
    first.node_hw.Perf.total_seconds
    *. float_of_int total_elements
    /. float_of_int (max 1 first.node_elements)
  in
  let speedup = single_seconds /. cluster_seconds in
  {
    nodes = node_results;
    network_seconds;
    cluster_seconds;
    speedup_vs_first_node = speedup;
    efficiency = speedup /. float_of_int (List.length node_results);
  }
