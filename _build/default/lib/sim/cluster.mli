(** Multi-FPGA scaling model ("scaling-up to clusters of larger FPGA
    boards", the paper's future work, Section VIII).

    Elements are partitioned across nodes; each node runs its own
    generated system (possibly on a different board). A head node feeds
    the cluster over a shared network link, serialized before the nodes
    compute — the same no-overlap conservatism as the single-board host
    model, so single-node results degenerate exactly to {!Perf.run_hw}
    plus zero network time when [network_gbps = infinity]. *)

type node_result = {
  node_board : string;
  node_elements : int;
  node_hw : Perf.hw_result;
}

type result = {
  nodes : node_result list;
  network_seconds : float;
  cluster_seconds : float;  (** network + slowest node *)
  speedup_vs_first_node : float;
      (** vs. running everything on node 0's system alone (scaled) *)
  efficiency : float;  (** speedup / node count *)
}

val partition_elements : n:int -> parts:int -> int list
(** Near-even split; sums to [n]. @raise Invalid_argument on
    [parts < 1] or [n < parts]. *)

val run :
  nodes:(Fpga_platform.Board.t * Sysgen.System.t) list ->
  network_gbps:float ->
  result
(** Each system must have been built with its node's element share
    ([System.host.n_elements]). @raise Invalid_argument on an empty node
    list or non-positive bandwidth. *)
