let axi_efficiency = 0.593
let arm_cycles_per_flop = 4.44
let hls_code_cpu_penalty = 1.25
let controller_handshake_cycles = 2
