(** Calibrated performance-model constants.

    These close the model against the paper's Section-VI measurements.
    With the HLS model's kernel latency E = 187,827 cycles per element and
    the ZCU106 transfer path, the paper's headline ratios pin the
    remaining free parameters (derivations in EXPERIMENTS.md):

    - total-speedup saturation [(T+E) / (T+E/16) = 12.58] gives an
      effective per-element transfer cost T ~= 3,467 cycles, i.e. an AXI
      efficiency of ~0.59 over the 16-byte/cycle ideal;
    - [HW k=16 = 8.62 x SW] gives the ARM reference ~4.4 cycles/flop,
      which independently lands HW k=1 at ~0.7 x SW — the paper's "30%
      slowdown" — an encouraging consistency check;
    - the HLS-friendly C variant runs ~1.25 x slower on the CPU (SW HLS
      Code bar of Figure 10). *)

val axi_efficiency : float
(** Sustained fraction of the ideal AXI throughput (DMA setup, read
    latency, non-streaming bursts). *)

val arm_cycles_per_flop : float
(** ARM Cortex-A53 running the factorized reference (scalar f64,
    dependent accumulations, cache misses included). *)

val hls_code_cpu_penalty : float
(** Slowdown of the HLS-tuned C code when executed on the CPU. *)

val controller_handshake_cycles : int
(** Start/done handshake per controller round beyond the kernel latency. *)
