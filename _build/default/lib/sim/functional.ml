exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let run ~(system : Sysgen.System.t) ~(proc : Loopir.Prog.proc) ~inputs ~n =
  let sol = system.Sysgen.System.solution in
  let k = sol.Sysgen.Replicate.k
  and m = sol.Sysgen.Replicate.m
  and batch = sol.Sysgen.Replicate.batch in
  let host = system.Sysgen.System.host in
  if n < 1 then errf "n must be positive";
  (* One memory (buffer table) per PLM set. *)
  let fresh_memory () =
    let mem = Hashtbl.create 8 in
    List.iter
      (fun (p : Loopir.Prog.param) ->
        Hashtbl.replace mem p.Loopir.Prog.name (Array.make p.Loopir.Prog.size 0.0))
      proc.Loopir.Prog.params;
    mem
  in
  let plm = Array.init m (fun _ -> fresh_memory ()) in
  let results = Array.make n [] in
  let blocks = (n + m - 1) / m in
  for block = 0 to blocks - 1 do
    (* Input DMA: m elements into their PLM sets (clamp to the last
       element for the padded tail of the final block). *)
    for slot = 0 to m - 1 do
      let e = min ((block * m) + slot) (n - 1) in
      let bindings = inputs e in
      List.iter
        (fun (tr : Sysgen.System.transfer) ->
          match List.assoc_opt tr.Sysgen.System.array bindings with
          | None -> errf "element %d: missing input %s" e tr.Sysgen.System.array
          | Some data ->
              let words = tr.Sysgen.System.bytes / 8 in
              if Array.length data <> words then
                errf "element %d: input %s has %d words, expected %d" e
                  tr.Sysgen.System.array (Array.length data) words;
              let buf =
                match Hashtbl.find_opt plm.(slot) tr.Sysgen.System.buffer with
                | Some b -> b
                | None -> errf "unknown PLM buffer %s" tr.Sysgen.System.buffer
              in
              Array.blit data 0 buf tr.Sysgen.System.offset words)
        host.Sysgen.System.per_element_in
    done;
    (* m/k controller rounds: accelerator i drives PLM set
       i*batch + round. *)
    for round = 0 to batch - 1 do
      for acc = 0 to k - 1 do
        let set = (acc * batch) + round in
        Loopir.Interp.run proc plm.(set)
      done
    done;
    (* Output DMA. *)
    for slot = 0 to m - 1 do
      let e = (block * m) + slot in
      if e < n then
        results.(e) <-
          List.map
            (fun (tr : Sysgen.System.transfer) ->
              let words = tr.Sysgen.System.bytes / 8 in
              let buf = Hashtbl.find plm.(slot) tr.Sysgen.System.buffer in
              (tr.Sysgen.System.array, Array.sub buf tr.Sysgen.System.offset words))
            host.Sysgen.System.per_element_out
    done
  done;
  results
