(** Functional simulation of the complete parallel system.

    Where {!Perf} models time, this module models {e data}: it executes
    the host main loop of Section V-B against real memories — per-element
    input DMA into the PLM sets, [m/k] controller rounds in which each of
    the [k] accelerator instances runs the generated kernel on the PLM set
    selected by the batch counter (Figure 7c), and output DMA back — using
    the loop-IR interpreter as each accelerator's datapath.

    This validates the pieces no per-kernel test can: the host transfer
    list, the storage offsets into shared PLM buffers, and the
    accelerator-to-PLM steering across rounds. *)

exception Error of string

val run :
  system:Sysgen.System.t ->
  proc:Loopir.Prog.proc ->
  inputs:(int -> (string * float array) list) ->
  n:int ->
  (string * float array) list array
(** [run ~system ~proc ~inputs ~n] processes elements [0 .. n-1];
    [inputs e] supplies each {e logical} input array (by its tensor name,
    dense row-major) for element [e]. Returns per-element bindings of the
    logical output arrays. [n] need not be a multiple of [m]; the last
    block is padded with repeats of the final element (their results are
    discarded), mirroring the host code's full-block transfers.
    @raise Error on missing inputs or size mismatches. *)
