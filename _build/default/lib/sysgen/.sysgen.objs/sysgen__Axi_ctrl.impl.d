lib/sysgen/axi_ctrl.ml: Array Fun
