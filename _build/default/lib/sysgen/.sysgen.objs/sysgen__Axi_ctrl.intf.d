lib/sysgen/axi_ctrl.mli:
