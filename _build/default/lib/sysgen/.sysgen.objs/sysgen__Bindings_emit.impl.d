lib/sysgen/bindings_emit.ml: Buffer List Printf String System
