lib/sysgen/bindings_emit.mli: System
