lib/sysgen/hdl_emit.ml: Buffer List Mnemosyne Printf Replicate System
