lib/sysgen/hdl_emit.mli: System
