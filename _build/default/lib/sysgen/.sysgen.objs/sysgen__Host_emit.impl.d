lib/sysgen/host_emit.ml: Buffer List Mnemosyne Printf Replicate String System
