lib/sysgen/host_emit.mli: System
