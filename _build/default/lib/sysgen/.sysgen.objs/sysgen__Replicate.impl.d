lib/sysgen/replicate.ml: Format Fpga_platform
