lib/sysgen/replicate.mli: Format Fpga_platform
