lib/sysgen/system.ml: Format Fpga_platform Hls List Lower Mnemosyne Printf Replicate String
