lib/sysgen/system.mli: Format Fpga_platform Hls Lower Mnemosyne Replicate
