(** Cycle-level model of the AXI-lite control peripheral (Section V-B).

    The host sees a single HLS-style control interface (ap_start /
    ap_done / ap_idle / ap_ready registers). The peripheral broadcasts the
    start command to all [k] accelerators once every one of them is ready,
    collects their done pulses, increments the batch counter (up to
    [m/k]), and raises the interrupt line back to the CPU when the round
    completes. The batch counter output steers the accelerator-to-PLM
    connections (Figure 7c). *)

type t

type outputs = {
  ap_start_broadcast : bool;  (** asserted for one step when firing *)
  irq : bool;  (** asserted when a round completes *)
  batch_index : int;  (** current batch, 0 .. batch-1 *)
}

exception Protocol_error of string

val create : k:int -> batch:int -> t
(** @raise Protocol_error if [k < 1] or [batch < 1]. *)

val k : t -> int
val batch : t -> int

val write_start : t -> unit
(** Host writes the start command register.
    @raise Protocol_error if a round is already in flight. *)

val step : t -> ready:bool array -> done_:bool array -> outputs
(** Advance one cycle given the accelerators' status lines. Arrays must
    have length [k]. The peripheral latches start until all accelerators
    are ready, then broadcasts; it then waits until all accelerators have
    signalled done (dones may arrive in any order, across any number of
    steps) and raises [irq]. After [irq], the batch counter has advanced;
    when it wraps to 0 the whole m-block is complete. *)

val busy : t -> bool

val run_round : t -> latencies:int array -> int
(** Convenience for performance simulation: fire one round where
    accelerator [i] takes [latencies.(i)] cycles, stepping the FSM until
    the interrupt; returns the cycle count (handshake included). *)
