let interface_arrays (system : System.t) =
  let host = system.System.host in
  List.map
    (fun (tr : System.transfer) -> (tr.System.array, tr.System.bytes / 8, true))
    host.System.per_element_in
  @ List.map
      (fun (tr : System.transfer) -> (tr.System.array, tr.System.bytes / 8, false))
      host.System.per_element_out

let cpp_header ~kernel_name system =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let args = interface_arrays system in
  p "// C++ handle for the %s accelerator system (Section III-B).\n" kernel_name;
  p "#pragma once\n#include <cstddef>\n\nextern \"C\" {\n";
  p "int %s_run(%s, std::size_t n_elements);\n}\n\n" kernel_name
    (String.concat ", "
       (List.map
          (fun (name, _, is_in) ->
            if is_in then "const double *" ^ name else "double *" ^ name)
          args));
  p "namespace cfdlang {\n\n";
  p "// Per-element word counts:\n";
  List.iter
    (fun (name, words, is_in) ->
      p "//   %s : %d doubles (%s)\n" name words (if is_in then "in" else "out"))
    args;
  p "inline int %s(%s, std::size_t n_elements) {\n" kernel_name
    (String.concat ", "
       (List.map
          (fun (name, _, is_in) ->
            if is_in then "const double *" ^ name else "double *" ^ name)
          args));
  p "  return ::%s_run(%s, n_elements);\n}\n\n" kernel_name
    (String.concat ", " (List.map (fun (n, _, _) -> n) args));
  p "} // namespace cfdlang\n";
  Buffer.contents buf

let fortran_module ~kernel_name system =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let args = interface_arrays system in
  p "! Fortran interface for the %s accelerator system (Section III-B).\n"
    kernel_name;
  p "module %s_accel\n" kernel_name;
  p "  use iso_c_binding\n  implicit none\n\n";
  p "  interface\n";
  p "    integer(c_int) function %s_run(%s, n_elements) bind(c, name=\"%s_run\")\n"
    kernel_name
    (String.concat ", " (List.map (fun (n, _, _) -> n) args))
    kernel_name;
  p "      use iso_c_binding\n";
  List.iter
    (fun (name, words, is_in) ->
      p "      real(c_double), intent(%s) :: %s(%d, *)\n"
        (if is_in then "in" else "out")
        name words)
    args;
  p "      integer(c_size_t), value :: n_elements\n";
  p "    end function %s_run\n" kernel_name;
  p "  end interface\n";
  p "end module %s_accel\n" kernel_name;
  Buffer.contents buf
