(** Application-language bindings (Section III-B: "seamless integration of
    the CFDlang in Fortran or C++ code ... called via a predefined
    function handle from the surrounding application"). *)

val cpp_header : kernel_name:string -> System.t -> string
(** A C++ wrapper around the C run handle: RAII-ish free function in a
    namespace, with size documentation per tensor. *)

val fortran_module : kernel_name:string -> System.t -> string
(** A Fortran 2003 [iso_c_binding] interface module exposing the same
    handle to Fortran solvers (the paper's primary host language). *)
