let controller_verilog ~k ~batch =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "// AXI-lite control peripheral: single host-facing ap_ctrl interface\n";
  p "// driving %d accelerators with a batch counter of depth %d.\n" k batch;
  p "// FSM semantics match the cycle model in lib/sysgen/axi_ctrl.ml.\n";
  p "module axi_lite_peripheral #(\n";
  p "  parameter K = %d,\n  parameter BATCH = %d\n) (\n" k batch;
  p "  input  wire            clk,\n";
  p "  input  wire            rst_n,\n";
  p "  // AXI-lite write channel (start command register)\n";
  p "  input  wire            s_axi_awvalid,\n";
  p "  input  wire [11:0]     s_axi_awaddr,\n";
  p "  input  wire            s_axi_wvalid,\n";
  p "  input  wire [31:0]     s_axi_wdata,\n";
  p "  output reg             s_axi_bvalid,\n";
  p "  // accelerator control (HLS ap_ctrl)\n";
  p "  output reg  [K-1:0]    ap_start,\n";
  p "  input  wire [K-1:0]    ap_done,\n";
  p "  input  wire [K-1:0]    ap_idle,\n";
  p "  input  wire [K-1:0]    ap_ready,\n";
  p "  // memory steering + host\n";
  p "  output reg  [$clog2(BATCH > 1 ? BATCH : 2)-1:0] batch_index,\n";
  p "  output reg             irq\n";
  p ");\n\n";
  p "  localparam S_IDLE    = 2'd0;\n";
  p "  localparam S_PENDING = 2'd1;\n";
  p "  localparam S_RUNNING = 2'd2;\n\n";
  p "  reg [1:0]   state;\n";
  p "  reg [K-1:0] done_seen;\n\n";
  p "  wire start_write = s_axi_awvalid && s_axi_wvalid && (s_axi_awaddr == 12'h000);\n";
  p "  wire all_ready   = &ap_ready;\n";
  p "  wire all_done    = &(done_seen | ap_done);\n\n";
  p "  always @(posedge clk or negedge rst_n) begin\n";
  p "    if (!rst_n) begin\n";
  p "      state       <= S_IDLE;\n";
  p "      ap_start    <= {K{1'b0}};\n";
  p "      done_seen   <= {K{1'b0}};\n";
  p "      batch_index <= 0;\n";
  p "      irq         <= 1'b0;\n";
  p "      s_axi_bvalid<= 1'b0;\n";
  p "    end else begin\n";
  p "      irq      <= 1'b0;\n";
  p "      ap_start <= {K{1'b0}};\n";
  p "      s_axi_bvalid <= start_write;\n";
  p "      case (state)\n";
  p "        S_IDLE: if (start_write) state <= S_PENDING;\n";
  p "        S_PENDING: if (all_ready) begin\n";
  p "          ap_start  <= {K{1'b1}}; // broadcast (Section V-B)\n";
  p "          done_seen <= {K{1'b0}};\n";
  p "          state     <= S_RUNNING;\n";
  p "        end\n";
  p "        S_RUNNING: begin\n";
  p "          done_seen <= done_seen | ap_done;\n";
  p "          if (all_done) begin\n";
  p "            irq         <= 1'b1;\n";
  p "            batch_index <= (batch_index == BATCH - 1) ? 0 : batch_index + 1;\n";
  p "            state       <= S_IDLE;\n";
  p "          end\n";
  p "        end\n";
  p "        default: state <= S_IDLE;\n";
  p "      endcase\n";
  p "    end\n";
  p "  end\n\n";
  p "endmodule\n";
  Buffer.contents buf

let top_verilog ~kernel_name (system : System.t) =
  let sol = system.System.solution in
  let k = sol.Replicate.k
  and m = sol.Replicate.m
  and batch = sol.Replicate.batch in
  let units = system.System.memory.Mnemosyne.Memgen.units in
  let buf = Buffer.create 8192 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "// Structural top level: %d x %s + %d PLM sets (batch %d)\n" k kernel_name
    m batch;
  p "// Generated from the Equation-(3) solution; see the address map in\n";
  p "// the host driver for the AXI view of the same structure.\n";
  p "module %s_system (\n" kernel_name;
  p "  input  wire clk,\n  input  wire rst_n,\n";
  p "  // AXI-lite slave (control) and AXI master (DMA) left to the\n";
  p "  // platform integration wrapper\n";
  p "  input  wire        s_axi_awvalid,\n";
  p "  input  wire [11:0] s_axi_awaddr,\n";
  p "  input  wire        s_axi_wvalid,\n";
  p "  input  wire [31:0] s_axi_wdata,\n";
  p "  output wire        s_axi_bvalid,\n";
  p "  output wire        irq\n";
  p ");\n\n";
  p "  wire [%d:0] ap_start, ap_done, ap_idle, ap_ready;\n" (k - 1);
  p "  wire [$clog2(%d)-1:0] batch_index;\n\n" (max batch 2);
  p "  axi_lite_peripheral #(.K(%d), .BATCH(%d)) ctrl (\n" k batch;
  p "    .clk(clk), .rst_n(rst_n),\n";
  p "    .s_axi_awvalid(s_axi_awvalid), .s_axi_awaddr(s_axi_awaddr),\n";
  p "    .s_axi_wvalid(s_axi_wvalid), .s_axi_wdata(s_axi_wdata),\n";
  p "    .s_axi_bvalid(s_axi_bvalid),\n";
  p "    .ap_start(ap_start), .ap_done(ap_done),\n";
  p "    .ap_idle(ap_idle), .ap_ready(ap_ready),\n";
  p "    .batch_index(batch_index), .irq(irq)\n  );\n\n";
  (* PLM sets *)
  for s = 0 to m - 1 do
    List.iter
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        p "  // PLM set %d, unit %s: %d x 64b words on %d BRAM18 (x%d banks)\n"
          s u.Mnemosyne.Memgen.unit_name u.Mnemosyne.Memgen.unit_words
          u.Mnemosyne.Memgen.brams u.Mnemosyne.Memgen.copies;
        p "  plm_%s plm_set%d_%s (.clk(clk));\n" u.Mnemosyne.Memgen.unit_name s
          u.Mnemosyne.Memgen.unit_name)
      units
  done;
  p "\n";
  (* Accelerators with steering *)
  for i = 0 to k - 1 do
    p "  // ACC_%d serves PLM sets %d..%d, selected by batch_index (Fig. 7c)\n"
      i (i * batch)
      (((i + 1) * batch) - 1);
    p "  %s acc%d (\n" kernel_name i;
    p "    .ap_clk(clk), .ap_rst_n(rst_n),\n";
    p "    .ap_start(ap_start[%d]), .ap_done(ap_done[%d]),\n" i i;
    p "    .ap_idle(ap_idle[%d]), .ap_ready(ap_ready[%d])\n" i i;
    p "    // memory ports muxed to plm_set[%d * %d + batch_index]\n" i batch;
    p "  );\n\n"
  done;
  p "endmodule\n";
  Buffer.contents buf
