(** HDL emission: the "artifacts for interfacing with bitstream
    generation" of Section III-B.

    Generates synthesizable Verilog for the parts of the system the flow
    itself owns — the AXI-lite control peripheral (start broadcast, done
    collection, batch counter; the FSM modelled cycle-accurately by
    {!Axi_ctrl}) and the top-level structural module instantiating the
    [k] HLS kernels, [m] PLM subsystems and the round-based steering of
    Figure 7 — leaving the kernel RTL to the HLS tool and the PLM bank
    RTL to Mnemosyne, exactly as the paper's flow does. *)

val controller_verilog : k:int -> batch:int -> string
(** The AXI-lite peripheral, parameterized in the number of accelerators
    and the batch depth. *)

val top_verilog : kernel_name:string -> System.t -> string
(** Structural top level: kernel and PLM instances, steering multiplexers
    driven by the controller's batch counter, AXI interconnect ports. *)
