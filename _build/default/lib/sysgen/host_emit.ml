let transfer_args (system : System.t) =
  let host = system.System.host in
  let ins =
    List.map
      (fun (tr : System.transfer) ->
        (tr.System.array, tr.System.bytes / 8, true))
      host.System.per_element_in
  in
  let outs =
    List.map
      (fun (tr : System.transfer) ->
        (tr.System.array, tr.System.bytes / 8, false))
      host.System.per_element_out
  in
  ins @ outs

let prototype ~kernel_name system =
  let args =
    List.map
      (fun (name, _, is_in) ->
        if is_in then Printf.sprintf "const double *%s" name
        else Printf.sprintf "double *%s" name)
      (transfer_args system)
  in
  Printf.sprintf "int %s_run(%s, size_t n_elements)" kernel_name
    (String.concat ", " args)

let c_header ~kernel_name system =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "/* Host interface for the generated %s accelerator system.\n" kernel_name;
  p " * Arrays are dense row-major, one element (k = %d, m = %d system)\n"
    system.System.solution.Replicate.k system.System.solution.Replicate.m;
  p " * after another: pointer + e * <element words>.\n */\n";
  p "#ifndef %s_HOST_H\n#define %s_HOST_H\n\n" (String.uppercase_ascii kernel_name)
    (String.uppercase_ascii kernel_name);
  p "#include <stddef.h>\n\n";
  List.iter
    (fun (name, words, is_in) ->
      p "/* %s: %d doubles per element (%s) */\n" name words
        (if is_in then "input" else "output"))
    (transfer_args system);
  p "\n%s;\n\n#endif\n" (prototype ~kernel_name system);
  Buffer.contents buf

let c_host_source ~kernel_name (system : System.t) =
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sol = system.System.solution in
  let host = system.System.host in
  let k = sol.Replicate.k and m = sol.Replicate.m in
  p "/* Generated host driver for %s: %d accelerators, %d PLM sets. */\n"
    kernel_name k m;
  p "#include <stddef.h>\n#include <stdint.h>\n#include <string.h>\n\n";
  p "/* Address map (AXI, byte addresses) */\n";
  List.iter
    (fun (region, base, size) ->
      p "#define %s_BASE 0x%08xUL /* %d bytes */\n"
        (String.uppercase_ascii region) base size)
    system.System.address_map;
  p "\n/* Control registers of the AXI-lite peripheral (Section V-B) */\n";
  p "#define CTRL_REG_START  0x00\n";
  p "#define CTRL_REG_STATUS 0x04 /* bit0: done/irq, bit1: idle */\n";
  p "#define CTRL_REG_BATCH  0x08\n\n";
  p "/* Byte offsets of the PLM unit buffers inside each PLM-set region */\n";
  let unit_offsets =
    let off = ref 0 in
    List.map
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        let base = !off in
        off := !off + (8 * u.Mnemosyne.Memgen.unit_words);
        (u.Mnemosyne.Memgen.unit_name, base))
      system.System.memory.Mnemosyne.Memgen.units
  in
  List.iter
    (fun (name, base) ->
      p "#define BUF_%s_OFF %d\n" (String.uppercase_ascii name) base)
    unit_offsets;
  p "\nextern volatile uint8_t *fpga_mmio; /* mapped by the platform layer */\n\n";
  p "static void write_reg(size_t addr, uint32_t v) {\n";
  p "  *(volatile uint32_t *)(fpga_mmio + addr) = v;\n}\n\n";
  p "static uint32_t read_reg(size_t addr) {\n";
  p "  return *(volatile uint32_t *)(fpga_mmio + addr);\n}\n\n";
  p "static void wait_done(void) {\n";
  p "  while ((read_reg(AXI_CTRL_BASE + CTRL_REG_STATUS) & 1u) == 0u) { /* irq poll */ }\n}\n\n";
  p "%s {\n" (prototype ~kernel_name system);
  p "  size_t blocks = (n_elements + %d - 1) / %d;\n" m m;
  p "  for (size_t b = 0; b < blocks; ++b) {\n";
  p "    /* input transfers: m elements into power-of-two aligned PLM regions */\n";
  p "    for (int s = 0; s < %d; ++s) {\n" m;
  p "      size_t e = b * %d + (size_t)s;\n" m;
  p "      if (e >= n_elements) e = n_elements - 1;\n";
  p "      volatile uint8_t *plm = fpga_mmio + PLM_SET0_BASE * (size_t)(s + 1);\n";
  List.iter
    (fun (tr : System.transfer) ->
      p "      memcpy((void *)(plm + BUF_%s_OFF + %d /* %s at +%d words */), %s + e * %d, %d);\n"
        (String.uppercase_ascii tr.System.buffer)
        (8 * tr.System.offset) tr.System.buffer tr.System.offset tr.System.array
        (tr.System.bytes / 8) tr.System.bytes)
    host.System.per_element_in;
  p "    }\n";
  p "    /* %d round(s): start all %d accelerators, wait for the interrupt */\n"
    host.System.rounds_per_block k;
  p "    for (int round = 0; round < %d; ++round) {\n" host.System.rounds_per_block;
  p "      write_reg(AXI_CTRL_BASE + CTRL_REG_START, 1u);\n";
  p "      wait_done();\n";
  p "    }\n";
  p "    /* output transfers */\n";
  p "    for (int s = 0; s < %d; ++s) {\n" m;
  p "      size_t e = b * %d + (size_t)s;\n" m;
  p "      if (e >= n_elements) continue;\n";
  p "      volatile uint8_t *plm = fpga_mmio + PLM_SET0_BASE * (size_t)(s + 1);\n";
  List.iter
    (fun (tr : System.transfer) ->
      p "      memcpy(%s + e * %d, (const void *)(plm + BUF_%s_OFF + %d /* %s */), %d);\n"
        tr.System.array (tr.System.bytes / 8)
        (String.uppercase_ascii tr.System.buffer)
        (8 * tr.System.offset) tr.System.buffer tr.System.bytes)
    host.System.per_element_out;
  p "    }\n";
  p "  }\n";
  p "  return 0;\n}\n";
  Buffer.contents buf
