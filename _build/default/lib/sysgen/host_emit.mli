(** Host-software generation (Section V-B: "the corresponding software
    host code to control the accelerators").

    Emits a self-contained C driver for the generated system: memory-mapped
    access to the AXI-lite control peripheral and the PLM address map, the
    main loop over [N_e / m] blocks with per-element input/output transfers
    at the storage offsets Mnemosyne assigned, and the [m/k]-round
    start/interrupt protocol. The entry point has the "predefined function
    handle" signature that the Fortran/C++ bindings of
    {!Bindings_emit} re-export. *)

val c_host_source : kernel_name:string -> System.t -> string
(** The driver translation unit. *)

val c_header : kernel_name:string -> System.t -> string
(** Public header declaring the run handle:
    [int <kernel>_run(const double *in..., double *out..., size_t n);]
    with one pointer per logical interface tensor, in declaration order. *)
