type config = {
  board : Fpga_platform.Board.t;
  interface_reserve : Fpga_platform.Resource.t;
  glue_per_kernel : Fpga_platform.Resource.t;
}

(* Fitted to Table I (see EXPERIMENTS.md): total LUT ~= 6896 + 4396 m with
   a 2314-LUT kernel leaves 2082 LUT of steering/integration glue per
   instance; FF ~= 6498 + 3035 m leaves 36 FF; the interface reserve
   includes the DMA buffering that caps the no-sharing design at m = 8. *)
let default_config =
  {
    board = Fpga_platform.Board.zcu106;
    interface_reserve =
      Fpga_platform.Resource.make ~lut:6896 ~ff:6498 ~dsp:0 ~bram18:132;
    glue_per_kernel = Fpga_platform.Resource.make ~lut:2082 ~ff:36 ~dsp:0 ~bram18:0;
  }

type solution = {
  k : int;
  m : int;
  batch : int;
  used : Fpga_platform.Resource.t;
  available : Fpga_platform.Resource.t;
  reserve : Fpga_platform.Resource.t;
}

exception Infeasible of string

let infeasible fmt = Format.kasprintf (fun s -> raise (Infeasible s)) fmt

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let usage config ~kernel ~plm_brams ~k ~m =
  let h = Fpga_platform.Resource.add kernel config.glue_per_kernel in
  let mem = Fpga_platform.Resource.make ~lut:0 ~ff:0 ~dsp:0 ~bram18:plm_brams in
  Fpga_platform.Resource.add
    (Fpga_platform.Resource.scale k h)
    (Fpga_platform.Resource.scale m mem)

let available config =
  Fpga_platform.Resource.sub config.board.Fpga_platform.Board.capacity
    config.interface_reserve

let feasible config ~kernel ~plm_brams ~k ~m =
  Fpga_platform.Resource.fits
    (usage config ~kernel ~plm_brams ~k ~m)
    ~within:(available config)

let solve ?(config = default_config) ~kernel ~plm_brams ?force_k ?force_m () =
  let avail = available config in
  let mk k m =
    if m < k then infeasible "m = %d < k = %d" m k;
    if m mod k <> 0 || not (is_power_of_two (m / k)) then
      infeasible "m = %d is not a power-of-two multiple of k = %d" m k;
    if not (feasible config ~kernel ~plm_brams ~k ~m) then
      infeasible "k = %d, m = %d exceeds the available resources" k m;
    {
      k;
      m;
      batch = m / k;
      used =
        Fpga_platform.Resource.add
          (usage config ~kernel ~plm_brams ~k ~m)
          config.interface_reserve;
      available = avail;
      reserve = config.interface_reserve;
    }
  in
  match (force_k, force_m) with
  | Some k, Some m -> mk k m
  | Some k, None -> mk k k
  | None, Some m -> mk m m
  | None, None ->
      let rec grow m =
        if feasible config ~kernel ~plm_brams ~k:(2 * m) ~m:(2 * m) then grow (2 * m)
        else m
      in
      if not (feasible config ~kernel ~plm_brams ~k:1 ~m:1) then
        infeasible "even a single kernel does not fit"
      else mk (grow 1) (grow 1)

let max_m ?(config = default_config) ~kernel ~plm_brams () =
  if not (feasible config ~kernel ~plm_brams ~k:1 ~m:1) then 0
  else begin
    let rec grow m =
      if feasible config ~kernel ~plm_brams ~k:(2 * m) ~m:(2 * m) then grow (2 * m)
      else m
    in
    grow 1
  end

let pp_solution ppf s =
  Format.fprintf ppf "k = %d accelerators, m = %d PLMs (batch %d); used %a"
    s.k s.m s.batch Fpga_platform.Resource.pp s.used
