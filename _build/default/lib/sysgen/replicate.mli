(** The replica solver of Equation (3) (Section V-B):

    [H * k + M * m <= A],  with [m >= k] and [m] a power-of-two multiple
    of [k], where [H] is one accelerator (kernel + integration glue), [M]
    one PLM instance, and [A] the board capacity minus the
    pre-characterized interface reserve. *)

type config = {
  board : Fpga_platform.Board.t;
  interface_reserve : Fpga_platform.Resource.t;
      (** AXI controllers, DMA, interconnect — reserved before solving *)
  glue_per_kernel : Fpga_platform.Resource.t;
      (** integration logic per accelerator instance (start/done tree,
          memory steering) *)
}

val default_config : config
(** ZCU106 with the calibrated reserve (BRAM-heavy: DMA buffers) and
    per-kernel glue fitted to Table I (see EXPERIMENTS.md). *)

type solution = {
  k : int;  (** accelerator instances *)
  m : int;  (** PLM instances *)
  batch : int;  (** m / k *)
  used : Fpga_platform.Resource.t;  (** total incl. reserve *)
  available : Fpga_platform.Resource.t;  (** A of Equation (3) *)
  reserve : Fpga_platform.Resource.t;  (** the pre-characterized interface share *)
}

exception Infeasible of string

val solve :
  ?config:config ->
  kernel:Fpga_platform.Resource.t ->
  plm_brams:int ->
  ?force_k:int ->
  ?force_m:int ->
  unit ->
  solution
(** Maximizes [m = k] as a power of two unless [force_k]/[force_m] pin the
    shape. @raise Infeasible when even k = m = 1 does not fit or the
    forced shape violates Equation (3) or the power-of-two constraint. *)

val max_m : ?config:config -> kernel:Fpga_platform.Resource.t -> plm_brams:int -> unit -> int
(** Largest feasible power-of-two [m = k]; 0 when infeasible. *)

val pp_solution : Format.formatter -> solution -> unit
