type instance = {
  inst_name : string;
  module_name : string;
  connects_to : string list;
}

type transfer = { array : string; buffer : string; offset : int; bytes : int }

type host_program = {
  n_elements : int;
  block_iterations : int;
  rounds_per_block : int;
  per_element_in : transfer list;
  per_element_out : transfer list;
  bytes_in_per_element : int;
  bytes_out_per_element : int;
}

type t = {
  solution : Replicate.solution;
  kernel : Hls.Model.report;
  memory : Mnemosyne.Memgen.architecture;
  instances : instance list;
  address_map : (string * int * int) list;
  total_resources : Fpga_platform.Resource.t;
  host : host_program;
}

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let build ?config ?force_k ?force_m ~kernel ~memory ~program ~n_elements () =
  let solution =
    Replicate.solve ?config
      ~kernel:kernel.Hls.Model.resources
      ~plm_brams:memory.Mnemosyne.Memgen.total_brams ?force_k ?force_m ()
  in
  let k = solution.Replicate.k and m = solution.Replicate.m in
  (* Instances: k accelerators, m PLM sets, controller, DMA engine. *)
  let plm_sets = List.init m (Printf.sprintf "plm_set%d") in
  let batch = solution.Replicate.batch in
  let accs =
    List.init k (fun i ->
        let connected =
          (* ACC_i serves the contiguous block PLM_{i*batch} ..
             PLM_{(i+1)*batch - 1}; round r selects PLM_{i*batch + r}
             (Figure 7c: with k=2, m=4, ACC_0 accesses PLM_0 then PLM_1,
             ACC_1 accesses PLM_2 then PLM_3). *)
          List.filteri (fun j _ -> j / batch = i) plm_sets
        in
        {
          inst_name = Printf.sprintf "acc%d" i;
          module_name = kernel.Hls.Model.kernel_name;
          connects_to = connected;
        })
  in
  let plms =
    List.map
      (fun name ->
        { inst_name = name; module_name = "plm_subsystem"; connects_to = [] })
      plm_sets
  in
  let ctrl =
    {
      inst_name = "axi_ctrl";
      module_name = "axi_lite_peripheral";
      connects_to = List.map (fun a -> a.inst_name) accs;
    }
  in
  let dma =
    { inst_name = "dma"; module_name = "axi_dma"; connects_to = plm_sets }
  in
  (* Address map: each PLM set occupies a power-of-two aligned region
     large enough for all its units (Section V-B alignment rule). *)
  let plm_bytes =
    List.fold_left
      (fun acc (u : Mnemosyne.Memgen.plm_unit) -> acc + (8 * u.Mnemosyne.Memgen.unit_words))
      0 memory.Mnemosyne.Memgen.units
  in
  let region = next_pow2 (max plm_bytes 4096) in
  let address_map =
    ("axi_ctrl", 0, 4096)
    :: List.mapi (fun i name -> (name, region * (i + 1), region)) plm_sets
  in
  (* Host transfers: inputs land in their storage buffer at their offset;
     outputs come back from theirs. *)
  let storage = memory.Mnemosyne.Memgen.storage in
  let lookup a =
    match List.assoc_opt a storage with
    | Some (buffer, offset) -> (buffer, offset)
    | None -> errf "array %s has no storage assignment" a
  in
  let transfers kind =
    List.filter_map
      (fun (a : Lower.Flow.array_info) ->
        if a.Lower.Flow.kind = kind then begin
          let buffer, offset = lookup a.Lower.Flow.array_name in
          Some
            {
              array = a.Lower.Flow.array_name;
              buffer;
              offset;
              bytes = 8 * a.Lower.Flow.size;
            }
        end
        else None)
      program.Lower.Flow.arrays
  in
  let per_element_in = transfers Lower.Flow.Input in
  let per_element_out = transfers Lower.Flow.Output in
  let host =
    {
      n_elements;
      block_iterations = (n_elements + m - 1) / m;
      rounds_per_block = solution.Replicate.batch;
      per_element_in;
      per_element_out;
      bytes_in_per_element =
        List.fold_left (fun acc tr -> acc + tr.bytes) 0 per_element_in;
      bytes_out_per_element =
        List.fold_left (fun acc tr -> acc + tr.bytes) 0 per_element_out;
    }
  in
  {
    solution;
    kernel;
    memory;
    instances = (ctrl :: dma :: accs) @ plms;
    address_map;
    total_resources = solution.Replicate.used;
    host;
  }

let validate t =
  let k = t.solution.Replicate.k and m = t.solution.Replicate.m in
  let accs =
    List.filter (fun i -> i.module_name = t.kernel.Hls.Model.kernel_name) t.instances
  in
  if List.length accs <> k then errf "expected %d accelerator instances" k;
  List.iter
    (fun a ->
      if List.length a.connects_to <> t.solution.Replicate.batch then
        errf "%s connects to %d PLM sets, expected batch = %d" a.inst_name
          (List.length a.connects_to)
          t.solution.Replicate.batch)
    accs;
  (* every PLM set is served by exactly one accelerator *)
  let served = List.concat_map (fun a -> a.connects_to) accs in
  if List.length served <> m then errf "PLM coverage mismatch";
  if List.length (List.sort_uniq compare served) <> m then
    errf "a PLM set is served by two accelerators";
  (* address regions do not overlap *)
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) t.address_map
  in
  let rec check = function
    | (n1, b1, s1) :: ((n2, b2, _) :: _ as rest) ->
        if b1 + s1 > b2 then errf "regions %s and %s overlap" n1 n2;
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  (* transfers reference existing buffers *)
  let buffer_names =
    List.map (fun (u : Mnemosyne.Memgen.plm_unit) -> u.Mnemosyne.Memgen.unit_name)
      t.memory.Mnemosyne.Memgen.units
  in
  List.iter
    (fun tr ->
      if not (List.mem tr.buffer buffer_names) then
        errf "transfer of %s targets unknown buffer %s" tr.array tr.buffer)
    (t.host.per_element_in @ t.host.per_element_out);
  (* Equation (3): usage without the reserve fits the available budget
     (the solver guarantees this; re-check the invariant). *)
  if
    not
      (Fpga_platform.Resource.fits
         (Fpga_platform.Resource.sub t.solution.Replicate.used
            t.solution.Replicate.reserve)
         ~within:t.solution.Replicate.available)
  then errf "Equation (3) violated"

let pp ppf t =
  Format.fprintf ppf "@[<v>system: %a@ " Replicate.pp_solution t.solution;
  Format.fprintf ppf "memory: %d BRAM18 per PLM set@ "
    t.memory.Mnemosyne.Memgen.total_brams;
  Format.fprintf ppf "host: %d elements, %d block iterations x %d rounds@ "
    t.host.n_elements t.host.block_iterations t.host.rounds_per_block;
  Format.fprintf ppf "instances:@ ";
  List.iter
    (fun i ->
      Format.fprintf ppf "  %s : %s%s@ " i.inst_name i.module_name
        (if i.connects_to = [] then ""
         else " -> " ^ String.concat ", " i.connects_to))
    t.instances;
  Format.fprintf ppf "address map:@ ";
  List.iter
    (fun (n, base, size) ->
      Format.fprintf ppf "  %s : 0x%08x + 0x%x@ " n base size)
    t.address_map;
  Format.fprintf ppf "@]"
