(** The system generator (Section V-B): assembles accelerator instances,
    PLM instances, the AXI-lite control peripheral and the steering logic
    into a synthesizable system description, together with the host
    program that drives it.

    This is the in-house tool of Section VI: it reads the kernel and
    memory interfaces plus the board information and produces (1) the
    accelerator instances, (2) the data steering between host and PLMs,
    and (3) the system description and matching host code. *)

type instance = {
  inst_name : string;
  module_name : string;
  connects_to : string list;
}

type transfer = { array : string; buffer : string; offset : int; bytes : int }

type host_program = {
  n_elements : int;
  block_iterations : int;  (** N_e / m main-loop iterations *)
  rounds_per_block : int;  (** m / k *)
  per_element_in : transfer list;  (** input transfers per element *)
  per_element_out : transfer list;
  bytes_in_per_element : int;
  bytes_out_per_element : int;
}

type t = {
  solution : Replicate.solution;
  kernel : Hls.Model.report;
  memory : Mnemosyne.Memgen.architecture;
  instances : instance list;
  address_map : (string * int * int) list;  (** (region, base, bytes) *)
  total_resources : Fpga_platform.Resource.t;
  host : host_program;
}

exception Error of string

val build :
  ?config:Replicate.config ->
  ?force_k:int ->
  ?force_m:int ->
  kernel:Hls.Model.report ->
  memory:Mnemosyne.Memgen.architecture ->
  program:Lower.Flow.program ->
  n_elements:int ->
  unit ->
  t
(** Solves Equation (3) (or uses the forced shape), instantiates
    [k] accelerators + [m] PLM sets + controller + DMA, computes the AXI
    address map (power-of-two aligned per-element regions, Section V-B),
    and derives the host transfer list from the program's input/output
    arrays and the memory architecture's storage map. *)

val validate : t -> unit
(** Structural checks: every accelerator connects to [batch] PLM sets,
    PLM regions do not overlap in the address map, transfers reference
    existing buffers, and Equation (3) holds. @raise Error otherwise. *)

val pp : Format.formatter -> t -> unit
