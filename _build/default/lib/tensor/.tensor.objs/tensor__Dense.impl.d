lib/tensor/dense.ml: Array Float Format Printf Random Shape
