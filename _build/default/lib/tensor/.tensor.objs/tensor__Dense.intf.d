lib/tensor/dense.mli: Format Shape
