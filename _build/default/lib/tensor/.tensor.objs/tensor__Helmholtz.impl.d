lib/tensor/helmholtz.ml: Dense Ops Shape
