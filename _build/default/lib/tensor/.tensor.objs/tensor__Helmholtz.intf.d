lib/tensor/helmholtz.mli: Dense
