lib/tensor/ops.ml: Array Dense Format Fun List Shape String
