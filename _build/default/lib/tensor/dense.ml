type t = { shape : Shape.t; data : float array }

let create shape = { shape; data = Array.make (Shape.num_elements shape) 0. }

let init shape f =
  let t = create shape in
  Shape.iter shape (fun idx ->
      t.data.(Shape.linearize shape idx) <- f idx);
  t

let of_array shape data =
  if Array.length data <> Shape.num_elements shape then
    raise
      (Shape.Invalid
         (Printf.sprintf "of_array: payload size %d does not match shape %s"
            (Array.length data) (Shape.to_string shape)));
  { shape; data = Array.copy data }

let scalar v = of_array Shape.scalar [| v |]
let shape t = t.shape
let get t idx = t.data.(Shape.linearize t.shape idx)
let set t idx v = t.data.(Shape.linearize t.shape idx) <- v
let get_flat t off = t.data.(off)
let set_flat t off v = t.data.(off) <- v
let to_array t = Array.copy t.data
let copy t = { t with data = Array.copy t.data }
let fill t v = Array.fill t.data 0 (Array.length t.data) v
let map f t = { t with data = Array.map f t.data }

let check_same_shape ctx a b =
  if not (Shape.equal a.shape b.shape) then
    raise
      (Shape.Invalid
         (Printf.sprintf "%s: shape mismatch %s vs %s" ctx
            (Shape.to_string a.shape)
            (Shape.to_string b.shape)))

let map2 f a b =
  check_same_shape "map2" a b;
  { a with data = Array.map2 f a.data b.data }

let fold t ~init ~f = Array.fold_left f init t.data

let random ?(seed = 0) shape =
  let state = Random.State.make [| seed; Shape.num_elements shape |] in
  let t = create shape in
  Array.iteri
    (fun i _ -> t.data.(i) <- Random.State.float state 2.0 -. 1.0)
    t.data;
  t

let identity n =
  init (Shape.create [ n; n ]) (function
    | [ i; j ] -> if i = j then 1.0 else 0.0
    | _ -> assert false)

let max_abs_diff a b =
  check_same_shape "max_abs_diff" a b;
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. b.data.(i)) in
      if d > !worst then worst := d)
    a.data;
  !worst

let equal ?(tol = 1e-9) a b =
  Shape.equal a.shape b.shape
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      let y = b.data.(i) in
      let bound = tol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
      if Float.abs (x -. y) > bound then ok := false)
    a.data;
  !ok

let pp ppf t =
  let n = Array.length t.data in
  Format.fprintf ppf "@[<hov 2>tensor %a {" Shape.pp t.shape;
  let shown = min n 16 in
  for i = 0 to shown - 1 do
    Format.fprintf ppf "@ %g" t.data.(i)
  done;
  if n > shown then Format.fprintf ppf "@ ... (%d more)" (n - shown);
  Format.fprintf ppf " }@]"
