(** Dense, row-major tensor values over [float].

    These are the reference semantics against which every compiler stage is
    validated: the loop-IR interpreter must reproduce exactly what these
    operations compute (up to floating-point associativity tolerances where
    reductions are reordered). *)

type t
(** A dense tensor: a shape plus a flat row-major payload. *)

val create : Shape.t -> t
(** Zero-filled tensor. *)

val init : Shape.t -> (int list -> float) -> t
(** [init s f] fills each element from its index tuple. *)

val of_array : Shape.t -> float array -> t
(** Adopts a flat row-major payload (copied).
    @raise Shape.Invalid on size mismatch. *)

val scalar : float -> t
(** Rank-0 tensor holding one value. *)

val shape : t -> Shape.t
val get : t -> int list -> float
val set : t -> int list -> float -> unit

val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val to_array : t -> float array
(** Copy of the flat payload. *)

val copy : t -> t

val fill : t -> float -> unit

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** @raise Shape.Invalid on shape mismatch. *)

val fold : t -> init:'a -> f:('a -> float -> 'a) -> 'a

val random : ?seed:int -> Shape.t -> t
(** Deterministic pseudo-random fill in [-1, 1); same seed, same tensor. *)

val identity : int -> t
(** [identity n] is the n×n identity matrix. *)

val equal : ?tol:float -> t -> t -> bool
(** Element-wise comparison with absolute/relative tolerance
    (default [tol = 1e-9]): |a-b| <= tol * max(1, |a|, |b|). *)

val max_abs_diff : t -> t -> float
(** Largest element-wise absolute difference.
    @raise Shape.Invalid on shape mismatch. *)

val pp : Format.formatter -> t -> unit
(** Compact textual form; full payload for small tensors, elided otherwise. *)
