type inputs = { s : Dense.t; d : Dense.t; u : Dense.t }

let make_inputs ?(seed = 42) n =
  {
    s = Dense.random ~seed (Shape.create [ n; n ]);
    d = Dense.random ~seed:(seed + 1) (Shape.cube 3 n);
    u = Dense.random ~seed:(seed + 2) (Shape.cube 3 n);
  }

let identity_inputs n =
  {
    s = Dense.identity n;
    d = Dense.init (Shape.cube 3 n) (fun _ -> 1.0);
    u = Dense.random ~seed:7 (Shape.cube 3 n);
  }

(* t[i,j,k] = sum_{l,m,n} S[i,l] S[j,m] S[k,n] u[l,m,n], i.e. the CFDlang
   contraction S # S # S # u . [[1 6] [3 7] [5 8]] (Equation 2c with the
   transposed reading of Equation 1a). *)
let first_contraction s u = Ops.contract_product [ s; s; s; u ] [ (1, 6); (3, 7); (5, 8) ]

(* v[i,j,k] = sum_{l,m,n} S[l,i] S[m,j] S[n,k] r[l,m,n]:
   S # S # S # r . [[0 6] [2 7] [4 8]] (Equation 1c). *)
let second_contraction s r = Ops.contract_product [ s; s; s; r ] [ (0, 6); (2, 7); (4, 8) ]

let direct_t { s; u; _ } = first_contraction s u

let direct inputs =
  let t = first_contraction inputs.s inputs.u in
  let r = Ops.hadamard inputs.d t in
  second_contraction inputs.s r

(* One factorization stage: contract the first dimension of w against column
   [col] of S (col = 1 pairs S's second dim, col = 0 its first), rotating the
   remaining dimensions so that three applications sweep all of them.
   stage ~col:1 s w: out[m,n,i] = sum_l S[i,l] w[l,m,n]  (dims of S#w are
   S:(0,1) w:(2,3,4); pair (1,2); output order 0,3,4 -> i,m,n). We then move
   i last so repeated application cycles the axes. *)
let stage ~col s w =
  let pair = if col = 1 then (1, 2) else (0, 2) in
  let contracted = Ops.contract_product [ s; w ] [ pair ] in
  (* contracted dims: [i (from S); m; n] -> rotate to [m; n; i] *)
  Ops.transpose contracted [ 1; 2; 0 ]

let factorized inputs =
  let apply col w =
    stage ~col inputs.s (stage ~col inputs.s (stage ~col inputs.s w))
  in
  let t = apply 1 inputs.u in
  let r = Ops.hadamard inputs.d t in
  apply 0 r

let interpolation s u =
  Ops.contract_product [ s; s; s; u ] [ (1, 6); (3, 7); (5, 8) ]

(* Each reduction step of a k-factor contraction counts k ops
   ((k-1) multiplications + 1 addition); pointwise ops count 1/element. *)
let flops_direct n =
  let n3 = n * n * n in
  (2 * 4 * n3 * n3) + n3

let flops_factorized n =
  let n3 = n * n * n in
  (6 * 2 * n * n3) + n3
