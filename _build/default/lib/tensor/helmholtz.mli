(** Reference implementations of the spectral-element operators from the
    paper (Section II): the Inverse Helmholtz operator (Equations 1a-1c) and
    the simpler interpolation operator it subsumes.

    Both a direct evaluation (rank-6 contractions, O(p^6) multiply-adds per
    stage, matching the C code the paper feeds to HLS) and the factorized
    evaluation (three chained single-index contractions per stage, O(p^4),
    the associativity transform of Section IV-A) are provided. They agree up
    to floating-point reassociation. *)

type inputs = {
  s : Dense.t;  (** operator matrix S, shape [p+1; p+1] *)
  d : Dense.t;  (** diagonal tensor D, shape [p+1; p+1; p+1] *)
  u : Dense.t;  (** element state u, shape [p+1; p+1; p+1] *)
}

val make_inputs : ?seed:int -> int -> inputs
(** [make_inputs n] builds deterministic pseudo-random inputs of extent [n]
    (the paper uses n = p+1... the DSL extent; n = 11 in the evaluation). *)

val identity_inputs : int -> inputs
(** Inputs with S = I and D = all-ones, for which the operator is the
    identity on u — a useful analytic check. *)

val direct : inputs -> Dense.t
(** Equations (1a)-(1c) evaluated as two direct rank-6 contractions plus the
    Hadamard product, exactly as the Figure-1 DSL program states them. *)

val direct_t : inputs -> Dense.t
(** The intermediate t of Equation (1a) only, direct evaluation. *)

val factorized : inputs -> Dense.t
(** Same operator with each contraction factorized into three
    single-reduction stages. *)

val interpolation : Dense.t -> Dense.t -> Dense.t
(** [interpolation s u] is the tensor-product interpolation
    v = (S ⊗ S ⊗ S) u (Equation 2a without the transposes), the simpler
    operator the paper notes is subsumed by Inverse Helmholtz. *)

val flops_direct : int -> int
(** Operation count of {!direct} for extent [n]: each reduction step of a
    k-factor contraction counts k ops ((k-1) muls + 1 add), so
    2·4·n^6 + n^3 — the calibration basis of bench E3/E4. *)

val flops_factorized : int -> int
(** Operation count of {!factorized}: 6·2·n^4 + n^3. *)
