exception Error of string

let errorf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Description of where each product dimension lives: the factor that owns it
   and the stride of that dimension inside the factor's flat payload. *)
type dim_home = { factor : int; stride : int; extent : int }

let product_dims factors =
  let homes = ref [] in
  List.iteri
    (fun f t ->
      let shape = Dense.shape t in
      List.iter2
        (fun stride extent -> homes := { factor = f; stride; extent } :: !homes)
        (Shape.strides shape) (Shape.dims shape))
    factors;
  Array.of_list (List.rev !homes)

let validate_pairs homes pairs =
  let n = Array.length homes in
  let seen = Array.make n false in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        errorf "contract: pair (%d, %d) out of range for %d product dims" a b n;
      if a = b then errorf "contract: pair (%d, %d) is degenerate" a b;
      if seen.(a) || seen.(b) then
        errorf "contract: dimension reused in pairs (%d, %d)" a b;
      seen.(a) <- true;
      seen.(b) <- true;
      if homes.(a).extent <> homes.(b).extent then
        errorf "contract: paired dims %d and %d have extents %d and %d" a b
          homes.(a).extent homes.(b).extent)
    pairs;
  seen

let contract_product factors pairs =
  if factors = [] then errorf "contract_product: no factors";
  let homes = product_dims factors in
  let paired = validate_pairs homes pairs in
  let out_positions =
    List.filter (fun d -> not paired.(d))
      (List.init (Array.length homes) Fun.id)
  in
  let out_shape =
    Shape.create (List.map (fun d -> homes.(d).extent) out_positions)
  in
  let red_extents = List.map (fun (a, _) -> homes.(a).extent) pairs in
  let red_shape = Shape.create red_extents in
  let factor_data = Array.of_list (List.map Dense.to_array factors) in
  let nfactors = Array.length factor_data in
  (* Per-factor offsets are affine in the product index; accumulate them
     incrementally per (out, red) index pair. *)
  let out_positions_arr = Array.of_list out_positions in
  let pairs_arr = Array.of_list pairs in
  let result = Dense.create out_shape in
  Shape.iter out_shape (fun out_idx ->
      let base = Array.make nfactors 0 in
      List.iteri
        (fun pos i ->
          let h = homes.(out_positions_arr.(pos)) in
          base.(h.factor) <- base.(h.factor) + (i * h.stride))
        out_idx;
      let acc = ref 0.0 in
      Shape.iter red_shape (fun red_idx ->
          let offsets = Array.copy base in
          List.iteri
            (fun pos r ->
              let a, b = pairs_arr.(pos) in
              let ha = homes.(a) and hb = homes.(b) in
              offsets.(ha.factor) <- offsets.(ha.factor) + (r * ha.stride);
              offsets.(hb.factor) <- offsets.(hb.factor) + (r * hb.stride))
            red_idx;
          let prod = ref 1.0 in
          for f = 0 to nfactors - 1 do
            prod := !prod *. factor_data.(f).(offsets.(f))
          done;
          acc := !acc +. !prod);
      Dense.set result out_idx !acc);
  result

let contract t pairs = contract_product [ t ] pairs

let outer a b =
  let shape = Shape.concat (Dense.shape a) (Dense.shape b) in
  let ra = Shape.rank (Dense.shape a) in
  Dense.init shape (fun idx ->
      let ia = List.filteri (fun pos _ -> pos < ra) idx in
      let ib = List.filteri (fun pos _ -> pos >= ra) idx in
      Dense.get a ia *. Dense.get b ib)

let hadamard a b = Dense.map2 ( *. ) a b
let add a b = Dense.map2 ( +. ) a b
let sub a b = Dense.map2 ( -. ) a b
let div a b = Dense.map2 ( /. ) a b
let scale k t = Dense.map (fun x -> k *. x) t

let transpose t perm =
  let shape = Dense.shape t in
  let r = Shape.rank shape in
  if List.length perm <> r || List.sort compare perm <> List.init r Fun.id then
    errorf "transpose: %s is not a permutation of 0..%d"
      (String.concat " " (List.map string_of_int perm))
      (r - 1);
  let out_shape =
    Shape.create (List.map (fun d -> Shape.dim shape d) perm)
  in
  Dense.init out_shape (fun out_idx ->
      let in_idx = Array.make r 0 in
      List.iteri (fun pos d -> in_idx.(d) <- List.nth out_idx pos) perm;
      Dense.get t (Array.to_list in_idx))

let matmul a b =
  let sa = Dense.shape a and sb = Dense.shape b in
  if Shape.rank sa <> 2 || Shape.rank sb <> 2 then
    errorf "matmul: operands must be rank 2";
  contract_product [ a; b ] [ (1, 2) ]

let frobenius t = sqrt (Dense.fold t ~init:0.0 ~f:(fun acc x -> acc +. (x *. x)))
