(** Reference tensor operations with CFDlang semantics.

    The central operation is {!contract_product}: the contraction of an outer
    product of factors, written [a # b # ... . [[i j] ...]] in CFDlang. The
    dimensions of the factors are numbered consecutively (Section II-B); each
    pair names two product dimensions that are reduced together; the remaining
    dimensions, in increasing position order, form the result. *)

exception Error of string

val contract_product : Dense.t list -> (int * int) list -> Dense.t
(** [contract_product factors pairs] contracts the outer product of [factors]
    over [pairs] without materializing the product tensor.
    @raise Error on invalid pairs (out of range, overlapping, unequal
    extents) or an empty factor list. *)

val contract : Dense.t -> (int * int) list -> Dense.t
(** Self-contraction of a single tensor (trace-like). *)

val outer : Dense.t -> Dense.t -> Dense.t
(** Materialized outer product (use only for small operands). *)

val hadamard : Dense.t -> Dense.t -> Dense.t
(** Element-wise product; shapes must match. *)

val add : Dense.t -> Dense.t -> Dense.t
val sub : Dense.t -> Dense.t -> Dense.t
val div : Dense.t -> Dense.t -> Dense.t
val scale : float -> Dense.t -> Dense.t

val transpose : Dense.t -> int list -> Dense.t
(** [transpose t perm] permutes dimensions: output dim [i] is input dim
    [List.nth perm i]. @raise Error if [perm] is not a permutation. *)

val matmul : Dense.t -> Dense.t -> Dense.t
(** Rank-2 convenience wrapper over {!contract_product}. *)

val frobenius : Dense.t -> float
(** Frobenius norm. *)
