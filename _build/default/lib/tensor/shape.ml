type t = { extents : int array; strides : int array; size : int }

exception Invalid of string

let invalidf fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let compute_strides extents =
  let n = Array.length extents in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * extents.(i + 1)
  done;
  strides

let create extents_list =
  let extents = Array.of_list extents_list in
  Array.iteri
    (fun i d -> if d < 1 then invalidf "shape: dimension %d has extent %d" i d)
    extents;
  let strides = compute_strides extents in
  let size = Array.fold_left ( * ) 1 extents in
  { extents; strides; size }

let scalar = create []
let cube rank p = create (List.init rank (fun _ -> p))
let rank t = Array.length t.extents
let dims t = Array.to_list t.extents

let dim t i =
  if i < 0 || i >= rank t then
    invalid_arg (Printf.sprintf "Shape.dim: %d out of range" i)
  else t.extents.(i)

let num_elements t = t.size
let equal a b = a.extents = b.extents
let compare a b = Stdlib.compare a.extents b.extents
let strides t = Array.to_list t.strides

let in_bounds t idx =
  List.length idx = rank t
  && List.for_all2 (fun i d -> i >= 0 && i < d) idx (dims t)

let linearize t idx =
  if List.length idx <> rank t then
    invalidf "linearize: rank mismatch (%d vs %d)" (List.length idx) (rank t);
  let off = ref 0 in
  List.iteri
    (fun pos i ->
      if i < 0 || i >= t.extents.(pos) then
        invalidf "linearize: index %d out of bounds for dim %d (extent %d)" i
          pos t.extents.(pos);
      off := !off + (i * t.strides.(pos)))
    idx;
  !off

let delinearize t off =
  if off < 0 || off >= t.size then
    invalidf "delinearize: offset %d out of range (size %d)" off t.size;
  List.init (rank t) (fun pos -> off / t.strides.(pos) mod t.extents.(pos))

let iter t f =
  (* Row-major order coincides with increasing linear offset. *)
  for off = 0 to t.size - 1 do
    f (delinearize t off)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun idx -> acc := f !acc idx);
  !acc

let concat a b = create (dims a @ dims b)

let remove_dims t ds =
  let keep pos = not (List.mem pos ds) in
  create (List.filteri (fun pos _ -> keep pos) (dims t))

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       Format.pp_print_int)
    (dims t)

let to_string t = Format.asprintf "%a" pp t
