(** Tensor shapes: immutable extents of a statically shaped tensor.

    A shape is a list of strictly positive dimension extents. Scalars are
    modelled as rank-0 shapes with exactly one valid (empty) index, mirroring
    the value-based tensor abstraction of the paper (Section IV-B). *)

type t
(** A validated shape. *)

exception Invalid of string
(** Raised by {!create} on non-positive extents. *)

val create : int list -> t
(** [create extents] builds a shape. @raise Invalid on extents < 1. *)

val scalar : t
(** The rank-0 shape. *)

val cube : int -> int -> t
(** [cube rank p] is the shape with [rank] dimensions of extent [p],
    e.g. [cube 3 11] for an element tensor of polynomial degree 10. *)

val rank : t -> int
(** Number of dimensions. *)

val dims : t -> int list
(** Extents, outermost first. *)

val dim : t -> int -> int
(** [dim s i] is the extent of dimension [i]. @raise Invalid_argument. *)

val num_elements : t -> int
(** Product of all extents; 1 for scalars. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val strides : t -> int list
(** Row-major strides: the C99 "innermost dimension" layout of Section IV-D.
    [strides (create [a; b; c]) = [b*c; c; 1]]. *)

val linearize : t -> int list -> int
(** [linearize s idx] is the row-major offset of index tuple [idx].
    @raise Invalid on rank mismatch or out-of-bounds components. *)

val delinearize : t -> int -> int list
(** Inverse of {!linearize}. @raise Invalid if out of range. *)

val in_bounds : t -> int list -> bool
(** Whether an index tuple is valid for this shape. *)

val iter : t -> (int list -> unit) -> unit
(** Visit every index tuple in row-major (lexicographic) order. *)

val fold : t -> init:'a -> f:('a -> int list -> 'a) -> 'a
(** Row-major fold over index tuples. *)

val concat : t -> t -> t
(** Shape of an outer product: concatenated extents. *)

val remove_dims : t -> int list -> t
(** [remove_dims s ds] drops the dimensions whose positions are listed in
    [ds] (positions refer to [s]; duplicates ignored). *)

val pp : Format.formatter -> t -> unit
(** Prints as [[d0 d1 ...]], the CFDlang notation. *)

val to_string : t -> string
