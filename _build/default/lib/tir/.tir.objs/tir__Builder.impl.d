lib/tir/builder.ml: Ast Cfdlang Check Hashtbl Ir List Printf
