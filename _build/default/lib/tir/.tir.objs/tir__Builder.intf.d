lib/tir/builder.mli: Cfdlang Ir
