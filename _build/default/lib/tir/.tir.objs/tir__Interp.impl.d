lib/tir/interp.ml: Dense Format Hashtbl Ir List Ops Shape Tensor
