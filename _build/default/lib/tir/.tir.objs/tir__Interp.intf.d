lib/tir/interp.mli: Ir Tensor
