lib/tir/ir.ml: Array Format Fun Hashtbl List Printf String
