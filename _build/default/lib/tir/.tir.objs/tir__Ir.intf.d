lib/tir/ir.mli: Format
