lib/tir/transform.ml: Array Fun Hashtbl Ir List Printf
