lib/tir/transform.mli: Ir
