open Cfdlang

type state = {
  mutable defs : Ir.def list; (* reversed *)
  mutable counter : int;
  shapes : (string, int list) Hashtbl.t;
}

let fresh st =
  let id = Printf.sprintf "%%%d" st.counter in
  st.counter <- st.counter + 1;
  id

let emit st id op =
  let env x = Hashtbl.find_opt st.shapes x in
  let shape = Ir.infer_shape ~env op in
  st.defs <- { Ir.id; shape; op } :: st.defs;
  Hashtbl.replace st.shapes id shape;
  id

let emit_fresh st op = emit st (fresh st) op

(* Flatten a product chain into operand ids (left to right). *)
let rec product_operands st expr acc =
  match expr with
  | Ast.Prod (a, b) -> product_operands st a (operand st b :: acc)
  | e -> operand st e :: acc

(* Lower an expression to an operand id. *)
and operand st expr =
  match expr with
  | Ast.Var v -> v
  | Ast.Num f -> emit_fresh st (Ir.Const f)
  | Ast.Add (a, b) -> pointwise st Ir.Add a b
  | Ast.Sub (a, b) -> pointwise st Ir.Sub a b
  | Ast.Mul (a, b) -> pointwise st Ir.Mul a b
  | Ast.Div (a, b) -> pointwise st Ir.Div a b
  | Ast.Contract (operand_expr, pairs) ->
      let factors = product_operands st operand_expr [] in
      emit_fresh st (Ir.Contract { factors; pairs })
  | Ast.Prod _ ->
      (* A product not consumed by a contraction: materialized outer
         product, i.e. a contraction with no pairs. *)
      let factors = product_operands st expr [] in
      emit_fresh st (Ir.Contract { factors; pairs = [] })

and pointwise st f a b =
  let la = operand st a in
  let rb = operand st b in
  emit_fresh st (Ir.Pointwise { f; lhs = la; rhs = rb })

(* Lower the top level of a statement, binding the result to [lhs] instead
   of a transient. *)
let lower_stmt st (s : Ast.stmt) =
  match s.rhs with
  | Ast.Var v -> ignore (emit st s.lhs (Ir.Contract { factors = [ v ]; pairs = [] }))
  | Ast.Num f -> ignore (emit st s.lhs (Ir.Const f))
  | Ast.Add (a, b) ->
      let la = operand st a and rb = operand st b in
      ignore (emit st s.lhs (Ir.Pointwise { f = Ir.Add; lhs = la; rhs = rb }))
  | Ast.Sub (a, b) ->
      let la = operand st a and rb = operand st b in
      ignore (emit st s.lhs (Ir.Pointwise { f = Ir.Sub; lhs = la; rhs = rb }))
  | Ast.Mul (a, b) ->
      let la = operand st a and rb = operand st b in
      ignore (emit st s.lhs (Ir.Pointwise { f = Ir.Mul; lhs = la; rhs = rb }))
  | Ast.Div (a, b) ->
      let la = operand st a and rb = operand st b in
      ignore (emit st s.lhs (Ir.Pointwise { f = Ir.Div; lhs = la; rhs = rb }))
  | Ast.Contract (operand_expr, pairs) ->
      let factors = product_operands st operand_expr [] in
      ignore (emit st s.lhs (Ir.Contract { factors; pairs }))
  | Ast.Prod _ ->
      let factors = product_operands st s.rhs [] in
      ignore (emit st s.lhs (Ir.Contract { factors; pairs = [] }))

let build ?(name = "kernel") (checked : Check.checked) =
  let program = checked.Check.program in
  let st = { defs = []; counter = 0; shapes = Hashtbl.create 16 } in
  let inputs =
    List.filter_map
      (fun (d : Ast.decl) ->
        if d.io = Ast.Input then begin
          Hashtbl.replace st.shapes d.name d.dims;
          Some (d.name, d.dims)
        end
        else None)
      program.decls
  in
  List.iter (lower_stmt st) program.stmts;
  let outputs =
    List.filter_map
      (fun (d : Ast.decl) ->
        if d.io = Ast.Output then Some (d.name, d.dims) else None)
      program.decls
  in
  let kernel = { Ir.name; inputs; outputs; defs = List.rev st.defs } in
  Ir.validate kernel;
  kernel
