(** Lowering of checked CFDlang programs into the tensor IR (step (i) of
    Figure 4: construction of the pseudo-SSA form).

    Product chains that feed a contraction collapse into one [Contract]
    definition, so the outer product is never materialized. All other
    intermediate expressions become transient definitions. *)

val build : ?name:string -> Cfdlang.Check.checked -> Ir.kernel
(** Always produces a kernel satisfying [Ir.validate]. *)
