exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

open Tensor

let broadcast2 op a b =
  let ra = Shape.rank (Dense.shape a) and rb = Shape.rank (Dense.shape b) in
  if ra = 0 && rb > 0 then Dense.map (op (Dense.get a [])) b
  else if rb = 0 && ra > 0 then Dense.map (fun x -> op x (Dense.get b [])) a
  else Dense.map2 op a b

let run (kernel : Ir.kernel) inputs =
  let values = Hashtbl.create 16 in
  List.iter
    (fun (id, dims) ->
      match List.assoc_opt id inputs with
      | None -> errf "missing input %s" id
      | Some t ->
          if Shape.dims (Dense.shape t) <> dims then
            errf "input %s has wrong shape" id;
          Hashtbl.replace values id t)
    kernel.Ir.inputs;
  let value id =
    match Hashtbl.find_opt values id with
    | Some t -> t
    | None -> errf "operand %s has no value" id
  in
  List.iter
    (fun (def : Ir.def) ->
      let result =
        match def.op with
        | Ir.Const f -> Dense.scalar f
        | Ir.Transpose { src; perm } -> Ops.transpose (value src) perm
        | Ir.Pointwise { f; lhs; rhs } ->
            let op =
              match f with
              | Ir.Add -> ( +. )
              | Ir.Sub -> ( -. )
              | Ir.Mul -> ( *. )
              | Ir.Div -> ( /. )
            in
            broadcast2 op (value lhs) (value rhs)
        | Ir.Contract { factors; pairs } ->
            Ops.contract_product (List.map value factors) pairs
      in
      Hashtbl.replace values def.id result)
    kernel.Ir.defs;
  List.map (fun (id, _) -> (id, value id)) kernel.Ir.outputs

let random_inputs ?(seed = 0) (kernel : Ir.kernel) =
  List.map
    (fun (id, dims) ->
      (id, Dense.random ~seed:(seed + Hashtbl.hash id) (Shape.create dims)))
    kernel.Ir.inputs
