(** Reference interpreter for the tensor IR; validates that every IR
    transform preserves the CFDlang semantics. *)

exception Error of string

val run :
  Ir.kernel -> (string * Tensor.Dense.t) list -> (string * Tensor.Dense.t) list
(** [run kernel inputs] returns bindings for the kernel outputs.
    @raise Error on missing or ill-shaped inputs. *)

val random_inputs : ?seed:int -> Ir.kernel -> (string * Tensor.Dense.t) list
