type pointwise = Add | Sub | Mul | Div

type op =
  | Contract of { factors : string list; pairs : (int * int) list }
  | Pointwise of { f : pointwise; lhs : string; rhs : string }
  | Transpose of { src : string; perm : int list }
  | Const of float

type def = { id : string; shape : int list; op : op }

type kernel = {
  name : string;
  inputs : (string * int list) list;
  outputs : (string * int list) list;
  defs : def list;
}

exception Ill_formed of string

let illf fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let uses def =
  match def.op with
  | Contract { factors; _ } -> factors
  | Pointwise { lhs; rhs; _ } -> [ lhs; rhs ]
  | Transpose { src; _ } -> [ src ]
  | Const _ -> []

let infer_shape ~env op =
  let shape_of id =
    match env id with
    | Some s -> s
    | None -> illf "operand %s is not defined" id
  in
  match op with
  | Const _ -> []
  | Transpose { src; perm } ->
      let s = shape_of src in
      let r = List.length s in
      if List.length perm <> r || List.sort compare perm <> List.init r Fun.id
      then illf "transpose of %s: invalid permutation" src;
      List.map (fun d -> List.nth s d) perm
  | Pointwise { lhs; rhs; _ } -> (
      let sa = shape_of lhs and sb = shape_of rhs in
      match (sa, sb) with
      | [], s | s, [] -> s
      | _ when sa = sb -> sa
      | _ -> illf "pointwise shapes differ for %s and %s" lhs rhs)
  | Contract { factors; pairs } ->
      if factors = [] then illf "contraction with no factors";
      let all_dims = List.concat_map shape_of factors in
      let n = List.length all_dims in
      let extents = Array.of_list all_dims in
      let used = Array.make (max n 1) false in
      List.iter
        (fun (a, b) ->
          if a < 0 || a >= n || b < 0 || b >= n then
            illf "contraction pair (%d, %d) out of range %d" a b n;
          if a = b then illf "degenerate contraction pair (%d, %d)" a b;
          if used.(a) || used.(b) then illf "contraction dim reused";
          if extents.(a) <> extents.(b) then
            illf "contraction pair (%d, %d) has extents %d and %d" a b
              extents.(a) extents.(b);
          used.(a) <- true;
          used.(b) <- true)
        pairs;
      List.filteri (fun i _ -> not used.(i)) all_dims

let find_def kernel id = List.find_opt (fun d -> d.id = id) kernel.defs
let defined_ids kernel = List.map (fun d -> d.id) kernel.defs

let is_transient _kernel id = String.length id > 0 && id.[0] = '%'

let validate kernel =
  let shapes = Hashtbl.create 16 in
  List.iter
    (fun (id, s) ->
      if Hashtbl.mem shapes id then illf "input %s declared twice" id;
      Hashtbl.add shapes id s)
    kernel.inputs;
  let env id = Hashtbl.find_opt shapes id in
  List.iter
    (fun def ->
      if List.mem_assoc def.id kernel.inputs then
        illf "input %s is defined by a statement" def.id;
      if Hashtbl.mem shapes def.id then illf "%s defined twice" def.id;
      let inferred = infer_shape ~env def.op in
      if inferred <> def.shape then
        illf "%s declares shape [%s] but computes [%s]" def.id
          (String.concat " " (List.map string_of_int def.shape))
          (String.concat " " (List.map string_of_int inferred));
      Hashtbl.add shapes def.id def.shape)
    kernel.defs;
  List.iter
    (fun (id, s) ->
      match Hashtbl.find_opt shapes id with
      | None -> illf "output %s is never defined" id
      | Some s' when s <> s' -> illf "output %s has wrong shape" id
      | Some _ -> ())
    kernel.outputs

let size shape = List.fold_left ( * ) 1 shape

let flops ~env def =
  match def.op with
  | Const _ | Transpose _ -> 0
  | Pointwise _ -> size def.shape
  | Contract { factors; pairs } ->
      let all_dims =
        List.concat_map
          (fun id ->
            match env id with
            | Some s -> s
            | None -> illf "flops: operand %s undefined" id)
          factors
      in
      let extents = Array.of_list all_dims in
      let red = List.fold_left (fun acc (a, _) -> acc * extents.(a)) 1 pairs in
      (* Each reduction step costs (n-1) multiplications + 1 addition for
         an n-factor product: n ops per step. *)
      size def.shape * red * List.length factors

let kernel_flops kernel =
  let shapes = Hashtbl.create 16 in
  List.iter (fun (id, s) -> Hashtbl.replace shapes id s) kernel.inputs;
  let env id = Hashtbl.find_opt shapes id in
  List.fold_left
    (fun acc d ->
      let n = flops ~env d in
      Hashtbl.replace shapes d.id d.shape;
      acc + n)
    0 kernel.defs

let pp_pointwise ppf f =
  Format.pp_print_string ppf
    (match f with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/")

let pp_def ppf def =
  let shape = String.concat " " (List.map string_of_int def.shape) in
  match def.op with
  | Const f -> Format.fprintf ppf "%s : [%s] = const %g" def.id shape f
  | Pointwise { f; lhs; rhs } ->
      Format.fprintf ppf "%s : [%s] = %s %a %s" def.id shape lhs pp_pointwise f rhs
  | Transpose { src; perm } ->
      Format.fprintf ppf "%s : [%s] = transpose %s [%s]" def.id shape src
        (String.concat " " (List.map string_of_int perm))
  | Contract { factors; pairs } ->
      Format.fprintf ppf "%s : [%s] = %s%s" def.id shape
        (String.concat " # " factors)
        (if pairs = [] then ""
         else
           " . ["
           ^ String.concat " "
               (List.map (fun (a, b) -> Printf.sprintf "[%d %d]" a b) pairs)
           ^ "]")

let pp_kernel ppf kernel =
  Format.fprintf ppf "kernel %s@\n" kernel.name;
  List.iter
    (fun (id, s) ->
      Format.fprintf ppf "  input %s : [%s]@\n" id
        (String.concat " " (List.map string_of_int s)))
    kernel.inputs;
  List.iter (fun d -> Format.fprintf ppf "  %a@\n" pp_def d) kernel.defs;
  List.iter
    (fun (id, _) -> Format.fprintf ppf "  output %s@\n" id)
    kernel.outputs
