(** The tensor IR: a pseudo-SSA sequence of tensor definitions
    (Section IV-A/B).

    Every definition names a tensor value and computes all of its elements
    from previously defined tensors via one primitive operation. Named
    program tensors (kernel interface and locals) and compiler-introduced
    transients share one namespace; transients use a [%] prefix. *)

type pointwise = Add | Sub | Mul | Div

type op =
  | Contract of { factors : string list; pairs : (int * int) list }
      (** Contraction of the outer product of [factors] (empty [pairs]
          makes this a materialized outer product; a single factor with no
          pairs is a copy). *)
  | Pointwise of { f : pointwise; lhs : string; rhs : string }
      (** Element-wise with scalar broadcast on either side. *)
  | Transpose of { src : string; perm : int list }
  | Const of float  (** Scalar constant. *)

type def = { id : string; shape : int list; op : op }

type kernel = {
  name : string;
  inputs : (string * int list) list;
  outputs : (string * int list) list;
  defs : def list;  (** in execution order *)
}

exception Ill_formed of string

val validate : kernel -> unit
(** Check SSA discipline: unique definitions, uses after definitions,
    inputs never defined, outputs defined exactly once, and every def's
    declared shape consistent with its operation.
    @raise Ill_formed otherwise. *)

val infer_shape : env:(string -> int list option) -> op -> int list
(** Result shape of an operation. @raise Ill_formed on invalid operands. *)

val find_def : kernel -> string -> def option
val defined_ids : kernel -> string list
val is_transient : kernel -> string -> bool
(** Neither an input nor an output nor a declared local — compiler
    temporary. (Locals are defs whose id has no [%] prefix.) *)

val uses : def -> string list
(** Operand ids, in order, duplicates preserved. *)

val flops : env:(string -> int list option) -> def -> int
(** Operation count of one definition (multiplications + additions), given
    operand shapes. Contractions count [out * red * factors] fused ops;
    pointwise ops count one per element; transposes and constants are
    free. *)

val kernel_flops : kernel -> int
(** Sum of {!flops} over all defs, resolving shapes internally. *)

val pp_def : Format.formatter -> def -> unit
val pp_kernel : Format.formatter -> kernel -> unit
