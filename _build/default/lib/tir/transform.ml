(* Tags for tracking how the working tensor's dimensions relate to the
   original contraction's global dimension numbering during factorization. *)
type dim_tag = Global of int

type fresh_state = { mutable counter : int }

let fresh st prefix =
  let id = Printf.sprintf "%%%s%d" prefix st.counter in
  st.counter <- st.counter + 1;
  id

(* Attempt to factorize one contraction given operand shapes. Returns the
   replacement defs (ending with a def named [def.id]) or None. *)
let factorize_contract st ~env (def : Ir.def) factors pairs =
  let shapes =
    List.map
      (fun id ->
        match env id with Some s -> s | None -> raise (Ir.Ill_formed id))
      factors
  in
  let ranks = List.map List.length shapes in
  let offsets =
    List.rev
      (snd
         (List.fold_left
            (fun (off, acc) r -> (off + r, off :: acc))
            (0, []) ranks))
  in
  let nfactors = List.length factors in
  let total = List.fold_left ( + ) 0 ranks in
  (* factor_of.(global_dim) = factor index *)
  let factor_of = Array.make (max total 1) 0 in
  List.iteri
    (fun f off ->
      let r = List.nth ranks f in
      for d = off to off + r - 1 do
        factor_of.(d) <- f
      done)
    offsets;
  if List.length pairs < 2 || nfactors < 2 then None
  else
    (* Candidate cores: factors that carry exactly one side of every pair. *)
    let is_core c =
      List.for_all
        (fun (a, b) ->
          let fa = factor_of.(a) and fb = factor_of.(b) in
          (fa = c || fb = c) && fa <> fb)
        pairs
    in
    let core =
      List.find_opt is_core (List.init nfactors Fun.id)
    in
    match core with
    | None -> None
    | Some core ->
        let core_off = List.nth offsets core in
        let core_rank = List.nth ranks core in
        (* Normalize pairs to (matrix_factor, matrix_local_dim, core_local_dim). *)
        let norm =
          List.map
            (fun (a, b) ->
              let ca, cb = (factor_of.(a), factor_of.(b)) in
              if ca = core then (cb, b - List.nth offsets cb, a - core_off)
              else (ca, a - List.nth offsets ca, b - core_off))
            pairs
        in
        let matrices_ok =
          List.for_all
            (fun (m, _, _) -> List.nth ranks m = 2)
            norm
          && (* each matrix position used exactly once *)
          let ms = List.map (fun (m, _, _) -> m) norm in
          List.length (List.sort_uniq compare ms) = List.length ms
          && not (List.mem core ms)
        in
        if not matrices_ok then None
        else begin
          (* Process pairs by descending core dimension so the frees come
             out in ascending core-dim order without transposes. *)
          let sorted =
            List.sort (fun (_, _, c1) (_, _, c2) -> compare c2 c1) norm
          in
          let defs = ref [] in
          let w = ref (List.nth factors core) in
          let w_dims = ref (List.init core_rank (fun i -> Global (core_off + i))) in
          let w_shape = ref (List.nth shapes core) in
          let n_stages = List.length sorted in
          List.iteri
            (fun stage (m, m_local, c_local) ->
              let pos =
                match
                  List.find_index
                    (fun t -> t = Global (core_off + c_local))
                    !w_dims
                with
                | Some p -> p
                | None -> raise (Ir.Ill_formed "factorize: lost core dim")
              in
              let matrix_id = List.nth factors m in
              let m_off = List.nth offsets m in
              let m_free_local = 1 - m_local in
              let m_shape = List.nth shapes m in
              let out_shape =
                List.nth m_shape m_free_local
                :: List.filteri (fun i _ -> i <> pos) !w_shape
              in
              let id = if stage = n_stages - 1 then def.Ir.id else fresh st "f" in
              let d =
                {
                  Ir.id;
                  shape = out_shape;
                  op =
                    Ir.Contract
                      {
                        factors = [ matrix_id; !w ];
                        pairs = [ (m_local, 2 + pos) ];
                      };
                }
              in
              defs := d :: !defs;
              w := id;
              w_dims :=
                Global (m_off + m_free_local)
                :: List.filteri (fun i _ -> i <> pos) !w_dims;
              w_shape := out_shape)
            sorted;
          (* Desired output order: unpaired global dims ascending. *)
          let paired = List.concat_map (fun (a, b) -> [ a; b ]) pairs in
          let out_globals =
            List.filter
              (fun d -> not (List.mem d paired))
              (List.init total Fun.id)
          in
          let final_globals = List.map (fun (Global g) -> g) !w_dims in
          if final_globals = out_globals then begin
            (* The last emitted def already has the right id. *)
            Some (List.rev !defs)
          end
          else begin
            (* Rename the last def to a transient and transpose into place. *)
            match !defs with
            | [] -> None
            | last :: rest ->
                let tmp = fresh st "perm" in
                let last = { last with Ir.id = tmp } in
                let perm =
                  List.map
                    (fun g ->
                      match List.find_index (( = ) g) final_globals with
                      | Some p -> p
                      | None -> raise (Ir.Ill_formed "factorize: bad perm"))
                    out_globals
                in
                let tr =
                  {
                    Ir.id = def.Ir.id;
                    shape = def.Ir.shape;
                    op = Ir.Transpose { src = tmp; perm };
                  }
                in
                Some (List.rev (tr :: last :: rest))
          end
        end

let with_env kernel f =
  let shapes = Hashtbl.create 16 in
  List.iter (fun (id, s) -> Hashtbl.replace shapes id s) kernel.Ir.inputs;
  let env id = Hashtbl.find_opt shapes id in
  let defs =
    List.concat_map
      (fun (def : Ir.def) ->
        let out = f ~env def in
        List.iter (fun (d : Ir.def) -> Hashtbl.replace shapes d.id d.shape) out;
        out)
      kernel.Ir.defs
  in
  let kernel = { kernel with Ir.defs } in
  Ir.validate kernel;
  kernel

let factorize kernel =
  let st = { counter = 0 } in
  with_env kernel (fun ~env def ->
      match def.Ir.op with
      | Ir.Contract { factors; pairs } -> (
          match factorize_contract st ~env def factors pairs with
          | Some defs -> defs
          | None -> [ def ])
      | Ir.Pointwise _ | Ir.Transpose _ | Ir.Const _ -> [ def ])

let rename_uses subst (def : Ir.def) =
  let s id = match Hashtbl.find_opt subst id with Some x -> x | None -> id in
  let op =
    match def.Ir.op with
    | Ir.Contract { factors; pairs } ->
        Ir.Contract { factors = List.map s factors; pairs }
    | Ir.Pointwise { f; lhs; rhs } -> Ir.Pointwise { f; lhs = s lhs; rhs = s rhs }
    | Ir.Transpose { src; perm } -> Ir.Transpose { src = s src; perm }
    | Ir.Const _ as c -> c
  in
  { def with Ir.op }

let copy_propagate kernel =
  let subst = Hashtbl.create 8 in
  let is_copy (def : Ir.def) =
    match def.Ir.op with
    | Ir.Contract { factors = [ src ]; pairs = [] } when Ir.is_transient kernel def.Ir.id ->
        Some src
    | Ir.Transpose { src; perm } when Ir.is_transient kernel def.Ir.id && perm = List.init (List.length def.Ir.shape) Fun.id ->
        Some src
    | _ -> None
  in
  let defs =
    List.filter_map
      (fun def ->
        let def = rename_uses subst def in
        match is_copy def with
        | Some src ->
            Hashtbl.replace subst def.Ir.id src;
            None
        | None -> Some def)
      kernel.Ir.defs
  in
  let kernel = { kernel with Ir.defs } in
  Ir.validate kernel;
  kernel

let common_subexpression_elimination kernel =
  let subst = Hashtbl.create 8 in
  let seen : (Ir.op, string) Hashtbl.t = Hashtbl.create 16 in
  let defs =
    List.filter_map
      (fun def ->
        let def = rename_uses subst def in
        match Hashtbl.find_opt seen def.Ir.op with
        | Some prior when Ir.is_transient kernel def.Ir.id ->
            Hashtbl.replace subst def.Ir.id prior;
            None
        | Some _ | None ->
            if not (Hashtbl.mem seen def.Ir.op) then
              Hashtbl.replace seen def.Ir.op def.Ir.id;
            Some def)
      kernel.Ir.defs
  in
  let kernel = { kernel with Ir.defs } in
  Ir.validate kernel;
  kernel

let dead_code_elimination kernel =
  let live = Hashtbl.create 16 in
  List.iter (fun (id, _) -> Hashtbl.replace live id ()) kernel.Ir.outputs;
  let defs_rev = List.rev kernel.Ir.defs in
  let kept =
    List.filter
      (fun (def : Ir.def) ->
        if Hashtbl.mem live def.Ir.id then begin
          List.iter (fun u -> Hashtbl.replace live u ()) (Ir.uses def);
          true
        end
        else false)
      defs_rev
  in
  let kernel = { kernel with Ir.defs = List.rev kept } in
  Ir.validate kernel;
  kernel

let optimize ?(factorize_contractions = false) kernel =
  let kernel = if factorize_contractions then factorize kernel else kernel in
  dead_code_elimination
    (common_subexpression_elimination (copy_propagate kernel))
