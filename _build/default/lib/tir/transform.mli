(** IR-level transformations (the "existing CFDlang optimizations" applied
    in step (i) of Figure 4).

    The central one is contraction {e factorization}: a multi-pair
    contraction in tensor-times-matrices form, such as Equation (2c), is
    rewritten into a chain of single-reduction contractions — the
    associativity exploit of Section IV-A — reducing the Inverse Helmholtz
    stage cost from O(p^6) to O(p^4) multiply-adds. *)

val factorize : Ir.kernel -> Ir.kernel
(** Factorize every eligible contraction. A contraction is eligible when
    one factor (the core) carries one side of every pair and each other
    paired factor is a matrix (rank 2) involved in exactly one pair.
    Non-eligible contractions are left untouched. The result validates and
    is semantically equivalent (floating-point reassociation aside). *)

val copy_propagate : Ir.kernel -> Ir.kernel
(** Remove transient copies (single-factor, no-pair contractions of
    transients) by rewriting their uses. *)

val common_subexpression_elimination : Ir.kernel -> Ir.kernel
(** Merge transient definitions whose operations are structurally
    identical (same primitive, same operand ids): later duplicates are
    dropped and their uses redirected to the first occurrence. Named
    tensors are kept (they are part of the program's surface). *)

val dead_code_elimination : Ir.kernel -> Ir.kernel
(** Drop definitions that do not (transitively) reach an output. *)

val optimize : ?factorize_contractions:bool -> Ir.kernel -> Ir.kernel
(** The standard pipeline: optional factorization, then copy propagation,
    common-subexpression elimination and dead-code elimination. *)
