test/test_cfdlang.ml: Alcotest Ast Cfdlang Check Dense Eval Format Helmholtz Lexer List Parser Printf QCheck QCheck_alcotest Result Shape Tensor
