test/test_emit.ml: Alcotest Array Cfd_core Cfdlang Filename List Loopir Mnemosyne Printf Str String Sys Sysgen Tensor Unix
