test/test_extensions.ml: Alcotest Array Cfd_core Cfdlang Dense Float Fpga_platform Helmholtz Hls List Loopir Lower Ops QCheck QCheck_alcotest Shape Sim String Sysgen Tensor Tir
