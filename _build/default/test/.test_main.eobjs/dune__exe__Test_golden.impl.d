test/test_golden.ml: Alcotest Cfdlang List Loopir Lower Mnemosyne String Tir
