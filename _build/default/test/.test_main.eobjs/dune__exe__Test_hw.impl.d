test/test_hw.ml: Alcotest Array Board Bram Cfd_core Cfdlang Float Fpga_platform Hls List Loopir Lower Mnemosyne Printf Resource Sim String Sysgen Tensor Tir
