test/test_integration.ml: Alcotest Array Cfd_core Cfdlang Dense Helmholtz List Loopir Lower Poly Printf QCheck QCheck_alcotest Random Shape Sim String Sysgen Tensor Tir
