test/test_layout.ml: Alcotest Array Cfdlang Dense Float Helmholtz List Liveness Loopir Lower Mnemosyne Poly Shape String Tensor Tir
