test/test_liveness.ml: Alcotest Array Cfdlang List Liveness Loopir Lower Poly QCheck QCheck_alcotest String Tensor Tir
