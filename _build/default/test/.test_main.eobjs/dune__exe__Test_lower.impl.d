test/test_lower.ml: Alcotest Array Cfdlang Dense Filename Helmholtz List Loopir Lower Poly Printf QCheck QCheck_alcotest Result Shape String Sys Tensor Tir Unix
