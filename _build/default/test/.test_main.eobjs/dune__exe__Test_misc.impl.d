test/test_misc.ml: Alcotest Array Format Fpga_platform Loopir String Sysgen
