test/test_poly.ml: Aff Aff_map Alcotest Array Basic_set Fun Lex List Poly Printf QCheck QCheck_alcotest Rel Set Space Stdlib
