test/test_sem.ml: Alcotest Array Cfd_core Dense Float List Ops Printf Sem Shape Tensor Tir
