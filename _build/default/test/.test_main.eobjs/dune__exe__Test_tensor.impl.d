test/test_tensor.ml: Alcotest Dense Float Hashtbl Helmholtz List Ops Printf QCheck QCheck_alcotest Shape Tensor
