test/test_tir.ml: Alcotest Array Ast Cfdlang Check Dense Eval Helmholtz List Printf QCheck QCheck_alcotest Result Tensor Tir
