test/test_unroll_plm.ml: Alcotest Cfd_core Cfdlang Fpga_platform Hls List Mnemosyne String Sysgen
