(* Tests for the artifact emitters: host C driver, HDL, and the
   Fortran/C++ integration handles. The host driver is additionally
   compiled with gcc against a mock MMIO device and executed, comparing
   its transfers with the functional simulator's view. *)

let case name f = Alcotest.test_case name `Quick f

let system_and_result ?(force_k = 2) ?(force_m = 4) () =
  let options =
    { Cfd_core.Compile.default_options with Cfd_core.Compile.kernel_name = "helm" }
  in
  let r = Cfd_core.Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p:4 ()) in
  let sys = Cfd_core.Compile.build_system ~force_k ~force_m ~n_elements:8 r in
  Sysgen.System.validate sys;
  (r, sys)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  scan 0

let check_contains what text needles =
  List.iter
    (fun n ->
      if not (contains text n) then
        Alcotest.failf "%s missing %S" what n)
    needles

(* ---------- host driver ---------- *)

let test_host_header () =
  let _, sys = system_and_result () in
  let h = Sysgen.Host_emit.c_header ~kernel_name:"helm" sys in
  check_contains "header" h
    [
      "int helm_run(";
      "const double *S";
      "const double *D";
      "const double *u";
      "double *v";
      "size_t n_elements";
      "#ifndef HELM_HOST_H";
    ]

let test_host_source_structure () =
  let _, sys = system_and_result () in
  let c = Sysgen.Host_emit.c_host_source ~kernel_name:"helm" sys in
  check_contains "host source" c
    [
      "#define AXI_CTRL_BASE";
      "#define PLM_SET0_BASE";
      "CTRL_REG_START";
      "wait_done()";
      "for (int round = 0; round < 2; ++round)"; (* batch m/k = 2 *)
      "memcpy";
      "blocks = (n_elements + 4 - 1) / 4";
    ]

let test_host_source_offsets () =
  (* with sharing, v comes back from the shared D/v buffer at offset 0
     and S is written at its stacked offset *)
  let r, sys = system_and_result () in
  let storage = r.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage in
  let _, s_off = List.assoc "S" storage in
  Alcotest.(check bool) "S stacked above D/v" true (s_off > 0);
  let c = Sysgen.Host_emit.c_host_source ~kernel_name:"helm" sys in
  check_contains "offsets" c
    [ Printf.sprintf "+ %d /* " (8 * s_off) ]

let test_host_compiles_and_runs () =
  (* Compile the generated driver with gcc against a mock fpga_mmio and a
     software model of the accelerator (the emitted kernel C operating on
     the mapped PLM images), then compare with the reference operator. *)
  let p = 4 in
  let r, sys = system_and_result ~force_k:1 ~force_m:1 () in
  let kernel_c = r.Cfd_core.Compile.c_source in
  let host_c = Sysgen.Host_emit.c_host_source ~kernel_name:"helm" sys in
  let header = Sysgen.Host_emit.c_header ~kernel_name:"helm" sys in
  let dir = Filename.temp_file "cfdhost" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "kernel.c" kernel_c;
  write "host.c" host_c;
  write "helm.h" header;
  let inputs = Tensor.Helmholtz.make_inputs ~seed:4 p in
  let dump name t =
    let a = Tensor.Dense.to_array t in
    Printf.sprintf "double %s[%d] = {%s};" name (Array.length a)
      (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.17g") a)))
  in
  (* the mock: 2 MiB of MMIO backing store; a fake status poll that runs
     the kernel on PLM set 0's images via the same buffer offsets the
     driver used. The kernel signature orders buffers as in the proc
     params. *)
  let proc = r.Cfd_core.Compile.proc in
  let buffer_args =
    String.concat ", "
      (List.map
         (fun (prm : Loopir.Prog.param) ->
           Printf.sprintf "(double *)(mmio + PLMBASE + BUF_%s_OFF)"
             (String.uppercase_ascii prm.Loopir.Prog.name))
         proc.Loopir.Prog.params)
  in
  let unit_offsets =
    let off = ref 0 in
    List.map
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        let base = !off in
        off := !off + (8 * u.Mnemosyne.Memgen.unit_words);
        (u.Mnemosyne.Memgen.unit_name, base))
      sys.Sysgen.System.memory.Mnemosyne.Memgen.units
  in
  let plm_base =
    match
      List.find_opt (fun (n, _, _) -> n = "plm_set0") sys.Sysgen.System.address_map
    with
    | Some (_, base, _) -> base
    | None -> Alcotest.fail "no plm_set0 region"
  in
  let n3 = p * p * p in
  let main_c =
    String.concat "\n"
      [
        "#include <stdio.h>";
        "#include <stdint.h>";
        "#include <stddef.h>";
        String.concat "\n"
          (List.map
             (fun (n, b) ->
               Printf.sprintf "#define BUF_%s_OFF %d" (String.uppercase_ascii n) b)
             unit_offsets);
        Printf.sprintf "#define PLMBASE %d" plm_base;
        "static uint8_t backing[1 << 21];";
        "volatile uint8_t *fpga_mmio = backing;";
        dump "S" inputs.Tensor.Helmholtz.s;
        dump "D" inputs.Tensor.Helmholtz.d;
        dump "u" inputs.Tensor.Helmholtz.u;
        Loopir.Emit.c_prototype proc;
        "/* intercept the status poll: run the kernel, then report done */";
        "unsigned int mock_status(void) {";
        "  uint8_t *mmio = backing;";
        Printf.sprintf "  helm(%s);" buffer_args;
        "  return 1u;";
        "}";
        Sysgen.Host_emit.c_header ~kernel_name:"helm" sys;
        "int main(void) {";
        Printf.sprintf "  double v[%d];" n3;
        "  helm_run(S, D, u, v, 1);";
        Printf.sprintf "  for (int i = 0; i < %d; ++i) printf(\"%%.17g\\n\", v[i]);" n3;
        "  return 0;";
        "}";
      ]
  in
  write "main.c" main_c;
  (* patch the host driver: replace its wait_done poll with the mock *)
  let patched =
    Str.global_replace (Str.regexp_string "read_reg(AXI_CTRL_BASE + CTRL_REG_STATUS) & 1u")
      "mock_status() & 1u" host_c
  in
  write "host.c"
    ("extern unsigned int mock_status(void);\n" ^ patched);
  let exe = Filename.concat dir "host_test" in
  let cmd =
    Printf.sprintf "gcc -std=c99 -O1 -o %s %s/main.c %s/host.c %s/kernel.c 2>%s/err"
      exe dir dir dir dir
  in
  if Sys.command cmd <> 0 then begin
    let ic = open_in (Filename.concat dir "err") in
    let err = really_input_string ic (min 600 (in_channel_length ic)) in
    close_in ic;
    Alcotest.failf "gcc failed:\n%s" err
  end;
  let ic = Unix.open_process_in exe in
  let values = Array.init (p * p * p) (fun _ -> float_of_string (input_line ic)) in
  ignore (Unix.close_process_in ic);
  let got = Tensor.Dense.of_array (Tensor.Shape.cube 3 p) values in
  let expected = Tensor.Helmholtz.direct inputs in
  Alcotest.(check bool) "host driver round-trip" true
    (Tensor.Dense.equal ~tol:1e-8 got expected)

(* ---------- HDL ---------- *)

let test_controller_verilog () =
  let v = Sysgen.Hdl_emit.controller_verilog ~k:4 ~batch:2 in
  check_contains "controller" v
    [
      "module axi_lite_peripheral";
      "parameter K = 4";
      "parameter BATCH = 2";
      "ap_start";
      "ap_done";
      "batch_index";
      "S_RUNNING";
      "endmodule";
    ]

let test_top_verilog () =
  let _, sys = system_and_result () in
  let v = Sysgen.Hdl_emit.top_verilog ~kernel_name:"helm" sys in
  check_contains "top" v
    [
      "module helm_system";
      "axi_lite_peripheral #(.K(2), .BATCH(2))";
      "helm acc0";
      "helm acc1";
      "plm_set0_plm0";
      "plm_set3_plm0";
      "batch_index";
      "endmodule";
    ]

(* ---------- bindings ---------- *)

let test_cpp_header () =
  let _, sys = system_and_result () in
  let h = Sysgen.Bindings_emit.cpp_header ~kernel_name:"helm" sys in
  check_contains "cpp" h
    [ "extern \"C\""; "namespace cfdlang"; "helm_run("; "std::size_t n_elements" ]

let test_fortran_module () =
  let _, sys = system_and_result () in
  let f = Sysgen.Bindings_emit.fortran_module ~kernel_name:"helm" sys in
  check_contains "fortran" f
    [
      "module helm_accel";
      "use iso_c_binding";
      "bind(c, name=\"helm_run\")";
      "real(c_double), intent(in) :: S(16, *)";
      "real(c_double), intent(out) :: v(64, *)";
      "integer(c_size_t), value :: n_elements";
    ]

let suite =
  [
    ( "emit.host",
      [
        case "header" test_host_header;
        case "source structure" test_host_source_structure;
        case "storage offsets" test_host_source_offsets;
        case "gcc round-trip" test_host_compiles_and_runs;
      ] );
    ( "emit.hdl",
      [
        case "controller verilog" test_controller_verilog;
        case "top-level verilog" test_top_verilog;
      ] );
    ( "emit.bindings",
      [ case "c++ header" test_cpp_header; case "fortran module" test_fortran_module ] );
  ]
