(* Tests for the hardware-generation side: fpga_platform, hls, mnemosyne,
   sysgen, sim, and the cfd_core driver. *)

let case name f = Alcotest.test_case name `Quick f

open Fpga_platform

(* ---------- fpga_platform ---------- *)

let test_resource_arith () =
  let a = Resource.make ~lut:10 ~ff:20 ~dsp:3 ~bram18:4 in
  let b = Resource.make ~lut:1 ~ff:2 ~dsp:0 ~bram18:1 in
  let s = Resource.add a (Resource.scale 2 b) in
  Alcotest.(check int) "lut" 12 s.Resource.lut;
  Alcotest.(check int) "bram" 6 s.Resource.bram18;
  Alcotest.(check bool) "fits" true (Resource.fits b ~within:a);
  Alcotest.(check bool) "not fits" false (Resource.fits (Resource.scale 5 a) ~within:a)

let test_resource_utilization () =
  let cap = Board.zcu106.Board.capacity in
  let a = Resource.make ~lut:11318 ~ff:9523 ~dsp:15 ~bram18:0 in
  match Resource.utilization a ~capacity:cap with
  | [ (_, lut); (_, ff); (_, dsp); _ ] ->
      (* Table I row m = 1: 4.9%, 2.1%, 0.9% *)
      Alcotest.(check (float 0.05)) "lut pct" 4.9 lut;
      Alcotest.(check (float 0.05)) "ff pct" 2.1 ff;
      Alcotest.(check (float 0.05)) "dsp pct" 0.9 dsp
  | _ -> Alcotest.fail "unexpected utilization shape"

let test_bram_counts () =
  (* the DESIGN.md allocation rules *)
  Alcotest.(check int) "11^3 doubles" 6 (Bram.count_array ~words:1331);
  Alcotest.(check int) "11^2 doubles (packed)" 1 (Bram.count_array ~words:121);
  Alcotest.(check int) "exactly one primitive" 1 (Bram.count_array ~words:288);
  Alcotest.(check int) "one word over" 2 (Bram.count_array ~words:289);
  Alcotest.(check int) "512 words" 2 (Bram.count_array ~words:512);
  Alcotest.(check int) "zero" 0 (Bram.count ~word_bits:64 ~words:0)

let test_boards () =
  Alcotest.(check int) "zcu106 bram18" 624 Board.zcu106.Board.capacity.Resource.bram18;
  Alcotest.(check int) "zcu106 fmax" 200 Board.zcu106.Board.fmax_mhz;
  Alcotest.(check bool) "zcu102 bigger" true
    (Board.zcu106.Board.capacity.Resource.lut < Board.zcu102.Board.capacity.Resource.lut)

(* ---------- compile helper ---------- *)

let compile ?(p = 11) ?(options = Cfd_core.Compile.default_options) () =
  Cfd_core.Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p ())

let no_sharing_options =
  { Cfd_core.Compile.default_options with Cfd_core.Compile.sharing = false }

(* ---------- hls model ---------- *)

let test_hls_kernel_calibration () =
  (* Section VI: "around 2,314 LUTs, 2,999 FFs, and 15 DSPs" *)
  let r = compile () in
  let res = r.Cfd_core.Compile.hls.Hls.Model.resources in
  Alcotest.(check int) "lut" 2314 res.Resource.lut;
  Alcotest.(check int) "ff" 2999 res.Resource.ff;
  Alcotest.(check int) "dsp" 15 res.Resource.dsp;
  Alcotest.(check int) "no internal bram (decoupled)" 0 res.Resource.bram18

let test_hls_latency_scales () =
  let lat p =
    (compile ~p ()).Cfd_core.Compile.hls.Hls.Model.latency_cycles
  in
  Alcotest.(check bool) "monotone in p" true (lat 4 < lat 8 && lat 8 < lat 11);
  (* factorized stages are O(p^4): going from p=8 to p=11 grows by less
     than the O(p^6) direct ratio *)
  let direct p =
    let options = { Cfd_core.Compile.default_options with Cfd_core.Compile.factorize = false } in
    (compile ~p ~options ()).Cfd_core.Compile.hls.Hls.Model.latency_cycles
  in
  Alcotest.(check bool) "factorized much faster at p=11" true
    (lat 11 * 5 < direct 11)

let test_hls_internal_brams () =
  let options =
    { Cfd_core.Compile.default_options with Cfd_core.Compile.decoupled = false }
  in
  let r = compile ~options () in
  let res = r.Cfd_core.Compile.hls.Hls.Model.resources in
  (* t and r stay inside (transients ping-pong onto them): 2 buffers x 6
     BRAM18 x 2 (HLS default dual-port binding) = 24, matching the paper's
     24-BRAM accelerator. *)
  Alcotest.(check int) "internal brams" 24 res.Resource.bram18;
  Alcotest.(check int) "locals" 2 (List.length r.Cfd_core.Compile.proc.Loopir.Prog.locals)

let test_hls_ports () =
  let r = compile () in
  let ports = r.Cfd_core.Compile.hls.Hls.Model.ports in
  (* sharing architecture: 3 PLM buffers *)
  Alcotest.(check int) "three shared buffers" 3 (List.length ports)

let test_hls_ops_shared () =
  let r = compile () in
  let ops = r.Cfd_core.Compile.hls.Hls.Model.ops_shared in
  Alcotest.(check bool) "one mul one add" true
    (List.mem (Hls.Op_library.Dmul, 1) ops && List.mem (Hls.Op_library.Dadd, 1) ops)

let test_hls_ii_monotone () =
  let lat ii =
    let options =
      { Cfd_core.Compile.default_options with Cfd_core.Compile.pipeline_ii = Some ii }
    in
    (compile ~options ()).Cfd_core.Compile.hls.Hls.Model.latency_cycles
  in
  Alcotest.(check bool) "latency grows with II" true (lat 1 < lat 2 && lat 2 < lat 7);
  (* the reduction loops dominate, so the II=7/II=1 ratio falls between
     the loop-only bound (7x) and no effect (1x) *)
  Alcotest.(check bool) "plausible II=7 penalty" true
    (lat 7 > 3 * lat 1 && lat 7 < 7 * lat 1)

let test_hls_direct_more_dsp () =
  let options = { Cfd_core.Compile.default_options with Cfd_core.Compile.factorize = false } in
  let direct = compile ~options () in
  let fact = compile () in
  Alcotest.(check bool) "direct kernel needs more DSPs" true
    (direct.Cfd_core.Compile.hls.Hls.Model.resources.Resource.dsp
    > fact.Cfd_core.Compile.hls.Hls.Model.resources.Resource.dsp)

(* ---------- mnemosyne ---------- *)

let test_mnemosyne_no_sharing_31 () =
  let r = compile ~options:no_sharing_options () in
  Alcotest.(check int) "31 BRAM18 per kernel" 31
    r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams;
  Alcotest.(check int) "six PLM units" 6
    (List.length r.Cfd_core.Compile.memory.Mnemosyne.Memgen.units)

let test_mnemosyne_sharing_18 () =
  let r = compile () in
  Alcotest.(check int) "18 BRAM18 per kernel" 18
    r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams;
  Alcotest.(check int) "three PLM units" 3
    (List.length r.Cfd_core.Compile.memory.Mnemosyne.Memgen.units)

let test_mnemosyne_transient_pingpong () =
  (* the four factorization transients alias the declared locals t and r *)
  let r = compile ~options:no_sharing_options () in
  let storage = r.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage in
  let buffer name = fst (List.assoc name storage) in
  let t_buf = buffer "t" in
  Alcotest.(check string) "%f0 with t" t_buf (buffer "%f0");
  Alcotest.(check string) "%f2 with t" t_buf (buffer "%f2");
  let r_buf = buffer "r" in
  Alcotest.(check string) "%f1 with r" r_buf (buffer "%f1");
  Alcotest.(check string) "%f3 with r" r_buf (buffer "%f3");
  Alcotest.(check bool) "t and r distinct" true (t_buf <> r_buf)

let test_mnemosyne_sharing_structure () =
  (* {D,v}+S stacked; {u,r}; {t} — the Figure-5 exploitation *)
  let r = compile () in
  let storage = r.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage in
  let place name = List.assoc name storage in
  Alcotest.(check bool) "D and v alias" true (place "D" = place "v");
  Alcotest.(check bool) "u and r alias" true (place "u" = place "r");
  let s_buf, s_off = place "S" in
  Alcotest.(check string) "S stacked with D/v" (fst (place "D")) s_buf;
  Alcotest.(check bool) "S at distinct offset" true (s_off > 0)

let test_mnemosyne_ports () =
  let r = compile () in
  (* factorized kernel: every array accessed at most once per instance +
     the accumulator write: within dual-port budget, no duplication *)
  List.iter
    (fun (u : Mnemosyne.Memgen.plm_unit) ->
      Alcotest.(check int) ("copies " ^ u.Mnemosyne.Memgen.unit_name) 1
        u.Mnemosyne.Memgen.copies)
    r.Cfd_core.Compile.memory.Mnemosyne.Memgen.units

let test_mnemosyne_direct_kernel_duplicates_s () =
  (* The direct rank-6 contraction reads S three times per MAC: S needs
     more than two ports, so its banks are duplicated. *)
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let kernel = Tir.Builder.build ~name:"direct" checked in
  let program = Lower.Flow.of_kernel ~name:"direct" kernel in
  Alcotest.(check int) "S needs 3 ports" 3
    (Mnemosyne.Memgen.read_ports_needed program "S");
  let schedule = Lower.Reschedule.compute program in
  let arch = Mnemosyne.Memgen.generate ~mode:Mnemosyne.Memgen.No_sharing program schedule in
  let s_unit =
    List.find
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        List.exists
          (fun (s : Mnemosyne.Memgen.slot) -> List.mem "S" s.Mnemosyne.Memgen.residents)
          u.Mnemosyne.Memgen.slots)
      arch.Mnemosyne.Memgen.units
  in
  Alcotest.(check int) "S duplicated" 2 s_unit.Mnemosyne.Memgen.copies

let test_mnemosyne_metadata () =
  let r = compile () in
  let md = r.Cfd_core.Compile.mnemosyne_metadata in
  let has s =
    let len_n = String.length s and len_c = String.length md in
    let rec scan i = i + len_n <= len_c && (String.sub md i len_n = s || scan (i + 1)) in
    Alcotest.(check bool) ("metadata contains " ^ s) true (scan 0)
  in
  has "[arrays]";
  has "[compatibilities]";
  has "S words=121";
  has "v words=1331 width=64 kind=output"

let test_mnemosyne_interface_only () =
  let options =
    { Cfd_core.Compile.default_options with Cfd_core.Compile.decoupled = false }
  in
  let r = compile ~options () in
  let mem = r.Cfd_core.Compile.memory in
  (* only interface arrays in PLM units *)
  List.iter
    (fun (u : Mnemosyne.Memgen.plm_unit) ->
      List.iter
        (fun (s : Mnemosyne.Memgen.slot) ->
          List.iter
            (fun m ->
              Alcotest.(check bool) (m ^ " is interface") true
                (List.mem m [ "S"; "D"; "u"; "v" ]))
            s.Mnemosyne.Memgen.residents)
        u.Mnemosyne.Memgen.slots)
    mem.Mnemosyne.Memgen.units;
  (* total system BRAM (12 external + 24 internal = 36) exceeds the
     decoupled+shared 18: the decoupling claim of Section VI *)
  let total =
    mem.Mnemosyne.Memgen.total_brams
    + r.Cfd_core.Compile.hls.Hls.Model.resources.Resource.bram18
  in
  Alcotest.(check bool) "internal variant worse than shared 18" true (total > 18);
  Alcotest.(check int) "internal variant total" 36 total

(* ---------- replicate / Eq. (3) ---------- *)

let kernel_resources = Resource.make ~lut:2314 ~ff:2999 ~dsp:15 ~bram18:0

let test_replicate_sharing_reaches_16 () =
  let s = Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:18 () in
  Alcotest.(check int) "m" 16 s.Sysgen.Replicate.m;
  Alcotest.(check int) "k" 16 s.Sysgen.Replicate.k

let test_replicate_no_sharing_caps_at_8 () =
  let s = Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:31 () in
  Alcotest.(check int) "m" 8 s.Sysgen.Replicate.m

let test_replicate_forced_batch () =
  let s =
    Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:18 ~force_k:4
      ~force_m:16 ()
  in
  Alcotest.(check int) "batch" 4 s.Sysgen.Replicate.batch

let test_replicate_rejects_bad_shapes () =
  let expect_infeasible f =
    match f () with
    | _ -> Alcotest.fail "expected Infeasible"
    | exception Sysgen.Replicate.Infeasible _ -> ()
  in
  expect_infeasible (fun () ->
      Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:18 ~force_k:3
        ~force_m:16 ());
  expect_infeasible (fun () ->
      Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:18 ~force_k:4
        ~force_m:12 ());
  expect_infeasible (fun () ->
      Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:18 ~force_k:8
        ~force_m:4 ());
  expect_infeasible (fun () ->
      Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:31 ~force_k:16 ())

let test_replicate_dsp_bound () =
  (* a DSP-hungry kernel is limited by DSPs, not BRAM *)
  let fat = Resource.make ~lut:100 ~ff:100 ~dsp:1000 ~bram18:0 in
  let s = Sysgen.Replicate.solve ~kernel:fat ~plm_brams:1 () in
  Alcotest.(check int) "dsp-bound" 1 s.Sysgen.Replicate.m

let test_replicate_infeasible_board () =
  let config =
    { Sysgen.Replicate.default_config with Sysgen.Replicate.board = Board.small_test_board }
  in
  match
    Sysgen.Replicate.solve ~config
      ~kernel:(Resource.make ~lut:50000 ~ff:0 ~dsp:0 ~bram18:0)
      ~plm_brams:1 ()
  with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Sysgen.Replicate.Infeasible _ -> ()

let test_table1_lut_model () =
  (* Table I totals (sharing rows) reproduced within ~1%:
     LUT = reserve + m*(kernel+glue) *)
  let expected = [ (1, 11292); (2, 15572); (4, 24480); (8, 42141); (16, 77235) ] in
  List.iter
    (fun (m, paper) ->
      let s =
        Sysgen.Replicate.solve ~kernel:kernel_resources ~plm_brams:18 ~force_k:m ()
      in
      let lut = s.Sysgen.Replicate.used.Resource.lut in
      let err = Float.abs (float_of_int (lut - paper)) /. float_of_int paper in
      if err > 0.011 then
        Alcotest.failf "m=%d: model %d vs paper %d (%.1f%%)" m lut paper (100. *. err))
    expected

(* ---------- axi controller ---------- *)

let test_axi_round_basic () =
  let ctrl = Sysgen.Axi_ctrl.create ~k:4 ~batch:1 in
  let cycles = Sysgen.Axi_ctrl.run_round ctrl ~latencies:(Array.make 4 100) in
  Alcotest.(check int) "latency + handshake" 102 cycles;
  Alcotest.(check bool) "idle after round" false (Sysgen.Axi_ctrl.busy ctrl)

let test_axi_round_straggler () =
  let ctrl = Sysgen.Axi_ctrl.create ~k:3 ~batch:1 in
  let cycles = Sysgen.Axi_ctrl.run_round ctrl ~latencies:[| 10; 50; 20 |] in
  Alcotest.(check int) "bound by slowest" 52 cycles

let test_axi_batch_counter () =
  let ctrl = Sysgen.Axi_ctrl.create ~k:2 ~batch:4 in
  for expected = 0 to 3 do
    Sysgen.Axi_ctrl.write_start ctrl;
    let ready = [| true; true |] in
    let out1 = Sysgen.Axi_ctrl.step ctrl ~ready ~done_:[| false; false |] in
    Alcotest.(check bool) "broadcast" true out1.Sysgen.Axi_ctrl.ap_start_broadcast;
    Alcotest.(check int) "batch index" expected out1.Sysgen.Axi_ctrl.batch_index;
    (* dones arrive out of order *)
    let out2 = Sysgen.Axi_ctrl.step ctrl ~ready ~done_:[| false; true |] in
    Alcotest.(check bool) "no irq yet" false out2.Sysgen.Axi_ctrl.irq;
    let out3 = Sysgen.Axi_ctrl.step ctrl ~ready ~done_:[| true; false |] in
    Alcotest.(check bool) "irq on last done" true out3.Sysgen.Axi_ctrl.irq
  done;
  (* wrapped around *)
  Sysgen.Axi_ctrl.write_start ctrl;
  let out = Sysgen.Axi_ctrl.step ctrl ~ready:[| true; true |] ~done_:[| false; false |] in
  Alcotest.(check int) "wrapped" 0 out.Sysgen.Axi_ctrl.batch_index

let test_axi_protocol_errors () =
  let ctrl = Sysgen.Axi_ctrl.create ~k:2 ~batch:1 in
  Sysgen.Axi_ctrl.write_start ctrl;
  (match Sysgen.Axi_ctrl.write_start ctrl with
  | _ -> Alcotest.fail "expected Protocol_error"
  | exception Sysgen.Axi_ctrl.Protocol_error _ -> ());
  match Sysgen.Axi_ctrl.step ctrl ~ready:[| true |] ~done_:[| false |] with
  | _ -> Alcotest.fail "expected Protocol_error (width)"
  | exception Sysgen.Axi_ctrl.Protocol_error _ -> ()

let test_axi_waits_for_ready () =
  let ctrl = Sysgen.Axi_ctrl.create ~k:2 ~batch:1 in
  Sysgen.Axi_ctrl.write_start ctrl;
  let out = Sysgen.Axi_ctrl.step ctrl ~ready:[| true; false |] ~done_:[| false; false |] in
  Alcotest.(check bool) "held" false out.Sysgen.Axi_ctrl.ap_start_broadcast;
  let out = Sysgen.Axi_ctrl.step ctrl ~ready:[| true; true |] ~done_:[| false; false |] in
  Alcotest.(check bool) "fired" true out.Sysgen.Axi_ctrl.ap_start_broadcast

(* ---------- system generation ---------- *)

let test_system_structure () =
  let r = compile () in
  let sys = Cfd_core.Compile.build_system ~n_elements:50000 r in
  Sysgen.System.validate sys;
  Alcotest.(check int) "16 kernels" 16 sys.Sysgen.System.solution.Sysgen.Replicate.k;
  (* instances: ctrl + dma + 16 accs + 16 plm sets *)
  Alcotest.(check int) "instances" 34 (List.length sys.Sysgen.System.instances);
  Alcotest.(check int) "host blocks" 3125 sys.Sysgen.System.host.Sysgen.System.block_iterations

let test_system_batch_connections () =
  let r = compile () in
  let sys = Cfd_core.Compile.build_system ~force_k:2 ~force_m:8 ~n_elements:64 r in
  Sysgen.System.validate sys;
  let acc0 =
    List.find (fun (i : Sysgen.System.instance) -> i.Sysgen.System.inst_name = "acc0")
      sys.Sysgen.System.instances
  in
  (* Figure 7c with k=2, m=8 (batch 4): acc0 serves the contiguous block
     plm_set0..3, acc1 serves plm_set4..7 *)
  Alcotest.(check (list string)) "contiguous block assignment"
    [ "plm_set0"; "plm_set1"; "plm_set2"; "plm_set3" ]
    acc0.Sysgen.System.connects_to

let test_system_transfers () =
  let r = compile () in
  let sys = Cfd_core.Compile.build_system ~n_elements:100 r in
  let host = sys.Sysgen.System.host in
  Alcotest.(check int) "in bytes: S+D+u" ((121 + 1331 + 1331) * 8)
    host.Sysgen.System.bytes_in_per_element;
  Alcotest.(check int) "out bytes: v" (1331 * 8) host.Sysgen.System.bytes_out_per_element;
  (* v goes back from the shared D/v buffer at offset 0 *)
  match host.Sysgen.System.per_element_out with
  | [ tr ] ->
      Alcotest.(check string) "array" "v" tr.Sysgen.System.array;
      Alcotest.(check int) "offset" 0 tr.Sysgen.System.offset
  | _ -> Alcotest.fail "expected one output transfer"

let test_system_address_alignment () =
  let r = compile () in
  let sys = Cfd_core.Compile.build_system ~n_elements:64 r in
  List.iter
    (fun (_, base, size) ->
      Alcotest.(check int) "power-of-two aligned" 0 (base mod size))
    sys.Sysgen.System.address_map

(* ---------- performance simulation ---------- *)

let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board

let hw_result ?(n = 50000) ?(options = Cfd_core.Compile.default_options) k =
  let r = compile ~options () in
  let sys = Cfd_core.Compile.build_system ~force_k:k ~n_elements:n r in
  Sim.Perf.run_hw ~system:sys ~board

let test_perf_paper_headlines () =
  (* the Section-VI headline numbers, within 2% *)
  let hw1 = hw_result 1 in
  let hw8 = hw_result 8 in
  let hw16 = hw_result 16 in
  let close msg expected got =
    if Float.abs (got -. expected) /. expected > 0.02 then
      Alcotest.failf "%s: expected ~%.2f, got %.2f" msg expected got
  in
  close "total speedup k=16" 12.58 (Sim.Perf.total_speedup ~baseline:hw1 hw16);
  close "total speedup k=8" 7.09 (Sim.Perf.total_speedup ~baseline:hw1 hw8);
  let sw =
    Sim.Perf.run_sw ~variant:`Reference
      ~flops_per_element:(Tensor.Helmholtz.flops_factorized 11)
      ~n_elements:50000 ~board
  in
  close "vs ARM k=16" 8.62 (Sim.Perf.speedup_vs_sw ~sw hw16);
  let k1_ratio = Sim.Perf.speedup_vs_sw ~sw hw1 in
  Alcotest.(check bool) "k=1 is ~30% slower than SW" true
    (k1_ratio > 0.62 && k1_ratio < 0.78)

let test_perf_accel_speedup_near_ideal () =
  let hw1 = hw_result 1 in
  List.iter
    (fun k ->
      let s = Sim.Perf.accel_speedup ~baseline:hw1 (hw_result k) in
      Alcotest.(check bool)
        (Printf.sprintf "accel speedup k=%d near ideal" k)
        true
        (s > 0.98 *. float_of_int k && s <= 1.001 *. float_of_int k))
    [ 2; 4; 8; 16 ]

let test_perf_sw_hls_code_slower () =
  let flops = Tensor.Helmholtz.flops_factorized 11 in
  let sw = Sim.Perf.run_sw ~variant:`Reference ~flops_per_element:flops ~n_elements:100 ~board in
  let hls_c = Sim.Perf.run_sw ~variant:`Hls_code ~flops_per_element:flops ~n_elements:100 ~board in
  Alcotest.(check bool) "HLS C slower on CPU" true
    (hls_c.Sim.Perf.seconds > sw.Sim.Perf.seconds)

let test_perf_batching_no_improvement () =
  (* Section VI: k < m variants do not improve end-to-end time (transfers
     are not amortized by larger blocks in the current implementation). *)
  let r = compile () in
  let t44 =
    Sim.Perf.run_hw ~system:(Cfd_core.Compile.build_system ~force_k:4 ~force_m:4 ~n_elements:4096 r) ~board
  in
  let t416 =
    Sim.Perf.run_hw ~system:(Cfd_core.Compile.build_system ~force_k:4 ~force_m:16 ~n_elements:4096 r) ~board
  in
  Alcotest.(check bool) "batching does not help" true
    (t416.Sim.Perf.total_seconds >= 0.99 *. t44.Sim.Perf.total_seconds)

let test_perf_transfer_model () =
  let cycles = Sim.Perf.transfer_cycles ~bytes:16000 ~board in
  (* 1000 ideal cycles at 16 B/cycle, divided by the calibrated efficiency *)
  Alcotest.(check bool) "efficiency applied" true (cycles > 1000 && cycles < 2500)

(* ---------- cfd_core driver ---------- *)

let test_compile_verify_option_matrix () =
  List.iter
    (fun (factorize, decoupled, sharing) ->
      let options =
        {
          Cfd_core.Compile.default_options with
          Cfd_core.Compile.factorize;
          decoupled;
          sharing;
        }
      in
      let r = compile ~p:5 ~options () in
      Alcotest.(check bool)
        (Printf.sprintf "verify f=%b d=%b s=%b" factorize decoupled sharing)
        true
        (Cfd_core.Compile.verify ~seed:11 r))
    [
      (true, true, true);
      (true, true, false);
      (true, false, true);
      (true, false, false);
      (false, true, true);
      (false, true, false);
      (false, false, false);
    ]

let test_compile_source () =
  match
    Cfd_core.Compile.compile_source
      "var input a : [4]\nvar output b : [4]\nb = a + a"
  with
  | Ok r -> Alcotest.(check bool) "verifies" true (Cfd_core.Compile.verify r)
  | Error e -> Alcotest.failf "unexpected error: %s" e

let test_compile_source_errors () =
  (match Cfd_core.Compile.compile_source "var input a : [4" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  match Cfd_core.Compile.compile_source "var input a : [4]\nvar output b : [5]\nb = a" with
  | Ok _ -> Alcotest.fail "expected type error"
  | Error _ -> ()

let test_compile_c_source_stable () =
  let r = compile ~p:3 () in
  let has s =
    let c = r.Cfd_core.Compile.c_source in
    let len_n = String.length s and len_c = String.length c in
    let rec scan i = i + len_n <= len_c && (String.sub c i len_n = s || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "header" true (has "Generated by cfd_accel");
  Alcotest.(check bool) "function" true (has "void kernel(");
  Alcotest.(check bool) "pipeline pragma" true (has "#pragma HLS pipeline")

let test_compile_interpolation_program () =
  let r =
    Cfd_core.Compile.compile (Cfdlang.Ast.interpolation ~p:6 ())
  in
  Alcotest.(check bool) "interpolation verifies" true (Cfd_core.Compile.verify r)

let suite =
  [
    ( "platform",
      [
        case "resource arithmetic" test_resource_arith;
        case "table-I percentages" test_resource_utilization;
        case "bram counts" test_bram_counts;
        case "boards" test_boards;
      ] );
    ( "hls",
      [
        case "kernel calibration (Section VI)" test_hls_kernel_calibration;
        case "latency scaling" test_hls_latency_scales;
        case "internal BRAMs" test_hls_internal_brams;
        case "ports" test_hls_ports;
        case "operator sharing" test_hls_ops_shared;
        case "II monotone" test_hls_ii_monotone;
        case "direct kernel DSP" test_hls_direct_more_dsp;
      ] );
    ( "mnemosyne",
      [
        case "no sharing: 31 BRAM" test_mnemosyne_no_sharing_31;
        case "sharing: 18 BRAM" test_mnemosyne_sharing_18;
        case "transient ping-pong" test_mnemosyne_transient_pingpong;
        case "sharing structure (fig 5)" test_mnemosyne_sharing_structure;
        case "no duplication (factorized)" test_mnemosyne_ports;
        case "S duplication (direct)" test_mnemosyne_direct_kernel_duplicates_s;
        case "metadata" test_mnemosyne_metadata;
        case "interface-only scope" test_mnemosyne_interface_only;
      ] );
    ( "sysgen.replicate",
      [
        case "sharing reaches 16" test_replicate_sharing_reaches_16;
        case "no sharing caps at 8" test_replicate_no_sharing_caps_at_8;
        case "forced batch" test_replicate_forced_batch;
        case "bad shapes rejected" test_replicate_rejects_bad_shapes;
        case "dsp bound" test_replicate_dsp_bound;
        case "infeasible board" test_replicate_infeasible_board;
        case "table-I LUT model" test_table1_lut_model;
      ] );
    ( "sysgen.axi_ctrl",
      [
        case "basic round" test_axi_round_basic;
        case "straggler" test_axi_round_straggler;
        case "batch counter" test_axi_batch_counter;
        case "protocol errors" test_axi_protocol_errors;
        case "waits for ready" test_axi_waits_for_ready;
      ] );
    ( "sysgen.system",
      [
        case "structure" test_system_structure;
        case "batch connections (fig 7c)" test_system_batch_connections;
        case "transfers" test_system_transfers;
        case "address alignment" test_system_address_alignment;
      ] );
    ( "sim",
      [
        case "paper headline numbers" test_perf_paper_headlines;
        case "accel speedup near ideal" test_perf_accel_speedup_near_ideal;
        case "SW HLS code slower" test_perf_sw_hls_code_slower;
        case "k<m batching no improvement" test_perf_batching_no_improvement;
        case "transfer model" test_perf_transfer_model;
      ] );
    ( "cfd_core",
      [
        case "verify option matrix" test_compile_verify_option_matrix;
        case "compile source" test_compile_source;
        case "compile source errors" test_compile_source_errors;
        case "C source contents" test_compile_c_source_stable;
        case "interpolation program" test_compile_interpolation_program;
      ] );
  ]
