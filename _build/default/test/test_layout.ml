(* Tests for lib/lower/layout (Section IV-D layout expressions and
   partitioning maps) and lib/liveness/sharing (explicit merges). *)

open Tensor

let case name f = Alcotest.test_case name `Quick f

let helm_program ?(p = 4) () =
  let checked = Cfdlang.Check.check_exn (Cfdlang.Ast.inverse_helmholtz ~p ()) in
  Lower.Flow.of_kernel ~name:"helm" (Tir.Builder.build ~name:"helm" checked)

(* Compile a transformed program and check v against the reference. *)
let check_program ?(p = 4) ?(input_bindings = None) program =
  let schedule = Lower.Reschedule.compute program in
  Alcotest.(check bool) "schedule legal" true (Lower.Schedule.legal program schedule);
  let proc = Loopir.Scalarize.optimize (Lower.Codegen.generate program schedule) in
  let inputs = Helmholtz.make_inputs ~seed:9 p in
  let bindings =
    match input_bindings with
    | Some b -> b inputs
    | None ->
        [
          ("S", Dense.to_array inputs.Helmholtz.s);
          ("D", Dense.to_array inputs.Helmholtz.d);
          ("u", Dense.to_array inputs.Helmholtz.u);
        ]
  in
  let results = Loopir.Interp.run_fresh proc ~inputs:bindings in
  let v = List.assoc "v" results in
  let got = Dense.of_array (Shape.cube 3 p) (Array.sub v 0 (p * p * p)) in
  let expected = Helmholtz.direct inputs in
  if not (Dense.equal ~tol:1e-8 got expected) then
    Alcotest.failf "transformed program diverges (max diff %g)"
      (Dense.max_abs_diff got expected)

(* ---------- layout expressions ---------- *)

let test_permuted_layout_map () =
  let l = Lower.Layout.permuted [ 3; 4; 5 ] [ 2; 0; 1 ] in
  (* order [2;0;1]: dim 1 innermost (stride 1), dim 0 next (stride 4),
     dim 2 outermost (stride 12) *)
  Alcotest.(check (array int)) "apply"
    [| (1 * 4) + (2 * 1) + (3 * 12) |]
    (Poly.Aff_map.apply l [| 1; 2; 3 |])

let test_permuted_identity_is_row_major () =
  let l = Lower.Layout.permuted [ 3; 4 ] [ 0; 1 ] in
  Alcotest.(check (array int)) "row major" [| (2 * 4) + 3 |]
    (Poly.Aff_map.apply l [| 2; 3 |])

let test_permuted_invalid () =
  match Lower.Layout.permuted [ 3; 4 ] [ 0; 0 ] with
  | _ -> Alcotest.fail "expected Error"
  | exception Lower.Layout.Error _ -> ()

let test_padded_layout () =
  let l = Lower.Layout.padded_row_major [ 3; 5 ] ~align:8 in
  Alcotest.(check (array int)) "padded stride" [| (2 * 8) + 3 |]
    (Poly.Aff_map.apply l [| 2; 3 |])

let test_set_layout_column_major_verifies () =
  let program = helm_program () in
  let cm = Lower.Layout.permuted [ 4; 4; 4 ] [ 2; 1; 0 ] in
  let program = Lower.Layout.set_layout program "t" cm in
  check_program program

let test_set_layout_padded_grows_array () =
  let program = helm_program () in
  let padded = Lower.Layout.padded_row_major [ 4; 4; 4 ] ~align:8 in
  let program = Lower.Layout.set_layout program "t" padded in
  let info = Lower.Flow.array_info program "t" in
  (* 4x4 rows of stride 8 plus a last row of 4 *)
  Alcotest.(check int) "padded size" ((4 * 4 * 8) - 8 + 4) info.Lower.Flow.size;
  check_program program

let test_set_layout_on_input_and_output () =
  let program = helm_program () in
  let program =
    Lower.Layout.set_layout program "v" (Lower.Layout.permuted [ 4; 4; 4 ] [ 1; 0; 2 ])
  in
  (* v now has a permuted layout: the raw buffer is not row-major, so
     compare through the layout *)
  let schedule = Lower.Reschedule.compute program in
  let proc = Loopir.Scalarize.optimize (Lower.Codegen.generate program schedule) in
  let inputs = Helmholtz.make_inputs ~seed:3 4 in
  let results =
    Loopir.Interp.run_fresh proc
      ~inputs:
        [
          ("S", Dense.to_array inputs.Helmholtz.s);
          ("D", Dense.to_array inputs.Helmholtz.d);
          ("u", Dense.to_array inputs.Helmholtz.u);
        ]
  in
  let vbuf = List.assoc "v" results in
  let layout = (Lower.Flow.array_info program "v").Lower.Flow.layout in
  let expected = Helmholtz.direct inputs in
  Shape.iter (Shape.cube 3 4) (fun idx ->
      let off = (Poly.Aff_map.apply layout (Array.of_list idx)).(0) in
      let want = Dense.get expected idx in
      if Float.abs (vbuf.(off) -. want) > 1e-8 then
        Alcotest.failf "v%s: got %g want %g" (String.concat "," (List.map string_of_int idx)) vbuf.(off) want)

let test_set_layout_rejects_non_injective () =
  let program = helm_program () in
  let bad =
    Poly.Aff_map.make
      (Poly.Space.make "t" [ "d0"; "d1"; "d2" ])
      (Poly.Space.make "t" [ "a" ])
      [| Poly.Aff.add (Poly.Aff.var 3 0) (Poly.Aff.var 3 1) |]
  in
  match Lower.Layout.set_layout program "t" bad with
  | _ -> Alcotest.fail "expected rejection"
  | exception Lower.Flow.Error _ -> ()
  | exception Lower.Layout.Error _ -> ()

let test_set_layout_unknown_array () =
  match Lower.Layout.set_layout (helm_program ()) "zz" (Lower.Layout.permuted [ 2 ] [ 0 ]) with
  | _ -> Alcotest.fail "expected Error"
  | exception Lower.Layout.Error _ -> ()

(* ---------- block partitioning ---------- *)

let test_partition_input_u () =
  let program = helm_program () in
  let program = Lower.Layout.block_partition program "u" ~dim:0 ~banks:2 in
  (* u is gone; u__0 and u__1 exist *)
  Alcotest.(check bool) "u gone" true
    (match Lower.Flow.array_info program "u" with
    | _ -> false
    | exception Lower.Flow.Error _ -> true);
  let b0 = Lower.Flow.array_info program "u__0" in
  Alcotest.(check (list int)) "bank shape" [ 2; 4; 4 ] b0.Lower.Flow.tensor_shape;
  let inputs_split (i : Helmholtz.inputs) =
    let u = Dense.to_array i.Helmholtz.u in
    [
      ("S", Dense.to_array i.Helmholtz.s);
      ("D", Dense.to_array i.Helmholtz.d);
      ("u__0", Array.sub u 0 32);
      ("u__1", Array.sub u 32 32);
    ]
  in
  check_program ~input_bindings:(Some inputs_split) program

let test_partition_temp_t () =
  let program = helm_program () in
  let program = Lower.Layout.block_partition program "t" ~dim:2 ~banks:2 in
  (* statements touching t split; statement count grows *)
  Alcotest.(check bool) "more statements" true
    (List.length program.Lower.Flow.stmts > 5);
  check_program program

let test_partition_uneven () =
  let program = helm_program ~p:5 () in
  let program = Lower.Layout.block_partition program "t" ~dim:0 ~banks:2 in
  let b1 = Lower.Flow.array_info program "t__1" in
  (* 5 split as 3 + 2 *)
  Alcotest.(check (list int)) "ragged bank" [ 2; 5; 5 ] b1.Lower.Flow.tensor_shape;
  check_program ~p:5 program

let test_partition_reduction_dim () =
  (* partition u along a dimension that is reduced: the mac splits into
     two accumulations over sub-ranges, which must still sum correctly *)
  let program = helm_program () in
  let program = Lower.Layout.block_partition program "u" ~dim:2 ~banks:4 in
  let inputs_split (i : Helmholtz.inputs) =
    (* dim 2 is innermost: bank b holds the u[.,.,b] columns, laid out
       row-major in the bank's own [4;4;1] tensor shape *)
    let bank b =
      let arr = Array.make 16 0.0 in
      let pos = ref 0 in
      Shape.iter (Shape.create [ 4; 4 ]) (fun ij ->
          match ij with
          | [ x; y ] ->
              arr.(!pos) <- Dense.get i.Helmholtz.u [ x; y; b ];
              incr pos
          | _ -> assert false);
      arr
    in
    [
      ("S", Dense.to_array i.Helmholtz.s);
      ("D", Dense.to_array i.Helmholtz.d);
      ("u__0", bank 0);
      ("u__1", bank 1);
      ("u__2", bank 2);
      ("u__3", bank 3);
    ]
  in
  check_program ~input_bindings:(Some inputs_split) program

let test_partition_bad_args () =
  let program = helm_program () in
  let expect_error f =
    match f () with
    | _ -> Alcotest.fail "expected Error"
    | exception Lower.Layout.Error _ -> ()
    | exception Lower.Flow.Error _ -> ()
  in
  expect_error (fun () -> Lower.Layout.block_partition program "u" ~dim:5 ~banks:2);
  expect_error (fun () -> Lower.Layout.block_partition program "u" ~dim:0 ~banks:0);
  expect_error (fun () -> Lower.Layout.block_partition program "u" ~dim:0 ~banks:9);
  expect_error (fun () -> Lower.Layout.block_partition program "zz" ~dim:0 ~banks:2)

let test_partition_increases_plm_units () =
  let program = helm_program ~p:11 () in
  let program = Lower.Layout.block_partition program "u" ~dim:0 ~banks:2 in
  let schedule = Lower.Reschedule.compute program in
  let arch =
    Mnemosyne.Memgen.generate ~mode:Mnemosyne.Memgen.No_sharing program schedule
  in
  (* seven arrays now: S D u__0 u__1 v t r *)
  Alcotest.(check int) "units" 7 (List.length arch.Mnemosyne.Memgen.units)

(* ---------- explicit merges ---------- *)

let test_merge_legal () =
  let program = helm_program () in
  let schedule = Lower.Reschedule.compute program in
  let storage =
    Liveness.Sharing.merge_storage program schedule [ ("u", "r"); ("t", "v") ]
  in
  Alcotest.(check bool) "u and r share" true
    (List.assoc "u" storage = List.assoc "r" storage);
  let proc = Lower.Codegen.generate ~storage program schedule in
  let p = 4 in
  let inputs = Helmholtz.make_inputs ~seed:5 p in
  let ubuf, _ = List.assoc "u" storage in
  let vbuf, _ = List.assoc "v" storage in
  let results =
    Loopir.Interp.run_fresh proc
      ~inputs:
        [
          ("S", Dense.to_array inputs.Helmholtz.s);
          ("D", Dense.to_array inputs.Helmholtz.d);
          (ubuf, Dense.to_array inputs.Helmholtz.u);
        ]
  in
  let v = List.assoc vbuf results in
  Alcotest.(check bool) "merged program correct" true
    (Dense.equal ~tol:1e-8
       (Dense.of_array (Shape.cube 3 p) (Array.sub v 0 (p * p * p)))
       (Helmholtz.direct inputs))

let test_merge_illegal_rejected () =
  let program = helm_program () in
  let schedule = Lower.Reschedule.compute program in
  match Liveness.Sharing.merge_storage program schedule [ ("u", "t") ] with
  | _ -> Alcotest.fail "expected Illegal"
  | exception Liveness.Sharing.Illegal _ -> ()

let test_merge_transitive_requires_pairwise () =
  let program = helm_program () in
  let schedule = Lower.Reschedule.compute program in
  (* u~r legal, r~t illegal: the transitive group {u,r,t} must be rejected *)
  match Liveness.Sharing.merge_storage program schedule [ ("u", "r"); ("r", "t") ] with
  | _ -> Alcotest.fail "expected Illegal"
  | exception Liveness.Sharing.Illegal _ -> ()

let test_merge_force_overrides () =
  let program = helm_program () in
  let schedule = Lower.Reschedule.compute program in
  let storage =
    Liveness.Sharing.merge_storage ~force:true program schedule [ ("u", "t") ]
  in
  Alcotest.(check bool) "forced" true (List.mem_assoc "u" storage)

let test_merge_unknown_array () =
  let program = helm_program () in
  let schedule = Lower.Reschedule.compute program in
  match Liveness.Sharing.merge_storage program schedule [ ("u", "zz") ] with
  | _ -> Alcotest.fail "expected Illegal"
  | exception Liveness.Sharing.Illegal _ -> ()

let suite =
  [
    ( "layout.expressions",
      [
        case "permuted map" test_permuted_layout_map;
        case "identity permutation" test_permuted_identity_is_row_major;
        case "invalid permutation" test_permuted_invalid;
        case "padded strides" test_padded_layout;
        case "column-major temp verifies" test_set_layout_column_major_verifies;
        case "padded temp grows & verifies" test_set_layout_padded_grows_array;
        case "permuted output layout" test_set_layout_on_input_and_output;
        case "non-injective rejected" test_set_layout_rejects_non_injective;
        case "unknown array" test_set_layout_unknown_array;
      ] );
    ( "layout.partition",
      [
        case "partition input" test_partition_input_u;
        case "partition temp" test_partition_temp_t;
        case "uneven banks" test_partition_uneven;
        case "reduction dimension" test_partition_reduction_dim;
        case "bad arguments" test_partition_bad_args;
        case "more PLM units" test_partition_increases_plm_units;
      ] );
    ( "liveness.sharing",
      [
        case "legal merge" test_merge_legal;
        case "illegal merge rejected" test_merge_illegal_rejected;
        case "transitive pairwise" test_merge_transitive_requires_pairwise;
        case "force override" test_merge_force_overrides;
        case "unknown array" test_merge_unknown_array;
      ] );
  ]
