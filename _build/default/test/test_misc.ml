(* Unit tests for smaller corners: index expressions, loop-IR validation,
   interpreter error handling, and report formatting. *)

let case name f = Alcotest.test_case name `Quick f

(* ---------- Ix ---------- *)

let test_ix_normalization () =
  let a = Loopir.Ix.of_terms [ (2, "i"); (3, "i"); (1, "j") ] 4 in
  let b = Loopir.Ix.of_terms [ (1, "j"); (5, "i") ] 4 in
  Alcotest.(check bool) "merged terms" true (Loopir.Ix.equal a b);
  let z = Loopir.Ix.of_terms [ (2, "i"); (-2, "i") ] 0 in
  Alcotest.(check bool) "zero coefficients dropped" true
    (Loopir.Ix.is_const z)

let test_ix_algebra () =
  let open Loopir.Ix in
  let e = add (scaled 3 "i") (add_const (var "j") 5) in
  let env = function "i" -> 2 | "j" -> 7 | _ -> raise Not_found in
  Alcotest.(check int) "eval" ((3 * 2) + 7 + 5) (eval e env);
  Alcotest.(check int) "scale" (2 * ((3 * 2) + 7 + 5)) (eval (scale 2 e) env);
  Alcotest.(check bool) "scale by zero" true (is_const (scale 0 e))

let test_ix_pp () =
  let e = Loopir.Ix.of_terms [ (121, "i"); (11, "j"); (1, "k") ] 0 in
  Alcotest.(check string) "c syntax" "121 * i + 11 * j + k"
    (Format.asprintf "%a" Loopir.Ix.pp e);
  Alcotest.(check string) "negative" "-i - 2"
    (Format.asprintf "%a" Loopir.Ix.pp (Loopir.Ix.of_terms [ (-1, "i") ] (-2)));
  Alcotest.(check string) "constant" "7"
    (Format.asprintf "%a" Loopir.Ix.pp (Loopir.Ix.const 7))

(* ---------- Prog validation ---------- *)

let mk_proc body =
  {
    Loopir.Prog.name = "p";
    params =
      [
        { Loopir.Prog.name = "a"; size = 4; dir = Loopir.Prog.In };
        { Loopir.Prog.name = "b"; size = 4; dir = Loopir.Prog.Out };
      ];
    locals = [];
    body;
  }

let expect_ill_formed proc =
  match Loopir.Prog.validate proc with
  | () -> Alcotest.fail "expected Ill_formed"
  | exception Loopir.Prog.Ill_formed _ -> ()

let test_prog_rejects_write_to_input () =
  expect_ill_formed
    (mk_proc
       [
         Loopir.Prog.Store
           { array = "a"; index = Loopir.Ix.const 0; value = Loopir.Prog.Const 1.0 };
         Loopir.Prog.Store
           { array = "b"; index = Loopir.Ix.const 0; value = Loopir.Prog.Const 1.0 };
       ])

let test_prog_rejects_unbound_loop_var () =
  expect_ill_formed
    (mk_proc
       [
         Loopir.Prog.Store
           { array = "b"; index = Loopir.Ix.var "i"; value = Loopir.Prog.Const 1.0 };
       ])

let test_prog_rejects_unwritten_output () =
  expect_ill_formed (mk_proc [])

let test_prog_rejects_empty_loop () =
  expect_ill_formed
    (mk_proc
       [
         Loopir.Prog.For
           {
             var = "i";
             lo = 3;
             hi = 3;
             pragmas = [];
             body =
               [
                 Loopir.Prog.Store
                   { array = "b"; index = Loopir.Ix.var "i"; value = Loopir.Prog.Const 0.0 };
               ];
           };
       ])

let test_prog_rejects_scalar_before_set () =
  expect_ill_formed
    (mk_proc
       [
         Loopir.Prog.Store
           { array = "b"; index = Loopir.Ix.const 0; value = Loopir.Prog.Scalar "acc" };
       ])

let test_prog_rejects_shadowed_loop_var () =
  let inner =
    Loopir.Prog.For
      {
        var = "i";
        lo = 0;
        hi = 2;
        pragmas = [];
        body =
          [
            Loopir.Prog.Store
              { array = "b"; index = Loopir.Ix.var "i"; value = Loopir.Prog.Const 0.0 };
          ];
      }
  in
  expect_ill_formed
    (mk_proc [ Loopir.Prog.For { var = "i"; lo = 0; hi = 2; pragmas = []; body = [ inner ] } ])

(* ---------- interpreter bounds ---------- *)

let test_interp_out_of_bounds () =
  let proc =
    mk_proc
      [
        Loopir.Prog.Store
          { array = "b"; index = Loopir.Ix.const 9; value = Loopir.Prog.Const 1.0 };
      ]
  in
  (* validation can't see the constant exceeds the size (it checks loop
     vars); the interpreter must catch it at runtime *)
  match Loopir.Interp.run_fresh proc ~inputs:[ ("a", Array.make 4 0.0) ] with
  | _ -> Alcotest.fail "expected Interp.Error"
  | exception Loopir.Interp.Error _ -> ()

let test_interp_short_buffer () =
  let proc =
    mk_proc
      [
        Loopir.Prog.Store
          { array = "b"; index = Loopir.Ix.const 0; value = Loopir.Prog.Const 1.0 };
      ]
  in
  let memory =
    Loopir.Interp.make_memory [ ("a", Array.make 4 0.0); ("b", Array.make 2 0.0) ]
  in
  match Loopir.Interp.run proc memory with
  | _ -> Alcotest.fail "expected Interp.Error"
  | exception Loopir.Interp.Error _ -> ()

(* ---------- formatting ---------- *)

let test_resource_pp_commas () =
  let r = Fpga_platform.Resource.make ~lut:230400 ~ff:1234567 ~dsp:15 ~bram18:0 in
  let s = Format.asprintf "%a" Fpga_platform.Resource.pp r in
  Alcotest.(check bool) "thousands separators" true
    (String.length s > 0
    &&
    let has needle =
      let ln = String.length needle and lh = String.length s in
      let rec scan i = i + ln <= lh && (String.sub s i ln = needle || scan (i + 1)) in
      scan 0
    in
    has "230,400" && has "1,234,567")

let test_emit_prototype () =
  let proc =
    mk_proc
      [
        Loopir.Prog.Store
          { array = "b"; index = Loopir.Ix.const 0; value = Loopir.Prog.Const 1.0 };
      ]
  in
  Alcotest.(check string) "prototype"
    "void p(const double a[4], double b[4]);"
    (Loopir.Emit.c_prototype proc)

let test_axi_busy_flag () =
  let ctrl = Sysgen.Axi_ctrl.create ~k:1 ~batch:1 in
  Alcotest.(check bool) "idle initially" false (Sysgen.Axi_ctrl.busy ctrl);
  Sysgen.Axi_ctrl.write_start ctrl;
  Alcotest.(check bool) "busy after start" true (Sysgen.Axi_ctrl.busy ctrl);
  ignore (Sysgen.Axi_ctrl.step ctrl ~ready:[| true |] ~done_:[| false |]);
  ignore (Sysgen.Axi_ctrl.step ctrl ~ready:[| true |] ~done_:[| true |]);
  Alcotest.(check bool) "idle after round" false (Sysgen.Axi_ctrl.busy ctrl)

let test_bram_edge_cases () =
  Alcotest.(check int) "exactly 18Kib" 1
    (Fpga_platform.Bram.count ~word_bits:36 ~words:512);
  Alcotest.(check int) "one bit over" 2
    (Fpga_platform.Bram.count ~word_bits:36 ~words:513);
  Alcotest.(check int) "narrow words" 1
    (Fpga_platform.Bram.count ~word_bits:8 ~words:2048);
  Alcotest.(check int) "wide shallow" 2
    (Fpga_platform.Bram.count ~word_bits:72 ~words:512)

let suite =
  [
    ( "misc.ix",
      [
        case "normalization" test_ix_normalization;
        case "algebra" test_ix_algebra;
        case "pretty printing" test_ix_pp;
      ] );
    ( "misc.prog",
      [
        case "write to input" test_prog_rejects_write_to_input;
        case "unbound loop var" test_prog_rejects_unbound_loop_var;
        case "unwritten output" test_prog_rejects_unwritten_output;
        case "empty loop" test_prog_rejects_empty_loop;
        case "scalar before set" test_prog_rejects_scalar_before_set;
        case "shadowed loop var" test_prog_rejects_shadowed_loop_var;
      ] );
    ( "misc.interp",
      [
        case "out of bounds" test_interp_out_of_bounds;
        case "short buffer" test_interp_short_buffer;
      ] );
    ( "misc.format",
      [
        case "resource commas" test_resource_pp_commas;
        case "c prototype" test_emit_prototype;
        case "axi busy flag" test_axi_busy_flag;
        case "bram edges" test_bram_edge_cases;
      ] );
  ]
