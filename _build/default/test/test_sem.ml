(* Tests for lib/sem: GLL quadrature/differentiation, the multi-element
   mesh, the element operator (reference vs compiled-accelerator), and
   the CG solver's spectral convergence on a manufactured solution. *)

open Tensor

let case name f = Alcotest.test_case name `Quick f
let pi = Float.pi

(* ---------- GLL ---------- *)

let test_gll_nodes_basic () =
  let x = Sem.Gll.nodes 6 in
  Alcotest.(check (float 1e-12)) "left endpoint" (-1.0) x.(0);
  Alcotest.(check (float 1e-12)) "right endpoint" 1.0 x.(5);
  (* increasing and symmetric *)
  for i = 0 to 4 do
    Alcotest.(check bool) "increasing" true (x.(i) < x.(i + 1))
  done;
  for i = 0 to 5 do
    Alcotest.(check (float 1e-10)) "symmetric" (-.x.(i)) x.(5 - i)
  done

let test_gll_weights_sum () =
  List.iter
    (fun n ->
      let w = Sem.Gll.weights n in
      let sum = Array.fold_left ( +. ) 0.0 w in
      Alcotest.(check (float 1e-10)) (Printf.sprintf "n=%d sums to 2" n) 2.0 sum)
    [ 2; 3; 5; 8; 11 ]

let test_gll_quadrature_exactness () =
  (* exact for polynomials of degree <= 2n-3 *)
  let n = 6 in
  let x = Sem.Gll.nodes n and w = Sem.Gll.weights n in
  let integrate k =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (w.(i) *. Float.pow x.(i) (float_of_int k))
    done;
    !acc
  in
  for k = 0 to (2 * n) - 3 do
    let exact = if k mod 2 = 1 then 0.0 else 2.0 /. float_of_int (k + 1) in
    Alcotest.(check (float 1e-9)) (Printf.sprintf "x^%d" k) exact (integrate k)
  done

let test_gll_diff_exact_on_polynomials () =
  let n = 7 in
  let x = Sem.Gll.nodes n in
  let d = Sem.Gll.diff_matrix n in
  (* derivative of x^k at the nodes, exact for k <= n-1 *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let got = ref 0.0 in
      for j = 0 to n - 1 do
        got := !got +. (d.(i).(j) *. Float.pow x.(j) (float_of_int k))
      done;
      let exact =
        if k = 0 then 0.0
        else float_of_int k *. Float.pow x.(i) (float_of_int (k - 1))
      in
      Alcotest.(check (float 1e-8)) (Printf.sprintf "d(x^%d)/dx at node %d" k i)
        exact !got
    done
  done

let test_gll_legendre_values () =
  Alcotest.(check (float 1e-12)) "P0" 1.0 (Sem.Gll.legendre 0 0.3);
  Alcotest.(check (float 1e-12)) "P1" 0.3 (Sem.Gll.legendre 1 0.3);
  Alcotest.(check (float 1e-12)) "P2(1)" 1.0 (Sem.Gll.legendre 2 1.0);
  Alcotest.(check (float 1e-12)) "P3(-1)" (-1.0) (Sem.Gll.legendre 3 (-1.0))

let test_stiffness_matrix_properties () =
  let n = 6 in
  let k = Sem.Gll.stiffness_matrix n in
  (* symmetric *)
  Shape.iter (Shape.create [ n; n ]) (fun idx ->
      match idx with
      | [ i; j ] ->
          Alcotest.(check (float 1e-10)) "symmetric" (Dense.get k [ i; j ])
            (Dense.get k [ j; i ])
      | _ -> assert false);
  (* rows sum to ~0 (derivative of the constant function) *)
  for i = 0 to n - 1 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      sum := !sum +. Dense.get k [ i; j ]
    done;
    Alcotest.(check (float 1e-9)) "row sum" 0.0 !sum
  done;
  (* positive semidefinite: x^T K x >= 0 for random x *)
  let x = Dense.random ~seed:3 (Shape.create [ n ]) in
  let kx = Ops.contract_product [ k; x ] [ (1, 2) ] in
  let quad = ref 0.0 in
  for i = 0 to n - 1 do
    quad := !quad +. (Dense.get x [ i ] *. Dense.get kx [ i ])
  done;
  Alcotest.(check bool) "psd" true (!quad >= -1e-10)

(* ---------- Mesh ---------- *)

let test_mesh_counts () =
  let mesh = Sem.Mesh.create ~ne:2 ~n:4 in
  Alcotest.(check int) "elements" 8 (Sem.Mesh.num_elements mesh);
  Alcotest.(check int) "global nodes" (7 * 7 * 7) (Sem.Mesh.num_global mesh);
  Alcotest.(check (float 1e-12)) "element size" 0.5 (Sem.Mesh.element_size mesh)

let test_mesh_scatter_gather_multiplicity () =
  (* gather(scatter(1)) counts how many elements share each node *)
  let mesh = Sem.Mesh.create ~ne:2 ~n:3 in
  let ones = Array.make (Sem.Mesh.num_global mesh) 1.0 in
  let counts = Sem.Mesh.gather_add mesh (Sem.Mesh.scatter mesh ones) in
  (* the center node of the cube is shared by all 8 elements *)
  let center = Sem.Mesh.global_index mesh ~element:0 [ 2; 2; 2 ] in
  Alcotest.(check (float 0.)) "center multiplicity" 8.0 counts.(center);
  (* a strictly interior node of element 0 belongs to it alone *)
  let interior = Sem.Mesh.global_index mesh ~element:0 [ 1; 1; 1 ] in
  Alcotest.(check (float 0.)) "interior multiplicity" 1.0 counts.(interior)

let test_mesh_shared_face_nodes () =
  let mesh = Sem.Mesh.create ~ne:2 ~n:4 in
  (* last node of element 0 along z equals first node of element 1 *)
  let a = Sem.Mesh.global_index mesh ~element:0 [ 0; 0; 3 ] in
  let b = Sem.Mesh.global_index mesh ~element:1 [ 0; 0; 0 ] in
  Alcotest.(check int) "shared face node" a b

let test_mesh_coords () =
  let mesh = Sem.Mesh.create ~ne:2 ~n:4 in
  let origin = Sem.Mesh.global_index mesh ~element:0 [ 0; 0; 0 ] in
  let x, y, z = Sem.Mesh.node_coords mesh origin in
  Alcotest.(check (float 1e-12)) "x0" 0.0 x;
  Alcotest.(check (float 1e-12)) "y0" 0.0 y;
  Alcotest.(check (float 1e-12)) "z0" 0.0 z;
  let far = Sem.Mesh.global_index mesh ~element:7 [ 3; 3; 3 ] in
  let x, y, z = Sem.Mesh.node_coords mesh far in
  Alcotest.(check (float 1e-12)) "x1" 1.0 x;
  Alcotest.(check (float 1e-12)) "y1" 1.0 y;
  Alcotest.(check (float 1e-12)) "z1" 1.0 z

let test_mesh_boundary_mask () =
  let mesh = Sem.Mesh.create ~ne:1 ~n:3 in
  let mask = Sem.Mesh.boundary_mask mesh in
  let boundary = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  (* 27 nodes, 1 interior *)
  Alcotest.(check int) "boundary nodes" 26 boundary

(* ---------- Operator ---------- *)

let test_operator_backends_agree () =
  let mesh = Sem.Mesh.create ~ne:2 ~n:5 in
  let operator = Sem.Operator.create ~lambda:1.3 ~mesh () in
  let u = Dense.random ~seed:7 (Shape.cube 3 5) in
  let r = Sem.Operator.reference_apply operator u in
  let a = Sem.Operator.accelerated_apply operator u in
  Alcotest.(check bool) "reference = accelerated" true (Dense.equal ~tol:1e-10 r a)

let test_operator_symmetric () =
  let mesh = Sem.Mesh.create ~ne:1 ~n:5 in
  let operator = Sem.Operator.create ~lambda:1.0 ~mesh () in
  let u = Dense.random ~seed:1 (Shape.cube 3 5) in
  let v = Dense.random ~seed:2 (Shape.cube 3 5) in
  let dot a b = Dense.fold (Ops.hadamard a b) ~init:0.0 ~f:( +. ) in
  let au = Sem.Operator.reference_apply operator u in
  let av = Sem.Operator.reference_apply operator v in
  Alcotest.(check (float 1e-8)) "v.Au = u.Av" (dot v au) (dot u av)

let test_operator_positive_definite () =
  let mesh = Sem.Mesh.create ~ne:1 ~n:5 in
  let operator = Sem.Operator.create ~lambda:1.0 ~mesh () in
  let u = Dense.random ~seed:5 (Shape.cube 3 5) in
  let au = Sem.Operator.reference_apply operator u in
  let quad = Dense.fold (Ops.hadamard u au) ~init:0.0 ~f:( +. ) in
  Alcotest.(check bool) "u.Au > 0" true (quad > 0.0)

let test_operator_constant_function () =
  (* for constant u the stiffness terms vanish: A u = lambda * M u *)
  let n = 4 in
  let mesh = Sem.Mesh.create ~ne:1 ~n in
  let lambda = 2.5 in
  let operator = Sem.Operator.create ~lambda ~mesh () in
  let u = Dense.init (Shape.cube 3 n) (fun _ -> 1.0) in
  let au = Sem.Operator.reference_apply operator u in
  let w = Sem.Gll.weights n in
  let h2 = 0.5 in
  Shape.iter (Shape.cube 3 n) (fun idx ->
      match idx with
      | [ i; j; k ] ->
          let expected = lambda *. h2 *. h2 *. h2 *. w.(i) *. w.(j) *. w.(k) in
          Alcotest.(check (float 1e-10)) "mass only" expected (Dense.get au idx)
      | _ -> assert false)

let test_operator_kernel_is_paper_shaped () =
  (* the generated element kernel compiles like the paper's kernels:
     factorized, shared PLMs, verifiable *)
  let mesh = Sem.Mesh.create ~ne:2 ~n:5 in
  let operator = Sem.Operator.create ~mesh () in
  let r = Sem.Operator.compiled operator in
  Alcotest.(check bool) "verifies" true (Cfd_core.Compile.verify ~seed:3 r);
  Alcotest.(check bool) "factorized: no rank-6 contraction left" true
    (List.for_all
       (fun (d : Tir.Ir.def) ->
         match d.Tir.Ir.op with
         | Tir.Ir.Contract { pairs; _ } -> List.length pairs <= 1
         | _ -> true)
       r.Cfd_core.Compile.tir.Tir.Ir.defs)

(* ---------- Solver ---------- *)

let exact x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z)
let forcing lambda x y z = (lambda +. (3.0 *. pi *. pi)) *. exact x y z

let solve_err ?(backend = Sem.Solver.Reference) ~ne ~n () =
  let mesh = Sem.Mesh.create ~ne ~n in
  let operator = Sem.Operator.create ~lambda:1.0 ~mesh () in
  let u, stats =
    Sem.Solver.solve ~backend ~mesh ~operator ~f:(forcing 1.0) ()
  in
  (Sem.Solver.max_error mesh u ~exact, stats)

let test_solver_manufactured_solution () =
  let err, stats = solve_err ~ne:2 ~n:6 () in
  Alcotest.(check bool) "converged" true (stats.Sem.Solver.residual < 1e-8);
  Alcotest.(check bool) "accurate" true (err < 5e-6)

let test_solver_spectral_convergence () =
  let e4, _ = solve_err ~ne:1 ~n:4 () in
  let e6, _ = solve_err ~ne:1 ~n:6 () in
  let e8, _ = solve_err ~ne:1 ~n:8 () in
  Alcotest.(check bool) "p-refinement converges fast" true
    (e6 < e4 /. 50.0 && e8 < e6 /. 50.0)

let test_solver_h_refinement () =
  let e1, _ = solve_err ~ne:1 ~n:5 () in
  let e2, _ = solve_err ~ne:2 ~n:5 () in
  Alcotest.(check bool) "h-refinement helps" true (e2 < e1)

let test_solver_accelerator_backend () =
  let err_ref, s_ref = solve_err ~backend:Sem.Solver.Reference ~ne:2 ~n:4 () in
  let err_acc, s_acc = solve_err ~backend:Sem.Solver.Accelerator ~ne:2 ~n:4 () in
  Alcotest.(check int) "same iterations" s_ref.Sem.Solver.iterations
    s_acc.Sem.Solver.iterations;
  Alcotest.(check bool) "same accuracy" true
    (Float.abs (err_ref -. err_acc) < 1e-9)

let test_rhs_respects_boundary () =
  let mesh = Sem.Mesh.create ~ne:2 ~n:4 in
  let b = Sem.Solver.assemble_rhs mesh ~f:(fun _ _ _ -> 1.0) in
  let mask = Sem.Mesh.boundary_mask mesh in
  Array.iteri
    (fun i bi ->
      if mask.(i) then Alcotest.(check (float 0.)) "masked" 0.0 bi)
    b

(* ---------- Transient ---------- *)

let test_transient_decay_rate () =
  (* the first Laplacian eigenmode decays at the backward-Euler discrete
     rate ln(1 + 3 pi^2 dt) / dt *)
  let mesh = Sem.Mesh.create ~ne:1 ~n:7 in
  let u0 x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z) in
  let dt = 0.001 in
  let r1 = Sem.Transient.run ~mesh ~dt ~steps:1 ~u0 () in
  let r2 = Sem.Transient.run ~mesh ~dt ~steps:2 ~u0 () in
  let rate =
    Sem.Transient.decay_rate mesh r1.Sem.Transient.final r2.Sem.Transient.final
      ~dt
  in
  let lambda1 = 3.0 *. pi *. pi in
  let discrete = log (1.0 +. (lambda1 *. dt)) /. dt in
  Alcotest.(check bool) "matches backward-Euler rate" true
    (Float.abs (rate -. discrete) /. discrete < 1e-3)

let test_transient_decays_monotonically () =
  let mesh = Sem.Mesh.create ~ne:1 ~n:5 in
  let u0 x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z) in
  let norm u = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 u) in
  let r1 = Sem.Transient.run ~mesh ~dt:0.002 ~steps:1 ~u0 () in
  let r3 = Sem.Transient.run ~mesh ~dt:0.002 ~steps:3 ~u0 () in
  Alcotest.(check bool) "energy decays" true
    (norm r3.Sem.Transient.final < norm r1.Sem.Transient.final)

let test_transient_accelerated_backend () =
  let mesh = Sem.Mesh.create ~ne:1 ~n:4 in
  let u0 x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z) in
  let r_ref =
    Sem.Transient.run ~backend:Sem.Solver.Reference ~mesh ~dt:0.01 ~steps:2 ~u0 ()
  in
  let r_acc =
    Sem.Transient.run ~backend:Sem.Solver.Accelerator ~mesh ~dt:0.01 ~steps:2 ~u0 ()
  in
  let diff =
    Array.fold_left Float.max 0.0
      (Array.map2
         (fun a b -> Float.abs (a -. b))
         r_ref.Sem.Transient.final r_acc.Sem.Transient.final)
  in
  Alcotest.(check bool) "backends agree" true (diff < 1e-9)

let test_cg_identity () =
  (* CG on the identity operator converges in one iteration *)
  let b = Array.init 10 (fun i -> float_of_int (i + 1)) in
  let x, stats = Sem.Solver.cg ~apply:Array.copy ~b ~tol:1e-12 ~max_iter:10 in
  Alcotest.(check int) "one iteration" 1 stats.Sem.Solver.iterations;
  Array.iteri
    (fun i xi -> Alcotest.(check (float 1e-10)) "solution" b.(i) xi)
    x

let suite =
  [
    ( "sem.gll",
      [
        case "nodes" test_gll_nodes_basic;
        case "weights sum to 2" test_gll_weights_sum;
        case "quadrature exactness" test_gll_quadrature_exactness;
        case "differentiation exact on polynomials" test_gll_diff_exact_on_polynomials;
        case "legendre values" test_gll_legendre_values;
        case "stiffness matrix" test_stiffness_matrix_properties;
      ] );
    ( "sem.mesh",
      [
        case "counts" test_mesh_counts;
        case "scatter/gather multiplicity" test_mesh_scatter_gather_multiplicity;
        case "shared face nodes" test_mesh_shared_face_nodes;
        case "coordinates" test_mesh_coords;
        case "boundary mask" test_mesh_boundary_mask;
      ] );
    ( "sem.operator",
      [
        case "reference = accelerated" test_operator_backends_agree;
        case "symmetric" test_operator_symmetric;
        case "positive definite" test_operator_positive_definite;
        case "constant function (mass only)" test_operator_constant_function;
        case "kernel is paper-shaped" test_operator_kernel_is_paper_shaped;
      ] );
    ( "sem.solver",
      [
        case "manufactured solution" test_solver_manufactured_solution;
        case "spectral convergence" test_solver_spectral_convergence;
        case "h-refinement" test_solver_h_refinement;
        case "accelerator backend" test_solver_accelerator_backend;
        case "rhs boundary mask" test_rhs_respects_boundary;
        case "cg on identity" test_cg_identity;
      ] );
    ( "sem.transient",
      [
        case "backward-Euler decay rate" test_transient_decay_rate;
        case "monotone decay" test_transient_decays_monotonically;
        case "accelerated backend" test_transient_accelerated_backend;
      ] );
  ]
