(* Tests for the unroll DSE axis (HLS operator replication + Mnemosyne
   port scaling) and the PLM RTL emitter. *)

let case name f = Alcotest.test_case name `Quick f

let compile ?(unroll = None) () =
  let options = { Cfd_core.Compile.default_options with Cfd_core.Compile.unroll } in
  Cfd_core.Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p:11 ())

(* ---------- unroll: HLS side ---------- *)

let test_unroll_latency_drops () =
  let base = compile () in
  let u2 = compile ~unroll:(Some 2) () in
  let u4 = compile ~unroll:(Some 4) () in
  let lat (r : Cfd_core.Compile.result) = r.Cfd_core.Compile.hls.Hls.Model.latency_cycles in
  Alcotest.(check bool) "u2 faster" true (lat u2 < lat base);
  Alcotest.(check bool) "u4 faster still" true (lat u4 < lat u2);
  (* the reduction loop dominates: u4 should be within [1/4, 1/2] of base *)
  Alcotest.(check bool) "plausible scaling" true
    (lat u4 * 2 > lat base / 2 && lat u4 < lat base)

let test_unroll_operators_scale () =
  let base = compile () in
  let u4 = compile ~unroll:(Some 4) () in
  let dsp (r : Cfd_core.Compile.result) =
    r.Cfd_core.Compile.hls.Hls.Model.resources.Fpga_platform.Resource.dsp
  in
  (* 4 MAC lanes: 4 muls + 4 adds instead of 1+1 *)
  Alcotest.(check int) "base dsp" 15 (dsp base);
  Alcotest.(check int) "u4 dsp" ((4 * 11) + (4 * 3) + 1) (dsp u4)

let test_unroll_functional () =
  (* the pragma changes models only, never semantics *)
  let u4 = compile ~unroll:(Some 4) () in
  Alcotest.(check bool) "verifies" true (Cfd_core.Compile.verify ~seed:8 u4)

(* ---------- unroll: Mnemosyne side ---------- *)

let test_unroll_duplicates_banks () =
  let base = compile () in
  let u4 = compile ~unroll:(Some 4) () in
  let max_copies (r : Cfd_core.Compile.result) =
    List.fold_left
      (fun acc (u : Mnemosyne.Memgen.plm_unit) -> max acc u.Mnemosyne.Memgen.copies)
      1 r.Cfd_core.Compile.memory.Mnemosyne.Memgen.units
  in
  Alcotest.(check int) "no duplication at u1" 1 (max_copies base);
  (* 4 read lanes + accumulator register: 4 ports -> 2 copies *)
  Alcotest.(check int) "duplication at u4" 2 (max_copies u4);
  Alcotest.(check bool) "BRAM cost grows" true
    (u4.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams
    > base.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams)

let test_unroll_tradeoff_in_system () =
  (* more DSP + BRAM per kernel means fewer replicas; the solver must
     still find a valid system *)
  let u4 = compile ~unroll:(Some 4) () in
  let sys = Cfd_core.Compile.build_system ~n_elements:1024 u4 in
  Sysgen.System.validate sys;
  Alcotest.(check bool) "fewer replicas than 16" true
    (sys.Sysgen.System.solution.Sysgen.Replicate.m < 16)

(* ---------- PLM RTL ---------- *)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  scan 0

let test_plm_verilog_structure () =
  let r = compile () in
  let v = Mnemosyne.Plm_emit.verilog r.Cfd_core.Compile.memory in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains v needle))
    [
      "module plm_plm0";
      "module plm_plm1";
      "module plm_plm2";
      "ram_style = \"block\"";
      "slot +0";
      "slot +1331";
      "b_rdata <= mem0[b_addr]";
      "endmodule";
    ]

let test_plm_verilog_copies () =
  let u4 = compile ~unroll:(Some 4) () in
  let duplicated =
    List.find
      (fun (u : Mnemosyne.Memgen.plm_unit) -> u.Mnemosyne.Memgen.copies = 2)
      u4.Cfd_core.Compile.memory.Mnemosyne.Memgen.units
  in
  let v = Mnemosyne.Plm_emit.unit_verilog duplicated in
  Alcotest.(check bool) "two memories" true (contains v "mem1");
  Alcotest.(check bool) "write broadcast" true (contains v "mem1[a_waddr] <= a_wdata");
  Alcotest.(check bool) "second read lane" true (contains v "a1_rdata <= mem1[a1_addr]")

let test_plm_verilog_packed () =
  (* a unit small enough for packed half-word mode: compile a tiny kernel *)
  let r =
    Cfd_core.Compile.compile
      ~options:
        { Cfd_core.Compile.default_options with Cfd_core.Compile.sharing = false }
      (Cfdlang.Ast.inverse_helmholtz ~p:11 ())
  in
  let s_unit =
    List.find
      (fun (u : Mnemosyne.Memgen.plm_unit) ->
        List.exists
          (fun (s : Mnemosyne.Memgen.slot) ->
            List.mem "S" s.Mnemosyne.Memgen.residents)
          u.Mnemosyne.Memgen.slots)
      r.Cfd_core.Compile.memory.Mnemosyne.Memgen.units
  in
  let v = Mnemosyne.Plm_emit.unit_verilog s_unit in
  Alcotest.(check bool) "packed mode note" true (contains v "packed half-word mode")

let suite =
  [
    ( "unroll",
      [
        case "latency drops" test_unroll_latency_drops;
        case "operators scale" test_unroll_operators_scale;
        case "functional" test_unroll_functional;
        case "bank duplication" test_unroll_duplicates_banks;
        case "system tradeoff" test_unroll_tradeoff_in_system;
      ] );
    ( "plm_rtl",
      [
        case "structure" test_plm_verilog_structure;
        case "copies" test_plm_verilog_copies;
        case "packed mode" test_plm_verilog_packed;
      ] );
  ]
