(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI), plus the ablations called out in DESIGN.md.

   Default: run every experiment and print the paper-shaped tables.
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe table1     # one experiment
     (targets: table1 fig5 fig8 fig9 fig10 batch
               ablate-factorize ablate-decouple ablate-reserve
               ablate-overlap ablate-unroll ablate-ii operators sem sweep
               exec memprof)

   --bechamel additionally runs Bechamel micro-benchmarks of the compiler
   stages themselves (one Test.make per experiment's dominant stage).
   --jobs=N sets the parallel fan-out of the `sweep` and `exec`
   experiments (default: Domain.recommended_domain_count); malformed
   values are rejected. --exec-p=N sets the polynomial order of the
   `exec` experiment's kernel (default 11); `exec` also writes its
   measurements (including a per-compile-stage timing breakdown and the
   run-provenance manifest) to history/BENCH_exec.<run-id>.json — one
   record per run, the input of scripts/check_bench_history.py — and
   refreshes the top-level BENCH_exec.json last by atomic rename.
   --run-id=ID names the history record (default: UTC timestamp + pid).
   --out=DIR redirects every file the harness writes — the BENCH_*.json
   records, the history/ directory and the per-experiment span traces
   (TRACE_<target>.json, Chrome trace-event format) — into DIR instead
   of the cwd. *)

let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board
let n_elements = 50000

let compile ?(p = 11) ?(factorize = true) ?(decoupled = true) ~sharing () =
  let options =
    {
      Cfd_core.Compile.default_options with
      Cfd_core.Compile.factorize;
      decoupled;
      sharing;
    }
  in
  Cfd_core.Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p ())

let shared = lazy (compile ~sharing:true ())
let unshared = lazy (compile ~sharing:false ())

let hw ?r k =
  let r = match r with Some r -> r | None -> Lazy.force shared in
  let sys = Cfd_core.Compile.build_system ~force_k:k ~n_elements r in
  Sysgen.System.validate sys;
  Sim.Perf.run_hw ~system:sys ~board

let sw_ref =
  lazy
    (Sim.Perf.run_sw ~variant:`Reference
       ~flops_per_element:(Tensor.Helmholtz.flops_factorized 11)
       ~n_elements ~board)

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n"

(* ---------------- E1: Table I ---------------- *)

let table1 () =
  header
    "Table I: resource utilization, no-sharing vs sharing architectures\n\
     (paper: LUT 11,318..77,235; FF 9,523..55,053; DSP 15m)";
  let cap = board.Fpga_platform.Board.capacity in
  let row r m =
    match Cfd_core.Compile.build_system ~force_k:m ~n_elements r with
    | sys ->
        let u = sys.Sysgen.System.total_resources in
        Printf.printf "  %2d | %s\n" m
          (Format.asprintf "%a" (Fpga_platform.Resource.pp_with_capacity ~capacity:cap) u)
    | exception Sysgen.Replicate.Infeasible _ ->
        Printf.printf "  %2d | does not fit\n" m
  in
  Printf.printf "No sharing (m = k):\n";
  List.iter (row (Lazy.force unshared)) [ 1; 2; 4; 8; 16 ];
  Printf.printf "Sharing (m = k):\n";
  List.iter (row (Lazy.force shared)) [ 1; 2; 4; 8; 16 ]

(* ---------------- E6: Figure 5 ---------------- *)

let fig5 () =
  header
    "Figure 5: memory-interface and address-space compatibility graph\n\
     (paper: interface arrays grouped left; t, r internal)";
  let r = Lazy.force shared in
  Format.printf "%a@." Liveness.Analysis.pp r.Cfd_core.Compile.liveness;
  Format.printf "%a@." Liveness.Analysis.pp_graph
    (Liveness.Analysis.compatibility_graph r.Cfd_core.Compile.liveness)

(* ---------------- E2: Figure 8 ---------------- *)

let fig8 () =
  header
    "Figure 8: BRAM utilization of parallel accelerators w/ and w/o sharing\n\
     (paper: 31 vs 18 BRAM per kernel; no-sharing caps at m=8, sharing at 16;\n\
     temporaries-inside variant: 24 accel + 9 memory = 33)";
  let per_kernel r =
    r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams
    + r.Cfd_core.Compile.hls.Hls.Model.resources.Fpga_platform.Resource.bram18
  in
  Printf.printf "per-kernel BRAM18: no sharing %d | sharing %d | temporaries-in-HLS %d\n"
    (per_kernel (Lazy.force unshared))
    (per_kernel (Lazy.force shared))
    (per_kernel (compile ~decoupled:false ~sharing:false ()));
  Printf.printf "\n   m | no-sharing BRAM | sharing BRAM   (board: 624 BRAM18, reserve 132)\n";
  List.iter
    (fun m ->
      let total r =
        match Cfd_core.Compile.build_system ~force_k:m ~n_elements r with
        | sys ->
            string_of_int
              sys.Sysgen.System.total_resources.Fpga_platform.Resource.bram18
        | exception Sysgen.Replicate.Infeasible _ -> "-"
      in
      Printf.printf "  %2d | %15s | %12s\n" m
        (total (Lazy.force unshared))
        (total (Lazy.force shared)))
    [ 1; 2; 4; 8; 16 ]

(* ---------------- E3: Figure 9 ---------------- *)

let fig9 () =
  header
    "Figure 9: accelerator and total speedup of parallel architectures\n\
     (paper: accel ~ideal k; total 7.09x at k=8, 12.58x at k=16)";
  let hw1 = hw 1 in
  Printf.printf "   k | accel speedup | total speedup\n";
  List.iter
    (fun k ->
      let r = hw k in
      Printf.printf "  %2d | %13.2f | %13.2f\n" k
        (Sim.Perf.accel_speedup ~baseline:hw1 r)
        (Sim.Perf.total_speedup ~baseline:hw1 r))
    [ 1; 2; 4; 8; 16 ]

(* ---------------- E4: Figure 10 ---------------- *)

let fig10 () =
  header
    "Figure 10: speedup vs software execution on the ARM A53\n\
     (paper: SW HLS-code < SW Ref; HW k=1 ~0.7x; HW k=16 8.62x)";
  let sw = Lazy.force sw_ref in
  let sw_hls =
    Sim.Perf.run_sw ~variant:`Hls_code
      ~flops_per_element:(Tensor.Helmholtz.flops_factorized 11)
      ~n_elements ~board
  in
  Printf.printf "  %-12s | speedup vs SW Ref\n" "variant";
  Printf.printf "  %-12s | %6.2f\n" "SW Ref" 1.0;
  Printf.printf "  %-12s | %6.2f\n" "SW HLS code"
    (sw.Sim.Perf.seconds /. sw_hls.Sim.Perf.seconds);
  List.iter
    (fun k ->
      Printf.printf "  %-12s | %6.2f\n"
        (Printf.sprintf "HW k=%d" k)
        (Sim.Perf.speedup_vs_sw ~sw (hw k)))
    [ 1; 8; 16 ]

(* ---------------- E5: k < m batching ---------------- *)

let batch () =
  header
    "Section VI k<m experiments: batching PLMs per accelerator\n\
     (paper: no improvement -- transfers are not amortized)";
  let r = Lazy.force shared in
  Printf.printf "   k |  m | batch | total s\n";
  List.iter
    (fun (k, m) ->
      match Cfd_core.Compile.build_system ~force_k:k ~force_m:m ~n_elements r with
      | sys ->
          Sysgen.System.validate sys;
          let res = Sim.Perf.run_hw ~system:sys ~board in
          Printf.printf "  %2d | %2d | %5d | %7.2f\n" k m (m / k)
            res.Sim.Perf.total_seconds
      | exception Sysgen.Replicate.Infeasible msg ->
          Printf.printf "  %2d | %2d | infeasible: %s\n" k m msg)
    [ (1, 1); (1, 2); (1, 4); (2, 2); (2, 4); (2, 8); (4, 4); (4, 8); (4, 16); (8, 8); (8, 16) ]

(* ---------------- A1: factorization ablation ---------------- *)

let ablate_factorize () =
  header
    "Ablation A1: contraction factorization (O(p^6) direct vs O(p^4) factorized)";
  Printf.printf "   p | direct cycles | factorized cycles | ratio | DSP direct/fact\n";
  List.iter
    (fun p ->
      let d = compile ~p ~factorize:false ~sharing:true () in
      let f = compile ~p ~factorize:true ~sharing:true () in
      let dl = d.Cfd_core.Compile.hls.Hls.Model.latency_cycles in
      let fl = f.Cfd_core.Compile.hls.Hls.Model.latency_cycles in
      Printf.printf "  %2d | %13d | %17d | %5.1f | %d / %d\n" p dl fl
        (float_of_int dl /. float_of_int fl)
        d.Cfd_core.Compile.hls.Hls.Model.resources.Fpga_platform.Resource.dsp
        f.Cfd_core.Compile.hls.Hls.Model.resources.Fpga_platform.Resource.dsp)
    [ 4; 6; 8; 10; 11; 12 ]

(* ---------------- A2: decoupling ablation ---------------- *)

let ablate_decouple () =
  header
    "Ablation A2: decoupled PLMs vs temporaries inside the accelerator\n\
     (paper: 33 total when inside vs 31/18 decoupled)";
  let show label r =
    let plm = r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams in
    let internal =
      r.Cfd_core.Compile.hls.Hls.Model.resources.Fpga_platform.Resource.bram18
    in
    Printf.printf "  %-34s: memory %2d + accelerator %2d = %2d BRAM18\n" label plm
      internal (plm + internal)
  in
  show "decoupled, sharing" (Lazy.force shared);
  show "decoupled, no sharing" (Lazy.force unshared);
  show "temporaries inside HLS, no sharing" (compile ~decoupled:false ~sharing:false ());
  show "temporaries inside HLS, sharing" (compile ~decoupled:false ~sharing:true ())

(* ---------------- A3: interface reserve sweep ---------------- *)

let ablate_reserve () =
  header
    "Ablation A3: interface BRAM reserve vs maximum replicas\n\
     (where the no-sharing design stops fitting 16 kernels)";
  Printf.printf "  reserve | max m no-sharing | max m sharing\n";
  let kernel = (Lazy.force shared).Cfd_core.Compile.hls.Hls.Model.resources in
  List.iter
    (fun reserve ->
      let config =
        {
          Sysgen.Replicate.default_config with
          Sysgen.Replicate.interface_reserve =
            Fpga_platform.Resource.make ~lut:6896 ~ff:6498 ~dsp:0 ~bram18:reserve;
        }
      in
      Printf.printf "  %7d | %16d | %13d\n" reserve
        (Sysgen.Replicate.max_m ~config ~kernel ~plm_brams:31 ())
        (Sysgen.Replicate.max_m ~config ~kernel ~plm_brams:18 ()))
    [ 0; 64; 128; 132; 192; 256; 336 ]

(* ---------------- A4: overlapped transfers (future work) ---------------- *)

let ablate_overlap () =
  header
    "Ablation A4: double-buffered transfers (paper future work)\n\
     (what the Section-VI k<m experiments would have shown with overlap)";
  let r = Lazy.force shared in
  Printf.printf "   k |  m | no overlap s | overlapped s\n";
  List.iter
    (fun (k, m) ->
      match Cfd_core.Compile.build_system ~force_k:k ~force_m:m ~n_elements r with
      | sys ->
          let plain = Sim.Perf.run_hw ~system:sys ~board in
          let overlapped =
            if m >= 2 * k then
              Printf.sprintf "%12.2f"
                (Sim.Perf.run_hw_overlapped ~system:sys ~board).Sim.Perf.total_seconds
            else "           -"
          in
          Printf.printf "  %2d | %2d | %12.2f | %s\n" k m
            plain.Sim.Perf.total_seconds overlapped
      | exception Sysgen.Replicate.Infeasible _ ->
          Printf.printf "  %2d | %2d | infeasible\n" k m)
    [ (1, 2); (2, 4); (4, 8); (8, 16); (16, 16) ]

(* ---------------- A5: unroll sweep ---------------- *)

let ablate_unroll () =
  header
    "Ablation A5: innermost-loop unrolling (operators & ports vs cycles)";
  Printf.printf
    "  unroll | cycles/elt |  DSP | PLM BRAM | max m | total s (50k elts)\n";
  List.iter
    (fun u ->
      let options =
        {
          Cfd_core.Compile.default_options with
          Cfd_core.Compile.unroll = (if u = 1 then None else Some u);
        }
      in
      let r =
        Cfd_core.Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p:11 ())
      in
      match Cfd_core.Compile.build_system ~n_elements r with
      | sys ->
          let hw = Sim.Perf.run_hw ~system:sys ~board in
          Printf.printf "  %6d | %10d | %4d | %8d | %5d | %7.2f\n" u
            r.Cfd_core.Compile.hls.Hls.Model.latency_cycles
            r.Cfd_core.Compile.hls.Hls.Model.resources.Fpga_platform.Resource.dsp
            r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams
            sys.Sysgen.System.solution.Sysgen.Replicate.m
            hw.Sim.Perf.total_seconds
      | exception Sysgen.Replicate.Infeasible msg ->
          Printf.printf "  %6d | infeasible: %s\n" u msg)
    [ 1; 2; 4; 8 ]

(* ---------------- A6: initiation interval ---------------- *)

let ablate_ii () =
  header
    "Ablation A6: pipeline initiation interval\n\
     (II=1 assumes partial-sum interleaving of the f64 accumulation;\n\
     II=7 is the naive loop-carried dependence)";
  Printf.printf "  II | cycles/elt | total s (50k elts, k=16)\n";
  List.iter
    (fun ii ->
      let options =
        {
          Cfd_core.Compile.default_options with
          Cfd_core.Compile.pipeline_ii = Some ii;
        }
      in
      let r =
        Cfd_core.Compile.compile ~options (Cfdlang.Ast.inverse_helmholtz ~p:11 ())
      in
      let sys = Cfd_core.Compile.build_system ~force_k:16 ~n_elements r in
      let hw = Sim.Perf.run_hw ~system:sys ~board in
      Printf.printf "  %2d | %10d | %7.2f\n" ii
        r.Cfd_core.Compile.hls.Hls.Model.latency_cycles
        hw.Sim.Perf.total_seconds)
    [ 1; 2; 4; 7 ]

(* ---------------- DSE sweep: sequential vs parallel ---------------- *)

let jobs_flag = ref 0
let exec_p = ref 11
let out_dir = ref "."
let run_id_flag = ref ""

let out_path name = Filename.concat !out_dir name

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(* The run id names this run's record in the history directory. CI and
   tests inject one with --run-id= so the file set is deterministic;
   interactive runs fall back to a UTC timestamp + pid, which sorts
   lexicographically in run order. *)
let effective_run_id =
  lazy
    (if !run_id_flag <> "" then !run_id_flag
     else
       let tm = Unix.gmtime (Unix.gettimeofday ()) in
       Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ-p%d"
         (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
         tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec (Unix.getpid ()))

let write_atomic path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let history_file () =
  let dir = out_path "history" in
  mkdir_p dir;
  Filename.concat dir
    (Printf.sprintf "BENCH_exec.%s.json" (Lazy.force effective_run_id))

(* Every exec-family record lands twice: in the run history under
   history/BENCH_exec.<run-id>.json -- one file per run, never clobbered
   by the next run, the regression sentinel's input -- and over the
   top-level BENCH_exec.json (the latest-run convenience view every
   existing consumer reads). Both writes are temp+rename so a crash
   mid-merge never leaves a truncated record; the top-level refresh
   happens last. *)
let write_run_record content =
  let hist = history_file () in
  write_atomic hist content;
  write_atomic (out_path "BENCH_exec.json") content;
  hist

(* Read-modify-write for the cost/cache legs merging into the exec
   record: the per-run history file is the source of truth, with the
   top-level file as fallback when the leg runs standalone. *)
let merge_run_section section json =
  let read p =
    match Obs.Json.of_file p with
    | Ok (Obs.Json.Obj fields) -> Some (List.remove_assoc section fields)
    | Ok _ | Error _ -> None
  in
  let base =
    let hist = history_file () in
    match (if Sys.file_exists hist then read hist else None) with
    | Some fields -> fields
    | None ->
        let top = out_path "BENCH_exec.json" in
        if Sys.file_exists top then Option.value ~default:[] (read top)
        else []
  in
  write_run_record
    (Obs.Json.to_string (Obs.Json.Obj (base @ [ (section, json) ])))

let effective_jobs () =
  if !jobs_flag > 0 then !jobs_flag else Cfd_core.Pool.default_jobs ()

let sweep () =
  let jobs = effective_jobs () in
  header
    (Printf.sprintf
       "DSE sweep engine: sequential vs parallel (%d jobs) on the p=11\n\
        Inverse Helmholtz design space, plus polyhedral cache hit rates"
       jobs);
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:11 () in
  (* Widen the standard space so the fan-out has enough work per domain. *)
  let configurations =
    Cfd_core.Explore.standard_configurations
    @ List.concat_map
        (fun ii ->
          List.map
            (fun factorize ->
              {
                Cfd_core.Explore.label =
                  Printf.sprintf "ii=%d factorize=%b" ii factorize;
                options =
                  {
                    Cfd_core.Compile.default_options with
                    Cfd_core.Compile.pipeline_ii = Some ii;
                    factorize;
                  };
              })
            [ true; false ])
        [ 2; 4; 7 ]
  in
  let timed ?(cold = true) label jobs =
    if cold then Poly.Memo.clear_all ();
    Poly.Stats.reset ();
    let t0 = Unix.gettimeofday () in
    let outcomes =
      Cfd_core.Explore.sweep ~jobs ~configurations ~n_elements ast
    in
    let dt = Unix.gettimeofday () -. t0 in
    let hits = Poly.Stats.total_hits () and misses = Poly.Stats.total_misses () in
    Printf.printf "  %-28s %6.2f s   cache: %d hits / %d misses (%.1f%%)\n%!"
      label dt hits misses
      (if hits + misses = 0 then 0.
       else 100. *. float_of_int hits /. float_of_int (hits + misses));
    (outcomes, dt)
  in
  let seq, t_seq = timed "sequential, cold cache" 1 in
  let warm, t_warm = timed ~cold:false "sequential, warm cache" 1 in
  let par, t_par = timed (Printf.sprintf "parallel (jobs=%d), cold" jobs) jobs in
  Printf.printf
    "  memoization speedup (warm/cold): %.2fx   parallel speedup: %.2fx\n"
    (t_seq /. t_warm) (t_seq /. t_par);
  Printf.printf "  outcomes identical across all runs: %b\n"
    (seq = warm && seq = par);
  if jobs = 1 then
    Printf.printf
      "  (only one recommended domain on this machine; pass --jobs=N to force)\n";
  Printf.printf "\n  per-cache statistics of the parallel run:\n%s"
    (Format.asprintf "%a" Poly.Stats.pp ());
  Printf.printf "\n  %d configurations:\n" (List.length par);
  List.iter
    (fun o -> Format.printf "    %a@." Cfd_core.Explore.pp_outcome o)
    par

(* ---------------- operator suite ---------------- *)

let operators () =
  header "SEM operator suite through the full flow (p = 11)";
  Printf.printf "  %-18s %10s %7s %5s %8s\n" "operator" "cycles/elt" "LUT" "DSP"
    "PLM BRAM";
  List.iter
    (fun (name, program) ->
      let r = Cfd_core.Compile.compile program in
      let hls = r.Cfd_core.Compile.hls in
      Printf.printf "  %-18s %10d %7d %5d %8d\n" name
        hls.Hls.Model.latency_cycles
        hls.Hls.Model.resources.Fpga_platform.Resource.lut
        hls.Hls.Model.resources.Fpga_platform.Resource.dsp
        r.Cfd_core.Compile.memory.Mnemosyne.Memgen.total_brams)
    (Cfdlang.Operators.all ~p:11 ())

(* ---------------- SEM solver convergence ---------------- *)

let sem () =
  header
    "SEM application: CG Helmholtz solve with the compiled accelerator\n\
     kernel in the loop (manufactured solution, spectral convergence)";
  let pi = Float.pi in
  let exact x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z) in
  let forcing x y z = (1.0 +. (3.0 *. pi *. pi)) *. exact x y z in
  Printf.printf "  ne |  n | CG iters | max error (accelerated backend)\n";
  List.iter
    (fun (ne, n) ->
      let mesh = Sem.Mesh.create ~ne ~n in
      let operator = Sem.Operator.create ~lambda:1.0 ~mesh () in
      let u, stats =
        Sem.Solver.solve ~backend:Sem.Solver.Accelerator ~mesh ~operator
          ~f:forcing ()
      in
      Printf.printf "  %2d | %2d | %8d | %.3e\n" ne n
        stats.Sem.Solver.iterations
        (Sem.Solver.max_error mesh u ~exact))
    [ (1, 4); (1, 6); (1, 8); (2, 4); (2, 5); (2, 6) ]

(* ---------------- Execution engine micro-benchmark ---------------- *)

(* Adaptive timing: doubles the repetition count until a batch takes at
   least ~0.25 s, then reports seconds per run. *)
let time_per_run f =
  f ();
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.25 && reps < 1 lsl 22 then go (reps * 2)
    else dt /. float_of_int reps
  in
  go 1

(* Noise-robust timing for the functional-simulation matrix: one warmup,
   repetitions calibrated so a sample is >= ~60 ms, then the minimum per-
   run time over three samples (the minimum filters scheduler noise,
   which only ever adds time). *)
let time_min f =
  f ();
  let sample reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let rec calib reps =
    let per = sample reps in
    if per *. float_of_int reps < 0.06 && reps < 1 lsl 20 then calib (reps * 2)
    else (reps, per)
  in
  let reps, first = calib 1 in
  Float.min first (Float.min (sample reps) (sample reps))

let exec () =
  let p = !exec_p in
  let jobs = effective_jobs () in
  header
    (Printf.sprintf
       "Execution engine: tree-walking interpreter vs compiled LoopIR\n\
        (p=%d Inverse Helmholtz, ns per element; parallel at %d jobs)"
       p jobs);
  let r = compile ~p ~sharing:true () in
  let proc = r.Cfd_core.Compile.proc in
  let mode = Analysis.Verify.execution_mode proc in
  let mode_name =
    match mode with
    | Loopir.Compiled.Unchecked -> "unchecked"
    | Loopir.Compiled.Checked -> "checked"
    | Loopir.Compiled.Debug -> "debug"
  in
  let engine = Loopir.Compiled.compile ~mode proc in
  let storage = r.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage in
  let buffer_of name =
    match List.assoc_opt name storage with
    | Some (b, off) -> (b, off)
    | None -> (name, 0)
  in
  let inputs = Cfdlang.Eval.random_inputs ~seed:1 r.Cfd_core.Compile.checked in
  (* One interpreter memory and one compiled frame, staged identically. *)
  let memory = Hashtbl.create 16 in
  List.iter
    (fun (prm : Loopir.Prog.param) ->
      Hashtbl.replace memory prm.Loopir.Prog.name
        (Array.make prm.Loopir.Prog.size 0.0))
    proc.Loopir.Prog.params;
  let stage_frame frame =
    List.iter
      (fun (name, tensor) ->
        let buf, off = buffer_of name in
        let data = Tensor.Dense.to_array tensor in
        Array.blit data 0
          (Loopir.Compiled.buffer engine frame buf)
          off (Array.length data))
      inputs
  in
  let frame = Loopir.Compiled.make_frame engine in
  stage_frame frame;
  List.iter
    (fun (name, tensor) ->
      let buf, off = buffer_of name in
      let data = Tensor.Dense.to_array tensor in
      Array.blit data 0 (Hashtbl.find memory buf) off (Array.length data))
    inputs;
  let t_interp = time_per_run (fun () -> Loopir.Interp.run proc memory) in
  let t_compiled = time_per_run (fun () -> Loopir.Compiled.run engine frame) in
  (* Parallel leg: [jobs] frames driven concurrently, as the functional
     simulator drives the k accelerators of a controller round. *)
  let par_frames =
    List.init jobs (fun _ ->
        let f = Loopir.Compiled.make_frame engine in
        stage_frame f;
        f)
  in
  let reps_inner = max 1 (int_of_float (0.25 /. Float.max t_compiled 1e-9)) in
  let t0 = Unix.gettimeofday () in
  List.iter
    (function
      | Ok () -> ()
      | Error (e : Cfd_core.Pool.error) -> failwith e.Cfd_core.Pool.message)
    (Cfd_core.Pool.map ~jobs
       (fun f ->
         for _ = 1 to reps_inner do
           Loopir.Compiled.run engine f
         done)
       par_frames);
  let t_parallel =
    (Unix.gettimeofday () -. t0) /. float_of_int (jobs * reps_inner)
  in
  let ns t = t *. 1e9 in
  Printf.printf "  engine mode: %s (verifier license)\n" mode_name;
  Printf.printf "  %-22s %14.0f ns/element\n" "tree-walking" (ns t_interp);
  Printf.printf "  %-22s %14.0f ns/element  (%.2fx)\n" "compiled" (ns t_compiled)
    (t_interp /. t_compiled);
  Printf.printf "  %-22s %14.0f ns/element  (%.2fx, %d jobs, %d host core%s)\n"
    "compiled+parallel" (ns t_parallel) (t_interp /. t_parallel) jobs
    (Cfd_core.Pool.default_jobs ())
    (if Cfd_core.Pool.default_jobs () = 1 then "" else "s");
  (* Functional simulation of the full system: a jobs x elements matrix
     over both scheduling strategies. The sequential baseline is the
     round-scheduled strategy at jobs:1 (the Kelly-faithful host loop
     with no helper domains); the parallel story is the element-sharded
     strategy, whose single dispatch amortizes pool costs over the whole
     run. *)
  let n_headline = 1024 in
  let sys = Cfd_core.Compile.build_system ~n_elements:n_headline r in
  Sysgen.System.validate sys;
  let sol = sys.Sysgen.System.solution in
  Printf.printf "  system: k=%d accelerators, m=%d PLM sets, batch=%d\n"
    sol.Sysgen.Replicate.k sol.Sysgen.Replicate.m sol.Sysgen.Replicate.batch;
  let element_inputs =
    List.map (fun (n, t) -> (n, Tensor.Dense.to_array t)) inputs
  in
  let sim_time ~strategy ~jobs n =
    time_min (fun () ->
        ignore
          (Sim.Functional.run ~jobs ~strategy ~system:sys ~proc
             ~inputs:(fun _ -> element_inputs)
             ~n ()))
  in
  (* The headline parallel leg runs at the effective job count: forcing
     jobs > cores would only measure the runtime's stop-the-world GC
     synchronizing oversubscribed domains, not the simulator. The matrix
     still carries the fixed jobs 2 and 4 legs for cross-host
     trajectory comparison. *)
  let jobs_par = jobs in
  let jobs_list = List.sort_uniq compare [ 1; 2; 4; jobs_par ] in
  let elements_list = [ 64; 256; n_headline ] in
  Printf.printf
    "  functional simulation (min-of-3 timing; speedup vs round-scheduled \
     jobs:1):\n";
  Printf.printf "    %8s | %-15s | %4s | %10s | %7s\n" "elements" "strategy"
    "jobs" "seconds" "speedup";
  let matrix =
    List.concat_map
      (fun n ->
        let t_seq = sim_time ~strategy:Sim.Functional.Round_scheduled ~jobs:1 n in
        let legs =
          ((Sim.Functional.Round_scheduled, 1), t_seq)
          :: List.map
               (fun j ->
                 ((Sim.Functional.Sharded, j),
                  sim_time ~strategy:Sim.Functional.Sharded ~jobs:j n))
               jobs_list
          @
          if jobs_par = 1 then []
          else
            [
              ((Sim.Functional.Round_scheduled, jobs_par),
               sim_time ~strategy:Sim.Functional.Round_scheduled ~jobs:jobs_par n);
            ]
        in
        List.map
          (fun ((strategy, j), t) ->
            let speedup = t_seq /. t in
            Printf.printf "    %8d | %-15s | %4d | %10.4f | %6.2fx\n" n
              (Sim.Functional.strategy_name strategy)
              j t speedup;
            (n, strategy, j, t, speedup))
          legs)
      elements_list
  in
  let find ~strategy ~jobs n =
    let _, _, _, t, speedup =
      List.find
        (fun (n', s, j, _, _) -> n' = n && s = strategy && j = jobs)
        matrix
    in
    (t, speedup)
  in
  let t_sim_seq, _ = find ~strategy:Sim.Functional.Round_scheduled ~jobs:1 n_headline in
  let t_shard1, _ = find ~strategy:Sim.Functional.Sharded ~jobs:1 n_headline in
  let t_sim_par, sim_par_speedup =
    find ~strategy:Sim.Functional.Sharded ~jobs:jobs_par n_headline
  in
  let shard1_overhead = (t_shard1 /. t_sim_seq) -. 1.0 in
  Printf.printf
    "  headline (%d elements): seq %.4f s | sharded jobs:1 %.4f s (%+.1f%% \
     overhead) | sharded jobs:%d %.4f s (%.2fx)\n"
    n_headline t_sim_seq t_shard1 (100. *. shard1_overhead) jobs_par t_sim_par
    sim_par_speedup;
  let matrix_json =
    Obs.Json.to_string
      (Obs.Json.List
         (List.map
            (fun (n, strategy, j, t, speedup) ->
              Obs.Json.Obj
                [
                  ("elements", Obs.Json.Int n);
                  ("strategy",
                   Obs.Json.String (Sim.Functional.strategy_name strategy));
                  ("jobs", Obs.Json.Int j);
                  ("seconds", Obs.Json.Float t);
                  ("speedup_vs_seq", Obs.Json.Float speedup);
                ])
            matrix))
  in
  (* Per-stage compile timing breakdown from the compile.* spans of this
     experiment's own compilation (empty when tracing is off). *)
  let stage_us =
    List.fold_left
      (fun acc (e : Obs.Trace.event) ->
        let n = e.Obs.Trace.ev_name in
        if String.length n > 8 && String.sub n 0 8 = "compile." then
          let stage = String.sub n 8 (String.length n - 8) in
          let prev = Option.value ~default:0. (List.assoc_opt stage acc) in
          (stage, prev +. e.Obs.Trace.ev_dur) :: List.remove_assoc stage acc
        else acc)
      [] (Obs.Trace.events ())
    |> List.rev
  in
  let stage_json =
    Obs.Json.to_string
      (Obs.Json.Obj (List.map (fun (s, us) -> (s, Obs.Json.Float us)) stage_us))
  in
  (* Machine-readable trajectory record, stamped with the run's
     provenance manifest (build identity, argv, host, platform). *)
  let manifest_json =
    Obs.Json.to_string
      (Cfd_core.Version.manifest ~run_id:(Lazy.force effective_run_id) ())
  in
  let record =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": \"exec\",\n\
    \  \"kernel\": \"inverse_helmholtz\",\n\
    \  \"p\": %d,\n\
    \  \"mode\": \"%s\",\n\
    \  \"treewalk_ns_per_element\": %.1f,\n\
    \  \"compiled_ns_per_element\": %.1f,\n\
    \  \"compiled_speedup\": %.2f,\n\
    \  \"host_cores\": %d,\n\
    \  \"parallel_jobs\": %d,\n\
    \  \"parallel_ns_per_element\": %.1f,\n\
    \  \"parallel_speedup\": %.2f,\n\
    \  \"functional_sim_elements\": %d,\n\
    \  \"functional_sim_strategy\": \"sharded\",\n\
    \  \"functional_sim_jobs\": %d,\n\
    \  \"functional_sim_seq_seconds\": %.4f,\n\
    \  \"functional_sim_shard1_seconds\": %.4f,\n\
    \  \"functional_sim_shard1_overhead\": %.4f,\n\
    \  \"functional_sim_par_seconds\": %.4f,\n\
    \  \"functional_sim_par_speedup\": %.2f,\n\
    \  \"functional_sim_matrix\": %s,\n\
    \  \"compile_stage_us\": %s,\n\
    \  \"manifest\": %s\n\
     }\n"
      p mode_name (ns t_interp) (ns t_compiled) (t_interp /. t_compiled)
      (Cfd_core.Pool.default_jobs ()) jobs (ns t_parallel)
      (t_interp /. t_parallel) n_headline jobs_par t_sim_seq t_shard1
      shard1_overhead t_sim_par sim_par_speedup matrix_json stage_json
      manifest_json
  in
  let hist = write_run_record record in
  Printf.printf "  wrote %s\n" hist;
  Printf.printf "  wrote %s\n" (out_path "BENCH_exec.json")

(* ---------------- Memory profiler overhead ---------------- *)

(* The recorder's gate is at compile time: an engine compiled while the
   provider is absent carries no instrumentation (the disabled leg here
   is the exact production path), one compiled while recording is on
   reports every PLM access. The ratio is the cost of observability. *)
let memprof_bench () =
  header
    "Memory profiler overhead: compiled engine with the PLM access\n\
     recorder disabled vs enabled (p=11 Inverse Helmholtz)";
  let r = compile ~p:11 ~sharing:true () in
  let proc = r.Cfd_core.Compile.proc in
  let mode = Analysis.Verify.execution_mode proc in
  let storage = r.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage in
  let buffer_of name =
    match List.assoc_opt name storage with
    | Some (b, off) -> (b, off)
    | None -> (name, 0)
  in
  let inputs = Cfdlang.Eval.random_inputs ~seed:1 r.Cfd_core.Compile.checked in
  let timed recording =
    if recording then Memprof.Record.enable () else Memprof.Record.disable ();
    let engine = Loopir.Compiled.compile ~mode proc in
    let frame = Loopir.Compiled.make_frame engine in
    List.iter
      (fun (name, tensor) ->
        let buf, off = buffer_of name in
        let data = Tensor.Dense.to_array tensor in
        Array.blit data 0
          (Loopir.Compiled.buffer engine frame buf)
          off (Array.length data))
      inputs;
    let t = time_per_run (fun () -> Loopir.Compiled.run engine frame) in
    let probed = Loopir.Compiled.probed engine in
    Memprof.Record.disable ();
    (t, probed)
  in
  let t_off, probed_off = timed false in
  let t_on, probed_on = timed true in
  let sn = Memprof.Record.snapshot () in
  let ns t = t *. 1e9 in
  Printf.printf "  %-22s %14.0f ns/element  (instrumented: %b)\n"
    "recorder disabled" (ns t_off) probed_off;
  Printf.printf "  %-22s %14.0f ns/element  (instrumented: %b, %.2fx)\n"
    "recorder enabled" (ns t_on) probed_on (t_on /. t_off);
  Printf.printf "  recorded across all timing reps: %d accesses over %d buffers\n"
    sn.Memprof.Record.sn_accesses
    (List.length sn.Memprof.Record.sn_buffers);
  let oc = open_out (out_path "BENCH_memprof.json") in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"memprof\",\n\
    \  \"kernel\": \"inverse_helmholtz\",\n\
    \  \"p\": 11,\n\
    \  \"disabled_instrumented\": %b,\n\
    \  \"enabled_instrumented\": %b,\n\
    \  \"disabled_ns_per_element\": %.1f,\n\
    \  \"enabled_ns_per_element\": %.1f,\n\
    \  \"overhead_factor\": %.2f,\n\
    \  \"accesses_recorded\": %d,\n\
    \  \"buffers\": %d\n\
     }\n"
    probed_off probed_on (ns t_off) (ns t_on) (t_on /. t_off)
    sn.Memprof.Record.sn_accesses
    (List.length sn.Memprof.Record.sn_buffers);
  close_out oc;
  Printf.printf "  wrote %s\n" (out_path "BENCH_memprof.json")

(* ---------------- Static cost model ---------------- *)

(* Two legs. Prediction: the closed-form cycle model vs the simulated
   controller FSM, plus the cost-drift verdict of a full differential
   run (both must come out exact — the model replicates Sim.Perf's
   arithmetic operation for operation). Pruning: the standard sweep with
   and without the static pre-filter, frontier compared for equality and
   the saved simulations counted. The record merges into BENCH_exec.json
   under "cost", so run this after the exec experiment (which rewrites
   that file from scratch). *)
let cost_bench () =
  let p = !exec_p in
  header
    (Printf.sprintf
       "Static cost model: prediction error and DSE pruning (p=%d\n\
        Inverse Helmholtz, %d elements)"
       p n_elements);
  let ast = Cfdlang.Ast.inverse_helmholtz ~p () in
  let r = Cfd_core.Compile.compile ast in
  let report = Cfd_core.Costing.analyze ~diff:true ~sim_n:4 ~n_elements r in
  let est =
    match report.Cfd_core.Costing.estimate with
    | Some e -> e
    | None -> failwith "cost: default configuration infeasible"
  in
  let sys = Cfd_core.Compile.build_system ~n_elements r in
  let hw = Sim.Perf.run_hw ~system:sys ~board in
  let predicted = est.Analysis.Cost.ce_total_cycles
  and simulated = hw.Sim.Perf.total_cycles in
  let prediction_error =
    abs_float (float_of_int (predicted - simulated)) /. float_of_int simulated
  in
  let drift = Option.value ~default:[] report.Cfd_core.Costing.drift in
  Printf.printf "  predicted %d cycles, simulated %d: error %.6f%%\n" predicted
    simulated (100. *. prediction_error);
  Printf.printf "  drift diagnostics (differential run, 4 elements): %d\n"
    (List.length drift);
  let jobs = effective_jobs () in
  let perf_runs = Obs.Metrics.counter "sim.perf.runs" in
  let pruned_counter = Obs.Metrics.counter "explore.pruned" in
  let timed prefilter =
    Poly.Memo.clear_all ();
    let sims0 = Obs.Metrics.counter_value perf_runs in
    let pruned0 = Obs.Metrics.counter_value pruned_counter in
    let t0 = Unix.gettimeofday () in
    let outcomes = Cfd_core.Explore.sweep ~jobs ~prefilter ~n_elements ast in
    let dt = Unix.gettimeofday () -. t0 in
    ( outcomes,
      dt,
      Obs.Metrics.counter_value perf_runs - sims0,
      Obs.Metrics.counter_value pruned_counter - pruned0 )
  in
  let full, t_full, sims_full, _ = timed false in
  let filtered, t_filtered, sims_filtered, pruned = timed true in
  let frontier outcomes =
    List.map
      (fun (o : Cfd_core.Explore.outcome) ->
        o.Cfd_core.Explore.configuration.Cfd_core.Explore.label)
      (Cfd_core.Explore.pareto outcomes)
  in
  let frontier_identical = frontier full = frontier filtered in
  Printf.printf
    "  sweep (jobs=%d): unfiltered %.2f s / %d simulations, prefiltered %.2f s \
     / %d simulations\n\
    \  pruned %d configurations, speedup %.2fx, frontier identical: %b\n"
    jobs t_full sims_full t_filtered sims_filtered pruned
    (t_full /. t_filtered) frontier_identical;
  let cost_json =
    Obs.Json.Obj
      [
        ("p", Obs.Json.Int p);
        ("elements", Obs.Json.Int n_elements);
        ("predicted_cycles", Obs.Json.Int predicted);
        ("simulated_cycles", Obs.Json.Int simulated);
        ("prediction_error", Obs.Json.Float prediction_error);
        ("drift_diagnostics", Obs.Json.Int (List.length drift));
        ("sweep_jobs", Obs.Json.Int jobs);
        ("sweep_unfiltered_seconds", Obs.Json.Float t_full);
        ("sweep_prefiltered_seconds", Obs.Json.Float t_filtered);
        ("sweep_speedup", Obs.Json.Float (t_full /. t_filtered));
        ("sweep_simulations_unfiltered", Obs.Json.Int sims_full);
        ("sweep_simulations_prefiltered", Obs.Json.Int sims_filtered);
        ("sweep_pruned", Obs.Json.Int pruned);
        ("frontier_identical", Obs.Json.Bool frontier_identical);
      ]
  in
  let hist = merge_run_section "cost" cost_json in
  Printf.printf "  wrote %s\n" hist;
  Printf.printf "  wrote %s\n" (out_path "BENCH_exec.json")

(* ---------------- Artifact cache ---------------- *)

(* Two legs, mirroring how the cache is consumed. Compile: cold
   (emptied store, so the run is a miss plus a store) vs warm (hit) for
   compile + check, min-of-3 with the polyhedral memos cleared before
   every rep so both legs pay the identical front-half cost and the
   delta is exactly the cached back half and verdict; the warm result
   is compared field by field against the cold one. Sweep: the
   standard design space twice over one store, counting compile.runs /
   verify.runs deltas — the warm pass must replay outcomes, not
   pipelines. Merges into BENCH_exec.json under "cache" (run after
   exec, which rewrites that file from scratch). *)
let cache_bench () =
  let p = !exec_p in
  let jobs = effective_jobs () in
  header
    (Printf.sprintf
       "Artifact cache: cold vs warm compilation, verification and DSE\n\
        (p=%d Inverse Helmholtz, %d elements, %d jobs)"
       p n_elements jobs);
  let ast = Cfdlang.Ast.inverse_helmholtz ~p () in
  let options = Cfd_core.Compile.default_options in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cfdc-bench-cache-%d" (Unix.getpid ()))
  in
  let store = Cache.Store.create ~dir () in
  let v name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let hits0 = v "cache.hits" and misses0 = v "cache.misses" in
  let compile_and_check () =
    let r = Cfd_core.Compile.compile ~cache:store ~options ast in
    (r, Cfd_core.Compile.check ~cache:store r)
  in
  let min3 ~prep f =
    let sample () =
      prep ();
      Poly.Memo.clear_all ();
      let t0 = Unix.gettimeofday () in
      let x = f () in
      (Unix.gettimeofday () -. t0, x)
    in
    let t1, x = sample () in
    let t2, _ = sample () in
    let t3, _ = sample () in
    (Float.min t1 (Float.min t2 t3), x)
  in
  let t_cold, (r_cold, d_cold) =
    min3 ~prep:(fun () -> ignore (Cache.Store.clear store)) compile_and_check
  in
  let t_warm, (r_warm, d_warm) = min3 ~prep:(fun () -> ()) compile_and_check in
  let compile_speedup = t_cold /. t_warm in
  (* Exactly the products a hit serves, plus the verdict; the front half
     is recomputed on both legs and needs no comparison. *)
  let hit_identical =
    r_cold.Cfd_core.Compile.c_source = r_warm.Cfd_core.Compile.c_source
    && Stdlib.compare r_cold.Cfd_core.Compile.proc r_warm.Cfd_core.Compile.proc
       = 0
    && Stdlib.compare r_cold.Cfd_core.Compile.memory
         r_warm.Cfd_core.Compile.memory
       = 0
    && Stdlib.compare r_cold.Cfd_core.Compile.hls r_warm.Cfd_core.Compile.hls
       = 0
    && r_cold.Cfd_core.Compile.mnemosyne_metadata
       = r_warm.Cfd_core.Compile.mnemosyne_metadata
    && Stdlib.compare d_cold d_warm = 0
  in
  Printf.printf
    "  compile+check: cold %.4f s | warm %.4f s | %.1fx | hit identical: %b\n"
    t_cold t_warm compile_speedup hit_identical;
  let sweep_leg () =
    Poly.Memo.clear_all ();
    let c0 = v "compile.runs" and v0 = v "verify.runs" in
    let t0 = Unix.gettimeofday () in
    let outcomes = Cfd_core.Explore.sweep ~jobs ~cache:store ~n_elements ast in
    let dt = Unix.gettimeofday () -. t0 in
    (outcomes, dt, v "compile.runs" - c0, v "verify.runs" - v0)
  in
  ignore (Cache.Store.clear store);
  let o_cold, t_sweep_cold, cr_cold, vr_cold = sweep_leg () in
  let o_warm, t_sweep_warm, cr_warm, vr_warm = sweep_leg () in
  let outcomes_identical = o_cold = o_warm in
  Printf.printf
    "  sweep (%d configurations): cold %.2f s / %d compiles / %d verifies\n\
    \                             warm %.2f s / %d compiles / %d verifies \
     (%.1fx)\n\
    \  outcomes identical: %b\n"
    (List.length o_cold) t_sweep_cold cr_cold vr_cold t_sweep_warm cr_warm
    vr_warm
    (t_sweep_cold /. t_sweep_warm)
    outcomes_identical;
  let s = Cache.Store.stats store in
  let hits = v "cache.hits" - hits0 and misses = v "cache.misses" - misses0 in
  Printf.printf "  store: %d entries, %d bytes | session %d hits / %d misses\n"
    s.Cache.Store.st_disk_entries s.Cache.Store.st_disk_bytes hits misses;
  let cache_json =
    Obs.Json.Obj
      [
        ("p", Obs.Json.Int p);
        ("elements", Obs.Json.Int n_elements);
        ("cold_compile_seconds", Obs.Json.Float t_cold);
        ("warm_compile_seconds", Obs.Json.Float t_warm);
        ("compile_speedup", Obs.Json.Float compile_speedup);
        ("hit_identical", Obs.Json.Bool hit_identical);
        ("sweep_jobs", Obs.Json.Int jobs);
        ("cold_sweep_seconds", Obs.Json.Float t_sweep_cold);
        ("warm_sweep_seconds", Obs.Json.Float t_sweep_warm);
        ("sweep_speedup", Obs.Json.Float (t_sweep_cold /. t_sweep_warm));
        ("cold_sweep_compile_runs", Obs.Json.Int cr_cold);
        ("warm_sweep_compile_runs", Obs.Json.Int cr_warm);
        ("cold_sweep_verify_runs", Obs.Json.Int vr_cold);
        ("warm_sweep_verify_runs", Obs.Json.Int vr_warm);
        ("sweep_outcomes_identical", Obs.Json.Bool outcomes_identical);
        ("hits", Obs.Json.Int hits);
        ("misses", Obs.Json.Int misses);
        ("evictions", Obs.Json.Int s.Cache.Store.st_evictions);
        ("disk_entries", Obs.Json.Int s.Cache.Store.st_disk_entries);
        ("disk_bytes", Obs.Json.Int s.Cache.Store.st_disk_bytes);
      ]
  in
  let hist = merge_run_section "cache" cache_json in
  Printf.printf "  wrote %s\n" hist;
  Printf.printf "  wrote %s\n" (out_path "BENCH_exec.json");
  ignore (Cache.Store.clear store);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* ---------------- Device-cycle timeline ---------------- *)

(* One shape for both legs (k=8 halves the accelerators so m >= 2k holds
   without reshaping): the overlapped total is then provably <= the
   plain total, and the record's utilization numbers compare run over
   run under the history sentinel. The reconciliation gate (timeline
   phase sums == hw_result == Analysis.Cost closed form) rides in as
   drift_errors. *)
let timeline_bench () =
  let p = !exec_p in
  let elements = 2048 in
  header
    (Printf.sprintf
       "Device-cycle timeline: utilization of the p=%d Inverse Helmholtz\n\
        (k=8 m=16, plain vs double-buffered legs, %d elements, \
        reconciliation gate)"
       p elements);
  let r = compile ~p ~sharing:true () in
  let report =
    Cfd_core.Timeline.analyze ~force_k:8 ~force_m:16
      ~overlap:Cfd_core.Timeline.Require ~n_elements:elements r
  in
  Format.printf "%a@?" Cfd_core.Timeline.pp_report report;
  let leg label =
    match Cfd_core.Timeline.find_leg report label with
    | Some l -> l
    | None -> failwith ("timeline bench: missing leg " ^ label)
  in
  let plain = leg "plain" and overl = leg "overlapped" in
  let dp = plain.Cfd_core.Timeline.leg_derived in
  let dv = overl.Cfd_core.Timeline.leg_derived in
  let drift_errors =
    List.length
      (Analysis.Diagnostic.errors (Cfd_core.Timeline.diagnostics report))
  in
  let saved =
    dp.Cfd_core.Timeline.d_total_cycles - dv.Cfd_core.Timeline.d_total_cycles
  in
  Printf.printf "  overlap saves %d cycles (%.1f%%)\n" saved
    (100. *. float_of_int saved
    /. float_of_int (max 1 dp.Cfd_core.Timeline.d_total_cycles));
  let timeline_json =
    Obs.Json.Obj
      [
        ("p", Obs.Json.Int p);
        ("elements", Obs.Json.Int elements);
        ("drift_errors", Obs.Json.Int drift_errors);
        ( "plain_total_cycles",
          Obs.Json.Int dp.Cfd_core.Timeline.d_total_cycles );
        ( "plain_compute_share",
          Obs.Json.Float dp.Cfd_core.Timeline.d_compute_share );
        ( "plain_transfer_share",
          Obs.Json.Float dp.Cfd_core.Timeline.d_transfer_share );
        ( "overlap_total_cycles",
          Obs.Json.Int dv.Cfd_core.Timeline.d_total_cycles );
        ( "overlap_efficiency",
          Obs.Json.Float dv.Cfd_core.Timeline.d_overlap_efficiency );
        ("overlap_saved_cycles", Obs.Json.Int saved);
      ]
  in
  let hist = merge_run_section "timeline" timeline_json in
  Printf.printf "  wrote %s\n" hist;
  Printf.printf "  wrote %s\n" (out_path "BENCH_exec.json")

(* ---------------- Bechamel micro-benchmarks ---------------- *)

let bechamel () =
  header "Bechamel micro-benchmarks of the compiler stages";
  let open Bechamel in
  let source = Cfdlang.Ast.to_string (Cfdlang.Ast.inverse_helmholtz ~p:11 ()) in
  let ast = Cfdlang.Ast.inverse_helmholtz ~p:11 () in
  let checked = Cfdlang.Check.check_exn ast in
  let tir = Tir.Transform.factorize (Tir.Builder.build ~name:"helm" checked) in
  let program = Lower.Flow.of_kernel ~name:"helm" tir in
  let schedule = Lower.Reschedule.compute program in
  let small = compile ~p:4 ~sharing:true () in
  let tests =
    [
      Test.make ~name:"table1: hls+mnemosyne+sysgen (p=11)"
        (Staged.stage (fun () ->
             ignore
               (Cfd_core.Compile.build_system ~force_k:8 ~n_elements:64
                  (Lazy.force shared))));
      Test.make ~name:"fig5: liveness analysis (p=11)"
        (Staged.stage (fun () -> ignore (Liveness.Analysis.analyze program schedule)));
      Test.make ~name:"fig8: mnemosyne sharing (p=11)"
        (Staged.stage (fun () ->
             ignore
               (Mnemosyne.Memgen.generate ~mode:Mnemosyne.Memgen.Sharing program
                  schedule)));
      Test.make ~name:"fig9/10: controller round (k=16)"
        (Staged.stage (fun () ->
             let ctrl = Sysgen.Axi_ctrl.create ~k:16 ~batch:1 in
             ignore (Sysgen.Axi_ctrl.run_round ctrl ~latencies:(Array.make 16 2000))));
      Test.make ~name:"frontend: parse+check (p=11)"
        (Staged.stage (fun () -> ignore (Cfdlang.Check.parse_and_check source)));
      Test.make ~name:"middle: lower+reschedule (p=11)"
        (Staged.stage (fun () ->
             ignore (Lower.Reschedule.compute (Lower.Flow.of_kernel ~name:"b" tir))));
      Test.make ~name:"backend: codegen+scalarize (p=11)"
        (Staged.stage (fun () ->
             ignore (Loopir.Scalarize.optimize (Lower.Codegen.generate program schedule))));
      Test.make ~name:"oracle: interpreter verify (p=4)"
        (Staged.stage (fun () -> ignore (Cfd_core.Compile.verify small)));
    ]
  in
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all (Benchmark.cfg ~quota ~limit:500 ()) Bechamel.Toolkit.Instance.[ monotonic_clock ] test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Bechamel.Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-46s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-46s (no estimate)\n" name)
        results)
    tests

(* ---------------- driver ---------------- *)

let experiments =
  [
    ("table1", table1);
    ("fig5", fig5);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("batch", batch);
    ("ablate-factorize", ablate_factorize);
    ("ablate-decouple", ablate_decouple);
    ("ablate-reserve", ablate_reserve);
    ("ablate-overlap", ablate_overlap);
    ("ablate-unroll", ablate_unroll);
    ("ablate-ii", ablate_ii);
    ("operators", operators);
    ("sem", sem);
    ("sweep", sweep);
    ("exec", exec);
    ("memprof", memprof_bench);
    ("cost", cost_bench);
    ("cache", cache_bench);
    ("timeline", timeline_bench);
  ]

(* Each experiment runs under its own trace window: buffers are cleared
   before and exported after, so TRACE_<target>.json holds exactly that
   target's spans. --no-trace turns the span recording off entirely for
   clean timing runs (the counters still aggregate; they are O(1) per
   engine run). *)
let run_experiment ~traced (name, f) =
  if not traced then f ()
  else begin
    Obs.Trace.set_enabled true;
    Obs.Trace.reset ();
    f ();
    let path = out_path ("TRACE_" ^ name ^ ".json") in
    Obs.Export.write_chrome_trace ~path ();
    Obs.Trace.reset ();
    Printf.printf "  wrote %s\n" path
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let named, flags =
    List.partition
      (fun a -> not (String.length a > 2 && String.sub a 0 2 = "--"))
      args
  in
  let positive_int key value =
    match int_of_string_opt value with
    | Some v when v >= 1 -> v
    | Some _ | None ->
        Printf.eprintf "%s expects a positive integer, got %S\n" key value;
        exit 2
  in
  List.iter
    (fun f ->
      match String.index_opt f '=' with
      | Some i -> (
          let key = String.sub f 0 i in
          let value = String.sub f (i + 1) (String.length f - i - 1) in
          match key with
          | "--jobs" -> jobs_flag := positive_int key value
          | "--exec-p" -> exec_p := positive_int key value
          | "--out" -> out_dir := value
          | "--run-id" ->
              let ok c =
                (c >= 'a' && c <= 'z')
                || (c >= 'A' && c <= 'Z')
                || (c >= '0' && c <= '9')
                || c = '-' || c = '_' || c = '.'
              in
              if value = "" || not (String.for_all ok value) then begin
                Printf.eprintf "--run-id expects [A-Za-z0-9._-]+, got %S\n"
                  value;
                exit 2
              end;
              run_id_flag := value
          | _ ->
              Printf.eprintf "unknown flag %s\n" f;
              exit 2)
      | None ->
          if f <> "--bechamel" && f <> "--no-trace" then begin
            Printf.eprintf "unknown flag %s\n" f;
            exit 2
          end)
    flags;
  let run_bechamel = List.mem "--bechamel" flags in
  let traced = not (List.mem "--no-trace" flags) in
  mkdir_p !out_dir;
  (match named with
  | [] -> List.iter (fun (n, f) -> run_experiment ~traced (n, f)) experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> run_experiment ~traced (name, f)
          | None ->
              Printf.eprintf "unknown experiment %s (available: %s)\n" name
                (String.concat " " (List.map fst experiments));
              exit 1)
        names);
  if run_bechamel then bechamel ()
