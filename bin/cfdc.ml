(* cfdc: the CFDlang-to-accelerator command-line compiler.

   Drives the full Figure-3 flow on a .cfd source file: emits the
   HLS-ready C99 kernel, the Mnemosyne metadata, the liveness /
   compatibility report, the PLM architecture, the system description for
   a chosen board, and a performance estimate. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise ~ii ~unroll =
  {
    Cfd_core.Compile.kernel_name = name;
    factorize;
    fuse_pointwise;
    decoupled;
    sharing;
    pipeline_ii = (if ii <= 0 then None else Some ii);
    unroll;
    static_check = false;
  }

let print_front_warnings ~name r =
  List.iter
    (fun w ->
      Format.eprintf "%a@." Analysis.Diagnostic.pp
        (Analysis.Diagnostic.warning ~rule:"front-unused" ~subject:name w))
    (Cfdlang.Check.warnings r.Cfd_core.Compile.checked)

(* Fatal exit: when the flight recorder is on, a fatal diagnostic dumps
   the post-mortem bundle (recent spans and log events, metrics, cache
   stats, provenance) before the process dies, same as an uncaught
   exception at the top level. *)
let fatal ?(code = 1) reason =
  (if Obs.Flight.enabled () then
     match Obs.Flight.write_crash ~reason () with
     | Some path -> Printf.eprintf "cfdc: crash report: %s\n%!" path
     | None -> ());
  exit code

let compile_result ?cache src options =
  match Cfd_core.Compile.compile_source ?cache ~options src with
  | Ok r -> r
  | Error msg ->
      prerr_endline ("cfdc: " ^ msg);
      fatal ("compile failed: " ^ msg)

(* ---- artifact cache (shared by the subcommands) ---- *)

let default_cache_dir = ".cfdc-cache"

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Warm-start from the content-addressed artifact cache at \
               $(docv), creating it if missing (see docs/CACHING.md). \
               Defaults to $(b,CFDC_CACHE_DIR) when that is set; with \
               neither, no cache is used")

(* Live store statistics as a crash-bundle section, registered when a
   subcommand opens a cache so a post-mortem names the store it died
   with. *)
let cache_stats_json store =
  let s = Cache.Store.stats store in
  Obs.Json.Obj
    [
      ("dir", Obs.Json.String (Option.value ~default:"" (Cache.Store.dir store)));
      ("disk_entries", Obs.Json.Int s.Cache.Store.st_disk_entries);
      ("disk_bytes", Obs.Json.Int s.Cache.Store.st_disk_bytes);
      ("hits", Obs.Json.Int s.Cache.Store.st_hits);
      ("misses", Obs.Json.Int s.Cache.Store.st_misses);
      ("evictions", Obs.Json.Int s.Cache.Store.st_evictions);
      ( "kinds",
        Obs.Json.Obj
          (List.map
             (fun (k : Cache.Store.kind_stats) ->
               ( k.Cache.Store.k_kind,
                 Obs.Json.Obj
                   [
                     ("entries", Obs.Json.Int k.Cache.Store.k_entries);
                     ("bytes", Obs.Json.Int k.Cache.Store.k_bytes);
                   ] ))
             s.Cache.Store.st_kinds) );
    ]

(* --cache-dir beats CFDC_CACHE_DIR beats no cache. *)
let cache_of dir_flag =
  let dir =
    match dir_flag with
    | Some d -> Some d
    | None -> (
        match Sys.getenv_opt "CFDC_CACHE_DIR" with
        | Some "" | None -> None
        | Some d -> Some d)
  in
  Option.map
    (fun dir ->
      let store = Cache.Store.create ~dir () in
      Obs.Flight.add_section "cache" (fun () -> cache_stats_json store);
      store)
    dir

(* ---- observability sinks (shared by the subcommands) ---- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON (loadable in Perfetto or \
               chrome://tracing) to $(docv) on exit")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the metrics registry (counters, gauges, histograms) as \
               JSON to $(docv) on exit")

let summary_arg =
  Arg.(value & flag & info [ "summary" ]
         ~doc:"Print a human-readable span-timing and metrics summary on exit")

let log_arg =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
         ~doc:"Append structured log events (leveled, span-correlated) to \
               $(docv) as JSON lines")

let log_level_arg =
  Arg.(value
       & opt (some (enum
                [ ("debug", Obs.Log.Debug); ("info", Obs.Log.Info);
                  ("warn", Obs.Log.Warn); ("error", Obs.Log.Error) ]))
           None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Minimum level recorded by the event log (default: warn)")

let flight_arg =
  Arg.(value & flag & info [ "flight" ]
         ~doc:"Keep the flight recorder on: retain the most recent spans and \
               log events per domain in a bounded ring and dump a crash \
               report on fatal exit (also enabled by $(b,CFDC_FLIGHT=1); \
               report directory from $(b,CFDC_CRASH_DIR), default \
               crash-reports/)")

type obs_opts = {
  oo_trace : string option;
  oo_metrics : string option;
  oo_summary : bool;
  oo_log : string option;
  oo_log_level : Obs.Log.level option;
  oo_flight : bool;
}

let obs_opts_term =
  let mk oo_trace oo_metrics oo_summary oo_log oo_log_level oo_flight =
    { oo_trace; oo_metrics; oo_summary; oo_log; oo_log_level; oo_flight }
  in
  Term.(
    const mk $ trace_arg $ metrics_arg $ summary_arg $ log_arg $ log_level_arg
    $ flight_arg)

(* The sinks run via [at_exit] so the files are written even when a
   subcommand exits non-zero (check failures, infeasible systems). *)
let obs_setup ?(force_summary = false) oo =
  let summary = oo.oo_summary || force_summary in
  (match oo.oo_log_level with
  | Some l -> Obs.Log.set_level l
  | None -> ());
  (match oo.oo_log with
  | Some path ->
      Obs.Log.set_sink (Some (open_out path));
      at_exit (fun () -> Obs.Log.set_sink None)
  | None -> ());
  if oo.oo_flight then Obs.Flight.set_enabled true;
  if oo.oo_trace <> None || summary then Obs.Trace.set_enabled true;
  if oo.oo_trace <> None || oo.oo_metrics <> None || summary then
    at_exit (fun () ->
        (match oo.oo_trace with
        | Some path -> Obs.Export.write_chrome_trace ~path ()
        | None -> ());
        (match oo.oo_metrics with
        | Some path -> Obs.Export.write_metrics ~path ()
        | None -> ());
        if summary then Format.printf "%a@?" Obs.Export.pp_summary ())

(* ---- compile command ---- *)

let do_compile file out_dir name factorize decoupled sharing fuse_pointwise ii
    unroll verify cache_dir oo =
  obs_setup oo;
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise ~ii ~unroll
  in
  let r = compile_result ?cache:(cache_of cache_dir) src options in
  print_front_warnings ~name r;
  (match out_dir with
  | None -> print_string r.Cfd_core.Compile.c_source
  | Some dir ->
      mkdir_p dir;
      write_file (Filename.concat dir (name ^ ".c")) r.Cfd_core.Compile.c_source;
      write_file
        (Filename.concat dir (name ^ ".mnemosyne"))
        r.Cfd_core.Compile.mnemosyne_metadata;
      write_file
        (Filename.concat dir (name ^ ".plm"))
        (Format.asprintf "%a"
           Mnemosyne.Memgen.pp_architecture r.Cfd_core.Compile.memory);
      Printf.printf "wrote %s/{%s.c, %s.mnemosyne, %s.plm}\n" dir name name name);
  if verify then
    if Cfd_core.Compile.verify r then print_endline "verify: OK"
    else begin
      print_endline "verify: FAILED";
      exit 1
    end;
  Format.printf "%a@." Hls.Model.pp_report r.Cfd_core.Compile.hls

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"CFDlang source file")

let out_dir_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
         ~doc:"Output directory for generated artifacts (default: print C to stdout)")

let name_arg =
  Arg.(value & opt string "kernel" & info [ "name" ] ~doc:"Kernel name")

let factorize_arg =
  Arg.(value & opt bool true & info [ "factorize" ] ~doc:"Factorize contractions (Section IV-A)")

let decoupled_arg =
  Arg.(value & opt bool true & info [ "decoupled" ] ~doc:"Export temporaries to PLMs (Section V-A)")

let sharing_arg =
  Arg.(value & opt bool true & info [ "sharing" ] ~doc:"Enable Mnemosyne memory sharing")

let fuse_pointwise_arg =
  Arg.(value & flag & info [ "fuse-pointwise" ] ~doc:"Fuse element-wise consumers into producer loops")

let ii_arg =
  Arg.(value & opt int 1 & info [ "ii" ] ~doc:"Pipeline initiation interval (0 disables pipelining)")

let unroll_arg =
  Arg.(value & opt (some int) None & info [ "unroll" ] ~doc:"Unroll factor for innermost loops")

let verify_arg =
  Arg.(value & flag & info [ "verify" ] ~doc:"Execute the generated kernel against the DSL semantics")

let compile_cmd =
  let doc = "compile a CFDlang kernel to HLS-ready C99 + memory metadata" in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const do_compile $ file_arg $ out_dir_arg $ name_arg $ factorize_arg
      $ decoupled_arg $ sharing_arg $ fuse_pointwise_arg $ ii_arg $ unroll_arg
      $ verify_arg $ cache_dir_arg $ obs_opts_term)

(* ---- check command ---- *)

let do_check file name factorize decoupled sharing fuse_pointwise ii unroll
    fail_on_warning stats cache_dir oo =
  obs_setup oo;
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise ~ii ~unroll
  in
  let cache = cache_of cache_dir in
  let r = compile_result ?cache src options in
  let diags = Cfd_core.Compile.check ?cache r in
  List.iter (fun d -> Format.printf "%a@." Analysis.Diagnostic.pp d) diags;
  if stats then Format.printf "%a" Obs.Export.pp_metrics ();
  if diags = [] then print_endline "check: OK"
  else Format.printf "check: %s@." (Analysis.Diagnostic.summary diags);
  if
    Analysis.Diagnostic.errors diags <> []
    || (fail_on_warning && Analysis.Diagnostic.warnings diags <> [])
  then fatal ("check failed: " ^ Analysis.Diagnostic.summary diags)

let fail_on_warning_arg =
  Arg.(value & flag & info [ "fail-on-warning" ]
         ~doc:"Exit non-zero on warnings, not just errors")

let check_stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print polyhedral cache hit/miss statistics after the check")

let check_cmd =
  let doc = "statically verify the compiled pipeline: dependence \
             preservation, affine bounds, PLM sharing soundness, \
             use-before-def (see docs/ANALYSIS.md)" in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const do_check $ file_arg $ name_arg $ factorize_arg $ decoupled_arg
      $ sharing_arg $ fuse_pointwise_arg $ ii_arg $ unroll_arg
      $ fail_on_warning_arg $ check_stats_arg $ cache_dir_arg $ obs_opts_term)

(* ---- report command ---- *)

let do_report file name factorize decoupled sharing =
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise:false ~ii:1
      ~unroll:None
  in
  let r = compile_result src options in
  (match Cfdlang.Check.warnings r.Cfd_core.Compile.checked with
  | [] -> ()
  | ws -> List.iter (fun w -> Format.printf "warning: %s@." w) ws);
  Format.printf "=== tensor IR ===@.%a@." Tir.Ir.pp_kernel r.Cfd_core.Compile.tir;
  Format.printf "=== liveness ===@.%a@." Liveness.Analysis.pp r.Cfd_core.Compile.liveness;
  Format.printf "=== compatibility graph (Figure 5) ===@.%a@."
    Liveness.Analysis.pp_graph
    (Liveness.Analysis.compatibility_graph r.Cfd_core.Compile.liveness);
  Format.printf "=== PLM architecture ===@.%a@."
    Mnemosyne.Memgen.pp_architecture r.Cfd_core.Compile.memory;
  Format.printf "=== HLS report ===@.%a@." Hls.Model.pp_report r.Cfd_core.Compile.hls

let report_cmd =
  let doc = "print the analysis artifacts (IR, liveness, compatibility, PLM, HLS)" in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const do_report $ file_arg $ name_arg $ factorize_arg $ decoupled_arg
      $ sharing_arg)

(* ---- system command ---- *)

let do_system file name factorize decoupled sharing elements k m oo =
  obs_setup oo;
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise:false ~ii:1
      ~unroll:None
  in
  let r = compile_result src options in
  match
    Cfd_core.Compile.build_system ?force_k:k ?force_m:m ~n_elements:elements r
  with
  | sys ->
      Sysgen.System.validate sys;
      Format.printf "%a@." Sysgen.System.pp sys;
      let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board in
      let hw = Sim.Perf.run_hw ~system:sys ~board in
      Format.printf "performance: %a@." Sim.Perf.pp_hw hw;
      Format.printf "bottleneck: %a@." Sim.Bottleneck.pp
        (Sim.Bottleneck.analyze ~system:sys ~board ())
  | exception Sysgen.Replicate.Infeasible msg ->
      prerr_endline ("cfdc: infeasible: " ^ msg);
      fatal ("infeasible: " ^ msg)

let elements_arg =
  Arg.(value & opt int 50000 & info [ "elements" ] ~doc:"Number of CFD elements to simulate")

let k_arg = Arg.(value & opt (some int) None & info [ "k" ] ~doc:"Force k accelerators")
let m_arg = Arg.(value & opt (some int) None & info [ "m" ] ~doc:"Force m PLM sets")

let system_cmd =
  let doc = "solve Equation (3), build the system description, and estimate performance" in
  Cmd.v (Cmd.info "system" ~doc)
    Term.(
      const do_system $ file_arg $ name_arg $ factorize_arg $ decoupled_arg
      $ sharing_arg $ elements_arg $ k_arg $ m_arg $ obs_opts_term)

(* ---- emit command: system artifacts ---- *)

let do_emit file out_dir name factorize decoupled sharing elements k m =
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise:false ~ii:1
      ~unroll:None
  in
  let r = compile_result src options in
  match
    Cfd_core.Compile.build_system ?force_k:k ?force_m:m ~n_elements:elements r
  with
  | exception Sysgen.Replicate.Infeasible msg ->
      prerr_endline ("cfdc: infeasible: " ^ msg);
      fatal ("infeasible: " ^ msg)
  | sys ->
      Sysgen.System.validate sys;
      mkdir_p out_dir;
      let out suffix contents =
        write_file (Filename.concat out_dir (name ^ suffix)) contents
      in
      out ".c" r.Cfd_core.Compile.c_source;
      out ".mnemosyne" r.Cfd_core.Compile.mnemosyne_metadata;
      out "_host.c" (Sysgen.Host_emit.c_host_source ~kernel_name:name sys);
      out "_host.h" (Sysgen.Host_emit.c_header ~kernel_name:name sys);
      out "_ctrl.v"
        (Sysgen.Hdl_emit.controller_verilog
           ~k:sys.Sysgen.System.solution.Sysgen.Replicate.k
           ~batch:sys.Sysgen.System.solution.Sysgen.Replicate.batch);
      out "_system.v" (Sysgen.Hdl_emit.top_verilog ~kernel_name:name sys);
      out "_plm.v" (Mnemosyne.Plm_emit.verilog r.Cfd_core.Compile.memory);
      out "_accel.hpp" (Sysgen.Bindings_emit.cpp_header ~kernel_name:name sys);
      out "_accel.f90" (Sysgen.Bindings_emit.fortran_module ~kernel_name:name sys);
      Printf.printf
        "wrote %s/%s{.c,.mnemosyne,_host.c,_host.h,_ctrl.v,_system.v,_plm.v,_accel.hpp,_accel.f90}\n"
        out_dir name

let emit_out_dir_arg =
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
         ~doc:"Output directory for the system artifacts")

let emit_cmd =
  let doc = "emit every system artifact: kernel C, Mnemosyne metadata, host \
             driver, controller and top-level Verilog, Fortran/C++ handles" in
  Cmd.v (Cmd.info "emit" ~doc)
    Term.(
      const do_emit $ file_arg $ emit_out_dir_arg $ name_arg $ factorize_arg
      $ decoupled_arg $ sharing_arg $ elements_arg $ k_arg $ m_arg)

(* ---- explore command ---- *)

let do_explore file elements jobs prefilter stats cache_dir oo =
  obs_setup oo;
  let src = read_file file in
  let ast =
    match Cfdlang.Parser.parse src with
    | ast -> ast
    | exception Cfdlang.Parser.Error (pos, msg) ->
        prerr_endline
          (Printf.sprintf "cfdc: parse error at %d:%d: %s" pos.Cfdlang.Lexer.line
             pos.Cfdlang.Lexer.col msg);
        fatal ("parse error: " ^ msg)
  in
  let jobs = if jobs <= 0 then Cfd_core.Pool.default_jobs () else jobs in
  let pruned_counter = Obs.Metrics.counter "explore.pruned" in
  let pruned0 = Obs.Metrics.counter_value pruned_counter in
  let outcomes =
    Cfd_core.Explore.sweep ~jobs ~prefilter
      ?cache:(cache_of cache_dir)
      ~n_elements:elements ast
  in
  Format.printf "design space (%d elements, %d jobs%s):@." elements jobs
    (if prefilter then ", static prefilter" else "");
  List.iter (fun o -> Format.printf "  %a@." Cfd_core.Explore.pp_outcome o) outcomes;
  Format.printf "Pareto front:@.";
  List.iter
    (fun o -> Format.printf "  %a@." Cfd_core.Explore.pp_outcome o)
    (Cfd_core.Explore.pareto outcomes);
  if prefilter then
    Format.printf "pruned without simulation: %d@."
      (Obs.Metrics.counter_value pruned_counter - pruned0);
  if stats then Format.printf "%a" Obs.Export.pp_metrics ()

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Evaluate configurations on $(docv) domains in parallel \
               (0 = one per recommended core; 1 = sequential)")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print polyhedral cache hit/miss statistics after the sweep")

let prefilter_arg =
  Arg.(value & flag & info [ "prefilter" ]
         ~doc:"Skip simulating configurations whose static cost estimate is \
               dominated by another configuration (the Pareto front is \
               unchanged; the pruned count is reported)")

let explore_cmd =
  let doc = "sweep the memory/compute configurations and print the Pareto front" in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const do_explore $ file_arg $ elements_arg $ jobs_arg $ prefilter_arg
      $ stats_arg $ cache_dir_arg $ obs_opts_term)

(* ---- functional-simulation strategy flag (profile / memprof) ---- *)

let strategy_conv =
  let parse s =
    match Sim.Functional.strategy_of_string s with
    | Ok v -> Ok v
    | Error msg -> Error (`Msg msg)
  in
  let print fmt s = Format.pp_print_string fmt (Sim.Functional.strategy_name s) in
  Arg.conv (parse, print)

let strategy_arg =
  Arg.(value & opt strategy_conv Sim.Functional.Round_scheduled
       & info [ "strategy" ] ~docv:"STRATEGY"
           ~doc:"Functional-simulation scheduling strategy: $(b,shard) \
                 (element-sharded, one long-lived task per domain — the \
                 multi-core fast path) or $(b,round) (Kelly-schedule-faithful \
                 controller rounds — the only strategy the PLM access \
                 recorder can reconstruct timestamps from, and the default \
                 here because these subcommands feed the memory profiler)")

(* ---- memprof command ---- *)

(* Deterministic synthetic inputs for the simulation leg: affine kernels
   have data-independent access patterns, so any finite values do. *)
let synthetic_inputs sys =
  let shapes =
    List.map
      (fun (tr : Sysgen.System.transfer) ->
        (tr.Sysgen.System.array, tr.Sysgen.System.bytes / 8))
      sys.Sysgen.System.host.Sysgen.System.per_element_in
  in
  fun e ->
    List.map
      (fun (nm, words) ->
        ( nm,
          Array.init words (fun i ->
              float_of_int ((((e + 1) * 31) + i) mod 97) /. 97.) ))
      shapes

(* Run the functional simulator with the PLM access recorder on and
   return (elements, snapshot); [None] when no feasible system exists
   (the audits do not need one). *)
let recorded_sim_leg r ~strategy ~elements ~sim_n =
  match Cfd_core.Compile.build_system ~n_elements:elements r with
  | exception Sysgen.Replicate.Infeasible msg ->
      Format.eprintf "cfdc: memprof: skipping simulation leg (infeasible: %s)@."
        msg;
      None
  | sys ->
      Sysgen.System.validate sys;
      Memprof.Record.enable ();
      Fun.protect
        ~finally:(fun () -> Memprof.Record.disable ())
        (fun () ->
          match
            Sim.Functional.run ~strategy ~system:sys
              ~proc:r.Cfd_core.Compile.proc ~inputs:(synthetic_inputs sys)
              ~n:sim_n ()
          with
          | _ -> Some (sim_n, Memprof.Record.snapshot ())
          | exception Sim.Functional.Error msg ->
              (* Notably: the audit rejects the sharded strategy here —
                 Kelly timestamps are only reconstructable from the
                 round-scheduled order. *)
              prerr_endline ("cfdc: functional simulation failed: " ^ msg);
              fatal ("functional simulation failed: " ^ msg))

(* Audit both memgen modes under the compile options actually in force. *)
let run_audits r =
  let program = r.Cfd_core.Compile.program
  and schedule = r.Cfd_core.Compile.schedule in
  let scope =
    if r.Cfd_core.Compile.opts.Cfd_core.Compile.decoupled then
      Mnemosyne.Memgen.All
    else Mnemosyne.Memgen.Interface_only
  in
  let unroll =
    Option.value r.Cfd_core.Compile.opts.Cfd_core.Compile.unroll ~default:1
  in
  List.map
    (fun mode -> Memprof.Audit.run ~scope ~unroll ~mode program schedule)
    [ Mnemosyne.Memgen.No_sharing; Mnemosyne.Memgen.Sharing ]

let memprof_report r ~name ~strategy ~sim_n ~elements =
  let audits = run_audits r in
  let sim = recorded_sim_leg r ~strategy ~elements ~sim_n in
  Memprof.Report.make ~kernel:name ?sim audits

let do_memprof file name factorize decoupled sharing elements sim_n strategy
    json_out trace_out log log_level flight =
  obs_setup
    {
      oo_trace = None;
      oo_metrics = None;
      oo_summary = false;
      oo_log = log;
      oo_log_level = log_level;
      oo_flight = flight;
    };
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise:false ~ii:1
      ~unroll:None
  in
  let r = compile_result src options in
  print_front_warnings ~name r;
  let report = memprof_report r ~name ~strategy ~sim_n ~elements in
  Format.printf "%a@?" Memprof.Report.pp report;
  (match json_out with
  | Some path ->
      write_file path (Obs.Json.to_string (Memprof.Report.to_json report));
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match trace_out with
  | Some path ->
      write_file path
        (Obs.Json.to_string (Memprof.Report.chrome_counters report));
      Printf.printf "wrote %s\n" path
  | None -> ());
  if not (Memprof.Report.passed report) then fatal "memprof audit failed"

let memprof_json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write the full memory profile (per-unit occupancy, BRAM \
               counts, pressure percentiles, audit diagnostics) as JSON to \
               $(docv)")

let memprof_trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write Chrome-trace counter tracks (port pressure and PLM \
               occupancy per unit, loadable in Perfetto) to $(docv)")

let memprof_sim_elements_arg =
  Arg.(value & opt int 8 & info [ "sim-elements" ] ~docv:"N"
         ~doc:"Number of elements to run through the recorded functional \
               simulation leg")

let memprof_cmd =
  let doc = "profile a kernel's PLM memory behaviour dynamically and audit \
             the observed live intervals against the static model that \
             licensed the architecture (both memgen modes)" in
  Cmd.v (Cmd.info "memprof" ~doc)
    Term.(
      const do_memprof $ file_arg $ name_arg $ factorize_arg $ decoupled_arg
      $ sharing_arg $ elements_arg $ memprof_sim_elements_arg $ strategy_arg
      $ memprof_json_arg $ memprof_trace_arg $ log_arg $ log_level_arg
      $ flight_arg)

(* ---- timeline command ---- *)

let do_timeline file name factorize decoupled sharing elements k m overlap
    trace_out json log log_level flight =
  obs_setup
    {
      oo_trace = None;
      oo_metrics = None;
      oo_summary = false;
      oo_log = log;
      oo_log_level = log_level;
      oo_flight = flight;
    };
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise:false ~ii:1
      ~unroll:None
  in
  let r = compile_result src options in
  print_front_warnings ~name r;
  let report =
    match
      Cfd_core.Timeline.analyze ?force_k:k ?force_m:m ~overlap
        ~n_elements:elements r
    with
    | report -> report
    | exception Sysgen.Replicate.Infeasible msg ->
        prerr_endline ("cfdc: infeasible: " ^ msg);
        fatal ("infeasible: " ^ msg)
  in
  (match trace_out with
  | Some path ->
      write_file path
        (Obs.Json.to_string (Cfd_core.Timeline.chrome_trace report));
      (* stderr: with --json, stdout is the machine-readable document *)
      Printf.eprintf "wrote %s\n%!" path
  | None -> ());
  if json then
    print_endline (Obs.Json.to_string (Cfd_core.Timeline.to_json report))
  else Format.printf "%a@?" Cfd_core.Timeline.pp_report report;
  if not (Cfd_core.Timeline.passed report) then
    fatal "timeline reconciliation failed"

let timeline_elements_arg =
  Arg.(value & opt int 2048 & info [ "elements" ] ~docv:"N"
         ~doc:"Number of CFD elements the modeled run covers (bounds the \
               event count: every block contributes its phase instances)")

let overlap_policy_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", Cfd_core.Timeline.Auto);
             ("require", Cfd_core.Timeline.Require);
             ("off", Cfd_core.Timeline.Off);
           ])
        Cfd_core.Timeline.Auto
    & info [ "overlap" ] ~docv:"POLICY"
        ~doc:"Overlapped (double-buffered) leg policy: $(b,auto) reshapes \
              k to the largest divisor of m with m >= 2k when the solved \
              shape cannot double-buffer; $(b,require) fails with a \
              $(b,sim-overlap-infeasible) diagnostic instead of reshaping; \
              $(b,off) runs the plain leg only")

let timeline_trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the combined Chrome trace (one virtual thread per \
               accelerator / DMA engine / controller / PLM buffer, cycle \
               count as the timestamp domain, legs prefixed plain/ and \
               overlapped/) to $(docv); load it in Perfetto")

let timeline_json_flag =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Print the derived utilization metrics (per-leg cycle counts, \
               compute/transfer shares, overlap efficiency, idle cycles per \
               accelerator, port peak/mean) as JSON on stdout for scripting")

let timeline_cmd =
  let doc = "trace the simulated accelerator on its own cycle clock: emit \
             every modeled phase (DMA bursts, controller rounds, kernel \
             executions, the double-buffered pipeline) as a Chrome trace \
             plus derived utilization metrics, and reconcile the phase \
             durations against the performance model and the static cost \
             analyzer (any mismatch is a timeline-drift error)" in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(
      const do_timeline $ file_arg $ name_arg $ factorize_arg $ decoupled_arg
      $ sharing_arg $ timeline_elements_arg $ k_arg $ m_arg
      $ overlap_policy_arg $ timeline_trace_arg $ timeline_json_flag
      $ log_arg $ log_level_arg $ flight_arg)

(* ---- profile command ---- *)

let do_profile file name factorize decoupled sharing elements sim_n jobs
    strategy timeline_out oo =
  (* Tracing is always on for a profile run; the human summary prints
     unless the caller asked only for file sinks. *)
  obs_setup ~force_summary:(oo.oo_trace = None && oo.oo_metrics = None) oo;
  Obs.Trace.set_enabled true;
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise:false ~ii:1
      ~unroll:None
  in
  let r = compile_result src options in
  let diags =
    Obs.Trace.with_span "check" (fun () -> Cfd_core.Compile.check r)
  in
  (match
     Cfd_core.Compile.build_system ~n_elements:elements r
   with
  | exception Sysgen.Replicate.Infeasible msg ->
      prerr_endline ("cfdc: infeasible: " ^ msg);
      fatal ("infeasible: " ^ msg)
  | sys ->
      Sysgen.System.validate sys;
      let board = Sysgen.Replicate.default_config.Sysgen.Replicate.board in
      let hw = Sim.Perf.run_hw ~system:sys ~board in
      (* Functional simulation of a small batch with deterministic
         synthetic inputs: enough to light up the engine, pool and DMA
         counters without replaying the full element count. *)
      let shapes =
        List.map
          (fun (tr : Sysgen.System.transfer) ->
            (tr.Sysgen.System.array, tr.Sysgen.System.bytes / 8))
          sys.Sysgen.System.host.Sysgen.System.per_element_in
      in
      let inputs e =
        List.map
          (fun (nm, words) ->
            ( nm,
              Array.init words (fun i ->
                  float_of_int ((((e + 1) * 31) + i) mod 97) /. 97.) ))
          shapes
      in
      let jobs = if jobs <= 0 then None else Some jobs in
      (* Under the round-scheduled strategy the simulation leg doubles as
         the memprof recorder run: engines compiled while the recorder is
         enabled report PLM accesses and DMA volumes into the
         production-path store. The sharded strategy has no Kelly-
         reconstructable schedule, so its run is timed/traced only and
         the memory report falls back to the static-vs-dynamic audits. *)
      let record = strategy = Sim.Functional.Round_scheduled in
      if record then Memprof.Record.enable ();
      (match
         Fun.protect
           ~finally:(fun () -> if record then Memprof.Record.disable ())
           (fun () ->
             Sim.Functional.run ?jobs ~strategy ~system:sys
               ~proc:r.Cfd_core.Compile.proc ~inputs ~n:sim_n ())
       with
      | _ -> ()
      | exception Sim.Functional.Error msg ->
          prerr_endline ("cfdc: functional simulation failed: " ^ msg);
          fatal ("functional simulation failed: " ^ msg));
      let mreport =
        if record then
          Memprof.Report.make ~kernel:name
            ~sim:(sim_n, Memprof.Record.snapshot ())
            (run_audits r)
        else Memprof.Report.make ~kernel:name (run_audits r)
      in
      Format.printf "kernel: %s (%s)@." name file;
      Format.printf "%a@." Hls.Model.pp_report r.Cfd_core.Compile.hls;
      (if diags = [] then Format.printf "check: OK@."
       else Format.printf "check: %s@." (Analysis.Diagnostic.summary diags));
      Format.printf "performance (%d elements): %a@." elements Sim.Perf.pp_hw hw;
      Format.printf "functional simulation: %d elements OK (%s strategy)@."
        sim_n
        (Sim.Functional.strategy_name strategy);
      if not record then
        Format.printf
          "memprof: PLM recording skipped (sharded strategy has no \
           Kelly-reconstructable schedule; rerun with --strategy round)@.";
      Format.printf "%a@?" Memprof.Report.pp mreport;
      if not (Memprof.Report.passed mreport) then fatal "memprof audit failed";
      (* Device-cycle timeline leg: the memprof join follows the same
         strategy gate as the recorder run — only the round-scheduled
         strategy has Kelly-reconstructable port-pressure series worth
         joining onto the cycle clock. *)
      let treport =
        Cfd_core.Timeline.analyze ~join_memprof:record ~n_elements:elements r
      in
      Format.printf "%a@?" Cfd_core.Timeline.pp_report treport;
      (match timeline_out with
      | Some path ->
          write_file path
            (Obs.Json.to_string (Cfd_core.Timeline.chrome_trace treport));
          Printf.printf "wrote %s\n" path
      | None -> ());
      if not (Cfd_core.Timeline.passed treport) then
        fatal "timeline reconciliation failed")

let sim_elements_arg =
  Arg.(value & opt int 16 & info [ "sim-elements" ] ~docv:"N"
         ~doc:"Number of elements to run through the functional simulation")

let profile_timeline_arg =
  Arg.(value & opt (some string) None & info [ "timeline" ] ~docv:"FILE"
         ~doc:"Write the device-cycle Chrome trace of the timeline leg to \
               $(docv) (see $(b,cfdc timeline))")

let profile_cmd =
  let doc = "compile, verify and simulate a kernel in one shot, and emit the \
             full telemetry breakdown (spans, counters, histograms) plus the \
             device-cycle timeline leg" in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const do_profile $ file_arg $ name_arg $ factorize_arg $ decoupled_arg
      $ sharing_arg $ elements_arg $ sim_elements_arg $ jobs_arg $ strategy_arg
      $ profile_timeline_arg $ obs_opts_term)

(* ---- cost command ---- *)

let do_cost file name factorize decoupled sharing fuse_pointwise ii unroll
    elements sim_n diff json_out cache_dir oo =
  obs_setup oo;
  let src = read_file file in
  let options =
    options_of ~name ~factorize ~decoupled ~sharing ~fuse_pointwise ~ii ~unroll
  in
  let cache = cache_of cache_dir in
  let r = compile_result ?cache src options in
  print_front_warnings ~name r;
  let report =
    match
      Cfd_core.Costing.analyze ~diff ~sim_n ?cache ~n_elements:elements r
    with
    | report -> report
    | exception Sim.Functional.Error msg ->
        prerr_endline ("cfdc: functional simulation failed: " ^ msg);
        fatal ("functional simulation failed: " ^ msg)
  in
  (match json_out with
  | Some path ->
      write_file path (Obs.Json.to_string (Cfd_core.Costing.to_json report));
      Printf.printf "wrote %s\n" path
  | None -> ());
  Format.printf "%a@?" Cfd_core.Costing.pp_report report;
  let cost_errors =
    Analysis.Diagnostic.errors
      report.Cfd_core.Costing.cost.Analysis.Cost.diagnostics
  in
  let drift = Option.value ~default:[] report.Cfd_core.Costing.drift in
  if cost_errors <> [] || drift <> [] then fatal "cost diagnostics or drift"

let cost_diff_arg =
  Arg.(value & flag & info [ "diff" ]
         ~doc:"Cross-validate the static predictions against a recorded \
               functional simulation, the cycle-accurate performance model \
               and the memory profiler; any mismatch is a $(b,cost-drift-*) \
               diagnostic and the command exits non-zero")

let cost_json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write the full cost report (per-site trip counts, per-buffer \
               access and port-pressure predictions, DMA words, BRAM total, \
               cycle estimate, drift verdict) as JSON to $(docv)")

let cost_sim_elements_arg =
  Arg.(value & opt int 4 & info [ "sim-elements" ] ~docv:"N"
         ~doc:"Number of elements to run through the recorded functional \
               simulation when $(b,--diff) is given")

let cost_cmd =
  let doc = "statically predict a kernel's cost — trip counts, memory \
             traffic, port pressure, BRAMs, cycles — by polyhedral point \
             counting, and optionally cross-validate against the dynamic \
             instrumentation (see docs/ANALYSIS.md)" in
  Cmd.v (Cmd.info "cost" ~doc)
    Term.(
      const do_cost $ file_arg $ name_arg $ factorize_arg $ decoupled_arg
      $ sharing_arg $ fuse_pointwise_arg $ ii_arg $ unroll_arg $ elements_arg
      $ cost_sim_elements_arg $ cost_diff_arg $ cost_json_arg $ cache_dir_arg
      $ obs_opts_term)

(* ---- cache command ---- *)

let do_cache action dir_flag max_bytes =
  let dir =
    match dir_flag with
    | Some d -> d
    | None -> (
        match Sys.getenv_opt "CFDC_CACHE_DIR" with
        | Some d when d <> "" -> d
        | _ -> default_cache_dir)
  in
  let store = Cache.Store.create ~dir () in
  let print_stats () =
    let s = Cache.Store.stats store in
    Printf.printf "cache: %s\n" dir;
    Printf.printf "disk: %d entries, %d bytes\n" s.Cache.Store.st_disk_entries
      s.Cache.Store.st_disk_bytes;
    List.iter
      (fun (k : Cache.Store.kind_stats) ->
        Printf.printf "  %-14s %5d entries  %9d bytes\n" k.Cache.Store.k_kind
          k.Cache.Store.k_entries k.Cache.Store.k_bytes)
      s.Cache.Store.st_kinds;
    Printf.printf "session: %d hits, %d misses, %d evictions\n"
      s.Cache.Store.st_hits s.Cache.Store.st_misses s.Cache.Store.st_evictions
  in
  match action with
  | `Stat -> print_stats ()
  | `Gc ->
      let removed = Cache.Store.gc ?max_bytes store in
      Printf.printf "gc: removed %d file%s\n" removed
        (if removed = 1 then "" else "s");
      print_stats ()
  | `Clear ->
      let removed = Cache.Store.clear store in
      Printf.printf "clear: removed %d file%s\n" removed
        (if removed = 1 then "" else "s")

let cache_action_arg =
  Arg.(
    required
    & pos 0
        (some (enum [ ("stat", `Stat); ("gc", `Gc); ("clear", `Clear) ]))
        None
    & info [] ~docv:"ACTION"
        ~doc:"$(b,stat) prints the store's size by artifact kind plus this \
              session's hit/miss counters; $(b,gc) removes stale temp files \
              and, under $(b,--max-bytes), whole entries oldest-first until \
              the store fits; $(b,clear) empties the store")

let cache_max_bytes_arg =
  Arg.(value & opt (some int) None & info [ "max-bytes" ] ~docv:"N"
         ~doc:"Target size for $(b,gc): entries are removed oldest-first \
               until the store is at most $(docv) bytes")

let cache_cmd =
  let doc = "inspect and maintain the content-addressed artifact cache \
             (see docs/CACHING.md); the directory is $(b,--cache-dir), else \
             $(b,CFDC_CACHE_DIR), else .cfdc-cache" in
  Cmd.v (Cmd.info "cache" ~doc)
    Term.(const do_cache $ cache_action_arg $ cache_dir_arg $ cache_max_bytes_arg)

(* ---- version command ---- *)

let do_version json =
  if json then print_endline (Obs.Json.to_string (Cfd_core.Version.build_info ()))
  else Format.printf "%a@?" Cfd_core.Version.pp ()

let version_json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Print the build identity as JSON (the object embedded in \
               provenance manifests and crash reports)")

let version_cmd =
  let doc = "print the tool version and the schema dialects it writes: cache \
             key framing, options fingerprint" in
  Cmd.v (Cmd.info "version" ~doc) Term.(const do_version $ version_json_arg)

(* ---- flight command ---- *)

let newest_crash_file dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             Filename.check_suffix n ".json"
             && String.length n >= 6
             && String.sub n 0 6 = "crash-")
      |> List.filter_map (fun n ->
             let path = Filename.concat dir n in
             match Unix.stat path with
             | st -> Some (st.Unix.st_mtime, path)
             | exception Unix.Unix_error _ -> None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)
      |> function [] -> None | (_, path) :: _ -> Some path

let show_bundle path =
  match Obs.Json.of_file path with
  | Error msg ->
      prerr_endline ("cfdc: flight: " ^ path ^ ": " ^ msg);
      exit 1
  | Ok t ->
      let str k =
        match Obs.Json.member k t with
        | Some (Obs.Json.String s) -> s
        | _ -> "?"
      in
      Printf.printf "bundle:  %s\n" path;
      Printf.printf "reason:  %s\n" (str "reason");
      (match Obs.Json.member "written_unix_time" t with
      | Some (Obs.Json.Float ts) -> Printf.printf "written: %.3f\n" ts
      | _ -> ());
      (match Obs.Json.member "provenance" t with
      | Some (Obs.Json.Obj _ as p) ->
          Printf.printf "provenance: %s\n" (Obs.Json.to_string p)
      | _ -> Printf.printf "provenance: (none)\n");
      (match Obs.Json.member "entries" t with
      | Some (Obs.Json.List es) ->
          Printf.printf "entries: %d\n" (List.length es);
          List.iter
            (fun e ->
              let f k =
                match Obs.Json.member k e with
                | Some (Obs.Json.String s) -> s
                | Some (Obs.Json.Int i) -> string_of_int i
                | Some (Obs.Json.Float x) -> Printf.sprintf "%.3f" x
                | _ -> "?"
              in
              match Obs.Json.member "kind" e with
              | Some (Obs.Json.String "span") ->
                  Printf.printf "  [span ] %8s us  tid %s  %s (%s us)\n"
                    (f "ts") (f "tid") (f "name") (f "dur")
              | Some (Obs.Json.String "log") ->
                  Printf.printf "  [%-5s] %8s us  tid %s  %s: %s\n" (f "level")
                    (f "ts") (f "tid") (f "scope") (f "msg")
              | _ -> Printf.printf "  [?    ] %s\n" (Obs.Json.to_string e))
            es
      | _ -> Printf.printf "entries: (none)\n");
      (match Obs.Json.member "metrics" t with
      | Some m -> (
          match Obs.Json.member "counters" m with
          | Some (Obs.Json.Obj cs) ->
              Printf.printf "metrics: %d counters\n" (List.length cs)
          | _ -> ())
      | None -> ())

let do_flight action file out =
  match action with
  | `Dump -> (
      let written =
        match out with
        | Some path ->
            Obs.Json.to_file path (Obs.Flight.bundle ~reason:"manual dump" ());
            Some path
        | None -> Obs.Flight.write_crash ~reason:"manual dump" ()
      in
      match written with
      | Some path -> Printf.printf "wrote %s\n" path
      | None ->
          prerr_endline "cfdc: flight: dump failed";
          exit 1)
  | `Show -> (
      match file with
      | Some path -> show_bundle path
      | None -> (
          match newest_crash_file (Obs.Flight.crash_dir ()) with
          | Some path -> show_bundle path
          | None ->
              prerr_endline
                ("cfdc: flight: no crash reports under "
                ^ Obs.Flight.crash_dir ());
              exit 1))

let flight_action_arg =
  Arg.(
    required
    & pos 0 (some (enum [ ("dump", `Dump); ("show", `Show) ])) None
    & info [] ~docv:"ACTION"
        ~doc:"$(b,dump) writes the recorder's current state as a bundle \
              (to $(b,--out), else a fresh file under the crash directory); \
              $(b,show) pretty-prints a bundle (the newest crash report when \
              no file is given)")

let flight_file_arg =
  Arg.(value & pos 1 (some file) None & info [] ~docv:"FILE"
         ~doc:"Crash-report bundle to show")

let flight_out_arg =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Write the dump to $(docv) instead of the crash directory")

let flight_cmd =
  let doc = "dump or inspect flight-recorder bundles (crash reports); the \
             directory is $(b,CFDC_CRASH_DIR), else crash-reports/" in
  Cmd.v (Cmd.info "flight" ~doc)
    Term.(const do_flight $ flight_action_arg $ flight_file_arg $ flight_out_arg)

(* ---- entry point ---- *)

let build_info_flag =
  Arg.(value & flag & info [ "build-info" ]
         ~doc:"Print the build identity (tool version, cache key schema, \
               options fingerprint dialect) as JSON and exit")

let default_term =
  Term.(
    ret
      (const (fun build_info ->
           if build_info then begin
             print_endline
               (Obs.Json.to_string (Cfd_core.Version.build_info ()));
             `Ok ()
           end
           else `Help (`Auto, None))
      $ build_info_flag))

let main =
  let doc = "CFDlang-to-FPGA accelerator compiler (CLUSTER'21 reproduction)" in
  Cmd.group
    (Cmd.info "cfdc" ~version:Cfd_core.Version.tool ~doc)
    ~default:default_term
    [
      compile_cmd;
      check_cmd;
      report_cmd;
      system_cmd;
      emit_cmd;
      explore_cmd;
      cost_cmd;
      timeline_cmd;
      profile_cmd;
      memprof_cmd;
      cache_cmd;
      version_cmd;
      flight_cmd;
    ]

(* [~catch:false] so an uncaught exception reaches this top-level guard:
   with the flight recorder on it dumps the post-mortem bundle — recent
   spans (including a trapped pool worker's failing task), log events,
   metrics, cache stats, provenance — before the runtime reports the
   exception and the process dies. *)
let () =
  (match Sys.getenv_opt "CFDC_FLIGHT" with
  | Some ("1" | "true" | "on") -> Obs.Flight.set_enabled true
  | _ -> ());
  Obs.Flight.set_provenance (Some (Cfd_core.Version.manifest ()));
  try exit (Cmd.eval ~catch:false main)
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    (if Obs.Flight.enabled () then
       match
         Obs.Flight.write_crash ~reason:("uncaught: " ^ Printexc.to_string e) ()
       with
       | Some path -> Printf.eprintf "cfdc: crash report: %s\n%!" path
       | None -> ());
    Printexc.raise_with_backtrace e bt
