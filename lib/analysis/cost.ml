module D = Diagnostic
module BS = Poly.Basic_set
module Aff = Poly.Aff
module Space = Poly.Space
module P = Loopir.Prog

type count = { value : int; exact : bool }

type site = {
  site_id : int;
  site_desc : string;
  site_trips : count;
  site_reads : int;
  site_writes : int;
}

type buffer = {
  buf_name : string;
  buf_reads : count;
  buf_writes : count;
  buf_peak_pressure : int;
  buf_port_demand : int;
  buf_port_budget : int option;
}

type t = {
  kernel : string;
  sites : site list;
  statements : count;
  iterations : count;
  reads : count;
  writes : count;
  buffers : buffer list;
  words_in : int;
  words_out : int;
  brams : int;
  diagnostics : Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Point counting                                                      *)
(* ------------------------------------------------------------------ *)

let default_budget = 100_000

let count_points ?(budget = default_budget) ~subject (set : BS.t) =
  let n = BS.arity set in
  if n = 0 then
    (* a leaf outside any loop: one point iff the (trivial) constraints
       are satisfiable *)
    ((if BS.is_empty set then { value = 0; exact = true }
      else { value = 1; exact = true }),
     [])
  else if BS.is_empty set then ({ value = 0; exact = true }, [])
  else
    match BS.bounding_box set with
    | None ->
        ( { value = 0; exact = false },
          [
            D.error ~rule:"cost-unbounded" ~subject
              (Format.asprintf "iteration domain is unbounded: %a" BS.pp set);
          ] )
    | Some box ->
        let volume =
          Array.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 box
        in
        (* Constraints touching at most one variable each describe a
           product of intervals: the bounding-box volume is the exact
           point count. *)
        let is_box =
          List.for_all
            (fun c ->
              let aff = match c with BS.Eq a | BS.Ge a -> a in
              let nz = ref 0 in
              for i = 0 to n - 1 do
                if Aff.coeff aff i <> 0 then incr nz
              done;
              !nz <= 1)
            (BS.constraints set)
        in
        if is_box then ({ value = volume; exact = true }, [])
        else if volume <= budget then
          ({ value = List.length (BS.enumerate set); exact = true }, [])
        else
          ( { value = volume; exact = false },
            [
              D.warning ~rule:"cost-inexact" ~subject
                ~witness:(D.Count (volume, budget))
                (Format.sprintf
                   "domain too large to enumerate (bounding box %d points > \
                    budget %d); using the Fourier-Motzkin bound product as an \
                    upper bound"
                   volume budget);
            ] )

(* ------------------------------------------------------------------ *)
(* The counting walk over the loop nest                                *)
(* ------------------------------------------------------------------ *)

(* env: enclosing loops, outermost first, with exclusive upper bounds *)
let set_of_env env =
  let n = List.length env in
  let box =
    List.concat
      (List.mapi
         (fun i (_, lo, hi) ->
           [
             BS.Ge (Aff.add_const (Aff.var n i) (-lo));
             BS.Ge (Aff.sub (Aff.const n (hi - 1)) (Aff.var n i));
           ])
         env)
  in
  BS.of_constraints (Space.anonymous n) box

let leaf_desc = function
  | P.Store { array; _ } -> "store " ^ array
  | P.Accum { array; _ } -> "accum " ^ array
  | P.Set_scalar { name; _ } -> "set " ^ name
  | P.Acc_scalar { name; _ } -> "acc " ^ name
  | P.For _ -> invalid_arg "leaf_desc: not a leaf"

let rec expr_loads acc = function
  | P.Const _ | P.Scalar _ -> acc
  | P.Load (a, _) ->
      let prev = Option.value ~default:0 (List.assoc_opt a acc) in
      (a, prev + 1) :: List.remove_assoc a acc
  | P.Add (x, y) | P.Sub (x, y) | P.Mul (x, y) | P.Div (x, y) ->
      expr_loads (expr_loads acc x) y

(* Loop-head iteration totals with [Loopir.Compiled]'s accounting: a
   loop running t times contributes t head iterations plus t executions
   of whatever its body contributes. Bounds are constant, so this is
   exact by construction. *)
let iteration_total body =
  let rec iters = function
    | P.For l ->
        let trip = max 0 (l.P.hi - l.P.lo) in
        let bi = List.fold_left (fun a s -> a + iters s) 0 l.P.body in
        trip + (trip * bi)
    | _ -> 0
  in
  List.fold_left (fun a s -> a + iters s) 0 body

let analyze ?budget ?(unroll = 1) ~(program : Lower.Flow.program)
    ~(memory : Mnemosyne.Memgen.architecture) ~(proc : P.proc) () =
  let diags = ref [] in
  let sites = ref [] in
  (* per leaf: (site record, per-buffer loads, write target option) *)
  let leaves = ref [] in
  let next = ref 0 in
  let leaf env stmt =
    let id = !next in
    incr next;
    let desc = leaf_desc stmt in
    let trips, ds =
      if env = [] then ({ value = 1; exact = true }, [])
      else count_points ?budget ~subject:desc (set_of_env env)
    in
    diags := !diags @ ds;
    let value, write =
      match stmt with
      | P.Store { array; value; _ } | P.Accum { array; value; _ } ->
          (value, Some array)
      | P.Set_scalar { value; _ } | P.Acc_scalar { value; _ } -> (value, None)
      | P.For _ -> assert false
    in
    let loads = expr_loads [] value in
    let total_reads = List.fold_left (fun a (_, c) -> a + c) 0 loads in
    let s =
      {
        site_id = id;
        site_desc = desc;
        site_trips = trips;
        site_reads = total_reads;
        site_writes = (if write = None then 0 else 1);
      }
    in
    sites := s :: !sites;
    leaves := (s, loads, write) :: !leaves
  in
  let rec walk env = function
    | P.For l -> List.iter (walk (env @ [ (l.P.var, l.P.lo, l.P.hi) ])) l.P.body
    | stmt -> leaf env stmt
  in
  List.iter (walk []) proc.P.body;
  let sites = List.rev !sites in
  let leaves = List.rev !leaves in
  let sum_counts f =
    List.fold_left
      (fun acc s ->
        {
          value = acc.value + (s.site_trips.value * f s);
          exact = acc.exact && s.site_trips.exact;
        })
      { value = 0; exact = true } sites
  in
  let statements = sum_counts (fun _ -> 1) in
  let reads = sum_counts (fun s -> s.site_reads) in
  let writes = sum_counts (fun s -> s.site_writes) in
  (* Per-buffer accounting over every declared buffer. *)
  let buffer_names =
    List.map (fun (p : P.param) -> p.P.name) proc.P.params
    @ List.map fst proc.P.locals
  in
  (* Port demand follows Mnemosyne's own per-array accounting (the same
     formula the share-ports rule checks the bank provisioning against):
     each unrolled lane issues its own reads, the register-accumulated
     write does not replicate, and two residents of one unit are never
     read in the same instance (rule share-interface), so a buffer's
     demand is the max over its resident arrays. *)
  let backing a =
    match List.assoc_opt a memory.Mnemosyne.Memgen.storage with
    | Some (buf, _) -> buf
    | None -> a
  in
  let flow_ports a =
    List.fold_left
      (fun acc (stmt : Lower.Flow.statement) ->
        let reads =
          List.length
            (List.filter
               (fun (r : Lower.Flow.access) -> r.Lower.Flow.array = a)
               (Lower.Flow.reads stmt))
        in
        let w = if stmt.Lower.Flow.write.Lower.Flow.array = a then 1 else 0 in
        max acc ((reads * unroll) + w))
      0 program.Lower.Flow.stmts
  in
  let buffer_demand name =
    List.fold_left
      (fun acc (a : Lower.Flow.array_info) ->
        if backing a.Lower.Flow.array_name = name then
          max acc (flow_ports a.Lower.Flow.array_name)
        else acc)
      0 program.Lower.Flow.arrays
  in
  let buffers =
    List.map
      (fun name ->
        let reads = ref { value = 0; exact = true } in
        let writes = ref { value = 0; exact = true } in
        let pressure = ref 0 in
        let demand = buffer_demand name in
        List.iter
          (fun ((s : site), loads, write) ->
            let l = Option.value ~default:0 (List.assoc_opt name loads) in
            let w = if write = Some name then 1 else 0 in
            if l > 0 then
              reads :=
                {
                  value = !reads.value + (l * s.site_trips.value);
                  exact = !reads.exact && s.site_trips.exact;
                };
            if w > 0 then
              writes :=
                {
                  value = !writes.value + s.site_trips.value;
                  exact = !writes.exact && s.site_trips.exact;
                };
            if l + w > 0 && s.site_trips.value > 0 then
              pressure := max !pressure (l + w))
          leaves;
        let budget =
          Option.map Mnemosyne.Memgen.port_budget
            (Mnemosyne.Memgen.unit_of_buffer memory name)
        in
        (match budget with
        | Some b when demand > b ->
            let u =
              match Mnemosyne.Memgen.unit_of_buffer memory name with
              | Some u -> u
              | None -> assert false
            in
            diags :=
              !diags
              @ [
                  D.warning ~rule:"cost-port-overcommit" ~subject:name
                    ~witness:(D.Count (demand, b))
                    (Format.sprintf
                       "worst per-instance port demand %d at unroll %d exceeds \
                        the unit budget %d (%d ports x %d copies)"
                       demand unroll b Fpga_platform.Bram.ports
                       u.Mnemosyne.Memgen.copies);
                ]
        | _ -> ());
        {
          buf_name = name;
          buf_reads = !reads;
          buf_writes = !writes;
          buf_peak_pressure = !pressure;
          buf_port_demand = demand;
          buf_port_budget = budget;
        })
      (List.sort_uniq compare buffer_names)
  in
  let words kind =
    List.fold_left
      (fun acc (a : Lower.Flow.array_info) ->
        if a.Lower.Flow.kind = kind then acc + a.Lower.Flow.size else acc)
      0 program.Lower.Flow.arrays
  in
  let brams =
    List.fold_left
      (fun acc (u : Mnemosyne.Memgen.plm_unit) ->
        acc
        + u.Mnemosyne.Memgen.copies
          * Fpga_platform.Bram.count_array ~words:u.Mnemosyne.Memgen.unit_words)
      0 memory.Mnemosyne.Memgen.units
  in
  {
    kernel = proc.P.name;
    sites;
    statements;
    iterations = { value = iteration_total proc.P.body; exact = true };
    reads;
    writes;
    buffers;
    words_in = words Lower.Flow.Input;
    words_out = words Lower.Flow.Output;
    brams;
    diagnostics = !diags;
  }

(* ------------------------------------------------------------------ *)
(* Cycle model                                                         *)
(* ------------------------------------------------------------------ *)

type shape = { sh_n_elements : int; sh_k : int; sh_m : int; sh_batch : int }

type board_model = {
  bm_fmax_mhz : int;
  bm_axi_bytes_per_cycle : int;
  bm_axi_efficiency : float;
  bm_handshake_cycles : int;
}

type cycle_estimate = {
  ce_round_cycles : int;
  ce_blocks : int;
  ce_exec_cycles : int;
  ce_transfer_cycles : int;
  ce_total_cycles : int;
  ce_seconds : float;
}

(* Same float operations as [Sim.Perf.transfer_cycles], so predictions
   agree bit for bit with the simulated model. *)
let transfer_cycles ~bytes ~board =
  let ideal =
    float_of_int bytes /. float_of_int board.bm_axi_bytes_per_cycle
  in
  int_of_float (Float.ceil (ideal /. board.bm_axi_efficiency))

let cycles t ~latency ~shape ~board =
  ignore t.kernel;
  let round = latency + board.bm_handshake_cycles in
  let blocks = (shape.sh_n_elements + shape.sh_m - 1) / shape.sh_m in
  let exec = blocks * shape.sh_batch * round in
  let block_in =
    transfer_cycles ~bytes:(shape.sh_m * 8 * t.words_in) ~board
  in
  let block_out =
    transfer_cycles ~bytes:(shape.sh_m * 8 * t.words_out) ~board
  in
  let transfer = blocks * (block_in + block_out) in
  let total = exec + transfer in
  let freq = float_of_int board.bm_fmax_mhz *. 1e6 in
  {
    ce_round_cycles = round;
    ce_blocks = blocks;
    ce_exec_cycles = exec;
    ce_transfer_cycles = transfer;
    ce_total_cycles = total;
    ce_seconds = float_of_int total /. freq;
  }

(* Closed form for [Sim.Perf.run_hw_overlapped]: fill + blocks *
   max(io, compute) + drain. ce_exec/ce_transfer keep counting busy
   cycles (they are per-engine sums, unchanged by pipelining); only the
   critical-path total shrinks. *)
let cycles_overlapped t ~latency ~shape ~board =
  let ce = cycles t ~latency ~shape ~board in
  let block_in =
    transfer_cycles ~bytes:(shape.sh_m * 8 * t.words_in) ~board
  in
  let block_out =
    transfer_cycles ~bytes:(shape.sh_m * 8 * t.words_out) ~board
  in
  let io = block_in + block_out in
  let compute = shape.sh_batch * ce.ce_round_cycles in
  let total = io + (ce.ce_blocks * max io compute) in
  let freq = float_of_int board.bm_fmax_mhz *. 1e6 in
  { ce with ce_total_cycles = total; ce_seconds = float_of_int total /. freq }

let dma_words_per_set t ~n ~m =
  let sets = ref [] in
  for s = m - 1 downto 0 do
    (* elements e < n with e mod m = s *)
    let elems = if s >= n then 0 else ((n - 1 - s) / m) + 1 in
    if elems > 0 then
      sets := (s, elems * t.words_in, elems * t.words_out) :: !sets
  done;
  !sets

(* ------------------------------------------------------------------ *)
(* Drift detection                                                     *)
(* ------------------------------------------------------------------ *)

type observed = {
  obs_elements : int;
  obs_m : int;
  obs_statements : int option;
  obs_iterations : int option;
  obs_dma_bytes_in : int option;
  obs_dma_bytes_out : int option;
  obs_dma_sets : (int * int * int) list option;
  obs_sites : (int * string * int * int * int) list option;
  obs_buffers : (string * int * int * int) list option;
  obs_total_cycles : int option;
  obs_total_brams : int option;
}

let no_observation ~n ~m =
  {
    obs_elements = n;
    obs_m = m;
    obs_statements = None;
    obs_iterations = None;
    obs_dma_bytes_in = None;
    obs_dma_bytes_out = None;
    obs_dma_sets = None;
    obs_sites = None;
    obs_buffers = None;
    obs_total_cycles = None;
    obs_total_brams = None;
  }

let drift t ?cycle_model obs =
  let diags = ref [] in
  let fail ~rule ~subject ~got ~expected fmt =
    Format.kasprintf
      (fun message ->
        diags :=
          D.error ~rule ~subject ~witness:(D.Count (got, expected)) message
          :: !diags)
      fmt
  in
  let n = obs.obs_elements in
  let check ~rule ~subject ~what ~expected = function
    | None -> ()
    | Some got ->
        if got <> expected then
          fail ~rule ~subject ~got ~expected
            "dynamic %s is %d over %d kernel runs but the static model \
             predicts %d"
            what got n expected
  in
  if t.statements.exact then
    check ~rule:"cost-drift-trips" ~subject:t.kernel ~what:"exec.statements"
      ~expected:(t.statements.value * n) obs.obs_statements;
  check ~rule:"cost-drift-trips" ~subject:t.kernel ~what:"exec.iterations"
    ~expected:(t.iterations.value * n) obs.obs_iterations;
  check ~rule:"cost-drift-dma" ~subject:t.kernel ~what:"sim.dma.bytes_in"
    ~expected:(n * 8 * t.words_in) obs.obs_dma_bytes_in;
  check ~rule:"cost-drift-dma" ~subject:t.kernel ~what:"sim.dma.bytes_out"
    ~expected:(n * 8 * t.words_out) obs.obs_dma_bytes_out;
  (match obs.obs_dma_sets with
  | None -> ()
  | Some got_sets ->
      let expected_sets = dma_words_per_set t ~n ~m:obs.obs_m in
      let norm = List.sort compare in
      if norm got_sets <> norm expected_sets then
        let summarize l =
          String.concat "; "
            (List.map
               (fun (s, wi, wo) -> Format.sprintf "set %d: %d in / %d out" s wi wo)
               (norm l))
        in
        fail ~rule:"cost-drift-dma" ~subject:t.kernel
          ~got:(List.length got_sets) ~expected:(List.length expected_sets)
          "per-set DMA words disagree: recorded [%s], predicted [%s]"
          (summarize got_sets) (summarize expected_sets));
  (match obs.obs_sites with
  | None -> ()
  | Some got_sites ->
      List.iter
        (fun s ->
          if s.site_trips.exact then
            let subject = Format.sprintf "site %d (%s)" s.site_id s.site_desc in
            match
              List.find_opt (fun (id, _, _, _, _) -> id = s.site_id) got_sites
            with
            | None ->
                if s.site_trips.value * n > 0 then
                  fail ~rule:"cost-drift-trips" ~subject ~got:0
                    ~expected:(s.site_trips.value * n)
                    "site never observed but predicted %d instances"
                    (s.site_trips.value * n)
            | Some (_, desc, instances, reads, writes) ->
                if desc <> s.site_desc then
                  fail ~rule:"cost-drift-trips" ~subject ~got:0 ~expected:0
                    "site numbering disagrees: observed %S at this site" desc;
                if instances <> s.site_trips.value * n then
                  fail ~rule:"cost-drift-trips" ~subject ~got:instances
                    ~expected:(s.site_trips.value * n)
                    "observed %d instances, predicted %d" instances
                    (s.site_trips.value * n);
                if reads <> s.site_reads * s.site_trips.value * n then
                  fail ~rule:"cost-drift-access" ~subject ~got:reads
                    ~expected:(s.site_reads * s.site_trips.value * n)
                    "observed %d reads, predicted %d" reads
                    (s.site_reads * s.site_trips.value * n);
                if writes <> s.site_writes * s.site_trips.value * n then
                  fail ~rule:"cost-drift-access" ~subject ~got:writes
                    ~expected:(s.site_writes * s.site_trips.value * n)
                    "observed %d writes, predicted %d" writes
                    (s.site_writes * s.site_trips.value * n))
        t.sites;
      List.iter
        (fun (id, desc, _, _, _) ->
          if not (List.exists (fun s -> s.site_id = id) t.sites) then
            fail ~rule:"cost-drift-trips"
              ~subject:(Format.sprintf "site %d (%s)" id desc) ~got:id
              ~expected:(List.length t.sites)
              "observed a probe site the static model does not know")
        got_sites);
  (match obs.obs_buffers with
  | None -> ()
  | Some got_buffers ->
      List.iter
        (fun b ->
          let got_reads, got_writes, got_pressure =
            match
              List.find_opt (fun (nm, _, _, _) -> nm = b.buf_name) got_buffers
            with
            | Some (_, r, w, p) -> (r, w, p)
            | None -> (0, 0, 0)
          in
          if b.buf_reads.exact && got_reads <> b.buf_reads.value * n then
            fail ~rule:"cost-drift-access" ~subject:b.buf_name ~got:got_reads
              ~expected:(b.buf_reads.value * n) "observed %d reads, predicted %d"
              got_reads (b.buf_reads.value * n);
          if b.buf_writes.exact && got_writes <> b.buf_writes.value * n then
            fail ~rule:"cost-drift-access" ~subject:b.buf_name ~got:got_writes
              ~expected:(b.buf_writes.value * n)
              "observed %d writes, predicted %d" got_writes
              (b.buf_writes.value * n);
          (* The recorder only sees pressure on buffers that were
             actually accessed; a never-touched buffer has no entry. *)
          if
            t.statements.exact && n > 0
            && (got_reads > 0 || got_writes > 0
                || b.buf_reads.value + b.buf_writes.value > 0)
            && got_pressure <> b.buf_peak_pressure
          then
            fail ~rule:"cost-drift-pressure" ~subject:b.buf_name
              ~got:got_pressure ~expected:b.buf_peak_pressure
              "observed peak per-instance pressure %d, predicted %d"
              got_pressure b.buf_peak_pressure)
        t.buffers;
      List.iter
        (fun (nm, _, _, _) ->
          if not (List.exists (fun b -> b.buf_name = nm) t.buffers) then
            fail ~rule:"cost-drift-access" ~subject:nm ~got:1 ~expected:0
              "observed accesses to a buffer the static model does not know")
        got_buffers);
  (match (cycle_model, obs.obs_total_cycles) with
  | Some ce, Some got when got <> ce.ce_total_cycles ->
      fail ~rule:"cost-drift-cycles" ~subject:t.kernel ~got
        ~expected:ce.ce_total_cycles
        "simulated controller reports %d total cycles, the closed form \
         predicts %d"
        got ce.ce_total_cycles
  | _ -> ());
  (match obs.obs_total_brams with
  | None -> ()
  | Some got ->
      if got <> t.brams then
        fail ~rule:"cost-drift-brams" ~subject:t.kernel ~got ~expected:t.brams
          "architecture claims %d BRAM18 but the platform rule gives %d" got
          t.brams);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_count ppf c =
  Format.fprintf ppf "%d%s" c.value (if c.exact then "" else " (upper bound)")

let pp ppf t =
  Format.fprintf ppf "static cost of %s:@." t.kernel;
  Format.fprintf ppf "  statements/run: %a   loop iterations/run: %a@."
    pp_count t.statements pp_count t.iterations;
  Format.fprintf ppf "  reads/run: %a   writes/run: %a@." pp_count t.reads
    pp_count t.writes;
  Format.fprintf ppf "  DMA words/element: %d in, %d out@." t.words_in
    t.words_out;
  Format.fprintf ppf "  PLM BRAM18 (platform rule): %d@." t.brams;
  Format.fprintf ppf "  sites:@.";
  List.iter
    (fun s ->
      Format.fprintf ppf "    %3d %-24s trips %a, %d reads + %d writes per trip@."
        s.site_id s.site_desc pp_count s.site_trips s.site_reads s.site_writes)
    t.sites;
  Format.fprintf ppf "  buffers:@.";
  List.iter
    (fun b ->
      Format.fprintf ppf
        "    %-12s reads %a, writes %a, peak pressure %d, port demand %d%s@."
        b.buf_name pp_count b.buf_reads pp_count b.buf_writes
        b.buf_peak_pressure b.buf_port_demand
        (match b.buf_port_budget with
        | Some bud -> Format.sprintf " / budget %d" bud
        | None -> " (kernel-local)"))
    t.buffers;
  match t.diagnostics with
  | [] -> ()
  | ds ->
      Format.fprintf ppf "  diagnostics:@.";
      List.iter (fun d -> Format.fprintf ppf "    %a@." D.pp d) ds

let pp_cycle_estimate ppf ce =
  Format.fprintf ppf
    "round %d cycles, %d blocks: exec %d + transfer %d = %d cycles (%.6f s)"
    ce.ce_round_cycles ce.ce_blocks ce.ce_exec_cycles ce.ce_transfer_cycles
    ce.ce_total_cycles ce.ce_seconds
