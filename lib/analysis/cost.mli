(** Static cost and resource analysis — the polyhedral counting pass
    behind [cfdc cost].

    Where {!Verify} proves the compiled pipeline {e legal}, this module
    predicts what it will {e cost}: statement trip counts and loop
    iteration totals by point-counting on the loop-nest polyhedra, DMA
    words per element and per PLM set, per-buffer access counts and peak
    port pressure, a cycle estimate matching [Sim.Perf]'s performance
    model, and a BRAM18 count re-derived from the platform allocation
    rule. Every quantity carries an exactness flag: nests small enough
    are counted by exact enumeration, larger ones fall back to
    Fourier–Motzkin bound products and are marked inexact
    ([cost-inexact]); unbounded domains are [cost-unbounded] errors.

    The same quantities are measured dynamically by the observability
    stack — [exec.*]/[sim.*] counters and the [Memprof.Record]
    snapshot — and {!drift} compares prediction against observation,
    reporting any mismatch as a [cost-drift-*] diagnostic: the static
    analyzer is validated by the instrumentation, and vice versa. The
    orchestration that actually runs a simulation and collects the
    {!observed} record lives in [Cfd_core.Costing]; this module is pure
    and depends on nothing dynamic. *)

type count = {
  value : int;
  exact : bool;
      (** [true] when [value] was obtained by enumeration or as the
          volume of a product-of-intervals domain; [false] for a
          bound-product over-approximation (or 0 under [cost-unbounded]) *)
}

type site = {
  site_id : int;
      (** pre-order leaf index over the whole proc, every leaf statement
          included — the same numbering [Loopir.Compiled] gives its probe
          sites, so dynamic site stats join on this id *)
  site_desc : string;  (** [Memprof.Record]'s statement description *)
  site_trips : count;  (** executions of this leaf per kernel run *)
  site_reads : int;  (** buffer-read events per single execution *)
  site_writes : int;  (** buffer-write events per single execution *)
}

type buffer = {
  buf_name : string;
  buf_reads : count;  (** read events per kernel run *)
  buf_writes : count;  (** write events per kernel run *)
  buf_peak_pressure : int;
      (** worst simultaneous accesses to this buffer within one leaf
          instance — the quantity [Memprof.Record] reports as
          [b_max_pressure], independent of unroll *)
  buf_port_demand : int;
      (** worst per-instance port demand at the compiled unroll factor —
          Mnemosyne's own per-array accounting (reads scale with the
          unrolled lanes, the register-accumulated write does not
          replicate), taken as the max over the buffer's resident
          arrays, exactly the quantity the [share-ports] rule checks the
          bank provisioning against *)
  buf_port_budget : int option;
      (** [Mnemosyne.Memgen.port_budget] of the backing PLM unit; [None]
          for kernel-local buffers outside the PLM *)
}

type t = {
  kernel : string;  (** [proc.name] *)
  sites : site list;  (** in site-id order *)
  statements : count;  (** leaf executions per kernel run *)
  iterations : count;  (** loop-head iterations per kernel run *)
  reads : count;  (** total buffer reads per kernel run *)
  writes : count;  (** total buffer writes per kernel run *)
  buffers : buffer list;  (** sorted by name; every param and local *)
  words_in : int;  (** input DMA words per element *)
  words_out : int;  (** output DMA words per element *)
  brams : int;
      (** BRAM18 total re-derived from the platform rule
          ([copies * Bram.count_array unit_words] summed over units) *)
  diagnostics : Diagnostic.t list;
      (** [cost-unbounded] / [cost-inexact] / [cost-port-overcommit] *)
}

val count_points :
  ?budget:int -> subject:string -> Poly.Basic_set.t -> count * Diagnostic.t list
(** Integer points of a basic set. A domain whose constraints each touch
    at most one variable is a product of intervals and is counted
    exactly as the volume of its bounding box; other bounded domains are
    enumerated when the box volume is at most [budget] (default
    100_000), else the box volume is returned with [exact = false] and a
    [cost-inexact] warning. Unbounded domains yield [{value = 0; exact =
    false}] and a [cost-unbounded] error. *)

val analyze :
  ?budget:int ->
  ?unroll:int ->
  program:Lower.Flow.program ->
  memory:Mnemosyne.Memgen.architecture ->
  proc:Loopir.Prog.proc ->
  unit ->
  t
(** The full static cost of one compiled kernel. [unroll] (default 1) is
    the compiled innermost unroll factor and only affects
    [buf_port_demand] / [cost-port-overcommit]. *)

(** {2 Cycle model}

    A closed-form replica of [Sim.Perf.run_hw]'s non-overlapped model,
    parameterized on plain records so this library stays independent of
    [Sim]/[Sysgen]: one controller round costs the kernel latency plus
    the handshake cycles of the start/done FSM, a block of [m] elements
    runs [batch] rounds and two DMA bursts at the AXI efficiency, and
    blocks repeat ceil(n/m) times. The float arithmetic matches
    [Sim.Perf] operation for operation, so on uniform latencies the
    prediction is bit-identical to the simulated result (asserted by the
    drift detector and the test suite). *)

type shape = {
  sh_n_elements : int;
  sh_k : int;  (** accelerator instances *)
  sh_m : int;  (** PLM sets *)
  sh_batch : int;  (** m / k rounds per block *)
}

type board_model = {
  bm_fmax_mhz : int;
  bm_axi_bytes_per_cycle : int;
  bm_axi_efficiency : float;
  bm_handshake_cycles : int;  (** controller start/done overhead per round *)
}

type cycle_estimate = {
  ce_round_cycles : int;
  ce_blocks : int;
  ce_exec_cycles : int;
  ce_transfer_cycles : int;
  ce_total_cycles : int;
  ce_seconds : float;
}

val cycles : t -> latency:int -> shape:shape -> board:board_model -> cycle_estimate

val cycles_overlapped :
  t -> latency:int -> shape:shape -> board:board_model -> cycle_estimate
(** The double-buffered closed form matching
    [Sim.Perf.run_hw_overlapped]: fill + [ce_blocks] steady-state slots
    of [max(io, compute)] + drain. [ce_exec_cycles] and
    [ce_transfer_cycles] are unchanged — they count per-engine busy
    cycles, which pipelining does not reduce; only [ce_total_cycles]
    (and [ce_seconds]) shrink. Callers must hold [m >= 2k]
    (see [Sim.Perf.overlap_requirement]). *)

val dma_words_per_set : t -> n:int -> m:int -> (int * int * int) list
(** [(set, words_in, words_out)] for each PLM set under the
    round-scheduled host loop (element [e] lands in set [e mod m]), for
    [n] simulated elements; sets receiving no element are omitted. *)

(** {2 Drift detection} *)

type observed = {
  obs_elements : int;  (** kernel runs measured (the simulated [n]) *)
  obs_m : int;  (** PLM sets of the simulated system *)
  obs_statements : int option;  (** [exec.statements] delta *)
  obs_iterations : int option;  (** [exec.iterations.*] delta *)
  obs_dma_bytes_in : int option;  (** [sim.dma.bytes_in] delta *)
  obs_dma_bytes_out : int option;
  obs_dma_sets : (int * int * int) list option;
      (** per-set DMA words from the recorder snapshot *)
  obs_sites : (int * string * int * int * int) list option;
      (** (site, desc, instances, reads, writes) from the recorder *)
  obs_buffers : (string * int * int * int) list option;
      (** (buffer, reads, writes, max pressure) from the recorder *)
  obs_total_cycles : int option;  (** [Sim.Perf] total for the shape *)
  obs_total_brams : int option;  (** the architecture's claimed total *)
}

val no_observation : n:int -> m:int -> observed
(** All-[None] skeleton to fill in. *)

val drift : t -> ?cycle_model:cycle_estimate -> observed -> Diagnostic.t list
(** Compare static predictions against dynamic observation; every
    mismatch is an error diagnostic with a [Count] witness:

    - [cost-drift-trips]: statement/iteration totals or per-site
      instance counts disagree with the [exec.*] counters / recorder;
    - [cost-drift-access]: per-site or per-buffer read/write counts
      disagree with the recorder;
    - [cost-drift-pressure]: a buffer's peak per-instance pressure
      disagrees with the recorder's histogram maximum;
    - [cost-drift-dma]: DMA byte totals or per-set words disagree with
      the [sim.dma.*] counters / recorder;
    - [cost-drift-cycles]: the closed-form cycle estimate disagrees with
      the simulated controller FSM;
    - [cost-drift-brams]: the platform-rule BRAM18 total disagrees with
      the architecture's claim.

    Inexact static counts are skipped (an over-approximation cannot
    witness drift); exact ones must match {e exactly}. *)

val pp : Format.formatter -> t -> unit
val pp_cycle_estimate : Format.formatter -> cycle_estimate -> unit
