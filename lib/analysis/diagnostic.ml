type severity = Error | Warning

type witness =
  | Instance of string * int array
  | Instance_pair of (string * int array) * (string * int array)
  | Element of string * int
  | Index of int * int
  | Intervals of Poly.Lex.interval * Poly.Lex.interval
  | Count of int * int

type t = {
  severity : severity;
  rule : string;
  subject : string;
  message : string;
  witness : witness option;
}

let error ~rule ~subject ?witness message =
  { severity = Error; rule; subject; message; witness }

let warning ~rule ~subject ?witness message =
  { severity = Warning; rule; subject; message; witness }

let is_error d = d.severity = Error
let errors = List.filter is_error
let warnings = List.filter (fun d -> d.severity = Warning)

let pp_point ppf p =
  Format.fprintf ppf "[%s]"
    (String.concat "," (Array.to_list (Array.map string_of_int p)))

(* The liveness bracket uses virtual first/last statements at
   [|min_int|] / [|max_int|]; print those symbolically. *)
let pp_ts ppf (ts : Poly.Lex.timestamp) =
  if Array.length ts = 1 && ts.(0) = min_int then Format.pp_print_string ppf "host-first"
  else if Array.length ts = 1 && ts.(0) = max_int then Format.pp_print_string ppf "host-last"
  else pp_point ppf ts

let pp_ival ppf (i : Poly.Lex.interval) =
  Format.fprintf ppf "[%a, %a]" pp_ts i.first pp_ts i.last

let pp_witness ppf = function
  | Instance (s, p) -> Format.fprintf ppf "%s%a" s pp_point p
  | Instance_pair ((s, p), (t, q)) ->
      Format.fprintf ppf "%s%a vs %s%a" s pp_point p t pp_point q
  | Element (a, off) -> Format.fprintf ppf "%s@@%d" a off
  | Index (ix, size) -> Format.fprintf ppf "index %d outside [0,%d)" ix size
  | Intervals (a, b) -> Format.fprintf ppf "%a overlaps %a" pp_ival a pp_ival b
  | Count (got, want) -> Format.fprintf ppf "counted %d, expected %d" got want

let pp ppf d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  Format.fprintf ppf "%s[%s] %s: %s" sev d.rule d.subject d.message;
  match d.witness with
  | None -> ()
  | Some w -> Format.fprintf ppf " (witness: %a)" pp_witness w

let summary ds =
  let ne = List.length (errors ds) and nw = List.length (warnings ds) in
  let plural n = if n = 1 then "" else "s" in
  if ne = 0 && nw = 0 then "no diagnostics"
  else if nw = 0 then Format.sprintf "%d error%s" ne (plural ne)
  else if ne = 0 then Format.sprintf "%d warning%s" nw (plural nw)
  else Format.sprintf "%d error%s, %d warning%s" ne (plural ne) nw (plural nw)

let pp_report ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  Format.fprintf ppf "%s@." (summary ds)
