(** Structured diagnostics for the static verifier ([cfdc check]).

    Every rule of {!Verify} reports through this one type so the CLI, the
    compile driver and the test suite agree on a single diagnostic format.
    A diagnostic carries a stable machine-readable [rule] id (asserted by
    the mutation suite), the statement or array it is about, and — when a
    proof failed — a concrete witness extracted by exact enumeration or
    symbolic lexmin over the polyhedral sets involved. *)

type severity = Error | Warning

type witness =
  | Instance of string * int array
      (** one statement instance (statement name, domain point) *)
  | Instance_pair of (string * int array) * (string * int array)
      (** two statement instances whose schedule order is wrong *)
  | Element of string * int  (** array name, flat (layout) offset *)
  | Index of int * int  (** offending linearized index, array size *)
  | Intervals of Poly.Lex.interval * Poly.Lex.interval
      (** two overlapping live intervals in schedule space *)
  | Count of int * int
      (** a counted quantity vs the expected/budgeted one — the witness
          form of the {!Verify.cost} counting rules and the drift
          detector ([cost-*]) *)

type t = {
  severity : severity;
  rule : string;  (** stable rule id, e.g. ["dep-raw"]; see docs/ANALYSIS.md *)
  subject : string;  (** the statement, array or unit the rule fired on *)
  message : string;
  witness : witness option;
}

val error : rule:string -> subject:string -> ?witness:witness -> string -> t
val warning : rule:string -> subject:string -> ?witness:witness -> string -> t

val is_error : t -> bool
val errors : t list -> t list
val warnings : t list -> t list

val summary : t list -> string
(** ["2 errors, 1 warning"]; ["no diagnostics"] for the empty list. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[dep-raw] t_mac -> r_stmt: ... (witness: ...)]. *)

val pp_report : Format.formatter -> t list -> unit
(** Every diagnostic, one per line, followed by the summary line. *)
