module BS = Poly.Basic_set
module Aff = Poly.Aff
module Space = Poly.Space
module Lex = Poly.Lex
module Flow = Lower.Flow
module Schedule = Lower.Schedule
module D = Diagnostic

let shift_constr by n = function
  | BS.Eq e -> BS.Eq (Aff.shift e by n)
  | BS.Ge e -> BS.Ge (Aff.shift e by n)

(* The 2d+1 schedule tuple of [s1] as affine expressions over an
   [n]-variable space in which the statement's instance variables occupy
   positions [at .. at+d-1]. Rebuilt here from the raw beta/dims vectors
   so the verdict does not depend on [Schedule.to_aff_map]. *)
let sched_exprs ~tuple_arity ~at ~n (s1 : Schedule.sched1) =
  let d = Array.length s1.dims in
  Array.init tuple_arity (fun pos ->
      if pos mod 2 = 0 then
        let i = pos / 2 in
        Aff.const n (if i <= d then s1.betas.(i) else 0)
      else
        let i = pos / 2 in
        if i < d then Aff.var n (at + s1.dims.(i)) else Aff.const n 0)

(* Witness of [ts_later <= ts_earlier] (lexicographically, i.e. the
   strict order demanded of the dependence is violated) inside [base].
   Decomposed level by level: at each level either the strict reversal
   holds under equality of all earlier levels, or — after the last level —
   the two tuples are identical. Constant-vs-constant components are
   resolved without touching the solver, which settles most statement
   pairs purely on their beta vectors. *)
let order_violation base earlier later =
  if BS.is_empty base then None
  else
    let space = BS.space base in
    let candidate prefix extra =
      let cs = List.rev_append prefix extra in
      let s =
        if cs = [] then base else BS.intersect base (BS.of_constraints space cs)
      in
      BS.lexmin s
    in
    let levels = Array.length earlier in
    let rec go l prefix =
      if l >= levels then candidate prefix []
      else
        let diff = Aff.sub earlier.(l) later.(l) in
        if Aff.is_constant diff then
          let c = Aff.constant diff in
          if c < 0 then None (* earlier < later at l: ordered, prefixes below dead *)
          else if c > 0 then candidate prefix [] (* later < earlier at l *)
          else go (l + 1) prefix
        else
          match candidate prefix [ BS.Ge (Aff.add_const diff (-1)) ] with
          | Some w -> Some w
          | None -> go (l + 1) (BS.Eq diff :: prefix)
    in
    go 0 []

(* Conflict set of two accesses: both instance domains side by side plus
   equality of the accessed tensor element. *)
let conflict_base (s : Flow.statement) (t : Flow.statement)
    (amap : Poly.Aff_map.t) (bmap : Poly.Aff_map.t) =
  let ds = BS.arity s.Flow.domain and dt = BS.arity t.Flow.domain in
  let n = ds + dt in
  let cs =
    List.map (shift_constr 0 n) (BS.constraints s.Flow.domain)
    @ List.map (shift_constr ds n) (BS.constraints t.Flow.domain)
    @ Array.to_list
        (Array.map2
           (fun ea eb -> BS.Eq (Aff.sub (Aff.shift ea 0 n) (Aff.shift eb ds n)))
           (Poly.Aff_map.exprs amap) (Poly.Aff_map.exprs bmap))
  in
  BS.of_constraints (Space.anonymous n) cs

(* Self-dependence variant: both sides are instances x, y of one
   statement, the reference source is the domain-lexicographically earlier
   instance, so the violation search runs under each "x < y first at
   domain level m" wedge. *)
let self_violation base d earlier later =
  let n = BS.arity base in
  let space = BS.space base in
  let rec go m prefix =
    if m >= d then None
    else
      let diff = Aff.sub (Aff.var n (d + m)) (Aff.var n m) in
      let wedge =
        BS.intersect base
          (BS.of_constraints space
             (List.rev (BS.Ge (Aff.add_const diff (-1)) :: prefix)))
      in
      match order_violation wedge earlier later with
      | Some w -> Some w
      | None -> go (m + 1) (BS.Eq diff :: prefix)
  in
  go 0 []

let is_mac (s : Flow.statement) =
  match s.Flow.compute with Flow.Mac _ -> true | _ -> false

let dep_rule = function
  | `Raw -> ("dep-raw", "RAW", "the read is not scheduled strictly after the write")
  | `War ->
      ("dep-war", "WAR", "the overwrite is not scheduled strictly after the read")
  | `Waw -> ("dep-waw", "WAW", "the writes are not scheduled in reference order")

let schedule_deps (program : Flow.program) (schedule : Schedule.t) =
  let tuple_arity = Schedule.tuple_arity schedule in
  let stmts = Array.of_list program.Flow.stmts in
  let n_stmts = Array.length stmts in
  let diags = ref [] in
  let report kind array (s : Flow.statement) (t : Flow.statement) w =
    let ds = BS.arity s.Flow.domain in
    let x = Array.sub w 0 ds and y = Array.sub w ds (Array.length w - ds) in
    let rule, label, why = dep_rule kind in
    let subject =
      if s.Flow.stmt_name = t.Flow.stmt_name then s.Flow.stmt_name
      else s.Flow.stmt_name ^ " -> " ^ t.Flow.stmt_name
    in
    diags :=
      D.error ~rule ~subject
        ~witness:(D.Instance_pair ((s.Flow.stmt_name, x), (t.Flow.stmt_name, y)))
        (Format.sprintf "%s dependence on %s is not preserved: %s" label array why)
      :: !diags
  in
  for i = 0 to n_stmts - 1 do
    let s = stmts.(i) in
    let s1s = Schedule.find schedule s.Flow.stmt_name in
    let ds = BS.arity s.Flow.domain in
    (* cross-statement dependences: s precedes t in reference order *)
    for j = i + 1 to n_stmts - 1 do
      let t = stmts.(j) in
      let s1t = Schedule.find schedule t.Flow.stmt_name in
      let dt = BS.arity t.Flow.domain in
      let n = ds + dt in
      let earlier = sched_exprs ~tuple_arity ~at:0 ~n s1s in
      let later = sched_exprs ~tuple_arity ~at:ds ~n s1t in
      let seen = ref [] in
      let conflict kind (a : Flow.access) (b : Flow.access) =
        if not (List.mem (kind, a.Flow.array) !seen) then
          match order_violation (conflict_base s t a.Flow.map b.Flow.map) earlier later with
          | None -> ()
          | Some w ->
              seen := (kind, a.Flow.array) :: !seen;
              report kind a.Flow.array s t w
      in
      List.iter
        (fun (r : Flow.access) ->
          if r.Flow.array = s.Flow.write.Flow.array then conflict `Raw s.Flow.write r)
        (Flow.reads t);
      List.iter
        (fun (r : Flow.access) ->
          if r.Flow.array = t.Flow.write.Flow.array then conflict `War r t.Flow.write)
        (Flow.reads s);
      if
        s.Flow.write.Flow.array = t.Flow.write.Flow.array
        && not (is_mac s && is_mac t)
      then conflict `Waw s.Flow.write t.Flow.write
    done;
    (* intra-statement dependences between distinct instances *)
    if ds > 0 then begin
      let n = 2 * ds in
      let earlier = sched_exprs ~tuple_arity ~at:0 ~n s1s in
      let later = sched_exprs ~tuple_arity ~at:ds ~n s1s in
      let self kind amap bmap =
        match self_violation (conflict_base s s amap bmap) ds earlier later with
        | None -> ()
        | Some w -> report kind s.Flow.write.Flow.array s s w
      in
      List.iter
        (fun (r : Flow.access) ->
          if r.Flow.array = s.Flow.write.Flow.array then begin
            self `Raw s.Flow.write.Flow.map r.Flow.map;
            self `War r.Flow.map s.Flow.write.Flow.map
          end)
        (Flow.reads s);
      if
        (not (is_mac s))
        && not (Poly.Aff_map.is_injective_on s.Flow.write.Flow.map s.Flow.domain)
      then self `Waw s.Flow.write.Flow.map s.Flow.write.Flow.map
    end
  done;
  List.rev !diags

(* Non-materializing iteration over a box domain (the flow only produces
   box domains, but instances are still filtered through [mem]). The
   callback must not retain the scratch array. *)
let iter_box (dom : BS.t) f =
  match BS.bounding_box dom with
  | None -> invalid_arg "Verify.iter_box: unbounded domain"
  | Some box ->
      let k = Array.length box in
      if k = 0 then (if BS.mem dom [||] then f [||])
      else if Array.for_all (fun (lo, hi) -> lo <= hi) box then begin
        let x = Array.map fst box in
        let continue_ = ref true in
        while !continue_ do
          if BS.mem dom x then f x;
          let rec inc j =
            if j < 0 then continue_ := false
            else if x.(j) < snd box.(j) then x.(j) <- x.(j) + 1
            else begin
              x.(j) <- fst box.(j);
              inc (j - 1)
            end
          in
          inc (k - 1)
        done
      end

let use_before_def (program : Flow.program) (schedule : Schedule.t) =
  let diags = ref [] in
  let first_write : (string, Lex.timestamp option array) Hashtbl.t =
    Hashtbl.create 16
  in
  let table name =
    match Hashtbl.find_opt first_write name with
    | Some t -> t
    | None ->
        let info = Flow.array_info program name in
        let t = Array.make (max info.Flow.size 0) None in
        Hashtbl.replace first_write name t;
        t
  in
  (* pass 1: lexicographically first write per element *)
  List.iter
    (fun (stmt : Flow.statement) ->
      let s1 = Schedule.find schedule stmt.Flow.stmt_name in
      let wmap = Flow.array_access program stmt.Flow.write in
      let tbl = table stmt.Flow.write.Flow.array in
      iter_box stmt.Flow.domain (fun x ->
          let off = (Poly.Aff_map.apply wmap x).(0) in
          if off >= 0 && off < Array.length tbl then
            let ts = Schedule.timestamp schedule s1 x in
            match tbl.(off) with
            | None -> tbl.(off) <- Some ts
            | Some cur -> if Lex.lt ts cur then tbl.(off) <- Some ts))
    program.Flow.stmts;
  (* pass 2: every read must land strictly after its element's first
     write. A Mac's += is a read-modify-write of its accumulator, so the
     write access joins the read list: a missing initialization makes the
     first accumulation read its own (garbage) first-write timestamp. *)
  List.iter
    (fun (stmt : Flow.statement) ->
      let s1 = Schedule.find schedule stmt.Flow.stmt_name in
      let reads =
        Flow.reads stmt
        @ (match stmt.Flow.compute with
          | Flow.Mac _ -> [ stmt.Flow.write ]
          | _ -> [])
      in
      let flagged = ref [] in
      List.iter
        (fun (r : Flow.access) ->
          let info = Flow.array_info program r.Flow.array in
          if info.Flow.kind <> Flow.Input && not (List.mem r.Flow.array !flagged)
          then begin
            let rmap = Flow.array_access program r in
            let tbl = table r.Flow.array in
            let witness = ref None in
            (try
               iter_box stmt.Flow.domain (fun x ->
                   let off = (Poly.Aff_map.apply rmap x).(0) in
                   if off >= 0 && off < Array.length tbl then
                     let bad why =
                       witness := Some (Array.copy x, off, why);
                       raise Exit
                     in
                     match tbl.(off) with
                     | None -> bad "the element is never written"
                     | Some fw ->
                         let ts = Schedule.timestamp schedule s1 x in
                         if not (Lex.lt fw ts) then
                           bad "the read is scheduled at or before its first write")
             with Exit -> ());
            match !witness with
            | None -> ()
            | Some (x, off, why) ->
                flagged := r.Flow.array :: !flagged;
                diags :=
                  D.error ~rule:"use-before-def" ~subject:stmt.Flow.stmt_name
                    ~witness:(D.Instance (stmt.Flow.stmt_name, x))
                    (Format.sprintf "reads %s@%d before it is defined: %s"
                       r.Flow.array off why)
                  :: !diags
          end)
        reads)
    program.Flow.stmts;
  List.rev !diags

let bounds (proc : Loopir.Prog.proc) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let sizes = Hashtbl.create 16 in
  List.iter
    (fun (p : Loopir.Prog.param) -> Hashtbl.replace sizes p.Loopir.Prog.name p.Loopir.Prog.size)
    proc.Loopir.Prog.params;
  List.iter (fun (name, size) -> Hashtbl.replace sizes name size) proc.Loopir.Prog.locals;
  (* env: enclosing loops, outermost first, with inclusive value ranges *)
  let check_ref ~rule array (ix : Loopir.Ix.t) env =
    match Hashtbl.find_opt sizes array with
    | None ->
        add
          (D.error ~rule:"bounds-ref" ~subject:array
             (Format.sprintf "reference to undeclared buffer %s" array))
    | Some size ->
        let n = List.length env in
        let positions = List.mapi (fun i (v, _, _) -> (v, i)) env in
        let unresolved =
          List.filter (fun v -> not (List.mem_assoc v positions)) (Loopir.Ix.vars ix)
        in
        if unresolved <> [] then
          add
            (D.error ~rule:"bounds-ref" ~subject:array
               (Format.sprintf "index of %s uses out-of-scope variable %s" array
                  (String.concat ", " unresolved)))
        else begin
          let m = n + 1 in
          (* idx - (terms + const) = 0, with idx as the last variable *)
          let coeffs = Array.make m 0 in
          coeffs.(n) <- 1;
          List.iter
            (fun (c, v) ->
              let i = List.assoc v positions in
              coeffs.(i) <- coeffs.(i) - c)
            ix.Loopir.Ix.terms;
          let eq = BS.Eq (Aff.make coeffs (-ix.Loopir.Ix.const)) in
          let box =
            List.concat
              (List.mapi
                 (fun i (_, lo, hi) ->
                   [
                     BS.Ge (Aff.add_const (Aff.var m i) (-lo));
                     BS.Ge (Aff.sub (Aff.const m hi) (Aff.var m i));
                   ])
                 env)
          in
          let set = BS.of_constraints (Space.anonymous m) (eq :: box) in
          let flag side limit =
            match BS.lexmin (BS.add_constraint set limit) with
            | None -> ()
            | Some w ->
                let valuation =
                  if env = [] then "constant index"
                  else
                    String.concat ", "
                      (List.mapi (fun i (v, _, _) -> Format.sprintf "%s=%d" v w.(i)) env)
                in
                add
                  (D.error ~rule ~subject:array ~witness:(D.Index (w.(n), size))
                     (Format.sprintf "index %a escapes %s bound of [0,%d) at %s"
                        (fun () -> Format.asprintf "%a" Loopir.Ix.pp) ix side size
                        valuation))
          in
          let lo_b, hi_b = BS.var_bounds set n in
          (match lo_b with
          | Some lo when lo >= 0 -> ()
          | _ -> flag "the lower" (BS.Ge (Aff.sub (Aff.const m (-1)) (Aff.var m n))));
          match hi_b with
          | Some hi when hi < size -> ()
          | _ -> flag "the upper" (BS.Ge (Aff.add_const (Aff.var m n) (-size)))
        end
  in
  let rec walk_expr env = function
    | Loopir.Prog.Const _ | Loopir.Prog.Scalar _ -> ()
    | Loopir.Prog.Load (a, ix) -> check_ref ~rule:"bounds-load" a ix env
    | Loopir.Prog.Add (x, y)
    | Loopir.Prog.Sub (x, y)
    | Loopir.Prog.Mul (x, y)
    | Loopir.Prog.Div (x, y) ->
        walk_expr env x;
        walk_expr env y
  in
  let rec walk_stmt env = function
    | Loopir.Prog.For l ->
        if l.Loopir.Prog.lo >= l.Loopir.Prog.hi then
          add
            (D.warning ~rule:"bounds-empty-loop" ~subject:l.Loopir.Prog.var
               (Format.sprintf "loop over [%d,%d) never executes; body not checked"
                  l.Loopir.Prog.lo l.Loopir.Prog.hi))
        else
          List.iter
            (walk_stmt (env @ [ (l.Loopir.Prog.var, l.Loopir.Prog.lo, l.Loopir.Prog.hi - 1) ]))
            l.Loopir.Prog.body
    | Loopir.Prog.Store { array; index; value } ->
        check_ref ~rule:"bounds-store" array index env;
        walk_expr env value
    | Loopir.Prog.Accum { array; index; value } ->
        check_ref ~rule:"bounds-store" array index env;
        walk_expr env value
    | Loopir.Prog.Set_scalar { value; _ } | Loopir.Prog.Acc_scalar { value; _ } ->
        walk_expr env value
  in
  List.iter (walk_stmt []) proc.Loopir.Prog.body;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Sharing soundness                                                   *)
(* ------------------------------------------------------------------ *)

let virtual_first = [| min_int |]
let virtual_last = [| max_int |]

(* Schedule image extrema of one statement, derived by projecting the
   schedule graph onto schedule space and taking symbolic extrema —
   deliberately not [Schedule.image_extrema]. *)
let stmt_extrema ~tuple_arity (stmt : Flow.statement) (s1 : Schedule.sched1) =
  let d = BS.arity stmt.Flow.domain in
  let n = d + tuple_arity in
  let exprs = sched_exprs ~tuple_arity ~at:0 ~n s1 in
  let graph =
    Array.to_list
      (Array.mapi (fun l e -> BS.Eq (Aff.sub (Aff.var n (d + l)) e)) exprs)
  in
  let cs = List.map (shift_constr 0 n) (BS.constraints stmt.Flow.domain) @ graph in
  let g = BS.of_constraints (Space.anonymous n) cs in
  let img = BS.project_out g (List.init d Fun.id) (Space.anonymous tuple_arity) in
  match (BS.lexmin img, BS.lexmax img) with
  | Some lo, Some hi -> Some (lo, hi)
  | _ -> None

(* Array-level live intervals, recomputed from the program and schedule
   with the same granularity the PLM generator decides at: first write to
   last access, bracketed by the virtual host statements for interface
   arrays. Arrays that are never touched get no interval (vacuously
   compatible with everything; use-before-def reports any reads). *)
let derive_intervals (program : Flow.program) (schedule : Schedule.t) =
  let tuple_arity = Schedule.tuple_arity schedule in
  let firsts : (string, Lex.timestamp) Hashtbl.t = Hashtbl.create 16 in
  let lasts : (string, Lex.timestamp) Hashtbl.t = Hashtbl.create 16 in
  let update tbl pick a ts =
    match Hashtbl.find_opt tbl a with
    | None -> Hashtbl.replace tbl a ts
    | Some cur -> Hashtbl.replace tbl a (pick cur ts)
  in
  List.iter
    (fun (stmt : Flow.statement) ->
      let s1 = Schedule.find schedule stmt.Flow.stmt_name in
      match stmt_extrema ~tuple_arity stmt s1 with
      | None -> ()
      | Some (lo, hi) ->
          let w = stmt.Flow.write.Flow.array in
          update firsts Lex.min w lo;
          update lasts Lex.max w hi;
          List.iter
            (fun (r : Flow.access) -> update lasts Lex.max r.Flow.array hi)
            (Flow.reads stmt))
    program.Flow.stmts;
  let tbl : (string, Lex.interval) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Flow.array_info) ->
      let name = a.Flow.array_name in
      let first =
        match a.Flow.kind with
        | Flow.Input -> Some virtual_first
        | Flow.Output | Flow.Temp -> Hashtbl.find_opt firsts name
      in
      let last =
        match a.Flow.kind with
        | Flow.Output -> Some virtual_last
        | Flow.Input | Flow.Temp -> (
            match Hashtbl.find_opt lasts name with
            | Some ts -> Some ts
            | None -> first)
      in
      match (first, last) with
      | Some f, Some l when Lex.le f l ->
          Hashtbl.replace tbl name (Lex.interval f l)
      | _ -> ())
    program.Flow.arrays;
  tbl

let ports_needed (program : Flow.program) ~unroll array =
  List.fold_left
    (fun acc (stmt : Flow.statement) ->
      let reads =
        List.length
          (List.filter (fun (r : Flow.access) -> r.Flow.array = array) (Flow.reads stmt))
      in
      let writes = if stmt.Flow.write.Flow.array = array then 1 else 0 in
      max acc ((reads * unroll) + writes))
    1 program.Flow.stmts

let rec pairs = function
  | [] -> []
  | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest

let sharing ?(unroll = 1) (program : Flow.program) (schedule : Schedule.t)
    (arch : Mnemosyne.Memgen.architecture) =
  let open Mnemosyne.Memgen in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let known a = List.exists (fun (i : Flow.array_info) -> i.Flow.array_name = a) program.Flow.arrays in
  let size_of a = (Flow.array_info program a).Flow.size in
  let intervals = derive_intervals program schedule in
  let interval a = Hashtbl.find_opt intervals a in
  (* which statement reads both arrays in one instance, if any *)
  let read_conflict a b =
    List.find_opt
      (fun (stmt : Flow.statement) ->
        let rs =
          List.sort_uniq compare
            (List.map (fun (r : Flow.access) -> r.Flow.array) (Flow.reads stmt))
        in
        List.mem a rs && List.mem b rs)
      program.Flow.stmts
  in
  (* 1. the storage map must cover every program array, consistently *)
  List.iter
    (fun (a : Flow.array_info) ->
      let name = a.Flow.array_name in
      match List.filter (fun (x, _) -> x = name) arch.storage with
      | [] ->
          add
            (D.error ~rule:"share-storage" ~subject:name
               "array has no storage assignment")
      | [ _ ] -> ()
      | (_, first) :: rest ->
          if List.exists (fun (_, p) -> p <> first) rest then
            add
              (D.error ~rule:"share-storage" ~subject:name
                 "array has conflicting storage assignments"))
    program.Flow.arrays;
  List.iter
    (fun (a, _) ->
      if not (known a) then
        add
          (D.warning ~rule:"share-storage" ~subject:a
             "storage map mentions an array the program does not declare"))
    arch.storage;
  (* 2. address-space soundness, derived from the storage map itself:
     arrays whose word ranges overlap inside one backing buffer must have
     disjoint live intervals *)
  let buffers = Hashtbl.create 16 in
  List.iter
    (fun (a, (buf, off)) ->
      if known a then
        Hashtbl.replace buffers buf ((a, off) :: (Option.value ~default:[] (Hashtbl.find_opt buffers buf))))
    arch.storage;
  Hashtbl.iter
    (fun buf residents ->
      List.iter
        (fun ((a, oa), (b, ob)) ->
          if a <> b then
            let ea = oa + size_of a and eb = ob + size_of b in
            if oa < eb && ob < ea then
              match (interval a, interval b) with
              | Some ia, Some ib when Lex.overlap ia ib ->
                  add
                    (D.error ~rule:"share-address-space"
                       ~subject:(Format.sprintf "%s/%s in %s" a b buf)
                       ~witness:(D.Intervals (ia, ib))
                       "arrays alias overlapping address ranges but are simultaneously live")
              | _ -> ())
        (pairs residents))
    buffers;
  (* 3. per-unit structure: slot layout, storage agreement, interface
     compatibility across slots, port pressure, BRAM accounting *)
  List.iter
    (fun (u : plm_unit) ->
      List.iter
        (fun (s : slot) ->
          if s.slot_offset < 0 || s.slot_offset + s.slot_words > u.unit_words then
            add
              (D.error ~rule:"share-layout" ~subject:u.unit_name
                 (Format.sprintf "slot at +%d (%d words) escapes the unit's %d words"
                    s.slot_offset s.slot_words u.unit_words));
          List.iter
            (fun r ->
              if known r then begin
                if size_of r > s.slot_words then
                  add
                    (D.error ~rule:"share-layout" ~subject:u.unit_name
                       (Format.sprintf "resident %s (%d words) exceeds its slot (%d words)"
                          r (size_of r) s.slot_words));
                match List.assoc_opt r arch.storage with
                | Some (buf, off) when buf = u.unit_name && off = s.slot_offset -> ()
                | _ ->
                    add
                      (D.error ~rule:"share-storage" ~subject:r
                         (Format.sprintf
                            "storage map disagrees with placement in %s at +%d"
                            u.unit_name s.slot_offset))
              end
              else
                add
                  (D.error ~rule:"share-storage" ~subject:r
                     (Format.sprintf "unit %s hosts an undeclared array" u.unit_name)))
            s.residents)
        u.slots;
      List.iter
        (fun ((s1 : slot), (s2 : slot)) ->
          (* distinct slots must occupy disjoint word ranges ... *)
          if
            s1.slot_offset < s2.slot_offset + s2.slot_words
            && s2.slot_offset < s1.slot_offset + s1.slot_words
          then
            add
              (D.error ~rule:"share-layout" ~subject:u.unit_name
                 (Format.sprintf "slots at +%d and +%d overlap" s1.slot_offset
                    s2.slot_offset));
          (* ... and their residents share banks and ports, so every cross
             pair must be memory-interface compatible *)
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if known a && known b && a <> b then
                    match read_conflict a b with
                    | None -> ()
                    | Some stmt ->
                        add
                          (D.error ~rule:"share-interface"
                             ~subject:(Format.sprintf "%s/%s in %s" a b u.unit_name)
                             (Format.sprintf
                                "%s reads both in one instance; they cannot share ports"
                                stmt.Flow.stmt_name)))
                s2.residents)
            s1.residents)
        (pairs u.slots);
      let demand =
        List.fold_left
          (fun acc (s : slot) ->
            List.fold_left
              (fun acc r ->
                if known r then
                  let p = ports_needed program ~unroll r in
                  max acc ((p + Fpga_platform.Bram.ports - 1) / Fpga_platform.Bram.ports)
                else acc)
              acc s.residents)
          1 u.slots
      in
      if u.copies < demand then
        add
          (D.warning ~rule:"share-ports" ~subject:u.unit_name
             (Format.sprintf
                "unit provides %d bank copies but worst-case port demand needs %d"
                u.copies demand));
      let expect = u.copies * Fpga_platform.Bram.count_array ~words:u.unit_words in
      if u.brams <> expect then
        add
          (D.warning ~rule:"share-brams" ~subject:u.unit_name
             (Format.sprintf "unit reports %d BRAM18 but the platform rule gives %d"
                u.brams expect)))
    arch.units;
  let total = List.fold_left (fun acc (u : plm_unit) -> acc + u.brams) 0 arch.units in
  if total <> arch.total_brams then
    add
      (D.warning ~rule:"share-brams" ~subject:"total"
         (Format.sprintf "architecture reports %d BRAM18 but its units sum to %d"
            arch.total_brams total));
  List.rev !diags

(* Each rule family runs under its own span, and every diagnostic bumps
   a per-rule-id counter ("verify.diag.dep-raw", "verify.diag.bounds-load",
   ...), so both the time spent per family and the diagnostic mix end up
   in the telemetry sinks. *)
let family span f =
  Obs.Trace.with_span span (fun () ->
      let diags = f () in
      List.iter
        (fun (d : D.t) ->
          Obs.Metrics.incr (Obs.Metrics.counter ("verify.diag." ^ d.D.rule)))
        diags;
      if diags <> [] then
        Obs.Trace.span_attr "diagnostics" (string_of_int (List.length diags));
      diags)

let cost ?budget ?unroll program memory proc =
  family "verify.cost" (fun () ->
      (Cost.analyze ?budget ?unroll ~program ~memory ~proc ()).Cost.diagnostics)

let c_verify_runs = Obs.Metrics.counter "verify.runs"

let all ?unroll ~(program : Flow.program) ~schedule ?memory ?proc () =
  Obs.Metrics.incr c_verify_runs;
  let structural =
    family "verify.structure" (fun () ->
        match Schedule.validate program schedule with
        | () -> []
        | exception Schedule.Error msg ->
            [ D.error ~rule:"schedule-structure" ~subject:program.Flow.prog_name msg ]
        | exception Flow.Error msg ->
            [ D.error ~rule:"schedule-structure" ~subject:program.Flow.prog_name msg ])
  in
  let bounds_diags =
    match proc with
    | Some p -> family "verify.bounds" (fun () -> bounds p)
    | None -> []
  in
  match structural with
  | _ :: _ -> structural @ bounds_diags
  | [] ->
      family "verify.dep" (fun () -> schedule_deps program schedule)
      @ family "verify.use-before-def" (fun () ->
            use_before_def program schedule)
      @ bounds_diags
      @ (match memory with
        | Some m ->
            family "verify.sharing" (fun () ->
                sharing ?unroll program schedule m)
        | None -> [])
      @ (match (memory, proc) with
        | Some m, Some p -> cost ?unroll program m p
        | _ -> [])

(* ------------------------------------------------------------------ *)
(* Execution-mode license for the compiled engine                      *)
(* ------------------------------------------------------------------ *)

let execution_mode (proc : Loopir.Prog.proc) =
  match Sys.getenv_opt "CFD_EXEC_DEBUG" with
  | Some ("" | "0") | None ->
      let licensed =
        List.for_all
          (fun (d : Diagnostic.t) ->
            not
              (String.length d.Diagnostic.rule >= 7
              && String.sub d.Diagnostic.rule 0 7 = "bounds-"))
          (bounds proc)
      in
      if licensed then Loopir.Compiled.Unchecked else Loopir.Compiled.Checked
  | Some _ -> Loopir.Compiled.Debug
