(** The independent static verifier behind [cfdc check].

    The compiler pipeline already carries its own legality arguments: the
    rescheduler checks dependences by exact enumeration
    ([Lower.Schedule.legal]), codegen bounds accesses by interval
    arithmetic, and Mnemosyne's substitute shares memory only between
    compatible arrays. This module re-derives each of those claims {e from
    first principles} with {!Poly} — dependence relations straight from
    [Lower.Flow], Fourier–Motzkin range analysis on the emitted loop nest,
    lexicographic live intervals recomputed from schedule graphs — and
    cross-checks the pipeline's output against them. None of the checked
    modules ([Lower.Reschedule], [Lower.Codegen], [Liveness.Analysis],
    [Mnemosyne.Memgen]) is consulted for the verdict.

    Every failed proof is reported as a {!Diagnostic.t} with a stable rule
    id and, where possible, a concrete witness (a statement-instance pair,
    an out-of-range index valuation, an overlapping interval pair) found by
    symbolic lexmin or exact enumeration. See [docs/ANALYSIS.md] for the
    rule catalogue. *)

val schedule_deps :
  Lower.Flow.program -> Lower.Schedule.t -> Diagnostic.t list
(** Dependence preservation (rules [dep-raw], [dep-war], [dep-waw]).

    Recomputes the RAW/WAR/WAW relations of the reference execution order
    (statements in program order, instances in domain-lexicographic order)
    and proves, pair by pair, that the schedule maps every dependence
    source strictly before its sink. Each statement pair is decided
    symbolically: the conflict set (both domains plus tensor-element
    equality between the two access maps) is intersected with the
    lexicographic-violation sets of the schedule, one per schedule level,
    with constant beta components pruned statically. Accumulations are
    reassociable, so write-write pairs between two [Mac] statements on the
    same array are exempt; the init-before-accumulate ordering is still
    enforced (an [Init]/[Mac] pair is an ordinary WAW).

    The schedule must pass [Lower.Schedule.validate]. *)

val use_before_def :
  Lower.Flow.program -> Lower.Schedule.t -> Diagnostic.t list
(** Use-before-def (rule [use-before-def]).

    By exact enumeration of statement instances, computes the
    lexicographically first write timestamp of every array element and
    flags any read scheduled at-or-before it (reads of [Input] arrays are
    exempt: the virtual first statement writes them). A [Mac] statement's
    read-modify-write of its own accumulator counts as a read, so a
    missing or late initialization is caught here even though
    accumulation reordering is otherwise permitted. Elements read but
    never written at all are also flagged. One diagnostic per
    (statement, array) pair, carrying the first offending instance. *)

val bounds : Loopir.Prog.proc -> Diagnostic.t list
(** Affine bounds checking (rules [bounds-load], [bounds-store],
    [bounds-ref], [bounds-empty-loop]).

    For every [Load], [Store] and [Accum] in the emitted loop nest, builds
    the basic set of enclosing loop-variable valuations together with the
    linearized index expression and proves by Fourier–Motzkin range
    analysis that the index lies in [0, size) of the referenced buffer —
    storage offsets are already folded into both the index expressions and
    the buffer sizes, so shared buffers are checked at their real extents.
    A violation's witness is the lexicographically least loop valuation
    reaching an out-of-range index. References to undeclared buffers or
    out-of-scope variables are [bounds-ref] errors; statically empty loops
    are reported as [bounds-empty-loop] warnings and their bodies
    skipped. *)

val sharing :
  ?unroll:int ->
  Lower.Flow.program ->
  Lower.Schedule.t ->
  Mnemosyne.Memgen.architecture ->
  Diagnostic.t list
(** Sharing soundness (rules [share-address-space], [share-interface],
    [share-layout], [share-storage], [share-ports], [share-brams]).

    Audits a PLM architecture and its storage map against live intervals
    and interface conflicts recomputed here: each statement's schedule
    image is obtained by projecting the schedule graph (built directly
    from the 2d+1 representation) onto schedule space and taking symbolic
    lexmin/lexmax, bracketed by the virtual host first/last statements for
    interface arrays. The checks are: arrays aliasing overlapping address
    ranges of one backing buffer must have disjoint live intervals;
    distinct slots stacked in one unit must be pairwise
    memory-interface compatible (no statement reads two of their
    residents in one instance); slot ranges within a unit must not
    overlap and must contain their residents; the storage map must agree
    with the slot offsets and cover every program array; and each unit
    must provide enough bank copies for the worst per-instance port
    demand at the given [unroll] factor (default 1), with its BRAM count
    matching the platform allocation rule (the last two as warnings —
    they cost performance or area, not correctness). *)

val cost :
  ?budget:int ->
  ?unroll:int ->
  Lower.Flow.program ->
  Mnemosyne.Memgen.architecture ->
  Loopir.Prog.proc ->
  Diagnostic.t list
(** The static cost pass ({!Cost.analyze}) run as a verifier family
    (rules [cost-unbounded], [cost-inexact], [cost-port-overcommit]),
    under the [verify.cost] span with per-rule [verify.diag.*]
    counters. Clean pipelines emit nothing: every loop nest the
    compiler generates is a bounded box, and Mnemosyne provisions bank
    copies for the compiled unroll factor. *)

val all :
  ?unroll:int ->
  program:Lower.Flow.program ->
  schedule:Lower.Schedule.t ->
  ?memory:Mnemosyne.Memgen.architecture ->
  ?proc:Loopir.Prog.proc ->
  unit ->
  Diagnostic.t list
(** Run every applicable check, {!cost} included when both [memory] and
    [proc] are given. The schedule is first validated structurally; a
    failure there is reported as a single [schedule-structure] error and
    the schedule-dependent checks are skipped (the bounds check still
    runs when [proc] is given). *)

val execution_mode : Loopir.Prog.proc -> Loopir.Compiled.mode
(** The strongest execution mode this verifier can license for
    [Loopir.Compiled]: [Unchecked] exactly when {!bounds} reports no
    [bounds-*] diagnostic (every access Fourier–Motzkin-proved in
    range, no empty loops, no dangling references), [Checked]
    otherwise. Setting the [CFD_EXEC_DEBUG] environment variable to a
    non-empty value other than ["0"] forces [Debug], which cross-checks
    every compiled run against the reference interpreter bit-for-bit. *)
