type products = {
  a_memory : Mnemosyne.Memgen.architecture;
  a_proc : Loopir.Prog.proc;
  a_c_source : string;
  a_hls : Hls.Model.report;
  a_metadata : string;
}

let products_kind = "products"
let verdict_kind = "verdict"
let cost_kind = "cost"

let encode_products (p : products) = Codec.encode ~kind:products_kind p

let decode_products s : (products, string) result =
  Codec.decode ~kind:products_kind s

let encode_verdict (d : Analysis.Diagnostic.t list) =
  Codec.encode ~kind:verdict_kind d

let decode_verdict s : (Analysis.Diagnostic.t list, string) result =
  Codec.decode ~kind:verdict_kind s

let encode_cost (c : Analysis.Cost.t) = Codec.encode ~kind:cost_kind c
let decode_cost s : (Analysis.Cost.t, string) result = Codec.decode ~kind:cost_kind s

let find_products store key =
  Store.find store ~kind:products_kind key ~decode:decode_products

let store_products store key p =
  Store.store store ~kind:products_kind key ~encode:encode_products p

let find_verdict store key =
  Store.find store ~kind:verdict_kind key ~decode:decode_verdict

let store_verdict store key d =
  Store.store store ~kind:verdict_kind key ~encode:encode_verdict d

let find_cost store key =
  Store.find store ~kind:cost_kind key ~decode:decode_cost

let store_cost store key c =
  Store.store store ~kind:cost_kind key ~encode:encode_cost c
