(** The pipeline's cacheable products, and their kinds.

    Only the {e pure-data back half} of a compile is stored: the
    Mnemosyne architecture, the scalarized LoopIR proc, the emitted C,
    the HLS report, and the metadata — plus, under their own kinds,
    the verifier's verdict and the static cost record. The front half
    (typed AST, tensor IR, polyhedral program, schedule, liveness) is
    deliberately {e not} cached: those structures carry hash-consed
    [Poly.Basic_set] values whose identities are process-local —
    unmarshaling them would inject stale ids into the memo tables —
    and recomputing them is the cheap part of the pipeline. A warm
    compile therefore reruns the front half and grafts these products
    onto it, which the round-trip suite asserts is bit-identical to a
    cold compile. *)

type products = {
  a_memory : Mnemosyne.Memgen.architecture;
  a_proc : Loopir.Prog.proc;
  a_c_source : string;
  a_hls : Hls.Model.report;
  a_metadata : string;
}

val products_kind : string
(** ["products"]. *)

val verdict_kind : string
(** ["verdict"] — an [Analysis.Diagnostic.t list] from [Compile.check]. *)

val cost_kind : string
(** ["cost"] — an [Analysis.Cost.t] from [Costing.static]. *)

(** Raw codecs, exposed for the qcheck round-trip suite; the [find_] /
    [store_] wrappers below are what the pipeline uses. *)

val encode_products : products -> string
val decode_products : string -> (products, string) result
val encode_verdict : Analysis.Diagnostic.t list -> string
val decode_verdict : string -> (Analysis.Diagnostic.t list, string) result
val encode_cost : Analysis.Cost.t -> string
val decode_cost : string -> (Analysis.Cost.t, string) result

val find_products : Store.t -> Key.t -> products option
val store_products : Store.t -> Key.t -> products -> unit
val find_verdict : Store.t -> Key.t -> Analysis.Diagnostic.t list option
val store_verdict : Store.t -> Key.t -> Analysis.Diagnostic.t list -> unit
val find_cost : Store.t -> Key.t -> Analysis.Cost.t option
val store_cost : Store.t -> Key.t -> Analysis.Cost.t -> unit
