let magic = "cfdc1"

let encode ~kind v =
  let payload = Marshal.to_string v [] in
  Printf.sprintf "%s %d %s %s %d\n%s" magic Key.format_version kind
    (Digest.to_hex (Digest.string payload))
    (String.length payload) payload

let decode ~kind s =
  match String.index_opt s '\n' with
  | None -> Error "no header line"
  | Some nl -> (
      let header = String.sub s 0 nl in
      match String.split_on_char ' ' header with
      | [ m; version; k; digest; length ] -> (
          if m <> magic then Error (Printf.sprintf "bad magic %S" m)
          else if version <> string_of_int Key.format_version then
            Error
              (Printf.sprintf "format version %s, expected %d" version
                 Key.format_version)
          else if k <> kind then
            Error (Printf.sprintf "kind %S, expected %S" k kind)
          else
            match int_of_string_opt length with
            | None -> Error "unreadable payload length"
            | Some len ->
                if String.length s - nl - 1 <> len then
                  Error
                    (Printf.sprintf "payload length %d, header says %d"
                       (String.length s - nl - 1)
                       len)
                else
                  let payload = String.sub s (nl + 1) len in
                  if Digest.to_hex (Digest.string payload) <> digest then
                    Error "payload digest mismatch"
                  else begin
                    match Marshal.from_string payload 0 with
                    | v -> Ok v
                    | exception _ -> Error "unmarshal failed"
                  end)
      | _ -> Error "malformed header")
