(** Defensive framing around [Marshal] for cache entries.

    An encoded entry is a one-line ASCII header — magic, format
    version, kind, payload digest, payload length — followed by the
    marshaled payload. [decode] re-checks every header field and the
    payload digest before unmarshaling, so a truncated, bit-flipped,
    or version-mismatched entry is reported as [Error] (a cache miss
    upstream), never a crash and never a wrong artifact.

    [Marshal] is only type-safe if the [kind] string uniquely
    determines the payload type: every kind must map to exactly one
    OCaml type, process-wide ({!Artifact} owns the pipeline kinds).
    Payloads must be pure data — no closures, and nothing carrying
    hash-consed identity (e.g. [Poly.Basic_set]), which would decode
    into stale ids that corrupt memo tables. *)

val encode : kind:string -> 'a -> string
(** Marshal a pure-data value under [kind]'s frame. *)

val decode : kind:string -> string -> ('a, string) result
(** Check frame and digest, then unmarshal. [Error reason] on any
    mismatch or decoding failure; never raises. The caller supplies
    the expected [kind] — a frame for a different kind is an error
    even if structurally intact. *)
