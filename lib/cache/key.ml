type t = string

let format_version = 1

let make parts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "cfdc-cache-format:%d\n" format_version);
  List.iter
    (fun (label, value) ->
      Buffer.add_string buf label;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (String.length value));
      Buffer.add_char buf '\n';
      Buffer.add_string buf value;
      Buffer.add_char buf '\n')
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let to_hex t = t
let pp ppf t = Format.pp_print_string ppf t
