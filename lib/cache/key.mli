(** Content-addressed cache keys.

    A key is the stable digest of an ordered list of labeled parts —
    canonical source text, an options fingerprint, a platform
    fingerprint — plus the cache format version. Parts are framed by
    label and byte length before hashing, so ["ab" ^ "c"] and
    ["a" ^ "bc"] can never collide, and bumping {!format_version}
    invalidates every previously stored entry at once (old entries
    simply stop being addressed; [gc] reclaims them). *)

type t
(** A derived key: 32 lowercase hex characters (an MD5 over the framed
    parts). Total by construction — deriving a key never fails. *)

val format_version : int
(** Bump on any change to the entry framing, the marshaled artifact
    types, or the key derivation itself. *)

val make : (string * string) list -> t
(** [make parts] digests the labeled parts in order, prefixed by
    {!format_version}. Callers fix the label set and ordering; the
    same parts always yield the same key, in any process. *)

val to_hex : t -> string
(** The key as its hex digest — also the on-disk entry basename. *)

val pp : Format.formatter -> t -> unit
