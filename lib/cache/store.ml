type t = {
  dir : string option;
  max_memory_entries : int;
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t;  (* entry name -> encoded frame *)
  order : string Queue.t;  (* insertion order, for eviction *)
}

let c_hits = Obs.Metrics.counter "cache.hits"
let c_misses = Obs.Metrics.counter "cache.misses"
let c_evictions = Obs.Metrics.counter "cache.evictions"
let g_bytes = Obs.Metrics.gauge "cache.bytes"

let valid_kind kind =
  kind <> ""
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
       kind

let check_kind kind =
  if not (valid_kind kind) then
    invalid_arg (Printf.sprintf "Cache.Store: invalid kind %S" kind)

(* [<32 hex chars>.<kind>] — the only filenames the store will ever
   remove; anything else in the directory is foreign and left alone. *)
let is_entry_name name =
  match String.index_opt name '.' with
  | Some 32 ->
      String.for_all
        (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
        (String.sub name 0 32)
      && valid_kind (String.sub name 33 (String.length name - 33))
  | _ -> false

let is_temp_name name =
  String.length name >= 4
  && String.sub name 0 4 = "tmp-"
  && Filename.check_suffix name ".part"

let entry_name key kind = Key.to_hex key ^ "." ^ kind

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ?(max_memory_entries = 512) () =
  Option.iter mkdir_p dir;
  {
    dir;
    max_memory_entries = max 1 max_memory_entries;
    lock = Mutex.create ();
    mem = Hashtbl.create 64;
    order = Queue.create ();
  }

let dir t = t.dir

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Structured warnings: the default stderr mirror of Obs.Log renders
   these as "cfdc: cache: <msg>" — byte-identical to the Printf this
   replaced — while also counting them, feeding the flight ring, and
   reaching any installed JSON-lines sink. *)
let warn fmt = Obs.Log.warn ~scope:"cache" fmt

(* Disk entries, as (name, size, mtime). *)
let disk_entries t =
  match t.dir with
  | None -> []
  | Some dir ->
      let names = try Array.to_list (Sys.readdir dir) with Sys_error _ -> [] in
      List.filter_map
        (fun name ->
          if is_entry_name name then
            match Unix.stat (Filename.concat dir name) with
            | st -> Some (name, st.Unix.st_size, st.Unix.st_mtime)
            | exception Unix.Unix_error _ -> None
          else None)
        names

let refresh_bytes t =
  let bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 (disk_entries t) in
  Obs.Metrics.set_gauge g_bytes (float_of_int bytes)

(* Tier-one insert under the lock, evicting in insertion order. Names
   popped from the queue can be stale (overwritten or cleared); only a
   pop that actually removes a live binding counts as an eviction. *)
let mem_insert t name frame =
  if not (Hashtbl.mem t.mem name) then begin
    while Hashtbl.length t.mem >= t.max_memory_entries do
      match Queue.take_opt t.order with
      | None -> Hashtbl.reset t.mem (* unreachable: queue covers mem *)
      | Some victim ->
          if Hashtbl.mem t.mem victim then begin
            Hashtbl.remove t.mem victim;
            Obs.Metrics.incr c_evictions
          end
    done;
    Queue.add name t.order
  end;
  Hashtbl.replace t.mem name frame

let disk_read t name =
  match t.dir with
  | None -> None
  | Some dir -> (
      let path = Filename.concat dir name in
      match
        In_channel.with_open_bin path In_channel.input_all
      with
      | frame -> Some frame
      | exception Sys_error _ -> None)

let disk_write t name frame =
  match t.dir with
  | None -> ()
  | Some dir -> (
      match
        let tmp, oc =
          Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ] "tmp-"
            ".part"
        in
        (try output_string oc frame
         with e ->
           close_out_noerr oc;
           (try Sys.remove tmp with Sys_error _ -> ());
           raise e);
        close_out oc;
        Sys.rename tmp (Filename.concat dir name)
      with
      | () -> ()
      | exception e ->
          warn "disk write of %s failed (%s); entry kept in memory only" name
            (Printexc.to_string e))

let invalidate t name =
  with_lock t (fun () -> Hashtbl.remove t.mem name);
  match t.dir with
  | None -> ()
  | Some dir -> (
      try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())

let find t ~kind key ~decode =
  check_kind kind;
  let name = entry_name key kind in
  Obs.Trace.with_span ~attrs:[ ("kind", kind) ] "cache.lookup" (fun () ->
      let raw =
        match with_lock t (fun () -> Hashtbl.find_opt t.mem name) with
        | Some frame -> Some frame
        | None -> (
            match disk_read t name with
            | Some frame ->
                with_lock t (fun () -> mem_insert t name frame);
                Some frame
            | None -> None)
      in
      match raw with
      | None ->
          Obs.Metrics.incr c_misses;
          None
      | Some frame -> (
          match decode frame with
          | Ok v ->
              Obs.Metrics.incr c_hits;
              Some v
          | Error reason ->
              Obs.Metrics.incr c_misses;
              warn "corrupt entry %s (%s); recomputing" name reason;
              invalidate t name;
              None))

let store t ~kind key ~encode v =
  check_kind kind;
  let name = entry_name key kind in
  Obs.Trace.with_span ~attrs:[ ("kind", kind) ] "cache.store" (fun () ->
      match encode v with
      | frame ->
          with_lock t (fun () -> mem_insert t name frame);
          disk_write t name frame;
          if t.dir <> None then refresh_bytes t
      | exception e ->
          warn "encoding %s failed (%s); not cached" name (Printexc.to_string e))

type kind_stats = { k_kind : string; k_entries : int; k_bytes : int }

type stats = {
  st_dir : string option;
  st_memory_entries : int;
  st_memory_capacity : int;
  st_disk_entries : int;
  st_disk_bytes : int;
  st_kinds : kind_stats list;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
}

let stats t =
  let entries = disk_entries t in
  let kinds =
    List.fold_left
      (fun acc (name, sz, _) ->
        let kind = String.sub name 33 (String.length name - 33) in
        let prev =
          Option.value ~default:(0, 0) (List.assoc_opt kind acc)
        in
        (kind, (fst prev + 1, snd prev + sz)) :: List.remove_assoc kind acc)
      [] entries
    |> List.sort compare
    |> List.map (fun (k, (n, b)) -> { k_kind = k; k_entries = n; k_bytes = b })
  in
  {
    st_dir = t.dir;
    st_memory_entries = with_lock t (fun () -> Hashtbl.length t.mem);
    st_memory_capacity = t.max_memory_entries;
    st_disk_entries = List.length entries;
    st_disk_bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 entries;
    st_kinds = kinds;
    st_hits = Obs.Metrics.counter_value c_hits;
    st_misses = Obs.Metrics.counter_value c_misses;
    st_evictions = Obs.Metrics.counter_value c_evictions;
  }

let remove_temps t =
  match t.dir with
  | None -> 0
  | Some dir ->
      let names = try Array.to_list (Sys.readdir dir) with Sys_error _ -> [] in
      List.fold_left
        (fun removed name ->
          if is_temp_name name then (
            try
              Sys.remove (Filename.concat dir name);
              removed + 1
            with Sys_error _ -> removed)
          else removed)
        0 names

let gc ?max_bytes t =
  let removed_temps = remove_temps t in
  let removed_entries =
    match (t.dir, max_bytes) with
    | None, _ | _, None -> 0
    | Some dir, Some budget ->
        let entries =
          List.sort
            (fun (_, _, a) (_, _, b) -> compare a b)
            (disk_entries t)
        in
        let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 entries in
        let rec drop entries total removed =
          match entries with
          | (name, sz, _) :: rest when total > budget ->
              let removed =
                try
                  Sys.remove (Filename.concat dir name);
                  with_lock t (fun () -> Hashtbl.remove t.mem name);
                  removed + 1
                with Sys_error _ -> removed
              in
              drop rest (total - sz) removed
          | _ -> removed
        in
        drop entries total 0
  in
  if t.dir <> None then refresh_bytes t;
  removed_temps + removed_entries

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.mem;
      Queue.clear t.order);
  let removed =
    match t.dir with
    | None -> 0
    | Some dir ->
        let names =
          try Array.to_list (Sys.readdir dir) with Sys_error _ -> []
        in
        List.fold_left
          (fun removed name ->
            if is_entry_name name || is_temp_name name then (
              try
                Sys.remove (Filename.concat dir name);
                removed + 1
              with Sys_error _ -> removed)
            else removed)
          0 names
  in
  if t.dir <> None then refresh_bytes t;
  removed
