(** The two-tier content-addressed artifact store.

    Tier one is an in-process hash table of encoded frames, bounded by
    [max_memory_entries] with insertion-order eviction. Tier two is a
    flat directory of files named [<key-hex>.<kind>], written
    crash-safely (temp file in the same directory, then an atomic
    [Sys.rename]); a missing directory means the store is memory-only.

    One store value may be shared freely across worker domains — every
    tier-one access holds the store's mutex — and the on-disk tier is
    safe across processes: writers of the same entry race to rename
    byte-identical content (the key addresses the content), so the
    last writer wins without a lock and readers never observe a
    partial file.

    Corruption is contained at lookup: an entry that fails its frame
    or digest check is a miss — counted in [cache.misses], reported
    once on stderr, and the bad file removed best-effort — and the
    caller recomputes. A lookup never raises and never yields a wrong
    artifact.

    Observability (process-wide, shared by all stores): counters
    [cache.hits] / [cache.misses] / [cache.evictions], gauge
    [cache.bytes] (bytes on disk after the last mutation through this
    process), spans [cache.lookup] / [cache.store]. *)

type t

val create : ?dir:string -> ?max_memory_entries:int -> unit -> t
(** [create ~dir ()] opens (and creates, including parents) the disk
    tier at [dir]; without [dir] the store is memory-only.
    [max_memory_entries] bounds tier one (default 512, minimum 1). *)

val dir : t -> string option

val find :
  t -> kind:string -> Key.t -> decode:(string -> ('a, string) result) -> 'a option
(** Tier-one lookup, then tier-two (promoting a disk hit into memory),
    then [decode]. A decode failure invalidates the entry and returns
    [None]. [kind] must match [[a-z0-9-]+] (it is the on-disk filename
    extension). *)

val store : t -> kind:string -> Key.t -> encode:('a -> string) -> 'a -> unit
(** Encode and insert into both tiers. Disk-tier failures (permissions,
    full disk) are reported on stderr and otherwise ignored — caching
    is an optimization, never a failure mode. *)

type kind_stats = { k_kind : string; k_entries : int; k_bytes : int }

type stats = {
  st_dir : string option;
  st_memory_entries : int;
  st_memory_capacity : int;
  st_disk_entries : int;
  st_disk_bytes : int;
  st_kinds : kind_stats list;  (** disk entries grouped by kind *)
  st_hits : int;  (** process-wide session counter, all stores *)
  st_misses : int;  (** process-wide session counter, all stores *)
  st_evictions : int;  (** process-wide session counter, all stores *)
}

val stats : t -> stats

val gc : ?max_bytes:int -> t -> int
(** Reclaim the disk tier: stale temp files always; then, when
    [max_bytes] is given and the tier exceeds it, whole entries
    oldest-first (by mtime) until it fits. Returns the number of
    files removed. *)

val clear : t -> int
(** Drop every entry from both tiers (only files matching the entry
    naming pattern — the store never deletes foreign files). Returns
    the number of disk files removed. *)
