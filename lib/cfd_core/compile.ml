type options = {
  kernel_name : string;
  factorize : bool;
  fuse_pointwise : bool;
  decoupled : bool;
  sharing : bool;
  pipeline_ii : int option;
  unroll : int option;
  static_check : bool;
}

let default_options =
  {
    kernel_name = "kernel";
    factorize = true;
    fuse_pointwise = false;
    decoupled = true;
    sharing = true;
    pipeline_ii = Some 1;
    unroll = None;
    static_check = false;
  }

type result = {
  opts : options;
  checked : Cfdlang.Check.checked;
  tir : Tir.Ir.kernel;
  program : Lower.Flow.program;
  schedule : Lower.Schedule.t;
  liveness : Liveness.Analysis.t;
  memory : Mnemosyne.Memgen.architecture;
  proc : Loopir.Prog.proc;
  c_source : string;
  hls : Hls.Model.report;
  mnemosyne_metadata : string;
}

exception Error of string

let validate_options o =
  (match o.unroll with
  | Some u when u < 1 ->
      raise (Error (Printf.sprintf "invalid unroll factor %d (must be >= 1)" u))
  | _ -> ());
  match o.pipeline_ii with
  | Some ii when ii < 1 ->
      raise
        (Error (Printf.sprintf "invalid pipeline II %d (must be >= 1)" ii))
  | _ -> ()

let c_compile_runs = Obs.Metrics.counter "compile.runs"

(* One span per pipeline stage, nested under an outer "compile" span, so
   a trace of any driver shows where compilation time goes. A debug log
   event marks each stage entry so `--log --log-level debug` narrates
   the pipeline even in sinks that drop spans. *)
let stage name f =
  Obs.Log.debug ~scope:"compile" "stage %s" name;
  Obs.Trace.with_span ("compile." ^ name) f

(* Everything the board and simulator constants contribute to compiled
   artifacts and verdicts. The platform is process-wide today (one board
   model, one constant set), so the fingerprint is a constant string —
   but it still participates in every cache key, so a recalibration or a
   board-model change re-addresses the whole cache instead of serving
   stale artifacts. *)
let platform_fingerprint =
  let b = Fpga_platform.Board.zcu106 in
  let cap = b.Fpga_platform.Board.capacity in
  Printf.sprintf
    "board=%s part=%s lut=%d ff=%d dsp=%d bram18=%d fmax=%d host=%d axi=%d \
     bram-bits=%d bram-word=%d bram-depth=%d bram-ports=%d axi-eff=%.9g \
     arm-cpf=%.9g hls-pen=%.9g handshake=%d"
    b.Fpga_platform.Board.board_name b.Fpga_platform.Board.part
    cap.Fpga_platform.Resource.lut cap.Fpga_platform.Resource.ff
    cap.Fpga_platform.Resource.dsp cap.Fpga_platform.Resource.bram18
    b.Fpga_platform.Board.fmax_mhz b.Fpga_platform.Board.host_clock_mhz
    b.Fpga_platform.Board.axi_bytes_per_cycle Fpga_platform.Bram.bits
    Fpga_platform.Bram.word_width Fpga_platform.Bram.depth
    Fpga_platform.Bram.ports Sim.Constants.axi_efficiency
    Sim.Constants.arm_cycles_per_flop Sim.Constants.hls_code_cpu_penalty
    Sim.Constants.controller_handshake_cycles

(* Bumped whenever the rendering below changes shape (a field added,
   removed or reordered), so provenance manifests and crash reports can
   say which fingerprint dialect they embed. *)
let options_fingerprint_version = 1

(* [static_check] is deliberately absent: it selects whether the verdict
   is consulted during [compile], not what any artifact contains. *)
let options_fingerprint o =
  Printf.sprintf
    "kernel=%s factorize=%b fuse=%b decoupled=%b sharing=%b ii=%s unroll=%s"
    o.kernel_name o.factorize o.fuse_pointwise o.decoupled o.sharing
    (match o.pipeline_ii with None -> "none" | Some ii -> string_of_int ii)
    (match o.unroll with None -> "none" | Some u -> string_of_int u)

let cache_key ?(extra = []) ~options ast =
  Cache.Key.make
    ([
       ("source", Cfdlang.Ast.to_string ast);
       ("options", options_fingerprint options);
       ("platform", platform_fingerprint);
     ]
    @ extra)

let rec compile ?cache ?(options = default_options) ast =
  Obs.Metrics.incr c_compile_runs;
  Obs.Trace.with_span
    ~attrs:[ ("kernel", options.kernel_name) ]
    "compile"
    (fun () ->
      let r = compile_cached ?cache ~options ast in
      Obs.Log.info ~scope:"compile" "compiled kernel %s" options.kernel_name;
      r)

(* The cache stores only the pure back-half products; the front half
   (typed AST through liveness) carries hash-consed [Poly.Basic_set]
   values whose ids are process-local, so a warm compile recomputes it
   and grafts the cached products on — bit-identical to a cold compile
   because every back-half stage is a deterministic function of the
   (source, options, platform) triple the key digests. *)
and compile_cached ?cache ~options ast =
  validate_options options;
  let result =
    match cache with
    | None -> compile_stages ~options ast
    | Some store -> (
        let key = cache_key ~options ast in
        match Cache.Artifact.find_products store key with
        | Some p ->
            let checked, tir, program, schedule, liveness =
              front_stages ~options ast
            in
            {
              opts = options;
              checked;
              tir;
              program;
              schedule;
              liveness;
              memory = p.Cache.Artifact.a_memory;
              proc = p.Cache.Artifact.a_proc;
              c_source = p.Cache.Artifact.a_c_source;
              hls = p.Cache.Artifact.a_hls;
              mnemosyne_metadata = p.Cache.Artifact.a_metadata;
            }
        | None ->
            let r = compile_stages ~options ast in
            Cache.Artifact.store_products store key
              {
                Cache.Artifact.a_memory = r.memory;
                a_proc = r.proc;
                a_c_source = r.c_source;
                a_hls = r.hls;
                a_metadata = r.mnemosyne_metadata;
              };
            r)
  in
  if options.static_check then begin
    let errors =
      stage "static-check" (fun () ->
          Analysis.Diagnostic.errors (check ?cache result))
    in
    if errors <> [] then
      raise
        (Error
           (Format.asprintf "static check failed: %s@\n%a"
              (Analysis.Diagnostic.summary errors)
              (Format.pp_print_list Analysis.Diagnostic.pp)
              errors))
  end;
  result

and front_stages ~options ast =
  let checked =
    stage "frontend" (fun () ->
        match Cfdlang.Check.check ast with
        | Ok c -> c
        | Error e -> raise (Error (Format.asprintf "%a" Cfdlang.Check.pp_error e)))
  in
  let tir =
    stage "tir" (fun () ->
        let tir = Tir.Builder.build ~name:options.kernel_name checked in
        Tir.Transform.optimize ~factorize_contractions:options.factorize tir)
  in
  let program =
    stage "lower" (fun () ->
        let program = Lower.Flow.of_kernel ~name:options.kernel_name tir in
        Lower.Flow.validate program;
        program)
  in
  let resched_options =
    {
      Lower.Reschedule.default with
      Lower.Reschedule.fuse_pointwise = options.fuse_pointwise;
    }
  in
  let schedule =
    stage "reschedule" (fun () ->
        Lower.Reschedule.compute ~options:resched_options program)
  in
  let liveness =
    stage "liveness" (fun () -> Liveness.Analysis.analyze program schedule)
  in
  (checked, tir, program, schedule, liveness)

and compile_stages ~options ast =
  let checked, tir, program, schedule, liveness = front_stages ~options ast in
  let memory =
    stage "mnemosyne" (fun () ->
        Mnemosyne.Memgen.generate
          ~scope:
            (if options.decoupled then Mnemosyne.Memgen.All
             else Mnemosyne.Memgen.Interface_only)
          ~unroll:(Option.value ~default:1 options.unroll)
          ~mode:
            (if options.sharing then Mnemosyne.Memgen.Sharing
             else Mnemosyne.Memgen.No_sharing)
          program schedule)
  in
  let codegen_options =
    {
      Lower.Codegen.exported_temps = options.decoupled;
      pipeline_ii = options.pipeline_ii;
      unroll = options.unroll;
    }
  in
  let proc =
    stage "codegen" (fun () ->
        Lower.Codegen.generate ~options:codegen_options
          ~storage:memory.Mnemosyne.Memgen.storage program schedule)
  in
  let proc = stage "scalarize" (fun () -> Loopir.Scalarize.optimize proc) in
  let header =
    Printf.sprintf
      "Generated by cfd_accel from CFDlang kernel '%s'\n\
       factorize=%b decoupled=%b sharing=%b"
      options.kernel_name options.factorize options.decoupled options.sharing
  in
  let c_source = stage "emit-c" (fun () -> Loopir.Emit.c_source ~header proc) in
  let hls = stage "hls" (fun () -> Hls.Model.analyze proc) in
  let mnemosyne_metadata =
    stage "metadata" (fun () -> Mnemosyne.Memgen.metadata program schedule)
  in
  {
    opts = options;
    checked;
    tir;
    program;
    schedule;
    liveness;
    memory;
    proc;
    c_source;
    hls;
    mnemosyne_metadata;
  }

and check ?cache result =
  let verdict =
    match cache with
    | None -> check_fresh result
    | Some store -> (
        let key =
          cache_key ~options:result.opts result.checked.Cfdlang.Check.program
        in
        match Cache.Artifact.find_verdict store key with
        | Some verdict -> verdict
        | None ->
            let verdict = check_fresh result in
            Cache.Artifact.store_verdict store key verdict;
            verdict)
  in
  Obs.Log.info ~scope:"verify" "checked kernel %s: %d diagnostic(s)"
    result.opts.kernel_name (List.length verdict);
  verdict

and check_fresh result =
  let front =
    List.map
      (fun w ->
        Analysis.Diagnostic.warning ~rule:"front-unused"
          ~subject:result.opts.kernel_name w)
      (Cfdlang.Check.warnings result.checked)
  in
  front
  @ Analysis.Verify.all
      ~unroll:(Option.value ~default:1 result.opts.unroll)
      ~program:result.program ~schedule:result.schedule ~memory:result.memory
      ~proc:result.proc ()

let compile_source ?cache ?options src =
  match Cfdlang.Parser.parse src with
  | exception Cfdlang.Parser.Error (pos, msg) ->
      Result.Error
        (Printf.sprintf "parse error at %d:%d: %s" pos.Cfdlang.Lexer.line
           pos.Cfdlang.Lexer.col msg)
  | exception Cfdlang.Lexer.Error (pos, msg) ->
      Result.Error
        (Printf.sprintf "lexical error at %d:%d: %s" pos.Cfdlang.Lexer.line
           pos.Cfdlang.Lexer.col msg)
  | ast -> (
      match compile ?cache ?options ast with
      | r -> Result.Ok r
      | exception Error msg -> Result.Error msg)

let buffer_of result array =
  match List.assoc_opt array result.memory.Mnemosyne.Memgen.storage with
  | Some (buffer, offset) -> (buffer, offset)
  | None -> (array, 0)

let engine result =
  Loopir.Compiled.compile
    ~mode:(Analysis.Verify.execution_mode result.proc)
    result.proc

let verify ?(seed = 0) ?(tol = 1e-8) result =
  let inputs = Cfdlang.Eval.random_inputs ~seed result.checked in
  let expected = Cfdlang.Eval.run result.checked inputs in
  (* Stage each input into its storage buffer at its offset and run the
     compiled engine (Loopir.Interp is the reference semantics; the two
     are differentially tested bit-identical). *)
  let exec = engine result in
  let frame = Loopir.Compiled.make_frame exec in
  let frame_buffer buffer =
    match Loopir.Compiled.buffer exec frame buffer with
    | buf -> Some buf
    | exception Loopir.Compiled.Error _ -> None
  in
  List.iter
    (fun (name, tensor) ->
      let buffer, offset = buffer_of result name in
      match frame_buffer buffer with
      | None -> raise (Error ("input buffer missing: " ^ buffer))
      | Some buf ->
          let data = Tensor.Dense.to_array tensor in
          Array.blit data 0 buf offset (Array.length data))
    inputs;
  Loopir.Compiled.run exec frame;
  List.for_all
    (fun (name, expected_tensor) ->
      let buffer, offset = buffer_of result name in
      match frame_buffer buffer with
      | None -> false
      | Some buf ->
          let shape = Tensor.Dense.shape expected_tensor in
          let n = Tensor.Shape.num_elements shape in
          let got = Tensor.Dense.of_array shape (Array.sub buf offset n) in
          Tensor.Dense.equal ~tol got expected_tensor)
    expected

let build_system ?config ?force_k ?force_m ~n_elements result =
  Sysgen.System.build ?config ?force_k ?force_m ~kernel:result.hls
    ~memory:result.memory ~program:result.program ~n_elements ()

let emit_all result (sys : Sysgen.System.t) =
  let name = result.opts.kernel_name in
  [
    (name ^ ".c", result.c_source);
    (name ^ ".mnemosyne", result.mnemosyne_metadata);
    (name ^ "_plm.v", Mnemosyne.Plm_emit.verilog result.memory);
    (name ^ "_host.c", Sysgen.Host_emit.c_host_source ~kernel_name:name sys);
    (name ^ "_host.h", Sysgen.Host_emit.c_header ~kernel_name:name sys);
    ( name ^ "_ctrl.v",
      Sysgen.Hdl_emit.controller_verilog
        ~k:sys.Sysgen.System.solution.Sysgen.Replicate.k
        ~batch:sys.Sysgen.System.solution.Sysgen.Replicate.batch );
    (name ^ "_system.v", Sysgen.Hdl_emit.top_verilog ~kernel_name:name sys);
    (name ^ "_accel.hpp", Sysgen.Bindings_emit.cpp_header ~kernel_name:name sys);
    (name ^ "_accel.f90", Sysgen.Bindings_emit.fortran_module ~kernel_name:name sys);
  ]

let simulate ?config ?force_k ?force_m ~n_elements result =
  let system = build_system ?config ?force_k ?force_m ~n_elements result in
  Sysgen.System.validate system;
  let board =
    match config with
    | Some c -> c.Sysgen.Replicate.board
    | None -> Sysgen.Replicate.default_config.Sysgen.Replicate.board
  in
  Sim.Perf.run_hw ~system ~board
