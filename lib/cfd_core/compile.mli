(** The end-to-end CFDlang-to-accelerator driver: the public API of the
    flow in Figure 3.

    [compile] runs the whole middle of the figure — frontend, tensor IR,
    polyhedral lowering, rescheduling, liveness, Mnemosyne, code
    generation, HLS — and returns every artifact. [build_system] then
    instantiates the parallel architecture for a board (Section V-B), and
    {!Sim.Perf} executes it. [verify] replays the generated loop program
    against the DSL's reference semantics, aliased PLM buffers included. *)

type options = {
  kernel_name : string;
  factorize : bool;  (** associativity factorization (Section IV-A) *)
  fuse_pointwise : bool;
  decoupled : bool;
      (** export temporaries to PLMs ([true], the paper's flow) or leave
          them inside the accelerator *)
  sharing : bool;  (** Mnemosyne memory sharing *)
  pipeline_ii : int option;
  unroll : int option;
  static_check : bool;
      (** run the independent static verifier ({!Analysis.Verify}) on the
          compiled pipeline and fail on any error diagnostic *)
}

val default_options : options
(** The paper's evaluated configuration: factorized, decoupled, sharing
    on, II=1 pipelining; [kernel_name = "kernel"]; [static_check = false]
    (the verifier is opt-in for plain compiles; [Explore] always turns it
    on so the sweep prunes statically-unsound configurations). *)

type result = {
  opts : options;
  checked : Cfdlang.Check.checked;
  tir : Tir.Ir.kernel;
  program : Lower.Flow.program;
  schedule : Lower.Schedule.t;
  liveness : Liveness.Analysis.t;
  memory : Mnemosyne.Memgen.architecture;
  proc : Loopir.Prog.proc;
  c_source : string;
  hls : Hls.Model.report;
  mnemosyne_metadata : string;
}

exception Error of string

val options_fingerprint_version : int
(** Version of the {!options_fingerprint} rendering, bumped when its
    shape changes — embedded in provenance manifests and crash reports
    so a recorded run names the dialect it was fingerprinted with. *)

val options_fingerprint : options -> string
(** The canonical one-line rendering of [options] that {!cache_key}
    digests ([static_check] excluded). Stable across processes. *)

val platform_fingerprint : string
(** The platform-constant part of every {!cache_key}: board model,
    BRAM geometry and simulator calibration, as one line. *)

val cache_key :
  ?extra:(string * string) list ->
  options:options ->
  Cfdlang.Ast.program ->
  Cache.Key.t
(** The content address of everything this module computes from [ast]
    under [options]: a {!Cache.Key} over the canonical source rendering,
    an options fingerprint ([static_check] excluded — it selects whether
    the verdict is consulted, not what any artifact contains), and the
    platform constants (board model, BRAM geometry, simulator
    calibration). [extra] appends further labeled parts for derived
    products keyed off the same triple (e.g. a sweep's system shape). *)

val compile : ?cache:Cache.Store.t -> ?options:options -> Cfdlang.Ast.program -> result
(** @raise Error on type errors (wrapping [Check]) and on invalid options
    ([unroll]/[pipeline_ii] < 1), and propagates structural exceptions
    from later stages (none occur on well-typed programs — the test
    suite covers the full option matrix). With [static_check] set, also
    raises [Error] when {!check} reports any error diagnostic.

    With [cache], the back-half products (Mnemosyne architecture,
    scalarized proc, C source, HLS report, metadata) are looked up under
    {!cache_key} and stored on a miss; a hit recomputes only the front
    half (frontend through liveness — those structures carry hash-consed
    polyhedral state that cannot be serialized) and is bit-identical to
    a cold compile. A corrupt or stale entry is a miss, never an error. *)

val check : ?cache:Cache.Store.t -> result -> Analysis.Diagnostic.t list
(** The full static verdict on a compiled pipeline: frontend warnings
    (rule [front-unused]) followed by every {!Analysis.Verify} check —
    dependence preservation, use-before-def, affine bounds on the emitted
    loop nest, and PLM sharing soundness at the compiled unroll factor.
    An empty list means every proof went through. With [cache], the
    verdict is looked up under the result's {!cache_key} and stored
    after a fresh run — same diagnostics, in the same order. *)

val compile_source :
  ?cache:Cache.Store.t -> ?options:options -> string -> (result, string) Result.t
(** Parse, check and compile CFDlang source text. *)

val engine : result -> Loopir.Compiled.t
(** The compiled execution engine for [result.proc], at the strongest
    mode the static verifier licenses ({!Analysis.Verify.execution_mode}:
    unchecked inner loops when the Fourier–Motzkin bounds proof is
    clean, checked otherwise, debug cross-checking under
    [CFD_EXEC_DEBUG]). Compilation is a one-time cost; callers should
    reuse the returned engine across runs. *)

val verify : ?seed:int -> ?tol:float -> result -> bool
(** Execute the generated loop program on random inputs through the
    storage map (via {!engine}) and compare every output against
    {!Cfdlang.Eval}. *)

val build_system :
  ?config:Sysgen.Replicate.config ->
  ?force_k:int ->
  ?force_m:int ->
  n_elements:int ->
  result ->
  Sysgen.System.t

val simulate :
  ?config:Sysgen.Replicate.config ->
  ?force_k:int ->
  ?force_m:int ->
  n_elements:int ->
  result ->
  Sim.Perf.hw_result
(** [build_system] + {!Sim.Perf.run_hw} on the config's board. *)

val emit_all : result -> Sysgen.System.t -> (string * string) list
(** Every artifact of the flow as (filename, contents) pairs: the HLS C
    kernel, Mnemosyne metadata, PLM Verilog, host driver + header,
    controller and top-level Verilog, and the Fortran/C++ handles —
    what [cfdc emit] writes to disk. *)
