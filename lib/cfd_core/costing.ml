module Cost = Analysis.Cost
module D = Analysis.Diagnostic

type residents = (string * (string * Poly.Lex.interval option) list) list

type report = {
  kernel : string;
  cost : Cost.t;
  buffer_residents : residents;
  shape : Cost.shape option;
  estimate : Cost.cycle_estimate option;
  infeasible : string option;
  drift : D.t list option;
  sim_elements : int option;
}

let board_model (board : Fpga_platform.Board.t) =
  {
    Cost.bm_fmax_mhz = board.Fpga_platform.Board.fmax_mhz;
    bm_axi_bytes_per_cycle = board.Fpga_platform.Board.axi_bytes_per_cycle;
    bm_axi_efficiency = Sim.Constants.axi_efficiency;
    bm_handshake_cycles = Sim.Constants.controller_handshake_cycles;
  }

let shape_of (sys : Sysgen.System.t) =
  let host = sys.Sysgen.System.host in
  {
    Cost.sh_n_elements = host.Sysgen.System.n_elements;
    sh_k = sys.Sysgen.System.solution.Sysgen.Replicate.k;
    sh_m = sys.Sysgen.System.solution.Sysgen.Replicate.m;
    sh_batch = host.Sysgen.System.rounds_per_block;
  }

let static ?budget (r : Compile.result) =
  Cost.analyze ?budget
    ~unroll:(Option.value ~default:1 r.Compile.opts.Compile.unroll)
    ~program:r.Compile.program ~memory:r.Compile.memory ~proc:r.Compile.proc ()

let estimate ~board ~system (r : Compile.result) cost =
  Cost.cycles cost ~latency:r.Compile.hls.Hls.Model.latency_cycles
    ~shape:(shape_of system) ~board:(board_model board)

(* Same deterministic per-element inputs as cfdc's simulation legs, so a
   drift run reproduces exactly what the profiling commands measure. *)
let synthetic_inputs (sys : Sysgen.System.t) =
  let shapes =
    List.map
      (fun (tr : Sysgen.System.transfer) ->
        (tr.Sysgen.System.array, tr.Sysgen.System.bytes / 8))
      sys.Sysgen.System.host.Sysgen.System.per_element_in
  in
  fun e ->
    List.map
      (fun (nm, words) ->
        ( nm,
          Array.init words (fun i ->
              float_of_int ((((e + 1) * 31) + i) mod 97) /. 97.) ))
      shapes

let observe ?(sim_n = 4) ~system ~board (r : Compile.result) =
  let proc = r.Compile.proc in
  let v name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
  let iterations () = v "exec.iterations.checked" + v "exec.iterations.unchecked" in
  let stmts0 = v "exec.statements" and iters0 = iterations () in
  let in0 = v "sim.dma.bytes_in" and out0 = v "sim.dma.bytes_out" in
  (* The recorder's probe gate is at compile time, so the engine must be
     compiled inside the enabled window — Functional.run does that. Only
     the round-scheduled strategy reports per-set DMA in set order. *)
  Memprof.Record.enable ();
  let snap =
    Fun.protect
      ~finally:(fun () -> Memprof.Record.disable ())
      (fun () ->
        ignore
          (Sim.Functional.run ~strategy:Sim.Functional.Round_scheduled ~system
             ~proc ~inputs:(synthetic_inputs system) ~n:sim_n ());
        Memprof.Record.snapshot ())
  in
  let hw = Sim.Perf.run_hw ~system ~board in
  {
    Cost.obs_elements = sim_n;
    obs_m = system.Sysgen.System.solution.Sysgen.Replicate.m;
    obs_statements = Some (v "exec.statements" - stmts0);
    obs_iterations = Some (iterations () - iters0);
    obs_dma_bytes_in = Some (v "sim.dma.bytes_in" - in0);
    obs_dma_bytes_out = Some (v "sim.dma.bytes_out" - out0);
    obs_dma_sets =
      Some
        (List.map
           (fun (d : Memprof.Record.dma_stats) ->
             ( d.Memprof.Record.d_set,
               d.Memprof.Record.d_words_in,
               d.Memprof.Record.d_words_out ))
           snap.Memprof.Record.sn_dma);
    obs_sites =
      Some
        (List.filter_map
           (fun (s : Memprof.Record.site_stats) ->
             if s.Memprof.Record.s_proc = proc.Loopir.Prog.name then
               Some
                 ( s.Memprof.Record.s_site,
                   s.Memprof.Record.s_desc,
                   s.Memprof.Record.s_instances,
                   s.Memprof.Record.s_reads,
                   s.Memprof.Record.s_writes )
             else None)
           snap.Memprof.Record.sn_sites);
    obs_buffers =
      Some
        (List.map
           (fun (b : Memprof.Record.buffer_stats) ->
             ( b.Memprof.Record.b_buffer,
               b.Memprof.Record.b_reads,
               b.Memprof.Record.b_writes,
               b.Memprof.Record.b_max_pressure ))
           snap.Memprof.Record.sn_buffers);
    obs_total_cycles = Some hw.Sim.Perf.total_cycles;
    obs_total_brams = Some r.Compile.memory.Mnemosyne.Memgen.total_brams;
  }

(* Resident arrays per cost buffer: the storage map sends each logical
   array to its backing buffer (unlisted arrays back themselves), and the
   liveness analysis — when it knows the array — contributes the live
   interval the sharing proof was built on. *)
let residents_of (r : Compile.result) (cost : Cost.t) =
  let storage = r.Compile.memory.Mnemosyne.Memgen.storage in
  let backing name =
    match List.assoc_opt name storage with Some (buf, _) -> buf | None -> name
  in
  List.map
    (fun (b : Cost.buffer) ->
      ( b.Cost.buf_name,
        List.filter_map
          (fun (a : Lower.Flow.array_info) ->
            let name = a.Lower.Flow.array_name in
            if backing name = b.Cost.buf_name then
              Some
                ( name,
                  Option.map
                    (fun (i : Liveness.Analysis.array_liveness) ->
                      i.Liveness.Analysis.interval)
                    (Liveness.Analysis.find_opt r.Compile.liveness name) )
            else None)
          r.Compile.program.Lower.Flow.arrays ))
    cost.Cost.buffers

(* The static cost record is cached under the compile key extended with
   the port budget (the only [static] input outside the key's triple).
   The dynamic legs (system solve, drift simulation) stay live: they are
   the measurement side of the drift check and must never be replayed
   from a cache. *)
let cached_static ?cache ?budget (r : Compile.result) =
  match cache with
  | None -> static ?budget r
  | Some store -> (
      let key =
        Compile.cache_key ~options:r.Compile.opts
          r.Compile.checked.Cfdlang.Check.program
          ~extra:
            [
              ( "cost-budget",
                match budget with None -> "none" | Some b -> string_of_int b );
            ]
      in
      match Cache.Artifact.find_cost store key with
      | Some cost -> cost
      | None ->
          let cost = static ?budget r in
          Cache.Artifact.store_cost store key cost;
          cost)

let analyze ?budget ?(config = Sysgen.Replicate.default_config) ?(diff = false)
    ?sim_n ?cache ~n_elements (r : Compile.result) =
  let cost = cached_static ?cache ?budget r in
  let board = config.Sysgen.Replicate.board in
  let base =
    {
      kernel = r.Compile.proc.Loopir.Prog.name;
      cost;
      buffer_residents = residents_of r cost;
      shape = None;
      estimate = None;
      infeasible = None;
      drift = None;
      sim_elements = None;
    }
  in
  match Compile.build_system ~config ~n_elements r with
  | exception Sysgen.Replicate.Infeasible msg ->
      (* No system, no simulation: the only observation left to check is
         the architecture's own BRAM claim. *)
      let drift =
        if diff then
          Some
            (Cost.drift cost
               {
                 (Cost.no_observation ~n:0 ~m:1) with
                 Cost.obs_total_brams =
                   Some r.Compile.memory.Mnemosyne.Memgen.total_brams;
               })
        else None
      in
      { base with infeasible = Some msg; drift }
  | sys ->
      Sysgen.System.validate sys;
      let est = estimate ~board ~system:sys r cost in
      let drift, sim_elements =
        if diff then
          let obs = observe ?sim_n ~system:sys ~board r in
          ( Some (Cost.drift cost ~cycle_model:est obs),
            Some obs.Cost.obs_elements )
        else (None, None)
      in
      {
        base with
        shape = Some (shape_of sys);
        estimate = Some est;
        drift;
        sim_elements;
      }

let json_count (c : Cost.count) =
  Obs.Json.Obj [ ("value", Obs.Json.Int c.Cost.value); ("exact", Obs.Json.Bool c.Cost.exact) ]

let json_opt f = function None -> Obs.Json.Null | Some x -> f x

(* The liveness brackets interface arrays with virtual host first/last
   timestamps; print those as words, not as min_int/max_int sentinels. *)
let pp_ts ppf ts =
  if ts = [| min_int |] then Format.pp_print_string ppf "host-first"
  else if ts = [| max_int |] then Format.pp_print_string ppf "host-last"
  else Poly.Lex.pp_timestamp ppf ts

let pp_interval ppf (iv : Poly.Lex.interval) =
  Format.fprintf ppf "[%a .. %a]" pp_ts iv.Poly.Lex.first pp_ts iv.Poly.Lex.last

let json_interval (iv : Poly.Lex.interval) =
  Obs.Json.String (Format.asprintf "%a" pp_interval iv)

let json_diag (d : D.t) =
  Obs.Json.Obj
    [
      ( "severity",
        Obs.Json.String (match d.D.severity with D.Error -> "error" | D.Warning -> "warning") );
      ("rule", Obs.Json.String d.D.rule);
      ("subject", Obs.Json.String d.D.subject);
      ("message", Obs.Json.String d.D.message);
    ]

let to_json t =
  let c = t.cost in
  let residents_json name =
    match List.assoc_opt name t.buffer_residents with
    | None | Some [] -> Obs.Json.List []
    | Some rs ->
        Obs.Json.List
          (List.map
             (fun (a, iv) ->
               Obs.Json.Obj
                 [ ("array", Obs.Json.String a); ("interval", json_opt json_interval iv) ])
             rs)
  in
  Obs.Json.Obj
    [
      ("kernel", Obs.Json.String t.kernel);
      ("feasible", Obs.Json.Bool (t.infeasible = None));
      ("infeasible", json_opt (fun m -> Obs.Json.String m) t.infeasible);
      ("statements", json_count c.Cost.statements);
      ("iterations", json_count c.Cost.iterations);
      ("reads", json_count c.Cost.reads);
      ("writes", json_count c.Cost.writes);
      ("words_in", Obs.Json.Int c.Cost.words_in);
      ("words_out", Obs.Json.Int c.Cost.words_out);
      ("brams", Obs.Json.Int c.Cost.brams);
      ( "sites",
        Obs.Json.List
          (List.map
             (fun (s : Cost.site) ->
               Obs.Json.Obj
                 [
                   ("site", Obs.Json.Int s.Cost.site_id);
                   ("desc", Obs.Json.String s.Cost.site_desc);
                   ("trips", json_count s.Cost.site_trips);
                   ("reads", Obs.Json.Int s.Cost.site_reads);
                   ("writes", Obs.Json.Int s.Cost.site_writes);
                 ])
             c.Cost.sites) );
      ( "buffers",
        Obs.Json.List
          (List.map
             (fun (b : Cost.buffer) ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String b.Cost.buf_name);
                   ("reads", json_count b.Cost.buf_reads);
                   ("writes", json_count b.Cost.buf_writes);
                   ("peak_pressure", Obs.Json.Int b.Cost.buf_peak_pressure);
                   ("port_demand", Obs.Json.Int b.Cost.buf_port_demand);
                   ( "port_budget",
                     json_opt (fun p -> Obs.Json.Int p) b.Cost.buf_port_budget );
                   ("residents", residents_json b.Cost.buf_name);
                 ])
             c.Cost.buffers) );
      ( "shape",
        json_opt
          (fun (s : Cost.shape) ->
            Obs.Json.Obj
              [
                ("n_elements", Obs.Json.Int s.Cost.sh_n_elements);
                ("k", Obs.Json.Int s.Cost.sh_k);
                ("m", Obs.Json.Int s.Cost.sh_m);
                ("batch", Obs.Json.Int s.Cost.sh_batch);
              ])
          t.shape );
      ( "estimate",
        json_opt
          (fun (e : Cost.cycle_estimate) ->
            Obs.Json.Obj
              [
                ("round_cycles", Obs.Json.Int e.Cost.ce_round_cycles);
                ("blocks", Obs.Json.Int e.Cost.ce_blocks);
                ("exec_cycles", Obs.Json.Int e.Cost.ce_exec_cycles);
                ("transfer_cycles", Obs.Json.Int e.Cost.ce_transfer_cycles);
                ("total_cycles", Obs.Json.Int e.Cost.ce_total_cycles);
                ("seconds", Obs.Json.Float e.Cost.ce_seconds);
              ])
          t.estimate );
      ("diagnostics", Obs.Json.List (List.map json_diag c.Cost.diagnostics));
      ("drift", json_opt (fun ds -> Obs.Json.List (List.map json_diag ds)) t.drift);
      ("sim_elements", json_opt (fun n -> Obs.Json.Int n) t.sim_elements);
    ]

let pp_report ppf t =
  Cost.pp ppf t.cost;
  (match t.infeasible with
  | Some msg -> Format.fprintf ppf "system: infeasible (%s)@\n" msg
  | None -> ());
  (match (t.shape, t.estimate) with
  | Some s, Some e ->
      Format.fprintf ppf "system: n=%d k=%d m=%d batch=%d@\n"
        s.Cost.sh_n_elements s.Cost.sh_k s.Cost.sh_m s.Cost.sh_batch;
      Format.fprintf ppf "%a@\n" Cost.pp_cycle_estimate e
  | _ -> ());
  List.iter
    (fun (buf, rs) ->
      match rs with
      | [] | [ _ ] when List.for_all (fun (a, _) -> a = buf) rs -> ()
      | rs ->
          Format.fprintf ppf "residents %-8s %a@\n" buf
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               (fun ppf (a, iv) ->
                 match iv with
                 | None -> Format.pp_print_string ppf a
                 | Some iv -> Format.fprintf ppf "%s %a" a pp_interval iv))
            rs)
    t.buffer_residents;
  match t.drift with
  | None -> ()
  | Some [] ->
      Format.fprintf ppf "drift: none (simulated %d element%s)@\n"
        (Option.value ~default:0 t.sim_elements)
        (if t.sim_elements = Some 1 then "" else "s")
  | Some ds ->
      Format.fprintf ppf "drift:@\n";
      List.iter (fun d -> Format.fprintf ppf "  %a@\n" D.pp d) ds
