(** Orchestration of the static cost analyzer ({!Analysis.Cost}) over a
    compiled pipeline: builds the shape/board parameters from the
    system generator and the simulator's constants, runs the dynamic
    legs for the drift check, and renders the report — the engine
    behind [cfdc cost] and the static pre-filter of {!Explore.sweep}.

    [Analysis.Cost] itself is pure and knows nothing about [Sim] or
    [Sysgen]; this module is the one place that connects prediction to
    measurement:

    - the {e cycle model} is instantiated with [Sim.Constants]
      (AXI efficiency, controller handshake) and the board record, and
      its float arithmetic matches [Sim.Perf] operation for operation;
    - the {e observation} runs one recorded round-scheduled functional
      simulation and reads back the [exec.*]/[sim.*] counter deltas,
      the [Memprof.Record] snapshot, and the cycle-accurate
      [Sim.Perf] result;
    - {!Analysis.Cost.drift} then reports every mismatch as a
      [cost-drift-*] diagnostic. *)

type residents = (string * (string * Poly.Lex.interval option) list) list
(** Per storage buffer, the resident arrays with their live intervals
    (when the liveness analysis knows them). *)

type report = {
  kernel : string;
  cost : Analysis.Cost.t;
  buffer_residents : residents;
  shape : Analysis.Cost.shape option;  (** [None] when infeasible *)
  estimate : Analysis.Cost.cycle_estimate option;
  infeasible : string option;
  drift : Analysis.Diagnostic.t list option;  (** [Some] when the diff ran *)
  sim_elements : int option;  (** elements the drift simulation ran *)
}

val board_model : Fpga_platform.Board.t -> Analysis.Cost.board_model
val shape_of : Sysgen.System.t -> Analysis.Cost.shape

val static : ?budget:int -> Compile.result -> Analysis.Cost.t
(** {!Analysis.Cost.analyze} at the result's compiled unroll factor. *)

val estimate :
  board:Fpga_platform.Board.t ->
  system:Sysgen.System.t ->
  Compile.result ->
  Analysis.Cost.t ->
  Analysis.Cost.cycle_estimate
(** The static cycle estimate for one built system. Bit-identical to
    [Sim.Perf.run_hw ~system ~board] on uniform latencies (asserted by
    the drift detector and the differential tests). *)

val observe :
  ?sim_n:int ->
  system:Sysgen.System.t ->
  board:Fpga_platform.Board.t ->
  Compile.result ->
  Analysis.Cost.observed
(** Run the dynamic legs: one recorded round-scheduled functional
    simulation of [sim_n] elements (default 4) with deterministic
    synthetic inputs, plus the cycle-accurate performance model.
    @raise Sim.Functional.Error when the simulation fails. *)

val analyze :
  ?budget:int ->
  ?config:Sysgen.Replicate.config ->
  ?diff:bool ->
  ?sim_n:int ->
  ?cache:Cache.Store.t ->
  n_elements:int ->
  Compile.result ->
  report
(** The full report: static cost, cycle estimate for the system solved
    at [n_elements] (infeasible boards degrade to a static-only
    report), and — with [diff] (default false) — the drift check
    against the observability stack. With [cache], the static cost
    record is looked up under the result's [Compile.cache_key]
    (extended with [budget]); the dynamic legs always run live. *)

val to_json : report -> Obs.Json.t
val pp_report : Format.formatter -> report -> unit
