type configuration = { label : string; options : Compile.options }

type outcome = {
  configuration : configuration;
  feasible : bool;
  max_replicas : int;
  plm_brams : int;
  resources : Fpga_platform.Resource.t;
  seconds : float;
  diagnostic : string option;
}

let standard_configurations =
  let base = Compile.default_options in
  [
    { label = "factorized + decoupled + sharing"; options = base };
    {
      label = "factorized + decoupled, no sharing";
      options = { base with Compile.sharing = false };
    };
    {
      label = "factorized, temporaries in HLS";
      options = { base with Compile.decoupled = false; sharing = false };
    };
    {
      label = "direct contraction + sharing";
      options = { base with Compile.factorize = false };
    };
    {
      label = "factorized + sharing + unroll 2";
      options = { base with Compile.unroll = Some 2 };
    };
  ]

let pruned_counter = Obs.Metrics.counter "explore.pruned"

(* The content address of one configuration's sweep outcome: the compile
   key of its options over this source, extended with everything else
   the outcome depends on — the replication solver's inputs and the
   element count. The label is deliberately excluded (it names the
   point, it does not change it); a cached outcome is re-labeled with
   the caller's configuration on the way out. *)
let outcome_kind = "sweep-outcome"

let res_fp (r : Fpga_platform.Resource.t) =
  Printf.sprintf "%d/%d/%d/%d" r.Fpga_platform.Resource.lut
    r.Fpga_platform.Resource.ff r.Fpga_platform.Resource.dsp
    r.Fpga_platform.Resource.bram18

let outcome_key ~(config : Sysgen.Replicate.config) ~n_elements ast
    configuration =
  Compile.cache_key ~options:configuration.options ast
    ~extra:
      [
        ( "sweep",
          Printf.sprintf "n=%d board=%s reserve=%s glue=%s" n_elements
            config.Sysgen.Replicate.board.Fpga_platform.Board.board_name
            (res_fp config.Sysgen.Replicate.interface_reserve)
            (res_fp config.Sysgen.Replicate.glue_per_kernel) );
      ]

let infeasible ?(plm_brams = 0) configuration diagnostic =
  (* Structured, not printed: infeasible configurations are a normal
     part of a sweep, so this stays below the stderr mirror — but with
     the log level at [Info] (or the flight recorder on) each pruned
     config is visible with its options fingerprint and diagnostic. *)
  Obs.Log.info ~scope:"explore"
    ~attrs:[ ("options", Compile.options_fingerprint configuration.options) ]
    "config infeasible: %s" diagnostic;
  {
    configuration;
    feasible = false;
    max_replicas = 0;
    plm_brams;
    resources = Fpga_platform.Resource.zero;
    seconds = Float.infinity;
    diagnostic = Some diagnostic;
  }

(* Phase A of a sweep, one configuration in isolation: compile, verify
   exactly once, build and validate the system, and predict performance
   statically. Any exception — an infeasible board, but also a crash
   anywhere in the pipeline — becomes an infeasible outcome carrying the
   diagnostic, so a single bad configuration can never abort the rest of
   the sweep. *)
type ready = {
  r_configuration : configuration;
  r_plm_brams : int;
  r_system : Sysgen.System.t;
  r_estimate : Analysis.Cost.cycle_estimate;
}

type prepared = Ready of ready | Settled of outcome

let prepare ?cache ~config ~n_elements ast configuration =
  (* The verifier runs exactly once per configuration, here: the compile
     itself goes with the embedded check off (a caller-supplied
     [static_check = true] would otherwise verify the same pipeline a
     second time inside [Compile.compile]), and a pipeline failing a
     proof is pruned as infeasible before any system is built. *)
  let options = { configuration.options with Compile.static_check = false } in
  match Compile.compile ?cache ~options ast with
  | exception e -> Settled (infeasible configuration (Printexc.to_string e))
  | r -> (
      let plm_brams = r.Compile.memory.Mnemosyne.Memgen.total_brams in
      match Analysis.Diagnostic.errors (Compile.check ?cache r) with
      | _ :: _ as errors ->
          Settled
            (infeasible ~plm_brams configuration
               ("static check failed: " ^ Analysis.Diagnostic.summary errors))
      | [] -> (
          match
            let sys = Compile.build_system ~config ~n_elements r in
            Sysgen.System.validate sys;
            sys
          with
          | sys ->
              Ready
                {
                  r_configuration = configuration;
                  r_plm_brams = plm_brams;
                  r_system = sys;
                  r_estimate =
                    Costing.estimate ~board:config.Sysgen.Replicate.board
                      ~system:sys r (Costing.static r);
                }
          | exception Sysgen.Replicate.Infeasible msg ->
              Settled (infeasible ~plm_brams configuration ("infeasible: " ^ msg))
          | exception e ->
              Settled (infeasible ~plm_brams configuration (Printexc.to_string e))))

let outcome_of_ready ~seconds ready =
  {
    configuration = ready.r_configuration;
    feasible = true;
    max_replicas = ready.r_system.Sysgen.System.solution.Sysgen.Replicate.m;
    plm_brams = ready.r_plm_brams;
    resources = ready.r_system.Sysgen.System.total_resources;
    seconds;
    diagnostic = None;
  }

let dominates a b =
  (* a dominates b: no worse on all three axes, strictly better on one *)
  a.resources.Fpga_platform.Resource.lut <= b.resources.Fpga_platform.Resource.lut
  && a.resources.Fpga_platform.Resource.bram18
     <= b.resources.Fpga_platform.Resource.bram18
  && a.seconds <= b.seconds
  && (a.resources.Fpga_platform.Resource.lut < b.resources.Fpga_platform.Resource.lut
     || a.resources.Fpga_platform.Resource.bram18
        < b.resources.Fpga_platform.Resource.bram18
     || a.seconds < b.seconds)

let sweep ?jobs ?(config = Sysgen.Replicate.default_config)
    ?(configurations = standard_configurations) ?(prefilter = false) ?cache
    ~n_elements ast =
  (* A warm start never changes what a sweep returns, only what it
     recomputes: cached outcomes are final per-configuration results
     (settled failures or simulated successes — never prefilter-pruned
     static prices, whose value depends on the competing configurations),
     stored as each one settles so an interrupted sweep resumes where it
     died. *)
  let find_cached configuration =
    match cache with
    | None -> None
    | Some store ->
        Option.map
          (fun o -> { o with configuration })
          (Cache.Store.find store ~kind:outcome_kind
             (outcome_key ~config ~n_elements ast configuration)
             ~decode:(Cache.Codec.decode ~kind:outcome_kind))
  in
  let store_outcome (o : outcome) =
    match cache with
    | None -> ()
    | Some store ->
        Cache.Store.store store ~kind:outcome_kind
          (outcome_key ~config ~n_elements ast o.configuration)
          ~encode:(Cache.Codec.encode ~kind:outcome_kind)
          o
  in
  let lookups = List.map (fun c -> (c, find_cached c)) configurations in
  let misses =
    List.filter_map (function c, None -> Some c | _ -> None) lookups
  in
  let miss_preps =
    Pool.map ?jobs (prepare ?cache ~config ~n_elements ast) misses
    |> List.map2
         (fun configuration -> function
           | Ok prepared -> prepared
           | Error { Pool.message; _ } ->
               Settled (infeasible configuration message))
         misses
  in
  (* Cached outcomes and fresh preparations, re-interleaved in input
     order. *)
  let rec stitch lookups preps =
    match (lookups, preps) with
    | [], [] -> []
    | (_, Some o) :: lookups, preps -> `Cached o :: stitch lookups preps
    | (_, None) :: lookups, p :: preps -> `Fresh p :: stitch lookups preps
    | _ -> assert false
  in
  let items = stitch lookups miss_preps in
  (* The static outcome prices a Ready configuration by the closed-form
     cycle model — for uniform latencies that is bit-identical to what
     Sim.Perf would report, which is what makes pruning on it sound: a
     configuration statically dominated on (LUT, BRAM, seconds) cannot
     enter the Pareto frontier, so the filtered sweep returns the same
     frontier while simulating strictly fewer systems. Cached outcomes
     join the domination pool on the same footing. *)
  let statics =
    List.map
      (function
        | `Cached o | `Fresh (Settled o) -> o
        | `Fresh (Ready r) ->
            outcome_of_ready ~seconds:r.r_estimate.Analysis.Cost.ce_seconds r)
      items
  in
  let plan =
    List.map2
      (fun item static ->
        match item with
        | `Cached o -> `Done o
        | `Fresh (Settled o) ->
            store_outcome o;
            `Done o
        | `Fresh (Ready r) ->
            if
              prefilter
              && List.exists
                   (fun other -> other.feasible && dominates other static)
                   statics
            then begin
              Obs.Metrics.incr pruned_counter;
              `Done static
            end
            else `Sim r)
      items statics
  in
  let to_sim = List.filter_map (function `Sim r -> Some r | `Done _ -> None) plan in
  let simulated =
    Pool.map ?jobs
      (fun r ->
        let hw =
          Sim.Perf.run_hw ~system:r.r_system
            ~board:config.Sysgen.Replicate.board
        in
        let o = outcome_of_ready ~seconds:hw.Sim.Perf.total_seconds r in
        store_outcome o;
        o)
      to_sim
    |> List.map2
         (fun r -> function
           | Ok o -> o
           | Error { Pool.message; _ } -> infeasible r.r_configuration message)
         to_sim
  in
  let rec interleave plan simulated =
    match (plan, simulated) with
    | [], _ -> []
    | `Done o :: plan, simulated -> o :: interleave plan simulated
    | `Sim _ :: plan, o :: simulated -> o :: interleave plan simulated
    | `Sim _ :: _, [] -> assert false
  in
  interleave plan simulated

let pareto outcomes =
  let feasible = List.filter (fun o -> o.feasible) outcomes in
  List.filter
    (fun o -> not (List.exists (fun other -> dominates other o) feasible))
    feasible

let pp_outcome ppf o =
  if o.feasible then
    Format.fprintf ppf "%-36s m=%2d PLM=%2d BRAM  %a  %.2f s"
      o.configuration.label o.max_replicas o.plm_brams
      Fpga_platform.Resource.pp o.resources o.seconds
  else
    Format.fprintf ppf "%-36s infeasible%s" o.configuration.label
      (match o.diagnostic with
      | Some d when d <> "" -> " (" ^ d ^ ")"
      | _ -> "")
