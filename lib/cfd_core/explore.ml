type configuration = { label : string; options : Compile.options }

type outcome = {
  configuration : configuration;
  feasible : bool;
  max_replicas : int;
  plm_brams : int;
  resources : Fpga_platform.Resource.t;
  seconds : float;
  diagnostic : string option;
}

let standard_configurations =
  let base = Compile.default_options in
  [
    { label = "factorized + decoupled + sharing"; options = base };
    {
      label = "factorized + decoupled, no sharing";
      options = { base with Compile.sharing = false };
    };
    {
      label = "factorized, temporaries in HLS";
      options = { base with Compile.decoupled = false; sharing = false };
    };
    {
      label = "direct contraction + sharing";
      options = { base with Compile.factorize = false };
    };
    {
      label = "factorized + sharing + unroll 2";
      options = { base with Compile.unroll = Some 2 };
    };
  ]

let infeasible ?(plm_brams = 0) configuration diagnostic =
  {
    configuration;
    feasible = false;
    max_replicas = 0;
    plm_brams;
    resources = Fpga_platform.Resource.zero;
    seconds = Float.infinity;
    diagnostic = Some diagnostic;
  }

(* One configuration, evaluated in isolation: any exception — an
   infeasible board, but also a crash anywhere in the compile or system
   build — becomes an infeasible outcome carrying the diagnostic, so a
   single bad configuration can never abort the rest of the sweep. The
   static verifier is always on here: a configuration whose pipeline
   fails a proof is pruned as infeasible before any system is built. *)
let evaluate ~config ~n_elements ast configuration =
  let options = { configuration.options with Compile.static_check = true } in
  match Compile.compile ~options ast with
  | exception e -> infeasible configuration (Printexc.to_string e)
  | r -> (
      let plm_brams = r.Compile.memory.Mnemosyne.Memgen.total_brams in
      match
        let sys = Compile.build_system ~config ~n_elements r in
        Sysgen.System.validate sys;
        let hw =
          Sim.Perf.run_hw ~system:sys ~board:config.Sysgen.Replicate.board
        in
        (sys, hw)
      with
      | sys, hw ->
          {
            configuration;
            feasible = true;
            max_replicas = sys.Sysgen.System.solution.Sysgen.Replicate.m;
            plm_brams;
            resources = sys.Sysgen.System.total_resources;
            seconds = hw.Sim.Perf.total_seconds;
            diagnostic = None;
          }
      | exception Sysgen.Replicate.Infeasible msg ->
          infeasible ~plm_brams configuration ("infeasible: " ^ msg)
      | exception e -> infeasible ~plm_brams configuration (Printexc.to_string e))

let sweep ?jobs ?(config = Sysgen.Replicate.default_config)
    ?(configurations = standard_configurations) ~n_elements ast =
  Pool.map ?jobs (evaluate ~config ~n_elements ast) configurations
  |> List.map2
       (fun configuration -> function
         | Ok outcome -> outcome
         | Error { Pool.message; _ } -> infeasible configuration message)
       configurations

let dominates a b =
  (* a dominates b: no worse on all three axes, strictly better on one *)
  a.resources.Fpga_platform.Resource.lut <= b.resources.Fpga_platform.Resource.lut
  && a.resources.Fpga_platform.Resource.bram18
     <= b.resources.Fpga_platform.Resource.bram18
  && a.seconds <= b.seconds
  && (a.resources.Fpga_platform.Resource.lut < b.resources.Fpga_platform.Resource.lut
     || a.resources.Fpga_platform.Resource.bram18
        < b.resources.Fpga_platform.Resource.bram18
     || a.seconds < b.seconds)

let pareto outcomes =
  let feasible = List.filter (fun o -> o.feasible) outcomes in
  List.filter
    (fun o -> not (List.exists (fun other -> dominates other o) feasible))
    feasible

let pp_outcome ppf o =
  if o.feasible then
    Format.fprintf ppf "%-36s m=%2d PLM=%2d BRAM  %a  %.2f s"
      o.configuration.label o.max_replicas o.plm_brams
      Fpga_platform.Resource.pp o.resources o.seconds
  else
    Format.fprintf ppf "%-36s infeasible%s" o.configuration.label
      (match o.diagnostic with
      | Some d when d <> "" -> " (" ^ d ^ ")"
      | _ -> "")
