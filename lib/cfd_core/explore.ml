type configuration = { label : string; options : Compile.options }

type outcome = {
  configuration : configuration;
  feasible : bool;
  max_replicas : int;
  plm_brams : int;
  resources : Fpga_platform.Resource.t;
  seconds : float;
  diagnostic : string option;
}

let standard_configurations =
  let base = Compile.default_options in
  [
    { label = "factorized + decoupled + sharing"; options = base };
    {
      label = "factorized + decoupled, no sharing";
      options = { base with Compile.sharing = false };
    };
    {
      label = "factorized, temporaries in HLS";
      options = { base with Compile.decoupled = false; sharing = false };
    };
    {
      label = "direct contraction + sharing";
      options = { base with Compile.factorize = false };
    };
    {
      label = "factorized + sharing + unroll 2";
      options = { base with Compile.unroll = Some 2 };
    };
  ]

let pruned_counter = Obs.Metrics.counter "explore.pruned"

let infeasible ?(plm_brams = 0) configuration diagnostic =
  {
    configuration;
    feasible = false;
    max_replicas = 0;
    plm_brams;
    resources = Fpga_platform.Resource.zero;
    seconds = Float.infinity;
    diagnostic = Some diagnostic;
  }

(* Phase A of a sweep, one configuration in isolation: compile, verify
   exactly once, build and validate the system, and predict performance
   statically. Any exception — an infeasible board, but also a crash
   anywhere in the pipeline — becomes an infeasible outcome carrying the
   diagnostic, so a single bad configuration can never abort the rest of
   the sweep. *)
type ready = {
  r_configuration : configuration;
  r_plm_brams : int;
  r_system : Sysgen.System.t;
  r_estimate : Analysis.Cost.cycle_estimate;
}

type prepared = Ready of ready | Settled of outcome

let prepare ~config ~n_elements ast configuration =
  (* The verifier runs exactly once per configuration, here: the compile
     itself goes with the embedded check off (a caller-supplied
     [static_check = true] would otherwise verify the same pipeline a
     second time inside [Compile.compile]), and a pipeline failing a
     proof is pruned as infeasible before any system is built. *)
  let options = { configuration.options with Compile.static_check = false } in
  match Compile.compile ~options ast with
  | exception e -> Settled (infeasible configuration (Printexc.to_string e))
  | r -> (
      let plm_brams = r.Compile.memory.Mnemosyne.Memgen.total_brams in
      match Analysis.Diagnostic.errors (Compile.check r) with
      | _ :: _ as errors ->
          Settled
            (infeasible ~plm_brams configuration
               ("static check failed: " ^ Analysis.Diagnostic.summary errors))
      | [] -> (
          match
            let sys = Compile.build_system ~config ~n_elements r in
            Sysgen.System.validate sys;
            sys
          with
          | sys ->
              Ready
                {
                  r_configuration = configuration;
                  r_plm_brams = plm_brams;
                  r_system = sys;
                  r_estimate =
                    Costing.estimate ~board:config.Sysgen.Replicate.board
                      ~system:sys r (Costing.static r);
                }
          | exception Sysgen.Replicate.Infeasible msg ->
              Settled (infeasible ~plm_brams configuration ("infeasible: " ^ msg))
          | exception e ->
              Settled (infeasible ~plm_brams configuration (Printexc.to_string e))))

let outcome_of_ready ~seconds ready =
  {
    configuration = ready.r_configuration;
    feasible = true;
    max_replicas = ready.r_system.Sysgen.System.solution.Sysgen.Replicate.m;
    plm_brams = ready.r_plm_brams;
    resources = ready.r_system.Sysgen.System.total_resources;
    seconds;
    diagnostic = None;
  }

let dominates a b =
  (* a dominates b: no worse on all three axes, strictly better on one *)
  a.resources.Fpga_platform.Resource.lut <= b.resources.Fpga_platform.Resource.lut
  && a.resources.Fpga_platform.Resource.bram18
     <= b.resources.Fpga_platform.Resource.bram18
  && a.seconds <= b.seconds
  && (a.resources.Fpga_platform.Resource.lut < b.resources.Fpga_platform.Resource.lut
     || a.resources.Fpga_platform.Resource.bram18
        < b.resources.Fpga_platform.Resource.bram18
     || a.seconds < b.seconds)

let sweep ?jobs ?(config = Sysgen.Replicate.default_config)
    ?(configurations = standard_configurations) ?(prefilter = false) ~n_elements
    ast =
  let preps =
    Pool.map ?jobs (prepare ~config ~n_elements ast) configurations
    |> List.map2
         (fun configuration -> function
           | Ok prepared -> prepared
           | Error { Pool.message; _ } ->
               Settled (infeasible configuration message))
         configurations
  in
  (* The static outcome prices a Ready configuration by the closed-form
     cycle model — for uniform latencies that is bit-identical to what
     Sim.Perf would report, which is what makes pruning on it sound: a
     configuration statically dominated on (LUT, BRAM, seconds) cannot
     enter the Pareto frontier, so the filtered sweep returns the same
     frontier while simulating strictly fewer systems. *)
  let statics =
    List.map
      (function
        | Settled o -> o
        | Ready r ->
            outcome_of_ready ~seconds:r.r_estimate.Analysis.Cost.ce_seconds r)
      preps
  in
  let plan =
    List.map2
      (fun prepared static ->
        match prepared with
        | Settled o -> `Done o
        | Ready r ->
            if
              prefilter
              && List.exists
                   (fun other -> other.feasible && dominates other static)
                   statics
            then begin
              Obs.Metrics.incr pruned_counter;
              `Done static
            end
            else `Sim r)
      preps statics
  in
  let to_sim = List.filter_map (function `Sim r -> Some r | `Done _ -> None) plan in
  let simulated =
    Pool.map ?jobs
      (fun r ->
        let hw =
          Sim.Perf.run_hw ~system:r.r_system
            ~board:config.Sysgen.Replicate.board
        in
        outcome_of_ready ~seconds:hw.Sim.Perf.total_seconds r)
      to_sim
    |> List.map2
         (fun r -> function
           | Ok o -> o
           | Error { Pool.message; _ } -> infeasible r.r_configuration message)
         to_sim
  in
  let rec interleave plan simulated =
    match (plan, simulated) with
    | [], _ -> []
    | `Done o :: plan, simulated -> o :: interleave plan simulated
    | `Sim _ :: plan, o :: simulated -> o :: interleave plan simulated
    | `Sim _ :: _, [] -> assert false
  in
  interleave plan simulated

let pareto outcomes =
  let feasible = List.filter (fun o -> o.feasible) outcomes in
  List.filter
    (fun o -> not (List.exists (fun other -> dominates other o) feasible))
    feasible

let pp_outcome ppf o =
  if o.feasible then
    Format.fprintf ppf "%-36s m=%2d PLM=%2d BRAM  %a  %.2f s"
      o.configuration.label o.max_replicas o.plm_brams
      Fpga_platform.Resource.pp o.resources o.seconds
  else
    Format.fprintf ppf "%-36s infeasible%s" o.configuration.label
      (match o.diagnostic with
      | Some d when d <> "" -> " (" ^ d ^ ")"
      | _ -> "")
