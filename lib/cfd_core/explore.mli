(** Design-space exploration over the flow's knobs.

    Section III motivates the DSL flow with "the exploration of parameters
    and constraints such as on-chip memory usage"; this module makes that
    exploration a first-class operation: sweep the memory/compute
    configurations on a board, collect the resource/performance outcomes,
    and extract the Pareto frontier. *)

type configuration = { label : string; options : Compile.options }

type outcome = {
  configuration : configuration;
  feasible : bool;
  max_replicas : int;  (** largest m = k that fits; 0 when infeasible *)
  plm_brams : int;  (** per-kernel PLM cost *)
  resources : Fpga_platform.Resource.t;  (** at max replication *)
  seconds : float;  (** end-to-end time for the requested element count *)
  diagnostic : string option;
      (** why the configuration is infeasible (the [Infeasible] message,
          or any exception raised while compiling/evaluating it);
          [None] when feasible *)
}

val standard_configurations : configuration list
(** The four corners the paper's evaluation compares — factorized
    decoupled kernels with and without sharing, the temporaries-inside
    variant, the unfactorized direct kernel — plus the unroll-2 extension
    point (two MAC lanes still fit dual-port BRAMs; see EXPERIMENTS A5). *)

val sweep :
  ?jobs:int ->
  ?config:Sysgen.Replicate.config ->
  ?configurations:configuration list ->
  ?prefilter:bool ->
  ?cache:Cache.Store.t ->
  n_elements:int ->
  Cfdlang.Ast.program ->
  outcome list
(** Compile and evaluate every configuration. Configurations are
    independent, so they fan out across a {!Pool} of [jobs] domains
    (default [Domain.recommended_domain_count ()]); the output order is
    always the input order, and [~jobs:1] runs fully sequentially in the
    calling domain. Every configuration is verified exactly once (one
    [Compile.check] per configuration, regardless of the caller's
    [static_check] setting), and a statically-unsound pipeline is pruned
    (with the verifier's summary as its diagnostic) before any system is
    built or simulated. A configuration that is infeasible — or that
    raises anywhere in its compile/build/simulate pipeline — is reported
    with [feasible = false], zeroed metrics, and the [diagnostic]; it
    never aborts the other configurations.

    With [prefilter] (default [false]), configurations whose static
    price — resources from the built system, seconds from the
    {!Analysis.Cost} cycle model, which matches [Sim.Perf] bit for bit
    on uniform latencies — is dominated by another configuration are not
    simulated at all: their outcomes carry the static prediction, the
    [explore.pruned] counter is bumped once per pruned configuration,
    and the Pareto frontier is unchanged (a statically dominated point
    cannot be non-dominated).

    With [cache], each configuration's final outcome is looked up in
    (and stored into) the artifact store, keyed by the compile key
    extended with the solver inputs and [n_elements] but not the label
    — so an interrupted or re-run sweep warm-starts, recomputing only
    configurations it has never settled, and a [jobs:1] re-run of a
    [jobs:N] sweep returns the identical outcome list. Individual
    compiles and verdicts inside a miss also go through the cache.
    Prefilter-pruned static prices are never cached (their soundness is
    relative to the competing configurations); prefiltering composes
    with the cache by letting cached outcomes join the domination
    pool. *)

val pareto : outcome list -> outcome list
(** Non-dominated feasible outcomes under (LUT, BRAM, seconds), all
    minimized; input order preserved. *)

val pp_outcome : Format.formatter -> outcome -> unit
