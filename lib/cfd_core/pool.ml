(* The implementation lives in [Parallel.Pool] (a base library with no
   other dependencies) so that lower layers — notably the functional
   simulator in [Sim], which [Cfd_core] itself depends on — can fan work
   out across domains without a dependency cycle. This alias keeps the
   historical [Cfd_core.Pool] name for the exploration engine and its
   callers. *)

include Parallel.Pool
