type error = { index : int; message : string; backtrace : string }

let default_jobs () = Domain.recommended_domain_count ()

let run_task f items i =
  match f items.(i) with
  | v -> Ok v
  | exception e ->
      let bt = Printexc.get_backtrace () in
      Error { index = i; message = Printexc.to_string e; backtrace = bt }

let map ?(jobs = default_jobs ()) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.init n (run_task f items)
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* Each slot of [results] is written by exactly one domain (the atomic
       fetch-and-add hands every index out once), and [Domain.join] orders
       those writes before the reads below. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- Some (run_task f items i);
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)
  end
