(** Alias of {!Parallel.Pool}, the fixed-size [Domain] work pool, kept
    under its historical [Cfd_core] name for the exploration engine.

    Built for sweep-shaped workloads: a known, finite list of independent
    tasks (design-space configurations) fanned out across cores. The task
    queue is the input list itself, consumed through an atomic cursor, so
    it is bounded by construction and needs no blocking hand-off. Results
    come back in input order regardless of completion order, and a task
    that raises is captured as an {!error} for its slot — one failed
    configuration can never abort the rest of the sweep. *)

type error = Parallel.Pool.error = {
  index : int;  (** position of the failed task in the input list *)
  message : string;  (** [Printexc.to_string] of the raised exception *)
  backtrace : string;
  exn : exn;  (** the exception itself, for re-raising *)
  raw_backtrace : Printexc.raw_backtrace;
      (** captured in the worker domain, at the raise site *)
}

val reraise : error -> 'a
(** {!Parallel.Pool.reraise}: re-raise with the worker-side backtrace. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** [map ~jobs f items] applies [f] to every item, using at most [jobs]
    domains ([jobs] is clamped to [1 .. length items]; default
    {!default_jobs}). At [jobs:1] no domain is spawned and every task
    runs sequentially in the caller — byte-for-byte the sequential
    semantics. The result list has exactly one entry per input, in input
    order. *)

(** {1 Persistent pools} — see {!Parallel.Pool} for the cost model:
    [map] spawns per call (right for coarse sweeps), a {!pool} spawns
    once and reuses its domains across many fine-grained batches. *)

type pool = Parallel.Pool.pool

val create : ?jobs:int -> unit -> pool
val pool_jobs : pool -> int
val run : pool -> ('a -> 'b) -> 'a list -> ('b, error) result list
val shutdown : pool -> unit
val with_pool : ?jobs:int -> (pool -> 'a) -> 'a
