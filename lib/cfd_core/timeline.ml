(* Device-cycle timeline orchestration: runs the performance model with
   [Obs.Timeline] enabled, joins Memprof's port-pressure audit as
   per-buffer counter tracks, derives the utilization metrics, and
   cross-validates the captured phases against both [Sim.Perf]'s
   aggregates and [Analysis.Cost]'s closed form — every mismatch is a
   [timeline-drift] error, making the timeline a third independent
   witness of the cycle model. The engine behind [cfdc timeline] and
   the timeline leg of [cfdc profile]. *)

module Cost = Analysis.Cost
module D = Analysis.Diagnostic
module TL = Obs.Timeline

type overlap_policy = Auto | Require | Off

type derived = {
  d_total_cycles : int;
  d_exec_cycles : int;
  d_transfer_cycles : int;
  d_compute_share : float;
  d_transfer_share : float;
  d_overlap_efficiency : float;
  d_idle_cycles_per_acc : (string * int) list;
  d_port_peak_mean : (string * string * int * float) list;
}

type leg = {
  leg_label : string;
  leg_overlap : bool;
  leg_shape : Cost.shape;
  leg_hw : Sim.Perf.hw_result;
  leg_estimate : Cost.cycle_estimate;
  leg_capture : TL.capture;
  leg_derived : derived;
  leg_diagnostics : D.t list;
}

type report = {
  tl_kernel : string;
  tl_n_elements : int;
  tl_legs : leg list;
  tl_diagnostics : D.t list;
}

let diagnostics t =
  t.tl_diagnostics @ List.concat_map (fun l -> l.leg_diagnostics) t.tl_legs

let passed t = D.errors (diagnostics t) = []

(* --- memprof join ------------------------------------------------------- *)

let audit_of (r : Compile.result) =
  let scope =
    if r.Compile.opts.Compile.decoupled then Mnemosyne.Memgen.All
    else Mnemosyne.Memgen.Interface_only
  in
  let unroll = Option.value r.Compile.opts.Compile.unroll ~default:1 in
  let mode =
    if r.Compile.opts.Compile.sharing then Mnemosyne.Memgen.Sharing
    else Mnemosyne.Memgen.No_sharing
  in
  Memprof.Audit.run ~scope ~unroll ~mode r.Compile.program r.Compile.schedule

(* The audit's pressure series live on the kernel-instance sequence
   number; the timeline lives on the cycle clock. Both modes place the
   first kernel execution at cycle [block_in] (plain: block 0's compute;
   overlapped: steady slot 0), so the join maps the sequence domain
   [0, instances) affinely onto that first execution's latency window —
   the port profile every subsequent round repeats. *)
let inject_port_samples ~kernel ~start ~latency (a : Memprof.Audit.result) =
  let instances = max 1 a.Memprof.Audit.r_instances in
  let tracks =
    Memprof.Report.port_pressure_tracks (Memprof.Report.make ~kernel [ a ])
  in
  List.iter
    (fun (_label, unit_name, series) ->
      Array.iter
        (fun (seq, v) ->
          TL.sample
            ~track:("plm:" ^ unit_name)
            ~series:"port-pressure"
            ~cycle:(start + (seq * latency / instances))
            ~value:v)
        series)
    tracks

(* --- one leg ------------------------------------------------------------ *)

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let derive ~overlap ~(hw : Sim.Perf.hw_result) cap =
  let total = hw.Sim.Perf.total_cycles in
  let exec = hw.Sim.Perf.exec_cycles in
  let transfer = hw.Sim.Perf.transfer_cycles in
  let ftotal = float_of_int (max 1 total) in
  let idle =
    List.filter_map
      (fun track ->
        if String.length track >= 3 && String.sub track 0 3 = "acc" then
          Some (track, total - TL.busy cap track)
        else None)
      (TL.tracks cap)
  in
  let overlap_eff =
    if not overlap then 0.0
    else
      (* cycles actually hidden / cycles that could be hidden: 1.0 when
         the whole shorter side disappears behind the longer one *)
      let hidden = exec + transfer - total in
      let hideable = min exec transfer in
      if hideable <= 0 then 0.0
      else clamp01 (float_of_int hidden /. float_of_int hideable)
  in
  {
    d_total_cycles = total;
    d_exec_cycles = exec;
    d_transfer_cycles = transfer;
    d_compute_share = float_of_int exec /. ftotal;
    d_transfer_share = float_of_int transfer /. ftotal;
    d_overlap_efficiency = overlap_eff;
    d_idle_cycles_per_acc = idle;
    d_port_peak_mean = TL.series_stats cap;
  }

let drift_check ~label ~(hw : Sim.Perf.hw_result)
    ~(est : Cost.cycle_estimate) cap =
  let check subject got expected what =
    if got = expected then []
    else
      [
        D.error ~rule:"timeline-drift"
          ~subject:(label ^ "." ^ subject)
          ~witness:(D.Count (got, expected))
          (Printf.sprintf "%s: timeline says %d cycles, %s says %d" what got
             subject expected);
      ]
  in
  check "total_cycles" (TL.busy cap "host") hw.Sim.Perf.total_cycles
    "host-track busy sum vs hw_result.total_cycles"
  @ check "exec_cycles" (TL.busy cap "ctrl") hw.Sim.Perf.exec_cycles
      "ctrl-track busy sum vs hw_result.exec_cycles"
  @ check "transfer_cycles" (TL.busy cap "dma") hw.Sim.Perf.transfer_cycles
      "dma-track busy sum vs hw_result.transfer_cycles"
  @
  if est.Cost.ce_total_cycles = hw.Sim.Perf.total_cycles then []
  else
    [
      D.error ~rule:"timeline-drift"
        ~subject:(label ^ ".cost_model")
        ~witness:(D.Count (est.Cost.ce_total_cycles, hw.Sim.Perf.total_cycles))
        (Printf.sprintf
           "Analysis.Cost closed form predicts %d cycles, simulated model \
            ran %d"
           est.Cost.ce_total_cycles hw.Sim.Perf.total_cycles);
    ]

let run_leg ~label ~overlap ~board ~cost ~audit (r : Compile.result)
    (sys : Sysgen.System.t) =
  let latency = r.Compile.hls.Hls.Model.latency_cycles in
  let shape = Costing.shape_of sys in
  let bm = Costing.board_model board in
  let was = TL.enabled () in
  TL.set_enabled true;
  TL.reset ();
  let hw, cap =
    Fun.protect
      ~finally:(fun () ->
        TL.reset ();
        TL.set_enabled was)
      (fun () ->
        let run =
          if overlap then Sim.Perf.run_hw_overlapped else Sim.Perf.run_hw
        in
        let hw = run ~system:sys ~board in
        (match audit with
        | Some a ->
            let block_in =
              Sim.Perf.transfer_cycles
                ~bytes:
                  (shape.Cost.sh_m
                  * sys.Sysgen.System.host.Sysgen.System.bytes_in_per_element)
                ~board
            in
            inject_port_samples ~kernel:r.Compile.proc.Loopir.Prog.name
              ~start:block_in ~latency a
        | None -> ());
        (hw, TL.capture ()))
  in
  let est =
    (if overlap then Cost.cycles_overlapped else Cost.cycles)
      cost ~latency ~shape ~board:bm
  in
  {
    leg_label = label;
    leg_overlap = overlap;
    leg_shape = shape;
    leg_hw = hw;
    leg_estimate = est;
    leg_capture = cap;
    leg_derived = derive ~overlap ~hw cap;
    leg_diagnostics = drift_check ~label ~hw ~est cap;
  }

(* --- overlap reshaping -------------------------------------------------- *)

(* Overlap needs m >= 2k. The replicator's own solution may sit at
   k = m (every element set has its accelerator); keep the block size m
   and drop k to the largest divisor of m with 2k <= m, so the round
   structure stays exact (m mod k = 0 as the controller requires). *)
let overlap_k ~m =
  let rec search d = if d < 1 then None else if m mod d = 0 then Some d else search (d - 1) in
  search (m / 2)

(* --- the report --------------------------------------------------------- *)

let analyze ?(config = Sysgen.Replicate.default_config) ?force_k ?force_m
    ?(overlap = Auto) ?(join_memprof = true) ~n_elements (r : Compile.result) =
  let board = config.Sysgen.Replicate.board in
  let cost = Costing.static r in
  let audit = if join_memprof then Some (audit_of r) else None in
  let sys = Compile.build_system ~config ?force_k ?force_m ~n_elements r in
  Sysgen.System.validate sys;
  let plain = run_leg ~label:"plain" ~overlap:false ~board ~cost ~audit r sys in
  let k = sys.Sysgen.System.solution.Sysgen.Replicate.k in
  let m = sys.Sysgen.System.solution.Sysgen.Replicate.m in
  let overlap_legs, top_diags =
    match (overlap, Sim.Perf.overlap_requirement ~k ~m) with
    | Off, _ -> ([], [])
    | _, None ->
        ( [ run_leg ~label:"overlapped" ~overlap:true ~board ~cost ~audit r sys ],
          [] )
    | Require, Some msg ->
        ( [],
          [
            D.error ~rule:"sim-overlap-infeasible"
              ~subject:(r.Compile.proc.Loopir.Prog.name)
              ~witness:(D.Count (m, 2 * k))
              msg;
          ] )
    | Auto, Some msg -> (
        (* keep m, shrink k to a divisor that satisfies double buffering *)
        match overlap_k ~m with
        | None ->
            ( [],
              [
                D.warning ~rule:"sim-overlap-infeasible"
                  ~subject:(r.Compile.proc.Loopir.Prog.name)
                  ~witness:(D.Count (m, 2 * k))
                  (msg ^ "; no k' divides m with m >= 2k', overlapped leg \
                          skipped");
              ] )
        | Some k' -> (
            match
              Compile.build_system ~config ~force_k:k' ~force_m:m ~n_elements r
            with
            | exception Sysgen.Replicate.Infeasible imsg ->
                ( [],
                  [
                    D.warning ~rule:"sim-overlap-infeasible"
                      ~subject:(r.Compile.proc.Loopir.Prog.name)
                      ~witness:(D.Count (m, 2 * k))
                      (Printf.sprintf
                         "%s; reshaped k=%d m=%d is infeasible (%s), \
                          overlapped leg skipped"
                         msg k' m imsg);
                  ] )
            | sys' ->
                Sysgen.System.validate sys';
                ( [
                    run_leg ~label:"overlapped" ~overlap:true ~board ~cost
                      ~audit r sys';
                  ],
                  [] )))
  in
  {
    tl_kernel = r.Compile.proc.Loopir.Prog.name;
    tl_n_elements = n_elements;
    tl_legs = plain :: overlap_legs;
    tl_diagnostics = top_diags;
  }

let find_leg t label = List.find_opt (fun l -> l.leg_label = label) t.tl_legs

let chrome_trace t =
  TL.chrome_trace
    (TL.merge (List.map (fun l -> TL.prefixed l.leg_label l.leg_capture) t.tl_legs))

(* --- rendering ---------------------------------------------------------- *)

let json_diag (d : D.t) =
  Obs.Json.Obj
    [
      ( "severity",
        Obs.Json.String
          (match d.D.severity with D.Error -> "error" | D.Warning -> "warning")
      );
      ("rule", Obs.Json.String d.D.rule);
      ("subject", Obs.Json.String d.D.subject);
      ("message", Obs.Json.String d.D.message);
    ]

let leg_json l =
  let d = l.leg_derived in
  Obs.Json.Obj
    [
      ("label", Obs.Json.String l.leg_label);
      ("overlap", Obs.Json.Bool l.leg_overlap);
      ( "shape",
        Obs.Json.Obj
          [
            ("n_elements", Obs.Json.Int l.leg_shape.Cost.sh_n_elements);
            ("k", Obs.Json.Int l.leg_shape.Cost.sh_k);
            ("m", Obs.Json.Int l.leg_shape.Cost.sh_m);
            ("batch", Obs.Json.Int l.leg_shape.Cost.sh_batch);
          ] );
      ("total_cycles", Obs.Json.Int d.d_total_cycles);
      ("exec_cycles", Obs.Json.Int d.d_exec_cycles);
      ("transfer_cycles", Obs.Json.Int d.d_transfer_cycles);
      ("predicted_cycles", Obs.Json.Int l.leg_estimate.Cost.ce_total_cycles);
      ("compute_share", Obs.Json.Float d.d_compute_share);
      ("transfer_share", Obs.Json.Float d.d_transfer_share);
      ("overlap_efficiency", Obs.Json.Float d.d_overlap_efficiency);
      ( "idle_cycles_per_acc",
        Obs.Json.Obj
          (List.map (fun (t, c) -> (t, Obs.Json.Int c)) d.d_idle_cycles_per_acc)
      );
      ( "port_utilization",
        Obs.Json.List
          (List.map
             (fun (track, series, peak, mean) ->
               Obs.Json.Obj
                 [
                   ("track", Obs.Json.String track);
                   ("series", Obs.Json.String series);
                   ("peak", Obs.Json.Int peak);
                   ("mean", Obs.Json.Float mean);
                 ])
             d.d_port_peak_mean) );
      ("phases", Obs.Json.Int (List.length l.leg_capture.TL.cap_phases));
      ("samples", Obs.Json.Int (List.length l.leg_capture.TL.cap_samples));
      ( "diagnostics",
        Obs.Json.List (List.map json_diag l.leg_diagnostics) );
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("kernel", Obs.Json.String t.tl_kernel);
      ("n_elements", Obs.Json.Int t.tl_n_elements);
      ("legs", Obs.Json.List (List.map leg_json t.tl_legs));
      ("diagnostics", Obs.Json.List (List.map json_diag t.tl_diagnostics));
      ( "drift_errors",
        Obs.Json.Int (List.length (D.errors (diagnostics t))) );
      ("passed", Obs.Json.Bool (passed t));
    ]

let pp_report ppf t =
  Format.fprintf ppf "timeline: %s (%d elements)@." t.tl_kernel t.tl_n_elements;
  List.iter
    (fun l ->
      let d = l.leg_derived in
      Format.fprintf ppf
        "  %-10s k=%d m=%d batch=%d: %d cycles (compute %.1f%%, transfer \
         %.1f%%%s)@."
        l.leg_label l.leg_shape.Cost.sh_k l.leg_shape.Cost.sh_m
        l.leg_shape.Cost.sh_batch d.d_total_cycles
        (100. *. d.d_compute_share)
        (100. *. d.d_transfer_share)
        (if l.leg_overlap then
           Printf.sprintf ", overlap efficiency %.1f%%"
             (100. *. d.d_overlap_efficiency)
         else "");
      (match d.d_idle_cycles_per_acc with
      | [] -> ()
      | idle ->
          Format.fprintf ppf "    idle cycles per accelerator: %a@."
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               (fun ppf (t, c) -> Format.fprintf ppf "%s=%d" t c))
            idle);
      List.iter
        (fun (track, series, peak, mean) ->
          Format.fprintf ppf "    %s %s: peak %d, mean %.2f@." track series
            peak mean)
        d.d_port_peak_mean;
      Format.fprintf ppf "    phases %d, samples %d, %s@."
        (List.length l.leg_capture.TL.cap_phases)
        (List.length l.leg_capture.TL.cap_samples)
        (D.summary l.leg_diagnostics))
    t.tl_legs;
  let ds = diagnostics t in
  if D.errors ds = [] then
    Format.fprintf ppf "  reconciliation: PASS (%s)@." (D.summary ds)
  else begin
    Format.fprintf ppf "  reconciliation: FAIL@.";
    D.pp_report ppf ds
  end
