(** Device-cycle timeline orchestration — the engine behind
    [cfdc timeline] and the timeline leg of [cfdc profile].

    Runs the performance model ({!Sim.Perf}) with {!Obs.Timeline}
    enabled so every phase instance (per-block DMA-in, controller
    rounds, per-kernel executions, DMA-out, and the fill/steady/drain
    pipeline of the overlapped mode) lands on the modeled cycle clock,
    joins {!Memprof}'s port-pressure audit as per-buffer
    ["plm:<unit>"] counter tracks, derives the utilization metrics the
    paper's discussion is about (compute/transfer shares, overlap
    efficiency, idle cycles per accelerator, peak/mean port pressure),
    and cross-validates the captured phases against both the
    simulator's aggregate counters and {!Analysis.Cost}'s closed form:
    any mismatch is a [timeline-drift] error — the timeline is a third
    independent witness of the cycle model.

    The enable flag is saved/restored around each run and the store is
    reset afterwards, so callers never observe residual state. *)

type overlap_policy =
  | Auto
      (** run the overlapped leg; when the solved shape violates
          [m >= 2k], keep [m] and shrink [k] to the largest divisor of
          [m] with [2k <= m] (skipping with a warning when none
          exists) *)
  | Require
      (** run the overlapped leg only on the solved shape; an
          [m < 2k] shape is a [sim-overlap-infeasible] error *)
  | Off  (** plain leg only *)

type derived = {
  d_total_cycles : int;
  d_exec_cycles : int;
  d_transfer_cycles : int;
  d_compute_share : float;  (** exec / total *)
  d_transfer_share : float;  (** transfer / total; shares sum > 1 under
                                 overlap — that is the point *)
  d_overlap_efficiency : float;
      (** hidden cycles / hideable cycles: [0] for the plain leg, [1]
          when the shorter of (exec, transfer) is fully pipelined away *)
  d_idle_cycles_per_acc : (string * int) list;
      (** per ["acc<i>"] track, [total - busy] *)
  d_port_peak_mean : (string * string * int * float) list;
      (** per (track, series): peak and mean port pressure *)
}

type leg = {
  leg_label : string;  (** ["plain"] or ["overlapped"] *)
  leg_overlap : bool;
  leg_shape : Analysis.Cost.shape;
  leg_hw : Sim.Perf.hw_result;
  leg_estimate : Analysis.Cost.cycle_estimate;
  leg_capture : Obs.Timeline.capture;
  leg_derived : derived;
  leg_diagnostics : Analysis.Diagnostic.t list;  (** [timeline-drift] *)
}

type report = {
  tl_kernel : string;
  tl_n_elements : int;
  tl_legs : leg list;  (** plain first, then (maybe) overlapped *)
  tl_diagnostics : Analysis.Diagnostic.t list;
      (** report-level, e.g. [sim-overlap-infeasible] *)
}

val analyze :
  ?config:Sysgen.Replicate.config ->
  ?force_k:int ->
  ?force_m:int ->
  ?overlap:overlap_policy ->
  ?join_memprof:bool ->
  n_elements:int ->
  Compile.result ->
  report
(** Build the system at [n_elements] (propagating
    [Sysgen.Replicate.Infeasible]), run the plain leg and — per
    [overlap] (default [Auto]) — the overlapped leg, each under a
    fresh timeline capture. [join_memprof] (default [true]) runs the
    PLM audit once and joins its pressure series onto the first kernel
    execution's latency window. *)

val diagnostics : report -> Analysis.Diagnostic.t list
(** Report-level diagnostics followed by every leg's. *)

val passed : report -> bool
(** No error-severity diagnostics: every leg reconciled exactly. *)

val find_leg : report -> string -> leg option

val chrome_trace : report -> Obs.Json.t
(** One Chrome trace over all legs, tracks prefixed ["<label>/"] so
    plain and overlapped renderings sit side by side; cycle count is
    the timestamp domain. *)

val to_json : report -> Obs.Json.t
(** The scripting surface of [cfdc timeline --json]: per-leg shape,
    cycle counts, derived metrics and diagnostics, plus top-level
    [drift_errors] and [passed]. *)

val pp_report : Format.formatter -> report -> unit
