(* Build identity and run provenance. One place answers "which tool,
   which schema dialects, on which host, invoked how" — embedded in
   crash bundles (via Obs.Flight.set_provenance), bench history records
   and `cfdc version` so any recorded artifact can be traced back to
   the build that wrote it. *)

let tool = "1.1.0"

let cache_key_format_version = Cache.Key.format_version
let options_fingerprint_version = Compile.options_fingerprint_version

let build_info () =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String tool);
      ("cache_key_format_version", Obs.Json.Int cache_key_format_version);
      ( "options_fingerprint_version",
        Obs.Json.Int options_fingerprint_version );
      ("ocaml", Obs.Json.String Sys.ocaml_version);
    ]

let pp ppf () =
  Format.fprintf ppf "cfdc %s@." tool;
  Format.fprintf ppf "cache key schema: %d@." cache_key_format_version;
  Format.fprintf ppf "options fingerprint: %d@." options_fingerprint_version;
  Format.fprintf ppf "ocaml: %s@." Sys.ocaml_version

let manifest ?(argv = Array.to_list Sys.argv) ?run_id () =
  let host = try Unix.gethostname () with _ -> "unknown" in
  Obs.Json.Obj
    ((match run_id with
     | Some id -> [ ("run_id", Obs.Json.String id) ]
     | None -> [])
    @ [
        ("build", build_info ());
        ("argv", Obs.Json.List (List.map (fun a -> Obs.Json.String a) argv));
        ("host", Obs.Json.String host);
        ("platform", Obs.Json.String Compile.platform_fingerprint);
        ("unix_time", Obs.Json.Float (Unix.gettimeofday ()));
      ])
