(** Build identity and run provenance.

    Every durable artifact this tool writes — crash bundles, bench
    history records — embeds {!build_info} so a recorded run names the
    tool version and the schema dialects (cache key framing, options
    fingerprint) it was produced with; a reader can refuse to compare
    records across incompatible dialects. *)

val tool : string
(** The tool version, also what [cfdc --version] reports. *)

val cache_key_format_version : int
(** [Cache.Key.format_version] — the length-framed digest layout. *)

val options_fingerprint_version : int
(** [Compile.options_fingerprint_version]. *)

val build_info : unit -> Obs.Json.t
(** [{"tool", "cache_key_format_version", "options_fingerprint_version",
    "ocaml"}]. *)

val pp : Format.formatter -> unit -> unit
(** Human rendering of {!build_info}, one field per line — the body of
    [cfdc version]. *)

val manifest : ?argv:string list -> ?run_id:string -> unit -> Obs.Json.t
(** The run-provenance manifest: optional [run_id], {!build_info},
    [argv] (default [Sys.argv]), host name, the platform-constant
    fingerprint shared with the cache key, and the wall-clock time. *)
