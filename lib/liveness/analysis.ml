type array_liveness = {
  array : string;
  first_write : Poly.Lex.timestamp;
  last_read : Poly.Lex.timestamp;
  interval : Poly.Lex.interval;
  writers : string list;
  readers : string list;
}

type t = {
  infos : array_liveness list;
  (* for interface compatibility: per statement, which arrays it reads and
     which it writes (same-instance same-type conflicts). *)
  stmt_reads : (string * string list) list;
  stmt_writes : (string * string list) list;
}

type edge = { a : string; b : string; address_space : bool; mem_interface : bool }

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let virtual_first = [| min_int |]
let virtual_last = [| max_int |]

let analyze (program : Lower.Flow.program) schedule =
  Lower.Schedule.validate program schedule;
  let firsts : (string, Poly.Lex.timestamp) Hashtbl.t = Hashtbl.create 16 in
  let lasts : (string, Poly.Lex.timestamp) Hashtbl.t = Hashtbl.create 16 in
  let writers : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let readers : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let note tbl a s =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl a) in
    if not (List.mem s cur) then Hashtbl.replace tbl a (s :: cur)
  in
  let note_writer = note writers in
  let note_reader = note readers in
  let update tbl pick a ts =
    match Hashtbl.find_opt tbl a with
    | None -> Hashtbl.replace tbl a ts
    | Some cur -> Hashtbl.replace tbl a (pick cur ts)
  in
  let stmt_reads = ref [] and stmt_writes = ref [] in
  List.iter
    (fun (stmt : Lower.Flow.statement) ->
      let sched = Lower.Schedule.find schedule stmt.Lower.Flow.stmt_name in
      let lo, hi =
        Lower.Schedule.image_extrema schedule sched stmt.Lower.Flow.domain
      in
      let warray = stmt.Lower.Flow.write.Lower.Flow.array in
      update firsts Poly.Lex.min warray lo;
      (* a write is also the end of the value's production; track as a
         potential last event so write-only arrays get a valid interval *)
      update lasts Poly.Lex.max warray hi;
      note_writer warray stmt.Lower.Flow.stmt_name;
      let rarrays =
        List.map
          (fun (r : Lower.Flow.access) -> r.Lower.Flow.array)
          (Lower.Flow.reads stmt)
      in
      List.iter
        (fun a ->
          update lasts Poly.Lex.max a hi;
          note_reader a stmt.Lower.Flow.stmt_name)
        rarrays;
      stmt_reads := (stmt.Lower.Flow.stmt_name, List.sort_uniq compare rarrays) :: !stmt_reads;
      stmt_writes := (stmt.Lower.Flow.stmt_name, [ warray ]) :: !stmt_writes)
    program.Lower.Flow.stmts;
  let infos =
    List.map
      (fun (a : Lower.Flow.array_info) ->
        let name = a.Lower.Flow.array_name in
        let first_write =
          match a.Lower.Flow.kind with
          | Lower.Flow.Input -> virtual_first
          | Lower.Flow.Output | Lower.Flow.Temp -> (
              match Hashtbl.find_opt firsts name with
              | Some ts -> ts
              | None -> errf "array %s is never written" name)
        in
        let last_read =
          match a.Lower.Flow.kind with
          | Lower.Flow.Output -> virtual_last
          | Lower.Flow.Input | Lower.Flow.Temp -> (
              match Hashtbl.find_opt lasts name with
              | Some ts -> ts
              | None -> first_write)
        in
        {
          array = name;
          first_write;
          last_read;
          interval = Poly.Lex.interval first_write last_read;
          writers =
            List.rev (Option.value ~default:[] (Hashtbl.find_opt writers name));
          readers =
            List.rev (Option.value ~default:[] (Hashtbl.find_opt readers name));
        })
      program.Lower.Flow.arrays
  in
  { infos; stmt_reads = !stmt_reads; stmt_writes = !stmt_writes }

let arrays t = t.infos

let find_opt t name = List.find_opt (fun i -> i.array = name) t.infos

let find t name =
  match find_opt t name with
  | Some i -> i
  | None -> errf "no liveness info for array %s" name

let address_space_compatible t a b =
  let ia = find t a and ib = find t b in
  not (Poly.Lex.overlap ia.interval ib.interval)

let interface_compatible t a b =
  ignore (find t a);
  ignore (find t b);
  let conflicts assoc =
    List.exists (fun (_, arrays) -> List.mem a arrays && List.mem b arrays) assoc
  in
  (not (conflicts t.stmt_reads)) && not (conflicts t.stmt_writes)

let compatibility_graph t =
  let names = List.map (fun i -> i.array) t.infos in
  let rec pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
  in
  List.filter_map
    (fun (a, b) ->
      let address_space = address_space_compatible t a b in
      let mem_interface = interface_compatible t a b in
      if address_space || mem_interface then
        Some { a = min a b; b = max a b; address_space; mem_interface }
      else None)
    (pairs names)

let element_intervals (program : Lower.Flow.program) schedule array =
  Lower.Schedule.validate program schedule;
  let info = Lower.Flow.array_info program array in
  let firsts : (int, Poly.Lex.timestamp) Hashtbl.t = Hashtbl.create 64 in
  let lasts : (int, Poly.Lex.timestamp) Hashtbl.t = Hashtbl.create 64 in
  let update tbl pick off ts =
    match Hashtbl.find_opt tbl off with
    | None -> Hashtbl.replace tbl off ts
    | Some cur -> Hashtbl.replace tbl off (pick cur ts)
  in
  List.iter
    (fun (stmt : Lower.Flow.statement) ->
      let sched = Lower.Schedule.find schedule stmt.Lower.Flow.stmt_name in
      let touch kind (acc : Lower.Flow.access) =
        if acc.Lower.Flow.array = array then begin
          let m = Lower.Flow.array_access program acc in
          List.iter
            (fun x ->
              let ts = Lower.Schedule.timestamp schedule sched x in
              let off = (Poly.Aff_map.apply m x).(0) in
              match kind with
              | `Write ->
                  update firsts Poly.Lex.min off ts;
                  update lasts Poly.Lex.max off ts
              | `Read -> update lasts Poly.Lex.max off ts)
            (Poly.Basic_set.enumerate stmt.Lower.Flow.domain)
        end
      in
      touch `Write stmt.Lower.Flow.write;
      List.iter (touch `Read) (Lower.Flow.reads stmt))
    program.Lower.Flow.stmts;
  (* virtual bracket for interface arrays *)
  (match info.Lower.Flow.kind with
  | Lower.Flow.Input ->
      for off = 0 to info.Lower.Flow.size - 1 do
        Hashtbl.replace firsts off virtual_first;
        if not (Hashtbl.mem lasts off) then Hashtbl.replace lasts off virtual_first
      done
  | Lower.Flow.Output ->
      Hashtbl.iter (fun off _ -> Hashtbl.replace lasts off virtual_last) firsts
  | Lower.Flow.Temp -> ());
  Hashtbl.fold
    (fun off first acc ->
      let last =
        match Hashtbl.find_opt lasts off with Some l -> l | None -> first
      in
      (off, Poly.Lex.interval first (Poly.Lex.max first last)) :: acc)
    firsts []
  |> List.sort compare

let pp_ts ppf ts =
  if ts == virtual_first || ts = [| min_int |] then Format.pp_print_string ppf "first"
  else if ts == virtual_last || ts = [| max_int |] then Format.pp_print_string ppf "last"
  else Poly.Lex.pp_timestamp ppf ts

let pp ppf t =
  List.iter
    (fun i ->
      Format.fprintf ppf "%-6s live [%a .. %a]  writers: %s  readers: %s@\n"
        i.array pp_ts i.first_write pp_ts i.last_read
        (String.concat "," i.writers)
        (String.concat "," i.readers))
    t.infos

let pp_graph ppf edges =
  List.iter
    (fun e ->
      Format.fprintf ppf "%s -- %s : %s@\n" e.a e.b
        (match (e.address_space, e.mem_interface) with
        | true, true -> "address-space + interface"
        | true, false -> "address-space"
        | false, true -> "interface"
        | false, false -> assert false))
    edges
