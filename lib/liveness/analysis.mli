(** Liveness analysis over schedule space (Section IV-F).

    For every array we compute the interval of schedule tuples during
    which it carries a live value: from its (lexicographically) first
    write to its last read. Following the paper, a {e virtual schedule}
    brackets the real one: a [first] statement writing all inputs is
    placed before every real timestamp, and a [last] statement reading
    all outputs after every real timestamp, so interface arrays are live
    across the accelerator activation where the host owns them.

    Two compatibility relations are derived (the edges of Figure 5):

    - {e address-space compatibility}: the live intervals are disjoint, so
      the arrays can alias the same address range;
    - {e memory-interface compatibility}: no statement instance performs
      the same type of operation (two reads, or two writes) on both arrays
      at one schedule point, so they can share physical banks and ports
      under a total ordering of memory operations. *)

type array_liveness = {
  array : string;
  first_write : Poly.Lex.timestamp;
  last_read : Poly.Lex.timestamp;
  interval : Poly.Lex.interval;
  writers : string list;  (** statements writing the array *)
  readers : string list;  (** statements reading the array *)
}

type t

exception Error of string

val virtual_first : Poly.Lex.timestamp
(** The virtual [first] statement's timestamp, lexicographically before
    every real schedule tuple: inputs are live from here (the host wrote
    them before activation). *)

val virtual_last : Poly.Lex.timestamp
(** The virtual [last] statement's timestamp, after every real tuple:
    outputs are live until here (the host reads them after return). *)

val analyze : Lower.Flow.program -> Lower.Schedule.t -> t
(** The schedule must cover every statement and have box domains. *)

val arrays : t -> array_liveness list
val find : t -> string -> array_liveness
(** @raise Error for unknown arrays. *)

val find_opt : t -> string -> array_liveness option
(** [find] without the exception — the cost reporter annotates PLM
    buffers with their residents' intervals and compiler-introduced
    buffer names have no liveness entry of their own. *)

val address_space_compatible : t -> string -> string -> bool
val interface_compatible : t -> string -> string -> bool

type edge = {
  a : string;
  b : string;
  address_space : bool;
  mem_interface : bool;
}

val compatibility_graph : t -> edge list
(** One entry per unordered array pair with at least one compatibility;
    pairs are normalized [a < b]. *)

val element_intervals :
  Lower.Flow.program -> Lower.Schedule.t -> string -> (int * Poly.Lex.interval) list
(** Exact per-element liveness (the L mapping of Section IV-F): for every
    array element (by flat layout offset), the interval from its first
    write to its last read, computed by enumerating statement instances.
    Interface arrays get the virtual first/last bracket. Elements that
    are never written are omitted. Array-level analysis ({!analyze}) is
    the lexicographic hull of these intervals — conservative but, for the
    paper's kernel, equally powerful (test-verified). Intended for small
    domains (cost is proportional to statement instances). *)

val pp : Format.formatter -> t -> unit
val pp_graph : Format.formatter -> edge list -> unit
