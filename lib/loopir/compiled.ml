(* Compiled execution engine for loop-nest programs.

   [Interp] is the reference semantics: a tree walk that hashes a name
   for every array, scalar and loop-variable access and re-evaluates
   every affine index from scratch in the innermost loop. That is the
   right shape for an oracle and exactly the wrong shape for the hot
   paths built on top of it (the compile-time differential check, the
   functional system simulation over tens of thousands of elements, and
   the SEM solver with the accelerator in the CG loop).

   This module performs a one-time compilation of a [Prog.proc] into a
   slot-resolved form executed against a preallocated {!frame}:

   - every array (parameter or local) becomes an integer slot into a
     [float array array]; every scalar becomes a slot into a flat
     [float array]; no [Hashtbl] is touched after [compile];
   - every syntactic array access gets a {e cursor} in an int frame. Its
     affine index [c0 + sum ci * vi] is decomposed at compile time into
     the loop-invariant base [c0] and one stride [ci] per enclosing
     loop; loops update the live cursors incrementally on every
     iteration (strength reduction) instead of re-evaluating the affine
     form, entering with [+ ci * lo] and restoring on exit so sibling
     and outer statements always observe consistent cursors;
   - the dominant statement shapes of scalarized tensor kernels
     (contraction MAC, constant init, copy, scalar accumulate/spill)
     compile to dedicated closures rather than a generic expression
     walk;
   - bounds checks are a compile-time mode, not a per-access cost: in
     [Unchecked] mode — which callers may select only on the license of
     the static verifier ([Analysis.Verify.bounds] proving every access
     in range, see [Analysis.Verify.execution_mode]) — loads and stores
     are unchecked array accesses; [Checked] keeps Interp-style dynamic
     checks; [Debug] additionally replays every run through [Interp] on
     a copy of the frame and insists on bit-identical parameter buffers.

   All mutable execution state lives in the frame, never in the
   compiled closures, so one compiled program can drive any number of
   frames concurrently from different domains. *)

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type mode = Checked | Unchecked | Debug

(* Engine telemetry. Loop trip counts are compile-time constants, so the
   per-run statement and iteration totals are computed once by [compile]
   and flushed with a handful of counter adds per [run] — the compiled
   inner loops themselves carry no telemetry. *)
let c_runs = Obs.Metrics.counter "exec.runs"
let c_statements = Obs.Metrics.counter "exec.statements"
let c_iters_checked = Obs.Metrics.counter "exec.iterations.checked"
let c_iters_unchecked = Obs.Metrics.counter "exec.iterations.unchecked"
let c_mode_checked = Obs.Metrics.counter "exec.mode.checked"
let c_mode_unchecked = Obs.Metrics.counter "exec.mode.unchecked"
let c_mode_debug = Obs.Metrics.counter "exec.mode.debug"

type frame = {
  bufs : float array array;  (* array slot -> buffer *)
  scal : float array;  (* scalar slot -> value *)
  cur : int array;  (* access cursor -> current linear index *)
  vars : int array;
      (* loop-variable slot -> current iteration value; written only by
         probe-instrumented loops, length 1 otherwise *)
}

(* --- memory probe ------------------------------------------------------ *)

(* A probe observes the compiled program's dynamic memory behaviour:
   [on_site] fires once per leaf statement at compile time (sites are
   numbered in pre-order of the body, matching
   [Lower.Codegen.generate_with_provenance]); [on_instance] fires before
   each dynamic execution of a leaf with the current values of its
   enclosing loop variables (outermost first, same order as [on_site]'s
   [vars]); [on_access] fires once per array access of that instance —
   reads in evaluation order, then the write. An accumulate reports one
   write (its read-modify port is implicit), mirroring the static
   reads+writes port accounting in [Mnemosyne.Memgen]. *)
type probe = {
  on_site : site:int -> vars:string array -> stmt:Prog.stmt -> unit;
  on_instance : site:int -> values:int array -> unit;
  on_access : site:int -> buffer:string -> index:int -> write:bool -> unit;
}

(* The one-branch disabled gate, mirroring [Obs.Trace]: with no provider
   installed (the default), [compile] takes a single [Atomic.get] and
   produces exactly the closures it always produced — no instrumentation
   exists in the compiled program, so execution is bit-identical and
   records nothing. *)
let probe_provider : (Prog.proc -> probe option) option Atomic.t =
  Atomic.make None

let set_probe_provider p = Atomic.set probe_provider p

type array_info = { a_name : string; a_size : int; a_local : bool }

type op = frame -> unit

type t = {
  proc : Prog.proc;
  mode : mode;
  arrays : array_info array;
  slots : (string, int) Hashtbl.t;
  n_scalars : int;
  n_cursors : int;
  base : int array;  (* cursor -> loop-invariant base index *)
  ops : op array;
  stmts_per_run : int;  (* leaf statements executed by one run *)
  iters_per_run : int;  (* loop iterations executed by one run *)
  n_vars : int;  (* loop-variable slots (probe-instrumented only) *)
  probed : bool;
}

(* (leaf statements, loop iterations) executed by one pass of [s]. *)
let rec stmt_cost (s : Prog.stmt) =
  match s with
  | Prog.For l ->
      let trip = max 0 (l.Prog.hi - l.Prog.lo) in
      let bs, bi =
        List.fold_left
          (fun (ss, ii) inner ->
            let s', i' = stmt_cost inner in
            (ss + s', ii + i'))
          (0, 0) l.Prog.body
      in
      (trip * bs, trip + (trip * bi))
  | _ -> (1, 0)

(* ------------------------------------------------------------------ *)
(* Compilation state                                                   *)
(* ------------------------------------------------------------------ *)

type state = {
  st_slots : (string, int) Hashtbl.t;
  st_scalars : (string, int) Hashtbl.t;
  mutable st_nscal : int;
  mutable st_bases : int list;  (* reversed *)
  mutable st_ncur : int;
  mutable st_nvars : int;  (* loop-variable slots, instrumented path only *)
  mutable st_nsites : int;  (* probe sites numbered so far (pre-order) *)
}

(* Loop environment: innermost-first list of (variable, cursors touched
   inside that loop). Compiling an access registers its cursor and the
   variable's coefficient with every enclosing loop it depends on. *)
type loop_env = (string * (int * int) list ref) list

let array_slot st a =
  match Hashtbl.find_opt st.st_slots a with
  | Some s -> s
  | None -> errf "reference to undeclared array %s" a

let scalar_slot st s =
  match Hashtbl.find_opt st.st_scalars s with
  | Some i -> i
  | None ->
      let i = st.st_nscal in
      st.st_nscal <- i + 1;
      Hashtbl.replace st.st_scalars s i;
      i

let cursor st (env : loop_env) (ix : Ix.t) =
  let id = st.st_ncur in
  st.st_ncur <- id + 1;
  st.st_bases <- ix.Ix.const :: st.st_bases;
  List.iter
    (fun (coeff, v) ->
      match List.assoc_opt v env with
      | Some incs -> incs := (id, coeff) :: !incs
      | None -> errf "index uses unbound loop variable %s" v)
    ix.Ix.terms;
  id

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let checked_get name arr i =
  if i < 0 || i >= Array.length arr then
    errf "load %s[%d] out of bounds (size %d)" name i (Array.length arr);
  Array.unsafe_get arr i

let rec compile_expr st env ~check (e : Prog.fexpr) : frame -> float =
  match e with
  | Prog.Const f -> fun _ -> f
  | Prog.Scalar s ->
      let i = scalar_slot st s in
      fun fr -> Array.unsafe_get fr.scal i
  | Prog.Load (a, ix) ->
      let s = array_slot st a in
      let c = cursor st env ix in
      if check then fun fr ->
        checked_get a fr.bufs.(s) (Array.unsafe_get fr.cur c)
      else fun fr ->
        Array.unsafe_get
          (Array.unsafe_get fr.bufs s)
          (Array.unsafe_get fr.cur c)
  | Prog.Add (x, y) ->
      let fx = compile_expr st env ~check x
      and fy = compile_expr st env ~check y in
      fun fr -> fx fr +. fy fr
  | Prog.Sub (x, y) ->
      let fx = compile_expr st env ~check x
      and fy = compile_expr st env ~check y in
      fun fr -> fx fr -. fy fr
  | Prog.Mul (x, y) ->
      let fx = compile_expr st env ~check x
      and fy = compile_expr st env ~check y in
      fun fr -> fx fr *. fy fr
  | Prog.Div (x, y) ->
      let fx = compile_expr st env ~check x
      and fy = compile_expr st env ~check y in
      fun fr -> fx fr /. fy fr

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let compile_write st env ~check ~accumulate a ix value : op =
  let s = array_slot st a in
  let c = cursor st env ix in
  let value = compile_expr st env ~check value in
  if check then
    fun fr ->
      let v = value fr in
      let arr = fr.bufs.(s) in
      let i = Array.unsafe_get fr.cur c in
      if i < 0 || i >= Array.length arr then
        errf "store %s[%d] out of bounds (size %d)" a i (Array.length arr);
      Array.unsafe_set arr i
        (if accumulate then Array.unsafe_get arr i +. v else v)
  else if accumulate then fun fr ->
    let arr = Array.unsafe_get fr.bufs s in
    let i = Array.unsafe_get fr.cur c in
    Array.unsafe_set arr i (Array.unsafe_get arr i +. value fr)
  else fun fr ->
    Array.unsafe_set
      (Array.unsafe_get fr.bufs s)
      (Array.unsafe_get fr.cur c) (value fr)

let rec compile_stmt st env ~check (stmt : Prog.stmt) : op =
  match stmt with
  | Prog.For l -> compile_loop st env ~check l
  (* Specialized shapes (unchecked mode only; the checked path keeps the
     uniform closures so the dynamic checks stay in one place). These are
     the statements scalarized tensor kernels spend their time in. *)
  | Prog.Store { array; index; value = Prog.Const k } when not check ->
      let s = array_slot st array in
      let c = cursor st env index in
      fun fr ->
        Array.unsafe_set
          (Array.unsafe_get fr.bufs s)
          (Array.unsafe_get fr.cur c) k
  | Prog.Store { array; index; value = Prog.Load (b, ixb) } when not check ->
      let sd = array_slot st array in
      let cd = cursor st env index in
      let sb = array_slot st b in
      let cb = cursor st env ixb in
      fun fr ->
        Array.unsafe_set
          (Array.unsafe_get fr.bufs sd)
          (Array.unsafe_get fr.cur cd)
          (Array.unsafe_get
             (Array.unsafe_get fr.bufs sb)
             (Array.unsafe_get fr.cur cb))
  | Prog.Store { array; index; value = Prog.Scalar x } when not check ->
      let s = array_slot st array in
      let c = cursor st env index in
      let i = scalar_slot st x in
      fun fr ->
        Array.unsafe_set
          (Array.unsafe_get fr.bufs s)
          (Array.unsafe_get fr.cur c)
          (Array.unsafe_get fr.scal i)
  | Prog.Accum
      { array; index; value = Prog.Mul (Prog.Load (b, ixb), Prog.Load (d, ixd)) }
    when not check ->
      (* contraction MAC: a[ia] += b[ib] * d[id] *)
      let sa = array_slot st array in
      let ca = cursor st env index in
      let sb = array_slot st b in
      let cb = cursor st env ixb in
      let sd = array_slot st d in
      let cd = cursor st env ixd in
      fun fr ->
        let cur = fr.cur in
        let arr = Array.unsafe_get fr.bufs sa in
        let i = Array.unsafe_get cur ca in
        Array.unsafe_set arr i
          (Array.unsafe_get arr i
          +. Array.unsafe_get
               (Array.unsafe_get fr.bufs sb)
               (Array.unsafe_get cur cb)
             *. Array.unsafe_get
                  (Array.unsafe_get fr.bufs sd)
                  (Array.unsafe_get cur cd))
  | Prog.Acc_scalar
      { name; value = Prog.Mul (Prog.Load (b, ixb), Prog.Load (d, ixd)) }
    when not check ->
      (* scalar MAC: acc += b[ib] * d[id] (scalarized reductions) *)
      let i = scalar_slot st name in
      let sb = array_slot st b in
      let cb = cursor st env ixb in
      let sd = array_slot st d in
      let cd = cursor st env ixd in
      fun fr ->
        Array.unsafe_set fr.scal i
          (Array.unsafe_get fr.scal i
          +. Array.unsafe_get
               (Array.unsafe_get fr.bufs sb)
               (Array.unsafe_get fr.cur cb)
             *. Array.unsafe_get
                  (Array.unsafe_get fr.bufs sd)
                  (Array.unsafe_get fr.cur cd))
  | Prog.Store { array; index; value } ->
      compile_write st env ~check ~accumulate:false array index value
  | Prog.Accum { array; index; value } ->
      compile_write st env ~check ~accumulate:true array index value
  | Prog.Set_scalar { name; value } ->
      let value = compile_expr st env ~check value in
      let i = scalar_slot st name in
      fun fr -> Array.unsafe_set fr.scal i (value fr)
  | Prog.Acc_scalar { name; value } ->
      let value = compile_expr st env ~check value in
      let i = scalar_slot st name in
      fun fr ->
        Array.unsafe_set fr.scal i (Array.unsafe_get fr.scal i +. value fr)

and compile_loop st env ~check (l : Prog.loop) : op =
  let incs = ref [] in
  let body =
    Array.of_list (List.map (compile_stmt st ((l.var, incs) :: env) ~check) l.body)
  in
  let curs = Array.of_list (List.map fst !incs) in
  let strides = Array.of_list (List.map snd !incs) in
  let nb = Array.length body and nc = Array.length curs in
  let lo = l.Prog.lo and hi = l.Prog.hi in
  (* The loop runs [max 0 (hi - lo)] iterations. Cursors enter advanced
     by [stride * lo] and leave advanced by [stride * iterations], so
     the exit restore must subtract [stride * max lo hi] to net zero. *)
  let exit_mult = if hi > lo then hi else lo in
  let enter fr =
    if lo <> 0 then
      let cur = fr.cur in
      for j = 0 to nc - 1 do
        let c = Array.unsafe_get curs j in
        Array.unsafe_set cur c
          (Array.unsafe_get cur c + (Array.unsafe_get strides j * lo))
      done
  and leave fr =
    if exit_mult <> 0 then
      let cur = fr.cur in
      for j = 0 to nc - 1 do
        let c = Array.unsafe_get curs j in
        Array.unsafe_set cur c
          (Array.unsafe_get cur c - (Array.unsafe_get strides j * exit_mult))
      done
  in
  let step fr =
    let cur = fr.cur in
    for j = 0 to nc - 1 do
      let c = Array.unsafe_get curs j in
      Array.unsafe_set cur c
        (Array.unsafe_get cur c + Array.unsafe_get strides j)
    done
  in
  if nb = 1 then begin
    let op0 = body.(0) in
    fun fr ->
      enter fr;
      for _ = lo to hi - 1 do
        op0 fr;
        step fr
      done;
      leave fr
  end
  else fun fr ->
    enter fr;
    for _ = lo to hi - 1 do
      for i = 0 to nb - 1 do
        (Array.unsafe_get body i) fr
      done;
      step fr
    done;
    leave fr

(* ------------------------------------------------------------------ *)
(* Probe-instrumented compilation                                      *)
(* ------------------------------------------------------------------ *)

(* A separate generic path used only when a probe is installed: every
   array access additionally reports (site, buffer, index, direction),
   every leaf reports its instance vector, and loops keep their current
   iteration value in the frame's [vars] slots so leaves can read it.
   The hot-path specializations above are deliberately not duplicated
   here — profiled runs pay for observation, unprofiled runs pay one
   atomic load at compile time. *)

let rec pcompile_expr st env ~check ~(probe : probe) ~site (e : Prog.fexpr) :
    frame -> float =
  match e with
  | Prog.Const f -> fun _ -> f
  | Prog.Scalar s ->
      let i = scalar_slot st s in
      fun fr -> Array.unsafe_get fr.scal i
  | Prog.Load (a, ix) ->
      let s = array_slot st a in
      let c = cursor st env ix in
      if check then fun fr ->
        let i = Array.unsafe_get fr.cur c in
        probe.on_access ~site ~buffer:a ~index:i ~write:false;
        checked_get a fr.bufs.(s) i
      else fun fr ->
        let i = Array.unsafe_get fr.cur c in
        probe.on_access ~site ~buffer:a ~index:i ~write:false;
        Array.unsafe_get (Array.unsafe_get fr.bufs s) i
  | Prog.Add (x, y) ->
      let fx = pcompile_expr st env ~check ~probe ~site x
      and fy = pcompile_expr st env ~check ~probe ~site y in
      fun fr -> fx fr +. fy fr
  | Prog.Sub (x, y) ->
      let fx = pcompile_expr st env ~check ~probe ~site x
      and fy = pcompile_expr st env ~check ~probe ~site y in
      fun fr -> fx fr -. fy fr
  | Prog.Mul (x, y) ->
      let fx = pcompile_expr st env ~check ~probe ~site x
      and fy = pcompile_expr st env ~check ~probe ~site y in
      fun fr -> fx fr *. fy fr
  | Prog.Div (x, y) ->
      let fx = pcompile_expr st env ~check ~probe ~site x
      and fy = pcompile_expr st env ~check ~probe ~site y in
      fun fr -> fx fr /. fy fr

let pcompile_write st env ~check ~probe ~site ~accumulate a ix value : op =
  let s = array_slot st a in
  let c = cursor st env ix in
  let value = pcompile_expr st env ~check ~probe ~site value in
  fun fr ->
    (* reads (inside [value]) first, then the write event, matching the
       evaluation order of the unprobed closures *)
    let v = value fr in
    let arr = fr.bufs.(s) in
    let i = Array.unsafe_get fr.cur c in
    probe.on_access ~site ~buffer:a ~index:i ~write:true;
    if check && (i < 0 || i >= Array.length arr) then
      errf "store %s[%d] out of bounds (size %d)" a i (Array.length arr);
    Array.unsafe_set arr i
      (if accumulate then Array.unsafe_get arr i +. v else v)

(* [vslots] is the enclosing loop nest, outermost first, as
   (variable name, frame vars slot). *)
let rec pcompile_stmt st env ~check ~probe ~vslots (stmt : Prog.stmt) : op =
  match stmt with
  | Prog.For l -> pcompile_loop st env ~check ~probe ~vslots l
  | leaf ->
      let site = st.st_nsites in
      st.st_nsites <- site + 1;
      probe.on_site ~site
        ~vars:(Array.of_list (List.map fst vslots))
        ~stmt:leaf;
      let body =
        match leaf with
        | Prog.For _ -> assert false
        | Prog.Store { array; index; value } ->
            pcompile_write st env ~check ~probe ~site ~accumulate:false array
              index value
        | Prog.Accum { array; index; value } ->
            pcompile_write st env ~check ~probe ~site ~accumulate:true array
              index value
        | Prog.Set_scalar { name; value } ->
            let value = pcompile_expr st env ~check ~probe ~site value in
            let i = scalar_slot st name in
            fun fr -> Array.unsafe_set fr.scal i (value fr)
        | Prog.Acc_scalar { name; value } ->
            let value = pcompile_expr st env ~check ~probe ~site value in
            let i = scalar_slot st name in
            fun fr ->
              Array.unsafe_set fr.scal i
                (Array.unsafe_get fr.scal i +. value fr)
      in
      let slots = Array.of_list (List.map snd vslots) in
      let nv = Array.length slots in
      fun fr ->
        let values = Array.init nv (fun j -> fr.vars.(slots.(j))) in
        probe.on_instance ~site ~values;
        body fr

and pcompile_loop st env ~check ~probe ~vslots (l : Prog.loop) : op =
  let vslot = st.st_nvars in
  st.st_nvars <- vslot + 1;
  let incs = ref [] in
  let body =
    (* left-to-right explicitly: site numbering must follow textual
       order, and [List.map]'s evaluation order is unspecified *)
    Array.of_list
      (List.rev
         (List.fold_left
            (fun acc s ->
              pcompile_stmt st
                ((l.var, incs) :: env)
                ~check ~probe
                ~vslots:(vslots @ [ (l.var, vslot) ])
                s
              :: acc)
            [] l.body))
  in
  let curs = Array.of_list (List.map fst !incs) in
  let strides = Array.of_list (List.map snd !incs) in
  let nb = Array.length body and nc = Array.length curs in
  let lo = l.Prog.lo and hi = l.Prog.hi in
  let exit_mult = if hi > lo then hi else lo in
  fun fr ->
    let cur = fr.cur in
    if lo <> 0 then
      for j = 0 to nc - 1 do
        let c = Array.unsafe_get curs j in
        Array.unsafe_set cur c
          (Array.unsafe_get cur c + (Array.unsafe_get strides j * lo))
      done;
    for it = lo to hi - 1 do
      fr.vars.(vslot) <- it;
      for i = 0 to nb - 1 do
        (Array.unsafe_get body i) fr
      done;
      for j = 0 to nc - 1 do
        let c = Array.unsafe_get curs j in
        Array.unsafe_set cur c
          (Array.unsafe_get cur c + Array.unsafe_get strides j)
      done
    done;
    if exit_mult <> 0 then
      for j = 0 to nc - 1 do
        let c = Array.unsafe_get curs j in
        Array.unsafe_set cur c
          (Array.unsafe_get cur c - (Array.unsafe_get strides j * exit_mult))
      done

(* ------------------------------------------------------------------ *)
(* Program compilation                                                 *)
(* ------------------------------------------------------------------ *)

let compile ?(mode = Checked) ?probe (proc : Prog.proc) =
  let probe =
    match probe with
    | Some _ -> probe
    | None -> (
        (* the disabled gate: one atomic load, then the plain path *)
        match Atomic.get probe_provider with
        | None -> None
        | Some provider -> provider proc)
  in
  let slots = Hashtbl.create 16 in
  let arrays =
    List.map
      (fun (p : Prog.param) ->
        { a_name = p.Prog.name; a_size = p.Prog.size; a_local = false })
      proc.Prog.params
    @ List.map
        (fun (n, size) -> { a_name = n; a_size = size; a_local = true })
        proc.Prog.locals
  in
  List.iteri
    (fun i info ->
      if Hashtbl.mem slots info.a_name then
        errf "duplicate array declaration %s" info.a_name;
      Hashtbl.replace slots info.a_name i)
    arrays;
  let st =
    {
      st_slots = slots;
      st_scalars = Hashtbl.create 8;
      st_nscal = 0;
      st_bases = [];
      st_ncur = 0;
      st_nvars = 0;
      st_nsites = 0;
    }
  in
  let check = mode <> Unchecked in
  let ops =
    match probe with
    | None -> Array.of_list (List.map (compile_stmt st [] ~check) proc.Prog.body)
    | Some probe ->
        Array.of_list
          (List.rev
             (List.fold_left
                (fun acc s ->
                  pcompile_stmt st [] ~check ~probe ~vslots:[] s :: acc)
                [] proc.Prog.body))
  in
  (match mode with
  | Checked -> Obs.Metrics.incr c_mode_checked
  | Unchecked -> Obs.Metrics.incr c_mode_unchecked
  | Debug -> Obs.Metrics.incr c_mode_debug);
  let stmts_per_run, iters_per_run =
    List.fold_left
      (fun (ss, ii) s ->
        let s', i' = stmt_cost s in
        (ss + s', ii + i'))
      (0, 0) proc.Prog.body
  in
  {
    proc;
    mode;
    arrays = Array.of_list arrays;
    slots;
    n_scalars = st.st_nscal;
    n_cursors = st.st_ncur;
    base = Array.of_list (List.rev st.st_bases);
    ops;
    stmts_per_run;
    iters_per_run;
    n_vars = st.st_nvars;
    probed = Option.is_some probe;
  }

let mode t = t.mode
let proc t = t.proc
let probed t = t.probed

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let make_frame t =
  {
    bufs = Array.map (fun info -> Array.make info.a_size 0.0) t.arrays;
    scal = Array.make (max 1 t.n_scalars) 0.0;
    cur = Array.make (max 1 t.n_cursors) 0;
    vars = Array.make (max 1 t.n_vars) 0;
  }

let make_frames t count = Array.init count (fun _ -> make_frame t)

let buffer t fr name =
  match Hashtbl.find_opt t.slots name with
  | Some s -> fr.bufs.(s)
  | None -> errf "no array %s in %s" name t.proc.Prog.name

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let exec t fr =
  (* Locals start zeroed on every run and scalars are reset, mirroring
     the interpreter's fresh per-run environments; parameter buffers are
     the caller's. *)
  Array.iteri
    (fun s info -> if info.a_local then Array.fill fr.bufs.(s) 0 info.a_size 0.0)
    t.arrays;
  if t.n_scalars > 0 then Array.fill fr.scal 0 t.n_scalars 0.0;
  Array.blit t.base 0 fr.cur 0 t.n_cursors;
  let ops = t.ops in
  for i = 0 to Array.length ops - 1 do
    (Array.unsafe_get ops i) fr
  done

let bits = Int64.bits_of_float

let flush_counters t =
  Obs.Metrics.incr c_runs;
  Obs.Metrics.add c_statements t.stmts_per_run;
  Obs.Metrics.add
    (if t.mode = Unchecked then c_iters_unchecked else c_iters_checked)
    t.iters_per_run

let run t fr =
  flush_counters t;
  match t.mode with
  | Checked | Unchecked -> exec t fr
  | Debug ->
      (* Replay the run through the reference interpreter on a copy of
         the parameter buffers and insist on bit-identical results. *)
      let memory = Hashtbl.create 16 in
      List.iter
        (fun (p : Prog.param) ->
          Hashtbl.replace memory p.Prog.name (Array.copy (buffer t fr p.Prog.name)))
        t.proc.Prog.params;
      exec t fr;
      Interp.run t.proc memory;
      List.iter
        (fun (p : Prog.param) ->
          let got = buffer t fr p.Prog.name in
          let want = Hashtbl.find memory p.Prog.name in
          Array.iteri
            (fun i v ->
              if bits v <> bits want.(i) then
                errf
                  "debug cross-check: %s[%d] differs (compiled %h, interpreter \
                   %h)"
                  p.Prog.name i v want.(i))
            got)
        t.proc.Prog.params

let run_fresh ?mode (proc : Prog.proc) ~inputs =
  let t = compile ?mode proc in
  let fr = make_frame t in
  List.iter
    (fun (p : Prog.param) ->
      match List.assoc_opt p.Prog.name inputs with
      | None -> ()
      | Some src ->
          if Array.length src <> p.Prog.size then
            errf "input %s has %d elements, expected %d" p.Prog.name
              (Array.length src) p.Prog.size;
          Array.blit src 0 (buffer t fr p.Prog.name) 0 p.Prog.size)
    proc.Prog.params;
  run t fr;
  List.map
    (fun (p : Prog.param) -> (p.Prog.name, buffer t fr p.Prog.name))
    proc.Prog.params
