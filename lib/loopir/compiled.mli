(** Compiled execution engine for loop-nest programs.

    {!Interp} is the reference semantics; this module is the fast path
    that every repeated execution goes through — the compile-time
    differential oracle, the functional system simulation and the SEM
    solver's accelerated operator. [compile] resolves a {!Prog.proc}
    once into a slot-addressed program: arrays and scalars become
    integer slots into preallocated frames, and each affine array index
    is decomposed into a loop-invariant base plus one stride per
    enclosing loop, so inner loops update indices incrementally
    (strength reduction) instead of re-evaluating affine expressions.
    The dominant statement shapes of scalarized tensor kernels
    (contraction MAC, constant init, copy, scalar accumulate/spill) get
    specialized closures.

    On every observable outcome the engine is bit-identical to
    {!Interp.run} (property-tested in [test/test_compiled.ml]); a proc
    must satisfy {!Prog.validate} — notably, scalar reads before any set
    are interpreter errors but read as [0.] here.

    All mutable execution state lives in the {!frame}, never in the
    compiled program, so one compiled program can drive many frames
    concurrently from different domains (one frame per simulated PLM
    set). *)

exception Error of string

type mode =
  | Checked
      (** Interp-equivalent dynamic bounds checks on every load/store. *)
  | Unchecked
      (** No dynamic checks: loads and stores are unchecked array
          accesses. Callers must hold a static proof that every access
          is in range — {!Analysis.Verify.execution_mode} grants this
          license exactly when [Analysis.Verify.bounds] reports no
          [bounds-*] diagnostic. *)
  | Debug
      (** Checked execution, plus every {!run} is replayed through
          {!Interp} on a copy of the frame and the parameter buffers
          are compared bit-for-bit. @raise Error on any mismatch. *)

type t
(** A compiled program: immutable after {!compile}, shareable across
    domains. *)

type frame
(** Preallocated execution state for one accelerator instance: the
    [float array] buffer per array slot, the scalar frame and the int
    cursor frame. Frames are not thread-safe individually; run each
    frame from one domain at a time. *)

type probe = {
  on_site : site:int -> vars:string array -> stmt:Prog.stmt -> unit;
      (** Fired once per leaf statement during [compile]; sites are
          numbered in pre-order of the procedure body — the order
          [Lower.Codegen.generate_with_provenance] lists its leaves.
          [vars] names the enclosing loop variables, outermost first. *)
  on_instance : site:int -> values:int array -> unit;
      (** Fired at run time before each dynamic execution of the leaf,
          with the current enclosing loop values (outermost first,
          aligned with [on_site]'s [vars]). *)
  on_access : site:int -> buffer:string -> index:int -> write:bool -> unit;
      (** Fired once per array access of the instance: reads in
          evaluation order, then the write. An accumulate reports a
          single write — its read-modify port is implicit — mirroring
          Mnemosyne's static reads+writes port accounting. *)
}
(** A memory probe: observes every array access of a compiled program,
    for the dynamic PLM profiler ([Memprof]). *)

val set_probe_provider : (Prog.proc -> probe option) option -> unit
(** Install (or remove, with [None]) the process-global probe provider
    consulted by {!compile} when no explicit [?probe] is given. This is
    the same one-branch disabled gate as [Obs.Trace]: with no provider
    installed, [compile] pays a single atomic load and produces exactly
    the uninstrumented closures, so execution is bit-identical and no
    event is ever recorded. *)

val compile : ?mode:mode -> ?probe:probe -> Prog.proc -> t
(** One-time slot resolution, stride decomposition and closure
    generation. Default mode is [Checked]. When [probe] is given — or a
    {!set_probe_provider} provider returns one — compilation takes the
    instrumented path: generic (non-specialized) closures that report
    every access to the probe; numeric results are unchanged.
    @raise Error on duplicate or undeclared arrays, or an index using a
    loop variable not bound by an enclosing loop. *)

val mode : t -> mode
val proc : t -> Prog.proc

val probed : t -> bool
(** Whether this program was compiled with a probe attached. *)

val make_frame : t -> frame
(** Fresh zeroed buffers for every parameter and local, at their
    declared sizes. *)

val make_frames : t -> int -> frame array
(** [make_frames t count] is [count] fresh frames. Allocate a domain's
    frame set {e from that domain} (e.g. inside its pool task): the
    buffers then come out of the allocating domain's own heap arena, so
    no cache line is shared between the frame sets of concurrently
    running domains — the element-sharded functional simulator relies
    on this for false-sharing-free scaling. *)

val buffer : t -> frame -> string -> float array
(** The frame's buffer for a parameter or local, for staging inputs and
    reading results in place. @raise Error for unknown names. *)

val run : t -> frame -> unit
(** Executes the program against the frame: locals and scalars are
    zeroed (the interpreter's fresh per-run environments), cursors are
    reset to their bases, then the compiled body runs. Parameter
    buffers are left as the program wrote them.
    @raise Error on a failed dynamic check ([Checked]) or cross-check
    mismatch ([Debug]). *)

val run_fresh :
  ?mode:mode ->
  Prog.proc ->
  inputs:(string * float array) list ->
  (string * float array) list
(** Convenience mirroring {!Interp.run_fresh}: compiles, stages the
    given inputs into a fresh frame (sizes must match exactly), runs,
    and returns every parameter buffer. *)
