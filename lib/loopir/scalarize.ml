(* Interval of an index expression given loop-variable bounds
   (inclusive). Unknown variables make the range unbounded (None). *)
let ix_range (bounds : (string * (int * int)) list) (ix : Ix.t) =
  let ok = ref true in
  let lo = ref ix.Ix.const and hi = ref ix.Ix.const in
  List.iter
    (fun (c, v) ->
      match List.assoc_opt v bounds with
      | None -> ok := false
      | Some (vlo, vhi) ->
          if c > 0 then begin
            lo := !lo + (c * vlo);
            hi := !hi + (c * vhi)
          end
          else begin
            lo := !lo + (c * vhi);
            hi := !hi + (c * vlo)
          end)
    ix.Ix.terms;
  if !ok then Some (!lo, !hi) else None

let ranges_disjoint bounds a b =
  match (ix_range bounds a, ix_range bounds b) with
  | Some (alo, ahi), Some (blo, bhi) -> ahi < blo || bhi < alo
  | _ -> false

(* Loads of the stored array are tolerated when their index range is
   provably disjoint from the accumulator's index range (e.g. two logical
   arrays stacked in one shared PLM buffer at different offsets). *)
let rec expr_conflicts bounds array store_ix (e : Prog.fexpr) =
  match e with
  | Prog.Const _ | Prog.Scalar _ -> false
  | Prog.Load (a, ix) ->
      a = array && not (ranges_disjoint bounds ix store_ix)
  | Prog.Add (x, y) | Prog.Sub (x, y) | Prog.Mul (x, y) | Prog.Div (x, y) ->
      expr_conflicts bounds array store_ix x
      || expr_conflicts bounds array store_ix y

(* Check that a loop nest's writes to [array] are exactly accumulations
   into (array, ix), that no conflicting read of [array] occurs, and that
   ix does not depend on the nest's loop variables; rewrite the
   accumulations onto a scalar. *)
let rec try_rewrite_nest bounds array ix acc_name (s : Prog.stmt) =
  match s with
  | Prog.For l ->
      if List.exists (fun v -> v = l.var) (Ix.vars ix) then None
      else begin
        let bounds = (l.var, (l.lo, l.hi - 1)) :: bounds in
        let rec map_body acc = function
          | [] -> Some (List.rev acc)
          | stmt :: rest -> (
              match try_rewrite_nest bounds array ix acc_name stmt with
              | Some stmt' -> map_body (stmt' :: acc) rest
              | None -> None)
        in
        Option.map (fun body -> Prog.For { l with body }) (map_body [] l.body)
      end
  | Prog.Accum { array = a; index; value }
    when a = array && Ix.equal index ix
         && not (expr_conflicts bounds array ix value) ->
      Some (Prog.Acc_scalar { name = acc_name; value })
  | Prog.Accum { array = a; _ } when a = array -> None
  | Prog.Store { array = a; _ } when a = array -> None
  | Prog.Accum { value; _ } | Prog.Store { value; _ } ->
      if expr_conflicts bounds array ix value then None else Some s
  | Prog.Set_scalar { value; _ } | Prog.Acc_scalar { value; _ } ->
      if expr_conflicts bounds array ix value then None else Some s

(* Fresh-name state is per [optimize] call, not global: the parallel
   design-space sweep runs one compilation per domain, and a shared
   counter/avoid table would race. *)
type names = { mutable counter : int; avoid : (string, unit) Hashtbl.t }

let rec fresh_acc st =
  let name = Printf.sprintf "acc%d" st.counter in
  if Hashtbl.mem st.avoid name then begin
    st.counter <- st.counter + 1;
    fresh_acc st
  end
  else name

let rec rewrite_body st bounds stmts =
  match stmts with
  | Prog.Store { array; index; value = Prog.Const c } :: (Prog.For _ as nest) :: rest
    -> (
      let acc_name = fresh_acc st in
      match try_rewrite_nest bounds array index acc_name nest with
      | Some nest' ->
          st.counter <- st.counter + 1;
          Prog.Set_scalar { name = acc_name; value = Prog.Const c }
          :: nest'
          :: Prog.Store { array; index; value = Prog.Scalar acc_name }
          :: rewrite_body st bounds rest
      | None ->
          Prog.Store { array; index; value = Prog.Const c }
          :: rewrite_body st bounds (nest :: rest))
  | Prog.For l :: rest ->
      let inner = rewrite_body st ((l.var, (l.lo, l.hi - 1)) :: bounds) l.body in
      Prog.For { l with body = inner } :: rewrite_body st bounds rest
  | s :: rest -> s :: rewrite_body st bounds rest
  | [] -> []

let optimize (proc : Prog.proc) =
  let st = { counter = 0; avoid = Hashtbl.create 8 } in
  List.iter
    (fun (p : Prog.param) -> Hashtbl.replace st.avoid p.Prog.name ())
    proc.Prog.params;
  List.iter (fun (n, _) -> Hashtbl.replace st.avoid n ()) proc.Prog.locals;
  let proc = { proc with Prog.body = rewrite_body st [] proc.Prog.body } in
  Prog.validate proc;
  proc

let count_accumulators (proc : Prog.proc) =
  let count acc = function Prog.Set_scalar _ -> acc + 1 | _ -> acc in
  let rec walk acc (s : Prog.stmt) =
    let acc = count acc s in
    match s with Prog.For l -> List.fold_left walk acc l.body | _ -> acc
  in
  List.fold_left walk 0 proc.Prog.body
