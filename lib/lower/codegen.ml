type options = {
  exported_temps : bool;
  pipeline_ii : int option;
  unroll : int option;
}

let default = { exported_temps = true; pipeline_ii = Some 1; unroll = None }

exception Error of string

type storage = (string * (string * int)) list

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Per-statement code generation state: the schedule record, the loop
   bounds per level, and the variable names assigned along the path. *)
type item = {
  stmt : Flow.statement;
  sched : Schedule.sched1;
  box : (int * int) array; (* per DOMAIN dim *)
  var_names : string array; (* per DOMAIN dim, filled during emission *)
}

let aff_to_ix item (e : Poly.Aff.t) =
  let terms = ref [] in
  for j = 0 to Poly.Aff.arity e - 1 do
    let c = Poly.Aff.coeff e j in
    if c <> 0 then begin
      let v = item.var_names.(j) in
      if v = "" then errf "dimension %d of %s used before its loop" j item.stmt.Flow.stmt_name;
      terms := (c, v) :: !terms
    end
  done;
  Loopir.Ix.of_terms !terms (Poly.Aff.constant e)

(* Storage resolution: logical array -> (buffer, offset). *)
let resolve storage array =
  match List.assoc_opt array storage with
  | Some (buffer, offset) -> (buffer, offset)
  | None -> (array, 0)

let access_ix program storage item (acc : Flow.access) =
  let m = Flow.array_access program acc in
  let _, offset = resolve storage acc.Flow.array in
  Loopir.Ix.add_const (aff_to_ix item (Poly.Aff_map.exprs m).(0)) offset

let rec build_fexpr_product = function
  | [] -> Loopir.Prog.Const 1.0
  | [ x ] -> x
  | x :: rest -> Loopir.Prog.Mul (x, build_fexpr_product rest)

let body_stmt program storage item =
  let stmt = item.stmt in
  let wix = access_ix program storage item stmt.Flow.write in
  let warr, _ = resolve storage stmt.Flow.write.Flow.array in
  let load (r : Flow.access) =
    let buffer, _ = resolve storage r.Flow.array in
    Loopir.Prog.Load (buffer, access_ix program storage item r)
  in
  match stmt.Flow.compute with
  | Flow.Init f -> Loopir.Prog.Store { array = warr; index = wix; value = Loopir.Prog.Const f }
  | Flow.Mac reads ->
      Loopir.Prog.Accum
        { array = warr; index = wix; value = build_fexpr_product (List.map load reads) }
  | Flow.Assign_copy r ->
      Loopir.Prog.Store { array = warr; index = wix; value = load r }
  | Flow.Assign_pointwise (f, a, b) ->
      let la = load a in
      let lb = load b in
      let value =
        match f with
        | Tir.Ir.Add -> Loopir.Prog.Add (la, lb)
        | Tir.Ir.Sub -> Loopir.Prog.Sub (la, lb)
        | Tir.Ir.Mul -> Loopir.Prog.Mul (la, lb)
        | Tir.Ir.Div -> Loopir.Prog.Div (la, lb)
      in
      Loopir.Prog.Store { array = warr; index = wix; value }

type leaf = { leaf_stmt : string; leaf_vars : string array }

(* Emit the statements of [items], which share their schedule prefix up to
   loop [depth]. *)
let generate_with_provenance ?(options = default) ?(storage = [])
    (program : Flow.program) schedule =
  Schedule.validate program schedule;
  (* Loop variable names must not collide with array/buffer identifiers
     (a tensor legitimately named "i0" would otherwise shadow a loop). *)
  let taken =
    List.map (fun (a : Flow.array_info) -> a.Flow.array_name) program.Flow.arrays
    @ List.map (fun (array, (buffer, _)) -> ignore array; buffer) storage
  in
  let counter = ref 0 in
  let rec fresh_var () =
    let v = Printf.sprintf "i%d" !counter in
    incr counter;
    if List.mem v taken then fresh_var () else v
  in
  let items =
    List.map
      (fun (stmt : Flow.statement) ->
        let sched = Schedule.find schedule stmt.Flow.stmt_name in
        let box =
          match Poly.Basic_set.bounding_box stmt.Flow.domain with
          | Some b -> b
          | None -> errf "unbounded domain in %s" stmt.Flow.stmt_name
        in
        {
          stmt;
          sched;
          box;
          var_names = Array.make (Array.length box) "";
        })
      program.Flow.stmts
  in
  let rank item = Array.length item.sched.Schedule.dims in
  (* Provenance: one record per emitted leaf, in emission order — which
     is the pre-order of the final body, because each beta group lists
     its leaves before its nested loops and groups are emitted in beta
     order. The compiled engine numbers probe sites in the same
     pre-order, so index k here is probe site k. *)
  let provenance = ref [] in
  let rec gen items depth : Loopir.Prog.stmt list =
    (* Partition by beta at this depth, preserving beta order. *)
    let betas =
      List.sort_uniq compare
        (List.map (fun it -> it.sched.Schedule.betas.(depth)) items)
    in
    List.concat_map
      (fun beta ->
        let group =
          List.filter (fun it -> it.sched.Schedule.betas.(depth) = beta) items
        in
        let leaves, deeper = List.partition (fun it -> rank it = depth) group in
        let leaf_stmts =
          List.map
            (fun it ->
              provenance :=
                {
                  leaf_stmt = it.stmt.Flow.stmt_name;
                  leaf_vars = Array.copy it.var_names;
                }
                :: !provenance;
              body_stmt program storage it)
            leaves
        in
        let loop_stmts =
          if deeper = [] then []
          else begin
            (* All deeper statements iterate a loop at this depth; bounds
               must agree for the fusion to be expressible. *)
            let bound it =
              let dim = it.sched.Schedule.dims.(depth) in
              it.box.(dim)
            in
            let lo, hi = bound (List.hd deeper) in
            List.iter
              (fun it ->
                if bound it <> (lo, hi) then
                  errf "fused statements disagree on loop bounds at depth %d" depth)
              deeper;
            let var = fresh_var () in
            List.iter
              (fun it -> it.var_names.(it.sched.Schedule.dims.(depth)) <- var)
              deeper;
            let body = gen deeper (depth + 1) in
            List.iter
              (fun it -> it.var_names.(it.sched.Schedule.dims.(depth)) <- "")
              deeper;
            [ Loopir.Prog.For { var; lo; hi = hi + 1; pragmas = []; body } ]
          end
        in
        leaf_stmts @ loop_stmts)
      betas
  in
  let body = gen items 0 in
  (* Attach pragmas to innermost loops. *)
  let pragmas =
    (match options.pipeline_ii with Some ii -> [ Loopir.Prog.Pipeline ii ] | None -> [])
    @ match options.unroll with Some u -> [ Loopir.Prog.Unroll u ] | None -> []
  in
  let rec tag (s : Loopir.Prog.stmt) =
    match s with
    | Loopir.Prog.For l ->
        let has_inner_loop =
          List.exists (function Loopir.Prog.For _ -> true | _ -> false) l.body
        in
        if has_inner_loop then Loopir.Prog.For { l with body = List.map tag l.body }
        else Loopir.Prog.For { l with pragmas }
    | other -> other
  in
  let body = if pragmas = [] then body else List.map tag body in
  (* Collect buffers: each logical array resolves to (buffer, offset); a
     buffer's size covers every resident, its direction follows the
     residents' kinds. *)
  let buffers : (string, int * Flow.array_kind list) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (a : Flow.array_info) ->
      let buffer, offset = resolve storage a.Flow.array_name in
      let needed = offset + a.Flow.size in
      match Hashtbl.find_opt buffers buffer with
      | None ->
          Hashtbl.add buffers buffer (needed, [ a.Flow.kind ]);
          order := buffer :: !order
      | Some (size, kinds) ->
          Hashtbl.replace buffers buffer (max size needed, a.Flow.kind :: kinds))
    program.Flow.arrays;
  let params, locals =
    List.fold_left
      (fun (params, locals) buffer ->
        let size, kinds = Hashtbl.find buffers buffer in
        let dir =
          if List.for_all (( = ) Flow.Input) kinds then Loopir.Prog.In
          else if List.mem Flow.Output kinds then Loopir.Prog.Out
          else Loopir.Prog.Temp
        in
        let all_temp = List.for_all (( = ) Flow.Temp) kinds in
        if all_temp && not options.exported_temps then
          (params, (buffer, size) :: locals)
        else (({ Loopir.Prog.name = buffer; size; dir }) :: params, locals))
      ([], []) !order
  in
  let proc =
    { Loopir.Prog.name = program.Flow.prog_name; params; locals; body }
  in
  Loopir.Prog.validate proc;
  (proc, List.rev !provenance)

let generate ?options ?storage program schedule =
  fst (generate_with_provenance ?options ?storage program schedule)
