(** Polyhedral code generation (step (v) of Figure 4): scan the schedule
    lexicographically and emit the loop-nest program that executes every
    statement instance in schedule order. *)

type options = {
  exported_temps : bool;
      (** [true] (the decoupled flow, Section V-A): temporaries become
          interface parameters stored in PLMs; [false] reproduces the
          "temporaries left inside the HLS accelerator" variant of the
          evaluation. *)
  pipeline_ii : int option;
      (** attach [#pragma HLS pipeline II=n] to every innermost loop *)
  unroll : int option;
      (** attach [#pragma HLS unroll factor=n] to every innermost loop *)
}

val default : options
(** Exported temporaries, [II = 1] pipelining, no unrolling. *)

exception Error of string

type storage = (string * (string * int)) list
(** Optional storage assignment: logical array -> (backing buffer, word
    offset). Arrays mapped to the same buffer alias — this is how address
    space sharing decisions (Section IV-D explicit merges and Mnemosyne's
    automatic sharing) reach the generated code, and how the interpreter
    verifies their legality. Unlisted arrays get their own buffer. *)

val generate :
  ?options:options -> ?storage:storage -> Flow.program -> Schedule.t -> Loopir.Prog.proc
(** The schedule must pass {!Schedule.validate}; fused statements must
    agree on their shared loop bounds. The emitted procedure passes
    [Loopir.Prog.validate]. A shared buffer's direction is [In] only when
    every resident is an input, [Out] when any resident is an output, and
    [Temp] otherwise; its size covers every resident's extent. Overlapping
    resident ranges are permitted — that is the point of sharing; their
    legality is the liveness analysis' responsibility and is re-checked
    functionally by the interpreter.
    @raise Error on malformed schedules. *)

type leaf = {
  leaf_stmt : string;  (** [Flow.statement.stmt_name] of the source *)
  leaf_vars : string array;
      (** loop variable name per DOMAIN dimension of the statement: the
          instance vector coordinate [x.(d)] is the runtime value of the
          loop named [leaf_vars.(d)] *)
}
(** Provenance of one emitted leaf statement, linking the loop-nest body
    back to the polyhedral model it was scanned from. *)

val generate_with_provenance :
  ?options:options ->
  ?storage:storage ->
  Flow.program ->
  Schedule.t ->
  Loopir.Prog.proc * leaf list
(** Like {!generate}, additionally returning one {!leaf} per emitted
    leaf statement in emission order — the pre-order of the procedure
    body, i.e. the order {!Loopir.Compiled} numbers probe sites. The
    memory profiler uses this to map a dynamic access at probe site [k]
    back to a statement instance and hence to its exact timestamp in
    schedule space. *)
