(* Dynamic live-interval audit: run a kernel once under an instrumented
   engine and check its *observed* memory behaviour against the static
   model that licensed the PLM architecture.

   The audit regenerates the (unscalarized) loop nest from the
   polyhedral program with [Lower.Codegen.generate_with_provenance], so
   every probe site maps back to a Flow statement and its loop variables.
   At run time each leaf instance reconstructs its exact schedule-space
   timestamp (Kelly tuple via [Lower.Schedule.timestamp]); every array
   access is then attributed to the storage residents whose static
   per-element live interval ([Liveness.Analysis.element_intervals])
   contains that timestamp. Three rules fall out:

   - [memprof-live-escape]: an access touched a word of the buffer at a
     timestamp where no resident's static element interval was live —
     the observed behaviour escapes the static liveness model;
   - [memprof-slot-conflict]: two residents of one buffer were observed
     live on the same physical word at overlapping times — the
     address-space sharing decision is dynamically refuted (this is what
     a forced illegal [Sharing.merge_storage ~force:true] provokes);
   - [memprof-port-pressure]: some leaf instance performed more
     simultaneous accesses to a PLM unit (reads x unroll + writes,
     Mnemosyne's own accounting) than the unit's physical budget of
     [Fpga_platform.Bram.ports * copies].

   Access patterns of this affine IR are data-independent, so one run
   over deterministic synthetic inputs observes every access the
   schedule will ever perform. *)

module D = Analysis.Diagnostic
module L = Liveness.Analysis
module Memgen = Mnemosyne.Memgen

exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Keep diagnostic floods bounded: report at most this many witnesses
   per rule, then a summary count. *)
let max_reported = 4

type resident = {
  res_array : string;
  res_kind : Lower.Flow.array_kind;
  res_offset : int;
  res_size : int;
  res_static : (int, Poly.Lex.interval) Hashtbl.t;  (* element offset *)
  res_obs : Poly.Lex.interval option array;  (* observed hull per element *)
}

type unit_stat = {
  u_name : string;
  u_words : int;
  u_brams : int;
  u_copies : int;
  u_port_budget : int;
  u_reads : int;
  u_writes : int;
  u_words_touched : int;
  u_max_pressure : int;
  u_max_at : (string * int array) option;  (* instance of the maximum *)
  u_residents : string list;
}

type array_obs = {
  o_array : string;
  o_static : Poly.Lex.interval;
  o_observed : Poly.Lex.interval option;  (* None when never accessed *)
  o_contained : bool;
}

type series = (int * int) array
(* (instance sequence number, value) samples *)

type result = {
  r_label : string;
  r_arch : Memgen.architecture option;
  r_diagnostics : D.t list;
  r_units : unit_stat list;
  r_arrays : array_obs list;
  r_instances : int;
  r_accesses : int;
  r_pressure_series : (string * series) list;  (* per unit *)
  r_occupancy_series : (string * series) list;  (* per unit, cumulative *)
}

let resolve storage a =
  match List.assoc_opt a storage with Some x -> x | None -> (a, 0)

(* Mutable per-unit accumulator while the instrumented run executes. *)
type u_acc = {
  ua_unit : Memgen.plm_unit;
  ua_hist : Obs.Metrics.histogram option;
  mutable ua_reads : int;
  mutable ua_writes : int;
  mutable ua_tally_r : int;  (* current instance *)
  mutable ua_tally_w : int;
  ua_touched : (int, unit) Hashtbl.t;
  mutable ua_max : int;
  mutable ua_max_at : (string * int array) option;
  mutable ua_pressure : (int * int) list;  (* reversed series *)
  mutable ua_occupancy : (int * int) list;  (* reversed series *)
}

type site_meta = {
  sm_stmt : string;
  sm_sched : Lower.Schedule.sched1;
  sm_perm : int array;  (* domain dim -> position among enclosing vars *)
}

let bracket kind (iv : Poly.Lex.interval) =
  let first =
    match kind with Lower.Flow.Input -> L.virtual_first | _ -> iv.Poly.Lex.first
  in
  let last =
    match kind with Lower.Flow.Output -> L.virtual_last | _ -> iv.Poly.Lex.last
  in
  Poly.Lex.interval first last

let observed_at r off =
  match r.res_obs.(off) with
  | None -> None
  | Some iv -> Some (bracket r.res_kind iv)

let run_core ~label ~(units : Memgen.plm_unit list) ~unroll ~options ~storage
    (program : Lower.Flow.program) schedule =
  let live = L.analyze program schedule in
  (* residents per storage buffer, with exact static element liveness *)
  let residents : (string, resident list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : Lower.Flow.array_info) ->
      let buffer, offset = resolve storage a.Lower.Flow.array_name in
      let elem = Hashtbl.create (max 16 a.Lower.Flow.size) in
      List.iter
        (fun (off, iv) -> Hashtbl.replace elem off iv)
        (L.element_intervals program schedule a.Lower.Flow.array_name);
      let r =
        {
          res_array = a.Lower.Flow.array_name;
          res_kind = a.Lower.Flow.kind;
          res_offset = offset;
          res_size = a.Lower.Flow.size;
          res_static = elem;
          res_obs = Array.make a.Lower.Flow.size None;
        }
      in
      Hashtbl.replace residents buffer
        (r :: Option.value ~default:[] (Hashtbl.find_opt residents buffer)))
    program.Lower.Flow.arrays;
  let proc, leaves =
    Lower.Codegen.generate_with_provenance ~options ~storage program schedule
  in
  let leaves = Array.of_list leaves in
  let stmt_by_name = Hashtbl.create 16 in
  List.iter
    (fun (s : Lower.Flow.statement) ->
      Hashtbl.replace stmt_by_name s.Lower.Flow.stmt_name s)
    program.Lower.Flow.stmts;
  (* per-unit accumulators keyed by buffer name *)
  let uaccs : (string, u_acc) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (u : Memgen.plm_unit) ->
      Hashtbl.replace uaccs u.Memgen.unit_name
        {
          ua_unit = u;
          ua_hist =
            Some
              (Obs.Metrics.histogram
                 (Printf.sprintf "memprof.%s.pressure.%s" label
                    u.Memgen.unit_name));
          ua_reads = 0;
          ua_writes = 0;
          ua_tally_r = 0;
          ua_tally_w = 0;
          ua_touched = Hashtbl.create 64;
          ua_max = 0;
          ua_max_at = None;
          ua_pressure = [];
          ua_occupancy = [];
        })
    units;
  (* probe state: the current instance *)
  let site_meta : site_meta option array = Array.make (Array.length leaves) None in
  let seq = ref 0 in
  let cur_ts = ref [||] in
  let cur_stmt = ref "" in
  let cur_x = ref [||] in
  let accesses = ref 0 in
  let escapes = ref 0 in
  let escape_diags = ref [] in
  let flush_tally () =
    Hashtbl.iter
      (fun _ ua ->
        if ua.ua_tally_r > 0 || ua.ua_tally_w > 0 then begin
          let pressure = (ua.ua_tally_r * unroll) + ua.ua_tally_w in
          (match ua.ua_hist with
          | Some h -> Obs.Metrics.observe h (float_of_int pressure)
          | None -> ());
          ua.ua_pressure <- (!seq, pressure) :: ua.ua_pressure;
          if pressure > ua.ua_max then begin
            ua.ua_max <- pressure;
            ua.ua_max_at <- Some (!cur_stmt, Array.copy !cur_x)
          end;
          ua.ua_tally_r <- 0;
          ua.ua_tally_w <- 0
        end)
      uaccs
  in
  let on_site ~site ~vars ~stmt =
    ignore stmt;
    if site >= Array.length leaves then
      errf "probe site %d beyond codegen provenance (%d leaves)" site
        (Array.length leaves);
    let leaf = leaves.(site) in
    let rank = Array.length leaf.Lower.Codegen.leaf_vars in
    let perm =
      Array.init rank (fun d ->
          let name = leaf.Lower.Codegen.leaf_vars.(d) in
          let found = ref (-1) in
          Array.iteri (fun j v -> if v = name then found := j) vars;
          if !found < 0 then
            errf "provenance mismatch at site %d: loop %s of %s not enclosing"
              site name leaf.Lower.Codegen.leaf_stmt;
          !found)
    in
    if not (Hashtbl.mem stmt_by_name leaf.Lower.Codegen.leaf_stmt) then
      errf "provenance names unknown statement %s" leaf.Lower.Codegen.leaf_stmt;
    site_meta.(site) <-
      Some
        {
          sm_stmt = leaf.Lower.Codegen.leaf_stmt;
          sm_sched = Lower.Schedule.find schedule leaf.Lower.Codegen.leaf_stmt;
          sm_perm = perm;
        }
  in
  let on_instance ~site ~values =
    flush_tally ();
    incr seq;
    match site_meta.(site) with
    | None -> errf "instance at unregistered probe site %d" site
    | Some m ->
        let x = Array.map (fun j -> values.(j)) m.sm_perm in
        cur_ts := Lower.Schedule.timestamp schedule m.sm_sched x;
        cur_stmt := m.sm_stmt;
        cur_x := x
  in
  let on_access ~site ~buffer ~index ~write =
    ignore site;
    incr accesses;
    let ts = !cur_ts in
    let rs = Option.value ~default:[] (Hashtbl.find_opt residents buffer) in
    let covering =
      List.filter
        (fun r -> index >= r.res_offset && index < r.res_offset + r.res_size)
        rs
    in
    let live_rs =
      List.filter
        (fun r ->
          match Hashtbl.find_opt r.res_static (index - r.res_offset) with
          | Some iv -> Poly.Lex.contains (bracket r.res_kind iv) ts
          | None -> false)
        covering
    in
    if live_rs = [] then begin
      incr escapes;
      if !escapes <= max_reported then
        escape_diags :=
          D.error ~rule:"memprof-live-escape" ~subject:buffer
            ~witness:(D.Element (buffer, index))
            (Format.asprintf
               "%s of %s[%d] by %s%a at t=%a outside every resident's static \
                live interval (residents: %s)"
               (if write then "write" else "read")
               buffer index !cur_stmt
               (fun ppf x ->
                 Format.fprintf ppf "(%s)"
                   (String.concat ","
                      (Array.to_list (Array.map string_of_int x))))
               !cur_x Poly.Lex.pp_timestamp ts
               (match covering with
               | [] -> "none cover this word"
               | l -> String.concat ", " (List.map (fun r -> r.res_array) l)))
          :: !escape_diags
    end
    else
      List.iter
        (fun r ->
          let off = index - r.res_offset in
          let s = Poly.Lex.singleton ts in
          r.res_obs.(off) <-
            (match r.res_obs.(off) with
            | None -> Some s
            | Some iv -> Some (Poly.Lex.hull iv s)))
        live_rs;
    match Hashtbl.find_opt uaccs buffer with
    | None -> ()
    | Some ua ->
        if write then begin
          ua.ua_writes <- ua.ua_writes + 1;
          ua.ua_tally_w <- ua.ua_tally_w + 1
        end
        else begin
          ua.ua_reads <- ua.ua_reads + 1;
          ua.ua_tally_r <- ua.ua_tally_r + 1
        end;
        if not (Hashtbl.mem ua.ua_touched index) then begin
          Hashtbl.replace ua.ua_touched index ();
          ua.ua_occupancy <- (!seq, Hashtbl.length ua.ua_touched) :: ua.ua_occupancy
        end
  in
  let probe = { Loopir.Compiled.on_site; on_instance; on_access } in
  let t = Loopir.Compiled.compile ~mode:Loopir.Compiled.Checked ~probe proc in
  let fr = Loopir.Compiled.make_frame t in
  (* deterministic synthetic inputs; access patterns are data-independent *)
  List.iter
    (fun (p : Loopir.Prog.param) ->
      if p.Loopir.Prog.dir = Loopir.Prog.In then begin
        let buf = Loopir.Compiled.buffer t fr p.Loopir.Prog.name in
        Array.iteri
          (fun i _ ->
            buf.(i) <- (float_of_int (((i + 1) * 13) mod 89) /. 89.) +. 0.5)
          buf
      end)
    proc.Loopir.Prog.params;
  Loopir.Compiled.run t fr;
  flush_tally ();
  (* every site must have fired on_site during compilation *)
  Array.iteri
    (fun i m -> if m = None then errf "probe site %d never registered" i)
    site_meta;
  let diags = ref (List.rev !escape_diags) in
  if !escapes > max_reported then
    diags :=
      !diags
      @ [
          D.error ~rule:"memprof-live-escape" ~subject:program.Lower.Flow.prog_name
            (Printf.sprintf "%d further live-interval escapes not listed"
               (!escapes - max_reported));
        ];
  (* observed array hulls vs the array-level static intervals *)
  let arrays_obs =
    List.map
      (fun (a : Lower.Flow.array_info) ->
        let name = a.Lower.Flow.array_name in
        let buffer, _ = resolve storage name in
        let r =
          List.find
            (fun r -> r.res_array = name)
            (Hashtbl.find residents buffer)
        in
        let observed =
          Array.fold_left
            (fun acc obs ->
              match obs with
              | None -> acc
              | Some iv -> (
                  let iv = bracket r.res_kind iv in
                  match acc with
                  | None -> Some iv
                  | Some h -> Some (Poly.Lex.hull h iv)))
            None r.res_obs
        in
        let static = (L.find live name).L.interval in
        let contained =
          match observed with
          | None -> true
          | Some o ->
              Poly.Lex.le static.Poly.Lex.first o.Poly.Lex.first
              && Poly.Lex.le o.Poly.Lex.last static.Poly.Lex.last
        in
        if not contained then
          diags :=
            !diags
            @ [
                D.error ~rule:"memprof-live-escape" ~subject:name
                  ~witness:
                    (D.Intervals (static, Option.get observed))
                  (Printf.sprintf
                     "observed live interval of %s escapes its static interval"
                     name);
              ];
        { o_array = name; o_static = static; o_observed = observed;
          o_contained = contained })
      program.Lower.Flow.arrays
  in
  (* slot conflicts: two residents observed live on one physical word *)
  let conflicts = ref 0 in
  Hashtbl.iter
    (fun buffer rs ->
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                let lo = max a.res_offset b.res_offset in
                let hi =
                  min (a.res_offset + a.res_size) (b.res_offset + b.res_size)
                in
                let found = ref false in
                let w = ref lo in
                while (not !found) && !w < hi do
                  (match
                     ( observed_at a (!w - a.res_offset),
                       observed_at b (!w - b.res_offset) )
                   with
                  | Some ia, Some ib when Poly.Lex.overlap ia ib ->
                      found := true;
                      incr conflicts;
                      if !conflicts <= max_reported then
                        diags :=
                          !diags
                          @ [
                              D.error ~rule:"memprof-slot-conflict"
                                ~subject:buffer
                                ~witness:(D.Intervals (ia, ib))
                                (Printf.sprintf
                                   "%s and %s observed simultaneously live \
                                    on word %d of %s"
                                   a.res_array b.res_array !w buffer);
                            ]
                  | _ -> ());
                  incr w
                done)
              rest;
            pairs rest
      in
      pairs rs)
    residents;
  if !conflicts > max_reported then
    diags :=
      !diags
      @ [
          D.error ~rule:"memprof-slot-conflict"
            ~subject:program.Lower.Flow.prog_name
            (Printf.sprintf "%d further slot conflicts not listed"
               (!conflicts - max_reported));
        ];
  (* port pressure vs the physical budget *)
  let unit_stats =
    List.map
      (fun (u : Memgen.plm_unit) ->
        let ua = Hashtbl.find uaccs u.Memgen.unit_name in
        let budget = Memgen.port_budget u in
        if ua.ua_max > budget then
          diags :=
            !diags
            @ [
                D.error ~rule:"memprof-port-pressure" ~subject:u.Memgen.unit_name
                  ?witness:
                    (Option.map
                       (fun (s, x) -> D.Instance (s, x))
                       ua.ua_max_at)
                  (Printf.sprintf
                     "observed %d simultaneous accesses to %s, budget is %d \
                      (%d ports x %d copies)"
                     ua.ua_max u.Memgen.unit_name budget
                     Fpga_platform.Bram.ports u.Memgen.copies);
              ];
        {
          u_name = u.Memgen.unit_name;
          u_words = u.Memgen.unit_words;
          u_brams = u.Memgen.brams;
          u_copies = u.Memgen.copies;
          u_port_budget = budget;
          u_reads = ua.ua_reads;
          u_writes = ua.ua_writes;
          u_words_touched = Hashtbl.length ua.ua_touched;
          u_max_pressure = ua.ua_max;
          u_max_at = ua.ua_max_at;
          u_residents =
            List.concat_map
              (fun (s : Memgen.slot) -> s.Memgen.residents)
              u.Memgen.slots;
        })
      units
  in
  let series sel =
    List.map
      (fun (u : Memgen.plm_unit) ->
        let ua = Hashtbl.find uaccs u.Memgen.unit_name in
        (u.Memgen.unit_name, Array.of_list (List.rev (sel ua))))
      units
  in
  (* One structured warning per failing audit (witness details stay in
     the diagnostics themselves): visible on stderr, counted, and
     retained by the flight recorder next to the run's spans. *)
  (if !diags <> [] then
     Obs.Log.warn ~scope:"memprof"
       ~attrs:[ ("label", label) ]
       "audit %s: %d diagnostic%s" label (List.length !diags)
       (if List.length !diags = 1 then "" else "s"));
  {
    r_label = label;
    r_arch = None;
    r_diagnostics = !diags;
    r_units = unit_stats;
    r_arrays = arrays_obs;
    r_instances = !seq;
    r_accesses = !accesses;
    r_pressure_series = series (fun ua -> ua.ua_pressure);
    r_occupancy_series = series (fun ua -> ua.ua_occupancy);
  }

let mode_label = function
  | Memgen.No_sharing -> "no-sharing"
  | Memgen.Sharing -> "sharing"

let run ?(scope = Memgen.All) ?(unroll = 1) ~mode program schedule =
  let arch = Memgen.generate ~scope ~unroll ~mode program schedule in
  let options =
    { Lower.Codegen.default with
      Lower.Codegen.exported_temps = scope = Memgen.All }
  in
  let r =
    run_core ~label:(mode_label mode) ~units:arch.Memgen.units ~unroll ~options
      ~storage:arch.Memgen.storage program schedule
  in
  { r with r_arch = Some arch }

let audit_storage ?(label = "custom") ~storage program schedule =
  let r =
    run_core ~label ~units:[] ~unroll:1 ~options:Lower.Codegen.default ~storage
      program schedule
  in
  r.r_diagnostics
