(** Dynamic live-interval audit: execute a kernel once under an
    instrumented engine and check the {e observed} memory behaviour
    against the static model that licensed the PLM architecture —
    the runtime checker of the paper's central legality argument.

    The kernel's loop nest is regenerated with
    [Lower.Codegen.generate_with_provenance], so every probe site maps
    back to a Flow statement; each dynamic leaf instance reconstructs
    its exact schedule-space timestamp, and every array access is
    attributed to the storage residents whose static per-element live
    interval contains it. Violations surface as [Analysis.Diagnostic]
    errors with concrete witnesses:

    - [memprof-live-escape] — an access fell outside every resident's
      static live interval (observed ⊄ static);
    - [memprof-slot-conflict] — two residents of one buffer observed
      simultaneously live on one physical word (what a forced illegal
      [Liveness.Sharing.merge_storage ~force:true] provokes);
    - [memprof-port-pressure] — a leaf instance exceeded a PLM unit's
      physical port budget ([Fpga_platform.Bram.ports * copies]).

    Affine kernels have data-independent access patterns, so a single
    run over synthetic inputs observes every access the schedule will
    ever perform. Cost is proportional to statement instances — same
    regime as [Lower.Schedule.legal]. *)

exception Error of string
(** Internal inconsistency (probe/provenance mismatch) — distinct from a
    negative audit result, which is reported as diagnostics. *)

type unit_stat = {
  u_name : string;
  u_words : int;
  u_brams : int;
  u_copies : int;
  u_port_budget : int;  (** [Fpga_platform.Bram.ports * copies] *)
  u_reads : int;  (** dynamic reads landing in this unit *)
  u_writes : int;
  u_words_touched : int;  (** distinct words accessed *)
  u_max_pressure : int;
      (** max reads x unroll + writes within one leaf instance *)
  u_max_at : (string * int array) option;
      (** statement instance achieving the maximum *)
  u_residents : string list;
}

type array_obs = {
  o_array : string;
  o_static : Poly.Lex.interval;
  o_observed : Poly.Lex.interval option;
      (** hull of attributed accesses (interface arrays bracketed with
          the virtual first/last); [None] when never accessed *)
  o_contained : bool;  (** observed ⊆ static *)
}

type series = (int * int) array
(** (instance sequence number, value) samples in execution order. *)

type result = {
  r_label : string;  (** ["no-sharing"] / ["sharing"] / custom *)
  r_arch : Mnemosyne.Memgen.architecture option;
  r_diagnostics : Analysis.Diagnostic.t list;  (** empty = audit passed *)
  r_units : unit_stat list;
  r_arrays : array_obs list;
  r_instances : int;  (** dynamic leaf instances executed *)
  r_accesses : int;  (** dynamic array accesses observed *)
  r_pressure_series : (string * series) list;
      (** per unit: port pressure of each instance touching it *)
  r_occupancy_series : (string * series) list;
      (** per unit: cumulative distinct words touched (monotone) *)
}

val run :
  ?scope:Mnemosyne.Memgen.scope ->
  ?unroll:int ->
  mode:Mnemosyne.Memgen.mode ->
  Lower.Flow.program ->
  Lower.Schedule.t ->
  result
(** Generate the PLM architecture for [mode] (as [Mnemosyne.Memgen]
    would), regenerate the loop nest over its storage map, execute it
    once instrumented, and audit. Per-instance unit pressure is also
    observed into the [Obs.Metrics] histograms
    ["memprof.<label>.pressure.<unit>"], from which the report renders
    p50/p95/p99. *)

val audit_storage :
  ?label:string ->
  storage:Lower.Codegen.storage ->
  Lower.Flow.program ->
  Lower.Schedule.t ->
  Analysis.Diagnostic.t list
(** Liveness-only audit of an arbitrary storage map (no PLM units, no
    pressure accounting): the mutation-test entry point for storage maps
    produced by [Liveness.Sharing.merge_storage ~force:true]. *)
