(* Production-path PLM access recorder.

   [enable] installs a probe provider into [Loopir.Compiled], so every
   engine compiled while recording is on — the functional system
   simulation, the SEM operator — reports its dynamic memory behaviour
   here: per-buffer and per-word read/write counts, first-write /
   last-read positions in the dynamic instance sequence, per-site access
   totals and per-instance port pressure. The recorder is
   architecture-agnostic (it sees buffer names and word indices); the
   report layer joins its snapshot against a Mnemosyne architecture.

   Recording is process-global and domain-safe: probe events take one
   mutex. Instance boundaries are tracked per domain, so the
   simultaneous-access (port pressure) accounting of one accelerator
   instance is never polluted by a concurrently simulated one. When
   disabled (the default) no provider is installed and compiled engines
   are bit-identical to unprofiled ones — see
   [Loopir.Compiled.set_probe_provider]. *)

let c_reads = Obs.Metrics.counter "memprof.accesses.read"
let c_writes = Obs.Metrics.counter "memprof.accesses.write"
let c_instances = Obs.Metrics.counter "memprof.instances"
let c_dma_in = Obs.Metrics.counter "memprof.dma.words_in"
let c_dma_out = Obs.Metrics.counter "memprof.dma.words_out"

type word_cell = {
  mutable wc_reads : int;
  mutable wc_writes : int;
  mutable wc_first_write : int;  (* instance seq; -1 = never *)
  mutable wc_last_read : int;  (* instance seq; -1 = never *)
}

type buf_cell = {
  bc_name : string;
  mutable bc_reads : int;
  mutable bc_writes : int;
  mutable bc_max_pressure : int;
  bc_words : (int, word_cell) Hashtbl.t;
  bc_hist : Obs.Metrics.histogram;
}

type site_cell = {
  sc_desc : string;
  mutable sc_instances : int;
  mutable sc_reads : int;
  mutable sc_writes : int;
}

(* One simulated accelerator instance boundary per domain: the tally of
   accesses per buffer since that domain's last [on_instance]. *)
type domain_cell = {
  mutable dc_tally : (string * int ref) list;  (* buffer -> accesses *)
}

type dma_cell = { mutable dma_in : int; mutable dma_out : int }

let lock = Mutex.create ()
let enabled_flag = Atomic.make false
let seq = ref 0
let buffers : (string, buf_cell) Hashtbl.t = Hashtbl.create 16
let sites : (string * int, site_cell) Hashtbl.t = Hashtbl.create 64
let domains : (int, domain_cell) Hashtbl.t = Hashtbl.create 8
let dma : (int, dma_cell) Hashtbl.t = Hashtbl.create 8

let buf_cell name =
  match Hashtbl.find_opt buffers name with
  | Some b -> b
  | None ->
      let b =
        {
          bc_name = name;
          bc_reads = 0;
          bc_writes = 0;
          bc_max_pressure = 0;
          bc_words = Hashtbl.create 64;
          bc_hist = Obs.Metrics.histogram ("memprof.pressure." ^ name);
        }
      in
      Hashtbl.replace buffers name b;
      b

let word_cell b word =
  match Hashtbl.find_opt b.bc_words word with
  | Some w -> w
  | None ->
      let w =
        { wc_reads = 0; wc_writes = 0; wc_first_write = -1; wc_last_read = -1 }
      in
      Hashtbl.replace b.bc_words word w;
      w

let domain_cell () =
  let id = (Domain.self () :> int) in
  match Hashtbl.find_opt domains id with
  | Some d -> d
  | None ->
      let d = { dc_tally = [] } in
      Hashtbl.replace domains id d;
      d

(* Close the domain's current instance: fold its per-buffer tally into
   the pressure statistics. Call with [lock] held. *)
let flush_instance d =
  List.iter
    (fun (name, n) ->
      let b = buf_cell name in
      if !n > b.bc_max_pressure then b.bc_max_pressure <- !n;
      Obs.Metrics.observe b.bc_hist (float_of_int !n))
    d.dc_tally;
  d.dc_tally <- []

let stmt_desc (s : Loopir.Prog.stmt) =
  match s with
  | Loopir.Prog.Store { array; _ } -> "store " ^ array
  | Loopir.Prog.Accum { array; _ } -> "accum " ^ array
  | Loopir.Prog.Set_scalar { name; _ } -> "set " ^ name
  | Loopir.Prog.Acc_scalar { name; _ } -> "acc " ^ name
  | Loopir.Prog.For _ -> "for"

let make_probe (proc : Loopir.Prog.proc) =
  let pname = proc.Loopir.Prog.name in
  let on_site ~site ~vars ~stmt =
    ignore vars;
    Mutex.protect lock (fun () ->
        if not (Hashtbl.mem sites (pname, site)) then
          Hashtbl.replace sites (pname, site)
            {
              sc_desc = stmt_desc stmt;
              sc_instances = 0;
              sc_reads = 0;
              sc_writes = 0;
            })
  in
  let on_instance ~site ~values =
    ignore values;
    Mutex.protect lock (fun () ->
        let d = domain_cell () in
        flush_instance d;
        incr seq;
        Obs.Metrics.incr c_instances;
        match Hashtbl.find_opt sites (pname, site) with
        | Some s -> s.sc_instances <- s.sc_instances + 1
        | None -> ())
  in
  let on_access ~site ~buffer ~index ~write =
    Mutex.protect lock (fun () ->
        let b = buf_cell buffer in
        let w = word_cell b index in
        let now = !seq in
        if write then begin
          b.bc_writes <- b.bc_writes + 1;
          w.wc_writes <- w.wc_writes + 1;
          if w.wc_first_write < 0 then w.wc_first_write <- now;
          Obs.Metrics.incr c_writes
        end
        else begin
          b.bc_reads <- b.bc_reads + 1;
          w.wc_reads <- w.wc_reads + 1;
          w.wc_last_read <- now;
          Obs.Metrics.incr c_reads
        end;
        (match Hashtbl.find_opt sites (pname, site) with
        | Some s ->
            if write then s.sc_writes <- s.sc_writes + 1
            else s.sc_reads <- s.sc_reads + 1
        | None -> ());
        let d = domain_cell () in
        match List.assoc_opt buffer d.dc_tally with
        | Some n -> incr n
        | None -> d.dc_tally <- (buffer, ref 1) :: d.dc_tally)
  in
  Some { Loopir.Compiled.on_site; on_instance; on_access }

let reset () =
  Mutex.protect lock (fun () ->
      seq := 0;
      Hashtbl.reset buffers;
      Hashtbl.reset sites;
      Hashtbl.reset domains;
      Hashtbl.reset dma)

let enabled () = Atomic.get enabled_flag

let enable () =
  reset ();
  Atomic.set enabled_flag true;
  Loopir.Compiled.set_probe_provider (Some make_probe)

let disable () =
  Loopir.Compiled.set_probe_provider None;
  Atomic.set enabled_flag false

let record_dma ~set ~dir ~words =
  if enabled () then
    Mutex.protect lock (fun () ->
        let d =
          match Hashtbl.find_opt dma set with
          | Some d -> d
          | None ->
              let d = { dma_in = 0; dma_out = 0 } in
              Hashtbl.replace dma set d;
              d
        in
        match dir with
        | `In ->
            d.dma_in <- d.dma_in + words;
            Obs.Metrics.add c_dma_in words
        | `Out ->
            d.dma_out <- d.dma_out + words;
            Obs.Metrics.add c_dma_out words)

(* --- snapshot ----------------------------------------------------------- *)

type word_stats = {
  w_word : int;
  w_reads : int;
  w_writes : int;
  w_first_write : int option;  (* instance sequence number *)
  w_last_read : int option;
}

type buffer_stats = {
  b_buffer : string;
  b_reads : int;
  b_writes : int;
  b_words_touched : int;
  b_max_pressure : int;
  b_words : word_stats list;  (* sorted by word *)
}

type site_stats = {
  s_proc : string;
  s_site : int;
  s_desc : string;
  s_instances : int;
  s_reads : int;
  s_writes : int;
}

type dma_stats = { d_set : int; d_words_in : int; d_words_out : int }

type snapshot = {
  sn_buffers : buffer_stats list;  (* sorted by buffer name *)
  sn_sites : site_stats list;  (* sorted by (proc, site) *)
  sn_dma : dma_stats list;  (* sorted by set *)
  sn_instances : int;
  sn_accesses : int;
}

let snapshot () =
  Mutex.protect lock (fun () ->
      (* close every domain's open instance so pressure is complete *)
      Hashtbl.iter (fun _ d -> flush_instance d) domains;
      let opt v = if v < 0 then None else Some v in
      let buffers =
        Hashtbl.fold
          (fun _ b acc ->
            let words =
              Hashtbl.fold
                (fun word w acc ->
                  {
                    w_word = word;
                    w_reads = w.wc_reads;
                    w_writes = w.wc_writes;
                    w_first_write = opt w.wc_first_write;
                    w_last_read = opt w.wc_last_read;
                  }
                  :: acc)
                b.bc_words []
              |> List.sort (fun a b -> compare a.w_word b.w_word)
            in
            {
              b_buffer = b.bc_name;
              b_reads = b.bc_reads;
              b_writes = b.bc_writes;
              b_words_touched = Hashtbl.length b.bc_words;
              b_max_pressure = b.bc_max_pressure;
              b_words = words;
            }
            :: acc)
          buffers []
        |> List.sort (fun a b -> compare a.b_buffer b.b_buffer)
      in
      let sites =
        Hashtbl.fold
          (fun (proc, site) s acc ->
            {
              s_proc = proc;
              s_site = site;
              s_desc = s.sc_desc;
              s_instances = s.sc_instances;
              s_reads = s.sc_reads;
              s_writes = s.sc_writes;
            }
            :: acc)
          sites []
        |> List.sort (fun a b -> compare (a.s_proc, a.s_site) (b.s_proc, b.s_site))
      in
      let dma =
        Hashtbl.fold
          (fun set d acc ->
            { d_set = set; d_words_in = d.dma_in; d_words_out = d.dma_out }
            :: acc)
          dma []
        |> List.sort (fun a b -> compare a.d_set b.d_set)
      in
      let accesses =
        List.fold_left (fun acc b -> acc + b.b_reads + b.b_writes) 0 buffers
      in
      {
        sn_buffers = buffers;
        sn_sites = sites;
        sn_dma = dma;
        sn_instances = !seq;
        sn_accesses = accesses;
      })
