(** Production-path PLM access recorder.

    {!enable} installs a probe provider into [Loopir.Compiled] (the same
    one-branch disabled gate as [Obs.Trace]): every engine compiled
    while recording is on reports its dynamic memory behaviour here —
    per-buffer/per-word read and write counts, first-write and last-read
    positions in the dynamic instance sequence, per-probe-site access
    totals and per-instance port pressure (simultaneous accesses to one
    buffer within one leaf-statement instance). [Sim.Functional]
    additionally reports DMA words per PLM set through {!record_dma}.

    The recorder is architecture-agnostic; [Memprof.Report] joins a
    snapshot against the Mnemosyne architecture. The exact
    schedule-space audit (observed ⊆ static live intervals) is
    [Memprof.Audit], which runs its own instrumented execution and does
    not go through this global store.

    Domain-safe: events take one mutex, and instance boundaries are
    tracked per domain so concurrently simulated accelerators do not
    pollute each other's pressure accounting. With recording disabled
    (the default) compiled engines carry no instrumentation at all. *)

val enable : unit -> unit
(** Reset the store and install the probe provider. Engines compiled
    {e after} this call are instrumented; already-compiled engines are
    not (compile order matters, by design — the gate is at compile
    time). *)

val disable : unit -> unit
(** Remove the provider. The store keeps its contents for {!snapshot}
    until the next {!enable} or {!reset}. *)

val enabled : unit -> bool
val reset : unit -> unit

val record_dma : set:int -> dir:[ `In | `Out ] -> words:int -> unit
(** Account a DMA transfer of [words] PLM words for the given PLM set.
    No-op while disabled. *)

val make_probe : Loopir.Prog.proc -> Loopir.Compiled.probe option
(** The provider installed by {!enable}, exposed for direct use in
    tests. *)

type word_stats = {
  w_word : int;
  w_reads : int;
  w_writes : int;
  w_first_write : int option;
      (** instance sequence number of the first write, if any *)
  w_last_read : int option;
}

type buffer_stats = {
  b_buffer : string;
  b_reads : int;
  b_writes : int;
  b_words_touched : int;
  b_max_pressure : int;
      (** max simultaneous accesses in one leaf instance *)
  b_words : word_stats list;  (** sorted by word *)
}

type site_stats = {
  s_proc : string;
  s_site : int;
  s_desc : string;
  s_instances : int;
  s_reads : int;
  s_writes : int;
}

type dma_stats = { d_set : int; d_words_in : int; d_words_out : int }

type snapshot = {
  sn_buffers : buffer_stats list;  (** sorted by buffer name *)
  sn_sites : site_stats list;  (** sorted by (proc, site) *)
  sn_dma : dma_stats list;  (** sorted by set *)
  sn_instances : int;
  sn_accesses : int;
}

val snapshot : unit -> snapshot
(** Consistent view of everything recorded since the last reset; closes
    every domain's open instance first so pressure totals are final. *)
