(* Memory evaluation report: joins the dynamic audits (both memgen
   modes) and the production-path recorder snapshot into the paper's
   memory numbers — per-unit word occupancy, BRAM18 counts (31 -> 18 on
   the factorized Inverse Helmholtz), sharing savings and DMA words per
   PLM set — as a human summary, a JSON document and Chrome-trace
   counter tracks (BRAM occupancy and port pressure over the instance
   sequence). *)

module D = Analysis.Diagnostic
module Memgen = Mnemosyne.Memgen

type t = {
  rep_kernel : string;
  rep_audits : Audit.result list;
  rep_sim : (int * Record.snapshot) option;
      (* (elements simulated, recorder snapshot) *)
}

let make ~kernel ?sim audits =
  { rep_kernel = kernel; rep_audits = audits; rep_sim = sim }

let diagnostics t = List.concat_map (fun a -> a.Audit.r_diagnostics) t.rep_audits
let passed t = D.errors (diagnostics t) = []

let find_mode t label =
  List.find_opt (fun a -> a.Audit.r_label = label) t.rep_audits

let total_brams a =
  match a.Audit.r_arch with
  | Some arch -> Some arch.Memgen.total_brams
  | None -> None

(* BRAM18s saved by sharing, when both modes were audited *)
let savings t =
  match (find_mode t "no-sharing", find_mode t "sharing") with
  | Some ns, Some sh -> (
      match (total_brams ns, total_brams sh) with
      | Some a, Some b -> Some (a, b, a - b)
      | _ -> None)
  | _ -> None

(* --- JSON --------------------------------------------------------------- *)

let ts_json (ts : Poly.Lex.timestamp) =
  if Poly.Lex.equal ts Liveness.Analysis.virtual_first then
    Obs.Json.String "virtual-first"
  else if Poly.Lex.equal ts Liveness.Analysis.virtual_last then
    Obs.Json.String "virtual-last"
  else Obs.Json.List (Array.to_list (Array.map (fun i -> Obs.Json.Int i) ts))

let interval_json (iv : Poly.Lex.interval) =
  Obs.Json.Obj
    [ ("first", ts_json iv.Poly.Lex.first); ("last", ts_json iv.Poly.Lex.last) ]

let diag_json (d : D.t) =
  Obs.Json.Obj
    [
      ( "severity",
        Obs.Json.String (match d.D.severity with D.Error -> "error" | D.Warning -> "warning") );
      ("rule", Obs.Json.String d.D.rule);
      ("subject", Obs.Json.String d.D.subject);
      ("message", Obs.Json.String d.D.message);
    ]

let pressure_hist label unit_name =
  Obs.Metrics.histogram_snapshot
    (Obs.Metrics.histogram
       (Printf.sprintf "memprof.%s.pressure.%s" label unit_name))

let num f = if Float.is_finite f then Obs.Json.Float f else Obs.Json.Null

let unit_json label (u : Audit.unit_stat) =
  let h = pressure_hist label u.Audit.u_name in
  Obs.Json.Obj
    [
      ("name", Obs.Json.String u.Audit.u_name);
      ("words", Obs.Json.Int u.Audit.u_words);
      ("brams", Obs.Json.Int u.Audit.u_brams);
      ("copies", Obs.Json.Int u.Audit.u_copies);
      ("port_budget", Obs.Json.Int u.Audit.u_port_budget);
      ("reads", Obs.Json.Int u.Audit.u_reads);
      ("writes", Obs.Json.Int u.Audit.u_writes);
      ("words_touched", Obs.Json.Int u.Audit.u_words_touched);
      ("max_pressure", Obs.Json.Int u.Audit.u_max_pressure);
      ("pressure_p50", num h.Obs.Metrics.h_p50);
      ("pressure_p95", num h.Obs.Metrics.h_p95);
      ("pressure_p99", num h.Obs.Metrics.h_p99);
      ( "residents",
        Obs.Json.List
          (List.map (fun r -> Obs.Json.String r) u.Audit.u_residents) );
    ]

let array_json (o : Audit.array_obs) =
  Obs.Json.Obj
    [
      ("array", Obs.Json.String o.Audit.o_array);
      ("static", interval_json o.Audit.o_static);
      ( "observed",
        match o.Audit.o_observed with
        | None -> Obs.Json.Null
        | Some iv -> interval_json iv );
      ("contained", Obs.Json.Bool o.Audit.o_contained);
    ]

let audit_json (a : Audit.result) =
  Obs.Json.Obj
    ([
       ("label", Obs.Json.String a.Audit.r_label);
       ("instances", Obs.Json.Int a.Audit.r_instances);
       ("accesses", Obs.Json.Int a.Audit.r_accesses);
       ( "units",
         Obs.Json.List (List.map (unit_json a.Audit.r_label) a.Audit.r_units) );
       ("arrays", Obs.Json.List (List.map array_json a.Audit.r_arrays));
       ( "diagnostics",
         Obs.Json.List (List.map diag_json a.Audit.r_diagnostics) );
     ]
    @
    match total_brams a with
    | Some n -> [ ("total_brams", Obs.Json.Int n) ]
    | None -> [])

let sim_json (elements, (sn : Record.snapshot)) =
  Obs.Json.Obj
    [
      ("elements", Obs.Json.Int elements);
      ("instances", Obs.Json.Int sn.Record.sn_instances);
      ("accesses", Obs.Json.Int sn.Record.sn_accesses);
      ( "dma",
        Obs.Json.List
          (List.map
             (fun (d : Record.dma_stats) ->
               Obs.Json.Obj
                 [
                   ("set", Obs.Json.Int d.Record.d_set);
                   ("words_in", Obs.Json.Int d.Record.d_words_in);
                   ("words_out", Obs.Json.Int d.Record.d_words_out);
                 ])
             sn.Record.sn_dma) );
      ( "buffers",
        Obs.Json.List
          (List.map
             (fun (b : Record.buffer_stats) ->
               Obs.Json.Obj
                 [
                   ("buffer", Obs.Json.String b.Record.b_buffer);
                   ("reads", Obs.Json.Int b.Record.b_reads);
                   ("writes", Obs.Json.Int b.Record.b_writes);
                   ("words_touched", Obs.Json.Int b.Record.b_words_touched);
                   ("max_pressure", Obs.Json.Int b.Record.b_max_pressure);
                 ])
             sn.Record.sn_buffers) );
    ]

let to_json t =
  Obs.Json.Obj
    ([
       ("kernel", Obs.Json.String t.rep_kernel);
       ("modes", Obs.Json.List (List.map audit_json t.rep_audits));
       ("audit_passed", Obs.Json.Bool (passed t));
     ]
    @ (match savings t with
      | Some (ns, sh, saved) ->
          [
            ("no_sharing_brams", Obs.Json.Int ns);
            ("sharing_brams", Obs.Json.Int sh);
            ("sharing_savings_brams", Obs.Json.Int saved);
          ]
      | None -> [])
    @
    match t.rep_sim with
    | Some sim -> [ ("functional_sim", sim_json sim) ]
    | None -> [])

(* --- Chrome-trace counter tracks ---------------------------------------- *)

(* Counter ("ph":"C") events over the instance sequence number as the
   time axis. Pressure series are downsampled to at most [max_samples]
   per unit, keeping the per-bucket maximum (the audit-relevant value);
   occupancy is monotone and already bounded by the unit's word count. *)
let max_samples = 1024

let downsample_max (s : Audit.series) =
  let n = Array.length s in
  if n <= max_samples then s
  else
    Array.init max_samples (fun b ->
        let lo = b * n / max_samples and hi = ((b + 1) * n / max_samples) - 1 in
        let best = ref s.(lo) in
        for i = lo + 1 to hi do
          if snd s.(i) > snd !best then best := s.(i)
        done;
        !best)

let counter_events ~tid ~name ~arg (s : Audit.series) =
  Array.to_list
    (Array.map
       (fun (seq, v) ->
         Obs.Json.Obj
           [
             ("name", Obs.Json.String name);
             ("cat", Obs.Json.String "memprof");
             ("ph", Obs.Json.String "C");
             ("ts", Obs.Json.Int seq);
             ("pid", Obs.Json.Int 1);
             ("tid", Obs.Json.Int tid);
             ("args", Obs.Json.Obj [ (arg, Obs.Json.Int v) ]);
           ])
       s)

(* Series lists come from the audit in unit order; sort them by unit
   name (and audits are already in caller order) so the emitted trace
   JSON is byte-deterministic across runs — hashtable iteration order
   must never leak into the byte stream the hit≡miss and
   jobs-equivalence assertions compare. *)
let sorted_series l = List.sort (fun (a, _) (b, _) -> compare a b) l

let chrome_counters t =
  let events =
    List.concat
      (List.mapi
         (fun tid (a : Audit.result) ->
           List.concat_map
             (fun (u, s) ->
               counter_events ~tid
                 ~name:
                   (Printf.sprintf "port-pressure %s (%s)" u a.Audit.r_label)
                 ~arg:"pressure" (downsample_max s))
             (sorted_series a.Audit.r_pressure_series)
           @ List.concat_map
               (fun (u, s) ->
                 counter_events ~tid
                   ~name:
                     (Printf.sprintf "plm-occupancy %s (%s)" u a.Audit.r_label)
                   ~arg:"words" (downsample_max s))
               (sorted_series a.Audit.r_occupancy_series))
         t.rep_audits)
  in
  Obs.Json.Obj
    [
      ("traceEvents", Obs.Json.List events);
      ("displayTimeUnit", Obs.Json.String "ms");
    ]

let port_pressure_tracks t =
  List.sort compare
    (List.concat_map
       (fun (a : Audit.result) ->
         List.map
           (fun (u, s) -> (a.Audit.r_label, u, downsample_max s))
           a.Audit.r_pressure_series)
       t.rep_audits)

(* --- human summary ------------------------------------------------------ *)

let pp_pct ppf (part, whole) =
  if whole = 0 then Format.pp_print_string ppf "n/a"
  else Format.fprintf ppf "%.1f%%" (100. *. float_of_int part /. float_of_int whole)

let pp_num ppf v =
  if Float.is_finite v then Format.fprintf ppf "%g" v
  else Format.pp_print_string ppf "n/a"

let pp ppf t =
  Format.fprintf ppf "memprof report: %s@." t.rep_kernel;
  List.iter
    (fun (a : Audit.result) ->
      (match total_brams a with
      | Some brams ->
          Format.fprintf ppf "  mode %-12s %d units, %d BRAM18@."
            a.Audit.r_label
            (List.length a.Audit.r_units)
            brams
      | None -> Format.fprintf ppf "  audit %s@." a.Audit.r_label);
      List.iter
        (fun (u : Audit.unit_stat) ->
          let h = pressure_hist a.Audit.r_label u.Audit.u_name in
          Format.fprintf ppf
            "    %-10s %5d words  %2d bram  x%d  occupancy %5d/%-5d (%a)  \
             reads %8d  writes %7d  pressure max %d/%d p50 %a p95 %a p99 %a@."
            u.Audit.u_name u.Audit.u_words u.Audit.u_brams u.Audit.u_copies
            u.Audit.u_words_touched u.Audit.u_words pp_pct
            (u.Audit.u_words_touched, u.Audit.u_words)
            u.Audit.u_reads u.Audit.u_writes u.Audit.u_max_pressure
            u.Audit.u_port_budget pp_num h.Obs.Metrics.h_p50 pp_num
            h.Obs.Metrics.h_p95 pp_num h.Obs.Metrics.h_p99)
        a.Audit.r_units;
      Format.fprintf ppf "    audited %d instances, %d accesses@."
        a.Audit.r_instances a.Audit.r_accesses)
    t.rep_audits;
  (match savings t with
  | Some (ns, sh, saved) ->
      Format.fprintf ppf "  sharing: %d -> %d BRAM18, saves %d (%a)@." ns sh
        saved pp_pct (saved, ns)
  | None -> ());
  (match t.rep_sim with
  | Some (elements, sn) ->
      Format.fprintf ppf
        "  functional sim (%d elements): %d instances, %d accesses@." elements
        sn.Record.sn_instances sn.Record.sn_accesses;
      List.iter
        (fun (d : Record.dma_stats) ->
          Format.fprintf ppf
            "    plm set %d: dma in %d words (%d bytes), out %d words (%d \
             bytes)@."
            d.Record.d_set d.Record.d_words_in
            (d.Record.d_words_in * 8)
            d.Record.d_words_out
            (d.Record.d_words_out * 8))
        sn.Record.sn_dma
  | None -> ());
  let ds = diagnostics t in
  if ds = [] then Format.fprintf ppf "  audit: PASS (no diagnostics)@."
  else begin
    Format.fprintf ppf "  audit: FAIL@.";
    D.pp_report ppf ds
  end
