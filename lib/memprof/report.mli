(** Memory evaluation report — the paper's Table of memory results,
    reproduced from dynamic observation: per-unit word occupancy, BRAM18
    counts per memgen mode (31 no-sharing → 18 sharing on the factorized
    Inverse Helmholtz), sharing savings, DMA words per PLM set, and the
    audit verdict. Rendered as a human summary, a JSON document, and
    Chrome-trace counter tracks. *)

type t

val make :
  kernel:string -> ?sim:int * Record.snapshot -> Audit.result list -> t
(** [sim] is (elements simulated, recorder snapshot) from a
    [Sim.Functional] run with [Record] enabled. *)

val diagnostics : t -> Analysis.Diagnostic.t list
(** All audit diagnostics, in audit order. *)

val passed : t -> bool
(** No error-severity diagnostics. *)

val savings : t -> (int * int * int) option
(** (no-sharing BRAM18s, sharing BRAM18s, saved) when both modes were
    audited with architectures attached. *)

val to_json : t -> Obs.Json.t
(** Unit percentile fields (p50/p95/p99 of port pressure) are read from
    the ["memprof.<label>.pressure.<unit>"] histograms the audit
    observed into. *)

val chrome_counters : t -> Obs.Json.t
(** Chrome trace-event JSON with counter ([ph:"C"]) tracks per unit and
    mode: port pressure and cumulative PLM word occupancy over the
    instance sequence number as the time axis. Pressure tracks are
    downsampled to at most 1024 samples keeping per-bucket maxima;
    tracks and series are emitted sorted by unit name so the JSON is
    byte-deterministic across runs. *)

val port_pressure_tracks : t -> (string * string * Audit.series) list
(** [(mode label, unit name, series)] for every audited port-pressure
    series, sorted by (label, unit) and downsampled to at most 1024
    samples (per-bucket maxima) — the join surface for the device-cycle
    timeline's per-buffer occupancy counter tracks. *)

val pp : Format.formatter -> t -> unit
