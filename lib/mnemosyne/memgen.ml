type mode = No_sharing | Sharing

type slot = { residents : string list; slot_words : int; slot_offset : int }

type plm_unit = {
  unit_name : string;
  slots : slot list;
  copies : int;
  unit_words : int;
  brams : int;
}

type architecture = {
  arch_mode : mode;
  units : plm_unit list;
  storage : Lower.Codegen.storage;
  total_brams : int;
}

exception Error of string

let is_transient name = String.length name > 0 && name.[0] = '%'

let read_ports_needed (program : Lower.Flow.program) array =
  List.fold_left
    (fun acc (stmt : Lower.Flow.statement) ->
      let reads =
        List.length
          (List.filter
             (fun (r : Lower.Flow.access) -> r.Lower.Flow.array = array)
             (Lower.Flow.reads stmt))
      in
      let writes = if stmt.Lower.Flow.write.Lower.Flow.array = array then 1 else 0 in
      max acc (reads + writes))
    1 program.Lower.Flow.stmts

(* Working slot representation during packing. *)
type wslot = { mutable members : string list; mutable wsize : int }

let compatible_with_all live a members =
  List.for_all (Liveness.Analysis.address_space_compatible live a) members

let interface_with_all live a members =
  List.for_all (Liveness.Analysis.interface_compatible live a) members

type scope = All | Interface_only

(* Per-instance port demand with unrolled lanes: each lane issues its own
   reads; the (register-accumulated) write does not replicate. *)
let ports_with_unroll (program : Lower.Flow.program) ~unroll array =
  List.fold_left
    (fun acc (stmt : Lower.Flow.statement) ->
      let reads =
        List.length
          (List.filter
             (fun (r : Lower.Flow.access) -> r.Lower.Flow.array = array)
             (Lower.Flow.reads stmt))
      in
      let writes = if stmt.Lower.Flow.write.Lower.Flow.array = array then 1 else 0 in
      max acc ((reads * unroll) + writes))
    1 program.Lower.Flow.stmts

let generate ?(scope = All) ?(unroll = 1) ~mode (program : Lower.Flow.program) schedule =
  let live = Liveness.Analysis.analyze program schedule in
  let arrays = program.Lower.Flow.arrays in
  let size_of name =
    (Lower.Flow.array_info program name).Lower.Flow.size
  in
  (* Phase A: materialize transients onto declared temporaries (or other
     transients already pinned to one), preferring equal-size targets. *)
  let named, transients =
    List.partition
      (fun (a : Lower.Flow.array_info) -> not (is_transient a.Lower.Flow.array_name))
      arrays
  in
  let slots =
    List.map
      (fun (a : Lower.Flow.array_info) ->
        { members = [ a.Lower.Flow.array_name ]; wsize = a.Lower.Flow.size })
      named
  in
  let extra_slots = ref [] in
  List.iter
    (fun (tr : Lower.Flow.array_info) ->
      let name = tr.Lower.Flow.array_name in
      let candidates =
        List.filter
          (fun s ->
            (* only temp-kind named slots may host transients *)
            List.for_all
              (fun m ->
                is_transient m
                || (Lower.Flow.array_info program m).Lower.Flow.kind = Lower.Flow.Temp)
              s.members
            && s.wsize >= tr.Lower.Flow.size
            && compatible_with_all live name s.members)
          (slots @ !extra_slots)
      in
      match candidates with
      | s :: _ -> s.members <- s.members @ [ name ]
      | [] ->
          extra_slots :=
            !extra_slots @ [ { members = [ name ]; wsize = tr.Lower.Flow.size } ])
    transients;
  let slots = slots @ !extra_slots in
  (* Interface-only scope: temporaries stay inside the accelerator. Their
     slots become local buffers named after their first member; only the
     interface slots proceed to PLM construction. *)
  let internal_storage = ref [] in
  let slots =
    match scope with
    | All -> slots
    | Interface_only ->
        let is_temp_slot s =
          List.for_all
            (fun m ->
              is_transient m
              || (Lower.Flow.array_info program m).Lower.Flow.kind = Lower.Flow.Temp)
            s.members
        in
        let temp_slots, iface_slots = List.partition is_temp_slot slots in
        List.iter
          (fun s ->
            match s.members with
            | [] -> ()
            | first :: _ ->
                List.iter
                  (fun m -> internal_storage := (m, (first, 0)) :: !internal_storage)
                  s.members)
          temp_slots;
        iface_slots
  in
  (* Phase B (Sharing only): merge slots whose cross pairs are all
     address-space compatible; greedy, larger slots first. *)
  let slots =
    if mode = No_sharing then slots
    else begin
      let sorted = List.sort (fun a b -> compare b.wsize a.wsize) slots in
      let merged : wslot list ref = ref [] in
      List.iter
        (fun s ->
          let target =
            List.find_opt
              (fun t ->
                List.for_all
                  (fun m -> compatible_with_all live m t.members)
                  s.members)
              !merged
          in
          match target with
          | Some t ->
              t.members <- t.members @ s.members;
              t.wsize <- max t.wsize s.wsize
          | None -> merged := !merged @ [ s ])
        sorted;
      !merged
    end
  in
  (* Units: initially one per slot. Phase C (Sharing only): stack a slot
     into another unit when every cross pair is memory-interface
     compatible and the stacking does not increase that unit's BRAMs. *)
  let copies_of slot =
    List.fold_left
      (fun acc m ->
        let ports = ports_with_unroll program ~unroll m in
        max acc ((ports + Fpga_platform.Bram.ports - 1) / Fpga_platform.Bram.ports))
      1 slot.members
  in
  let unit_brams words copies =
    copies * Fpga_platform.Bram.count_array ~words
  in
  let units = ref (List.map (fun s -> ref [ s ]) slots) in
  if mode = Sharing then begin
    (* try to move single-slot units (smallest first) into other units *)
    let stable = ref false in
    while not !stable do
      stable := true;
      let sorted =
        List.sort
          (fun a b ->
            compare
              (List.fold_left (fun acc s -> acc + s.wsize) 0 !a)
              (List.fold_left (fun acc s -> acc + s.wsize) 0 !b))
          !units
      in
      (match
         List.find_map
           (fun u ->
             if List.length !u <> 1 then None
             else
               let s = List.hd !u in
               let u_cost =
                 unit_brams
                   (List.fold_left (fun acc x -> acc + x.wsize) 0 !u)
                   (List.fold_left (fun acc x -> max acc (copies_of x)) 1 !u)
               in
               List.find_map
                 (fun t ->
                   if t == u then None
                   else
                     let t_words = List.fold_left (fun acc x -> acc + x.wsize) 0 !t in
                     let t_copies =
                       List.fold_left (fun acc x -> max acc (copies_of x)) 1 !t
                     in
                     let compat =
                       List.for_all
                         (fun m ->
                           List.for_all
                             (fun ts ->
                               interface_with_all live m ts.members)
                             !t)
                         s.members
                     in
                     let new_cost =
                       unit_brams (t_words + s.wsize) (max t_copies (copies_of s))
                     in
                     let old_cost = unit_brams t_words t_copies in
                     if compat && new_cost - old_cost < u_cost then
                       Some (u, t)
                     else None)
                 sorted)
           sorted
       with
      | Some (u, t) ->
          t := !t @ !u;
          units := List.filter (fun x -> not (x == u)) !units;
          stable := false
      | None -> ())
    done
  end;
  (* Final assembly. *)
  let unit_list =
    List.mapi
      (fun i u ->
        let slots_final, _ =
          List.fold_left
            (fun (acc, off) s ->
              ( acc
                @ [ { residents = s.members; slot_words = s.wsize; slot_offset = off } ],
                off + s.wsize ))
            ([], 0) !u
        in
        let words = List.fold_left (fun acc s -> acc + s.wsize) 0 !u in
        let copies = List.fold_left (fun acc s -> max acc (copies_of s)) 1 !u in
        {
          unit_name = Printf.sprintf "plm%d" i;
          slots = slots_final;
          copies;
          unit_words = words;
          brams = unit_brams words copies;
        })
      !units
  in
  let storage =
    !internal_storage
    @ List.concat_map
        (fun unit_ ->
          List.concat_map
            (fun s ->
              List.map (fun m -> (m, (unit_.unit_name, s.slot_offset))) s.residents)
            unit_.slots)
        unit_list
  in
  (* sanity: every array has a slot *)
  List.iter
    (fun (a : Lower.Flow.array_info) ->
      if not (List.mem_assoc a.Lower.Flow.array_name storage) then
        raise (Error ("array not placed: " ^ a.Lower.Flow.array_name)))
    arrays;
  ignore size_of;
  {
    arch_mode = mode;
    units = unit_list;
    storage;
    total_brams = List.fold_left (fun acc u -> acc + u.brams) 0 unit_list;
  }

let port_budget u = Fpga_platform.Bram.ports * u.copies

let unit_of_buffer arch buffer =
  List.find_opt (fun u -> u.unit_name = buffer) arch.units

let metadata (program : Lower.Flow.program) schedule =
  let live = Liveness.Analysis.analyze program schedule in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# Mnemosyne metadata (generated by cfd_accel)\n";
  Buffer.add_string buf "[arrays]\n";
  List.iter
    (fun (a : Lower.Flow.array_info) ->
      Buffer.add_string buf
        (Printf.sprintf "%s words=%d width=64 kind=%s ports=%d\n"
           a.Lower.Flow.array_name a.Lower.Flow.size
           (match a.Lower.Flow.kind with
           | Lower.Flow.Input -> "input"
           | Lower.Flow.Output -> "output"
           | Lower.Flow.Temp -> "temp")
           (read_ports_needed program a.Lower.Flow.array_name)))
    program.Lower.Flow.arrays;
  Buffer.add_string buf "[compatibilities]\n";
  List.iter
    (fun (e : Liveness.Analysis.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s%s\n" e.Liveness.Analysis.a e.Liveness.Analysis.b
           (if e.Liveness.Analysis.address_space then "address-space" else "")
           (if e.Liveness.Analysis.mem_interface then
              (if e.Liveness.Analysis.address_space then "+interface" else "interface")
            else "")))
    (Liveness.Analysis.compatibility_graph live);
  Buffer.contents buf

let pp_architecture ppf arch =
  Format.fprintf ppf "@[<v>PLM architecture (%s): %d BRAM18@ "
    (match arch.arch_mode with No_sharing -> "no sharing" | Sharing -> "sharing")
    arch.total_brams;
  List.iter
    (fun u ->
      Format.fprintf ppf "%s: %d words, %d copies, %d BRAM18@ " u.unit_name
        u.unit_words u.copies u.brams;
      List.iter
        (fun s ->
          Format.fprintf ppf "  @[slot +%d (%d words): %s@]@ " s.slot_offset
            s.slot_words
            (String.concat " | " s.residents))
        u.slots)
    arch.units;
  Format.fprintf ppf "@]"
