(** Memory architecture generation — the Mnemosyne substitute
    (Section V-A2; Pilato et al., TCAD'17).

    Builds the accelerator's Private Local Memory from the compatibility
    information of the liveness analysis:

    - {e slots} group arrays that alias the same address range
      (address-space sharing: disjoint lifetimes);
    - {e units} stack slots into one set of physical banks
      (memory-interface sharing: same-type operations never coincide);
    - each unit is implemented on BRAM18 primitives with
      {!Fpga_platform.Bram.count}; arrays needing more simultaneous
      accesses than the two physical ports are duplicated across bank
      copies (multi-port architecture).

    Two generation modes reproduce the paper's two configurations. In both
    modes compiler-introduced transients are first materialized onto the
    program's declared local tensors (the ping-pong reuse of t and r that
    makes the factorized Inverse Helmholtz fit in its six named arrays);
    [`Sharing] additionally merges named arrays, taking the per-kernel PLM
    from 31 to 18 BRAM18s. *)

type mode = No_sharing | Sharing

type slot = {
  residents : string list;  (** arrays aliasing this address range *)
  slot_words : int;  (** max resident size *)
  slot_offset : int;  (** word offset inside the unit *)
}

type plm_unit = {
  unit_name : string;
  slots : slot list;
  copies : int;  (** bank duplication for >2 simultaneous accesses *)
  unit_words : int;
  brams : int;
}

type architecture = {
  arch_mode : mode;
  units : plm_unit list;
  storage : Lower.Codegen.storage;
  total_brams : int;
}

exception Error of string

val read_ports_needed : Lower.Flow.program -> string -> int
(** Maximum number of same-instance accesses to the array (reads within
    one statement body). *)

type scope = All | Interface_only

val generate :
  ?scope:scope ->
  ?unroll:int ->
  mode:mode ->
  Lower.Flow.program ->
  Lower.Schedule.t ->
  architecture
(** [scope] defaults to [All] (the decoupled flow: every array lives in a
    PLM). [Interface_only] reproduces the "temporaries left inside the HLS
    accelerator" variant: temporaries are still packed onto the declared
    locals (that is the compiler's job, not Vivado's) but stay out of the
    PLM units and out of [total_brams]; the generated storage map makes
    them local buffers of the kernel.

    [unroll] (default 1) is the innermost-loop unroll factor requested
    from HLS: each unrolled lane reads its own element per cycle, so read
    ports scale with the factor and banks are duplicated once demand
    exceeds the primitive's two ports (the "multi-port, multi-bank
    architectures based on the requested HLS optimizations" of
    Section V-A2). *)

val port_budget : plm_unit -> int
(** Simultaneous same-cycle accesses the unit can serve:
    [Fpga_platform.Bram.ports * copies]. The dynamic profiler audits
    observed per-instance access counts against this budget. *)

val unit_of_buffer : architecture -> string -> plm_unit option
(** The PLM unit backing the named storage buffer, if any — under
    [Interface_only] scope, temporaries resolve to kernel-local buffers
    that are not PLM units. *)

val metadata : Lower.Flow.program -> Lower.Schedule.t -> string
(** The Mnemosyne input metadata the compiler generates in step (iv) of
    Figure 4: array inventory plus the compatibility edges. *)

val pp_architecture : Format.formatter -> architecture -> unit
