(* --- Chrome trace-event JSON ------------------------------------------- *)

let event_json (e : Trace.event) =
  Json.Obj
    [
      ("name", Json.String e.Trace.ev_name);
      ("cat", Json.String "cfd");
      ("ph", Json.String "X");
      ("ts", Json.Float e.Trace.ev_ts);
      ("dur", Json.Float e.Trace.ev_dur);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.Trace.ev_tid);
      ( "args",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.String v)) e.Trace.ev_attrs) );
    ]

(* Counter tracks: one final-value ["ph": "C"] sample per tracked
   counter, placed at the end of the trace so Perfetto renders the
   run's totals as counter rows next to the span rows. These are the
   cross-cutting resources every pipeline leans on; memprof keeps its
   own per-instance tracks. *)
let counter_tracks = [ "cache.hits"; "cache.misses"; "cache.evictions"; "pool.tasks" ]

let counter_track_events evs =
  let ts_end =
    List.fold_left
      (fun acc (e : Trace.event) ->
        Float.max acc (e.Trace.ev_ts +. e.Trace.ev_dur))
      0.0 evs
  in
  let counters = (Metrics.snapshot ()).Metrics.counters in
  List.filter_map
    (fun name ->
      match List.assoc_opt name counters with
      | None -> None
      | Some v ->
          Some
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("cat", Json.String "cfd");
                 ("ph", Json.String "C");
                 ("ts", Json.Float ts_end);
                 ("pid", Json.Int 1);
                 ("tid", Json.Int 0);
                 ("args", Json.Obj [ ("value", Json.Int v) ]);
               ]))
    counter_tracks

let chrome_trace () =
  let evs = Trace.events () in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map event_json evs @ counter_track_events evs) );
      ("displayTimeUnit", Json.String "ms");
    ]

(* --- metrics JSON ------------------------------------------------------- *)

let metrics () = Metrics_json.current ()

let write_chrome_trace ~path () = Json.to_file path (chrome_trace ())
let write_metrics ~path () = Json.to_file path (metrics ())

(* --- human summary ------------------------------------------------------ *)

type span_agg = {
  mutable sa_count : int;
  mutable sa_total : float;  (* µs *)
  mutable sa_depth : int;
  mutable sa_first : float;
}

(* Guards for the human summary: a report must never print nan/inf —
   zero-denominator rates render as 0, undefined values as n/a. *)
let safe_div num den = if den = 0. then 0. else num /. den

let pp_num ppf v =
  if Float.is_finite v then Format.fprintf ppf "%g" v
  else Format.pp_print_string ppf "n/a"

let pp_spans ppf evs =
  let tbl : (string, span_agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Trace.event) ->
      match Hashtbl.find_opt tbl e.Trace.ev_name with
      | Some a ->
          a.sa_count <- a.sa_count + 1;
          a.sa_total <- a.sa_total +. e.Trace.ev_dur;
          a.sa_depth <- min a.sa_depth e.Trace.ev_depth;
          a.sa_first <- Float.min a.sa_first e.Trace.ev_ts
      | None ->
          Hashtbl.replace tbl e.Trace.ev_name
            {
              sa_count = 1;
              sa_total = e.Trace.ev_dur;
              sa_depth = e.Trace.ev_depth;
              sa_first = e.Trace.ev_ts;
            })
    evs;
  let rows =
    Hashtbl.fold (fun name a acc -> (name, a) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) ->
           match compare a.sa_depth b.sa_depth with
           | 0 -> compare a.sa_first b.sa_first
           | _ ->
               (* order by first start; ties (same µs) broken by depth *)
               compare a.sa_first b.sa_first)
  in
  if rows <> [] then begin
    Format.fprintf ppf "span timings (wall clock):@.";
    List.iter
      (fun (name, a) ->
        let indent = String.make (2 * a.sa_depth) ' ' in
        Format.fprintf ppf "  %s%-*s %6d x %10.3f ms total %10.3f ms mean@."
          indent
          (max 1 (36 - (2 * a.sa_depth)))
          name a.sa_count (a.sa_total /. 1e3)
          (safe_div (a.sa_total /. 1e3) (float_of_int a.sa_count)))
      rows
  end

let pp_metrics ppf () =
  let s = Metrics.snapshot () in
  (* hit/miss counter pairs render as caches with their rates *)
  let counters = s.Metrics.counters in
  let strip name suffix =
    let n = String.length name and k = String.length suffix in
    if n > k && String.sub name (n - k) k = suffix then
      Some (String.sub name 0 (n - k))
    else None
  in
  let caches =
    List.filter_map
      (fun (name, hits) ->
        match strip name ".hits" with
        | Some base -> (
            match List.assoc_opt (base ^ ".misses") counters with
            | Some misses -> Some (base, hits, misses)
            | None -> None)
        | None -> None)
      counters
  in
  let cache_names =
    List.concat_map (fun (b, _, _) -> [ b ^ ".hits"; b ^ ".misses" ]) caches
  in
  (* log-event counters get their own one-line rendering below *)
  let is_log_counter n =
    String.length n > 11 && String.sub n 0 11 = "log.events."
  in
  let log_counts = List.filter (fun (n, _) -> is_log_counter n) counters in
  let plain =
    List.filter
      (fun (n, _) -> (not (List.mem n cache_names)) && not (is_log_counter n))
      counters
  in
  if log_counts <> [] then begin
    Format.fprintf ppf "log events:";
    List.iter
      (fun lvl ->
        match List.assoc_opt ("log.events." ^ lvl) log_counts with
        | Some v -> Format.fprintf ppf "  %s %d" lvl v
        | None -> ())
      [ "debug"; "info"; "warn"; "error" ];
    Format.fprintf ppf "@."
  end;
  if caches <> [] then begin
    Format.fprintf ppf "caches:@.";
    List.iter
      (fun (base, hits, misses) ->
        let rate =
          safe_div (100. *. float_of_int hits) (float_of_int (hits + misses))
        in
        Format.fprintf ppf "  %-28s %9d hits %9d misses  %5.1f%%@." base hits
          misses rate)
      caches
  end;
  if plain <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %12d@." name v)
      plain
  end;
  if s.Metrics.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) ->
        if Float.is_finite v then Format.fprintf ppf "  %-40s %12g@." name v
        else Format.fprintf ppf "  %-40s %12s@." name "n/a")
      s.Metrics.gauges
  end;
  if s.Metrics.histograms <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (name, (h : Metrics.histogram_snapshot)) ->
        if h.Metrics.h_count = 0 then
          Format.fprintf ppf "  %-40s (empty)@." name
        else
          Format.fprintf ppf
            "  %-40s count %d  mean %a  min %a  max %a  p50 %a  p95 %a  \
             p99 %a@."
            name h.Metrics.h_count pp_num
            (safe_div h.Metrics.h_sum (float_of_int h.Metrics.h_count))
            pp_num h.Metrics.h_min pp_num h.Metrics.h_max pp_num
            h.Metrics.h_p50 pp_num h.Metrics.h_p95 pp_num h.Metrics.h_p99)
      s.Metrics.histograms
  end

let pp_summary ppf () =
  let evs = Trace.events () in
  if evs <> [] then pp_spans ppf evs;
  pp_metrics ppf ()
