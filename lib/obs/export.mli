(** Sinks for the trace buffers and the metrics registry.

    Three views of one instrumentation layer:

    - {!chrome_trace}: Chrome trace-event JSON (an object with a
      ["traceEvents"] array of complete — ["ph": "X"] — events),
      loadable in Perfetto / [chrome://tracing];
    - {!metrics}: machine-readable JSON of every registered counter,
      gauge and histogram;
    - {!pp_summary}: the human view — span wall-clock aggregated by
      name, cache hit rates (from ["X.hits"]/["X.misses"] counter
      pairs), then the remaining metrics. *)

val chrome_trace : unit -> Json.t
(** The current {!Trace.events} as a Chrome trace-event object. Span
    attributes become the event's ["args"]. After the span events, one
    final-value counter sample (["ph": "C"], [tid] 0) is emitted per
    tracked cross-cutting counter — [cache.hits], [cache.misses],
    [cache.evictions], [pool.tasks] — so Perfetto shows the run's
    totals as counter tracks. *)

val metrics : unit -> Json.t
(** The current {!Metrics.snapshot} as
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val write_chrome_trace : path:string -> unit -> unit
val write_metrics : path:string -> unit -> unit

val pp_spans : Format.formatter -> Trace.event list -> unit
(** Aggregate the given events by span name — count, total and mean
    wall-clock — indented by the minimum depth each name occurs at, in
    first-start order. *)

val pp_metrics : Format.formatter -> unit -> unit
(** Log-event counts per level (one line, from the [log.events.*]
    counters), cache counters (hit/miss pairs) with rates, then plain
    counters, gauges and histograms. Sections with nothing registered
    are omitted. *)

val pp_summary : Format.formatter -> unit -> unit
(** {!pp_spans} of the current trace (when any events were recorded)
    followed by {!pp_metrics}. *)
