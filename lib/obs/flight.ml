(* The flight recorder: a bounded per-domain ring of the most recent
   spans and log events, retained even when no file sink is installed,
   plus the machinery to dump a post-mortem bundle when the process is
   about to die. Rings follow the trace-buffer ownership model: only
   the owning domain pushes, the registry (mutex-protected, touched at
   ring creation and at export) keeps every domain's ring reachable
   after the domain is gone. *)

let epoch = Unix.gettimeofday ()

type span_entry = {
  sp_name : string;
  sp_id : int;
  sp_ts : float;
  sp_dur : float;
  sp_tid : int;
  sp_depth : int;
  sp_attrs : (string * string) list;
}

type log_entry = {
  lg_level : string;
  lg_scope : string;
  lg_msg : string;
  lg_ts : float;
  lg_tid : int;
  lg_span : int;
  lg_attrs : (string * string) list;
}

type entry = Span of span_entry | Log of log_entry

let entry_ts = function Span s -> s.sp_ts | Log l -> l.lg_ts

let default_capacity = 256
let capacity = Atomic.make default_capacity

let set_capacity n = Atomic.set capacity (max 1 n)

let set_enabled b = Gate.set Gate.flight_bit b
let enabled () = Gate.flight_on ()

type ring = {
  r_tid : int;
  mutable slots : entry option array;
  mutable pos : int;  (* next write index *)
  mutable total : int;  (* pushes over the ring's lifetime *)
}

let registry_lock = Mutex.create ()
let registry : ring list ref = ref []

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          r_tid = (Domain.self () :> int);
          slots = Array.make (Atomic.get capacity) None;
          pos = 0;
          total = 0;
        }
      in
      Mutex.protect registry_lock (fun () -> registry := r :: !registry);
      r)

let push e =
  let r = Domain.DLS.get ring_key in
  let cap = Array.length r.slots in
  r.slots.(r.pos) <- Some e;
  r.pos <- (r.pos + 1) mod cap;
  r.total <- r.total + 1

let record_span s = push (Span s)
let record_log l = push (Log l)

let all_rings () = Mutex.protect registry_lock (fun () -> !registry)

(* Chronological contents of one ring: when it has wrapped, the oldest
   retained entry sits at the write cursor. *)
let ring_entries r =
  let cap = Array.length r.slots in
  let n = min r.total cap in
  let start = if r.total <= cap then 0 else r.pos in
  List.init n (fun i ->
      match r.slots.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let entry_tid = function Span s -> s.sp_tid | Log l -> l.lg_tid

let entries () =
  all_rings ()
  |> List.concat_map ring_entries
  |> List.stable_sort (fun a b ->
         match compare (entry_tid a) (entry_tid b) with
         | 0 -> compare (entry_ts a) (entry_ts b)
         | c -> c)

let reset () =
  let cap = Atomic.get capacity in
  List.iter
    (fun r ->
      r.slots <- Array.make cap None;
      r.pos <- 0;
      r.total <- 0)
    (all_rings ())

(* --- provenance and extra bundle sections ------------------------------- *)

let state_lock = Mutex.create ()
let provenance_ref : Json.t option ref = ref None
let sections : (string * (unit -> Json.t)) list ref = ref []

let set_provenance p = Mutex.protect state_lock (fun () -> provenance_ref := p)
let provenance () = Mutex.protect state_lock (fun () -> !provenance_ref)

let add_section name f =
  Mutex.protect state_lock (fun () ->
      sections := (name, f) :: List.remove_assoc name !sections)

(* --- crash bundles ------------------------------------------------------ *)

let attrs_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)

let entry_json = function
  | Span s ->
      Json.Obj
        [
          ("kind", Json.String "span");
          ("name", Json.String s.sp_name);
          ("id", Json.Int s.sp_id);
          ("ts", Json.Float s.sp_ts);
          ("dur", Json.Float s.sp_dur);
          ("tid", Json.Int s.sp_tid);
          ("depth", Json.Int s.sp_depth);
          ("attrs", attrs_json s.sp_attrs);
        ]
  | Log l ->
      Json.Obj
        [
          ("kind", Json.String "log");
          ("level", Json.String l.lg_level);
          ("scope", Json.String l.lg_scope);
          ("msg", Json.String l.lg_msg);
          ("ts", Json.Float l.lg_ts);
          ("tid", Json.Int l.lg_tid);
          ("span", Json.Int l.lg_span);
          ("attrs", attrs_json l.lg_attrs);
        ]

let bundle_format_version = 1

let bundle ~reason () =
  let secs =
    Mutex.protect state_lock (fun () -> !sections)
    |> List.rev_map (fun (name, f) ->
           ( name,
             match f () with
             | j -> j
             | exception e ->
                 Json.Obj [ ("error", Json.String (Printexc.to_string e)) ] ))
  in
  Json.Obj
    ([
       ("bundle_format_version", Json.Int bundle_format_version);
       ("reason", Json.String reason);
       ("written_unix_time", Json.Float (Unix.gettimeofday ()));
       ( "provenance",
         match provenance () with Some p -> p | None -> Json.Null );
       ("entries", Json.List (List.map entry_json (entries ())));
       ("metrics", Metrics_json.current ());
     ]
    @ secs)

let crash_dir () =
  match Sys.getenv_opt "CFDC_CRASH_DIR" with
  | Some d when d <> "" -> d
  | _ -> "crash-reports"

let crash_seq = Atomic.make 0

(* Best-effort by design: a crash writer that raises while the process
   is dying would mask the original failure, so every error path turns
   into [None]. The temp-file + rename keeps an interrupted dump from
   leaving a truncated bundle behind. *)
let write_crash ?dir ~reason () =
  try
    let dir = match dir with Some d -> d | None -> crash_dir () in
    (try Unix.mkdir dir 0o755
     with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ());
    let name =
      Printf.sprintf "crash-%.0f-p%d-%d.json"
        (Unix.gettimeofday () *. 1e3)
        (Unix.getpid ())
        (Atomic.fetch_and_add crash_seq 1)
    in
    let path = Filename.concat dir name in
    let tmp = path ^ ".tmp" in
    Json.to_file tmp (bundle ~reason ());
    Sys.rename tmp path;
    Some path
  with _ -> None
