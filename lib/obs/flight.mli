(** The flight recorder: last-N spans and log events, crash bundles.

    File tracing ({!Trace}) keeps {e everything} and costs memory
    proportional to the run; the flight recorder keeps only the most
    recent [capacity] entries per domain in a fixed ring, cheap enough
    to leave on for whole runs. When the process is about to die — an
    uncaught exception at the CLI top level, a fatal diagnostic — the
    recorder dumps a post-mortem bundle: the retained spans and log
    events, the metrics snapshot, the run's provenance manifest, and
    any registered extra sections (e.g. cache statistics).

    Rings follow the trace-buffer ownership model: only the owning
    domain pushes; {!entries} and {!bundle} read every domain's ring
    and are meant to run while workers are quiescent (pool generations
    are bracketed by the pool's own mutex) or when the process is
    dying anyway. *)

type span_entry = {
  sp_name : string;
  sp_id : int;  (** process-unique span id, shared with {!Trace.event} *)
  sp_ts : float;  (** span start, µs since {!epoch} *)
  sp_dur : float;  (** µs *)
  sp_tid : int;
  sp_depth : int;
  sp_attrs : (string * string) list;
}

type log_entry = {
  lg_level : string;
  lg_scope : string;
  lg_msg : string;
  lg_ts : float;  (** µs since {!epoch} *)
  lg_tid : int;
  lg_span : int;  (** enclosing span id; [0] when none was open *)
  lg_attrs : (string * string) list;
}

type entry = Span of span_entry | Log of log_entry

val epoch : float
(** [Unix.gettimeofday] at module initialization, seconds. {!Trace}
    aliases this so span and log timestamps share one origin. *)

val set_enabled : bool -> unit
(** Toggle the recorder ({!Gate.flight_bit}). Off by default; when off,
    producers pay only the shared one-branch gate. *)

val enabled : unit -> bool

val default_capacity : int
(** 256 entries per domain. *)

val set_capacity : int -> unit
(** Capacity for rings created after this call (and for {!reset});
    existing rings keep their size until reset. Clamped to [>= 1]. *)

val record_span : span_entry -> unit
(** Push into the calling domain's ring. Called by {!Trace.with_span}
    when the recorder is on; not meant for direct use. *)

val record_log : log_entry -> unit
(** Push into the calling domain's ring. Called by {!Log}. *)

val entries : unit -> entry list
(** Every retained entry across all domains, oldest first per domain,
    sorted by [(tid, ts)]. *)

val reset : unit -> unit
(** Empty every ring (resizing to the current capacity). Provenance
    and sections are kept. *)

val set_provenance : Json.t option -> unit
(** The run's provenance manifest, embedded verbatim in every bundle
    (see [Cfd_core.Version.manifest]). *)

val provenance : unit -> Json.t option

val add_section : string -> (unit -> Json.t) -> unit
(** Register an extra top-level bundle section, computed at dump time
    (e.g. ["cache"] → live store statistics). Re-registering a name
    replaces it. A section provider that raises contributes
    [{"error": ...}] instead of aborting the dump. *)

val bundle_format_version : int

val bundle : reason:string -> unit -> Json.t
(** The post-mortem bundle: format version, [reason], wall time,
    provenance, retained entries, metrics snapshot, extra sections. *)

val crash_dir : unit -> string
(** [CFDC_CRASH_DIR] when set and non-empty, else ["crash-reports"]. *)

val write_crash : ?dir:string -> reason:string -> unit -> string option
(** Write {!bundle} to a fresh file under [dir] (default
    {!crash_dir}), creating the directory if needed, via temp-file +
    rename so an interrupted dump never leaves a truncated bundle.
    Returns the path, or [None] if anything failed — the crash writer
    never raises (it runs while the process is dying). *)
