(* One atomic word shared by every instrumentation producer so the
   disabled hot path — tracing off AND the flight recorder off — stays
   exactly one atomic load plus a compare-to-zero, no matter how many
   sinks exist. Bit 0 is file tracing (Trace), bit 1 the flight
   recorder (Flight); producers that need either test [any]. *)

let trace_bit = 1
let flight_bit = 2
let flags = Atomic.make 0

let set bit on =
  let rec go () =
    let cur = Atomic.get flags in
    let next = if on then cur lor bit else cur land lnot bit in
    if not (Atomic.compare_and_set flags cur next) then go ()
  in
  go ()

let trace_on () = Atomic.get flags land trace_bit <> 0
let flight_on () = Atomic.get flags land flight_bit <> 0
let any () = Atomic.get flags <> 0
