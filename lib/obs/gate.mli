(** The shared instrumentation gate.

    Span producers ({!Trace.with_span}, the pool's per-task guard) must
    record whenever {e either} file tracing or the flight recorder is
    enabled, and must cost one atomic-load branch when both are off.
    This module is that single word: bit flags for each consumer,
    [any () = false] is the fast path. Set through
    {!Trace.set_enabled} / {!Flight.set_enabled}, never directly. *)

val trace_bit : int
val flight_bit : int

val set : int -> bool -> unit
(** [set bit on] atomically sets or clears [bit] (CAS loop). *)

val trace_on : unit -> bool
val flight_on : unit -> bool

val any : unit -> bool
(** [true] when any consumer wants span events — the producers' guard. *)
