type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    (* 17 significant digits is the shortest precision that round-trips
       every finite double through [float_of_string]. *)
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s;
    (* "%g" prints integral floats without a point; force one so the
       value parses back as it was written. *)
    if String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s then
      Buffer.add_string buf ".0"
  end

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  add buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                (hex s.[!pos] lsl 12) lor (hex s.[!pos + 1] lsl 8)
                lor (hex s.[!pos + 2] lsl 4)
                lor hex s.[!pos + 3]
              in
              pos := !pos + 4;
              (match Uchar.of_int code with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> fail "bad \\u code point");
              go ()
          | _ -> fail "bad escape character")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

let of_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents
