(** A minimal JSON tree, printer and parser.

    The observability sinks (Chrome trace events, the metrics dump) are
    plain JSON files; this module is the single place that knows how to
    escape and how to parse them back, so the test suite and the CI
    smoke can round-trip what the exporters wrote without an external
    dependency. Not a general-purpose JSON library: numbers are OCaml
    [int]/[float], strings are UTF-8, and the parser rejects anything
    the printer would not emit (trailing garbage, unterminated
    literals). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Non-finite floats render as [null] (JSON has no
    NaN/infinity); finite floats always carry a decimal point or
    exponent so they parse back as numbers. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val parse : string -> (t, string) result
(** Parse one JSON value spanning the whole input. Errors carry the
    byte offset of the failure. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any; [None] on
    non-objects. *)

val to_file : string -> t -> unit
(** Write the compact rendering, with a trailing newline. *)

val of_file : string -> (t, string) result
(** {!parse} the entire contents of a file. *)
