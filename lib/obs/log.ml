type level = Debug | Info | Warn | Error

let level_index = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* Warn by default: warnings and errors have always reached stderr
   (the cache's corrupt-entry diagnostics), so they stay on; info and
   debug pay only the threshold load below until a caller lowers it. *)
let min_level = Atomic.make (level_index Warn)
let set_level l = Atomic.set min_level (level_index l)
let level () =
  match Atomic.get min_level with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let enabled_for l = level_index l >= Atomic.get min_level

(* Mirror: events at [Warn]+ echo to stderr as "cfdc: <scope>: <msg>",
   byte-compatible with the ad-hoc warnings this module replaced (the
   cache CLI tests strip exactly that prefix). *)
let mirror_level = Atomic.make (level_index Warn)
let set_mirror = function
  | None -> Atomic.set mirror_level max_int
  | Some l -> Atomic.set mirror_level (level_index l)

(* Per-level counters, registered lazily so a run that never logs at a
   level leaves no trace of it in the metrics dump (metric registration
   is observable through [--metrics]). *)
let counters =
  [|
    lazy (Metrics.counter "log.events.debug");
    lazy (Metrics.counter "log.events.info");
    lazy (Metrics.counter "log.events.warn");
    lazy (Metrics.counter "log.events.error");
  |]

(* --- the JSON-lines sink ------------------------------------------------ *)

let sink_lock = Mutex.create ()
let sink : out_channel option ref = ref None

let set_sink oc =
  Mutex.protect sink_lock (fun () ->
      (match !sink with Some old -> close_out_noerr old | None -> ());
      sink := oc)

let line_json ~level ~scope ~msg ~ts ~tid ~span ~attrs =
  Json.Obj
    ([
       ("ts", Json.Float ts);
       ("level", Json.String (level_name level));
       ("scope", Json.String scope);
       ("msg", Json.String msg);
       ("tid", Json.Int tid);
       ("span", Json.Int span);
     ]
    @
    if attrs = [] then []
    else
      [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)) ]
    )

let emit level ?span ~scope ~attrs msg =
  let tid = (Domain.self () :> int) in
  let ts = (Unix.gettimeofday () -. Flight.epoch) *. 1e6 in
  let span =
    match span with Some id -> id | None -> Trace.current_span ()
  in
  Metrics.incr (Lazy.force counters.(level_index level));
  if level_index level >= Atomic.get mirror_level then
    Printf.eprintf "cfdc: %s: %s\n%!" scope msg;
  if Gate.flight_on () then
    Flight.record_log
      {
        Flight.lg_level = level_name level;
        lg_scope = scope;
        lg_msg = msg;
        lg_ts = ts;
        lg_tid = tid;
        lg_span = span;
        lg_attrs = attrs;
      };
  match !sink with
  | None -> ()
  | Some _ ->
      (* Re-check under the lock: [set_sink None] may race the fast
         path above, and line writes from worker domains interleave. *)
      Mutex.protect sink_lock (fun () ->
          match !sink with
          | None -> ()
          | Some oc ->
              output_string oc
                (Json.to_string
                   (line_json ~level ~scope ~msg ~ts ~tid ~span ~attrs));
              output_char oc '\n';
              flush oc)

let msg level ?span ?(attrs = []) ~scope text =
  if enabled_for level then emit level ?span ~scope ~attrs text

let logf level ?span ?(attrs = []) ~scope fmt =
  if not (enabled_for level) then Printf.ikfprintf ignore () fmt
  else Printf.ksprintf (fun m -> emit level ?span ~scope ~attrs m) fmt

let debug ?span ?attrs ~scope fmt = logf Debug ?span ?attrs ~scope fmt
let info ?span ?attrs ~scope fmt = logf Info ?span ?attrs ~scope fmt
let warn ?span ?attrs ~scope fmt = logf Warn ?span ?attrs ~scope fmt
let error ?span ?attrs ~scope fmt = logf Error ?span ?attrs ~scope fmt
