(** The structured event log: leveled, Domain-safe, span-correlated.

    One event is a (level, scope, message, attributes) tuple stamped
    with the recording domain and the id of the innermost open span
    ({!Trace.current_span}), so a warning emitted three stages deep in
    a sweep lands next to its span in the flight ring and the JSON
    sink. Events flow to up to four places, each independently gated:

    - the per-level counters [log.events.debug|info|warn|error]
      (registered lazily, surfaced by the human summary);
    - stderr, for events at {!set_mirror} level and above (default
      [Warn]) as ["cfdc: <scope>: <msg>"] — byte-compatible with the
      ad-hoc warnings this module replaced;
    - the flight ring ({!Flight.record_log}), when the recorder is on;
    - the JSON-lines sink ({!set_sink}), one object per line.

    Cost discipline: an event below the {!set_level} threshold
    (default [Warn]) costs one atomic load and a compare — {!msg}
    allocates nothing, and the format variants never build their
    message. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Inverse of {!level_name} (also accepts ["warning"]). *)

val set_level : level -> unit
(** Minimum recorded level. Events below it are dropped entirely —
    not counted, not mirrored, not sunk. Default [Warn]. *)

val level : unit -> level

val set_mirror : level option -> unit
(** Minimum level echoed to stderr; [None] silences the mirror.
    Default [Some Warn], which preserves the historical behaviour of
    warnings printing unconditionally. *)

val set_sink : out_channel option -> unit
(** Install (or remove, closing the previous channel) the JSON-lines
    sink. Lines are written under a mutex and flushed per event, so
    worker-domain events interleave whole. *)

val msg : level -> ?span:int -> ?attrs:(string * string) list ->
  scope:string -> string -> unit
(** Record a pre-built message. [?span] overrides the
    {!Trace.current_span} correlation (0 = none). *)

val logf : level -> ?span:int -> ?attrs:(string * string) list ->
  scope:string -> ('a, unit, string, unit) format4 -> 'a
(** [Printf]-style variant of {!msg}; the message is only formatted
    when the level is enabled. *)

val debug : ?span:int -> ?attrs:(string * string) list -> scope:string ->
  ('a, unit, string, unit) format4 -> 'a

val info : ?span:int -> ?attrs:(string * string) list -> scope:string ->
  ('a, unit, string, unit) format4 -> 'a

val warn : ?span:int -> ?attrs:(string * string) list -> scope:string ->
  ('a, unit, string, unit) format4 -> 'a

val error : ?span:int -> ?attrs:(string * string) list -> scope:string ->
  ('a, unit, string, unit) format4 -> 'a
