exception Kind_mismatch of string

type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

(* Quantiles come from fixed geometric buckets: bucket [i] counts
   observations in (2^((i-33)/2), 2^((i-32)/2)], i.e. two buckets per
   octave from 2^-16 up to 2^47, with underflow (v <= 2^-16, including
   zero and negatives) in bucket 0 and overflow in the last bucket.
   Estimates are therefore exact to within a factor of sqrt(2), and are
   clamped to the observed [min, max] so degenerate histograms (all
   observations equal) report exact percentiles. *)
let n_buckets = 128
let bucket_edge i = Float.pow 2.0 (float_of_int (i - 32) /. 2.0)

let bucket_of v =
  if not (v > 0.0) then 0
  else
    let i = 32 + int_of_float (Float.ceil (2.0 *. Float.log2 v)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* Snapshots sort each section by metric name: registration order is a
   program-load accident (which module happened to initialise first),
   and exports built on snapshots must be byte-deterministic across
   runs for the hit≡miss and jobs-equivalence assertions. The insertion
   list only enumerates live metrics for [reset]. *)
let lock = Mutex.create ()
let by_name : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : metric list ref = ref []

let register name make classify =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some m -> (
          match classify m with
          | Some v -> v
          | None -> raise (Kind_mismatch name))
      | None ->
          let m, v = make () in
          Hashtbl.replace by_name name m;
          order := m :: !order;
          v)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; c = Atomic.make 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let incr c = Atomic.incr c.c
let add c n = ignore (Atomic.fetch_and_add c.c n)
let counter_value c = Atomic.get c.c
let counter_name c = c.c_name

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g = Atomic.make 0.0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let histogram name =
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          h_lock = Mutex.create ();
          count = 0;
          sum = 0.0;
          min_v = Float.nan;
          max_v = Float.nan;
          buckets = Array.make n_buckets 0;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  Mutex.protect h.h_lock (fun () ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      h.min_v <- (if h.count = 1 then v else Float.min h.min_v v);
      h.max_v <- (if h.count = 1 then v else Float.max h.max_v v);
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1)

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
}

(* Upper edge of the bucket holding the observation of the given rank,
   clamped into [min_v, max_v]. Call with h_lock held. *)
let quantile_locked h q =
  if h.count = 0 then Float.nan
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < n_buckets do
      cum := !cum + h.buckets.(!i);
      i := !i + 1
    done;
    let est = bucket_edge (!i - 1) in
    Float.min h.max_v (Float.max h.min_v est)
  end

let histogram_snapshot h =
  Mutex.protect h.h_lock (fun () ->
      {
        h_count = h.count;
        h_sum = h.sum;
        h_min = h.min_v;
        h_max = h.max_v;
        h_p50 = quantile_locked h 0.50;
        h_p95 = quantile_locked h 0.95;
        h_p99 = quantile_locked h 0.99;
      })

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let snapshot () =
  let metrics = Mutex.protect lock (fun () -> List.rev !order) in
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  {
    counters =
      by_name
        (List.filter_map
           (function
             | Counter c -> Some (c.c_name, counter_value c) | _ -> None)
           metrics);
    gauges =
      by_name
        (List.filter_map
           (function Gauge g -> Some (g.g_name, gauge_value g) | _ -> None)
           metrics);
    histograms =
      by_name
        (List.filter_map
           (function
             | Histogram h -> Some (h.h_name, histogram_snapshot h) | _ -> None)
           metrics);
  }

let reset () =
  let metrics = Mutex.protect lock (fun () -> !order) in
  List.iter
    (function
      | Counter c -> Atomic.set c.c 0
      | Gauge g -> Atomic.set g.g 0.0
      | Histogram h ->
          Mutex.protect h.h_lock (fun () ->
              h.count <- 0;
              h.sum <- 0.0;
              h.min_v <- Float.nan;
              h.max_v <- Float.nan;
              Array.fill h.buckets 0 n_buckets 0))
    metrics
