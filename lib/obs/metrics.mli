(** Typed metrics registry: counters, gauges and histograms.

    One process-wide registry, safe to update from any [Domain]:
    counters and gauges are atomics, histograms take a per-histogram
    mutex (they are low-frequency by design — observe per run, not per
    iteration). Metrics are registered on first use and live for the
    process; [metric name] is get-or-create, so two modules naming the
    same counter share one cell and hot paths can cache the handle at
    module initialization.

    Naming convention (see docs/OBSERVABILITY.md for the full catalogue):
    dot-separated lowercase, subsystem first — ["poly.eliminate.hits"],
    ["exec.statements"], ["sim.dma.bytes_in"]. The pair ["X.hits"] /
    ["X.misses"] is recognized by the summary renderer as a cache and
    reported with its hit rate. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the counter registered under [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : string -> gauge
(** Get or create the gauge registered under [name]. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram
(** Get or create the histogram registered under [name]. Histograms
    record count / sum / min / max of their observations plus geometric
    buckets (two per octave) from which p50/p95/p99 are estimated. *)

val observe : histogram -> float -> unit

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when the histogram is empty *)
  h_max : float;  (** [nan] when the histogram is empty *)
  h_p50 : float;
      (** median estimate, exact to within a factor of sqrt(2) and
          clamped to [[h_min, h_max]]; [nan] when empty *)
  h_p95 : float;  (** 95th percentile estimate; [nan] when empty *)
  h_p99 : float;  (** 99th percentile estimate; [nan] when empty *)
}

val histogram_snapshot : histogram -> histogram_snapshot

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

val snapshot : unit -> snapshot
(** Every registered metric, each section sorted by metric name so
    snapshot-derived exports are byte-deterministic across runs
    (registration order is a program-load accident). *)

val reset : unit -> unit
(** Zero every counter and gauge and empty every histogram. The
    metrics stay registered (handles cached by hot paths remain
    valid). *)

exception Kind_mismatch of string
(** Raised when [name] is already registered as a different kind, e.g.
    [gauge "x"] after [counter "x"]. *)
