(* The one JSON rendering of a metrics snapshot, shared by the export
   sinks and the flight recorder's crash bundles so both artifacts use
   identical field names. *)

let histogram (h : Metrics.histogram_snapshot) =
  let num f = if Float.is_finite f then Json.Float f else Json.Null in
  Json.Obj
    [
      ("count", Json.Int h.Metrics.h_count);
      ("sum", num h.Metrics.h_sum);
      ("min", num h.Metrics.h_min);
      ("max", num h.Metrics.h_max);
      ( "mean",
        if h.Metrics.h_count = 0 then Json.Null
        else num (h.Metrics.h_sum /. float_of_int h.Metrics.h_count) );
      ("p50", num h.Metrics.h_p50);
      ("p95", num h.Metrics.h_p95);
      ("p99", num h.Metrics.h_p99);
    ]

let snapshot (s : Metrics.snapshot) =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters)
      );
      ( "gauges",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.Metrics.gauges)
      );
      ( "histograms",
        Json.Obj
          (List.map (fun (n, h) -> (n, histogram h)) s.Metrics.histograms) );
    ]

let current () = snapshot (Metrics.snapshot ())
