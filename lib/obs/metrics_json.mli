(** JSON rendering of {!Metrics} snapshots.

    Factored out of {!Export} so the flight recorder's crash bundles
    and the [--metrics] sink agree on field names:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with
    non-finite numbers rendered as [null]. *)

val histogram : Metrics.histogram_snapshot -> Json.t
val snapshot : Metrics.snapshot -> Json.t

val current : unit -> Json.t
(** [snapshot (Metrics.snapshot ())]. *)
