(* Device-cycle timeline: an event store whose timestamp domain is the
   performance model's cycle clock, not wall time. [Trace] answers
   "where did the host's microseconds go"; this store answers "where do
   the accelerator's cycles go" — phases (complete begin/end intervals
   on a named track) and counter samples, captured by the producer
   behind one branch and exported as a Chrome trace with one virtual
   tid per track.

   The gate is its own atomic flag, not a [Gate] bit: [Gate.any]
   drives the host-flow producers ([Trace.with_span]), and enabling the
   cycle timeline must not start recording host spans. *)

type phase = {
  ph_track : string;
  ph_name : string;
  ph_start : int;
  ph_dur : int;
  ph_attrs : (string * string) list;
}

type sample = {
  sm_track : string;
  sm_series : string;
  sm_cycle : int;
  sm_value : int;
}

let enabled_flag = Atomic.make false
let set_enabled on = Atomic.set enabled_flag on
let enabled () = Atomic.get enabled_flag

(* One global store under a mutex: producers emit from the simulator's
   single-threaded model loop, so contention is nil; the lock only
   guards against a concurrent capture from another domain. *)
let lock = Mutex.create ()
let phases_rev : phase list ref = ref []
let samples_rev : sample list ref = ref []

let reset () =
  Mutex.protect lock (fun () ->
      phases_rev := [];
      samples_rev := [])

let phase ~track ~name ~start ~dur ?(attrs = []) () =
  if Atomic.get enabled_flag then
    Mutex.protect lock (fun () ->
        phases_rev :=
          { ph_track = track; ph_name = name; ph_start = start; ph_dur = dur;
            ph_attrs = attrs }
          :: !phases_rev)

let sample ~track ~series ~cycle ~value =
  if Atomic.get enabled_flag then
    Mutex.protect lock (fun () ->
        samples_rev :=
          { sm_track = track; sm_series = series; sm_cycle = cycle;
            sm_value = value }
          :: !samples_rev)

type capture = { cap_phases : phase list; cap_samples : sample list }

let capture () =
  Mutex.protect lock (fun () ->
      {
        cap_phases = List.rev !phases_rev;
        cap_samples = List.rev !samples_rev;
      })

let prefixed prefix c =
  let p t = prefix ^ "/" ^ t in
  {
    cap_phases =
      List.map (fun ph -> { ph with ph_track = p ph.ph_track }) c.cap_phases;
    cap_samples =
      List.map (fun s -> { s with sm_track = p s.sm_track }) c.cap_samples;
  }

let merge cs =
  {
    cap_phases = List.concat_map (fun c -> c.cap_phases) cs;
    cap_samples = List.concat_map (fun c -> c.cap_samples) cs;
  }

let tracks c =
  List.sort_uniq compare
    (List.map (fun p -> p.ph_track) c.cap_phases
    @ List.map (fun s -> s.sm_track) c.cap_samples)

let busy c track =
  List.fold_left
    (fun acc p -> if p.ph_track = track then acc + p.ph_dur else acc)
    0 c.cap_phases

let series_stats c =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let key = (s.sm_track, s.sm_series) in
      let peak, sum, n =
        Option.value (Hashtbl.find_opt tbl key) ~default:(min_int, 0, 0)
      in
      Hashtbl.replace tbl key (max peak s.sm_value, sum + s.sm_value, n + 1))
    c.cap_samples;
  (* sorted by (track, series) so downstream renderings are
     byte-deterministic no matter the sample interleaving *)
  List.sort compare
    (Hashtbl.fold
       (fun (t, series) (peak, sum, n) acc ->
         (t, series, peak, float_of_int sum /. float_of_int n) :: acc)
       tbl [])

(* --- Chrome trace export ------------------------------------------------ *)

(* Virtual tids are assigned over the *sorted* track-name list, and the
   events keep their (deterministic) emission order, so the rendered
   JSON is byte-identical across runs — the property the hit≡miss and
   jobs-equivalence assertions lean on. The ts field carries the cycle
   count directly; displayTimeUnit is nominal ("ns" = 1 cycle). *)
let chrome_events c =
  let tids = List.mapi (fun i t -> (t, i + 1)) (tracks c) in
  let tid t = List.assoc t tids in
  let meta =
    List.map
      (fun (t, id) ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 1);
            ("tid", Json.Int id);
            ("args", Json.Obj [ ("name", Json.String t) ]);
          ])
      tids
  in
  let phases =
    List.map
      (fun p ->
        Json.Obj
          ([
             ("name", Json.String p.ph_name);
             ("cat", Json.String "cycles");
             ("ph", Json.String "X");
             ("ts", Json.Int p.ph_start);
             ("dur", Json.Int p.ph_dur);
             ("pid", Json.Int 1);
             ("tid", Json.Int (tid p.ph_track));
           ]
          @
          match p.ph_attrs with
          | [] -> []
          | attrs ->
              [
                ( "args",
                  Json.Obj
                    (List.map (fun (k, v) -> (k, Json.String v)) attrs) );
              ]))
      c.cap_phases
  in
  let samples =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.String s.sm_series);
            ("cat", Json.String "cycles");
            ("ph", Json.String "C");
            ("ts", Json.Int s.sm_cycle);
            ("pid", Json.Int 1);
            ("tid", Json.Int (tid s.sm_track));
            ("args", Json.Obj [ (s.sm_series, Json.Int s.sm_value) ]);
          ])
      c.cap_samples
  in
  meta @ phases @ samples

let chrome_trace c =
  Json.Obj
    [
      ("traceEvents", Json.List (chrome_events c));
      ("displayTimeUnit", Json.String "ns");
    ]
