(** Device-cycle timeline: event store on the performance model's cycle
    clock.

    Where {!Trace} records host wall-time spans, this store records
    what the {e simulated accelerator} does cycle by cycle: phases
    (complete intervals with a start cycle and a duration, on a named
    track — one track per accelerator, DMA engine, controller or PLM
    buffer) and counter samples (per-buffer port occupancy). Producers
    ([Sim.Perf]) emit behind a single branch on {!enabled}, so the
    disabled path is one atomic load — bit-identical results and zero
    allocation, same contract as the flight recorder.

    The gate is deliberately {e not} a [Gate] bit: [Gate.any] turns on
    the host-flow span producers, and capturing a cycle timeline must
    not also start recording host spans.

    Track naming (see docs/OBSERVABILITY.md for the catalogue):
    ["host"] the critical path (its durations sum exactly to
    [hw_result.total_cycles]), ["dma"] the transfer engine, ["ctrl"]
    the AXI controller rounds, ["acc<i>"] each accelerator instance,
    ["plm:<unit>"] the PLM port-occupancy counter tracks. *)

type phase = {
  ph_track : string;
  ph_name : string;
  ph_start : int;  (** cycle the phase begins *)
  ph_dur : int;  (** duration in cycles *)
  ph_attrs : (string * string) list;
}

type sample = {
  sm_track : string;
  sm_series : string;
  sm_cycle : int;
  sm_value : int;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop every recorded phase and sample (the flag is unchanged). *)

val phase :
  track:string ->
  name:string ->
  start:int ->
  dur:int ->
  ?attrs:(string * string) list ->
  unit ->
  unit
(** Record a complete phase. No-op (one branch, no allocation) when
    disabled. *)

val sample : track:string -> series:string -> cycle:int -> value:int -> unit
(** Record a counter sample. No-op when disabled. *)

type capture = { cap_phases : phase list; cap_samples : sample list }
(** An immutable snapshot of the store, in emission order. *)

val capture : unit -> capture

val prefixed : string -> capture -> capture
(** Rename every track to ["<prefix>/<track>"] — used to merge multiple
    legs (plain vs overlapped) into one trace without tid collisions. *)

val merge : capture list -> capture

val tracks : capture -> string list
(** Distinct track names, sorted. *)

val busy : capture -> string -> int
(** Sum of phase durations on one track — the track's busy cycles. *)

val series_stats : capture -> (string * string * int * float) list
(** Per counter series: [(track, series, peak, mean)], sorted by
    (track, series). *)

val chrome_events : capture -> Json.t list
(** Chrome trace events: [ph:"M"] thread-name metadata (virtual tids
    assigned over the sorted track list, so the output is
    byte-deterministic), [ph:"X"] complete phases and [ph:"C"] counter
    samples, with the cycle count as the [ts] domain. *)

val chrome_trace : capture -> Json.t
(** [{"traceEvents": ..., "displayTimeUnit": "ns"}] — loadable in
    Perfetto; one "ns" reads as one cycle. *)
