type attr = string * string

type event = {
  ev_name : string;
  ev_id : int;
  ev_ts : float;
  ev_dur : float;
  ev_tid : int;
  ev_depth : int;
  ev_attrs : attr list;
}

let set_enabled b = Gate.set Gate.trace_bit b
let enabled () = Gate.trace_on ()
let instrumenting () = Gate.any ()
let epoch = Flight.epoch

(* Span ids are process-unique so a log event recorded anywhere in the
   process can name its enclosing span unambiguously, across domains
   and across both sinks (trace buffer and flight ring). Id 0 is
   reserved for "no span open". *)
let next_id = Atomic.make 1

(* One buffer per domain, reached through DLS so recording never takes a
   lock; the global registry (mutex-protected, touched only at buffer
   creation and at export) is what makes every domain's events visible
   after the domain is gone — the merge-at-join for pool workers. A
   buffer is only ever mutated by its owning domain; [events] reads
   other domains' buffers, which is safe here because export happens
   from the orchestrating domain while workers are quiescent (pool
   generations are bracketed by the pool's own mutex). *)
type buf = {
  tid : int;
  mutable evs : event list;  (* reversed *)
  mutable depth : int;
  mutable open_attrs : attr list ref list;  (* innermost first *)
  mutable open_ids : int list;  (* innermost first *)
  mutable last_ts : float;
}

let registry_lock = Mutex.create ()
let registry : buf list ref = ref []

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          evs = [];
          depth = 0;
          open_attrs = [];
          open_ids = [];
          last_ts = 0.0;
        }
      in
      Mutex.protect registry_lock (fun () -> registry := b :: !registry);
      b)

let current_span () =
  if not (Gate.any ()) then 0
  else
    match (Domain.DLS.get buf_key).open_ids with [] -> 0 | id :: _ -> id

let now_us b =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  (* Strictly increasing per buffer: survives clock steps and sub-µs
     span pairs, so per-tid [ts] monotonicity holds by construction. *)
  let t = if t <= b.last_ts then b.last_ts +. 0.001 else t in
  b.last_ts <- t;
  t

let record_span b name id attrs t0 depth =
  let t1 = now_us b in
  let dur = t1 -. t0 in
  if Gate.trace_on () then
    b.evs <-
      {
        ev_name = name;
        ev_id = id;
        ev_ts = t0;
        ev_dur = dur;
        ev_tid = b.tid;
        ev_depth = depth;
        ev_attrs = attrs;
      }
      :: b.evs;
  if Gate.flight_on () then
    Flight.record_span
      {
        Flight.sp_name = name;
        sp_id = id;
        sp_ts = t0;
        sp_dur = dur;
        sp_tid = b.tid;
        sp_depth = depth;
        sp_attrs = attrs;
      }

let with_span ?(attrs = []) name f =
  if not (Gate.any ()) then f ()
  else begin
    let b = Domain.DLS.get buf_key in
    let extra = ref [] in
    let depth = b.depth in
    let id = Atomic.fetch_and_add next_id 1 in
    b.depth <- depth + 1;
    b.open_attrs <- extra :: b.open_attrs;
    b.open_ids <- id :: b.open_ids;
    let t0 = now_us b in
    let close more =
      b.depth <- depth;
      (b.open_attrs <- (match b.open_attrs with [] -> [] | _ :: tl -> tl));
      (b.open_ids <- (match b.open_ids with [] -> [] | _ :: tl -> tl));
      record_span b name id (attrs @ List.rev !extra @ more) t0 depth
    in
    match f () with
    | v ->
        close [];
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        close [ ("error", Printexc.to_string e) ];
        Printexc.raise_with_backtrace e bt
  end

let span_attr k v =
  if Gate.any () then
    let b = Domain.DLS.get buf_key in
    match b.open_attrs with
    | [] -> ()
    | extra :: _ -> extra := (k, v) :: !extra

let all_bufs () = Mutex.protect registry_lock (fun () -> !registry)

let events () =
  all_bufs ()
  |> List.concat_map (fun b -> List.rev b.evs)
  |> List.sort (fun a b ->
         match compare a.ev_tid b.ev_tid with
         | 0 -> compare a.ev_ts b.ev_ts
         | c -> c)

let reset () = List.iter (fun b -> b.evs <- []) (all_bufs ())

let drain () =
  let evs = events () in
  reset ();
  evs
