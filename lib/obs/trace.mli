(** Hierarchical span tracing, safe across [Domain]s.

    A span is one timed region of the flow — a compile stage, a
    verifier rule family, a pool task, a simulated controller round —
    with a name, wall-clock start/duration, and key/value attributes.
    Spans nest: {!with_span} inside {!with_span} records the inner
    region as a child (by interval containment and the recorded
    depth).

    Tracing is off by default and costs exactly one atomic-load branch
    per {!with_span} when off — no allocation, no clock read, no
    buffer touch — so instrumented hot paths pay nothing until a sink
    is installed. The branch reads the {!Gate} shared with the flight
    recorder: when either consumer is on, spans are timed once and
    routed to the trace buffers ({!Gate.trace_on}) and/or the flight
    rings ({!Gate.flight_on}). When on, each domain appends to its own buffer
    (created on first use, registered globally), so worker domains
    record concurrently without contention; {!events} merges every
    domain's buffer, which subsumes the "merge at pool join" of
    short-lived workers — a worker's buffer outlives the worker.

    Timestamps are microseconds since {!epoch} and strictly increasing
    per domain (clamped against clock steps), so the exported Chrome
    trace has monotone [ts] per [tid]. *)

type attr = string * string

type event = {
  ev_name : string;
  ev_id : int;  (** process-unique span id; log events reference it *)
  ev_ts : float;  (** span start, µs since {!epoch} *)
  ev_dur : float;  (** wall-clock duration, µs *)
  ev_tid : int;  (** recording domain's id *)
  ev_depth : int;  (** nesting depth at entry; 0 = top-level *)
  ev_attrs : attr list;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val instrumenting : unit -> bool
(** [true] when {e either} file tracing or the flight recorder
    ({!Flight}) wants span events — the guard for callers that build
    attributes dynamically before {!with_span} on a hot path. *)

val current_span : unit -> int
(** The id of the calling domain's innermost open span, [0] when none
    (or when all instrumentation is off). Used by {!Log} to correlate
    events to spans. *)

val epoch : float
(** [Unix.gettimeofday] at module initialization, seconds. *)

val with_span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording one event when tracing is
    enabled. If [f] raises, the span is still closed — with an
    ["error"] attribute carrying [Printexc.to_string] — and the
    exception is re-raised with its original backtrace. When tracing
    is disabled this is [f ()] after one branch; callers building
    [attrs] dynamically on a hot path should guard on {!instrumenting}
    themselves to avoid the list allocation. *)

val span_attr : string -> string -> unit
(** Attach an attribute to the innermost open span of the calling
    domain. No-op when tracing is disabled or no span is open, so
    instrumented code can report results unconditionally. *)

val events : unit -> event list
(** Every recorded event across all domains, sorted by [(tid, ts)].
    Only closed spans appear. *)

val drain : unit -> event list
(** {!events}, then clear every buffer. *)

val reset : unit -> unit
(** Clear every buffer, keeping the enabled flag as it is. *)
