type error = {
  index : int;
  message : string;
  backtrace : string;
  exn : exn;
  raw_backtrace : Printexc.raw_backtrace;
}

let reraise e = Printexc.raise_with_backtrace e.exn e.raw_backtrace

let default_jobs () = Domain.recommended_domain_count ()

let c_tasks = Obs.Metrics.counter "pool.tasks"
let c_errors = Obs.Metrics.counter "pool.errors"
let c_runs = Obs.Metrics.counter "pool.runs"

(* The raw backtrace is captured in the worker domain and carried across
   the domain boundary inside the error, so a consumer's [reraise] (or
   [Printexc.raise_with_backtrace]) points at the frame that actually
   raised, not at the join site. *)
let run_task_plain f items i =
  match f items.(i) with
  | v -> Ok v
  | exception e ->
      let raw = Printexc.get_raw_backtrace () in
      let err =
        {
          index = i;
          message = Printexc.to_string e;
          backtrace = Printexc.raw_backtrace_to_string raw;
          exn = e;
          raw_backtrace = raw;
        }
      in
      Obs.Log.error ~scope:"pool" "task %d raised: %s" i err.message;
      Error err

(* Workers are a hot path: when all instrumentation is off a task pays
   one branch here and nothing else; the instrumented variant records
   one span per task (with the task's index, and the error when it
   fails) so a failing task is visible — in the trace and in the
   flight ring — at its real position. *)
let run_task f items i =
  if not (Obs.Trace.instrumenting ()) then run_task_plain f items i
  else
    Obs.Trace.with_span ~attrs:[ ("index", string_of_int i) ] "pool.task"
      (fun () ->
        match run_task_plain f items i with
        | Error e as r ->
            Obs.Trace.span_attr "error" e.message;
            Obs.Metrics.incr c_errors;
            r
        | r -> r)

let map ?(jobs = default_jobs ()) f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  Obs.Metrics.add c_tasks n;
  if jobs <= 1 then
    Obs.Trace.with_span "pool.map" (fun () -> List.init n (run_task f items))
  else
    Obs.Trace.with_span
      ~attrs:[ ("jobs", string_of_int jobs); ("n", string_of_int n) ]
      "pool.map"
      (fun () ->
        let results = Array.make n None in
        let cursor = Atomic.make 0 in
        (* Each slot of [results] is written by exactly one domain (the atomic
           fetch-and-add hands every index out once), and [Domain.join] orders
           those writes before the reads below. *)
        let worker () =
          let rec loop () =
            let i = Atomic.fetch_and_add cursor 1 in
            if i < n then begin
              results.(i) <- Some (run_task f items i);
              loop ()
            end
          in
          loop ()
        in
        let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join helpers;
        Array.to_list results
        |> List.map (function Some r -> r | None -> assert false))

(* ------------------------------------------------------------------ *)
(* Persistent pool                                                     *)
(* ------------------------------------------------------------------ *)

(* [Domain.spawn] costs milliseconds once the heap is warm, so spawning
   per [map] call drowns fine-grained workloads (a functional-simulation
   controller round is a handful of kernel runs). A persistent pool
   spawns its helper domains once; each [run] call publishes a
   generation of erased [unit -> unit] thunks which helpers and caller
   drain together through an atomic cursor. *)

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  p_cursor : int Atomic.t;
  mutable tasks : (unit -> unit) array;
  mutable generation : int;
  mutable active : int;  (* helpers still draining the current generation *)
  mutable stopped : bool;
  mutable helpers : unit Domain.t list;
  p_jobs : int;
}

let drain pool tasks =
  let n = Array.length tasks in
  let rec go () =
    let i = Atomic.fetch_and_add pool.p_cursor 1 in
    if i < n then begin
      (Array.unsafe_get tasks i) ();
      go ()
    end
  in
  go ()

let helper pool =
  let rec loop last_gen =
    Mutex.lock pool.mutex;
    while pool.generation = last_gen && not pool.stopped do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stopped then Mutex.unlock pool.mutex
    else begin
      let gen = pool.generation in
      let tasks = pool.tasks in
      Mutex.unlock pool.mutex;
      drain pool tasks;
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex;
      loop gen
    end
  in
  loop 0

let create ?(jobs = default_jobs ()) () =
  let jobs = max 1 jobs in
  let pool =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      p_cursor = Atomic.make 0;
      tasks = [||];
      generation = 0;
      active = 0;
      stopped = false;
      helpers = [];
      p_jobs = jobs;
    }
  in
  pool.helpers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> helper pool));
  pool

let pool_jobs pool = pool.p_jobs

let run pool f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    Obs.Metrics.incr c_runs;
    Obs.Metrics.add c_tasks n;
    Obs.Trace.with_span "pool.run" (fun () ->
        Obs.Trace.span_attr "n" (string_of_int n);
        let results = Array.make n None in
        let tasks =
          Array.init n (fun i ->
              fun () -> results.(i) <- Some (run_task f items i))
        in
        if pool.p_jobs <= 1 || n = 1 then Array.iter (fun t -> t ()) tasks
        else begin
          Mutex.lock pool.mutex;
          pool.tasks <- tasks;
          Atomic.set pool.p_cursor 0;
          pool.active <- List.length pool.helpers;
          pool.generation <- pool.generation + 1;
          Condition.broadcast pool.work_ready;
          Mutex.unlock pool.mutex;
          drain pool tasks;
          Mutex.lock pool.mutex;
          while pool.active > 0 do
            Condition.wait pool.work_done pool.mutex
          done;
          pool.tasks <- [||];
          Mutex.unlock pool.mutex
        end;
        Array.to_list results
        |> List.map (function Some r -> r | None -> assert false))
  end

(* Contiguous balanced partition of [0, n): the first [n mod shards]
   chunks get one extra element, so chunk sizes differ by at most one
   and every chunk is non-empty. *)
let chunks ~n ~shards =
  if n <= 0 then []
  else
    let shards = max 1 (min shards n) in
    let base = n / shards and extra = n mod shards in
    List.init shards (fun s ->
        let lo = (s * base) + min s extra in
        (lo, lo + base + if s < extra then 1 else 0))

let run_chunked pool ~n ~shards f =
  let ranges =
    List.mapi (fun shard (lo, hi) -> (shard, lo, hi)) (chunks ~n ~shards)
  in
  run pool (fun (shard, lo, hi) -> f ~shard ~lo ~hi) ranges

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopped <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.helpers;
  pool.helpers <- []

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
