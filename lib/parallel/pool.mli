(** A small fixed-size work pool on OCaml 5 [Domain]s.

    Built for sweep-shaped workloads: a known, finite list of independent
    tasks (design-space configurations) fanned out across cores. The task
    queue is the input list itself, consumed through an atomic cursor, so
    it is bounded by construction and needs no blocking hand-off. Results
    come back in input order regardless of completion order, and a task
    that raises is captured as an {!error} for its slot — one failed
    configuration can never abort the rest of the sweep. *)

type error = {
  index : int;  (** position of the failed task in the input list *)
  message : string;  (** [Printexc.to_string] of the raised exception *)
  backtrace : string;
  exn : exn;  (** the exception itself, for re-raising *)
  raw_backtrace : Printexc.raw_backtrace;
      (** captured in the worker domain, at the raise site *)
}

val reraise : error -> 'a
(** Re-raise the task's exception with the backtrace captured in the
    worker domain ({!Printexc.raise_with_backtrace}), so the reported
    frames point at the task's real raise site, not the join site. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** [map ~jobs f items] applies [f] to every item, using at most [jobs]
    domains ([jobs] is clamped to [1 .. length items]; default
    {!default_jobs}). At [jobs:1] no domain is spawned and every task
    runs sequentially in the caller — byte-for-byte the sequential
    semantics. The result list has exactly one entry per input, in input
    order. *)

(** {1 Persistent pools}

    [map] spawns and joins its domains on every call; that is the right
    cost model for a sweep of long-running configurations and the wrong
    one for thousands of fine-grained batches (the functional
    simulator's controller rounds, a few kernel runs each). A {!pool}
    spawns [jobs - 1] helper domains once; every {!run} then reuses
    them. *)

type pool

val create : ?jobs:int -> unit -> pool
(** Spawns [jobs - 1] helper domains (default {!default_jobs}; clamped
    to at least 1, meaning a pool that runs everything in the caller). *)

val pool_jobs : pool -> int

val run : pool -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** Like {!map}, on the pool's domains plus the caller. Results are in
    input order; a raising task is captured as its slot's {!error}.
    Calls must not be nested or concurrent on one pool, and tasks must
    not themselves call {!run} on the same pool. *)

val chunks : n:int -> shards:int -> (int * int) list
(** [chunks ~n ~shards] partitions the index range [[0, n)] into at most
    [shards] contiguous [(lo, hi)] half-open ranges, balanced to within
    one element, every range non-empty ([shards] is clamped to
    [1 .. n]). [[]] when [n <= 0]. *)

val run_chunked :
  pool -> n:int -> shards:int -> (shard:int -> lo:int -> hi:int -> 'a) ->
  ('a, error) result list
(** [run_chunked pool ~n ~shards f] runs [f ~shard ~lo ~hi] once per
    {!chunks} range as a single {!run} generation: one dispatch and one
    join for the whole index range, however many items each chunk
    covers — the shape for long-lived shard tasks whose dispatch cost
    must be amortized over many inner iterations (the element-sharded
    functional simulator), as opposed to one task per item. Results are
    in shard order; a raising shard is captured as its slot's {!error}
    (with [index] = shard). *)

val shutdown : pool -> unit
(** Terminates and joins the helper domains. The pool must be idle. *)

val with_pool : ?jobs:int -> (pool -> 'a) -> 'a
(** [create], run [f], and always [shutdown] (also on exceptions). *)
