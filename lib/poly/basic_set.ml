type constr = Eq of Aff.t | Ge of Aff.t

type t = {
  id : int; (* hash-cons id: structurally equal sets share one id *)
  space : Space.t;
  constrs : constr list;
  inconsistent : bool; (* detected trivially false constraint *)
}

(* --- hash-consing ------------------------------------------------------- *)
(* Every set produced by [build] is interned, so structurally identical
   sets (which the sweep re-derives once per configuration) carry a stable
   integer id. The projection/composition caches below key on these ids,
   making lookups O(1) instead of hashing whole constraint systems. The
   table is guarded by a mutex: sets are built concurrently during a
   parallel design-space sweep. *)

let intern_counter = Stats.counter "poly.intern"
let hashcons_lock = Mutex.create ()

let hashcons : (Space.t * constr list * bool, t) Hashtbl.t =
  Hashtbl.create 4096

let next_id = ref 0
let max_hashcons = 1 lsl 17

let () =
  Memo.register_clear (fun () ->
      Mutex.protect hashcons_lock (fun () -> Hashtbl.reset hashcons))

let intern space constrs inconsistent =
  let key = (space, constrs, inconsistent) in
  Mutex.protect hashcons_lock (fun () ->
      match Hashtbl.find_opt hashcons key with
      | Some t ->
          Stats.hit intern_counter;
          t
      | None ->
          Stats.miss intern_counter;
          if Hashtbl.length hashcons >= max_hashcons then
            Hashtbl.reset hashcons;
          let t = { id = !next_id; space; constrs; inconsistent } in
          incr next_id;
          Hashtbl.add hashcons key t;
          t)

let uid t = t.id

let constr_aff = function Eq e | Ge e -> e

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Normalize one constraint: gcd-reduce; detect trivial truth/falsity. *)
type norm = Keep of constr | Always_true | Always_false

let normalize_constr = function
  | Eq e ->
      if Aff.is_constant e then
        if Aff.constant e = 0 then Always_true else Always_false
      else
        let g =
          Array.fold_left (fun acc c -> gcd acc c) 0 e.Aff.coeffs
        in
        if Aff.constant e mod g <> 0 then Always_false
        else if g > 1 then
          Keep
            (Eq
               (Aff.make
                  (Array.map (fun c -> c / g) e.Aff.coeffs)
                  (Aff.constant e / g)))
        else Keep (Eq e)
  | Ge e ->
      if Aff.is_constant e then
        if Aff.constant e >= 0 then Always_true else Always_false
      else
        let reduced, _ = Aff.gcd_reduce e in
        Keep (Ge reduced)

let constr_equal a b =
  match (a, b) with
  | Eq x, Eq y | Ge x, Ge y -> Aff.equal x y
  | Eq _, Ge _ | Ge _, Eq _ -> false

let build space constrs =
  let inconsistent = ref false in
  let kept = ref [] in
  List.iter
    (fun c ->
      match normalize_constr c with
      | Always_true -> ()
      | Always_false -> inconsistent := true
      | Keep c ->
          if not (List.exists (constr_equal c) !kept) then kept := c :: !kept)
    constrs;
  intern space (List.rev !kept) !inconsistent

let universe space = intern space [] false
let empty space = intern space [] true

let check_constr_arity space c =
  if Aff.arity (constr_aff c) <> Space.arity space then
    invalid_arg
      (Printf.sprintf
         "Basic_set: constraint arity %d does not match space arity %d"
         (Aff.arity (constr_aff c))
         (Space.arity space))

let of_constraints space constrs =
  List.iter (check_constr_arity space) constrs;
  build space constrs

let of_box space bounds =
  let n = Space.arity space in
  if List.length bounds <> n then
    invalid_arg "Basic_set.of_box: bounds arity mismatch";
  let constrs =
    List.concat
      (List.mapi
         (fun i (lo, hi) ->
           [
             Ge (Aff.add_const (Aff.var n i) (-lo));
             Ge (Aff.sub (Aff.const n hi) (Aff.var n i));
           ])
         bounds)
  in
  build space constrs

let space t = t.space
let arity t = Space.arity t.space
let constraints t = t.constrs

let add_constraint t c =
  check_constr_arity t.space c;
  if t.inconsistent then t else build t.space (c :: t.constrs)

let intersect a b =
  if arity a <> arity b then invalid_arg "Basic_set.intersect: arity mismatch";
  if a.inconsistent || b.inconsistent then empty a.space
  else build a.space (a.constrs @ b.constrs)

let mem t point =
  (not t.inconsistent)
  && List.for_all
       (fun c ->
         let v = Aff.eval (constr_aff c) point in
         match c with Eq _ -> v = 0 | Ge _ -> v >= 0)
       t.constrs

let is_obviously_empty t = t.inconsistent

(* --- Fourier-Motzkin elimination of one variable ------------------------ *)

let fm_eliminations = Obs.Metrics.counter "poly.fm.eliminations"
let emptiness_tests = Obs.Metrics.counter "poly.emptiness.tests"

let eliminate_var constrs j =
  Obs.Metrics.incr fm_eliminations;
  (* Prefer pivoting on an equality mentioning x_j. *)
  let mentions c = Aff.coeff (constr_aff c) j <> 0 in
  let pivot =
    List.find_opt (function Eq e -> e.Aff.coeffs.(j) <> 0 | Ge _ -> false) constrs
  in
  match pivot with
  | Some (Eq eq) ->
      let c = Aff.coeff eq j in
      let s = if c > 0 then 1 else -1 in
      let ac = abs c in
      List.filter_map
        (fun constr ->
          if constr_equal constr (Eq eq) then None
          else
            let e = constr_aff constr in
            let d = Aff.coeff e j in
            if d = 0 then Some constr
            else
              let combined = Aff.sub (Aff.scale ac e) (Aff.scale (d * s) eq) in
              Some (match constr with Eq _ -> Eq combined | Ge _ -> Ge combined))
        constrs
  | Some (Ge _) | None ->
      let free = List.filter (fun c -> not (mentions c)) constrs in
      let eqs_with_j =
        List.filter (function Eq e -> e.Aff.coeffs.(j) <> 0 | Ge _ -> false) constrs
      in
      assert (eqs_with_j = []);
      let lowers, uppers =
        List.fold_left
          (fun (lo, up) c ->
            match c with
            | Ge e when Aff.coeff e j > 0 -> (e :: lo, up)
            | Ge e when Aff.coeff e j < 0 -> (lo, e :: up)
            | Eq _ | Ge _ -> (lo, up))
          ([], []) constrs
      in
      let combined =
        List.concat_map
          (fun l ->
            List.map
              (fun u ->
                (* l: a x_j + rest_l >= 0 (a > 0);
                   u: -b x_j + rest_u >= 0 (b > 0).
                   b*l + a*u eliminates x_j. *)
                let a = Aff.coeff l j and b = -Aff.coeff u j in
                Ge (Aff.add (Aff.scale b l) (Aff.scale a u)))
              uppers)
          lowers
      in
      free @ combined

let eliminate_memo : (int * int, t) Memo.t =
  Memo.create ~name:"poly.eliminate" ()

let eliminate t j =
  if t.inconsistent then t
  else begin
    if j < 0 || j >= arity t then invalid_arg "Basic_set.eliminate: bad index";
    Memo.find_or_compute eliminate_memo (t.id, j) (fun () ->
        build t.space (eliminate_var t.constrs j))
  end

let is_empty_memo : (int, bool) Memo.t =
  Memo.create ~name:"poly.is_empty" ()

let is_empty t =
  Obs.Metrics.incr emptiness_tests;
  if t.inconsistent then true
  else
    Memo.find_or_compute is_empty_memo t.id (fun () ->
        let n = arity t in
        let rec loop constrs j =
          match build t.space constrs with
          | { inconsistent = true; _ } -> true
          | { constrs; _ } ->
              if j >= n then false else loop (eliminate_var constrs j) (j + 1)
        in
        loop t.constrs 0)

let project_memo : (int * int list * Space.t, t) Memo.t =
  Memo.create ~name:"poly.project_out" ()

let project_out t vars new_space =
  let vars = List.sort_uniq compare vars in
  if List.exists (fun v -> v < 0 || v >= arity t) vars then
    invalid_arg "Basic_set.project_out: variable out of range";
  if Space.arity new_space <> arity t - List.length vars then
    invalid_arg "Basic_set.project_out: new space arity mismatch";
  if t.inconsistent then empty new_space
  else
    Memo.find_or_compute project_memo (t.id, vars, new_space) (fun () ->
        let constrs =
          List.fold_left (fun cs v -> eliminate_var cs v) t.constrs vars
        in
        (* Renumber surviving variables. *)
        let keep =
          List.filter (fun v -> not (List.mem v vars)) (List.init (arity t) Fun.id)
        in
        let remap e =
          let coeffs = Array.of_list (List.map (fun v -> Aff.coeff e v) keep) in
          Aff.make coeffs (Aff.constant e)
        in
        let constrs =
          List.map (function Eq e -> Eq (remap e) | Ge e -> Ge (remap e)) constrs
        in
        build new_space constrs)

let var_bounds_fresh t j =
  begin
    let n = arity t in
    let others = List.filter (fun v -> v <> j) (List.init n Fun.id) in
    let constrs =
      List.fold_left (fun cs v -> eliminate_var cs v) t.constrs others
    in
    let lo = ref None and hi = ref None in
    List.iter
      (fun c ->
        match normalize_constr c with
        | Always_true | Always_false -> ()
        | Keep c -> (
            let e = constr_aff c in
            let a = Aff.coeff e j and b = Aff.constant e in
            let update_lo v = match !lo with Some l when l >= v -> () | _ -> lo := Some v in
            let update_hi v = match !hi with Some h when h <= v -> () | _ -> hi := Some v in
            let floor_div x y = if x >= 0 then x / y else -(((-x) + y - 1) / y) in
            let ceil_div x y = -floor_div (-x) y in
            match c with
            | Ge _ when a > 0 -> update_lo (ceil_div (-b) a)
            | Ge _ when a < 0 -> update_hi (floor_div b (-a))
            | Eq _ when a <> 0 ->
                if -b mod a = 0 then begin
                  update_lo (-b / a);
                  update_hi (-b / a)
                end
                else begin
                  (* equality unsatisfiable in integers: empty range *)
                  update_lo 0;
                  update_hi (-1)
                end
            | Eq _ | Ge _ -> ()))
      constrs;
    (!lo, !hi)
  end

let var_bounds_memo : (int * int, int option * int option) Memo.t =
  Memo.create ~name:"poly.var_bounds" ()

let var_bounds t j =
  if t.inconsistent then (Some 0, Some (-1))
  else
    Memo.find_or_compute var_bounds_memo (t.id, j) (fun () ->
        var_bounds_fresh t j)

let bounding_box t =
  let n = arity t in
  let box = Array.make n (0, 0) in
  let ok = ref true in
  for j = 0 to n - 1 do
    match var_bounds t j with
    | Some lo, Some hi -> box.(j) <- (lo, hi)
    | _ -> ok := false
  done;
  if !ok then Some box else None

let enumerate t =
  if t.inconsistent then []
  else
    match bounding_box t with
    | None -> invalid_arg "Basic_set.enumerate: unbounded set"
    | Some box ->
        let n = arity t in
        let acc = ref [] in
        let point = Array.make n 0 in
        let rec go j =
          if j = n then begin
            if mem t point then acc := Array.copy point :: !acc
          end
          else
            let lo, hi = box.(j) in
            for v = lo to hi do
              point.(j) <- v;
              go (j + 1)
            done
        in
        go 0;
        List.rev !acc

let lex_extremum ~maximize t =
  if is_empty t then None
  else begin
    let n = arity t in
    let point = Array.make n 0 in
    let current = ref t in
    (try
       for j = 0 to n - 1 do
         let lo, hi = var_bounds !current j in
         let v =
           match (maximize, lo, hi) with
           | false, Some lo, _ -> lo
           | true, _, Some hi -> hi
           | false, None, _ | true, _, None ->
               invalid_arg "Basic_set.lexmin/lexmax: unbounded dimension"
         in
         point.(j) <- v;
         current :=
           add_constraint !current
             (Eq (Aff.add_const (Aff.var n j) (-v)))
       done
     with Invalid_argument _ as e -> raise e);
    (* The greedy per-dimension choice can step outside the integer set
       when FM bounds are rationally but not integrally attained; confirm
       membership and fall back to enumeration for exactness. *)
    if mem t point then Some point
    else
      match bounding_box t with
      | None -> invalid_arg "Basic_set.lexmin/lexmax: unbounded set"
      | Some _ ->
          let cmp a b = compare (Array.to_list a) (Array.to_list b) in
          let pts = List.sort cmp (enumerate t) in
          (match (pts, maximize) with
          | [], _ -> None
          | p :: _, false -> Some p
          | ps, true -> Some (List.nth ps (List.length ps - 1)))
  end

let lexmin t = lex_extremum ~maximize:false t
let lexmax t = lex_extremum ~maximize:true t

let is_empty_exact t =
  if is_empty t then true
  else match bounding_box t with
    | Some _ -> enumerate t = []
    | None -> false

let pp ppf t =
  let names = Space.dim_names t.space in
  if t.inconsistent then Format.fprintf ppf "{ %a : false }" Space.pp t.space
  else begin
    Format.fprintf ppf "{ %a" Space.pp t.space;
    if t.constrs <> [] then begin
      Format.fprintf ppf " : ";
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ")
        (fun ppf c ->
          match c with
          | Eq e -> Format.fprintf ppf "%a = 0" (Aff.pp ~names) e
          | Ge e -> Format.fprintf ppf "%a >= 0" (Aff.pp ~names) e)
        ppf t.constrs
    end;
    Format.fprintf ppf " }"
  end
