(** Basic integer sets: conjunctions of affine constraints over a space.

    This is the workhorse of the polyhedral substrate. Projection and
    emptiness use Fourier–Motzkin elimination with gcd tightening. FM is
    exact over the rationals; over the integers it may over-approximate
    when eliminating variables with non-unit coefficients — all sets built
    by the compiler flow have unit-coefficient bounds, and analyses that
    require integer exactness use {!enumerate} (domains are bounded, with
    p = 11 at most ~1.8M points). The test suite cross-validates FM
    emptiness against enumeration on randomized sets. *)

type constr = Eq of Aff.t | Ge of Aff.t
(** [Eq e] means e = 0; [Ge e] means e >= 0. *)

type t

val universe : Space.t -> t
val empty : Space.t -> t

val of_box : Space.t -> (int * int) list -> t
(** [of_box space bounds] with inclusive per-dimension [(lo, hi)] bounds;
    the standard tensor index space is [of_box s (List.map (fun n -> (0, n-1)) dims)].
    @raise Invalid_argument on arity mismatch. *)

val of_constraints : Space.t -> constr list -> t
(** @raise Invalid_argument if a constraint arity differs from the space. *)

val space : t -> Space.t
val arity : t -> int
val constraints : t -> constr list

val uid : t -> int
(** Hash-cons identity: structurally equal sets built since the last
    {!Memo.clear_all} share one id. Used as a cheap cache key by the
    memoization layer ({!Memo}/{!Stats}) wrapping projection,
    elimination, emptiness and bounds queries. *)

val add_constraint : t -> constr -> t
val intersect : t -> t -> t
(** @raise Invalid_argument on differing arity. *)

val mem : t -> int array -> bool
val is_obviously_empty : t -> bool
val is_empty : t -> bool
(** Fourier–Motzkin emptiness check (rational relaxation + gcd tightening). *)

val eliminate : t -> int -> t
(** Project out one variable; the result keeps the same space arity but the
    variable is unconstrained (existentially quantified then relaxed). *)

val project_out : t -> int list -> Space.t -> t
(** [project_out t vars new_space] removes the listed variable positions
    entirely and renumbers survivors into [new_space]
    (arity = arity t - |vars|). *)

val var_bounds : t -> int -> int option * int option
(** Tightest FM-derived lower/upper integer bounds of one variable;
    [None] when unbounded in that direction. *)

val bounding_box : t -> (int * int) array option
(** Per-variable bounds when fully bounded, else [None]. *)

val enumerate : t -> int array list
(** All integer points (exact). @raise Invalid_argument when unbounded. *)

val lexmin : t -> int array option
val lexmax : t -> int array option
(** Lexicographic extrema, computed symbolically by fixing one dimension
    at a time to its FM-derived bound and re-projecting. Exact whenever
    the per-dimension bounds are integer-attained (always true for the
    box-derived sets the compiler produces; cross-validated against
    enumeration in the test suite). [None] for empty sets.
    @raise Invalid_argument when the needed direction is unbounded. *)

val is_empty_exact : t -> bool
(** Exact integer emptiness: FM first; if FM says nonempty and the set is
    bounded, confirm by enumeration. *)

val pp : Format.formatter -> t -> unit
(** isl-like notation: [{ S\[i, j\] : 0 <= i ... }]. *)
