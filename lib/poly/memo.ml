type ('k, 'v) t = {
  lock : Mutex.t;
  table : ('k, 'v) Hashtbl.t;
  max_size : int;
  counter : Stats.counter;
}

let clearers : (unit -> unit) list ref = ref []
let clearers_lock = Mutex.create ()

let register_clear f =
  Mutex.protect clearers_lock (fun () -> clearers := f :: !clearers)

let create ~name ?(max_size = 1 lsl 16) () =
  let t =
    {
      lock = Mutex.create ();
      table = Hashtbl.create 1024;
      max_size;
      counter = Stats.counter name;
    }
  in
  register_clear (fun () ->
      Mutex.protect t.lock (fun () -> Hashtbl.reset t.table));
  t

let find_or_compute t k f =
  let cached =
    Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table k)
  in
  match cached with
  | Some v ->
      Stats.hit t.counter;
      v
  | None ->
      Stats.miss t.counter;
      let v = f () in
      Mutex.protect t.lock (fun () ->
          if Hashtbl.length t.table >= t.max_size then Hashtbl.reset t.table;
          if not (Hashtbl.mem t.table k) then Hashtbl.add t.table k v);
      v

let stats t = t.counter

let clear t = Mutex.protect t.lock (fun () -> Hashtbl.reset t.table)

let clear_all () =
  let fs = Mutex.protect clearers_lock (fun () -> !clearers) in
  List.iter (fun f -> f ()) fs
