(** Keyed, bounded, domain-safe memoization tables.

    The compiler flow re-derives the same Fourier–Motzkin projections and
    dependence compositions for every design-space configuration; these
    tables let {!Basic_set} and {!Rel} reuse results across configurations
    (and across domains during a parallel sweep). Lookups and insertions
    take a per-table mutex; the memoized computation itself runs outside
    the lock, so two domains may race to compute the same entry — the
    result is identical either way, and one insert wins.

    Each table owns a {!Stats.counter} under its name, and registers
    itself so {!clear_all} can drop every cached result (used by the
    bench harness to time cold-vs-warm sweeps, and by tests to compare
    memoized results against fresh computation). *)

type ('k, 'v) t

val create : name:string -> ?max_size:int -> unit -> ('k, 'v) t
(** A new table using polymorphic hashing/equality on ['k]. When the
    table exceeds [max_size] entries (default 1 shl 16) it is emptied
    wholesale — a crude but allocation-bounded eviction policy. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute t k f] returns the cached value for [k], or runs
    [f ()] (outside the table lock) and caches its result. Exceptions
    from [f] propagate and cache nothing. *)

val stats : ('k, 'v) t -> Stats.counter

val clear : ('k, 'v) t -> unit

val register_clear : (unit -> unit) -> unit
(** Hook extra cache-like state (e.g. the {!Basic_set} hash-cons table)
    into {!clear_all}. *)

val clear_all : unit -> unit
(** Empty every table created by {!create} and run every hook from
    {!register_clear}. Counters are left intact; see {!Stats.reset}. *)
