type t = { dom : Space.t; cod : Space.t; basics : Basic_set.t list }

let pair_space dom cod = Space.concat ~name:(Space.name dom ^ "->" ^ Space.name cod) dom cod

let make dom cod basics =
  let want = Space.arity dom + Space.arity cod in
  List.iter
    (fun b ->
      if Basic_set.arity b <> want then
        invalid_arg
          (Printf.sprintf "Rel.make: basic arity %d, expected %d"
             (Basic_set.arity b) want))
    basics;
  { dom; cod; basics = List.filter (fun b -> not (Basic_set.is_obviously_empty b)) basics }

let empty dom cod = { dom; cod; basics = [] }
let universe dom cod = make dom cod [ Basic_set.universe (pair_space dom cod) ]

let of_aff_map_on m dset =
  let dom = Aff_map.dom m and cod = Aff_map.cod m in
  let nout = Space.arity cod in
  let space = pair_space dom cod in
  let dom_constrs =
    List.map
      (function
        | Basic_set.Eq e -> Basic_set.Eq (Aff.extend e nout)
        | Basic_set.Ge e -> Basic_set.Ge (Aff.extend e nout))
      (Basic_set.constraints dset)
  in
  let graph = Aff_map.graph_constraints m in
  make dom cod [ Basic_set.of_constraints space (dom_constrs @ graph) ]

let of_aff_map m =
  of_aff_map_on m (Basic_set.universe (Aff_map.dom m))

let of_pairs dom cod pairs =
  let space = pair_space dom cod in
  let n = Space.arity dom + Space.arity cod in
  let point_basic (x, y) =
    let pt = Array.append x y in
    let constrs =
      List.init n (fun i ->
          Basic_set.Eq (Aff.add_const (Aff.var n i) (-pt.(i))))
    in
    Basic_set.of_constraints space constrs
  in
  make dom cod (List.map point_basic pairs)

let dom_space t = t.dom
let cod_space t = t.cod
let basics t = t.basics

let union a b =
  if
    Space.arity a.dom <> Space.arity b.dom
    || Space.arity a.cod <> Space.arity b.cod
  then invalid_arg "Rel.union: arity mismatch";
  { a with basics = a.basics @ b.basics }

let intersect a b =
  if
    Space.arity a.dom <> Space.arity b.dom
    || Space.arity a.cod <> Space.arity b.cod
  then invalid_arg "Rel.intersect: arity mismatch";
  {
    a with
    basics =
      List.concat_map
        (fun x ->
          List.filter_map
            (fun y ->
              let i = Basic_set.intersect x y in
              if Basic_set.is_obviously_empty i then None else Some i)
            b.basics)
        a.basics;
  }

let remap_basic old_space new_space perm b =
  (* perm.(new_pos) = old_pos *)
  ignore old_space;
  let constrs =
    List.map
      (fun c ->
        let remap e =
          let coeffs = Array.map (fun old_pos -> Aff.coeff e old_pos) perm in
          Aff.make coeffs (Aff.constant e)
        in
        match c with
        | Basic_set.Eq e -> Basic_set.Eq (remap e)
        | Basic_set.Ge e -> Basic_set.Ge (remap e))
      (Basic_set.constraints b)
  in
  Basic_set.of_constraints new_space constrs

let inverse t =
  let nd = Space.arity t.dom and nc = Space.arity t.cod in
  let new_space = pair_space t.cod t.dom in
  let perm =
    Array.init (nd + nc) (fun i -> if i < nc then nd + i else i - nc)
  in
  {
    dom = t.cod;
    cod = t.dom;
    basics = List.map (fun b -> remap_basic (pair_space t.dom t.cod) new_space perm b) t.basics;
  }

let domain t =
  let nd = Space.arity t.dom and nc = Space.arity t.cod in
  Set.of_list t.dom
    (List.map
       (fun b -> Basic_set.project_out b (List.init nc (fun i -> nd + i)) t.dom)
       t.basics)

let range t = domain (inverse t)

let extend_set_constraints nextra at_front constrs =
  List.map
    (fun c ->
      let f e = if at_front then Aff.shift e nextra (Aff.arity e + nextra) else Aff.extend e nextra in
      match c with
      | Basic_set.Eq e -> Basic_set.Eq (f e)
      | Basic_set.Ge e -> Basic_set.Ge (f e))
    constrs

let intersect_domain t dset =
  if Space.arity (Basic_set.space dset) <> Space.arity t.dom then
    invalid_arg "Rel.intersect_domain: arity mismatch";
  let nc = Space.arity t.cod in
  let space = pair_space t.dom t.cod in
  let lifted =
    Basic_set.of_constraints space
      (extend_set_constraints nc false (Basic_set.constraints dset))
  in
  { t with basics = List.map (fun b -> Basic_set.intersect b lifted) t.basics }

let intersect_range t rset =
  inverse (intersect_domain (inverse t) rset)

let compose_memo :
    (int * int * int * int * int * Space.t, Basic_set.t option) Memo.t =
  Memo.create ~name:"poly.compose" ()

let compose r2 r1 =
  if Space.arity r1.cod <> Space.arity r2.dom then
    invalid_arg "Rel.compose: intermediate arity mismatch";
  let na = Space.arity r1.dom
  and nb = Space.arity r1.cod
  and nc = Space.arity r2.cod in
  let triple = Space.concat (pair_space r1.dom r1.cod) r2.cod in
  let result_space = pair_space r1.dom r2.cod in
  let compose_basics b1 b2 =
    (* embed b1 over [a;b;c] (pad back), b2 over [a;b;c] (pad front) *)
    let c1 = extend_set_constraints nc false (Basic_set.constraints b1) in
    let c2 = extend_set_constraints na true (Basic_set.constraints b2) in
    let combined = Basic_set.of_constraints triple (c1 @ c2) in
    if Basic_set.is_obviously_empty combined then None
    else
      Some
        (Basic_set.project_out combined
           (List.init nb (fun i -> na + i))
           result_space)
  in
  let basics =
    List.concat_map
      (fun b1 ->
        List.filter_map
          (fun b2 ->
            Memo.find_or_compute compose_memo
              (Basic_set.uid b1, Basic_set.uid b2, na, nb, nc, result_space)
              (fun () -> compose_basics b1 b2))
          r2.basics)
      r1.basics
  in
  make r1.dom r2.cod basics

let mem t x y =
  let pt = Array.append x y in
  List.exists (fun b -> Basic_set.mem b pt) t.basics

let apply_point t x =
  let nd = Space.arity t.dom and nc = Space.arity t.cod in
  if Array.length x <> nd then invalid_arg "Rel.apply_point: arity mismatch";
  let fix =
    List.init nd (fun i ->
        Basic_set.Eq (Aff.add_const (Aff.var (nd + nc) i) (-x.(i))))
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let restricted = List.fold_left Basic_set.add_constraint b fix in
      let projected =
        Basic_set.project_out restricted (List.init nd Fun.id) t.cod
      in
      List.iter
        (fun y -> if mem t x y && not (Hashtbl.mem tbl y) then Hashtbl.add tbl y ())
        (Basic_set.enumerate projected))
    t.basics;
  Hashtbl.fold (fun y () acc -> y :: acc) tbl []

let is_empty t = List.for_all Basic_set.is_empty t.basics

let enumerate t =
  let nd = Space.arity t.dom in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun pt ->
          let x = Array.sub pt 0 nd
          and y = Array.sub pt nd (Array.length pt - nd) in
          if not (Hashtbl.mem tbl (x, y)) then Hashtbl.add tbl (x, y) ())
        (Basic_set.enumerate b))
    t.basics;
  Hashtbl.fold (fun p () acc -> p :: acc) tbl []

let pp ppf t =
  match t.basics with
  | [] -> Format.fprintf ppf "{ %a -> %a : false }" Space.pp t.dom Space.pp t.cod
  | bs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " union ")
        Basic_set.pp ppf bs
