type counter = { name : string; hits : int Atomic.t; misses : int Atomic.t }

let registry : counter list ref = ref []
let registry_lock = Mutex.create ()

let counter name =
  let c = { name; hits = Atomic.make 0; misses = Atomic.make 0 } in
  Mutex.protect registry_lock (fun () -> registry := c :: !registry);
  c

let hit c = Atomic.incr c.hits
let miss c = Atomic.incr c.misses
let name c = c.name
let hits c = Atomic.get c.hits
let misses c = Atomic.get c.misses

let hit_rate c =
  let h = hits c and m = misses c in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let all () = Mutex.protect registry_lock (fun () -> List.rev !registry)

let total_hits () = List.fold_left (fun acc c -> acc + hits c) 0 (all ())
let total_misses () = List.fold_left (fun acc c -> acc + misses c) 0 (all ())

let reset () =
  List.iter
    (fun c ->
      Atomic.set c.hits 0;
      Atomic.set c.misses 0)
    (all ())

let pp ppf () =
  List.iter
    (fun c ->
      Format.fprintf ppf "%-20s %9d hits %9d misses  %5.1f%%@." (name c)
        (hits c) (misses c) (100. *. hit_rate c))
    (all ())
