(* A hit/miss-pair view over the Obs.Metrics registry: each [counter]
   here is a pair of registry counters "<name>.hits" / "<name>.misses",
   so the polyhedral caches report through the same substrate as every
   other subsystem (one counter implementation, one output format) while
   this module keeps the convenient paired API for the caches. *)

type counter = {
  name : string;
  h : Obs.Metrics.counter;
  m : Obs.Metrics.counter;
}

let registry : counter list ref = ref []
let registry_lock = Mutex.create ()

let counter name =
  let c =
    {
      name;
      h = Obs.Metrics.counter (name ^ ".hits");
      m = Obs.Metrics.counter (name ^ ".misses");
    }
  in
  Mutex.protect registry_lock (fun () ->
      if not (List.exists (fun x -> x.name = name) !registry) then
        registry := c :: !registry);
  c

let hit c = Obs.Metrics.incr c.h
let miss c = Obs.Metrics.incr c.m
let name c = c.name
let hits c = Obs.Metrics.counter_value c.h
let misses c = Obs.Metrics.counter_value c.m

let hit_rate c =
  let h = hits c and m = misses c in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let all () = Mutex.protect registry_lock (fun () -> List.rev !registry)

let total_hits () = List.fold_left (fun acc c -> acc + hits c) 0 (all ())
let total_misses () = List.fold_left (fun acc c -> acc + misses c) 0 (all ())

let reset () = Obs.Metrics.reset ()

let pp ppf () =
  List.iter
    (fun c ->
      Format.fprintf ppf "%-20s %9d hits %9d misses  %5.1f%%@." (name c)
        (hits c) (misses c) (100. *. hit_rate c))
    (all ())
