(** Hit/miss counters for the polyhedral memoization layer.

    Every cache in [lib/poly] registers one {!counter} here at module
    initialization; the bench harness and the CLI read the registry to
    report cache effectiveness ([hits / (hits + misses)]) for a sweep.
    Counters are atomic and safe to bump from multiple domains. *)

type counter

val counter : string -> counter
(** Create and register a named counter. Names are expected to be unique
    ("poly.project_out", "poly.compose", ...); a duplicate name registers
    a second independent counter under the same label. *)

val hit : counter -> unit
val miss : counter -> unit

val name : counter -> string
val hits : counter -> int
val misses : counter -> int

val hit_rate : counter -> float
(** [hits / (hits + misses)]; [0.] when the counter never fired. *)

val all : unit -> counter list
(** Every registered counter, in registration order. *)

val total_hits : unit -> int
val total_misses : unit -> int

val reset : unit -> unit
(** Zero every registered counter (the caches themselves are cleared
    separately, via {!Memo.clear_all}). *)

val pp : Format.formatter -> unit -> unit
(** One line per counter: name, hits, misses, hit rate. *)
