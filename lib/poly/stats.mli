(** Hit/miss counters for the polyhedral memoization layer.

    A thin paired view over the {!Obs.Metrics} registry: [counter n]
    is the pair of registry counters [n ^ ".hits"] / [n ^ ".misses"],
    so the caches report through the same substrate as every other
    subsystem and show up in [Obs.Export.pp_metrics]'s cache section,
    the metrics JSON, and this module's {!pp}. Counters are atomic and
    safe to bump from multiple domains. *)

type counter

val counter : string -> counter
(** Get or register the named hit/miss pair. Names are expected to be
    unique ("poly.project_out", "poly.compose", ...); a duplicate name
    returns a handle onto the same underlying registry cells. *)

val hit : counter -> unit
val miss : counter -> unit

val name : counter -> string
val hits : counter -> int
val misses : counter -> int

val hit_rate : counter -> float
(** [hits / (hits + misses)]; [0.] when the counter never fired. *)

val all : unit -> counter list
(** Every registered counter, in registration order. *)

val total_hits : unit -> int
val total_misses : unit -> int

val reset : unit -> unit
(** Zero the whole {!Obs.Metrics} registry — every counter, gauge and
    histogram, not just the cache pairs (the caches themselves are
    cleared separately, via {!Memo.clear_all}). *)

val pp : Format.formatter -> unit -> unit
(** One line per counter: name, hits, misses, hit rate. *)
