open Tensor

(* The per-operator execution engine: the kernel compiled once by
   [Loopir.Compiled] at the verifier-licensed mode, one reusable frame,
   and the constant operands staged into their storage buffers up
   front. With PLM sharing a constant's backing buffer may also host a
   temporary, in which case the kernel itself overwrites it; exactly
   those constants are kept on a re-stage list replayed before every
   apply. [u] is re-staged always, [v] is read back from its region. *)
type engine = {
  exec : Loopir.Compiled.t;
  frame : Loopir.Compiled.frame;
  restage : (float array * float array * int) list;  (* data, buffer, offset *)
  u_buf : float array;
  u_off : int;
  v_buf : float array;
  v_off : int;
}

type t = {
  lambda_ : float;
  n : int;
  k_matrix : Dense.t;
  w0 : Dense.t;
  w1 : Dense.t;
  w2 : Dense.t;
  wm : Dense.t;
  program_ : Cfdlang.Ast.program;
  compiled_ : Cfd_core.Compile.result Lazy.t;
  engine_ : engine Lazy.t;
}

let build_program n =
  let c3 = [ n; n; n ] in
  let open Cfdlang.Ast in
  {
    decls =
      [
        { name = "K"; io = Input; dims = [ n; n ] };
        { name = "Id"; io = Input; dims = [ n; n ] };
        { name = "W0"; io = Input; dims = c3 };
        { name = "W1"; io = Input; dims = c3 };
        { name = "W2"; io = Input; dims = c3 };
        { name = "WM"; io = Input; dims = c3 };
        { name = "lambda"; io = Input; dims = [] };
        { name = "u"; io = Input; dims = c3 };
        { name = "v"; io = Output; dims = c3 };
        { name = "t0"; io = Local; dims = c3 };
        { name = "t1"; io = Local; dims = c3 };
        { name = "t2"; io = Local; dims = c3 };
      ];
    stmts =
      [
        { lhs = "t0"; rhs = Contract (Prod (Var "K", Var "u"), [ (1, 2) ]) };
        {
          lhs = "t1";
          rhs =
            Contract
              (Prod (Prod (Var "Id", Var "K"), Var "u"), [ (1, 4); (3, 5) ]);
        };
        {
          lhs = "t2";
          rhs =
            Contract
              ( Prod (Prod (Prod (Var "Id", Var "Id"), Var "K"), Var "u"),
                [ (1, 6); (3, 7); (5, 8) ] );
        };
        {
          lhs = "v";
          rhs =
            Add
              ( Add
                  ( Add
                      ( Mul (Var "lambda", Mul (Var "WM", Var "u")),
                        Mul (Var "W0", Var "t0") ),
                    Mul (Var "W1", Var "t1") ),
                Mul (Var "W2", Var "t2") );
        };
      ];
  }

let make_engine ~n ~lambda ~k_matrix ~w0 ~w1 ~w2 ~wm compiled_ =
  let result = Lazy.force compiled_ in
  let proc = result.Cfd_core.Compile.proc in
  let exec = Cfd_core.Compile.engine result in
  let frame = Loopir.Compiled.make_frame exec in
  let storage = result.Cfd_core.Compile.memory.Mnemosyne.Memgen.storage in
  let written = Loopir.Prog.arrays_written proc in
  let dest name =
    let buffer, offset =
      match List.assoc_opt name storage with
      | Some (b, off) -> (b, off)
      | None -> (name, 0)
    in
    (Loopir.Compiled.buffer exec frame buffer, offset, List.mem buffer written)
  in
  let restage =
    List.filter_map
      (fun (name, tensor) ->
        let data = Dense.to_array tensor in
        let buf, off, volatile = dest name in
        Array.blit data 0 buf off (Array.length data);
        if volatile then Some (data, buf, off) else None)
      [
        ("K", k_matrix);
        ("Id", Dense.identity n);
        ("W0", w0);
        ("W1", w1);
        ("W2", w2);
        ("WM", wm);
        ("lambda", Dense.scalar lambda);
      ]
  in
  let u_buf, u_off, _ = dest "u" in
  let v_buf, v_off, _ = dest "v" in
  { exec; frame; restage; u_buf; u_off; v_buf; v_off }

let create ?(lambda = 1.0) ~mesh () =
  let n = Mesh.n mesh in
  let h2 = Mesh.element_size mesh /. 2.0 in
  let w = Gll.weights n in
  let shape3 = Shape.cube 3 n in
  let field f = Dense.init shape3 (function [ i; j; k ] -> f i j k | _ -> assert false) in
  let program_ = build_program n in
  let k_matrix = Gll.stiffness_matrix n in
  (* stiffness term scale: (2/h) * (h/2)^2 = h/2, carried by the
     transverse quadrature weights *)
  let w0 = field (fun _ j k -> h2 *. w.(j) *. w.(k)) in
  let w1 = field (fun i _ k -> h2 *. w.(i) *. w.(k)) in
  let w2 = field (fun i j _ -> h2 *. w.(i) *. w.(j)) in
  (* mass scale: (h/2)^3 *)
  let wm = field (fun i j k -> h2 *. h2 *. h2 *. w.(i) *. w.(j) *. w.(k)) in
  let compiled_ =
    lazy
      (Cfd_core.Compile.compile
         ~options:
           {
             Cfd_core.Compile.default_options with
             Cfd_core.Compile.kernel_name = "sem_apply";
           }
         program_)
  in
  {
    lambda_ = lambda;
    n;
    k_matrix;
    w0;
    w1;
    w2;
    wm;
    program_;
    compiled_;
    engine_ = lazy (make_engine ~n ~lambda ~k_matrix ~w0 ~w1 ~w2 ~wm compiled_);
  }

let lambda t = t.lambda_
let program t = t.program_
let compiled t = Lazy.force t.compiled_

let c_applies = Obs.Metrics.counter "sem.operator.applies"
let c_restaged = Obs.Metrics.counter "sem.operator.restaged-buffers"

let reference_apply t u =
  Obs.Metrics.incr c_applies;
  let contract_dim0 m w = Ops.contract_product [ m; w ] [ (1, 2) ] in
  let t0 = contract_dim0 t.k_matrix u in
  let id = Dense.identity t.n in
  let t1 =
    Ops.contract_product [ id; t.k_matrix; u ] [ (1, 4); (3, 5) ]
  in
  let t2 =
    Ops.contract_product [ id; id; t.k_matrix; u ] [ (1, 6); (3, 7); (5, 8) ]
  in
  Ops.add
    (Ops.add
       (Ops.add
          (Ops.scale t.lambda_ (Ops.hadamard t.wm u))
          (Ops.hadamard t.w0 t0))
       (Ops.hadamard t.w1 t1))
    (Ops.hadamard t.w2 t2)

let accelerated_apply t u =
  Obs.Metrics.incr c_applies;
  let e = Lazy.force t.engine_ in
  Obs.Metrics.add c_restaged (List.length e.restage);
  List.iter
    (fun (data, buf, off) -> Array.blit data 0 buf off (Array.length data))
    e.restage;
  let du = Dense.to_array u in
  Array.blit du 0 e.u_buf e.u_off (Array.length du);
  Loopir.Compiled.run e.exec e.frame;
  Dense.of_array (Shape.cube 3 t.n) (Array.sub e.v_buf e.v_off (t.n * t.n * t.n))
