(** The per-element Helmholtz operator (lambda u - Laplacian u, weak form,
    GLL collocation) as a CFDlang kernel plus its host-side data.

    This is the "surrounding application" view of Section III-B: the
    solver treats the operator as a function handle; whether the handle
    runs on the CPU reference semantics or through the compiled
    accelerator kernel is a backend choice. The CFDlang program follows
    the library's tensor-times-matrices idiom (identity factors for the
    middle/last-dimension sweeps) so the factorizer reduces every term to
    O(n^4). *)

type t

val create : ?lambda:float -> mesh:Mesh.t -> unit -> t
(** Precomputes the GLL stiffness matrix and the scaled weight fields for
    the mesh's element size. [lambda] defaults to 1.0 (any [lambda > 0]
    keeps the operator positive definite on the interior). *)

val lambda : t -> float
val program : t -> Cfdlang.Ast.program
(** The CFDlang kernel ("sem_apply"): inputs K, Id, W0..W2, WM, lambda, u;
    output v. *)

val reference_apply : t -> Tensor.Dense.t -> Tensor.Dense.t
(** Dense-tensor evaluation of the element operator (the CPU baseline). *)

val accelerated_apply : t -> Tensor.Dense.t -> Tensor.Dense.t
(** Runs the element through the {e compiled} kernel: the full flow
    (factorization, scheduling, Mnemosyne storage, scalarized loop nest)
    executed by {!Loopir.Compiled} at the verifier-licensed mode. The
    engine, its frame and the constant operands (K, Id, the weight
    fields, lambda) are prepared once per operator; per call only [u]
    is staged, plus any constant whose shared PLM buffer the kernel
    itself overwrites. Applies reuse one frame, so a single operator
    must not be applied from two domains concurrently. *)

val compiled : t -> Cfd_core.Compile.result
(** The compiled artifacts behind {!accelerated_apply}, e.g. for reports. *)
