type backend = Reference | Accelerator

type stats = { iterations : int; residual : float }

let apply_global mesh ~apply_element u =
  let locals = Mesh.scatter mesh u in
  let applied = Array.map apply_element locals in
  let out = Mesh.gather_add mesh applied in
  Mesh.apply_mask mesh out;
  out

let assemble_rhs mesh ~f =
  let n = Mesh.n mesh in
  let h2 = Mesh.element_size mesh /. 2.0 in
  let w = Gll.weights n in
  let locals =
    Array.init (Mesh.num_elements mesh) (fun e ->
        Tensor.Dense.init (Tensor.Shape.cube 3 n) (fun idx ->
            let g = Mesh.global_index mesh ~element:e idx in
            let x, y, z = Mesh.node_coords mesh g in
            match idx with
            | [ i; j; k ] ->
                h2 *. h2 *. h2 *. w.(i) *. w.(j) *. w.(k) *. f x y z
            | _ -> assert false))
  in
  let b = Mesh.gather_add mesh locals in
  Mesh.apply_mask mesh b;
  b

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let cg ~apply ~b ~tol ~max_iter =
  let n = Array.length b in
  (* x, r and p are allocated once and updated in place; each update
     keeps the operation shape [v_i +. (scale *. w_i)] of the original
     axpy/mapi forms, so every iterate is bit-identical to the
     allocating implementation. *)
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let rs = ref (dot r r) in
  let iters = ref 0 in
  let b_norm = sqrt (dot b b) in
  let target = tol *. Float.max b_norm 1e-300 in
  let c_cg_iters = Obs.Metrics.counter "sem.cg.iterations" in
  (try
     while !iters < max_iter && sqrt !rs > target do
       Obs.Metrics.incr c_cg_iters;
       let ap = apply p in
       let denom = dot p ap in
       if Float.abs denom < 1e-300 then raise Exit;
       let alpha = !rs /. denom in
       for i = 0 to n - 1 do
         x.(i) <- x.(i) +. (alpha *. p.(i))
       done;
       for i = 0 to n - 1 do
         r.(i) <- r.(i) +. (-.alpha *. ap.(i))
       done;
       let rs_new = dot r r in
       let beta = rs_new /. !rs in
       for i = 0 to n - 1 do
         p.(i) <- r.(i) +. (beta *. p.(i))
       done;
       rs := rs_new;
       incr iters
     done
   with Exit -> ());
  (x, { iterations = !iters; residual = sqrt !rs })

let solve ?(backend = Reference) ?(tol = 1e-10) ?(max_iter = 500) ~mesh
    ~operator ~f () =
  let apply_element =
    match backend with
    | Reference -> Operator.reference_apply operator
    | Accelerator -> Operator.accelerated_apply operator
  in
  let apply = apply_global mesh ~apply_element in
  let b = assemble_rhs mesh ~f in
  cg ~apply ~b ~tol ~max_iter

let max_error mesh u ~exact =
  let worst = ref 0.0 in
  Array.iteri
    (fun g v ->
      let x, y, z = Mesh.node_coords mesh g in
      let e = Float.abs (v -. exact x y z) in
      if e > !worst then worst := e)
    u;
  !worst
