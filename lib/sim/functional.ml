exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let run ?jobs ~(system : Sysgen.System.t) ~(proc : Loopir.Prog.proc) ~inputs ~n
    () =
  let sol = system.Sysgen.System.solution in
  let k = sol.Sysgen.Replicate.k
  and m = sol.Sysgen.Replicate.m
  and batch = sol.Sysgen.Replicate.batch in
  let host = system.Sysgen.System.host in
  if n < 1 then errf "n must be positive";
  let jobs =
    match jobs with
    | None -> min k (Parallel.Pool.default_jobs ())
    | Some j when j < 1 -> errf "jobs must be positive"
    | Some j -> j
  in
  (* The kernel is compiled once, at the strongest mode the static
     verifier licenses; each PLM set gets its own frame, so the k
     accelerators of a controller round touch disjoint state and can
     run Domain-parallel. *)
  let exec =
    Loopir.Compiled.compile ~mode:(Analysis.Verify.execution_mode proc) proc
  in
  let plm = Array.init m (fun _ -> Loopir.Compiled.make_frame exec) in
  let buffer slot name =
    match Loopir.Compiled.buffer exec plm.(slot) name with
    | b -> b
    | exception Loopir.Compiled.Error _ -> errf "unknown PLM buffer %s" name
  in
  let results = Array.make n [] in
  let blocks = (n + m - 1) / m in
  (* One persistent pool for the whole run: controller rounds are
     fine-grained (a handful of kernel executions), so per-round domain
     spawns would dominate; the pool's helpers are spawned once. *)
  Parallel.Pool.with_pool ~jobs (fun pool ->
  for block = 0 to blocks - 1 do
    (* Input DMA: one element per PLM set. The padded tail of the final
       block gets no transfer and no execution — the hardware's
       full-block transfers carry duplicates of element n-1 there, but
       their results are discarded, so the simulation skips the work. *)
    for slot = 0 to m - 1 do
      let e = (block * m) + slot in
      if e < n then
        let bindings = inputs e in
        List.iter
          (fun (tr : Sysgen.System.transfer) ->
            match List.assoc_opt tr.Sysgen.System.array bindings with
            | None -> errf "element %d: missing input %s" e tr.Sysgen.System.array
            | Some data ->
                let words = tr.Sysgen.System.bytes / 8 in
                if Array.length data <> words then
                  errf "element %d: input %s has %d words, expected %d" e
                    tr.Sysgen.System.array (Array.length data) words;
                Array.blit data 0
                  (buffer slot tr.Sysgen.System.buffer)
                  tr.Sysgen.System.offset words)
          host.Sysgen.System.per_element_in
    done;
    (* m/k controller rounds: accelerator i drives PLM set
       i*batch + round; the active accelerators of a round run in
       parallel (disjoint frames). *)
    for round = 0 to batch - 1 do
      let active =
        List.filter
          (fun acc -> (block * m) + (acc * batch) + round < n)
          (List.init k Fun.id)
      in
      List.iter
        (function
          | Ok () -> ()
          | Error (e : Parallel.Pool.error) ->
              errf "accelerator %d (round %d, block %d): %s"
                e.Parallel.Pool.index round block e.Parallel.Pool.message)
        (Parallel.Pool.run pool
           (fun acc ->
             Loopir.Compiled.run exec plm.((acc * batch) + round))
           active)
    done;
    (* Output DMA. *)
    for slot = 0 to m - 1 do
      let e = (block * m) + slot in
      if e < n then
        results.(e) <-
          List.map
            (fun (tr : Sysgen.System.transfer) ->
              let words = tr.Sysgen.System.bytes / 8 in
              let buf = buffer slot tr.Sysgen.System.buffer in
              (tr.Sysgen.System.array, Array.sub buf tr.Sysgen.System.offset words))
            host.Sysgen.System.per_element_out
    done
  done);
  results
