exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type strategy = Sharded | Round_scheduled

let strategy_name = function
  | Sharded -> "sharded"
  | Round_scheduled -> "round-scheduled"

let strategy_of_string s : (strategy, string) result =
  match s with
  | "shard" | "sharded" -> Ok Sharded
  | "round" | "round-scheduled" -> Ok Round_scheduled
  | _ ->
      Result.Error
        (Printf.sprintf "unknown strategy %S (expected \"shard\" or \"round\")"
           s)

let default_jobs ~strategy ~n ~k =
  match strategy with
  (* Round-scheduled parallelism is bounded by the k accelerators of a
     controller round; sharded parallelism only by the element count. *)
  | Round_scheduled -> max 1 (min k (Parallel.Pool.default_jobs ()))
  | Sharded -> max 1 (min n (Parallel.Pool.default_jobs ()))

(* Simulation telemetry. The controller structure (blocks, rounds, padded
   tail, DMA volume) is fully determined by n and the solution — not by
   the strategy or job count — so the counters are computed analytically
   up front and flushed once per run, from the calling domain, and agree
   bit-for-bit across strategies; the per-shard, per-block and per-round
   spans only exist while tracing is on. *)
let c_elements = Obs.Metrics.counter "sim.elements"
let c_kernel_runs = Obs.Metrics.counter "sim.kernel-runs"
let c_rounds = Obs.Metrics.counter "sim.rounds"
let c_padded_skips = Obs.Metrics.counter "sim.padded-skips"
let c_dma_in = Obs.Metrics.counter "sim.dma.bytes_in"
let c_dma_out = Obs.Metrics.counter "sim.dma.bytes_out"
let c_shards = Obs.Metrics.counter "sim.shards"

(* [with_span] variant that does not even build its attribute list when
   tracing is off — shards, blocks and rounds are the simulator's hot
   loop. *)
let traced name attrs f =
  if Obs.Trace.enabled () then Obs.Trace.with_span ~attrs:(attrs ()) name f
  else f ()

let run ?jobs ?(strategy = Sharded) ~(system : Sysgen.System.t)
    ~(proc : Loopir.Prog.proc) ~inputs ~n () =
  let sol = system.Sysgen.System.solution in
  let k = sol.Sysgen.Replicate.k
  and m = sol.Sysgen.Replicate.m
  and batch = sol.Sysgen.Replicate.batch in
  let host = system.Sysgen.System.host in
  if n < 1 then errf "n must be positive";
  let jobs =
    match jobs with
    | None -> default_jobs ~strategy ~n ~k
    | Some j when j < 1 -> errf "jobs must be positive"
    | Some j -> j
  in
  (* The PLM access recorder reconstructs Kelly-schedule timestamps from
     the per-set DMA and access order of the real controller schedule;
     element shards run their own private frame sets in arbitrary
     interleaving, so those timestamps do not exist. Refuse up front,
     before any engine is compiled against the recorder. *)
  (match strategy with
  | Sharded when Memprof.Record.enabled () ->
      errf
        "strategy sharded: the PLM access recorder requires the \
         round-scheduled strategy (Kelly-schedule timestamps are not \
         reconstructable across element shards); rerun with \
         ~strategy:Round_scheduled"
  | _ -> ());
  (* The kernel is compiled once, at the strongest mode the static
     verifier licenses; all mutable execution state lives in frames, so
     one compiled program drives every frame set of every domain. *)
  let exec =
    Loopir.Compiled.compile ~mode:(Analysis.Verify.execution_mode proc) proc
  in
  let results = Array.make n [] in
  let blocks = (n + m - 1) / m in
  let bytes_per_element trs =
    List.fold_left
      (fun acc (tr : Sysgen.System.transfer) -> acc + tr.Sysgen.System.bytes)
      0 trs
  in
  Obs.Metrics.add c_elements n;
  Obs.Metrics.add c_kernel_runs n;
  Obs.Metrics.add c_rounds (blocks * batch);
  Obs.Metrics.add c_padded_skips ((blocks * m) - n);
  Obs.Metrics.add c_dma_in (n * bytes_per_element host.Sysgen.System.per_element_in);
  Obs.Metrics.add c_dma_out
    (n * bytes_per_element host.Sysgen.System.per_element_out);
  (* Staging helpers shared by both strategies, parameterized by the
     frame set in use ([record] feeds the memprof DMA accounting, which
     is only meaningful — and only enabled — on the round-scheduled
     path). *)
  let buffer frames slot name =
    match Loopir.Compiled.buffer exec frames.(slot) name with
    | b -> b
    | exception Loopir.Compiled.Error _ -> errf "unknown PLM buffer %s" name
  in
  let dma_in ~record frames ~slot e =
    let bindings = inputs e in
    List.iter
      (fun (tr : Sysgen.System.transfer) ->
        match List.assoc_opt tr.Sysgen.System.array bindings with
        | None -> errf "element %d: missing input %s" e tr.Sysgen.System.array
        | Some data ->
            let words = tr.Sysgen.System.bytes / 8 in
            if Array.length data <> words then
              errf "element %d: input %s has %d words, expected %d" e
                tr.Sysgen.System.array (Array.length data) words;
            Array.blit data 0
              (buffer frames slot tr.Sysgen.System.buffer)
              tr.Sysgen.System.offset words;
            if record then Memprof.Record.record_dma ~set:slot ~dir:`In ~words)
      host.Sysgen.System.per_element_in
  in
  let dma_out ~record frames ~slot e =
    results.(e) <-
      List.map
        (fun (tr : Sysgen.System.transfer) ->
          let words = tr.Sysgen.System.bytes / 8 in
          let buf = buffer frames slot tr.Sysgen.System.buffer in
          if record then Memprof.Record.record_dma ~set:slot ~dir:`Out ~words;
          (tr.Sysgen.System.array, Array.sub buf tr.Sysgen.System.offset words))
        host.Sysgen.System.per_element_out
  in
  (* --- Round-scheduled: the Kelly-schedule-faithful host main loop.
     Blocks of m elements; within a block, m/k controller rounds whose k
     active accelerators (disjoint PLM-set frames) run Domain-parallel.
     Each round is a pool dispatch of at most k tiny tasks. --- *)
  let run_round_scheduled () =
    let plm = Loopir.Compiled.make_frames exec m in
    (* One persistent pool for the whole run: controller rounds are
       fine-grained (a handful of kernel executions), so per-round domain
       spawns would dominate; the pool's helpers are spawned once. *)
    Parallel.Pool.with_pool ~jobs (fun pool ->
        for block = 0 to blocks - 1 do
          traced "sim.block"
            (fun () -> [ ("block", string_of_int block) ])
            (fun () ->
              (* Input DMA: one element per PLM set. The padded tail of the
                 final block gets no transfer and no execution — the
                 hardware's full-block transfers carry duplicates of element
                 n-1 there, but their results are discarded, so the
                 simulation skips the work. *)
              for slot = 0 to m - 1 do
                let e = (block * m) + slot in
                if e < n then dma_in ~record:true plm ~slot e
              done;
              (* m/k controller rounds: accelerator i drives PLM set
                 i*batch + round; the active accelerators of a round run in
                 parallel (disjoint frames). *)
              for round = 0 to batch - 1 do
                let active =
                  List.filter
                    (fun acc -> (block * m) + (acc * batch) + round < n)
                    (List.init k Fun.id)
                in
                traced "sim.round"
                  (fun () ->
                    [
                      ("block", string_of_int block);
                      ("round", string_of_int round);
                      ("active", string_of_int (List.length active));
                    ])
                  (fun () ->
                    List.iter
                      (function
                        | Ok () -> ()
                        | Error (e : Parallel.Pool.error) ->
                            (* Raise the simulator's error but keep the
                               backtrace captured in the worker domain, so
                               the report points at the task's real raise
                               site. *)
                            let msg =
                              Format.asprintf
                                "accelerator %d (round %d, block %d): %s"
                                e.Parallel.Pool.index round block
                                e.Parallel.Pool.message
                            in
                            Printexc.raise_with_backtrace (Error msg)
                              e.Parallel.Pool.raw_backtrace)
                      (Parallel.Pool.run pool
                         (fun acc ->
                           Loopir.Compiled.run exec plm.((acc * batch) + round))
                         active))
              done;
              (* Output DMA. *)
              for slot = 0 to m - 1 do
                let e = (block * m) + slot in
                if e < n then dma_out ~record:true plm ~slot e
              done)
        done)
  in
  (* --- Sharded: contiguous element shards, one long-lived task per
     worker domain. Each shard allocates its own frame set in its own
     domain (domain-local buffers, no shared mutable state between
     shards) and batches the whole DMA-in → execute → DMA-out cycle over
     its elements, so pool dispatch is paid once per shard instead of
     once per controller round. Results land in disjoint slices of
     [results]. --- *)
  let run_shard ~shard ~lo ~hi =
    traced "sim.shard"
      (fun () ->
        [
          ("shard", string_of_int shard);
          ("lo", string_of_int lo);
          ("hi", string_of_int hi);
          ("elements", string_of_int (hi - lo));
        ])
      (fun () ->
        let frames = Loopir.Compiled.make_frames exec (min m (hi - lo)) in
        let mf = Array.length frames in
        let pos = ref lo in
        while !pos < hi do
          let stop = min hi (!pos + mf) in
          for e = !pos to stop - 1 do
            dma_in ~record:false frames ~slot:(e - !pos) e
          done;
          for e = !pos to stop - 1 do
            try Loopir.Compiled.run exec frames.(e - !pos)
            with exn ->
              (* Name the failing element (the shard shape is jobs-
                 dependent, the element index is not) and keep the
                 backtrace of the real raise site. *)
              let raw = Printexc.get_raw_backtrace () in
              Printexc.raise_with_backtrace
                (Error
                   (Printf.sprintf "element %d: %s" e (Printexc.to_string exn)))
                raw
          done;
          for e = !pos to stop - 1 do
            dma_out ~record:false frames ~slot:(e - !pos) e
          done;
          pos := stop
        done)
  in
  let run_sharded () =
    let jobs = min jobs n in
    Obs.Metrics.add c_shards jobs;
    if jobs = 1 then run_shard ~shard:0 ~lo:0 ~hi:n
    else
      Parallel.Pool.with_pool ~jobs (fun pool ->
          (* One dispatch, one join: shard errors are captured per slot,
             so one failing shard never aborts or corrupts the others;
             the lowest-indexed failing shard — the one holding the
             lowest failing element, since shards are contiguous and run
             their elements in order — is re-raised, reproducing the
             sequential first-failure semantics independent of [jobs]. *)
          List.iter
            (function
              | Ok () -> ()
              | Error (e : Parallel.Pool.error) -> Parallel.Pool.reraise e)
            (Parallel.Pool.run_chunked pool ~n ~shards:jobs
               (fun ~shard ~lo ~hi -> run_shard ~shard ~lo ~hi)))
  in
  traced "sim.functional"
    (fun () ->
      [
        ("n", string_of_int n);
        ("k", string_of_int k);
        ("m", string_of_int m);
        ("jobs", string_of_int jobs);
        ("strategy", strategy_name strategy);
      ])
    (fun () ->
      match strategy with
      | Round_scheduled -> run_round_scheduled ()
      | Sharded -> run_sharded ());
  results
