exception Error of string

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* Simulation telemetry. The controller structure (blocks, rounds, padded
   tail, DMA volume) is fully determined by n and the solution, so the
   counters are computed analytically up front and flushed once per run;
   the per-block and per-round spans only exist while tracing is on. *)
let c_elements = Obs.Metrics.counter "sim.elements"
let c_kernel_runs = Obs.Metrics.counter "sim.kernel-runs"
let c_rounds = Obs.Metrics.counter "sim.rounds"
let c_padded_skips = Obs.Metrics.counter "sim.padded-skips"
let c_dma_in = Obs.Metrics.counter "sim.dma.bytes_in"
let c_dma_out = Obs.Metrics.counter "sim.dma.bytes_out"

(* [with_span] variant that does not even build its attribute list when
   tracing is off — blocks and rounds are the simulator's hot loop. *)
let traced name attrs f =
  if Obs.Trace.enabled () then Obs.Trace.with_span ~attrs:(attrs ()) name f
  else f ()

let run ?jobs ~(system : Sysgen.System.t) ~(proc : Loopir.Prog.proc) ~inputs ~n
    () =
  let sol = system.Sysgen.System.solution in
  let k = sol.Sysgen.Replicate.k
  and m = sol.Sysgen.Replicate.m
  and batch = sol.Sysgen.Replicate.batch in
  let host = system.Sysgen.System.host in
  if n < 1 then errf "n must be positive";
  let jobs =
    match jobs with
    | None -> min k (Parallel.Pool.default_jobs ())
    | Some j when j < 1 -> errf "jobs must be positive"
    | Some j -> j
  in
  (* The kernel is compiled once, at the strongest mode the static
     verifier licenses; each PLM set gets its own frame, so the k
     accelerators of a controller round touch disjoint state and can
     run Domain-parallel. *)
  let exec =
    Loopir.Compiled.compile ~mode:(Analysis.Verify.execution_mode proc) proc
  in
  let plm = Array.init m (fun _ -> Loopir.Compiled.make_frame exec) in
  let buffer slot name =
    match Loopir.Compiled.buffer exec plm.(slot) name with
    | b -> b
    | exception Loopir.Compiled.Error _ -> errf "unknown PLM buffer %s" name
  in
  let results = Array.make n [] in
  let blocks = (n + m - 1) / m in
  let bytes_per_element trs =
    List.fold_left
      (fun acc (tr : Sysgen.System.transfer) -> acc + tr.Sysgen.System.bytes)
      0 trs
  in
  Obs.Metrics.add c_elements n;
  Obs.Metrics.add c_kernel_runs n;
  Obs.Metrics.add c_rounds (blocks * batch);
  Obs.Metrics.add c_padded_skips ((blocks * m) - n);
  Obs.Metrics.add c_dma_in (n * bytes_per_element host.Sysgen.System.per_element_in);
  Obs.Metrics.add c_dma_out
    (n * bytes_per_element host.Sysgen.System.per_element_out);
  traced "sim.functional"
    (fun () ->
      [
        ("n", string_of_int n);
        ("k", string_of_int k);
        ("m", string_of_int m);
        ("jobs", string_of_int jobs);
      ])
    (fun () ->
  (* One persistent pool for the whole run: controller rounds are
     fine-grained (a handful of kernel executions), so per-round domain
     spawns would dominate; the pool's helpers are spawned once. *)
  Parallel.Pool.with_pool ~jobs (fun pool ->
  for block = 0 to blocks - 1 do
    traced "sim.block" (fun () -> [ ("block", string_of_int block) ]) (fun () ->
    (* Input DMA: one element per PLM set. The padded tail of the final
       block gets no transfer and no execution — the hardware's
       full-block transfers carry duplicates of element n-1 there, but
       their results are discarded, so the simulation skips the work. *)
    for slot = 0 to m - 1 do
      let e = (block * m) + slot in
      if e < n then
        let bindings = inputs e in
        List.iter
          (fun (tr : Sysgen.System.transfer) ->
            match List.assoc_opt tr.Sysgen.System.array bindings with
            | None -> errf "element %d: missing input %s" e tr.Sysgen.System.array
            | Some data ->
                let words = tr.Sysgen.System.bytes / 8 in
                if Array.length data <> words then
                  errf "element %d: input %s has %d words, expected %d" e
                    tr.Sysgen.System.array (Array.length data) words;
                Array.blit data 0
                  (buffer slot tr.Sysgen.System.buffer)
                  tr.Sysgen.System.offset words;
                Memprof.Record.record_dma ~set:slot ~dir:`In ~words)
          host.Sysgen.System.per_element_in
    done;
    (* m/k controller rounds: accelerator i drives PLM set
       i*batch + round; the active accelerators of a round run in
       parallel (disjoint frames). *)
    for round = 0 to batch - 1 do
      let active =
        List.filter
          (fun acc -> (block * m) + (acc * batch) + round < n)
          (List.init k Fun.id)
      in
      traced "sim.round"
        (fun () ->
          [
            ("block", string_of_int block);
            ("round", string_of_int round);
            ("active", string_of_int (List.length active));
          ])
        (fun () ->
          List.iter
            (function
              | Ok () -> ()
              | Error (e : Parallel.Pool.error) ->
                  (* Raise the simulator's error but keep the backtrace
                     captured in the worker domain, so the report points
                     at the task's real raise site. *)
                  let msg =
                    Format.asprintf "accelerator %d (round %d, block %d): %s"
                      e.Parallel.Pool.index round block e.Parallel.Pool.message
                  in
                  Printexc.raise_with_backtrace (Error msg)
                    e.Parallel.Pool.raw_backtrace)
            (Parallel.Pool.run pool
               (fun acc ->
                 Loopir.Compiled.run exec plm.((acc * batch) + round))
               active))
    done;
    (* Output DMA. *)
    for slot = 0 to m - 1 do
      let e = (block * m) + slot in
      if e < n then
        results.(e) <-
          List.map
            (fun (tr : Sysgen.System.transfer) ->
              let words = tr.Sysgen.System.bytes / 8 in
              let buf = buffer slot tr.Sysgen.System.buffer in
              Memprof.Record.record_dma ~set:slot ~dir:`Out ~words;
              (tr.Sysgen.System.array, Array.sub buf tr.Sysgen.System.offset words))
            host.Sysgen.System.per_element_out
    done)
  done));
  results
