(** Functional simulation of the complete parallel system.

    Where {!Perf} models time, this module models {e data}: it executes
    the host main loop of Section V-B against real memories — per-element
    input DMA into the PLM sets, kernel execution on each element through
    the {!Loopir.Compiled} engine (at the strongest mode the static
    verifier licenses, {!Analysis.Verify.execution_mode}), and output DMA
    back.

    This validates the pieces no per-kernel test can: the host transfer
    list, the storage offsets into shared PLM buffers, and the
    accelerator-to-PLM steering across rounds.

    Two scheduling strategies drive the same per-element cycle and
    produce bit-identical results (property-tested in
    [test/test_sim_par.ml]):

    - {!Sharded} (the default, and the fast path): the n elements are
      partitioned into contiguous shards, one long-lived task per worker
      domain. Each domain allocates its own frame set and batches the
      whole DMA-in → execute → DMA-out cycle over its shard, so pool
      dispatch is amortized over the shard's hundreds of kernel runs and
      no state is shared between domains (no false sharing).
    - {!Round_scheduled}: the Kelly-schedule-faithful host main loop —
      blocks of [m] elements, [m/k] controller rounds each running the
      [k] accelerator instances on the PLM set selected by the batch
      counter (Figure 7c), one frame per PLM set. This is the schedule
      the memory profiler ([Memprof.Record]) reconstructs Kelly
      timestamps from; recording {e requires} it, and {!run} refuses the
      sharded strategy while the recorder is enabled.

    Results are independent of [strategy] and [jobs]. *)

exception Error of string

type strategy =
  | Sharded
      (** Element-sharded: contiguous shards, one per domain, private
          frame sets, dispatch amortized over the whole run. *)
  | Round_scheduled
      (** Controller-round-faithful: k-way parallelism within each
          round, per-round joins. Required by the PLM access recorder. *)

val strategy_name : strategy -> string
(** ["sharded"] / ["round-scheduled"]. *)

val strategy_of_string : string -> (strategy, string) result
(** Accepts ["shard"]/["sharded"] and ["round"]/["round-scheduled"]
    (the CLI spellings). *)

val default_jobs : strategy:strategy -> n:int -> k:int -> int
(** The job count {!run} uses when [?jobs] is not given: the recommended
    domain count, capped by the available parallelism of the strategy —
    the [n] elements for {!Sharded}, the [k] accelerators of a round for
    {!Round_scheduled} (never below 1). *)

val run :
  ?jobs:int ->
  ?strategy:strategy ->
  system:Sysgen.System.t ->
  proc:Loopir.Prog.proc ->
  inputs:(int -> (string * float array) list) ->
  n:int ->
  unit ->
  (string * float array) list array
(** [run ~system ~proc ~inputs ~n ()] processes elements [0 .. n-1];
    [inputs e] supplies each {e logical} input array (by its tensor name,
    dense row-major) for element [e]. Returns per-element bindings of the
    logical output arrays. [n] need not be a multiple of [m]; the padded
    slots of the final block get no transfer and no execution (the
    hardware runs them on duplicate data and discards the results).

    [strategy] defaults to {!Sharded}; [jobs] defaults to
    {!default_jobs} and bounds the worker domains (shards run at most
    [min jobs n] domains). Under {!Sharded} with [jobs > 1], [inputs]
    is called from worker domains and must be safe for concurrent calls
    (any pure function is). A failing element raises {!Error} naming its
    element index — the same error regardless of [jobs] — with the
    backtrace captured at the worker's raise site, and never corrupts
    the results of other shards.

    The [sim.*] counters (elements, kernel runs, rounds, padded skips,
    DMA bytes) describe the simulated hardware schedule, which is fixed
    by [n] and the solution, so their values are identical across
    strategies and job counts.

    @raise Error on missing inputs, size mismatches, [jobs < 1], or the
    sharded strategy while [Memprof.Record] is enabled (Kelly-schedule
    timestamps are only reconstructable from the round-scheduled
    order). *)
