(** Functional simulation of the complete parallel system.

    Where {!Perf} models time, this module models {e data}: it executes
    the host main loop of Section V-B against real memories — per-element
    input DMA into the PLM sets, [m/k] controller rounds in which each of
    the [k] accelerator instances runs the generated kernel on the PLM set
    selected by the batch counter (Figure 7c), and output DMA back — using
    the {!Loopir.Compiled} engine as each accelerator's datapath, at the
    strongest mode the static verifier licenses
    ({!Analysis.Verify.execution_mode}).

    This validates the pieces no per-kernel test can: the host transfer
    list, the storage offsets into shared PLM buffers, and the
    accelerator-to-PLM steering across rounds.

    The kernel is compiled once and each PLM set owns one frame, so the
    [k] accelerators of a controller round are independent and run
    Domain-parallel; results are independent of [jobs]. *)

exception Error of string

val run :
  ?jobs:int ->
  system:Sysgen.System.t ->
  proc:Loopir.Prog.proc ->
  inputs:(int -> (string * float array) list) ->
  n:int ->
  unit ->
  (string * float array) list array
(** [run ~system ~proc ~inputs ~n ()] processes elements [0 .. n-1];
    [inputs e] supplies each {e logical} input array (by its tensor name,
    dense row-major) for element [e]. Returns per-element bindings of the
    logical output arrays. [n] need not be a multiple of [m]; the padded
    slots of the final block get no transfer and no execution (the
    hardware runs them on duplicate data and discards the results).
    [jobs] bounds the domains running accelerators within a round
    (default: the smaller of [k] and the recommended domain count).
    @raise Error on missing inputs, size mismatches, or [jobs < 1]. *)
