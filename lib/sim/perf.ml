type hw_result = {
  k : int;
  m : int;
  exec_cycles : int;
  transfer_cycles : int;
  total_cycles : int;
  exec_seconds : float;
  total_seconds : float;
}

type sw_result = { flops_per_element : int; cpu_cycles : float; seconds : float }

let transfer_cycles ~bytes ~board =
  let ideal =
    float_of_int bytes
    /. float_of_int board.Fpga_platform.Board.axi_bytes_per_cycle
  in
  int_of_float (Float.ceil (ideal /. Constants.axi_efficiency))

(* The controller round is simulated cycle-by-cycle, which dominates the
   wall-clock of a design-space sweep (~latency cycles per configuration,
   with latencies in the millions for unfactorized kernels). For uniform
   latencies the round is a pure function of (k, batch, latency), and many
   configurations of a sweep share all three — memoize it. *)
let round_memo : (int * int * int, int) Poly.Memo.t =
  Poly.Memo.create ~name:"sim.round" ()

let simulated_round_cycles ~k ~batch ~latency =
  Poly.Memo.find_or_compute round_memo (k, batch, latency) (fun () ->
      let ctrl = Sysgen.Axi_ctrl.create ~k ~batch in
      Sysgen.Axi_ctrl.run_round ctrl ~latencies:(Array.make k latency))

let c_perf_runs = Obs.Metrics.counter "sim.perf.runs"
let h_total_cycles = Obs.Metrics.histogram "sim.perf.total-cycles"

let run_hw_general ~overlap ~(system : Sysgen.System.t) ~board =
  let sol = system.Sysgen.System.solution in
  let k = sol.Sysgen.Replicate.k and m = sol.Sysgen.Replicate.m in
  if overlap && m < 2 * k then
    invalid_arg "Perf.run_hw: overlap requires m >= 2k (double buffering)";
  Obs.Metrics.incr c_perf_runs;
  Obs.Trace.with_span "sim.perf" @@ fun () ->
  Obs.Trace.span_attr "k" (string_of_int k);
  Obs.Trace.span_attr "m" (string_of_int m);
  let host = system.Sysgen.System.host in
  let latency = system.Sysgen.System.kernel.Hls.Model.latency_cycles in
  (* Every round is identical (same latency on all k accelerators), so
     one round is simulated cycle-by-cycle through the controller FSM and
     the result is multiplied out over the host main loop. *)
  let round_cycles = simulated_round_cycles ~k
      ~batch:host.Sysgen.System.rounds_per_block ~latency in
  let block_in =
    transfer_cycles ~bytes:(m * host.Sysgen.System.bytes_in_per_element) ~board
  in
  let block_out =
    transfer_cycles ~bytes:(m * host.Sysgen.System.bytes_out_per_element) ~board
  in
  let blocks = host.Sysgen.System.block_iterations in
  let compute_block = host.Sysgen.System.rounds_per_block * round_cycles in
  let io_block = block_in + block_out in
  let exec = ref (blocks * compute_block) in
  let transfer = ref (blocks * io_block) in
  let freq = float_of_int board.Fpga_platform.Board.fmax_mhz *. 1e6 in
  let total =
    if overlap then
      (* two-stage pipeline: fill with the first block's input, drain with
         the last block's output; steady state is bound by the slower of
         DMA and compute *)
      io_block + (blocks * max io_block compute_block)
    else !exec + !transfer
  in
  Obs.Trace.span_attr "round_cycles" (string_of_int round_cycles);
  Obs.Metrics.observe h_total_cycles (float_of_int total);
  {
    k;
    m;
    exec_cycles = !exec;
    transfer_cycles = !transfer;
    total_cycles = total;
    exec_seconds = float_of_int !exec /. freq;
    total_seconds = float_of_int total /. freq;
  }

let run_sw ~variant ~flops_per_element ~n_elements ~board =
  let penalty =
    match variant with
    | `Reference -> 1.0
    | `Hls_code -> Constants.hls_code_cpu_penalty
  in
  let cycles =
    float_of_int flops_per_element
    *. float_of_int n_elements *. Constants.arm_cycles_per_flop *. penalty
  in
  let freq = float_of_int board.Fpga_platform.Board.host_clock_mhz *. 1e6 in
  { flops_per_element; cpu_cycles = cycles; seconds = cycles /. freq }

let run_hw ~system ~board = run_hw_general ~overlap:false ~system ~board
let run_hw_overlapped ~system ~board = run_hw_general ~overlap:true ~system ~board

let accel_speedup ~baseline r =
  float_of_int baseline.exec_cycles /. float_of_int r.exec_cycles

let total_speedup ~baseline r =
  float_of_int baseline.total_cycles /. float_of_int r.total_cycles

let speedup_vs_sw ~sw r = sw.seconds /. r.total_seconds

let pp_hw ppf r =
  Format.fprintf ppf
    "k=%d m=%d: exec %d cycles (%.3f s), transfers %d cycles, total %.3f s"
    r.k r.m r.exec_cycles r.exec_seconds r.transfer_cycles r.total_seconds
