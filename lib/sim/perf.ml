type hw_result = {
  k : int;
  m : int;
  exec_cycles : int;
  transfer_cycles : int;
  total_cycles : int;
  exec_seconds : float;
  total_seconds : float;
}

type sw_result = { flops_per_element : int; cpu_cycles : float; seconds : float }

let transfer_cycles ~bytes ~board =
  let ideal =
    float_of_int bytes
    /. float_of_int board.Fpga_platform.Board.axi_bytes_per_cycle
  in
  int_of_float (Float.ceil (ideal /. Constants.axi_efficiency))

(* The controller round is simulated cycle-by-cycle, which dominates the
   wall-clock of a design-space sweep (~latency cycles per configuration,
   with latencies in the millions for unfactorized kernels). For uniform
   latencies the round is a pure function of (k, batch, latency), and many
   configurations of a sweep share all three — memoize it. *)
let round_memo : (int * int * int, int) Poly.Memo.t =
  Poly.Memo.create ~name:"sim.round" ()

let simulated_round_cycles ~k ~batch ~latency =
  Poly.Memo.find_or_compute round_memo (k, batch, latency) (fun () ->
      let ctrl = Sysgen.Axi_ctrl.create ~k ~batch in
      Sysgen.Axi_ctrl.run_round ctrl ~latencies:(Array.make k latency))

let c_perf_runs = Obs.Metrics.counter "sim.perf.runs"
let h_total_cycles = Obs.Metrics.histogram "sim.perf.total-cycles"

(* Double buffering halves the PLM sets: one half holds the block in
   flight while the other is drained/filled. The guard is exposed
   non-raising so CLI paths can surface it as a stable diagnostic
   ([sim-overlap-infeasible]) instead of a crash. *)
let overlap_requirement ~k ~m =
  if m >= 2 * k then None
  else
    Some
      (Printf.sprintf
         "overlap requires m >= 2k for double buffering, got m=%d < 2k=%d \
          (k=%d accelerators)"
         m (2 * k) k)

(* The per-phase emission behind [Obs.Timeline]: every quantity is
   already closed-form, so the phases are laid out directly on the
   cycle clock. Non-overlapped blocks tile the host track back to back
   (dma-in, compute, dma-out); the overlapped pipeline is fill +
   [blocks] steady-state slots of max(io, compute) + drain, with the
   DMA engine draining block b-1 and prefetching block b+1 inside slot
   b. Controller rounds and per-kernel executions are nested inside
   every compute window, so the ctrl track's busy cycles sum to
   exec_cycles and the dma track's to transfer_cycles exactly. *)
let emit_timeline ~overlap ~k ~latency ~round_cycles ~block_in ~block_out
    ~blocks ~batch =
  let compute_block = batch * round_cycles in
  let io_block = block_in + block_out in
  let acc = Array.init k (fun i -> "acc" ^ string_of_int i) in
  let block_attr b = [ ("block", string_of_int b) ] in
  let emit_compute ~block ~start =
    for r = 0 to batch - 1 do
      let rs = start + (r * round_cycles) in
      let attrs =
        [ ("block", string_of_int block); ("round", string_of_int r) ]
      in
      Obs.Timeline.phase ~track:"ctrl" ~name:"round" ~start:rs
        ~dur:round_cycles ~attrs ();
      for i = 0 to k - 1 do
        Obs.Timeline.phase ~track:acc.(i) ~name:"kernel" ~start:rs
          ~dur:latency ~attrs ()
      done
    done
  in
  if not overlap then
    for b = 0 to blocks - 1 do
      let base = b * (io_block + compute_block) in
      Obs.Timeline.phase ~track:"host" ~name:"dma-in" ~start:base
        ~dur:block_in ~attrs:(block_attr b) ();
      Obs.Timeline.phase ~track:"dma" ~name:"dma-in" ~start:base
        ~dur:block_in ~attrs:(block_attr b) ();
      Obs.Timeline.phase ~track:"host" ~name:"compute"
        ~start:(base + block_in) ~dur:compute_block ~attrs:(block_attr b) ();
      emit_compute ~block:b ~start:(base + block_in);
      let out_start = base + block_in + compute_block in
      Obs.Timeline.phase ~track:"host" ~name:"dma-out" ~start:out_start
        ~dur:block_out ~attrs:(block_attr b) ();
      Obs.Timeline.phase ~track:"dma" ~name:"dma-out" ~start:out_start
        ~dur:block_out ~attrs:(block_attr b) ()
    done
  else begin
    let steady = max io_block compute_block in
    Obs.Timeline.phase ~track:"host" ~name:"fill" ~start:0 ~dur:block_in
      ~attrs:(block_attr 0) ();
    Obs.Timeline.phase ~track:"dma" ~name:"dma-in" ~start:0 ~dur:block_in
      ~attrs:(block_attr 0) ();
    for b = 0 to blocks - 1 do
      let slot = block_in + (b * steady) in
      Obs.Timeline.phase ~track:"host" ~name:"steady" ~start:slot ~dur:steady
        ~attrs:(block_attr b) ();
      emit_compute ~block:b ~start:slot;
      if b > 0 then
        Obs.Timeline.phase ~track:"dma" ~name:"dma-out" ~start:slot
          ~dur:block_out ~attrs:(block_attr (b - 1)) ();
      if b < blocks - 1 then
        Obs.Timeline.phase ~track:"dma" ~name:"dma-in"
          ~start:(slot + if b > 0 then block_out else 0)
          ~dur:block_in ~attrs:(block_attr (b + 1)) ()
    done;
    let drain = block_in + (blocks * steady) in
    Obs.Timeline.phase ~track:"host" ~name:"drain" ~start:drain
      ~dur:block_out ~attrs:(block_attr (blocks - 1)) ();
    Obs.Timeline.phase ~track:"dma" ~name:"dma-out" ~start:drain
      ~dur:block_out ~attrs:(block_attr (blocks - 1)) ()
  end

let run_hw_general ~overlap ~(system : Sysgen.System.t) ~board =
  let sol = system.Sysgen.System.solution in
  let k = sol.Sysgen.Replicate.k and m = sol.Sysgen.Replicate.m in
  (if overlap then
     match overlap_requirement ~k ~m with
     | Some msg -> invalid_arg ("Perf.run_hw: " ^ msg)
     | None -> ());
  Obs.Metrics.incr c_perf_runs;
  Obs.Trace.with_span "sim.perf" @@ fun () ->
  Obs.Trace.span_attr "k" (string_of_int k);
  Obs.Trace.span_attr "m" (string_of_int m);
  let host = system.Sysgen.System.host in
  let latency = system.Sysgen.System.kernel.Hls.Model.latency_cycles in
  (* Every round is identical (same latency on all k accelerators), so
     one round is simulated cycle-by-cycle through the controller FSM and
     the result is multiplied out over the host main loop. *)
  let round_cycles = simulated_round_cycles ~k
      ~batch:host.Sysgen.System.rounds_per_block ~latency in
  let block_in =
    transfer_cycles ~bytes:(m * host.Sysgen.System.bytes_in_per_element) ~board
  in
  let block_out =
    transfer_cycles ~bytes:(m * host.Sysgen.System.bytes_out_per_element) ~board
  in
  let blocks = host.Sysgen.System.block_iterations in
  let batch = host.Sysgen.System.rounds_per_block in
  let compute_block = batch * round_cycles in
  let io_block = block_in + block_out in
  if Obs.Timeline.enabled () then
    emit_timeline ~overlap ~k ~latency ~round_cycles ~block_in ~block_out
      ~blocks ~batch;
  let exec = ref (blocks * compute_block) in
  let transfer = ref (blocks * io_block) in
  let freq = float_of_int board.Fpga_platform.Board.fmax_mhz *. 1e6 in
  let total =
    if overlap then
      (* two-stage pipeline: fill with the first block's input, drain with
         the last block's output; steady state is bound by the slower of
         DMA and compute *)
      io_block + (blocks * max io_block compute_block)
    else !exec + !transfer
  in
  Obs.Trace.span_attr "round_cycles" (string_of_int round_cycles);
  Obs.Metrics.observe h_total_cycles (float_of_int total);
  {
    k;
    m;
    exec_cycles = !exec;
    transfer_cycles = !transfer;
    total_cycles = total;
    exec_seconds = float_of_int !exec /. freq;
    total_seconds = float_of_int total /. freq;
  }

let run_sw ~variant ~flops_per_element ~n_elements ~board =
  let penalty =
    match variant with
    | `Reference -> 1.0
    | `Hls_code -> Constants.hls_code_cpu_penalty
  in
  let cycles =
    float_of_int flops_per_element
    *. float_of_int n_elements *. Constants.arm_cycles_per_flop *. penalty
  in
  let freq = float_of_int board.Fpga_platform.Board.host_clock_mhz *. 1e6 in
  { flops_per_element; cpu_cycles = cycles; seconds = cycles /. freq }

let run_hw ~system ~board = run_hw_general ~overlap:false ~system ~board
let run_hw_overlapped ~system ~board = run_hw_general ~overlap:true ~system ~board

let accel_speedup ~baseline r =
  float_of_int baseline.exec_cycles /. float_of_int r.exec_cycles

let total_speedup ~baseline r =
  float_of_int baseline.total_cycles /. float_of_int r.total_cycles

let speedup_vs_sw ~sw r = sw.seconds /. r.total_seconds

let pp_hw ppf r =
  Format.fprintf ppf
    "k=%d m=%d: exec %d cycles (%.3f s), transfers %d cycles, total %.3f s"
    r.k r.m r.exec_cycles r.exec_seconds r.transfer_cycles r.total_seconds
