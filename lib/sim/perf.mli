(** Performance simulation of the complete system: the host main loop of
    Section V-B driven by the AXI-lite controller model, the transfer
    model, and the analytical ARM baseline. Regenerates the measurements
    behind Figures 9 and 10. *)

type hw_result = {
  k : int;
  m : int;
  exec_cycles : int;  (** accelerator-only cycles for the whole run *)
  transfer_cycles : int;
  total_cycles : int;
  exec_seconds : float;
  total_seconds : float;
}

type sw_result = {
  flops_per_element : int;
  cpu_cycles : float;
  seconds : float;
}

val transfer_cycles : bytes:int -> board:Fpga_platform.Board.t -> int
(** Cycles (at the accelerator clock) to move [bytes] over the AXI path
    at the calibrated efficiency. *)

val overlap_requirement : k:int -> m:int -> string option
(** [None] when the double-buffering requirement [m >= 2k] holds,
    otherwise [Some message] naming the requirement and the offending
    values. CLI and explore paths use this to turn an infeasible
    overlapped run into a stable [sim-overlap-infeasible] diagnostic
    instead of an exception. *)

val run_hw :
  system:Sysgen.System.t -> board:Fpga_platform.Board.t -> hw_result
(** Simulates the host main loop: [N_e / m] iterations of (input
    transfers for m elements; m/k controller rounds, each fired through
    {!Sysgen.Axi_ctrl.run_round}; output transfers). No transfer/compute
    overlap — reproducing the paper's evaluated implementation, and the
    reason its k<m batching experiments showed no improvement.

    When {!Obs.Timeline.enabled} the run also emits every phase
    instance (per-block dma-in / dma-out on the ["host"] and ["dma"]
    tracks, controller rounds on ["ctrl"], per-kernel executions on
    ["acc<i>"]) on the modeled cycle clock; the disabled path is a
    single branch — bit-identical results, no allocation. *)

val run_hw_overlapped :
  system:Sysgen.System.t -> board:Fpga_platform.Board.t -> hw_result
(** Models the double-buffered data transfers the paper lists as future
    work: requires [m >= 2k] (half the PLM sets hold the in-flight block
    while the other half is drained/filled) and pipelines each block's
    transfers against the previous block's compute rounds; steady-state
    block time is [max(transfers, compute)]. Emits fill / steady /
    drain timeline phases under the same gate as {!run_hw}.
    @raise Invalid_argument when [m < 2k] (see {!overlap_requirement}). *)

val run_sw :
  variant:[ `Reference | `Hls_code ] ->
  flops_per_element:int ->
  n_elements:int ->
  board:Fpga_platform.Board.t ->
  sw_result
(** Analytical ARM A53 execution of the reference (or HLS-tuned) code. *)

val accel_speedup : baseline:hw_result -> hw_result -> float
(** Accelerator-only speedup (Figure 9, left series). *)

val total_speedup : baseline:hw_result -> hw_result -> float
(** End-to-end speedup including transfers (Figure 9, right series). *)

val speedup_vs_sw : sw:sw_result -> hw_result -> float
(** Figure 10. *)

val pp_hw : Format.formatter -> hw_result -> unit
