type state = Idle | Start_pending | Running

type t = {
  k_ : int;
  batch_ : int;
  mutable st : state;
  mutable batch_index : int;
  done_seen : bool array;
}

type outputs = { ap_start_broadcast : bool; irq : bool; batch_index : int }

exception Protocol_error of string

let create ~k ~batch =
  if k < 1 then raise (Protocol_error "k must be >= 1");
  if batch < 1 then raise (Protocol_error "batch must be >= 1");
  { k_ = k; batch_ = batch; st = Idle; batch_index = 0; done_seen = Array.make k false }

let k t = t.k_
let batch t = t.batch_
let busy t = t.st <> Idle

let write_start t =
  if t.st <> Idle then raise (Protocol_error "start written while busy");
  t.st <- Start_pending

let step t ~ready ~done_ =
  if Array.length ready <> t.k_ || Array.length done_ <> t.k_ then
    raise (Protocol_error "status array width mismatch");
  match t.st with
  | Idle -> { ap_start_broadcast = false; irq = false; batch_index = t.batch_index }
  | Start_pending ->
      if Array.for_all Fun.id ready then begin
        t.st <- Running;
        Array.fill t.done_seen 0 t.k_ false;
        { ap_start_broadcast = true; irq = false; batch_index = t.batch_index }
      end
      else { ap_start_broadcast = false; irq = false; batch_index = t.batch_index }
  | Running ->
      Array.iteri (fun i d -> if d then t.done_seen.(i) <- true) done_;
      if Array.for_all Fun.id t.done_seen then begin
        t.st <- Idle;
        let index = t.batch_index in
        t.batch_index <- (t.batch_index + 1) mod t.batch_;
        { ap_start_broadcast = false; irq = true; batch_index = index }
      end
      else { ap_start_broadcast = false; irq = false; batch_index = t.batch_index }

let run_round t ~latencies =
  if Array.length latencies <> t.k_ then
    raise (Protocol_error "latency array width mismatch");
  write_start t;
  let ready = Array.make t.k_ true in
  let remaining = Array.copy latencies in
  (* [done_] is recomputed in place every cycle: a sweep simulates tens of
     millions of controller cycles, and a fresh array per cycle is pure GC
     pressure (it also serializes parallel sweeps on the shared heap). *)
  let done_ = Array.make t.k_ false in
  let started = ref false in
  let cycles = ref 0 in
  let finished = ref false in
  while not !finished do
    incr cycles;
    if !cycles > 100_000_000 then raise (Protocol_error "controller timeout");
    for i = 0 to t.k_ - 1 do
      done_.(i) <- !started && remaining.(i) <= 0
    done;
    let out = step t ~ready ~done_ in
    if out.ap_start_broadcast then started := true
    else if !started then
      Array.iteri (fun i r -> if r > 0 then remaining.(i) <- r - 1) remaining;
    if out.irq then finished := true
  done;
  !cycles
