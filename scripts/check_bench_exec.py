#!/usr/bin/env python3
"""Regression gate over BENCH_exec.json's functional-simulation and
static-cost legs.

Enforced floors (see docs/EXPERIMENTS.md, EXEC record):

  * sharded jobs:1 must stay within 5% of the round-scheduled
    sequential baseline -- the sharding refactor is not allowed to tax
    the single-threaded path;
  * on a multi-core host running a parallel headline leg
    (functional_sim_jobs > 1), the sharded simulator must actually win:
    functional_sim_par_speedup >= 1.0;
  * on a single-core host the parallel floor is waived for jobs > 1
    legs: extra domains only measure the runtime's stop-the-world GC
    synchronizing oversubscribed cores, not the simulator. The jobs:1
    leg still answers for overhead, with a gross-regression floor of
    0.90x on the headline speedup.

When the record carries a "cost" section (written by the bench cost
experiment), the static cost model answers for itself too:

  * the closed-form cycle estimate must equal the simulated total
    exactly (prediction_error == 0) and the differential run must be
    drift-free (drift_diagnostics == 0);
  * the static pre-filter must have pruned at least one configuration,
    simulated strictly fewer systems than the unfiltered sweep, and
    returned the identical Pareto frontier.

Every expected field that is absent fails with a clear message naming
the field (never a KeyError traceback).

Usage: check_bench_exec.py [path/to/BENCH_exec.json]
"""

import json
import sys

SHARD1_OVERHEAD_MAX = 0.05
SINGLE_CORE_FLOOR = 0.90


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_exec.json"
    with open(path) as f:
        bench = json.load(f)

    def field_of(obj, name, what):
        if not isinstance(obj, dict) or name not in obj:
            print(f"check_bench_exec: {path}: missing {what} {name!r}")
            sys.exit(1)
        return obj[name]

    def field(name):
        return field_of(bench, name, "field")

    cores = field("host_cores")
    jobs = field("functional_sim_jobs")
    speedup = field("functional_sim_par_speedup")
    overhead = field("functional_sim_shard1_overhead")

    print(
        f"check_bench_exec: {path}: host_cores={cores} jobs={jobs} "
        f"par_speedup={speedup:.2f}x shard1_overhead={overhead * 100:+.1f}%"
    )
    for i, leg in enumerate(bench.get("functional_sim_matrix", [])):
        def leg_field(name):
            return field_of(leg, name, f"functional_sim_matrix[{i}] field")

        elements = leg_field("elements")
        strategy = leg_field("strategy")
        leg_jobs = leg_field("jobs")
        leg_speedup = leg_field("speedup_vs_seq")
        print(
            f"  {elements:>6} elements | {strategy:<15} | "
            f"jobs {leg_jobs} | {leg_speedup:.2f}x"
        )

    failures = []
    if overhead > SHARD1_OVERHEAD_MAX:
        failures.append(
            f"sharded jobs:1 overhead {overhead * 100:+.1f}% exceeds "
            f"{SHARD1_OVERHEAD_MAX * 100:.0f}% of the sequential baseline"
        )
    if jobs > 1:
        if cores > 1:
            if speedup < 1.0:
                failures.append(
                    f"parallel headline {speedup:.2f}x < 1.00x at jobs={jobs} "
                    f"on a {cores}-core host"
                )
        else:
            print(
                "check_bench_exec: single-core host, parallel floor waived "
                f"for the jobs={jobs} leg (oversubscribed domains measure "
                "GC synchronization, not the simulator)"
            )
    elif speedup < SINGLE_CORE_FLOOR:
        failures.append(
            f"headline speedup {speedup:.2f}x < {SINGLE_CORE_FLOOR:.2f}x "
            "gross-regression floor at jobs=1"
        )

    cost = bench.get("cost")
    if cost is not None:
        def cost_field(name):
            return field_of(cost, name, "cost field")

        prediction_error = cost_field("prediction_error")
        drift = cost_field("drift_diagnostics")
        pruned = cost_field("sweep_pruned")
        sims_full = cost_field("sweep_simulations_unfiltered")
        sims_filtered = cost_field("sweep_simulations_prefiltered")
        frontier_identical = cost_field("frontier_identical")
        print(
            f"check_bench_exec: cost: prediction_error={prediction_error} "
            f"drift={drift} pruned={pruned} "
            f"simulations={sims_full}->{sims_filtered} "
            f"frontier_identical={frontier_identical}"
        )
        if prediction_error != 0:
            failures.append(
                f"static cycle prediction off by {prediction_error} "
                "(the closed-form model must match Sim.Perf exactly)"
            )
        if drift != 0:
            failures.append(
                f"{drift} cost-drift diagnostics in the differential run"
            )
        if pruned <= 0:
            failures.append("static pre-filter pruned no configuration")
        if sims_filtered >= sims_full:
            failures.append(
                f"prefiltered sweep simulated {sims_filtered} systems, "
                f"not strictly fewer than the unfiltered {sims_full}"
            )
        if not frontier_identical:
            failures.append("prefiltered sweep changed the Pareto frontier")

    if failures:
        for f_ in failures:
            print(f"check_bench_exec: FAIL: {f_}")
        sys.exit(1)
    print("check_bench_exec: OK")


if __name__ == "__main__":
    main()
