#!/usr/bin/env python3
"""Regression gate over BENCH_exec.json's functional-simulation legs.

Enforced floors (see docs/EXPERIMENTS.md, EXEC record):

  * sharded jobs:1 must stay within 5% of the round-scheduled
    sequential baseline -- the sharding refactor is not allowed to tax
    the single-threaded path;
  * on a multi-core host running a parallel headline leg
    (functional_sim_jobs > 1), the sharded simulator must actually win:
    functional_sim_par_speedup >= 1.0;
  * on a single-core host the parallel floor is waived for jobs > 1
    legs: extra domains only measure the runtime's stop-the-world GC
    synchronizing oversubscribed cores, not the simulator. The jobs:1
    leg still answers for overhead, with a gross-regression floor of
    0.90x on the headline speedup.

Usage: check_bench_exec.py [path/to/BENCH_exec.json]
"""

import json
import sys

SHARD1_OVERHEAD_MAX = 0.05
SINGLE_CORE_FLOOR = 0.90


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_exec.json"
    with open(path) as f:
        bench = json.load(f)

    def field(name):
        if name not in bench:
            print(f"check_bench_exec: {path}: missing field {name!r}")
            sys.exit(1)
        return bench[name]

    cores = field("host_cores")
    jobs = field("functional_sim_jobs")
    speedup = field("functional_sim_par_speedup")
    overhead = field("functional_sim_shard1_overhead")

    print(
        f"check_bench_exec: {path}: host_cores={cores} jobs={jobs} "
        f"par_speedup={speedup:.2f}x shard1_overhead={overhead * 100:+.1f}%"
    )
    for leg in bench.get("functional_sim_matrix", []):
        print(
            f"  {leg['elements']:>6} elements | {leg['strategy']:<15} | "
            f"jobs {leg['jobs']} | {leg['speedup_vs_seq']:.2f}x"
        )

    failures = []
    if overhead > SHARD1_OVERHEAD_MAX:
        failures.append(
            f"sharded jobs:1 overhead {overhead * 100:+.1f}% exceeds "
            f"{SHARD1_OVERHEAD_MAX * 100:.0f}% of the sequential baseline"
        )
    if jobs > 1:
        if cores > 1:
            if speedup < 1.0:
                failures.append(
                    f"parallel headline {speedup:.2f}x < 1.00x at jobs={jobs} "
                    f"on a {cores}-core host"
                )
        else:
            print(
                "check_bench_exec: single-core host, parallel floor waived "
                f"for the jobs={jobs} leg (oversubscribed domains measure "
                "GC synchronization, not the simulator)"
            )
    elif speedup < SINGLE_CORE_FLOOR:
        failures.append(
            f"headline speedup {speedup:.2f}x < {SINGLE_CORE_FLOOR:.2f}x "
            "gross-regression floor at jobs=1"
        )

    if failures:
        for f_ in failures:
            print(f"check_bench_exec: FAIL: {f_}")
        sys.exit(1)
    print("check_bench_exec: OK")


if __name__ == "__main__":
    main()
