#!/usr/bin/env python3
"""Regression gate over BENCH_exec.json's functional-simulation,
static-cost, artifact-cache, and device-timeline legs.

The record is sectioned: the exec fields (written by `bench exec`), the
"cost" object (`bench cost`), the "cache" object (`bench cache`), and
the "timeline" object (`bench timeline`) are each checked when present,
and at least one known section must be there -- an empty record passes
nothing. Within a section, every expected field that is absent fails
with a clear message naming the field (never a KeyError traceback).

Exec floors (see docs/EXPERIMENTS.md, EXEC record):

  * sharded jobs:1 must stay within 5% of the round-scheduled
    sequential baseline -- the sharding refactor is not allowed to tax
    the single-threaded path;
  * on a multi-core host running a parallel headline leg
    (functional_sim_jobs > 1), the sharded simulator must actually win:
    functional_sim_par_speedup >= 1.0;
  * on a single-core host the parallel floor is waived for jobs > 1
    legs: extra domains only measure the runtime's stop-the-world GC
    synchronizing oversubscribed cores, not the simulator. The jobs:1
    leg still answers for overhead, with a gross-regression floor of
    0.90x on the headline speedup.

Cost floors:

  * the closed-form cycle estimate must equal the simulated total
    exactly (prediction_error == 0) and the differential run must be
    drift-free (drift_diagnostics == 0);
  * the static pre-filter must have pruned at least one configuration,
    simulated strictly fewer systems than the unfiltered sweep, and
    returned the identical Pareto frontier.

Cache floors:

  * a warm compile+check must be at least 5x faster than cold, and the
    hit must reproduce the miss bit-for-bit (hit_identical);
  * the warm sweep must replay cached outcomes: strictly fewer compile
    and verifier runs than the cold pass, identical outcome list, and
    at least one hit served.

Timeline floors:

  * zero timeline-drift errors (phase durations reconcile exactly with
    Sim.Perf's aggregates and Analysis.Cost's closed form);
  * shares and overlap efficiency all in [0, 1], with the plain leg's
    compute + transfer shares summing to exactly 1;
  * the overlapped total must not exceed the plain total (both legs run
    the same k/m shape, so the overlap law guarantees <=).

Usage: check_bench_exec.py [path/to/BENCH_exec.json]
"""

import json
import sys

SHARD1_OVERHEAD_MAX = 0.05
SINGLE_CORE_FLOOR = 0.90
CACHE_COMPILE_SPEEDUP_MIN = 5.0

EXEC_KEYS = (
    "host_cores",
    "functional_sim_jobs",
    "functional_sim_par_speedup",
    "functional_sim_shard1_overhead",
    "functional_sim_matrix",
)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_exec.json"
    with open(path) as f:
        bench = json.load(f)

    def field_of(obj, name, what):
        if not isinstance(obj, dict) or name not in obj:
            print(f"check_bench_exec: {path}: missing {what} {name!r}")
            sys.exit(1)
        return obj[name]

    failures = []
    sections = 0

    if any(k in bench for k in EXEC_KEYS):
        sections += 1

        def field(name):
            return field_of(bench, name, "field")

        cores = field("host_cores")
        jobs = field("functional_sim_jobs")
        speedup = field("functional_sim_par_speedup")
        overhead = field("functional_sim_shard1_overhead")

        print(
            f"check_bench_exec: {path}: host_cores={cores} jobs={jobs} "
            f"par_speedup={speedup:.2f}x shard1_overhead={overhead * 100:+.1f}%"
        )
        for i, leg in enumerate(bench.get("functional_sim_matrix", [])):
            def leg_field(name):
                return field_of(leg, name, f"functional_sim_matrix[{i}] field")

            elements = leg_field("elements")
            strategy = leg_field("strategy")
            leg_jobs = leg_field("jobs")
            leg_speedup = leg_field("speedup_vs_seq")
            print(
                f"  {elements:>6} elements | {strategy:<15} | "
                f"jobs {leg_jobs} | {leg_speedup:.2f}x"
            )

        if overhead > SHARD1_OVERHEAD_MAX:
            failures.append(
                f"sharded jobs:1 overhead {overhead * 100:+.1f}% exceeds "
                f"{SHARD1_OVERHEAD_MAX * 100:.0f}% of the sequential baseline"
            )
        if jobs > 1:
            if cores > 1:
                if speedup < 1.0:
                    failures.append(
                        f"parallel headline {speedup:.2f}x < 1.00x at "
                        f"jobs={jobs} on a {cores}-core host"
                    )
            else:
                print(
                    "check_bench_exec: single-core host, parallel floor "
                    f"waived for the jobs={jobs} leg (oversubscribed domains "
                    "measure GC synchronization, not the simulator)"
                )
        elif speedup < SINGLE_CORE_FLOOR:
            failures.append(
                f"headline speedup {speedup:.2f}x < {SINGLE_CORE_FLOOR:.2f}x "
                "gross-regression floor at jobs=1"
            )

    cost = bench.get("cost")
    if cost is not None:
        sections += 1

        def cost_field(name):
            return field_of(cost, name, "cost field")

        prediction_error = cost_field("prediction_error")
        drift = cost_field("drift_diagnostics")
        pruned = cost_field("sweep_pruned")
        sims_full = cost_field("sweep_simulations_unfiltered")
        sims_filtered = cost_field("sweep_simulations_prefiltered")
        frontier_identical = cost_field("frontier_identical")
        print(
            f"check_bench_exec: cost: prediction_error={prediction_error} "
            f"drift={drift} pruned={pruned} "
            f"simulations={sims_full}->{sims_filtered} "
            f"frontier_identical={frontier_identical}"
        )
        if prediction_error != 0:
            failures.append(
                f"static cycle prediction off by {prediction_error} "
                "(the closed-form model must match Sim.Perf exactly)"
            )
        if drift != 0:
            failures.append(
                f"{drift} cost-drift diagnostics in the differential run"
            )
        if pruned <= 0:
            failures.append("static pre-filter pruned no configuration")
        if sims_filtered >= sims_full:
            failures.append(
                f"prefiltered sweep simulated {sims_filtered} systems, "
                f"not strictly fewer than the unfiltered {sims_full}"
            )
        if not frontier_identical:
            failures.append("prefiltered sweep changed the Pareto frontier")

    cache = bench.get("cache")
    if cache is not None:
        sections += 1

        def cache_field(name):
            return field_of(cache, name, "cache field")

        compile_speedup = cache_field("compile_speedup")
        hit_identical = cache_field("hit_identical")
        cr_cold = cache_field("cold_sweep_compile_runs")
        cr_warm = cache_field("warm_sweep_compile_runs")
        vr_cold = cache_field("cold_sweep_verify_runs")
        vr_warm = cache_field("warm_sweep_verify_runs")
        outcomes_identical = cache_field("sweep_outcomes_identical")
        hits = cache_field("hits")
        print(
            f"check_bench_exec: cache: compile_speedup={compile_speedup:.1f}x "
            f"hit_identical={hit_identical} "
            f"sweep_compiles={cr_cold}->{cr_warm} "
            f"sweep_verifies={vr_cold}->{vr_warm} "
            f"outcomes_identical={outcomes_identical} hits={hits}"
        )
        if compile_speedup < CACHE_COMPILE_SPEEDUP_MIN:
            failures.append(
                f"warm compile speedup {compile_speedup:.1f}x < "
                f"{CACHE_COMPILE_SPEEDUP_MIN:.0f}x floor"
            )
        if not hit_identical:
            failures.append(
                "cache hit is not bit-identical to the cold compile"
            )
        if cr_warm >= cr_cold:
            failures.append(
                f"warm sweep ran {cr_warm} compiles, not strictly fewer "
                f"than the cold sweep's {cr_cold}"
            )
        if vr_warm >= vr_cold:
            failures.append(
                f"warm sweep ran {vr_warm} verifier passes, not strictly "
                f"fewer than the cold sweep's {vr_cold}"
            )
        if not outcomes_identical:
            failures.append("warm sweep changed the outcome list")
        if hits <= 0:
            failures.append("cache served no hit during the bench")

    timeline = bench.get("timeline")
    if timeline is not None:
        sections += 1

        def tl_field(name):
            return field_of(timeline, name, "timeline field")

        drift_errors = tl_field("drift_errors")
        plain_total = tl_field("plain_total_cycles")
        compute_share = tl_field("plain_compute_share")
        transfer_share = tl_field("plain_transfer_share")
        overlap_total = tl_field("overlap_total_cycles")
        overlap_eff = tl_field("overlap_efficiency")
        print(
            f"check_bench_exec: timeline: drift_errors={drift_errors} "
            f"plain={plain_total} overlapped={overlap_total} "
            f"compute_share={compute_share:.3f} "
            f"transfer_share={transfer_share:.3f} "
            f"overlap_efficiency={overlap_eff:.3f}"
        )
        if drift_errors != 0:
            failures.append(
                f"{drift_errors} timeline-drift errors (phase durations must "
                "reconcile exactly with Sim.Perf and Analysis.Cost)"
            )
        for name, share in (
            ("plain_compute_share", compute_share),
            ("plain_transfer_share", transfer_share),
            ("overlap_efficiency", overlap_eff),
        ):
            if not 0.0 <= share <= 1.0:
                failures.append(f"timeline {name} {share} outside [0, 1]")
        if abs(compute_share + transfer_share - 1.0) > 1e-9:
            failures.append(
                f"plain-leg shares sum to {compute_share + transfer_share}, "
                "not 1.0 (no overlap means compute + transfer == total)"
            )
        if overlap_total > plain_total:
            failures.append(
                f"overlapped run took {overlap_total} cycles, more than the "
                f"plain {plain_total} on the same shape (the overlap law "
                "guarantees <=)"
            )

    if sections == 0:
        print(
            f"check_bench_exec: {path}: no known benchmark section "
            "(expected exec fields, 'cost', 'cache', or 'timeline')"
        )
        sys.exit(1)

    if failures:
        for f_ in failures:
            print(f"check_bench_exec: FAIL: {f_}")
        sys.exit(1)
    print("check_bench_exec: OK")


if __name__ == "__main__":
    main()
