#!/usr/bin/env python3
"""Unit invocation of check_bench_exec.py (run by `make lint` and CI).

Feeds crafted BENCH_exec.json records to the checker in a subprocess
and asserts the exit status and the message: a record with a missing
field must fail with a clear `missing ... field` line naming the field
-- never a KeyError traceback -- and the cost-section floors must
actually gate.
"""

import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_exec.py")

GOOD = {
    "host_cores": 4,
    "functional_sim_jobs": 4,
    "functional_sim_par_speedup": 2.5,
    "functional_sim_shard1_overhead": 0.01,
    "functional_sim_matrix": [
        {"elements": 512, "strategy": "round-scheduled", "jobs": 1,
         "seconds": 0.1, "speedup_vs_seq": 1.0},
        {"elements": 512, "strategy": "sharded", "jobs": 4,
         "seconds": 0.04, "speedup_vs_seq": 2.5},
    ],
    "cost": {
        "prediction_error": 0,
        "drift_diagnostics": 0,
        "sweep_pruned": 3,
        "sweep_simulations_unfiltered": 5,
        "sweep_simulations_prefiltered": 2,
        "frontier_identical": True,
    },
    "cache": {
        "compile_speedup": 12.5,
        "hit_identical": True,
        "cold_sweep_compile_runs": 5,
        "warm_sweep_compile_runs": 0,
        "cold_sweep_verify_runs": 5,
        "warm_sweep_verify_runs": 0,
        "sweep_outcomes_identical": True,
        "hits": 11,
    },
    "timeline": {
        "p": 4,
        "elements": 2048,
        "drift_errors": 0,
        "plain_total_cycles": 2054016,
        "plain_compute_share": 0.825,
        "plain_transfer_share": 0.175,
        "overlap_total_cycles": 1697527,
        "overlap_efficiency": 0.992,
        "overlap_saved_cycles": 356489,
    },
}


def run_checker(record):
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False) as f:
        json.dump(record, f)
        path = f.name
    try:
        proc = subprocess.run(
            [sys.executable, CHECKER, path],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr
    finally:
        os.unlink(path)


def drop(record, *path):
    record = json.loads(json.dumps(record))
    obj = record
    for key in path[:-1]:
        obj = obj[key]
    del obj[path[-1]]
    return record


def expect(name, record, code, *needles):
    got_code, out = run_checker(record)
    if "Traceback" in out:
        print(f"FAIL {name}: checker crashed with a traceback:\n{out}")
        sys.exit(1)
    if got_code != code:
        print(f"FAIL {name}: expected exit {code}, got {got_code}:\n{out}")
        sys.exit(1)
    for needle in needles:
        if needle not in out:
            print(f"FAIL {name}: expected {needle!r} in output:\n{out}")
            sys.exit(1)
    print(f"ok {name}")


def main():
    expect("complete record passes", GOOD, 0, "check_bench_exec: OK")
    expect("missing top-level field",
           drop(GOOD, "functional_sim_jobs"), 1,
           "missing field 'functional_sim_jobs'")
    expect("missing matrix leg field",
           drop(GOOD, "functional_sim_matrix", 1, "speedup_vs_seq"), 1,
           "missing functional_sim_matrix[1] field 'speedup_vs_seq'")
    expect("missing cost field",
           drop(GOOD, "cost", "sweep_pruned"), 1,
           "missing cost field 'sweep_pruned'")
    expect("cost: nothing pruned fails",
           {**GOOD, "cost": {**GOOD["cost"], "sweep_pruned": 0}}, 1,
           "pruned no configuration")
    expect("cost: drift fails",
           {**GOOD, "cost": {**GOOD["cost"], "drift_diagnostics": 2}}, 1,
           "cost-drift diagnostics")
    expect("cost: changed frontier fails",
           {**GOOD, "cost": {**GOOD["cost"], "frontier_identical": False}}, 1,
           "changed the Pareto frontier")
    expect("cost section optional",
           drop(GOOD, "cost"), 0, "check_bench_exec: OK")
    expect("missing cache field",
           drop(GOOD, "cache", "hits"), 1,
           "missing cache field 'hits'")
    expect("cache: slow warm compile fails",
           {**GOOD, "cache": {**GOOD["cache"], "compile_speedup": 3.0}}, 1,
           "warm compile speedup 3.0x < 5x floor")
    expect("cache: non-identical hit fails",
           {**GOOD, "cache": {**GOOD["cache"], "hit_identical": False}}, 1,
           "not bit-identical")
    expect("cache: warm sweep recompiling fails",
           {**GOOD, "cache": {**GOOD["cache"], "warm_sweep_compile_runs": 5}},
           1, "not strictly fewer")
    expect("cache: warm sweep reverifying fails",
           {**GOOD, "cache": {**GOOD["cache"], "warm_sweep_verify_runs": 5}},
           1, "not strictly fewer")
    expect("cache: changed outcomes fail",
           {**GOOD,
            "cache": {**GOOD["cache"], "sweep_outcomes_identical": False}},
           1, "changed the outcome list")
    expect("cache: no hit served fails",
           {**GOOD, "cache": {**GOOD["cache"], "hits": 0}}, 1,
           "served no hit")
    expect("cache section optional",
           drop(GOOD, "cache"), 0, "check_bench_exec: OK")
    expect("cache-only record passes",
           {"cache": GOOD["cache"]}, 0, "check_bench_exec: OK")
    expect("missing timeline field",
           drop(GOOD, "timeline", "drift_errors"), 1,
           "missing timeline field 'drift_errors'")
    expect("timeline: drift errors fail",
           {**GOOD, "timeline": {**GOOD["timeline"], "drift_errors": 1}}, 1,
           "timeline-drift errors")
    expect("timeline: share outside [0,1] fails",
           {**GOOD,
            "timeline": {**GOOD["timeline"], "overlap_efficiency": 1.5}},
           1, "outside [0, 1]")
    expect("timeline: plain shares must sum to 1",
           {**GOOD,
            "timeline": {**GOOD["timeline"], "plain_transfer_share": 0.3}},
           1, "not 1.0")
    expect("timeline: slower overlapped run fails",
           {**GOOD,
            "timeline": {**GOOD["timeline"],
                         "overlap_total_cycles": 9999999999}},
           1, "more than the plain")
    expect("timeline section optional",
           drop(GOOD, "timeline"), 0, "check_bench_exec: OK")
    expect("timeline-only record passes",
           {"timeline": GOOD["timeline"]}, 0, "check_bench_exec: OK")
    expect("empty record fails",
           {}, 1, "no known benchmark section")
    print("check_bench_exec_test: OK")


if __name__ == "__main__":
    main()
