#!/usr/bin/env python3
"""Run-over-run regression sentinel over the bench history directory.

`bench exec` appends one record per run to history/BENCH_exec.<id>.json
(never clobbering earlier runs); this checker compares the newest record
against the floor of all earlier comparable runs and fails when the new
run regresses past the noise band. It complements check_bench_exec.py,
which gates a single record against absolute floors -- the sentinel
gates the trajectory.

Rules:

  * at least two records are required -- one run has no trajectory;
  * every record must carry a provenance manifest naming the build
    (tool, cache key schema, options-fingerprint schema). Baseline runs
    whose schema versions or polynomial order differ from the
    candidate's are excluded from comparison (records across dialects
    are not comparable), and at least one comparable baseline must
    remain;
  * timing floors are noise-aware: the baseline is the minimum over all
    comparable earlier runs (min-of-N filters scheduler noise, which
    only ever adds time), and the candidate may exceed it by the
    tolerance band (30%) before failing. Gated timings:
    compiled_ns_per_element and functional_sim_seq_seconds;
  * deterministic fields must be exactly stable run over run: the
    verifier-licensed execution mode must not silently downgrade, the
    static cost model's predicted cycle count (when both runs carry a
    cost section) must not move at all, and the device-timeline cycle
    counts (plain and overlapped, when both runs carry a timeline
    section) must not move at all -- the modeled clock has no noise.

Every absent expected field fails with a message naming the field and
the file -- never a KeyError traceback.

Usage: check_bench_history.py [history_dir]
"""

import glob
import json
import os
import sys

TIMING_TOLERANCE = 0.30
TIMING_FIELDS = ("compiled_ns_per_element", "functional_sim_seq_seconds")


def fail(msg):
    print(f"check_bench_history: FAIL: {msg}")
    sys.exit(1)


def field_of(obj, name, where):
    if not isinstance(obj, dict) or name not in obj:
        fail(f"missing field {name!r} in {where}")
    return obj[name]


def build_of(record, where):
    manifest = field_of(record, "manifest", where)
    build = field_of(manifest, "build", f"{where} manifest")
    for key in ("tool", "cache_key_format_version",
                "options_fingerprint_version"):
        field_of(build, key, f"{where} manifest build")
    return build


def comparability_key(record, where):
    build = build_of(record, where)
    return (
        build["cache_key_format_version"],
        build["options_fingerprint_version"],
        field_of(record, "p", where),
    )


def main():
    history_dir = sys.argv[1] if len(sys.argv) > 1 else "bench-out/history"
    paths = sorted(glob.glob(os.path.join(history_dir, "BENCH_exec.*.json")))
    if len(paths) < 2:
        fail(
            f"{history_dir}: need at least 2 recorded runs for a "
            f"trajectory, found {len(paths)}"
        )

    records = []
    for path in paths:
        try:
            with open(path) as f:
                records.append((os.path.basename(path), json.load(f)))
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path}: unreadable record: {e}")

    cand_name, cand = records[-1]
    cand_key = comparability_key(cand, cand_name)
    baselines = []
    for name, record in records[:-1]:
        if comparability_key(record, name) == cand_key:
            baselines.append((name, record))
        else:
            print(
                f"check_bench_history: {name}: different schema dialect or "
                "polynomial order, excluded from the baseline"
            )
    if not baselines:
        fail(
            f"{cand_name}: no comparable baseline run "
            "(all earlier records use a different dialect)"
        )

    print(
        f"check_bench_history: candidate {cand_name} vs "
        f"{len(baselines)} baseline run(s)"
    )

    failures = []

    for name in TIMING_FIELDS:
        cand_value = field_of(cand, name, cand_name)
        floor = min(field_of(r, name, n) for n, r in baselines)
        ceiling = floor * (1.0 + TIMING_TOLERANCE)
        verdict = "ok" if cand_value <= ceiling else "REGRESSED"
        print(
            f"  {name}: candidate {cand_value:.4g} vs baseline floor "
            f"{floor:.4g} (ceiling {ceiling:.4g}) {verdict}"
        )
        if cand_value > ceiling:
            failures.append(
                f"{name} regressed: {cand_value:.4g} exceeds the baseline "
                f"floor {floor:.4g} by more than "
                f"{TIMING_TOLERANCE * 100:.0f}%"
            )

    cand_mode = field_of(cand, "mode", cand_name)
    for name, record in baselines:
        base_mode = field_of(record, "mode", name)
        if base_mode != cand_mode:
            failures.append(
                f"execution mode changed: {name} ran {base_mode!r}, "
                f"{cand_name} runs {cand_mode!r} (the verifier license "
                "must not silently downgrade)"
            )
            break

    cand_cost = cand.get("cost")
    if cand_cost is not None:
        cand_cycles = field_of(cand_cost, "predicted_cycles",
                               f"{cand_name} cost")
        for name, record in baselines:
            cost = record.get("cost")
            if cost is None:
                continue
            base_cycles = field_of(cost, "predicted_cycles", f"{name} cost")
            if base_cycles != cand_cycles:
                failures.append(
                    f"predicted_cycles moved: {name} recorded "
                    f"{base_cycles}, {cand_name} records {cand_cycles} "
                    "(the static cost model is deterministic)"
                )
            break

    cand_timeline = cand.get("timeline")
    if cand_timeline is not None:
        for field in ("plain_total_cycles", "overlap_total_cycles"):
            cand_cycles = field_of(cand_timeline, field,
                                   f"{cand_name} timeline")
            for name, record in baselines:
                timeline = record.get("timeline")
                if timeline is None:
                    continue
                base_cycles = field_of(timeline, field, f"{name} timeline")
                if base_cycles != cand_cycles:
                    failures.append(
                        f"timeline {field} moved: {name} recorded "
                        f"{base_cycles}, {cand_name} records {cand_cycles} "
                        "(the modeled cycle clock is deterministic)"
                    )
                break

    if failures:
        for f_ in failures:
            print(f"check_bench_history: FAIL: {f_}")
        sys.exit(1)
    print("check_bench_history: OK")


if __name__ == "__main__":
    main()
