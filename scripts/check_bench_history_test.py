#!/usr/bin/env python3
"""Unit invocation of check_bench_history.py (run by `make history` and CI).

Builds crafted history directories and asserts the sentinel's exit
status and messages: a missing field must fail with a line naming the
field and the file -- never a KeyError traceback -- a regressed timing
must name the field and the floor it broke, and dialect-incompatible
baselines must be excluded rather than compared.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_history.py")


def record(run_id, compiled_ns=100.0, seq_seconds=0.05, mode="unchecked",
           predicted=19120179, plain_cycles=2054016, overlap_cycles=1697527,
           key_version=1, fp_version=1, p=4):
    return {
        "benchmark": "exec",
        "kernel": "inverse_helmholtz",
        "p": p,
        "mode": mode,
        "compiled_ns_per_element": compiled_ns,
        "functional_sim_seq_seconds": seq_seconds,
        "cost": {"predicted_cycles": predicted},
        "timeline": {
            "plain_total_cycles": plain_cycles,
            "overlap_total_cycles": overlap_cycles,
        },
        "manifest": {
            "run_id": run_id,
            "build": {
                "tool": "1.1.0",
                "cache_key_format_version": key_version,
                "options_fingerprint_version": fp_version,
            },
        },
    }


def run_checker(records, mutate=None):
    """records: list of (run_id, record) written in lexicographic order."""
    tmp = tempfile.mkdtemp(prefix="bench-history-")
    try:
        for run_id, rec in records:
            if mutate:
                rec = mutate(run_id, rec)
            with open(os.path.join(tmp, f"BENCH_exec.{run_id}.json"),
                      "w") as f:
                json.dump(rec, f)
        proc = subprocess.run(
            [sys.executable, CHECKER, tmp],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr
    finally:
        shutil.rmtree(tmp)


def expect(name, records, code, *needles, mutate=None):
    got_code, out = run_checker(records, mutate=mutate)
    if "Traceback" in out:
        print(f"FAIL {name}: checker crashed with a traceback:\n{out}")
        sys.exit(1)
    if got_code != code:
        print(f"FAIL {name}: expected exit {code}, got {got_code}:\n{out}")
        sys.exit(1)
    for needle in needles:
        if needle not in out:
            print(f"FAIL {name}: expected {needle!r} in output:\n{out}")
            sys.exit(1)
    print(f"ok {name}")


def drop(rec, *path):
    rec = json.loads(json.dumps(rec))
    obj = rec
    for key in path[:-1]:
        obj = obj[key]
    del obj[path[-1]]
    return rec


def main():
    a = ("run-a", record("run-a"))
    b = ("run-b", record("run-b", compiled_ns=104.0, seq_seconds=0.051))

    expect("two steady runs pass", [a, b], 0, "check_bench_history: OK")
    expect("single run fails",
           [a], 1, "need at least 2 recorded runs", "found 1")
    expect("noise within the band passes",
           [a, ("run-b", record("run-b", compiled_ns=125.0))], 0,
           "check_bench_history: OK")
    expect("regressed timing names field and floor",
           [a, ("run-b", record("run-b", compiled_ns=200.0))], 1,
           "compiled_ns_per_element regressed",
           "exceeds the baseline floor 100",
           "by more than 30%")
    expect("regression judged against min-of-N baseline",
           [("run-a", record("run-a", compiled_ns=200.0)),
            ("run-b", record("run-b", compiled_ns=100.0)),
            ("run-c", record("run-c", compiled_ns=200.0))], 1,
           "compiled_ns_per_element regressed")
    expect("seq-seconds regression gated too",
           [a, ("run-b", record("run-b", seq_seconds=0.10))], 1,
           "functional_sim_seq_seconds regressed")
    expect("mode downgrade fails",
           [a, ("run-b", record("run-b", mode="checked"))], 1,
           "execution mode changed",
           "must not silently downgrade")
    expect("predicted-cycles drift fails",
           [a, ("run-b", record("run-b", predicted=19120180))], 1,
           "predicted_cycles moved",
           "static cost model is deterministic")
    expect("missing manifest fails named",
           [a, ("run-b", drop(record("run-b"), "manifest"))], 1,
           "missing field 'manifest'", "BENCH_exec.run-b.json")
    expect("missing build schema field fails named",
           [a, ("run-b", drop(record("run-b"), "manifest", "build",
                              "cache_key_format_version"))], 1,
           "missing field 'cache_key_format_version'")
    expect("missing timing field fails named",
           [a, ("run-b", drop(record("run-b"),
                              "compiled_ns_per_element"))], 1,
           "missing field 'compiled_ns_per_element'",
           "BENCH_exec.run-b.json")
    expect("dialect change excludes the baseline",
           [("run-a", record("run-a", key_version=0)), b], 1,
           "excluded from the baseline",
           "no comparable baseline run")
    expect("different p excluded, comparable baseline still used",
           [("run-a", record("run-a", p=11, predicted=7)),
            ("run-b", record("run-b")),
            ("run-c", record("run-c", compiled_ns=101.0))], 0,
           "different schema dialect or polynomial order",
           "check_bench_history: OK")
    expect("cost section optional in baseline",
           [("run-a", drop(record("run-a"), "cost")), b], 0,
           "check_bench_history: OK")
    expect("timeline plain-cycles drift fails",
           [a, ("run-b", record("run-b", plain_cycles=2054017))], 1,
           "timeline plain_total_cycles moved",
           "modeled cycle clock is deterministic")
    expect("timeline overlap-cycles drift fails",
           [a, ("run-b", record("run-b", overlap_cycles=1697526))], 1,
           "timeline overlap_total_cycles moved")
    expect("missing timeline cycle field fails named",
           [a, ("run-b", drop(record("run-b"), "timeline",
                              "plain_total_cycles"))], 1,
           "missing field 'plain_total_cycles'",
           "BENCH_exec.run-b.json")
    expect("timeline section optional in baseline",
           [("run-a", drop(record("run-a"), "timeline")), b], 0,
           "check_bench_history: OK")
    print("check_bench_history_test: OK")


if __name__ == "__main__":
    main()
